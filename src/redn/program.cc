#include "redn/program.h"

namespace redn::core {
namespace {

bool IsCopy(Opcode op) {
  switch (op) {
    case Opcode::kNoop:  // placeholder that a CAS may flip into a WRITE
    case Opcode::kWrite:
    case Opcode::kWriteImm:
    case Opcode::kRead:
    case Opcode::kSend:
    case Opcode::kSendImm:
      return true;
    default:
      return false;
  }
}

bool IsAtomic(Opcode op) {
  switch (op) {
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd:
    case Opcode::kCalcMax:
    case Opcode::kCalcMin:
      return true;
    default:
      return false;
  }
}

}  // namespace

Program::Program(rnic::RnicDevice& dev, int port, std::uint32_t control_depth)
    : dev_(dev), port_(port) {
  rnic::QpConfig cfg;
  cfg.sq_depth = control_depth;
  cfg.rq_depth = 16;
  cfg.managed = false;
  cfg.port = port_;
  cfg.send_cq = dev_.CreateCq();
  cfg.recv_cq = dev_.CreateCq();
  control_ = dev_.CreateQp(cfg);
  rnic::ConnectSelf(control_);
  owned_.push_back(control_);
}

QueuePair* Program::NewChainQueue(std::uint32_t depth) {
  rnic::QpConfig cfg;
  cfg.sq_depth = depth;
  cfg.rq_depth = 16;
  cfg.managed = true;
  cfg.port = port_;
  cfg.send_cq = dev_.CreateCq();
  cfg.recv_cq = dev_.CreateCq();
  QueuePair* qp = dev_.CreateQp(cfg);
  rnic::ConnectSelf(qp);
  owned_.push_back(qp);
  return qp;
}

QueuePair* Program::NewPlainQueue(std::uint32_t depth) {
  rnic::QpConfig cfg;
  cfg.sq_depth = depth;
  cfg.rq_depth = 16;
  cfg.managed = false;
  cfg.port = port_;
  cfg.send_cq = dev_.CreateCq();
  cfg.recv_cq = dev_.CreateCq();
  QueuePair* qp = dev_.CreateQp(cfg);
  rnic::ConnectSelf(qp);
  owned_.push_back(qp);
  return qp;
}

void Program::SetOwner(int pid) {
  for (QueuePair* qp : owned_) qp->owner_pid = pid;
}

void Program::Abort() {
  for (QueuePair* qp : owned_) {
    qp->alive = false;
    qp->sq.error = true;
    qp->rq.error = true;
  }
}

WrRef Program::Post(QueuePair* q, const verbs::SendWr& wr) {
  if (IsCopy(wr.opcode)) {
    ++budget_.copy;
  } else if (IsAtomic(wr.opcode)) {
    ++budget_.atomics;
  } else if (wr.opcode == Opcode::kWait || wr.opcode == Opcode::kEnable) {
    ++budget_.sync;
  }
  if (wr.signaled) ++signals_[q->send_cq];
  const std::uint64_t idx = verbs::PostSend(q, wr);
  return WrRef{q, idx};
}

const Sge* Program::MakeSgeTable(std::vector<Sge> sges) {
  sge_arena_.push_back(std::move(sges));
  return sge_arena_.back().data();
}

WrRef Program::Wait(CompletionQueue* cq, std::uint64_t count) {
  return Post(control_, verbs::MakeWait(cq, count));
}

WrRef Program::Enable(QueuePair* q, std::uint64_t limit) {
  return Post(control_, verbs::MakeEnable(q, limit));
}

WrRef Program::OpcodeCas(WrRef target, std::uint64_t operand, Opcode from,
                         Opcode to) {
  verbs::SendWr cas = verbs::MakeCas(
      target.FieldAddr(WqeField::kCtrl), target.CodeRkey(),
      rnic::PackCtrl(from, operand), rnic::PackCtrl(to, operand));
  return Post(control_, cas);
}

WrRef Program::FetchAdd(std::uint64_t addr, std::uint32_t rkey,
                        std::uint64_t delta) {
  return Post(control_, verbs::MakeFetchAdd(addr, rkey, delta));
}

WrRef Program::EmitEqualIf(CompletionQueue* trigger_cq,
                           std::uint64_t trigger_count, WrRef target,
                           std::uint64_t operand, Opcode then_op) {
  Wait(trigger_cq, trigger_count);
  WrRef cas = OpcodeCas(target, operand, Opcode::kNoop, then_op);
  Wait(control_cq(), SignalsPosted(control_cq()));
  Enable(target.qp, target.idx + 1);
  return cas;
}

void Program::Launch() { dev_.RingDoorbell(control_); }

std::uint64_t Program::SignalsPosted(const CompletionQueue* cq) const {
  auto it = signals_.find(cq);
  return it == signals_.end() ? 0 : it->second;
}

}  // namespace redn::core
