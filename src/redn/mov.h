// x86 `mov` emulation over RDMA verbs (paper Appendix A, Table 7).
//
// Dolan showed the x86 mov instruction alone is Turing complete; the paper
// completes its proof sketch by emulating every addressing mode Dolan needs
// with RDMA chains. This module implements those addressing modes as
// NIC-executed programs:
//
//   immediate  mov Rdst, C            WRITE from a constant pool
//   reg-to-reg mov Rdst, Rsrc         WRITE Rsrc -> Rdst
//   indirect   mov Rdst, [Rsrc]       WRITE #1 patches the source-address
//                                     attribute of WRITE #2 with the value
//                                     in Rsrc (doorbell ordering), then
//                                     WRITE #2 moves [Rsrc] into Rdst
//   indexed    mov Rdst, [Rsrc+Roff]  as indirect, plus an ADD that patches
//                                     the offset into the source address
//   stores     mov [Rdst], Rsrc       same patching on the destination side
//
// The machine owns a single registered memory arena holding the register
// file, the constant pool, and all data cells. One arena = one lkey/rkey,
// which is exactly the constraint real RDMA puts on patched addresses: a
// WQE's lkey is fixed at post time, so every address a register can point
// at must live inside the same memory region. (Dolan's machine has the
// same property — one flat address space.)
//
// Note: the paper lists WRITE-with-immediate for the immediate mode; in
// ibverbs the immediate travels to the remote CQE rather than to memory, so
// we use a WRITE from a per-instruction constant pool slot, which has the
// same effect (a constant reaching Rdst) with the same WR count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "redn/program.h"

namespace redn::core {

class MovMachine {
 public:
  // `registers` = number of 64-bit architectural registers; `cells` = data
  // memory words available through AllocCells.
  MovMachine(rnic::RnicDevice& dev, int registers, std::size_t cells = 4096);

  // --- register file access (host side; used for setup and inspection) ----
  std::uint64_t RegAddr(int r) const;
  std::uint64_t Reg(int r) const;
  void SetReg(int r, std::uint64_t v);

  // --- data memory (one flat registered arena) -----------------------------
  // Allocates `count` contiguous 64-bit cells; returns the address of the
  // first. Addresses are valid targets for indirect/indexed addressing.
  std::uint64_t AllocCells(std::size_t count);
  std::uint64_t Cell(std::uint64_t addr) const { return rnic::dma::ReadU64(addr); }
  void SetCell(std::uint64_t addr, std::uint64_t v) { rnic::dma::WriteU64(addr, v); }
  std::uint32_t ArenaRkey() const { return arena_mr_.rkey; }
  std::uint32_t ArenaLkey() const { return arena_mr_.lkey; }

  // --- instruction emitters (pre-posted; nothing executes until Run) ------
  void MovImmediate(int rdst, std::uint64_t constant);
  void MovReg(int rdst, int rsrc);
  void MovIndirectLoad(int rdst, int rsrc);           // Rdst = [Rsrc]
  void MovIndexedLoad(int rdst, int rsrc, int roff);  // Rdst = [Rsrc+Roff]
  void MovIndirectStore(int rdst_ptr, int rsrc);      // [Rdst_ptr] = Rsrc

  // Number of instructions emitted.
  int instruction_count() const { return instructions_; }
  const WrBudget& budget() const { return prog_.budget(); }

  // Launches everything emitted since the last Run and executes it on the
  // NIC; returns simulated execution time. Resumable: more instructions may
  // be emitted and Run called again.
  sim::Nanos Run();

 private:
  // Emits the ENABLE glue that releases chain WQEs up to `upto`, one by
  // one, each gated on the completion of the previous chain WQE.
  void ReleaseChain(std::uint64_t upto);
  // Completion-order barrier between dependent instructions.
  void Sequence();
  std::uint64_t PoolSlot(std::uint64_t value);

  rnic::RnicDevice& dev_;
  Program prog_;
  QueuePair* chain_;  // managed queue holding the patched WRITE/ADD WQEs
  std::unique_ptr<std::uint64_t[]> arena_;
  std::size_t arena_words_;
  std::size_t arena_used_ = 0;  // allocation cursor (words)
  int n_regs_;
  rnic::MemoryRegion arena_mr_;
  std::uint64_t released_ = 0;
  int instructions_ = 0;
};

}  // namespace redn::core
