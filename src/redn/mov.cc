#include "redn/mov.h"

#include <cassert>
#include <stdexcept>

#include "verbs/verbs.h"

namespace redn::core {

MovMachine::MovMachine(rnic::RnicDevice& dev, int registers, std::size_t cells)
    : dev_(dev), prog_(dev), n_regs_(registers) {
  arena_words_ = static_cast<std::size_t>(registers) + cells;
  arena_ = std::make_unique<std::uint64_t[]>(arena_words_);
  for (std::size_t i = 0; i < arena_words_; ++i) arena_[i] = 0;
  arena_mr_ = dev_.pd().Register(arena_.get(), arena_words_ * 8,
                                 rnic::kAccessAll);
  arena_used_ = registers;  // registers occupy the front of the arena
  chain_ = prog_.NewChainQueue(8192);
}

std::uint64_t MovMachine::RegAddr(int r) const {
  assert(r >= 0 && r < n_regs_);
  return rnic::dma::AddrOf(&arena_[r]);
}

std::uint64_t MovMachine::Reg(int r) const {
  assert(r >= 0 && r < n_regs_);
  return arena_[r];
}

void MovMachine::SetReg(int r, std::uint64_t v) {
  assert(r >= 0 && r < n_regs_);
  arena_[r] = v;
}

std::uint64_t MovMachine::AllocCells(std::size_t count) {
  if (arena_used_ + count > arena_words_) {
    throw std::runtime_error("MovMachine arena exhausted");
  }
  const std::uint64_t addr = rnic::dma::AddrOf(&arena_[arena_used_]);
  arena_used_ += count;
  return addr;
}

std::uint64_t MovMachine::PoolSlot(std::uint64_t value) {
  const std::uint64_t addr = AllocCells(1);
  rnic::dma::WriteU64(addr, value);
  return addr;
}

void MovMachine::Sequence() {
  // Completion-order barrier against every prior signaled WR on both
  // queues: instructions may have register dependencies (RAW), and
  // WQ-order pipelining alone does not wait for a predecessor's memory
  // effect. Registers written by chain WQEs (loads) retire on the chain CQ.
  const std::uint64_t ctrl_signals = prog_.SignalsPosted(prog_.control_cq());
  if (ctrl_signals > 0) prog_.Wait(prog_.control_cq(), ctrl_signals);
  const std::uint64_t chain_signals = prog_.SignalsPosted(chain_->send_cq);
  if (chain_signals > 0) prog_.Wait(chain_->send_cq, chain_signals);
}

void MovMachine::ReleaseChain(std::uint64_t upto) {
  // Doorbell ordering, WQE by WQE: each chain entry is fetched only after
  // the previous one completed (all chain WRs are signaled, so the chain CQ
  // count equals the number of retired chain WQEs).
  while (released_ < upto) {
    if (released_ > 0) prog_.Wait(chain_->send_cq, released_);
    prog_.Enable(chain_, released_ + 1);
    ++released_;
  }
}

void MovMachine::MovImmediate(int rdst, std::uint64_t constant) {
  const std::uint64_t slot = PoolSlot(constant);
  Sequence();
  // Plain copy: no self-modification, so it can ride the control queue.
  prog_.Post(prog_.control(), verbs::MakeWrite(slot, 8, arena_mr_.lkey,
                                               RegAddr(rdst), arena_mr_.rkey));
  ++instructions_;
}

void MovMachine::MovReg(int rdst, int rsrc) {
  Sequence();
  prog_.Post(prog_.control(),
             verbs::MakeWrite(RegAddr(rsrc), 8, arena_mr_.lkey, RegAddr(rdst),
                              arena_mr_.rkey));
  ++instructions_;
}

void MovMachine::MovIndirectLoad(int rdst, int rsrc) {
  Sequence();
  // Chain WQE: WRITE 8 bytes from a patched source address into Rdst.
  WrRef w2 = prog_.Post(chain_,
                        verbs::MakeWrite(/*laddr=*/0, 8, arena_mr_.lkey,
                                         RegAddr(rdst), arena_mr_.rkey));
  // Control: patch w2.local_addr with the *value* of Rsrc...
  prog_.Post(prog_.control(),
             verbs::MakeWrite(RegAddr(rsrc), 8, arena_mr_.lkey,
                              w2.FieldAddr(WqeField::kLocalAddr),
                              w2.CodeRkey()));
  // ...and only then let the NIC fetch w2 (doorbell ordering).
  prog_.Wait(prog_.control_cq(), prog_.SignalsPosted(prog_.control_cq()));
  ReleaseChain(w2.idx + 1);
  ++instructions_;
}

void MovMachine::MovIndexedLoad(int rdst, int rsrc, int roff) {
  Sequence();
  // Chain order matters: the ADD must execute before the WRITE it adjusts,
  // so it is posted first. Both are patched from registers by the control
  // queue before release.
  const WrRef w2_future{chain_, chain_->sq.posted + 1};
  WrRef add = prog_.Post(
      chain_, verbs::MakeFetchAdd(w2_future.FieldAddr(WqeField::kLocalAddr),
                                  chain_->sq_mr.rkey, /*add=*/0));
  WrRef w2 = prog_.Post(chain_,
                        verbs::MakeWrite(/*laddr=*/0, 8, arena_mr_.lkey,
                                         RegAddr(rdst), arena_mr_.rkey));
  assert(w2.idx == w2_future.idx);
  // Patch the base address from Rsrc and the ADD operand from Roff.
  prog_.Post(prog_.control(),
             verbs::MakeWrite(RegAddr(rsrc), 8, arena_mr_.lkey,
                              w2.FieldAddr(WqeField::kLocalAddr),
                              w2.CodeRkey()));
  prog_.Post(prog_.control(),
             verbs::MakeWrite(RegAddr(roff), 8, arena_mr_.lkey,
                              add.FieldAddr(WqeField::kCompareAdd),
                              add.CodeRkey()));
  prog_.Wait(prog_.control_cq(), prog_.SignalsPosted(prog_.control_cq()));
  ReleaseChain(w2.idx + 1);
  ++instructions_;
}

void MovMachine::MovIndirectStore(int rdst_ptr, int rsrc) {
  Sequence();
  WrRef w2 = prog_.Post(
      chain_, verbs::MakeWrite(RegAddr(rsrc), 8, arena_mr_.lkey,
                               /*raddr=*/0, arena_mr_.rkey));
  prog_.Post(prog_.control(),
             verbs::MakeWrite(RegAddr(rdst_ptr), 8, arena_mr_.lkey,
                              w2.FieldAddr(WqeField::kRemoteAddr),
                              w2.CodeRkey()));
  prog_.Wait(prog_.control_cq(), prog_.SignalsPosted(prog_.control_cq()));
  ReleaseChain(w2.idx + 1);
  ++instructions_;
}

sim::Nanos MovMachine::Run() {
  // Retirement barrier: the control queue pipelines past ENABLEs, so wait
  // for every released chain WQE to complete before declaring done.
  const std::uint64_t chain_signals = prog_.SignalsPosted(chain_->send_cq);
  if (chain_signals > 0) prog_.Wait(chain_->send_cq, chain_signals);
  Sequence();
  // A final signaled NOOP on the control queue marks retirement.
  prog_.Post(prog_.control(), verbs::MakeNoop(/*signaled=*/true));
  const std::uint64_t want = prog_.SignalsPosted(prog_.control_cq());
  const sim::Nanos t0 = dev_.sim().now();
  prog_.Launch();
  auto& sim = dev_.sim();
  while (prog_.control_cq()->hw_count() < want) {
    if (!sim.Step()) break;
  }
  return dev_.sim().now() - t0;
}

}  // namespace redn::core
