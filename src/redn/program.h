// RedN program builder: the paper's Turing-complete abstractions (§3).
//
// A RedN program is a set of RDMA chains pre-posted across work queues:
//  - one non-managed, loopback *control* queue carrying the orchestration
//    verbs (WAIT / ENABLE / CAS / ADD) — these are never self-modified, so
//    prefetch staleness cannot hurt them;
//  - one or more *managed* (doorbell-ordered) chain queues holding the WRs
//    that get rewritten at runtime (by RECV scatter, READ scatter, WRITEs,
//    or CAS on their ctrl words). Managed queues are fetched one WQE at a
//    time, only when ENABLEd, so modifications are always honoured.
//
// Conditionals (§3.3) follow Fig 4: a CAS compares the 64-bit ctrl word of a
// chain WQE — {opcode=NOOP, id=x} — against {NOOP, y} and, on equality,
// swaps in {WRITE, y}. The construct costs 1 copy + 1 atomic + 3
// WAIT/ENABLE verbs, matching Table 2.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "rnic/device.h"
#include "verbs/verbs.h"

namespace redn::core {

using rnic::CompletionQueue;
using rnic::Opcode;
using rnic::QueuePair;
using rnic::Sge;
using rnic::WqeField;

// Handle to a posted (not yet executed) work request; exposes the field
// addresses other verbs use to rewrite it.
struct WrRef {
  QueuePair* qp = nullptr;
  std::uint64_t idx = 0;

  std::uint64_t FieldAddr(WqeField f) const { return qp->sq.SlotAddr(idx, f); }
  std::uint32_t CodeRkey() const { return qp->sq_mr.rkey; }
  bool valid() const { return qp != nullptr; }
};

// WR budget of a program, in the units of Table 2: C copy verbs, A atomic
// verbs, E WAIT/ENABLE verbs.
struct WrBudget {
  int copy = 0;
  int atomics = 0;
  int sync = 0;
  int total() const { return copy + atomics + sync; }
};

class Program {
 public:
  // `control_depth` must be large enough to hold every orchestration WR the
  // program will ever post (pre-armed chains are not recycled).
  explicit Program(rnic::RnicDevice& dev, int port = 0,
                   std::uint32_t control_depth = 4096);

  rnic::RnicDevice& dev() { return dev_; }
  QueuePair* control() { return control_; }
  CompletionQueue* control_cq() { return control_->send_cq; }

  // Creates a managed, loopback chain queue with its own send CQ.
  QueuePair* NewChainQueue(std::uint32_t depth = 256);
  // Creates a non-managed loopback queue (for parallel un-modified workers).
  QueuePair* NewPlainQueue(std::uint32_t depth = 256);

  // Posts a WR (no doorbell) and tracks the WR budget + per-CQ signal count.
  WrRef Post(QueuePair* q, const verbs::SendWr& wr);

  // Arena-owned scatter/gather table (stable storage the NIC reads late).
  const Sge* MakeSgeTable(std::vector<Sge> sges);

  // --- control-queue emitters ----------------------------------------------
  WrRef Wait(CompletionQueue* cq, std::uint64_t count);
  WrRef Enable(QueuePair* q, std::uint64_t limit);
  // CAS on `target`'s ctrl word: {from, operand} -> {to, operand}. The
  // signaled completion lands on the control CQ so a WAIT can order the
  // ENABLE of `target` after it.
  WrRef OpcodeCas(WrRef target, std::uint64_t operand, Opcode from, Opcode to);
  // ADD on an arbitrary 8-byte word (e.g. a WAIT threshold field, for WQ
  // recycling).
  WrRef FetchAdd(std::uint64_t addr, std::uint32_t rkey, std::uint64_t delta);

  // The canonical `if` glue (Table 2: 1A + 3E around the 1C target):
  //   WAIT(trigger);  CAS(target.ctrl);  WAIT(cas done);  ENABLE(target+1)
  // Returns the CAS ref.
  WrRef EmitEqualIf(CompletionQueue* trigger_cq, std::uint64_t trigger_count,
                    WrRef target, std::uint64_t operand, Opcode then_op);

  // Rings the control queue's doorbell (programs pre-posted on managed
  // queues start executing only when the control chain reaches them).
  void Launch();

  // Number of signaled WRs posted so far whose completion lands on `cq`
  // (i.e. the threshold the *next* WAIT on that CQ should use, counting
  // from program start). RECV completions are tracked by the caller.
  std::uint64_t SignalsPosted(const CompletionQueue* cq) const;

  const WrBudget& budget() const { return budget_; }
  // Resets budget accounting (to measure one construct in isolation).
  void ResetBudget() { budget_ = WrBudget{}; }

  // Tags every queue this program owns (control + chains) with an owning
  // process id, for the §5.6 resource-reclamation experiments.
  void SetOwner(int pid);

  // Tears the program down: every owned queue stops executing (the way a
  // real chain dies when its QPs are destroyed). Stalled WAITs are
  // abandoned rather than left to resurrect when shared CQ counts move.
  void Abort();

 private:
  rnic::RnicDevice& dev_;
  int port_;
  QueuePair* control_ = nullptr;
  std::vector<QueuePair*> owned_;
  std::deque<std::vector<Sge>> sge_arena_;
  std::unordered_map<const CompletionQueue*, std::uint64_t> signals_;
  WrBudget budget_;
};

}  // namespace redn::core
