// One-sided key-value gets (the FaRM-KV / Pilaf pattern, §5.2).
//
// The client walks the remote hash table itself with RDMA READs and the
// server CPU never participates:
//   1. READ the hopscotch neighbourhood of H1(key) — 6 buckets.
//   2. Scan it locally; if the key is absent, READ the H2 bucket too.
//   3. READ the value through the pointer found in the bucket.
// Two dependent round trips minimum; client-side post/poll/parse overhead
// per READ is calibrated in BaselineCalibration.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/calibration.h"
#include "kv/table.h"
#include "rnic/device.h"
#include "verbs/verbs.h"

namespace redn::baseline {

class OneSidedKvClient {
 public:
  // `server_qp` must be a server-side QP already created; the constructor
  // connects to it. The client needs the table geometry (bucket addresses
  // are computed from the key, exactly as FaRM clients do).
  OneSidedKvClient(rnic::RnicDevice& cdev, rnic::RnicDevice& sdev,
                   const kv::RdmaHashTable& table, kv::ValueHeap& heap,
                   BaselineCalibration cal = {},
                   std::size_t max_value = 64 << 10);

  struct Result {
    bool found = false;
    sim::Nanos latency = 0;
    std::uint32_t len = 0;
    int reads_issued = 0;
  };

  // Blocking get (steps the simulator).
  Result Get(std::uint64_t key, sim::Nanos timeout = sim::Millis(5));

  std::uint64_t value_buffer_addr() const { return mr_.addr + kScratch; }

 private:
  // One READ + the calibrated client-side overhead; returns false on error.
  bool BlockingRead(std::uint64_t raddr, std::uint32_t rkey, std::uint32_t len,
                    std::uint64_t laddr, sim::Nanos timeout);

  static constexpr std::size_t kScratch = 4096;  // neighbourhood + buckets

  rnic::RnicDevice& cdev_;
  const kv::RdmaHashTable& table_;
  std::uint32_t heap_rkey_ = 0;  // values live in the heap region
  BaselineCalibration cal_;
  rnic::QueuePair* qp_ = nullptr;
  std::unique_ptr<std::byte[]> buf_;
  rnic::MemoryRegion mr_;
};

}  // namespace redn::baseline
