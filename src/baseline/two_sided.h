// Two-sided RPC-over-RDMA key-value serving (the paper's CPU baseline).
//
// Clients SEND a 32-byte request; the server CPU (a simulated actor)
// notices the completion (busy-poll or event wakeup), runs the handler, and
// returns the value with a WRITE_IMM. Three flavours:
//   kPolling — dedicated spinning core, minimal detect latency.
//   kEvent   — blocks on completion events; adds wakeup latency.
//   kVma     — polling + user-space sockets stack costs and receive copies
//              (the Memcached-over-LibVMA configuration of Fig 14).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <memory>
#include <vector>

#include "baseline/calibration.h"
#include "kv/table.h"
#include "rnic/device.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "verbs/verbs.h"

namespace redn::baseline {

// Request wire format (32 bytes). The op word packs a client-chosen
// sequence number above the opcode; the server echoes it in the response
// immediate so clients can match responses to requests across drops.
struct Request {
  std::uint64_t op;  // [63:8] sequence | [7:0] opcode (1 = get, 2 = set)
  std::uint64_t key;
  std::uint64_t resp_addr;
  std::uint32_t resp_rkey;
  std::uint32_t set_len;  // set: value length (payload follows conceptually)
};
inline constexpr std::uint32_t kRequestBytes = 32;
inline constexpr std::uint64_t kOpGet = 1;
inline constexpr std::uint64_t kOpSet = 2;

class TwoSidedKvServer {
 public:
  enum class Mode { kPolling, kEvent, kVma };

  TwoSidedKvServer(rnic::RnicDevice& dev, kv::RdmaHashTable& table,
                   kv::ValueHeap& heap, Mode mode,
                   BaselineCalibration cal = {});

  // Creates the server-side QP for a new client and keeps its RQ stocked.
  rnic::QueuePair* AddClient();

  Mode mode() const { return mode_; }
  const BaselineCalibration& cal() const { return cal_; }

  // Number of closed-loop writers loading this server (contention knob for
  // the Fig 15 experiment; inflates handler tails).
  void set_writers(int n) { writers_ = n; }

  // Process/OS liveness. While dead, requests are silently dropped (the
  // paper's vanilla-Memcached crash window).
  void set_alive(bool alive) { alive_ = alive; }
  bool alive() const { return alive_; }

  std::uint64_t gets_served() const { return gets_served_; }
  std::uint64_t sets_served() const { return sets_served_; }

 private:
  struct ClientCtx {
    rnic::QueuePair* qp;
    std::unique_ptr<std::byte[]> req_bufs;  // ring of request buffers
    rnic::MemoryRegion req_mr;
    int next_slot = 0;
  };

  void RestockRecv(ClientCtx& ctx);
  void OnRecvCqe(ClientCtx& ctx);
  void Handle(ClientCtx& ctx, Request req);
  sim::Nanos ContentionNoise();

  rnic::RnicDevice& dev_;
  kv::RdmaHashTable& table_;
  kv::ValueHeap& heap_;
  Mode mode_;
  BaselineCalibration cal_;
  sim::FifoResource cpu_;  // the single RPC-serving core
  sim::Rng rng_{0xbadc0ffee};
  std::vector<std::unique_ptr<ClientCtx>> clients_;
  int writers_ = 0;
  bool alive_ = true;
  std::uint64_t gets_served_ = 0;
  std::uint64_t sets_served_ = 0;

  static constexpr int kRecvRing = 64;
};

// Client-side helper for the two-sided protocol.
class TwoSidedKvClient {
 public:
  TwoSidedKvClient(rnic::RnicDevice& cdev, TwoSidedKvServer& server,
                   std::size_t max_value = 64 << 10);

  struct Result {
    bool ok = false;
    sim::Nanos latency = 0;
    std::uint32_t len = 0;
  };

  // Blocking operations (step the simulator until the response arrives).
  Result Get(std::uint64_t key, sim::Nanos timeout = sim::Millis(5));
  Result Set(std::uint64_t key, std::uint32_t len,
             sim::Nanos timeout = sim::Millis(5));

  // Non-blocking: send and invoke `done(latency)` when the response lands
  // (or never, if the server dropped the request). For open-loop drivers.
  void SendGet(std::uint64_t key, std::function<void(sim::Nanos)> done);
  void SendSet(std::uint64_t key, std::uint32_t len,
               std::function<void(sim::Nanos)> done);

  std::uint64_t responses() const { return responses_; }

 private:
  void EnsureRecv();
  void Send(std::uint64_t op, std::uint64_t key, std::uint32_t len,
            std::function<void(sim::Nanos)> done);
  Result Blocking(std::uint64_t op, std::uint64_t key, std::uint32_t len,
                  sim::Nanos timeout);
  void OnResponse();

  rnic::RnicDevice& cdev_;
  TwoSidedKvServer& server_;
  struct Pending {
    sim::Nanos t0;
    std::function<void(sim::Nanos)> done;
  };

  rnic::QueuePair* qp_ = nullptr;
  std::unique_ptr<std::byte[]> bufs_;  // [request 32B][response max_value]
  rnic::MemoryRegion mr_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint32_t next_seq_ = 1;
  int recvs_outstanding_ = 0;
  std::uint64_t responses_ = 0;
};

}  // namespace redn::baseline
