// Calibration constants for the baseline systems (one-sided FaRM-KV-style
// gets, two-sided RPC-over-RDMA in polling/event/VMA flavours).
//
// Like rnic/calibration.h, semantics are structural (RTT counts, CPU
// involvement, copies, wakeups) and these constants only set magnitudes.
// They are tuned once against the paper's reported baseline relationships:
//   - one-sided gets ≈ 2x RedN latency at small values (Fig 10/11)
//   - two-sided polling ≈ 1.4-2x RedN; event ≈ 3.8x (Fig 10)
//   - Memcached-over-VMA ≈ 2.6x RedN; degrades with value size due to
//     per-byte copies through the sockets API (Fig 14)
//   - contention: with 16 writers the two-sided 99th percentile reaches
//     ~35x RedN's (Fig 15)
#pragma once

#include "sim/time.h"

namespace redn::baseline {

struct BaselineCalibration {
  // --- two-sided RPC server --------------------------------------------------
  // Busy-poll sampling delay between a CQE becoming visible and the server
  // noticing it (polling mode: a dedicated spinning core).
  sim::Nanos poll_detect = 200;
  // Event mode: block on a completion channel; wakeup adds this latency.
  sim::Nanos event_wakeup = 14'000;
  // CPU time to parse a get, look up the hash table, and post the response.
  sim::Nanos get_service = 3'500;
  // CPU time to handle a set (allocate + copy + insert + ack).
  sim::Nanos set_service = 2'600;
  // Response staging copy (value into the registered send buffer).
  double memcpy_gbps = 96.0;  // 12 GB/s
  // VMA flavour: user-space network stack cost per packet, each direction,
  // plus a client-side receive copy through the sockets API.
  sim::Nanos vma_stack = 3'800;

  // --- contention model (Fig 15) ---------------------------------------------
  // With W closed-loop writers hammering the server, every handler suffers
  // an involuntary context switch with probability W * prob_per_writer,
  // costing Exp(mean = W * mean_per_writer). This reproduces the paper's
  // observation that CPU contention inflates tails far more than averages.
  double ctx_prob_per_writer = 0.0015;
  sim::Nanos ctx_mean_per_writer = 4'000;

  // --- one-sided client -------------------------------------------------------
  // Per dependent READ: post overhead + completion detection + parsing in
  // the client's lookup loop (FaRM-KV-style framework costs).
  sim::Nanos client_read_overhead = 3'600;
};

}  // namespace redn::baseline
