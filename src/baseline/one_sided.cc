#include "baseline/one_sided.h"

namespace redn::baseline {

OneSidedKvClient::OneSidedKvClient(rnic::RnicDevice& cdev,
                                   rnic::RnicDevice& sdev,
                                   const kv::RdmaHashTable& table,
                                   kv::ValueHeap& heap,
                                   BaselineCalibration cal,
                                   std::size_t max_value)
    : cdev_(cdev), table_(table), heap_rkey_(heap.rkey()), cal_(cal) {
  rnic::QpConfig s;
  s.send_cq = sdev.CreateCq();
  s.recv_cq = sdev.CreateCq();
  rnic::QueuePair* srv = sdev.CreateQp(s);
  rnic::QpConfig c;
  c.send_cq = cdev_.CreateCq();
  c.recv_cq = cdev_.CreateCq();
  qp_ = cdev_.CreateQp(c);
  rnic::Connect(qp_, srv, cdev_.cal().net_one_way);
  buf_ = std::make_unique<std::byte[]>(kScratch + max_value);
  mr_ = cdev_.pd().Register(buf_.get(), kScratch + max_value, rnic::kAccessAll);
}

bool OneSidedKvClient::BlockingRead(std::uint64_t raddr, std::uint32_t rkey,
                                    std::uint32_t len, std::uint64_t laddr,
                                    sim::Nanos timeout) {
  auto& sim = cdev_.sim();
  // Client-side software: compute addresses, build the WR, post.
  sim.RunUntil(sim.now() + cal_.client_read_overhead / 2);
  verbs::PostSendNow(qp_, verbs::MakeRead(laddr, len, mr_.lkey, raddr, rkey));
  verbs::Cqe cqe;
  if (!verbs::AwaitCqe(sim, cdev_, qp_->send_cq, &cqe, sim.now() + timeout)) {
    return false;
  }
  // Completion detection + parse.
  sim.RunUntil(sim.now() + cal_.client_read_overhead / 2);
  return cqe.status == rnic::WcStatus::kSuccess;
}

OneSidedKvClient::Result OneSidedKvClient::Get(std::uint64_t key,
                                               sim::Nanos timeout) {
  auto& sim = cdev_.sim();
  Result r;
  const sim::Nanos t0 = sim.now();

  // 1. Neighbourhood of H1.
  if (!BlockingRead(table_.NeighborhoodAddr(key), table_.rkey(),
                    table_.NeighborhoodBytes(), mr_.addr, timeout)) {
    return r;
  }
  ++r.reads_issued;

  const std::uint64_t masked = key & kv::kKeyMask;
  std::uint64_t ptr = 0;
  std::uint32_t len = 0;
  const int nb = table_.NeighborhoodBytes() / kv::kBucketSize;
  for (int i = 0; i < nb; ++i) {
    const std::uint64_t slot = mr_.addr + i * kv::kBucketSize;
    if (rnic::dma::ReadU64(slot + kv::kBucketKeyOff) == masked) {
      ptr = rnic::dma::ReadU64(slot + kv::kBucketPtrOff);
      len = rnic::dma::ReadU32(slot + kv::kBucketLenOff);
      break;
    }
  }

  // 2. Fall back to the H2 bucket.
  if (ptr == 0) {
    if (!BlockingRead(table_.BucketAddr2(key), table_.rkey(), kv::kBucketSize,
                      mr_.addr + 1024, timeout)) {
      return r;
    }
    ++r.reads_issued;
    const std::uint64_t slot = mr_.addr + 1024;
    if (rnic::dma::ReadU64(slot + kv::kBucketKeyOff) == masked) {
      ptr = rnic::dma::ReadU64(slot + kv::kBucketPtrOff);
      len = rnic::dma::ReadU32(slot + kv::kBucketLenOff);
    }
  }
  if (ptr == 0) return r;  // miss

  // 3. Fetch the value.
  if (!BlockingRead(ptr, heap_rkey_, len, mr_.addr + kScratch, timeout)) {
    return r;
  }
  ++r.reads_issued;

  r.found = true;
  r.len = len;
  r.latency = sim.now() - t0;
  return r;
}

}  // namespace redn::baseline
