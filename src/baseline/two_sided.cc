#include "baseline/two_sided.h"

#include <cstring>

namespace redn::baseline {

using rnic::Opcode;

TwoSidedKvServer::TwoSidedKvServer(rnic::RnicDevice& dev,
                                   kv::RdmaHashTable& table,
                                   kv::ValueHeap& heap, Mode mode,
                                   BaselineCalibration cal)
    : dev_(dev), table_(table), heap_(heap), mode_(mode), cal_(cal) {}

rnic::QueuePair* TwoSidedKvServer::AddClient() {
  auto ctx = std::make_unique<ClientCtx>();
  rnic::QpConfig cfg;
  cfg.sq_depth = 4096;
  cfg.rq_depth = 4096;
  cfg.send_cq = dev_.CreateCq();
  cfg.recv_cq = dev_.CreateCq();
  ctx->qp = dev_.CreateQp(cfg);
  ctx->req_bufs = std::make_unique<std::byte[]>(kRecvRing * kRequestBytes);
  ctx->req_mr = dev_.pd().Register(ctx->req_bufs.get(),
                                   kRecvRing * kRequestBytes, rnic::kAccessAll);
  ClientCtx* raw = ctx.get();
  ctx->qp->recv_cq->SetHostNotify([this, raw] { OnRecvCqe(*raw); });
  RestockRecv(*ctx);
  clients_.push_back(std::move(ctx));
  return clients_.back()->qp;
}

void TwoSidedKvServer::RestockRecv(ClientCtx& ctx) {
  while (ctx.qp->rq.posted - ctx.qp->rq.consumed < kRecvRing) {
    verbs::RecvWr rwr;
    rwr.local_addr = ctx.req_mr.addr + (ctx.next_slot % kRecvRing) * kRequestBytes;
    rwr.length = kRequestBytes;
    rwr.lkey = ctx.req_mr.lkey;
    rwr.wr_id = rwr.local_addr;  // find the buffer from the CQE
    verbs::PostRecv(ctx.qp, rwr);
    ++ctx.next_slot;
  }
}

void TwoSidedKvServer::OnRecvCqe(ClientCtx& ctx) {
  // Detection cost: busy-poll sampling or event-channel wakeup.
  const sim::Nanos detect =
      mode_ == Mode::kEvent ? cal_.event_wakeup : cal_.poll_detect;
  dev_.sim().After(detect, [this, &ctx] {
    rnic::Cqe cqe;
    while (dev_.PollCq(ctx.qp->recv_cq, 1, &cqe) == 1) {
      if (!alive_) continue;  // dropped on the floor during the crash window
      Request req;
      rnic::dma::Read(&req, cqe.wr_id, sizeof(req));
      Handle(ctx, req);
    }
    RestockRecv(ctx);
  });
}

sim::Nanos TwoSidedKvServer::ContentionNoise() {
  if (writers_ <= 0) return 0;
  const double p = writers_ * cal_.ctx_prob_per_writer;
  if (rng_.NextBool(p)) {
    return static_cast<sim::Nanos>(
        rng_.NextExponential(static_cast<double>(writers_) *
                             cal_.ctx_mean_per_writer));
  }
  return 0;
}

void TwoSidedKvServer::Handle(ClientCtx& ctx, Request req) {
  // Queue the handler on the serving core. Closed-loop writers keep the
  // core busy, so gets wait behind sets here — that is the whole contention
  // story of Fig 15.
  const std::uint32_t seq = static_cast<std::uint32_t>(req.op >> 8);
  const bool is_get = (req.op & 0xff) == kOpGet;
  sim::Nanos service = is_get ? cal_.get_service : cal_.set_service;
  service += ContentionNoise();

  std::uint64_t value_ptr = 0;
  std::uint32_t value_len = 0;
  if (is_get) {
    if (auto e = table_.Lookup(req.key)) {
      value_ptr = e->ptr;
      value_len = e->len;
    }
    // Response staging copy into the registered send buffer.
    service += sim::BandwidthResource(cal_.memcpy_gbps)
                   .SerializationDelay(value_len);
    if (mode_ == Mode::kVma) service += cal_.vma_stack;  // TX stack
  } else {
    // Set: allocate + copy + insert. The payload itself is synthesized.
    value_ptr = heap_.Reserve(req.set_len == 0 ? 8 : req.set_len);
    value_len = req.set_len == 0 ? 8 : req.set_len;
    if (mode_ == Mode::kVma) service += cal_.vma_stack;
  }

  const sim::Nanos done = cpu_.Reserve(dev_.sim().now(), service);
  dev_.sim().At(done, [this, &ctx, req, seq, is_get, value_ptr, value_len] {
    if (!alive_ || !ctx.qp->alive) return;
    if (is_get) {
      ++gets_served_;
      if (value_ptr != 0) {
        verbs::SendWr resp;
        resp.opcode = Opcode::kWriteImm;
        resp.signaled = false;
        resp.local_addr = value_ptr;
        resp.length = value_len;
        resp.lkey = heap_.lkey();
        resp.remote_addr = req.resp_addr;
        resp.rkey = req.resp_rkey;
        resp.imm = seq;
        verbs::PostSendNow(ctx.qp, resp);
      }
    } else {
      ++sets_served_;
      table_.Insert(req.key, value_ptr, value_len);
      verbs::SendWr ack;
      ack.opcode = Opcode::kWriteImm;
      ack.signaled = false;
      ack.length = 0;
      ack.remote_addr = req.resp_addr;
      ack.rkey = req.resp_rkey;
      ack.imm = seq;
      verbs::PostSendNow(ctx.qp, ack);
    }
  });
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

TwoSidedKvClient::TwoSidedKvClient(rnic::RnicDevice& cdev,
                                   TwoSidedKvServer& server,
                                   std::size_t max_value)
    : cdev_(cdev), server_(server) {
  rnic::QueuePair* srv_qp = server.AddClient();
  rnic::QpConfig cfg;
  cfg.sq_depth = 4096;
  cfg.rq_depth = 4096;
  cfg.send_cq = cdev_.CreateCq();
  cfg.recv_cq = cdev_.CreateCq();
  qp_ = cdev_.CreateQp(cfg);
  rnic::Connect(qp_, srv_qp, cdev_.cal().net_one_way);
  bufs_ = std::make_unique<std::byte[]>(kRequestBytes + max_value);
  mr_ = cdev_.pd().Register(bufs_.get(), kRequestBytes + max_value,
                            rnic::kAccessAll);
  qp_->recv_cq->SetHostNotify([this] { OnResponse(); });
}

void TwoSidedKvClient::EnsureRecv() {
  while (recvs_outstanding_ < 16) {
    verbs::RecvWr rwr;
    verbs::PostRecv(qp_, rwr);
    ++recvs_outstanding_;
  }
}

void TwoSidedKvClient::Send(std::uint64_t op, std::uint64_t key,
                            std::uint32_t len,
                            std::function<void(sim::Nanos)> done) {
  EnsureRecv();
  const std::uint32_t seq = next_seq_++;
  Request req;
  req.op = op | (static_cast<std::uint64_t>(seq) << 8);
  req.key = key;
  req.resp_addr = mr_.addr + kRequestBytes;
  req.resp_rkey = mr_.rkey;
  req.set_len = len;
  std::memcpy(bufs_.get(), &req, sizeof(req));
  const sim::Nanos t0 = cdev_.sim().now();
  // VMA models the sockets TX path cost on the client as well.
  const sim::Nanos tx_delay = server_.mode() == TwoSidedKvServer::Mode::kVma
                                  ? server_.cal().vma_stack
                                  : 0;
  pending_.emplace(seq, Pending{t0, std::move(done)});
  cdev_.sim().After(tx_delay, [this] {
    verbs::PostSendNow(
        qp_, verbs::MakeSend(mr_.addr, kRequestBytes, mr_.lkey,
                             /*signaled=*/false));
  });
}

void TwoSidedKvClient::OnResponse() {
  rnic::Cqe cqe;
  while (cdev_.PollCq(qp_->recv_cq, 1, &cqe) == 1) {
    --recvs_outstanding_;
    auto it = pending_.find(cqe.imm);
    if (it == pending_.end()) continue;  // late response to a timed-out op
    auto [t0, done] = std::move(it->second);
    pending_.erase(it);
    ++responses_;
    // VMA RX path: stack + copy out of the socket buffer.
    sim::Nanos rx_delay = 0;
    if (server_.mode() == TwoSidedKvServer::Mode::kVma) {
      rx_delay = server_.cal().vma_stack +
                 sim::BandwidthResource(server_.cal().memcpy_gbps)
                     .SerializationDelay(cqe.byte_len);
    }
    const sim::Nanos t0c = t0;
    auto cb = std::move(done);
    cdev_.sim().After(rx_delay, [this, t0c, cb = std::move(cb)] {
      if (cb) cb(cdev_.sim().now() - t0c);
    });
  }
}

void TwoSidedKvClient::SendGet(std::uint64_t key,
                               std::function<void(sim::Nanos)> done) {
  Send(kOpGet, key, 0, std::move(done));
}

void TwoSidedKvClient::SendSet(std::uint64_t key, std::uint32_t len,
                               std::function<void(sim::Nanos)> done) {
  Send(kOpSet, key, len, std::move(done));
}

TwoSidedKvClient::Result TwoSidedKvClient::Blocking(std::uint64_t op,
                                                    std::uint64_t key,
                                                    std::uint32_t len,
                                                    sim::Nanos timeout) {
  Result r;
  auto finished = std::make_shared<bool>(false);
  auto out = std::make_shared<Result>();
  const std::uint32_t seq = next_seq_;  // Send() will consume this seq
  Send(op, key, len, [finished, out](sim::Nanos lat) {
    out->ok = true;
    out->latency = lat;
    *finished = true;
  });
  auto& sim = cdev_.sim();
  const sim::Nanos deadline = sim.now() + timeout;
  while (!*finished && sim.now() <= deadline) {
    if (!sim.Step()) break;
  }
  if (!*finished) pending_.erase(seq);  // timed out: disarm the callback
  return *out;
}

TwoSidedKvClient::Result TwoSidedKvClient::Get(std::uint64_t key,
                                               sim::Nanos timeout) {
  return Blocking(kOpGet, key, 0, timeout);
}

TwoSidedKvClient::Result TwoSidedKvClient::Set(std::uint64_t key,
                                               std::uint32_t len,
                                               sim::Nanos timeout) {
  return Blocking(kOpSet, key, len, timeout);
}

}  // namespace redn::baseline
