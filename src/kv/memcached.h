// A Memcached-like key-value server over the simulated RNIC (§5.4-5.6).
//
// Mirrors the paper's modified Memcached: a cuckoo/2-choice hash table and
// the value heap are RDMA-registered so the RNIC can serve gets directly;
// sets and the baseline gets go through the two-sided RPC front (the
// "~700 LoC RDMA integration" of §5.4). Bucket value pointers are stored in
// the WQE-attribute format (the paper's big-endian tweak) by construction,
// since kv::RdmaHashTable's layout *is* the offload ABI.
//
// Failure model (§5.6): RDMA resources are owned either by the application
// process or by an empty-hull parent process (the fork trick of [38]).
// CrashProcess() kills the app: the OS reclaims its resources — which
// terminates any RDMA program whose QPs it owned — and restarts Memcached,
// which needs restart_time plus a pass over every item to rebuild its
// table. With hull ownership, pre-posted chains keep serving throughout.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/two_sided.h"
#include "kv/table.h"
#include "rnic/device.h"

namespace redn::kv {

class MemcachedServer {
 public:
  static constexpr int kHullPid = 1;
  static constexpr int kAppPid = 7;

  struct Config {
    std::size_t buckets = 1 << 16;
    std::size_t heap_bytes = 512 << 20;
    baseline::TwoSidedKvServer::Mode rpc_mode =
        baseline::TwoSidedKvServer::Mode::kVma;
    baseline::BaselineCalibration rpc_cal = {};
    // Own RDMA resources via an empty-hull parent (survives app crashes).
    bool hull_parent = false;
    // Vanilla restart cost: process bootstrap, then metadata/hash rebuild.
    sim::Nanos restart_time = sim::Seconds(1.0);
    sim::Nanos rebuild_per_item = sim::Micros(125);
  };

  MemcachedServer(rnic::RnicDevice& dev, Config cfg);

  // Host-side store API.
  void Set(std::uint64_t key, const void* value, std::uint32_t len);
  void SetPattern(std::uint64_t key, std::uint32_t len);

  RdmaHashTable& table() { return table_; }
  ValueHeap& heap() { return heap_; }
  rnic::RnicDevice& dev() { return dev_; }
  baseline::TwoSidedKvServer& rpc() { return rpc_; }

  // PID that should own RDMA resources created on behalf of this server.
  int resource_owner_pid() const {
    return cfg_.hull_parent ? kHullPid : kAppPid;
  }

  // --- failure injection (§5.6) --------------------------------------------
  // Kills the Memcached process now. The RPC front goes dark until restart
  // completes; resources owned by kAppPid are reclaimed by the OS.
  void CrashProcess();
  // Kernel panic: the host CPU freezes for `down_for`; NIC resources are
  // untouched (no process exit, nothing reclaimed).
  void CrashOs(sim::Nanos down_for);
  bool process_alive() const { return process_alive_; }
  std::uint64_t items() const { return table_.size(); }

 private:
  rnic::RnicDevice& dev_;
  Config cfg_;
  RdmaHashTable table_;
  ValueHeap heap_;
  baseline::TwoSidedKvServer rpc_;
  bool process_alive_ = true;
};

}  // namespace redn::kv
