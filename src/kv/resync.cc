#include "kv/resync.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kv/table.h"
#include "rnic/memory.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

namespace redn::kv {

ResyncSession::ResyncSession(sim::Simulator& sim, Config cfg,
                             std::vector<Item> items, DoneFn on_done)
    : sim_(sim),
      cfg_(cfg),
      items_(std::move(items)),
      on_done_(std::move(on_done)) {
  if (cfg_.qp == nullptr) {
    throw std::invalid_argument("ResyncSession: a requester QP is required");
  }
  if (cfg_.window < 1) {
    throw std::invalid_argument("ResyncSession: window must be >= 1");
  }
  for (const Item& it : items_) {
    if (it.len < kValueVersionBytes) {
      throw std::invalid_argument(
          "ResyncSession: item shorter than the version tag");
    }
    slot_bytes_ = std::max(slot_bytes_, it.len);
  }
  if (slot_bytes_ == 0) slot_bytes_ = kValueVersionBytes;
  if (static_cast<std::size_t>(cfg_.window) > items_.size() &&
      !items_.empty()) {
    cfg_.window = static_cast<int>(items_.size());
  }
  const std::size_t bytes =
      static_cast<std::size_t>(cfg_.window) * slot_bytes_;
  staging_ = std::make_unique<std::byte[]>(bytes);
  std::memset(staging_.get(), 0, bytes);
  staging_mr_ =
      cfg_.qp->device->pd().Register(staging_.get(), bytes, rnic::kAccessAll);
  slot_item_.assign(static_cast<std::size_t>(cfg_.window), 0);
  for (int s = cfg_.window - 1; s >= 0; --s) free_slots_.push_back(s);
}

void ResyncSession::Start() {
  if (started_) return;
  started_ = true;
  stats_.started = sim_.now();
  if (items_.empty()) {
    Finish();
    return;
  }
  // The session owns this CQ's notify hook until it finishes; the guard on
  // done_ (rather than unhooking) avoids destroying the executing lambda
  // from inside its own invocation.
  cfg_.qp->send_cq->SetHostNotify([this] {
    if (done_) return;
    rnic::Cqe cqe;
    while (cfg_.qp->device->PollCq(cfg_.qp->send_cq, 1, &cqe) == 1) {
      const int slot = static_cast<int>(cqe.wr_id);
      const Item& it = items_[slot_item_[static_cast<std::size_t>(slot)]];
      ++stats_.keys_scanned;
      if (cqe.status != rnic::WcStatus::kSuccess) {
        // Donor died (or the QP flushed) mid-sync: the staged bytes never
        // arrived. Leave the local value alone and mark the session so the
        // orchestrator can retry against the new chain.
        stats_.failed = true;
      } else {
        stats_.bytes_read += it.len;
        const std::uint64_t slot_addr =
            staging_mr_.addr + static_cast<std::uint64_t>(slot) * slot_bytes_;
        const std::uint64_t staged = ValueVersion(slot_addr);
        const std::uint64_t local = ValueVersion(it.local_addr);
        if (staged >= local) {
          // Peer wins ties: idempotent, and a dual-applied put (local ==
          // staged) just rewrites identical bytes.
          rnic::dma::Copy(it.local_addr, slot_addr, it.len);
          ++stats_.keys_applied;
        } else {
          // A put landed here after the READ was issued — local is newer.
          ++stats_.keys_kept_local;
        }
      }
      free_slots_.push_back(slot);
      ++completed_;
    }
    if (stats_.failed) {
      // The QP is wrecked; further posts would vanish without flush CQEs.
      // Finish now with whatever reconciled — the orchestrator retries.
      Finish();
      return;
    }
    if (completed_ == items_.size()) {
      Finish();
      return;
    }
    Pump();
  });
  Pump();
}

void ResyncSession::Pump() {
  bool posted = false;
  while (!free_slots_.empty() && next_ < items_.size()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    slot_item_[static_cast<std::size_t>(slot)] = next_;
    const Item& it = items_[next_++];
    verbs::SendWr wr = verbs::MakeRead(
        staging_mr_.addr + static_cast<std::uint64_t>(slot) * slot_bytes_,
        it.len, staging_mr_.lkey, it.remote_addr, cfg_.remote_rkey,
        /*signaled=*/true);
    wr.wr_id = static_cast<std::uint64_t>(slot);
    verbs::PostSend(cfg_.qp, wr);
    posted = true;
  }
  if (posted) verbs::RingDoorbell(cfg_.qp);
}

void ResyncSession::Finish() {
  if (done_) return;
  done_ = true;
  stats_.finished = sim_.now();
  if (on_done_) on_done_(stats_);
}

}  // namespace redn::kv
