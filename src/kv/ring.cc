#include "kv/ring.h"

#include <algorithm>
#include <stdexcept>

#include "kv/table.h"

namespace redn::kv {

ConsistentHashRing::ConsistentHashRing(int shards, int vnodes,
                                       std::uint64_t seed)
    : shards_(shards) {
  if (shards < 1) throw std::invalid_argument("ring: shards must be >= 1");
  if (vnodes < 1) throw std::invalid_argument("ring: vnodes must be >= 1");
  points_.reserve(static_cast<std::size_t>(shards) * vnodes);
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      // Hash1 is the table's 48-bit mixer; feed it a distinct nonzero word
      // per (shard, vnode) so points are spread and deterministic.
      const std::uint64_t word =
          seed ^ (static_cast<std::uint64_t>(s + 1) << 32) ^
          static_cast<std::uint64_t>(v + 1);
      points_.push_back({Hash1(word), s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Tie-break on shard id so equal hashes cannot make the ring order
    // depend on sort stability.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });

  // Chain successor: the next distinct shard clockwise of each shard's
  // lowest-hash point.
  successor_.assign(static_cast<std::size_t>(shards), 0);
  for (int s = 0; s < shards; ++s) {
    std::size_t first = points_.size();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].shard == s) {
        first = i;
        break;
      }
    }
    int succ = s;  // single-shard ring: a shard is its own successor
    for (std::size_t step = 1; step <= points_.size(); ++step) {
      const Point& p = points_[(first + step) % points_.size()];
      if (p.shard != s) {
        succ = p.shard;
        break;
      }
    }
    successor_[static_cast<std::size_t>(s)] = succ;
  }
}

int ConsistentHashRing::PrimaryOf(std::uint64_t key) const {
  const std::uint64_t h = Hash1(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->shard;
}

}  // namespace redn::kv
