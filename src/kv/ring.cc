#include "kv/ring.h"

#include <algorithm>
#include <stdexcept>

#include "kv/table.h"

namespace redn::kv {

ConsistentHashRing::ConsistentHashRing(int shards, int vnodes,
                                       std::uint64_t seed)
    : shards_(shards), active_count_(shards) {
  if (shards < 1) throw std::invalid_argument("ring: shards must be >= 1");
  if (vnodes < 1) throw std::invalid_argument("ring: vnodes must be >= 1");
  points_.reserve(static_cast<std::size_t>(shards) * vnodes);
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      // Hash1 is the table's 48-bit mixer; feed it a distinct nonzero word
      // per (shard, vnode) so points are spread and deterministic.
      const std::uint64_t word =
          seed ^ (static_cast<std::uint64_t>(s + 1) << 32) ^
          static_cast<std::uint64_t>(v + 1);
      points_.push_back({Hash1(word), s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Tie-break on shard id so equal hashes cannot make the ring order
    // depend on sort stability.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
  active_.assign(static_cast<std::size_t>(shards), true);
  RecomputeSuccessors();
}

void ConsistentHashRing::RecomputeSuccessors() {
  // Chain successor: the next distinct *active* shard clockwise of each
  // shard's lowest-hash point. Computed for inactive shards too, so the
  // service can ask where a removed shard's keys went.
  successor_.assign(static_cast<std::size_t>(shards_), 0);
  for (int s = 0; s < shards_; ++s) {
    std::size_t first = points_.size();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].shard == s) {
        first = i;
        break;
      }
    }
    int succ = s;  // sole active shard: a shard is its own successor
    for (std::size_t step = 1; step <= points_.size(); ++step) {
      const Point& p = points_[(first + step) % points_.size()];
      if (p.shard != s && active_[static_cast<std::size_t>(p.shard)]) {
        succ = p.shard;
        break;
      }
    }
    successor_[static_cast<std::size_t>(s)] = succ;
  }
}

void ConsistentHashRing::Remove(int shard) {
  if (shard < 0 || shard >= shards_) {
    throw std::invalid_argument("ring: Remove of unknown shard");
  }
  if (!active_[static_cast<std::size_t>(shard)]) {
    throw std::logic_error("ring: Remove of already-removed shard");
  }
  if (active_count_ == 1) {
    throw std::logic_error("ring: cannot remove the last active shard");
  }
  active_[static_cast<std::size_t>(shard)] = false;
  --active_count_;
  RecomputeSuccessors();
}

void ConsistentHashRing::Rejoin(int shard) {
  if (shard < 0 || shard >= shards_) {
    throw std::invalid_argument("ring: Rejoin of unknown shard");
  }
  if (active_[static_cast<std::size_t>(shard)]) {
    throw std::logic_error("ring: Rejoin of a shard that is active");
  }
  active_[static_cast<std::size_t>(shard)] = true;
  ++active_count_;
  RecomputeSuccessors();
}

int ConsistentHashRing::PrimaryOf(std::uint64_t key) const {
  const std::uint64_t h = Hash1(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  // First active point clockwise of h (points of removed shards are kept
  // in the vector so a rejoin restores the identical mapping).
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const std::size_t i =
        (static_cast<std::size_t>(it - points_.begin()) + step) %
        points_.size();
    if (active_[static_cast<std::size_t>(points_[i].shard)]) {
      return points_[i].shard;
    }
  }
  return points_.front().shard;  // unreachable: >= 1 shard is always active
}

}  // namespace redn::kv
