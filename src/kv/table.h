// RDMA-visible hash table and value heap.
//
// The layouts here are part of the offload ABI: the RNIC program reads
// buckets with scatter lists that drop bucket fields directly into WQE
// fields (Fig 9), so offsets are fixed and documented.
//
// Bucket (24 bytes):
//   offset 0  : u64 key   48-bit key; 0 = empty (keys must be non-zero)
//   offset 8  : u64 ptr   address of the value bytes (registered heap)
//   offset 16 : u32 len   value length
//   offset 20 : u32 pad
//
// A READ of the first 20 bytes scatters as:
//   key -> response WQE ctrl word   (sets id = key, opcode = NOOP)
//   ptr -> response WQE local_addr  (the value the WRITE will send)
//   len -> response WQE length
//
// Hashing is 2-choice (the paper's H = 2, "common in practice [24]"): a key
// lives in bucket H1(k) or H2(k). For the FaRM-style one-sided baseline the
// table also exposes hopscotch neighbourhoods of H1 (default size 6).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rnic/device.h"

namespace redn::kv {

inline constexpr std::size_t kBucketSize = 24;
inline constexpr std::size_t kBucketKeyOff = 0;
inline constexpr std::size_t kBucketPtrOff = 8;
inline constexpr std::size_t kBucketLenOff = 16;
inline constexpr std::uint64_t kKeyMask = (1ULL << 48) - 1;

// 48-bit mixers for the two bucket choices.
std::uint64_t Hash1(std::uint64_t key);
std::uint64_t Hash2(std::uint64_t key);

// --- Versioned values -------------------------------------------------------
// When the KV service runs a write path, every value starts with a u64
// version tag (0 = seeded, +1 per applied put); payload bytes follow. The
// payload is a pure function of (key, version), so readers, the chain
// successor, and anti-entropy resync can all verify bytes without keeping a
// shadow copy of the store.
inline constexpr std::uint32_t kValueVersionBytes = 8;

// Deterministic payload byte `i` of (key, version).
inline std::uint8_t VersionedPatternByte(std::uint64_t key,
                                         std::uint64_t version,
                                         std::uint32_t i) {
  return static_cast<std::uint8_t>((key + 131 * version + i) & 0xff);
}

// Version tag of the value at `addr` (little-endian u64 in bytes [0, 8)).
std::uint64_t ValueVersion(std::uint64_t addr);
void SetValueVersion(std::uint64_t addr, std::uint64_t version);

// Writes the tag and fills bytes [8, len) with the pattern. len >= 8.
void WriteVersionedValue(std::uint64_t addr, std::uint32_t len,
                         std::uint64_t key, std::uint64_t version);

// True iff the value's payload matches the pattern for (key, its own tag).
bool VersionedValueIntact(std::uint64_t addr, std::uint32_t len,
                          std::uint64_t key);

// Bump allocator over one registered region: values live here so a single
// rkey covers everything the response WRITE may point at.
class ValueHeap {
 public:
  ValueHeap(rnic::RnicDevice& dev, std::size_t capacity_bytes);

  // Copies `len` bytes in and returns their address; 8-byte aligned.
  std::uint64_t Store(const void* data, std::uint32_t len);
  // Reserves zeroed space without data.
  std::uint64_t Reserve(std::uint32_t len);

  std::uint32_t lkey() const { return mr_.lkey; }
  std::uint32_t rkey() const { return mr_.rkey; }
  std::uint64_t base() const { return mr_.addr; }
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }
  void Clear() { used_ = 0; }

 private:
  std::unique_ptr<std::byte[]> mem_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  rnic::MemoryRegion mr_;
};

// Fixed-size 2-choice hash table in registered memory.
class RdmaHashTable {
 public:
  struct Config {
    std::size_t buckets = 1 << 16;  // power of two
    int neighborhood = 6;           // hopscotch window for one-sided reads
  };

  RdmaHashTable(rnic::RnicDevice& dev, Config cfg);

  // Inserts key -> (ptr, len). Returns false if both candidate buckets (and
  // the H1 neighbourhood) are full. `force_second` plants the key in its
  // H2 bucket even if H1 is free — used to construct the collision
  // experiments (Fig 11).
  bool Insert(std::uint64_t key, std::uint64_t ptr, std::uint32_t len,
              bool force_second = false);

  bool Erase(std::uint64_t key);
  void Clear();

  struct Entry {
    std::uint64_t ptr;
    std::uint32_t len;
  };
  // Host-side lookup (used by the two-sided baseline's CPU handler).
  std::optional<Entry> Lookup(std::uint64_t key) const;

  // True iff `key` occupies one of its two candidate buckets — the only
  // slots a NIC-offloaded 2-bucket probe (HashGetOffload) reads. A key that
  // fell back to the hopscotch neighbourhood is host-visible via Lookup but
  // invisible to the offload; NIC-served workloads must draw from visible
  // keys or treat such gets as misses.
  bool NicVisible(std::uint64_t key) const;

  // Bucket addresses for building triggers / one-sided reads.
  std::uint64_t BucketAddr1(std::uint64_t key) const;
  std::uint64_t BucketAddr2(std::uint64_t key) const;
  // Start of the H1 hopscotch neighbourhood and its byte length.
  std::uint64_t NeighborhoodAddr(std::uint64_t key) const;
  std::uint32_t NeighborhoodBytes() const;

  std::uint32_t rkey() const { return mr_.rkey; }
  std::uint32_t lkey() const { return mr_.lkey; }
  std::size_t size() const { return count_; }
  std::size_t buckets() const { return cfg_.buckets; }

  // Direct bucket access for tests.
  std::uint64_t BucketKeyAt(std::size_t index) const;

 private:
  std::size_t IndexOf1(std::uint64_t key) const;
  std::size_t IndexOf2(std::uint64_t key) const;
  std::uint64_t SlotAddr(std::size_t index) const;
  bool TryPlace(std::size_t index, std::uint64_t key, std::uint64_t ptr,
                std::uint32_t len);

  Config cfg_;
  std::unique_ptr<std::byte[]> mem_;
  rnic::MemoryRegion mr_;
  std::size_t count_ = 0;
};

}  // namespace redn::kv
