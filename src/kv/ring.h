// Consistent-hash ring with virtual nodes, plus the chain-replication
// placement rule the sharded KV service uses.
//
// Each shard contributes `vnodes` points on a 48-bit hash ring; a key's
// *primary* is the shard owning the first point clockwise of Hash1(key).
// The *backup* is placed at node granularity: every shard has one fixed
// chain successor — the next distinct shard clockwise of its lowest-hash
// point — and all keys whose primary is S replicate to Successor(S).
//
// Node-granularity succession (FAWN/Chord-style chaining) rather than
// per-vnode succession is deliberate: the client-side failover detour
// (offloads::ClientFailoverChain) is a WQE chain pre-installed per
// (tenant, primary) pair whose ENABLE target is fixed at arm time, so the
// backup a primary fails over to must be a function of the primary alone,
// not of the individual key.
#pragma once

#include <cstdint>
#include <vector>

namespace redn::kv {

class ConsistentHashRing {
 public:
  // `shards` >= 1; `vnodes` points per shard; `seed` perturbs point
  // placement so different rings are decorrelated but deterministic.
  ConsistentHashRing(int shards, int vnodes = 16,
                     std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Shard owning the first *active* ring point clockwise of Hash1(key).
  int PrimaryOf(std::uint64_t key) const;
  // The shard's fixed chain successor: the next distinct active shard
  // clockwise of its lowest-hash point (== shard itself when only one
  // shard is active). Defined for inactive shards too — it answers "where
  // did this shard's keys go" while it is out of the ring.
  int SuccessorOf(int shard) const { return successor_[shard]; }
  int BackupOf(std::uint64_t key) const {
    return successor_[PrimaryOf(key)];
  }

  // Membership. Remove(s) takes the shard's points out of the ring —
  // ownership of its arcs slides clockwise to the surviving shards — and
  // recomputes every successor. Rejoin(s) is the exact inverse: because a
  // shard's points depend only on (seed, shard id, vnodes), a re-joining
  // shard (or a spare adopting its id) lands on the identical points, so
  // Remove(s); Rejoin(s) restores the original mapping bit-for-bit.
  void Remove(int shard);
  void Rejoin(int shard);
  bool IsActive(int shard) const {
    return active_[static_cast<std::size_t>(shard)];
  }
  int active_shards() const { return active_count_; }

  int shards() const { return shards_; }
  std::size_t points() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t hash;
    int shard;
  };
  void RecomputeSuccessors();

  int shards_;
  int active_count_;
  std::vector<Point> points_;     // sorted by hash; includes inactive shards
  std::vector<int> successor_;    // per shard
  std::vector<bool> active_;      // per shard
};

}  // namespace redn::kv
