// Consistent-hash ring with virtual nodes, plus the chain-replication
// placement rule the sharded KV service uses.
//
// Each shard contributes `vnodes` points on a 48-bit hash ring; a key's
// *primary* is the shard owning the first point clockwise of Hash1(key).
// The *backup* is placed at node granularity: every shard has one fixed
// chain successor — the next distinct shard clockwise of its lowest-hash
// point — and all keys whose primary is S replicate to Successor(S).
//
// Node-granularity succession (FAWN/Chord-style chaining) rather than
// per-vnode succession is deliberate: the client-side failover detour
// (offloads::ClientFailoverChain) is a WQE chain pre-installed per
// (tenant, primary) pair whose ENABLE target is fixed at arm time, so the
// backup a primary fails over to must be a function of the primary alone,
// not of the individual key.
#pragma once

#include <cstdint>
#include <vector>

namespace redn::kv {

class ConsistentHashRing {
 public:
  // `shards` >= 1; `vnodes` points per shard; `seed` perturbs point
  // placement so different rings are decorrelated but deterministic.
  ConsistentHashRing(int shards, int vnodes = 16,
                     std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Shard owning the first ring point clockwise of Hash1(key).
  int PrimaryOf(std::uint64_t key) const;
  // The shard's fixed chain successor (== shard itself when shards == 1).
  int SuccessorOf(int shard) const { return successor_[shard]; }
  int BackupOf(std::uint64_t key) const {
    return successor_[PrimaryOf(key)];
  }

  int shards() const { return shards_; }
  std::size_t points() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t hash;
    int shard;
  };
  int shards_;
  std::vector<Point> points_;     // sorted by hash
  std::vector<int> successor_;    // per shard
};

}  // namespace redn::kv
