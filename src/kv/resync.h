// Anti-entropy re-sync for the chain-replicated KV service.
//
// When a shard re-joins after a crash (or heals from a window in which
// forwarded writes could not reach it), its store may be behind its chain
// peer. A ResyncSession streams the affected key range back with one-sided
// RDMA READs against the peer's value heap and reconciles per key by the
// value's embedded version tag (kv::WriteVersionedValue layout):
//
//   staged_version >= local_version  ->  adopt the peer's bytes
//   staged_version <  local_version  ->  keep the local value
//
// Ties go to the peer: a crashed re-joiner was wiped to version 0, so a tie
// means "seed value on both sides" and adopting is a no-op; on a dirty-heal
// resync a tie means both replicas already applied the same put. The >= is
// what makes re-running a session idempotent.
//
// The session runs open-loop over a window of in-flight READs (wr_id =
// staging-slot index) and reconciles each value as its READ completes, so
// the transfer overlaps with normal traffic — including dual-apply: puts
// forwarded to the resyncing shard while the session runs land with higher
// versions and are never clobbered by the stale bytes the session stages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rnic/device.h"

namespace redn::kv {

class ResyncSession {
 public:
  // One key to reconcile. Addresses are value addresses (version tag
  // first): `remote_addr` in the donor's registered heap, `local_addr` in
  // the resyncing shard's heap.
  struct Item {
    std::uint64_t key = 0;
    std::uint64_t remote_addr = 0;
    std::uint64_t local_addr = 0;
    std::uint32_t len = 0;
  };

  struct Config {
    // Requester QP on the resyncing shard's device, already RTS, whose
    // peer lives on the donor shard. The session takes over the QP's send
    // CQ host-notify hook for its lifetime.
    rnic::QueuePair* qp = nullptr;
    std::uint32_t remote_rkey = 0;  // donor value-heap rkey
    int window = 32;                // READs kept in flight
  };

  struct Stats {
    std::uint64_t keys_scanned = 0;
    std::uint64_t keys_applied = 0;     // peer's bytes adopted
    std::uint64_t keys_kept_local = 0;  // local version was newer
    std::uint64_t bytes_read = 0;
    sim::Nanos started = 0;
    sim::Nanos finished = 0;
    bool failed = false;  // a READ completed in error (donor died mid-sync)
  };

  using DoneFn = std::function<void(const Stats&)>;

  ResyncSession(sim::Simulator& sim, Config cfg, std::vector<Item> items,
                DoneFn on_done);

  // Issues the first window of READs. No-op on an empty item list (the
  // done callback still fires, synchronously).
  void Start();

  bool done() const { return done_; }
  const Stats& stats() const { return stats_; }

 private:
  void Pump();
  void Finish();

  sim::Simulator& sim_;
  Config cfg_;
  std::vector<Item> items_;
  DoneFn on_done_;

  // Staging: `window` slots of max item length each, registered on the
  // resyncing shard's device so READ responses can land in them.
  std::unique_ptr<std::byte[]> staging_;
  rnic::MemoryRegion staging_mr_;
  std::uint32_t slot_bytes_ = 0;
  std::vector<int> free_slots_;
  std::vector<std::size_t> slot_item_;  // slot -> index into items_

  std::size_t next_ = 0;       // next item to issue
  std::size_t completed_ = 0;  // items reconciled
  bool started_ = false;
  bool done_ = false;
  Stats stats_;
};

}  // namespace redn::kv
