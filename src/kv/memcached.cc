#include "kv/memcached.h"

#include <vector>

namespace redn::kv {

MemcachedServer::MemcachedServer(rnic::RnicDevice& dev, Config cfg)
    : dev_(dev),
      cfg_(cfg),
      table_(dev, {.buckets = cfg.buckets}),
      heap_(dev, cfg.heap_bytes),
      rpc_(dev, table_, heap_, cfg.rpc_mode, cfg.rpc_cal) {}

void MemcachedServer::Set(std::uint64_t key, const void* value,
                          std::uint32_t len) {
  if (auto e = table_.Lookup(key); e && e->len == len) {
    rnic::dma::Write(e->ptr, value, len);  // update in place
    return;
  }
  const std::uint64_t ptr = heap_.Store(value, len);
  table_.Insert(key, ptr, len);
}

void MemcachedServer::SetPattern(std::uint64_t key, std::uint32_t len) {
  std::vector<std::byte> v(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::byte>((key + i) & 0xff);
  }
  Set(key, v.data(), len);
}

void MemcachedServer::CrashProcess() {
  process_alive_ = false;
  rpc_.set_alive(false);
  if (!cfg_.hull_parent) {
    // The OS reclaims the dead process's memory: queues, doorbell records —
    // any RDMA program rooted in them is terminated mid-flight.
    dev_.KillProcessResources(kAppPid);
  }
  // systemd-style immediate restart, then a pass over all data items to
  // regenerate the hash table (Fig 16's ~1 s + ~1.25 s phases).
  const sim::Nanos rebuild =
      static_cast<sim::Nanos>(table_.size()) * cfg_.rebuild_per_item;
  dev_.sim().After(cfg_.restart_time + rebuild, [this] {
    process_alive_ = true;
    rpc_.set_alive(true);
  });
}

void MemcachedServer::CrashOs(sim::Nanos down_for) {
  rpc_.set_alive(false);
  dev_.sim().After(down_for, [this] { rpc_.set_alive(true); });
}

}  // namespace redn::kv
