#include "kv/table.h"

#include <cstring>

namespace redn::kv {
namespace {

std::uint64_t Mix(std::uint64_t x, std::uint64_t salt) {
  x += salt;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t Hash1(std::uint64_t key) { return Mix(key, 0x51ed270b0a1ce86dULL); }
std::uint64_t Hash2(std::uint64_t key) { return Mix(key, 0xc2b2ae3d27d4eb4fULL); }

std::uint64_t ValueVersion(std::uint64_t addr) {
  return rnic::dma::ReadU64(addr);
}

void SetValueVersion(std::uint64_t addr, std::uint64_t version) {
  rnic::dma::WriteU64(addr, version);
}

void WriteVersionedValue(std::uint64_t addr, std::uint32_t len,
                         std::uint64_t key, std::uint64_t version) {
  rnic::dma::WriteU64(addr, version);
  auto* p = reinterpret_cast<std::uint8_t*>(addr);
  for (std::uint32_t i = kValueVersionBytes; i < len; ++i) {
    p[i] = VersionedPatternByte(key, version, i);
  }
}

bool VersionedValueIntact(std::uint64_t addr, std::uint32_t len,
                          std::uint64_t key) {
  const std::uint64_t version = rnic::dma::ReadU64(addr);
  const auto* p = reinterpret_cast<const std::uint8_t*>(addr);
  for (std::uint32_t i = kValueVersionBytes; i < len; ++i) {
    if (p[i] != VersionedPatternByte(key, version, i)) return false;
  }
  return true;
}

ValueHeap::ValueHeap(rnic::RnicDevice& dev, std::size_t capacity_bytes)
    : mem_(std::make_unique<std::byte[]>(capacity_bytes)),
      capacity_(capacity_bytes) {
  std::memset(mem_.get(), 0, capacity_bytes);
  mr_ = dev.pd().Register(mem_.get(), capacity_bytes, rnic::kAccessAll);
}

std::uint64_t ValueHeap::Store(const void* data, std::uint32_t len) {
  const std::uint64_t addr = Reserve(len);
  std::memcpy(reinterpret_cast<void*>(addr), data, len);
  return addr;
}

std::uint64_t ValueHeap::Reserve(std::uint32_t len) {
  const std::size_t aligned = (len + 7u) & ~std::size_t{7};
  if (used_ + aligned > capacity_) {
    throw std::bad_alloc();
  }
  const std::uint64_t addr = mr_.addr + used_;
  used_ += aligned;
  return addr;
}

RdmaHashTable::RdmaHashTable(rnic::RnicDevice& dev, Config cfg) : cfg_(cfg) {
  const std::size_t bytes = cfg_.buckets * kBucketSize;
  mem_ = std::make_unique<std::byte[]>(bytes);
  std::memset(mem_.get(), 0, bytes);
  mr_ = dev.pd().Register(mem_.get(), bytes, rnic::kAccessAll);
}

std::size_t RdmaHashTable::IndexOf1(std::uint64_t key) const {
  return Hash1(key) & (cfg_.buckets - 1);
}

std::size_t RdmaHashTable::IndexOf2(std::uint64_t key) const {
  return Hash2(key) & (cfg_.buckets - 1);
}

std::uint64_t RdmaHashTable::SlotAddr(std::size_t index) const {
  return mr_.addr + index * kBucketSize;
}

bool RdmaHashTable::TryPlace(std::size_t index, std::uint64_t key,
                             std::uint64_t ptr, std::uint32_t len) {
  const std::uint64_t addr = SlotAddr(index);
  const std::uint64_t existing = rnic::dma::ReadU64(addr + kBucketKeyOff);
  if (existing != 0 && existing != key) return false;
  if (existing == 0) ++count_;
  rnic::dma::WriteU64(addr + kBucketKeyOff, key);
  rnic::dma::WriteU64(addr + kBucketPtrOff, ptr);
  rnic::dma::WriteU32(addr + kBucketLenOff, len);
  return true;
}

bool RdmaHashTable::Insert(std::uint64_t key, std::uint64_t ptr,
                           std::uint32_t len, bool force_second) {
  key &= kKeyMask;
  if (key == 0) return false;  // 0 is the empty sentinel
  if (!force_second && TryPlace(IndexOf1(key), key, ptr, len)) return true;
  if (TryPlace(IndexOf2(key), key, ptr, len)) return true;
  // Hopscotch-style fallback: try the H1 neighbourhood.
  const std::size_t base = IndexOf1(key);
  for (int i = 1; i < cfg_.neighborhood; ++i) {
    if (TryPlace((base + i) & (cfg_.buckets - 1), key, ptr, len)) return true;
  }
  return false;
}

bool RdmaHashTable::Erase(std::uint64_t key) {
  key &= kKeyMask;
  auto clear = [&](std::size_t index) {
    const std::uint64_t addr = SlotAddr(index);
    if (rnic::dma::ReadU64(addr + kBucketKeyOff) == key) {
      rnic::dma::WriteU64(addr + kBucketKeyOff, 0);
      rnic::dma::WriteU64(addr + kBucketPtrOff, 0);
      rnic::dma::WriteU32(addr + kBucketLenOff, 0);
      --count_;
      return true;
    }
    return false;
  };
  if (clear(IndexOf2(key))) return true;
  const std::size_t base = IndexOf1(key);
  for (int i = 0; i < cfg_.neighborhood; ++i) {
    if (clear((base + i) & (cfg_.buckets - 1))) return true;
  }
  return false;
}

void RdmaHashTable::Clear() {
  std::memset(mem_.get(), 0, cfg_.buckets * kBucketSize);
  count_ = 0;
}

bool RdmaHashTable::NicVisible(std::uint64_t key) const {
  key &= kKeyMask;
  return rnic::dma::ReadU64(SlotAddr(IndexOf1(key)) + kBucketKeyOff) == key ||
         rnic::dma::ReadU64(SlotAddr(IndexOf2(key)) + kBucketKeyOff) == key;
}

std::optional<RdmaHashTable::Entry> RdmaHashTable::Lookup(
    std::uint64_t key) const {
  key &= kKeyMask;
  auto probe = [&](std::size_t index) -> std::optional<Entry> {
    const std::uint64_t addr = SlotAddr(index);
    if (rnic::dma::ReadU64(addr + kBucketKeyOff) == key) {
      return Entry{rnic::dma::ReadU64(addr + kBucketPtrOff),
                   rnic::dma::ReadU32(addr + kBucketLenOff)};
    }
    return std::nullopt;
  };
  if (auto e = probe(IndexOf2(key))) return e;
  const std::size_t base = IndexOf1(key);
  for (int i = 0; i < cfg_.neighborhood; ++i) {
    if (auto e = probe((base + i) & (cfg_.buckets - 1))) return e;
  }
  return std::nullopt;
}

std::uint64_t RdmaHashTable::BucketAddr1(std::uint64_t key) const {
  return SlotAddr(IndexOf1(key & kKeyMask));
}

std::uint64_t RdmaHashTable::BucketAddr2(std::uint64_t key) const {
  return SlotAddr(IndexOf2(key & kKeyMask));
}

std::uint64_t RdmaHashTable::NeighborhoodAddr(std::uint64_t key) const {
  // Clamp so the window stays inside the table (no wraparound read).
  std::size_t base = IndexOf1(key & kKeyMask);
  const std::size_t max_base = cfg_.buckets - cfg_.neighborhood;
  if (base > max_base) base = max_base;
  return SlotAddr(base);
}

std::uint32_t RdmaHashTable::NeighborhoodBytes() const {
  return static_cast<std::uint32_t>(cfg_.neighborhood * kBucketSize);
}

std::uint64_t RdmaHashTable::BucketKeyAt(std::size_t index) const {
  return rnic::dma::ReadU64(SlotAddr(index) + kBucketKeyOff);
}

}  // namespace redn::kv
