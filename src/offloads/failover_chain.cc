#include "offloads/failover_chain.h"

#include <stdexcept>

#include "rnic/device.h"

namespace redn::offloads {

ClientFailoverChain::ClientFailoverChain(HashGetHarness& primary,
                                         HashGetHarness& backup, int max_arms)
    : primary_(primary),
      backup_(backup),
      prog_(primary.client_dev(), /*port=*/0,
            /*control_depth=*/static_cast<std::uint32_t>(2 * max_arms + 8)) {
  if (&primary.client_dev() != &backup.client_dev()) {
    throw std::invalid_argument(
        "ClientFailoverChain: primary and backup must share a client NIC");
  }
  if (!backup.client_qp()->sq.managed()) {
    throw std::invalid_argument(
        "ClientFailoverChain: backup client SQ must be managed "
        "(set HashGetOffload::Config::managed_client_sq)");
  }
  trig_buf_ = std::make_unique<std::byte[]>(64);
  trig_mr_ = primary.client_dev().pd().Register(trig_buf_.get(), 64,
                                                rnic::kAccessAll);
}

void ClientFailoverChain::Arm() {
  // The parked detour: posted (no doorbell — and managed SQs ignore
  // doorbells anyway), gathered from trig_buf_ only at execution time.
  const std::uint64_t slot = verbs::PostSend(
      backup_.client_qp(),
      verbs::MakeSend(trig_mr_.addr, backup_.offload().TriggerBytes(),
                      trig_mr_.lkey, /*signaled=*/false));
  // Unsignaled healthy-path sends keep the primary send CQ silent, so
  // "current count + 1" is exactly "the next failure CQE".
  wait_threshold_ = primary_.client_qp()->send_cq->hw_count() + 1;
  prog_.Wait(primary_.client_qp()->send_cq, wait_threshold_);
  prog_.Enable(backup_.client_qp(), slot + 1);
  prog_.Launch();
  ++arms_;
}

void ClientFailoverChain::SetKey(std::uint64_t key) {
  backup_.offload().BuildTrigger(key, trig_buf_.get());
}

}  // namespace redn::offloads
