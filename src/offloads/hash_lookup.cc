#include "offloads/hash_lookup.h"

#include <cassert>
#include <cstring>

#include "verbs/verbs.h"

namespace redn::offloads {

using rnic::Opcode;
using rnic::WqeField;

HashGetOffload::HashGetOffload(rnic::RnicDevice& server,
                               kv::RdmaHashTable& table, kv::ValueHeap& heap,
                               QueuePair* client_qp, QueuePair* client_qp2,
                               Config cfg)
    : server_(server),
      table_(table),
      heap_(heap),
      client_qp_(client_qp),
      client_qp2_(client_qp2),
      cfg_(cfg),
      prog_(server, cfg.port, /*control_depth=*/16u * cfg.max_requests + 64),
      prog2_(server, cfg.port, /*control_depth=*/16u * cfg.max_requests + 64),
      armed_(cfg.first_seq) {
  assert(client_qp_->sq.managed() && "response queue must be managed");
  assert(cfg_.buckets == 1 || cfg_.buckets == 2);
  const std::uint32_t chain_depth = 4u * cfg.max_requests + 16;
  m1_ = prog_.NewChainQueue(chain_depth);
  if (cfg_.parallel) {
    assert(client_qp2_ != nullptr && client_qp2_->sq.managed());
    m2_ = prog2_.NewChainQueue(chain_depth);
  }
}

void HashGetOffload::ArmBucketChain(Program& prog, QueuePair* chain,
                                    QueuePair* resp_qp,
                                    rnic::CompletionQueue* trigger_cq,
                                    std::uint64_t recv_seq,
                                    std::uint64_t resp_addr,
                                    std::uint32_t resp_rkey, std::uint32_t imm,
                                    std::vector<rnic::Sge>& recv_sges) {
  // R4: the response (posted first so READ/CAS can reference its fields).
  verbs::SendWr r4;
  r4.opcode = Opcode::kNoop;  // becomes kWriteImm on a hit
  r4.signaled = false;        // misses stay invisible
  r4.local_addr = 0;          // <- bucket.ptr via READ scatter
  r4.length = 0;              // <- bucket.len via READ scatter
  r4.lkey = heap_.lkey();
  r4.remote_addr = resp_addr;
  r4.rkey = resp_rkey;
  r4.imm = imm;
  WrRef resp = prog.Post(resp_qp, r4);

  // READ: bucket -> response WQE fields. 20 bytes scatter as documented in
  // kv/table.h. remote_addr is injected by the trigger RECV.
  const rnic::Sge* read_sges = prog.MakeSgeTable({
      {resp.FieldAddr(WqeField::kCtrl), 8, resp_qp->sq_mr.lkey},
      {resp.FieldAddr(WqeField::kLocalAddr), 8, resp_qp->sq_mr.lkey},
      {resp.FieldAddr(WqeField::kLength), 4, resp_qp->sq_mr.lkey},
  });
  verbs::SendWr read;
  read.opcode = Opcode::kRead;
  read.sge_table = read_sges;
  read.sge_count = 3;
  read.remote_addr = 0;  // <- bucket address via trigger RECV
  read.rkey = table_.rkey();
  read.length = 20;
  WrRef rd = prog.Post(chain, read);

  // CAS: {NOOP, bucket.key} vs {NOOP, x}; on match -> {WRITE_IMM, 0}.
  verbs::SendWr cas = verbs::MakeCas(
      resp.FieldAddr(WqeField::kCtrl), resp.CodeRkey(),
      /*compare=*/0,  // <- PackCtrl(NOOP, x) via trigger RECV
      /*swap=*/rnic::PackCtrl(Opcode::kWriteImm, 0));
  WrRef cs = prog.Post(chain, cas);

  // Trigger injection points for this bucket probe.
  recv_sges.push_back({cs.FieldAddr(WqeField::kCompareAdd), 8,
                       chain->sq_mr.lkey});
  recv_sges.push_back({rd.FieldAddr(WqeField::kRemoteAddr), 8,
                       chain->sq_mr.lkey});

  // Control glue (doorbell ordering): trigger -> READ -> CAS -> response.
  prog.Wait(trigger_cq, recv_seq);
  prog.Enable(chain, rd.idx + 1);
  prog.Wait(chain->send_cq, prog.SignalsPosted(chain->send_cq) - 1);
  prog.Enable(chain, cs.idx + 1);
  prog.Wait(chain->send_cq, prog.SignalsPosted(chain->send_cq));
  prog.Enable(resp_qp, resp.idx + 1);
}

void HashGetOffload::Arm(int n, std::uint64_t resp_addr,
                         std::uint32_t resp_rkey) {
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seq = ++armed_;
    const int before = prog_.budget().total() + prog2_.budget().total();

    std::vector<rnic::Sge> recv_sges;
    // Bucket 1 probe rides prog_/m1_ and answers on client_qp_.
    ArmBucketChain(prog_, m1_, client_qp_, client_qp_->recv_cq, seq,
                   resp_addr, resp_rkey, static_cast<std::uint32_t>(seq),
                   recv_sges);
    if (cfg_.buckets == 2) {
      if (cfg_.parallel) {
        // Triggers arrive on client_qp_; the parallel probe answers on the
        // second client-facing QP but gates on the same trigger CQ.
        ArmBucketChain(prog2_, m2_, client_qp2_, client_qp_->recv_cq, seq,
                       resp_addr, resp_rkey, static_cast<std::uint32_t>(seq),
                       recv_sges);
      } else {
        ArmBucketChain(prog_, m1_, client_qp_, client_qp_->recv_cq, seq,
                       resp_addr, resp_rkey, static_cast<std::uint32_t>(seq),
                       recv_sges);
      }
    }

    // One RECV consumes the trigger and feeds every probe in this request.
    verbs::RecvWr rwr;
    rwr.wr_id = seq;
    rwr.sge_table = prog_.MakeSgeTable(std::move(recv_sges));
    rwr.sge_count = static_cast<std::uint32_t>(cfg_.buckets * 2);
    verbs::PostRecv(client_qp_, rwr);

    wrs_per_request_ =
        prog_.budget().total() + prog2_.budget().total() - before + 1;
  }
  prog_.Launch();
  if (cfg_.parallel) prog2_.Launch();
}

void HashGetOffload::BuildTrigger(std::uint64_t key, std::byte* out) const {
  const std::uint64_t packed = rnic::PackCtrl(Opcode::kNoop, key);
  std::uint64_t words[4] = {packed, table_.BucketAddr1(key), packed,
                            table_.BucketAddr2(key)};
  std::memcpy(out, words, TriggerBytes());
}

}  // namespace redn::offloads
