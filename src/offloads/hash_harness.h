// End-to-end wiring for offloaded hash gets: server table + chains, client
// trigger/response plumbing. Used by tests, benches, and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "offloads/hash_lookup.h"
#include "verbs/verbs.h"

namespace redn::offloads {

class HashGetHarness {
 public:
  struct Result {
    bool found = false;
    sim::Nanos latency = 0;
    std::uint32_t len = 0;
  };

  HashGetHarness(rnic::RnicDevice& client_dev, rnic::RnicDevice& server_dev,
                 HashGetOffload::Config cfg,
                 kv::RdmaHashTable::Config table_cfg = {},
                 std::size_t heap_bytes = 256 << 20,
                 std::size_t max_value = 64 << 10);

  // Shared-store variant: the table and heap are owned elsewhere (a shard
  // shared by several harnesses — the multi-tenant KV service). They must
  // live on `server_dev` and outlive the harness.
  HashGetHarness(rnic::RnicDevice& client_dev, rnic::RnicDevice& server_dev,
                 HashGetOffload::Config cfg, kv::RdmaHashTable& shared_table,
                 kv::ValueHeap& shared_heap, std::size_t max_value = 64 << 10);

  // Stores a value under `key`; `force_second` plants it in the H2 bucket
  // (the Fig 11 collision setup).
  void Put(std::uint64_t key, const void* value, std::uint32_t len,
           bool force_second = false);
  // Convenience: value = `len` bytes of a repeating pattern derived from key.
  void PutPattern(std::uint64_t key, std::uint32_t len,
                  bool force_second = false);

  // Pre-posts chains for `n` more requests.
  void Arm(int n);

  // Transport-connected recovery (the kill-and-reconnect path): cycles every
  // QP through reset->init->rtr->rts, retires the current offload program in
  // place (a QP error flushed its pre-posted responses and trigger RECVs,
  // so its surviving chains can never run usefully again), and arms a fresh
  // program for `n` further requests whose trigger thresholds continue from
  // the CQ count the server has already consumed.
  void RearmTransport(int n);
  // Two-phase RearmTransport for sharded runs where the client and server
  // NICs live on different shards: each half cycles only the QPs its
  // shard's thread owns (a reset fences that QP's split flow, so the cycle
  // must run on the flow's sender domain). The client half additionally
  // drops the RECV accounting; the server half retires and rebuilds the
  // offload program. Calling client-half then server-half at one instant on
  // one shard is exactly RearmTransport(n).
  void RearmTransportClientHalf();
  void RearmTransportServerHalf(int n);

  // Issues one offloaded get and runs the simulator until the response
  // lands (or `timeout` of simulated time passes -> miss).
  Result Get(std::uint64_t key, sim::Nanos timeout = sim::Micros(200));

  // Fire-and-forget trigger for open-loop throughput runs; responses are
  // counted by the caller via response_count(). Returns false when the
  // connection is dead (server QPs reclaimed, or the client QP flushed).
  bool SendTrigger(std::uint64_t key);
  std::uint64_t response_count() const { return responses_; }

  kv::RdmaHashTable& table() { return *table_; }
  kv::ValueHeap& heap() { return *heap_; }
  HashGetOffload& offload() { return *offload_; }
  std::uint64_t resp_buffer_addr() const { return resp_mr_.addr; }
  // Client-side CQ where responses land (for open-loop notify hooks).
  rnic::CompletionQueue* client_recv_cq() { return cli_recv_cq_; }
  // The (first) client- and server-side QPs: the failover chain WAITs on
  // the client QP's send CQ, fault injection stalls the server QP's RQ.
  rnic::QueuePair* client_qp() { return cli_qp1_; }
  rnic::QueuePair* server_qp() { return srv_qp1_; }
  rnic::RnicDevice& client_dev() { return cdev_; }
  std::uint64_t trigger_count() const { return triggers_; }

  // Like SendTrigger, but consults only client-side state. SendTrigger's
  // peer-liveness check is host omniscience a real client doesn't have: a
  // send to a crashed server must go out and come back as the dead-peer
  // error CQE — the failure signal the detour chain WAITs on (RunKvService).
  bool SendTriggerBlind(std::uint64_t key);
  // Pre-posts `n` response RECVs on the client QP(s) without sending a
  // trigger — for responses released by a detour chain rather than
  // SendTrigger (which replenishes RECVs itself).
  void PrepostResponseRecvs(int n);
  // Server-side resource ownership (§5.6 failure experiments).
  void SetServerOwner(int pid) {
    offload_->SetOwner(pid);
    srv_qp1_->owner_pid = pid;
    if (srv_qp2_ != nullptr) srv_qp2_->owner_pid = pid;
  }
  // Count a response consumed by an open-loop driver (keeps the client-side
  // RECV accounting honest when Get() is not used).
  void NoteOpenLoopResponse(std::uint32_t qp_id) {
    if (qp_id == cli_qp1_->id) --recvs_outstanding_1_; else --recvs_outstanding_2_;
    ++responses_;
  }

  // Checks the last response payload against the PutPattern for `key`.
  bool ResponseMatchesPattern(std::uint64_t key, std::uint32_t len) const;

  // --- Versioned write path (chain-replicated KV service) ---
  // Seeds `key` with a kv::WriteVersionedValue layout at `version`
  // (u64 tag + deterministic payload; len >= kv::kValueVersionBytes).
  void PutVersioned(std::uint64_t key, std::uint32_t len,
                    std::uint64_t version = 0);
  // Version tag of the last response (first 8 bytes of the response buf).
  std::uint64_t ResponseVersion() const;
  // Checks the last response against the versioned layout for (key, its
  // own embedded tag) — the RYW check then compares the tag separately.
  bool ResponseMatchesVersionedPattern(std::uint64_t key,
                                       std::uint32_t len) const;

 private:
  void Init(std::size_t max_value);
  void EnsureRecvs();

  rnic::RnicDevice& cdev_;
  rnic::RnicDevice& sdev_;
  // Owned for the classic per-harness store; null when sharing a shard's
  // table/heap (table_/heap_ then point at the caller's).
  std::unique_ptr<kv::RdmaHashTable> owned_table_;
  std::unique_ptr<kv::ValueHeap> owned_heap_;
  kv::RdmaHashTable* table_ = nullptr;
  kv::ValueHeap* heap_ = nullptr;
  HashGetOffload::Config cfg_;

  rnic::QueuePair* srv_qp1_ = nullptr;
  rnic::QueuePair* srv_qp2_ = nullptr;
  rnic::QueuePair* cli_qp1_ = nullptr;
  rnic::QueuePair* cli_qp2_ = nullptr;
  rnic::CompletionQueue* cli_recv_cq_ = nullptr;  // shared by both client QPs

  std::unique_ptr<std::byte[]> resp_buf_;
  rnic::MemoryRegion resp_mr_;
  std::unique_ptr<std::byte[]> msg_buf_;
  rnic::MemoryRegion msg_mr_;

  std::unique_ptr<HashGetOffload> offload_;
  // Offloads abandoned by RearmTransport. Kept alive: their control queues
  // still reference WQEs and SGE tables they own, and a stale trigger-CQ
  // waiter may fire them once more (harmlessly — every enable they issue
  // lands below the reset queues' execution horizon) before going quiet.
  std::vector<std::unique_ptr<HashGetOffload>> retired_;
  int recvs_outstanding_1_ = 0;
  int recvs_outstanding_2_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace redn::offloads
