#include "offloads/hash_harness.h"

#include <cstring>

#include "rnic/device.h"

namespace redn::offloads {

HashGetHarness::HashGetHarness(rnic::RnicDevice& client_dev,
                               rnic::RnicDevice& server_dev,
                               HashGetOffload::Config cfg,
                               kv::RdmaHashTable::Config table_cfg,
                               std::size_t heap_bytes, std::size_t max_value)
    : cdev_(client_dev),
      sdev_(server_dev),
      owned_table_(std::make_unique<kv::RdmaHashTable>(server_dev, table_cfg)),
      owned_heap_(std::make_unique<kv::ValueHeap>(server_dev, heap_bytes)),
      table_(owned_table_.get()),
      heap_(owned_heap_.get()),
      cfg_(cfg) {
  Init(max_value);
}

HashGetHarness::HashGetHarness(rnic::RnicDevice& client_dev,
                               rnic::RnicDevice& server_dev,
                               HashGetOffload::Config cfg,
                               kv::RdmaHashTable& shared_table,
                               kv::ValueHeap& shared_heap,
                               std::size_t max_value)
    : cdev_(client_dev),
      sdev_(server_dev),
      table_(&shared_table),
      heap_(&shared_heap),
      cfg_(cfg) {
  Init(max_value);
}

void HashGetHarness::Init(std::size_t max_value) {
  const sim::Nanos one_way = sdev_.cal().net_one_way;

  const std::uint32_t resp_depth = 2u * cfg_.max_requests + 64;
  auto make_pair = [&](rnic::QueuePair*& srv, rnic::QueuePair*& cli) {
    rnic::QpConfig s;
    s.sq_depth = resp_depth;
    s.rq_depth = resp_depth;
    s.port = cfg_.port;
    s.managed = true;  // holds the pre-posted response WRs
    s.send_cq = sdev_.CreateCq();
    s.recv_cq = sdev_.CreateCq();
    srv = sdev_.CreateQp(s);
    rnic::QpConfig c;
    c.sq_depth = 4096;
    c.rq_depth = 16384;
    c.managed = cfg_.managed_client_sq;  // parked detour triggers
    c.send_cq = cdev_.CreateCq();
    c.recv_cq = cli_recv_cq_ ? cli_recv_cq_ : (cli_recv_cq_ = cdev_.CreateCq());
    cli = cdev_.CreateQp(c);
    if (cfg_.transport != nullptr) {
      rnic::ConnectOverTransport(cli, srv, *cfg_.transport);
    } else if (cfg_.fabric != nullptr) {
      rnic::ConnectOverFabric(cli, srv);
    } else {
      rnic::Connect(cli, srv, one_way);
    }
  };
  make_pair(srv_qp1_, cli_qp1_);
  if (cfg_.parallel) make_pair(srv_qp2_, cli_qp2_);

  resp_buf_ = std::make_unique<std::byte[]>(max_value);
  resp_mr_ = cdev_.pd().Register(resp_buf_.get(), max_value, rnic::kAccessAll);
  msg_buf_ = std::make_unique<std::byte[]>(64);
  msg_mr_ = cdev_.pd().Register(msg_buf_.get(), 64, rnic::kAccessAll);

  offload_ = std::make_unique<HashGetOffload>(sdev_, *table_, *heap_, srv_qp1_,
                                              srv_qp2_, cfg_);
}

void HashGetHarness::Put(std::uint64_t key, const void* value,
                         std::uint32_t len, bool force_second) {
  const std::uint64_t ptr = heap_->Store(value, len);
  table_->Insert(key, ptr, len, force_second);
}

void HashGetHarness::PutPattern(std::uint64_t key, std::uint32_t len,
                                bool force_second) {
  std::vector<std::byte> v(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::byte>((key + i) & 0xff);
  }
  Put(key, v.data(), len, force_second);
}

bool HashGetHarness::ResponseMatchesPattern(std::uint64_t key,
                                            std::uint32_t len) const {
  for (std::uint32_t i = 0; i < len; ++i) {
    if (resp_buf_[i] != static_cast<std::byte>((key + i) & 0xff)) return false;
  }
  return true;
}

void HashGetHarness::PutVersioned(std::uint64_t key, std::uint32_t len,
                                  std::uint64_t version) {
  const std::uint64_t ptr = heap_->Reserve(len);
  kv::WriteVersionedValue(ptr, len, key, version);
  table_->Insert(key, ptr, len);
}

std::uint64_t HashGetHarness::ResponseVersion() const {
  std::uint64_t v = 0;
  std::memcpy(&v, resp_buf_.get(), sizeof(v));
  return v;
}

bool HashGetHarness::ResponseMatchesVersionedPattern(std::uint64_t key,
                                                     std::uint32_t len) const {
  const std::uint64_t version = ResponseVersion();
  const auto* p = reinterpret_cast<const std::uint8_t*>(resp_buf_.get());
  for (std::uint32_t i = kv::kValueVersionBytes; i < len; ++i) {
    if (p[i] != kv::VersionedPatternByte(key, version, i)) return false;
  }
  return true;
}

void HashGetHarness::Arm(int n) {
  offload_->Arm(n, resp_mr_.addr, resp_mr_.rkey);
}

namespace {
void CycleQp(rnic::QueuePair* qp) {
  if (qp == nullptr) return;
  rnic::RnicDevice* dev = qp->device;
  dev->ModifyQp(qp, rnic::QpState::kReset);
  dev->ModifyQp(qp, rnic::QpState::kInit);
  dev->ModifyQp(qp, rnic::QpState::kRtr);
  dev->ModifyQp(qp, rnic::QpState::kRts);
}
}  // namespace

void HashGetHarness::RearmTransport(int n) {
  RearmTransportClientHalf();
  RearmTransportServerHalf(n);
}

void HashGetHarness::RearmTransportClientHalf() {
  CycleQp(cli_qp1_);
  CycleQp(cli_qp2_);
  // The reset discarded every pending RECV — the client response buffers.
  recvs_outstanding_1_ = 0;
  recvs_outstanding_2_ = 0;
}

void HashGetHarness::RearmTransportServerHalf(int n) {
  CycleQp(srv_qp1_);
  CycleQp(srv_qp2_);
  // The replacement program's chain r gates on trigger-CQ count
  // first_seq + r; seed it with what the wrecked program consumed (error
  // flushes bumped the count too, so read the CQ rather than triggers_).
  retired_.push_back(std::move(offload_));
  cfg_.first_seq = srv_qp1_->recv_cq->hw_count();
  offload_ = std::make_unique<HashGetOffload>(sdev_, *table_, *heap_, srv_qp1_,
                                              srv_qp2_, cfg_);
  Arm(n);
}

void HashGetHarness::PrepostResponseRecvs(int n) {
  for (int i = 0; i < n; ++i) {
    verbs::RecvWr rwr;
    rwr.local_addr = 0;  // WRITE_IMM carries no SEND payload
    rwr.length = 0;
    verbs::PostRecv(cli_qp1_, rwr);
    ++recvs_outstanding_1_;
    if (cfg_.parallel) {
      verbs::PostRecv(cli_qp2_, rwr);
      ++recvs_outstanding_2_;
    }
  }
}

void HashGetHarness::EnsureRecvs() {
  // One response RECV per in-flight get (plus slack), on whichever client
  // QP may answer — open-loop drivers can have hundreds outstanding.
  const int target =
      static_cast<int>(triggers_ - responses_) + 8;
  while (recvs_outstanding_1_ < target) {
    verbs::RecvWr rwr;
    rwr.local_addr = 0;  // WRITE_IMM carries no SEND payload
    rwr.length = 0;
    verbs::PostRecv(cli_qp1_, rwr);
    ++recvs_outstanding_1_;
  }
  while (cfg_.parallel && recvs_outstanding_2_ < target) {
    verbs::RecvWr rwr;
    verbs::PostRecv(cli_qp2_, rwr);
    ++recvs_outstanding_2_;
  }
}

bool HashGetHarness::SendTrigger(std::uint64_t key) {
  if (!srv_qp1_->alive) {
    return false;  // connection torn down (e.g. §5.6 no-hull crash)
  }
  return SendTriggerBlind(key);
}

bool HashGetHarness::SendTriggerBlind(std::uint64_t key) {
  if (cli_qp1_->sq.error || cli_qp1_->state == rnic::QpState::kError) {
    return false;  // the local QP is wrecked; posting would just flush
  }
  EnsureRecvs();
  offload_->BuildTrigger(key, msg_buf_.get());
  verbs::PostSendNow(cli_qp1_,
                     verbs::MakeSend(msg_mr_.addr, offload_->TriggerBytes(),
                                     msg_mr_.lkey, /*signaled=*/false));
  ++triggers_;
  return true;
}

HashGetHarness::Result HashGetHarness::Get(std::uint64_t key,
                                           sim::Nanos timeout) {
  auto& sim = cdev_.sim();
  const sim::Nanos t0 = sim.now();
  SendTrigger(key);
  verbs::Cqe cqe;
  if (!verbs::AwaitCqe(sim, cdev_, cli_recv_cq_, &cqe, t0 + timeout)) {
    return Result{};  // miss: no response WRITE fired
  }
  ++responses_;
  if (cqe.qp_id == cli_qp1_->id) {
    --recvs_outstanding_1_;
  } else {
    --recvs_outstanding_2_;
  }
  Result r;
  r.found = true;
  r.latency = sim.now() - t0;
  r.len = cqe.byte_len;
  return r;
}

}  // namespace redn::offloads
