// Offloaded array search — the paper's `while` loop examples (Figs 5 & 6).
//
//   input x; i = 0;
//   while (i < n) { if (x == A[i]) send(i); i++; }         (Fig 5, unrolled)
//   while (1)     { if (x == A[i]) { send(i); break; } i++ }  (Fig 6, break)
//
// The loop is unrolled (size known a priori): each iteration READs A[i],
// drops it into the id field of that iteration's response WR, and a CAS
// against {NOOP, x} promotes the response — which sends the *index* back.
// The break variant rewrites the response WR header so the next iteration's
// WAIT never fires, exactly like the list traversal's break.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "redn/program.h"

namespace redn::offloads {

using core::Program;
using core::WrRef;
using rnic::QueuePair;

// A searchable array of 64-bit values in one registered region.
class SearchArray {
 public:
  SearchArray(rnic::RnicDevice& dev, std::vector<std::uint64_t> values);

  std::uint64_t ElementAddr(int i) const { return mr_.addr + i * 8u; }
  std::uint32_t rkey() const { return mr_.rkey; }
  int size() const { return static_cast<int>(n_); }
  std::uint64_t At(int i) const { return rnic::dma::ReadU64(ElementAddr(i)); }
  void Set(int i, std::uint64_t v) { rnic::dma::WriteU64(ElementAddr(i), v); }

 private:
  std::unique_ptr<std::uint64_t[]> data_;
  std::size_t n_;
  rnic::MemoryRegion mr_;
};

class ArraySearchOffload {
 public:
  struct Config {
    bool use_break = false;
  };

  // Arms ONE search over the whole array on `client_qp` (managed SQ). On a
  // hit the matching element's *index* (8 bytes) is WRITE_IMM'd to
  // (resp_addr, resp_rkey) with imm = 1.
  ArraySearchOffload(rnic::RnicDevice& server, const SearchArray& array,
                     QueuePair* client_qp, Config cfg, std::uint64_t resp_addr,
                     std::uint32_t resp_rkey);
  ~ArraySearchOffload() { prog_.Abort(); }

  // Trigger: PackCtrl(NOOP, x) repeated once per element.
  std::uint32_t TriggerBytes() const { return static_cast<std::uint32_t>(n_) * 8; }
  void BuildTrigger(std::uint64_t x, std::byte* out) const;

  int wrs_posted() const { return wrs_posted_; }

 private:
  Program prog_;
  QueuePair* chain_;
  int n_;
  std::unique_ptr<std::uint64_t[]> index_consts_;  // payloads: 0,1,2,...
  rnic::MemoryRegion idx_mr_;
  std::unique_ptr<std::byte[]> tmpl_;  // break-variant header templates
  rnic::MemoryRegion tmpl_mr_;
  int wrs_posted_ = 0;
};

}  // namespace redn::offloads
