// Small trigger-function offloads: the RPC patterns of Figs 3 and 4.
//
// EchoRpcOffload (Fig 3): the client's SEND payload is scattered straight
// into the pre-posted response WRITE's source buffer; a WAIT+ENABLE pair
// releases the response. The server CPU never runs.
//
// CondRpcOffload (Fig 4): `if (x == y) send(1) else send(0)`. y is baked
// into a CAS at setup; x arrives in the trigger and lands in the id field
// of the conditional WR. On x == y the CAS flips a NOOP into a WRITE that
// overwrites the answer byte before the response fires.
#pragma once

#include <cstdint>
#include <memory>

#include "redn/program.h"

namespace redn::offloads {

using core::Program;
using core::WrRef;
using rnic::QueuePair;

class EchoRpcOffload {
 public:
  // Arms `n` echo requests of `msg_bytes` each on a connected, managed
  // server QP. Response r is WRITE_IMM'd to (resp_addr, resp_rkey), imm = r.
  EchoRpcOffload(rnic::RnicDevice& server, QueuePair* client_qp,
                 std::uint32_t msg_bytes, int n, std::uint64_t resp_addr,
                 std::uint32_t resp_rkey);

 private:
  Program prog_;
  std::unique_ptr<std::byte[]> bufs_;
  rnic::MemoryRegion mr_;
};

class CondRpcOffload {
 public:
  // Arms `n` conditional requests comparing the client's x against `y`.
  CondRpcOffload(rnic::RnicDevice& server, QueuePair* client_qp,
                 std::uint64_t y, int n, std::uint64_t resp_addr,
                 std::uint32_t resp_rkey);

  // Trigger message (8 bytes): PackCtrl(NOOP, x).
  static void BuildTrigger(std::uint64_t x, std::byte* out);

 private:
  Program prog_;
  QueuePair* chain_;
  std::unique_ptr<std::byte[]> bufs_;  // per-request answer word + constant 1
  rnic::MemoryRegion mr_;
};

}  // namespace redn::offloads
