// Client-NIC failover detour for chain-replicated gets (the service layer's
// "offloaded failover" — the RedN twist on fig16 applied to the *client*).
//
// Healthy path: the tenant's trigger SENDs to the primary shard are
// unsignaled, so the primary connection's send CQ receives a CQE ONLY when
// a send fails — the transport retry budget dying (RETRY_EXC_ERR /
// RNR_RETRY_EXC_ERR after a blackhole or receiver stall) or a dead-peer
// NAK (the shard process crashed). That makes the send CQ's hw count a
// pure failure detector a WAIT verb can watch.
//
// The detour pre-installed on the tenant NIC:
//
//   backup QP SQ  : one parked, unsignaled SEND of the trigger buffer —
//   (managed)       posted but never doorbelled; managed queues only
//                   advance via ENABLE. The buffer is gathered at
//                   *execution* time, so the host rewrites it per issued
//                   get (SetKey) while the parked WQE never moves.
//   control queue : WAIT (primary send CQ, hw+1) -> ENABLE (backup SQ,
//                   parked slot+1)
//
// On the failure CQE the WAIT wakes, the ENABLE releases the parked SEND,
// and the already-armed get fires against the backup shard — zero host
// instructions between primary failure and backup issue. The backup's
// response lands on the backup harness's recv CQ like any other get.
//
// One failover event per Arm(): WR_FLUSH CQEs trailing the failure push the
// CQ past the threshold but no further WAIT is armed, so the chain cannot
// double-fire. After the fault heals and the primary QPs re-arm, Rearm()
// parks a fresh SEND and a fresh WAIT at the CQ's current count.
#pragma once

#include <cstdint>
#include <memory>

#include "offloads/hash_harness.h"
#include "redn/program.h"

namespace redn::offloads {

class ClientFailoverChain {
 public:
  // `primary` serves the watched shard, `backup` its chain successor; both
  // must share the same client device (the tenant NIC) and the backup's
  // client SQ must be managed (HashGetOffload::Config::managed_client_sq).
  // `max_arms` bounds Arm() + Rearm() calls over the chain's lifetime.
  ClientFailoverChain(HashGetHarness& primary, HashGetHarness& backup,
                      int max_arms = 16);

  // Parks the detour SEND and installs the WAIT/ENABLE pair. Call once up
  // front; call Rearm() instead after the chain fired and the primary
  // healed (a second Arm behind a still-blocked WAIT would release a
  // duplicate trigger on the next failure).
  void Arm();
  void Rearm() { Arm(); }

  // Host-side (healthy-path) work: rewrites the parked trigger's bytes for
  // the get being issued, so the detour — if it fires — retries exactly the
  // in-flight key against the backup.
  void SetKey(std::uint64_t key);

  int arms() const { return arms_; }
  // The send-CQ count the current WAIT fires at (tests).
  std::uint64_t wait_threshold() const { return wait_threshold_; }

 private:
  HashGetHarness& primary_;
  HashGetHarness& backup_;
  core::Program prog_;
  std::unique_ptr<std::byte[]> trig_buf_;
  rnic::MemoryRegion trig_mr_;
  int arms_ = 0;
  std::uint64_t wait_threshold_ = 0;
};

}  // namespace redn::offloads
