#include "offloads/list_traversal.h"

#include <cassert>
#include <cstring>

#include "verbs/verbs.h"

namespace redn::offloads {

using rnic::Opcode;
using rnic::WqeField;

ListStore::ListStore(rnic::RnicDevice& dev, std::size_t max_nodes,
                     std::uint32_t value_len)
    : value_len_(value_len), max_nodes_(max_nodes) {
  const std::size_t bytes = max_nodes * node_bytes();
  mem_ = std::make_unique<std::byte[]>(bytes);
  std::memset(mem_.get(), 0, bytes);
  mr_ = dev.pd().Register(mem_.get(), bytes, rnic::kAccessAll);
}

std::uint64_t ListStore::Append(std::uint64_t key, const void* value) {
  assert(count_ < max_nodes_);
  const std::uint64_t addr = mr_.addr + count_ * node_bytes();
  rnic::dma::WriteU64(addr, key & rnic::kWrIdMask);
  rnic::dma::WriteU64(addr + 8, 0);  // next: patched below
  rnic::dma::Write(addr + 16, value, value_len_);
  if (count_ == 0) {
    head_ = addr;
  } else {
    rnic::dma::WriteU64(tail_ + 8, addr);
  }
  tail_ = addr;
  ++count_;
  return addr;
}

void ListStore::AppendPattern(std::uint64_t key) {
  std::vector<std::byte> v(value_len_);
  for (std::uint32_t i = 0; i < value_len_; ++i) v[i] = PatternByte(key, i);
  Append(key, v.data());
}

ListTraversalOffload::ListTraversalOffload(rnic::RnicDevice& server,
                                           const ListStore& list,
                                           QueuePair* client_qp, Config cfg,
                                           std::uint64_t resp_addr,
                                           std::uint32_t resp_rkey)
    : list_(list), prog_(server) {
  assert(client_qp->sq.managed());
  assert(cfg.iterations <= 15 &&
         "direct RECV injection is limited to 16 scatters (paper §5.3)");
  chain_ = prog_.NewChainQueue(4096);
  const std::uint32_t vlen = list_.value_len();
  const int n = cfg.iterations;
  iterations_ = n;
  // Gate thresholds on the (shared) response queue must be relative to its
  // completion count at arm time: the QP is reused across requests.
  const std::uint64_t resp_base = client_qp->send_cq->hw_count();

  // Scratch layout: [xbuf 8B][sink 8B][staging n*vlen][templates n*24B].
  const std::size_t scratch_bytes = 16 + std::size_t(n) * vlen + n * 24;
  scratch_ = std::make_unique<std::byte[]>(scratch_bytes);
  std::memset(scratch_.get(), 0, scratch_bytes);
  scratch_mr_ =
      server.pd().Register(scratch_.get(), scratch_bytes, rnic::kAccessAll);
  const std::uint64_t xbuf = scratch_mr_.addr;
  const std::uint64_t sink = scratch_mr_.addr + 8;
  auto staging = [&](int i) { return scratch_mr_.addr + 16 + i * vlen; };
  auto tmpl = [&](int i) {
    return scratch_mr_.addr + 16 + std::size_t(n) * vlen + i * 24;
  };

  const int before = prog_.budget().total();

  // Pre-compute per-iteration chain indices so READ_i can patch READ_{i+1}.
  // M layout per iteration: [READ, CAS, (break: B)]. The paper's R3 copy is
  // optimised away: the trigger RECV injects x into every CAS directly
  // (possible for lists of <= 15 nodes given the 16-scatter limit).
  const int per_iter = cfg.use_break ? 3 : 2;
  const std::uint64_t m0 = chain_->sq.posted;
  auto read_idx = [&](int i) { return m0 + std::uint64_t(i) * per_iter; };

  std::vector<WrRef> responses;
  std::vector<rnic::Sge> recv_sges;
  std::uint64_t first_read_remote_field = 0;

  for (int i = 0; i < n; ++i) {
    // Response WR for iteration i, on the client-facing managed SQ.
    verbs::SendWr r5;
    r5.opcode = Opcode::kNoop;
    // plain: silent miss. break: signaled miss feeds the next gate.
    r5.signaled = cfg.use_break;
    r5.local_addr = staging(i);
    r5.length = vlen;
    r5.lkey = scratch_mr_.lkey;
    r5.remote_addr = resp_addr;
    r5.rkey = resp_rkey;
    r5.imm = 1;
    WrRef resp = prog_.Post(client_qp, r5);
    responses.push_back(resp);

    // READ_i: node -> {key, next, value} scatter. In the break variant the
    // key lands in B_i's ctrl word (chain slot READ+2 by layout); otherwise
    // directly in the response's ctrl word.
    const bool last = i == n - 1;
    const std::uint64_t key_target =
        cfg.use_break
            ? WrRef{chain_, read_idx(i) + 2}.FieldAddr(WqeField::kCtrl)
            : resp.FieldAddr(WqeField::kCtrl);
    const std::uint64_t next_target =
        last ? sink
             : WrRef{chain_, read_idx(i + 1)}.FieldAddr(WqeField::kRemoteAddr);
    const rnic::Sge* sges = prog_.MakeSgeTable({
        {key_target, 8, cfg.use_break ? chain_->sq_mr.lkey : client_qp->sq_mr.lkey},
        {next_target, 8, last ? scratch_mr_.lkey : chain_->sq_mr.lkey},
        {staging(i), vlen, scratch_mr_.lkey},
    });
    verbs::SendWr read;
    read.opcode = Opcode::kRead;
    read.sge_table = sges;
    read.sge_count = 3;
    read.remote_addr = 0;  // iter 0: injected by RECV; else patched by READ_{i-1}
    read.rkey = list_.rkey();
    read.length = list_.node_bytes();
    WrRef rd = prog_.Post(chain_, read);
    assert(rd.idx == read_idx(i));
    if (i == 0) {
      first_read_remote_field = rd.FieldAddr(WqeField::kRemoteAddr);
    }

    if (!cfg.use_break) {
      // CAS_i: promote the response directly; compare injected by the RECV.
      WrRef cs = prog_.Post(
          chain_, verbs::MakeCas(resp.FieldAddr(WqeField::kCtrl),
                                 resp.CodeRkey(), /*compare=*/0,
                                 rnic::PackCtrl(Opcode::kWriteImm, 0)));
      recv_sges.push_back(
          {cs.FieldAddr(WqeField::kCompareAdd), 8, chain_->sq_mr.lkey});
      // Glue: [trigger ->] READ -> CAS -> response.
      if (i == 0) prog_.Wait(client_qp->recv_cq, client_qp->rq.posted + 1);
      prog_.Enable(chain_, rd.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 1);
      prog_.Enable(chain_, cs.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq));
      prog_.Enable(client_qp, resp.idx + 1);
    } else {
      // B_i: break WR. Promoted by CAS_i on a key match; as a WRITE it lays
      // a 24-byte template over R5_i's header: {ctrl = WRITE_IMM,
      // remote_addr = resp, rkey, flags = 0 (unsignaled)}.
      const WrRef b_future{chain_, chain_->sq.posted + 1};
      WrRef cs = prog_.Post(
          chain_, verbs::MakeCas(b_future.FieldAddr(WqeField::kCtrl),
                                 chain_->sq_mr.rkey, /*compare=*/0,
                                 rnic::PackCtrl(Opcode::kWrite, 0)));
      recv_sges.push_back(
          {cs.FieldAddr(WqeField::kCompareAdd), 8, chain_->sq_mr.lkey});
      // Template bytes for R5_i's first 24 bytes.
      struct Header {
        std::uint64_t ctrl;
        std::uint64_t remote_addr;
        std::uint32_t rkey;
        std::uint32_t flags;
      } hdr{rnic::PackCtrl(Opcode::kWriteImm, 0), resp_addr, resp_rkey, 0};
      rnic::dma::Write(tmpl(i), &hdr, sizeof(hdr));
      verbs::SendWr b;
      b.opcode = Opcode::kNoop;  // -> kWrite on match
      b.signaled = true;         // M-side completion is counted either way
      b.local_addr = tmpl(i);
      b.length = 24;
      b.lkey = scratch_mr_.lkey;
      b.remote_addr = resp.FieldAddr(WqeField::kCtrl);
      b.rkey = resp.CodeRkey();
      WrRef bw = prog_.Post(chain_, b);
      assert(bw.idx == b_future.idx);
      assert(bw.FieldAddr(WqeField::kCtrl) == key_target);

      // Glue: gate on miss count, then READ -> CAS -> B -> response.
      if (i == 0) {
        prog_.Wait(client_qp->recv_cq, client_qp->rq.posted + 1);
      } else {
        prog_.Wait(client_qp->send_cq,
                   resp_base + static_cast<std::uint64_t>(i));
      }
      prog_.Enable(chain_, rd.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 2);
      prog_.Enable(chain_, cs.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 1);
      prog_.Enable(chain_, bw.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq));
      prog_.Enable(client_qp, resp.idx + 1);
    }
  }

  // Trigger RECV: packed x into every iteration's CAS compare (direct
  // injection), then the head address into READ_0.remote_addr.
  recv_sges.push_back({first_read_remote_field, 8, chain_->sq_mr.lkey});
  const std::uint32_t sge_count = static_cast<std::uint32_t>(recv_sges.size());
  const rnic::Sge* table = prog_.MakeSgeTable(std::move(recv_sges));
  verbs::RecvWr rwr;
  rwr.sge_table = table;
  rwr.sge_count = sge_count;
  verbs::PostRecv(client_qp, rwr);
  (void)xbuf;

  wrs_posted_ = prog_.budget().total() - before + 1;
  prog_.Launch();
}

void ListTraversalOffload::BuildTrigger(std::uint64_t key,
                                        std::byte* out) const {
  // x repeated once per iteration (one scatter per CAS), then the head.
  const std::uint64_t packed = rnic::PackCtrl(Opcode::kNoop, key);
  for (int i = 0; i < iterations_; ++i) {
    std::memcpy(out + i * 8, &packed, 8);
  }
  const std::uint64_t head = list_.head();
  std::memcpy(out + iterations_ * 8, &head, 8);
}

}  // namespace redn::offloads
