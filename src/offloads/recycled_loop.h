// WQ recycling: unbounded, CPU-free loops (paper §3.4, Table 2/3).
//
// The control ring contains exactly one loop round: ENABLE the managed body
// queue, WAIT for the body, ADD-update every WAIT/ENABLE threshold for the
// next round (ConnectX wqe_counts increase monotonically and never reset on
// wrap, so each round must bump them), then WAIT for the ADDs and ENABLE
// *itself* past its own tail — the NIC wraps the ring and runs the next
// round with the freshly updated thresholds. Once launched, the loop makes
// progress forever with zero CPU involvement: this is requirement T3
// (nontermination) of the Turing-completeness argument, and the property
// that keeps offloads alive through host crashes (§5.6).
//
// The body increments a counter in registered memory, so tests and benches
// can observe loop progress directly.
#pragma once

#include <cstdint>
#include <memory>

#include "redn/program.h"

namespace redn::offloads {

class RecycledAddLoop {
 public:
  // `body_wrs` = managed WRs executed per loop round. 1 is the bare
  // counter loop; 3 models the paper's recycled `while` body (condition
  // CAS + conditional WR + counter), whose extra serialized fetches give
  // Table 3's ~0.3M iterations/s.
  explicit RecycledAddLoop(rnic::RnicDevice& dev, int body_wrs = 1);

  // Posts the ring and rings the doorbell once. The loop then self-sustains.
  void Start();

  // Loop progress: number of body executions so far.
  std::uint64_t iterations() const { return rnic::dma::ReadU64(counter_addr_); }

  // Kills the loop by dropping its QPs into error state (the only way to
  // stop a nonterminating NIC program other than the §3.5 rate limiter /
  // connection teardown).
  void Kill(int owner_pid = 0);

  // WR budget of one loop round (Table 2's `while` with WQ recycling).
  const core::WrBudget& budget() const { return prog_.budget(); }

  rnic::QueuePair* ring() { return ring_; }
  rnic::QueuePair* body() { return body_; }

 private:
  rnic::RnicDevice& dev_;
  core::Program prog_;
  rnic::QueuePair* body_ = nullptr;
  rnic::QueuePair* ring_ = nullptr;
  int body_wrs_ = 1;
  std::unique_ptr<std::uint64_t[]> counter_;
  rnic::MemoryRegion counter_mr_;
  std::uint64_t counter_addr_ = 0;
  bool started_ = false;
};

}  // namespace redn::offloads
