#include "offloads/rpc.h"

#include <cassert>
#include <cstring>

#include "verbs/verbs.h"

namespace redn::offloads {

using rnic::Opcode;
using rnic::WqeField;

EchoRpcOffload::EchoRpcOffload(rnic::RnicDevice& server, QueuePair* client_qp,
                               std::uint32_t msg_bytes, int n,
                               std::uint64_t resp_addr, std::uint32_t resp_rkey)
    : prog_(server, 0, /*control_depth=*/4u * n + 64) {
  assert(client_qp->sq.managed());
  bufs_ = std::make_unique<std::byte[]>(std::size_t(n) * msg_bytes);
  mr_ = server.pd().Register(bufs_.get(), std::size_t(n) * msg_bytes,
                             rnic::kAccessAll);

  for (int r = 0; r < n; ++r) {
    const std::uint64_t echo_buf = mr_.addr + std::uint64_t(r) * msg_bytes;
    // RECV drops the request payload into this request's echo buffer.
    verbs::RecvWr rwr;
    rwr.local_addr = echo_buf;
    rwr.length = msg_bytes;
    rwr.lkey = mr_.lkey;
    verbs::PostRecv(client_qp, rwr);

    // Pre-posted response: WRITE_IMM the echo buffer back.
    verbs::SendWr resp;
    resp.opcode = Opcode::kWriteImm;
    resp.signaled = false;
    resp.local_addr = echo_buf;
    resp.length = msg_bytes;
    resp.lkey = mr_.lkey;
    resp.remote_addr = resp_addr;
    resp.rkey = resp_rkey;
    resp.imm = static_cast<std::uint32_t>(r + 1);
    WrRef ref = prog_.Post(client_qp, resp);

    // Release on trigger arrival.
    prog_.Wait(client_qp->recv_cq, static_cast<std::uint64_t>(r + 1));
    prog_.Enable(client_qp, ref.idx + 1);
  }
  prog_.Launch();
}

void CondRpcOffload::BuildTrigger(std::uint64_t x, std::byte* out) {
  const std::uint64_t packed = rnic::PackCtrl(Opcode::kNoop, x);
  std::memcpy(out, &packed, 8);
}

CondRpcOffload::CondRpcOffload(rnic::RnicDevice& server, QueuePair* client_qp,
                               std::uint64_t y, int n, std::uint64_t resp_addr,
                               std::uint32_t resp_rkey)
    : prog_(server, 0, /*control_depth=*/8u * n + 64) {
  assert(client_qp->sq.managed());
  chain_ = prog_.NewChainQueue(2u * n + 16);
  // Per request: one answer word (starts 0); plus one shared constant 1.
  bufs_ = std::make_unique<std::byte[]>(std::size_t(n) * 8 + 8);
  std::memset(bufs_.get(), 0, std::size_t(n) * 8 + 8);
  mr_ = server.pd().Register(bufs_.get(), std::size_t(n) * 8 + 8,
                             rnic::kAccessAll);
  const std::uint64_t one_addr = mr_.addr + std::uint64_t(n) * 8;
  rnic::dma::WriteU64(one_addr, 1);

  for (int r = 0; r < n; ++r) {
    const std::uint64_t ans = mr_.addr + std::uint64_t(r) * 8;

    // R2: NOOP -> (on x == y) WRITE of the constant 1 over the answer word.
    // The trigger RECV injects PackCtrl(NOOP, x) into its ctrl word.
    verbs::SendWr r2;
    r2.opcode = Opcode::kNoop;
    r2.signaled = true;
    r2.local_addr = one_addr;
    r2.length = 8;
    r2.lkey = mr_.lkey;
    r2.remote_addr = ans;
    r2.rkey = mr_.rkey;
    WrRef cond = prog_.Post(chain_, r2);

    // R3: the response — sends the answer word either way.
    verbs::SendWr r3;
    r3.opcode = Opcode::kWriteImm;
    r3.signaled = false;
    r3.local_addr = ans;
    r3.length = 8;
    r3.lkey = mr_.lkey;
    r3.remote_addr = resp_addr;
    r3.rkey = resp_rkey;
    r3.imm = static_cast<std::uint32_t>(r + 1);
    WrRef resp = prog_.Post(client_qp, r3);

    // Trigger RECV injects x into the conditional WR's id field.
    const rnic::Sge* sges = prog_.MakeSgeTable(
        {{cond.FieldAddr(WqeField::kCtrl), 8, chain_->sq_mr.lkey}});
    verbs::RecvWr rwr;
    rwr.sge_table = sges;
    rwr.sge_count = 1;
    verbs::PostRecv(client_qp, rwr);

    // Glue: trigger -> CAS(flip) -> conditional -> response.
    prog_.Wait(client_qp->recv_cq, static_cast<std::uint64_t>(r + 1));
    prog_.OpcodeCas(cond, y, Opcode::kNoop, Opcode::kWrite);
    prog_.Wait(prog_.control_cq(), prog_.SignalsPosted(prog_.control_cq()));
    prog_.Enable(chain_, cond.idx + 1);
    prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq));
    prog_.Enable(client_qp, resp.idx + 1);
  }
  prog_.Launch();
}

}  // namespace redn::offloads
