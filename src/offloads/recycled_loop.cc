#include "offloads/recycled_loop.h"

#include "verbs/verbs.h"

namespace redn::offloads {

using core::WrRef;
using rnic::Opcode;
using rnic::WqeField;

namespace {
// Ring layout (one round). The ring queue's capacity is exactly kRing so
// the wraparound re-executes slot 0 — WQ recycling.
//   0: ENABLE(body, e)          e += 1 per round
//   1: WAIT(body_cq, t)         t += 1 per round
//   2: ADD e-field  += 1
//   3: ADD t-field  += 1
//   4: ADD w-field  += 4        (four signaled ADDs per round)
//   5: ADD l-field  += 8        (ring size)
//   6: WAIT(ring_cq, w)         all four ADDs of this round done
//   7: ENABLE(ring, l)          wrap: next round
constexpr std::uint64_t kRing = 8;
}  // namespace

RecycledAddLoop::RecycledAddLoop(rnic::RnicDevice& dev, int body_wrs)
    : dev_(dev), prog_(dev), body_wrs_(body_wrs) {
  body_ = prog_.NewChainQueue(/*depth=*/static_cast<std::uint32_t>(body_wrs));
  ring_ = prog_.NewPlainQueue(/*depth=*/kRing);
  counter_ = std::make_unique<std::uint64_t[]>(1);
  counter_[0] = 0;
  counter_mr_ = dev_.pd().Register(counter_.get(), 8, rnic::kAccessAll);
  counter_addr_ = counter_mr_.addr;
}

void RecycledAddLoop::Start() {
  if (started_) return;
  started_ = true;

  // Body: the loop payload, recycled forever in its ring. The counter ADD
  // is always last; extra body WRs stand in for the per-iteration condition
  // CAS and conditional WR of a full `while`.
  for (int i = 1; i < body_wrs_; ++i) {
    if (i == 1) {
      prog_.Post(body_, verbs::MakeCas(counter_addr_, counter_mr_.rkey,
                                       ~std::uint64_t{0}, 0));
    } else {
      prog_.Post(body_, verbs::MakeNoop());
    }
  }
  prog_.Post(body_, verbs::MakeFetchAdd(counter_addr_, counter_mr_.rkey, 1));

  // Forward references to the ring slots whose thresholds the ADDs bump.
  const std::uint64_t base = ring_->sq.posted;
  const WrRef en_body{ring_, base + 0};
  const WrRef wait_body{ring_, base + 1};
  const WrRef wait_adds{ring_, base + 6};
  const WrRef en_self{ring_, base + 7};
  const std::uint32_t ring_rkey = ring_->sq_mr.rkey;

  auto add = [&](const WrRef& target, std::uint64_t delta) {
    prog_.Post(ring_,
               verbs::MakeFetchAdd(target.FieldAddr(WqeField::kCompareAdd),
                                   ring_rkey, delta));
  };

  const std::uint64_t stride = static_cast<std::uint64_t>(body_wrs_);
  prog_.Post(ring_, verbs::MakeEnable(body_, stride));
  prog_.Post(ring_, verbs::MakeWait(body_->send_cq, stride));
  add(en_body, stride);
  add(wait_body, stride);
  add(wait_adds, 4);
  add(en_self, kRing);
  prog_.Post(ring_, verbs::MakeWait(ring_->send_cq, 4));
  prog_.Post(ring_, verbs::MakeEnable(ring_, 2 * kRing));

  dev_.RingDoorbell(ring_);
}

void RecycledAddLoop::Kill(int owner_pid) {
  (void)owner_pid;
  ring_->alive = false;
  ring_->sq.error = true;
  body_->alive = false;
  body_->sq.error = true;
}

}  // namespace redn::offloads
