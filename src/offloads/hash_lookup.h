// Offloaded key-value GET (paper §5.2, Fig 9).
//
// Per request instance the server pre-posts:
//
//   client QP RQ : RECV whose scatter list injects the client's inputs into
//                  the chain: packed key -> CAS.compare, bucket addr ->
//                  READ.remote_addr (per probed bucket).
//   M (managed)  : READ  — fetches the bucket; its scatter list drops
//                          bucket.key into the response WQE's ctrl word
//                          (id = key, opcode reset to NOOP), bucket.ptr into
//                          local_addr, bucket.len into length.
//                  CAS   — compares the response ctrl {NOOP, key} against
//                          {NOOP, x}; on match swaps in {WRITE_IMM, 0}.
//   client QP SQ : R4    — the response itself: fires as a WRITE_IMM of the
//   (managed)              value to the client on a hit, or execs as a
//                          harmless unsignaled NOOP on a miss.
//   control      : WAIT/ENABLE glue serializing RECV -> READ -> CAS -> R4
//                  (doorbell ordering for every self-modified WQE).
//
// Variants: 1 bucket (no-collision experiments), 2 buckets sequential
// (RedN-Seq), 2 buckets parallel across two managed queues, two control
// queues and two client-facing QPs (RedN-Parallel) — §5.2.2 / Fig 11.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/table.h"
#include "redn/program.h"

namespace redn::sim {
class Transport;
}  // namespace redn::sim

namespace redn::offloads {

using core::Program;
using core::WrRef;
using rnic::QueuePair;

class HashGetOffload {
 public:
  struct Config {
    // Number of buckets probed per get (1 or 2).
    int buckets = 2;
    // Probe the two buckets on parallel queues/PUs instead of sequentially.
    bool parallel = false;
    // Upper bound on Arm()-ed requests over the offload's lifetime; sizes
    // the chain and control rings.
    int max_requests = 4096;
    // Server NIC port carrying this offload's queues (Table 4 dual-port).
    int port = 0;
    // When set, the client<->server QPs connect through this shared fabric
    // (both devices' ports must already be attached) instead of a private
    // constant-latency wire — the N-clients-one-server scale-out topology.
    sim::Fabric* fabric = nullptr;
    // When additionally set (requires `fabric`), the QPs connect through
    // the packetized go-back-N transport: payloads segment into MTU
    // packets, links drop/corrupt them per the transport's config, and
    // retransmission recovers — the lossy-wire scenario.
    sim::Transport* transport = nullptr;
    // Starting request sequence number. Chain r waits for the trigger CQ's
    // hw count to reach first_seq + r, so a replacement offload built after
    // a QP error must seed this with the CQ count already consumed by its
    // predecessor (HashGetHarness::RearmTransport does).
    std::uint64_t first_seq = 0;
    // Make the CLIENT-side send queues of a HashGetHarness built with this
    // config managed (doorbell-ignoring): trigger SENDs posted to them park
    // until an ENABLE raises the execution limit. The failover detour
    // (offloads::ClientFailoverChain) needs this to hold a pre-built get
    // against the backup shard that only its WAIT chain can release.
    bool managed_client_sq = false;
  };

  // `client_qp` (and `client_qp2` iff parallel) are server-side QPs already
  // connected to the client; their send queues MUST be managed.
  HashGetOffload(rnic::RnicDevice& server, kv::RdmaHashTable& table,
                 kv::ValueHeap& heap, QueuePair* client_qp,
                 QueuePair* client_qp2, Config cfg);

  // Pre-posts chains for `n` further get requests. The response for request
  // r is written to (resp_addr, resp_rkey) on the client and announced with
  // immediate = the request's sequence number.
  void Arm(int n, std::uint64_t resp_addr, std::uint32_t resp_rkey);

  // Total WRs posted per armed request (for the WR-budget reports).
  int WrsPerRequest() const { return wrs_per_request_; }

  // Size of the trigger message a client must SEND (bytes).
  std::uint32_t TriggerBytes() const { return cfg_.buckets * 16u; }

  // Fills `out` (TriggerBytes() long) with the trigger for `key`:
  // per probed bucket: [PackCtrl(NOOP, key), bucket_addr].
  void BuildTrigger(std::uint64_t key, std::byte* out) const;

  std::uint64_t armed() const { return armed_; }

  // Tags the offload's chain/control queues with an owner pid (§5.6).
  void SetOwner(int pid) {
    prog_.SetOwner(pid);
    prog2_.SetOwner(pid);
  }

 private:
  void ArmBucketChain(Program& prog, QueuePair* chain, QueuePair* resp_qp,
                      rnic::CompletionQueue* trigger_cq,
                      std::uint64_t recv_seq, std::uint64_t resp_addr,
                      std::uint32_t resp_rkey, std::uint32_t imm,
                      std::vector<rnic::Sge>& recv_sges);

  rnic::RnicDevice& server_;
  kv::RdmaHashTable& table_;
  kv::ValueHeap& heap_;
  QueuePair* client_qp_;
  QueuePair* client_qp2_;
  Config cfg_;

  Program prog_;        // control queue #1 + chain queue M1
  Program prog2_;       // control queue #2 + chain queue M2 (parallel only)
  QueuePair* m1_;
  QueuePair* m2_ = nullptr;
  std::uint64_t armed_ = 0;
  int wrs_per_request_ = 0;
};

}  // namespace redn::offloads
