// Offloaded linked-list traversal (paper §5.3, Fig 12).
//
// The list is walked entirely by the NIC: each unrolled iteration READs a
// node, and the READ's scatter list simultaneously (a) drops the node's key
// into the ctrl word the CAS will test, (b) patches the NEXT iteration's
// READ with the node's `next` pointer ("Copy Ni+1 = Ni->next to next
// iteration"), and (c) stages the node's value for the response WRITE. A
// CAS per iteration promotes the response when the key matches.
//
// Two variants, as evaluated in Fig 13:
//  - plain: all `iterations` iterations always execute; the matching one
//    fires the response. More WRs, but no conditional gating per step.
//  - break: each iteration carries a break WR. On a match the (promoted)
//    break WRITE rewrites the response WR's header in place — opcode NOOP ->
//    WRITE_IMM *and* signaled -> unsignaled. Since the next iteration's gate
//    WAITs on the response queue's completion count (which only unsignaled-
//    miss NOOPs feed), the loop stops dead after a hit: exactly the paper's
//    "modify the last WR in the loop such that it does not trigger a
//    completion event".
//
// A traversal offload object arms ONE request (the paper's unrolled mode,
// where the CPU re-posts chains per request, §3.4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "redn/program.h"

namespace redn::offloads {

using core::Program;
using core::WrRef;
using rnic::QueuePair;

// A singly-linked list of {key, next, value[value_len]} nodes in one
// registered region.
class ListStore {
 public:
  ListStore(rnic::RnicDevice& dev, std::size_t max_nodes,
            std::uint32_t value_len);

  // Appends a node; returns its address. Values are `value_len` bytes.
  std::uint64_t Append(std::uint64_t key, const void* value);
  void AppendPattern(std::uint64_t key);

  std::uint64_t head() const { return head_; }
  std::uint32_t rkey() const { return mr_.rkey; }
  std::uint32_t value_len() const { return value_len_; }
  std::size_t size() const { return count_; }
  std::uint32_t node_bytes() const { return 16 + value_len_; }

  static std::byte PatternByte(std::uint64_t key, std::uint32_t i) {
    return static_cast<std::byte>((key * 3 + i) & 0xff);
  }

 private:
  std::unique_ptr<std::byte[]> mem_;
  rnic::MemoryRegion mr_;
  std::uint32_t value_len_;
  std::size_t max_nodes_;
  std::size_t count_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

class ListTraversalOffload {
 public:
  struct Config {
    int iterations = 8;  // unrolled loop length (list size in the paper)
    bool use_break = false;
  };

  // Arms one traversal request on `client_qp` (server-side, managed SQ).
  // The response value is written to (resp_addr, resp_rkey) with imm = 1.
  ListTraversalOffload(rnic::RnicDevice& server, const ListStore& list,
                       QueuePair* client_qp, Config cfg,
                       std::uint64_t resp_addr, std::uint32_t resp_rkey);
  // Destroying the offload destroys its private queues; a chain stalled in
  // a break gate dies with them instead of resurrecting later.
  ~ListTraversalOffload() { prog_.Abort(); }

  // Trigger message: PackCtrl(NOOP, key) repeated per iteration (the direct
  // RECV injection of §5.3) followed by the head node address.
  std::uint32_t TriggerBytes() const {
    return static_cast<std::uint32_t>(iterations_ + 1) * 8;
  }
  void BuildTrigger(std::uint64_t key, std::byte* out) const;

  int wrs_posted() const { return wrs_posted_; }

 private:
  const ListStore& list_;
  Program prog_;
  QueuePair* chain_;
  int iterations_ = 0;
  std::unique_ptr<std::byte[]> scratch_;  // xbuf, staging, templates, sink
  rnic::MemoryRegion scratch_mr_;
  int wrs_posted_ = 0;
};

}  // namespace redn::offloads
