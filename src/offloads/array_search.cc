#include "offloads/array_search.h"

#include <cassert>
#include <cstring>

#include "verbs/verbs.h"

namespace redn::offloads {

using rnic::Opcode;
using rnic::WqeField;

SearchArray::SearchArray(rnic::RnicDevice& dev,
                         std::vector<std::uint64_t> values)
    : n_(values.size()) {
  data_ = std::make_unique<std::uint64_t[]>(n_);
  for (std::size_t i = 0; i < n_; ++i) data_[i] = values[i] & rnic::kWrIdMask;
  mr_ = dev.pd().Register(data_.get(), n_ * 8, rnic::kAccessAll);
}

ArraySearchOffload::ArraySearchOffload(rnic::RnicDevice& server,
                                       const SearchArray& array,
                                       QueuePair* client_qp, Config cfg,
                                       std::uint64_t resp_addr,
                                       std::uint32_t resp_rkey)
    : prog_(server), n_(array.size()) {
  assert(client_qp->sq.managed());
  assert(n_ >= 1 && n_ <= 15 && "one RECV scatter per element (16 max)");
  chain_ = prog_.NewChainQueue(static_cast<std::uint32_t>(4 * n_ + 16));
  const std::uint64_t resp_base = client_qp->send_cq->hw_count();

  index_consts_ = std::make_unique<std::uint64_t[]>(n_);
  for (int i = 0; i < n_; ++i) index_consts_[i] = static_cast<std::uint64_t>(i);
  idx_mr_ = server.pd().Register(index_consts_.get(), n_ * 8, rnic::kAccessAll);
  tmpl_ = std::make_unique<std::byte[]>(std::size_t(n_) * 24);
  tmpl_mr_ = server.pd().Register(tmpl_.get(), std::size_t(n_) * 24,
                                  rnic::kAccessAll);

  const int before = prog_.budget().total();
  std::vector<rnic::Sge> recv_sges;

  for (int i = 0; i < n_; ++i) {
    // Response: send the index constant on promotion.
    verbs::SendWr resp;
    resp.opcode = Opcode::kNoop;
    resp.signaled = cfg.use_break;  // break: miss completions feed the gate
    resp.local_addr = rnic::dma::AddrOf(&index_consts_[i]);
    resp.length = 8;
    resp.lkey = idx_mr_.lkey;
    resp.remote_addr = resp_addr;
    resp.rkey = resp_rkey;
    resp.imm = 1;
    WrRef r = prog_.Post(client_qp, resp);

    // READ A[i] into the conditional target's id field. In the break
    // variant the target is the break WR; otherwise the response itself.
    const std::uint64_t read_target_idx =
        chain_->sq.posted + (cfg.use_break ? 2u : 0u) /* placeholder below */;
    (void)read_target_idx;
    WrRef break_wr;  // valid only in break mode
    if (cfg.use_break) {
      // Chain layout per iteration: [READ, CAS, B].
      const WrRef b_future{chain_, chain_->sq.posted + 2};
      verbs::SendWr read;
      const rnic::Sge* sge = prog_.MakeSgeTable(
          {{b_future.FieldAddr(WqeField::kCtrl), 8, chain_->sq_mr.lkey}});
      read.opcode = Opcode::kRead;
      read.sge_table = sge;
      read.sge_count = 1;
      read.remote_addr = array.ElementAddr(i);
      read.rkey = array.rkey();
      read.length = 8;
      WrRef rd = prog_.Post(chain_, read);

      WrRef cs = prog_.Post(
          chain_, verbs::MakeCas(b_future.FieldAddr(WqeField::kCtrl),
                                 chain_->sq_mr.rkey, /*compare=*/0,
                                 rnic::PackCtrl(Opcode::kWrite, 0)));
      recv_sges.push_back(
          {cs.FieldAddr(WqeField::kCompareAdd), 8, chain_->sq_mr.lkey});

      struct Header {
        std::uint64_t ctrl;
        std::uint64_t remote_addr;
        std::uint32_t rkey;
        std::uint32_t flags;
      } hdr{rnic::PackCtrl(Opcode::kWriteImm, 0), resp_addr, resp_rkey, 0};
      rnic::dma::Write(rnic::dma::AddrOf(&tmpl_[std::size_t(i) * 24]), &hdr,
                       sizeof(hdr));
      verbs::SendWr b;
      b.opcode = Opcode::kNoop;
      b.signaled = true;
      b.local_addr = rnic::dma::AddrOf(&tmpl_[std::size_t(i) * 24]);
      b.length = 24;
      b.lkey = tmpl_mr_.lkey;
      b.remote_addr = r.FieldAddr(WqeField::kCtrl);
      b.rkey = r.CodeRkey();
      break_wr = prog_.Post(chain_, b);
      assert(break_wr.idx == b_future.idx);

      if (i == 0) {
        prog_.Wait(client_qp->recv_cq, client_qp->rq.posted + 1);
      } else {
        prog_.Wait(client_qp->send_cq,
                   resp_base + static_cast<std::uint64_t>(i));
      }
      prog_.Enable(chain_, rd.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 2);
      prog_.Enable(chain_, cs.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 1);
      prog_.Enable(chain_, break_wr.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq));
      prog_.Enable(client_qp, r.idx + 1);
    } else {
      // Chain layout per iteration: [READ, CAS].
      verbs::SendWr read;
      const rnic::Sge* sge = prog_.MakeSgeTable(
          {{r.FieldAddr(WqeField::kCtrl), 8, client_qp->sq_mr.lkey}});
      read.opcode = Opcode::kRead;
      read.sge_table = sge;
      read.sge_count = 1;
      read.remote_addr = array.ElementAddr(i);
      read.rkey = array.rkey();
      read.length = 8;
      WrRef rd = prog_.Post(chain_, read);

      WrRef cs = prog_.Post(
          chain_, verbs::MakeCas(r.FieldAddr(WqeField::kCtrl), r.CodeRkey(),
                                 /*compare=*/0,
                                 rnic::PackCtrl(Opcode::kWriteImm, 0)));
      recv_sges.push_back(
          {cs.FieldAddr(WqeField::kCompareAdd), 8, chain_->sq_mr.lkey});

      if (i == 0) prog_.Wait(client_qp->recv_cq, client_qp->rq.posted + 1);
      prog_.Enable(chain_, rd.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq) - 1);
      prog_.Enable(chain_, cs.idx + 1);
      prog_.Wait(chain_->send_cq, prog_.SignalsPosted(chain_->send_cq));
      prog_.Enable(client_qp, r.idx + 1);
    }
  }

  const std::uint32_t sge_count = static_cast<std::uint32_t>(recv_sges.size());
  const rnic::Sge* table = prog_.MakeSgeTable(std::move(recv_sges));
  verbs::RecvWr rwr;
  rwr.sge_table = table;
  rwr.sge_count = sge_count;
  verbs::PostRecv(client_qp, rwr);

  wrs_posted_ = prog_.budget().total() - before + 1;
  prog_.Launch();
}

void ArraySearchOffload::BuildTrigger(std::uint64_t x, std::byte* out) const {
  const std::uint64_t packed = rnic::PackCtrl(Opcode::kNoop, x);
  for (int i = 0; i < n_; ++i) std::memcpy(out + i * 8, &packed, 8);
}

}  // namespace redn::offloads
