// Scripted, deterministic fault injection for the workload drivers.
//
// A FaultPlan is a schedule of fault windows applied to endpoints of the
// simulated topology. Every entry names a target (a server/shard index, or
// a client/tenant index), a kind, and a [down_at, up_at) window in
// simulated time. Plans replace ad-hoc per-driver fault knobs (the old
// FabricScaleConfig::partition_at/heal_at client-0 hack) with one schema
// shared by RunFabricScale and RunKvService.
//
// Kinds and their mechanisms (see docs/KV.md):
//   kBlackhole — Transport::SetLinkFaults(endpoint, loss=1.0): every packet
//                to/from the target's link drops; in-flight flows exhaust
//                their retry budgets and the QPs error. Heals at up_at
//                (loss restored to the config's baseline).
//   kRnrStall  — RnicDevice::StallRecvsFor on the target's server-side QPs:
//                the next `rnr_count` inbound delivery probes see "no RECV
//                posted" and are RNR-NAKed. Transient when the budget
//                outlives the stall; fatal (RNR_RETRY_EXC) when it doesn't.
//                `up_at` is optional — the stall self-clears as probes
//                consume it; a nonzero up_at additionally re-arms any QP
//                the stall errored.
//   kCrash     — RnicDevice::KillProcessResources(shard pid): the shard's
//                QPs and armed chains die; subsequent triggers are answered
//                by dead-peer NAKs. Permanent — up_at must be 0.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace redn::workload {

enum class FaultKind : std::uint8_t { kBlackhole, kRnrStall, kCrash };

struct FaultEntry {
  // Target shard (RunKvService) — the server side of the fault. -1 with
  // `client` >= 0 targets a client endpoint instead (RunFabricScale's
  // single-server topology faults clients).
  int server = -1;
  // Client/tenant filter: restricts kRnrStall to one client's QPs, or (in
  // RunFabricScale) selects the client endpoint to blackhole. -1 = all.
  int client = -1;
  FaultKind kind = FaultKind::kBlackhole;
  sim::Nanos down_at = 0;
  sim::Nanos up_at = 0;  // 0 = never heals; must be 0 for kCrash
  int rnr_count = 64;    // kRnrStall: stalled delivery probes per QP
};

struct FaultPlan {
  std::vector<FaultEntry> entries;
  bool empty() const { return entries.empty(); }
};

}  // namespace redn::workload
