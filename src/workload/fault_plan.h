// Scripted, deterministic fault injection for the workload drivers.
//
// A FaultPlan is a schedule of fault windows applied to endpoints of the
// simulated topology. Every entry names a target (a server/shard index, or
// a client/tenant index), a kind, and a [down_at, up_at) window in
// simulated time. Plans replace ad-hoc per-driver fault knobs (the old
// FabricScaleConfig::partition_at/heal_at client-0 hack) with one schema
// shared by RunFabricScale and RunKvService.
//
// Kinds and their mechanisms (see docs/KV.md):
//   kBlackhole — Transport::SetLinkFaults(endpoint, loss=1.0): every packet
//                to/from the target's link drops; in-flight flows exhaust
//                their retry budgets and the QPs error. Heals at up_at
//                (loss restored to the config's baseline).
//   kRnrStall  — RnicDevice::StallRecvsFor on the target's server-side QPs:
//                the next `rnr_count` inbound delivery probes see "no RECV
//                posted" and are RNR-NAKed. Transient when the budget
//                outlives the stall; fatal (RNR_RETRY_EXC) when it doesn't.
//                `up_at` is optional — the stall self-clears as probes
//                consume it; a nonzero up_at additionally re-arms any QP
//                the stall errored.
//   kCrash     — RnicDevice::KillProcessResources(shard pid): the shard's
//                QPs and armed chains die; subsequent triggers are answered
//                by dead-peer NAKs. up_at = 0 is a permanent crash; a
//                nonzero up_at is a shard *re-join* (RunKvService): the
//                process (or a spare replacement adopting the shard's ring
//                identity) comes back with an empty store, re-arms its QPs,
//                and anti-entropy re-syncs its key range from the chain
//                peers (kv::ResyncSession) before serving again.
//   kFlaky     — gray failure: seeded probabilistic loss *bursts* on the
//                target's link. Within the window, the link alternates
//                between `flaky_loss` and the baseline, with burst/gap
//                lengths drawn from a per-entry deterministic RNG. The
//                service must absorb the bursts (retransmits, occasional
//                budget deaths + heal re-arms) without losing acked writes.
//   kSlow      — gray failure: the shard is alive but degraded. Adds
//                `slow_ns` of one-way latency to every packet to/from the
//                target's link (Transport::SetLinkDelay). Latency rises;
//                nothing must fail over as long as the retry budget
//                outlives the added delay.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace redn::workload {

enum class FaultKind : std::uint8_t {
  kBlackhole,
  kRnrStall,
  kCrash,
  kFlaky,
  kSlow,
};

const char* FaultKindName(FaultKind k);

struct FaultEntry {
  // Target shard (RunKvService) — the server side of the fault. -1 with
  // `client` >= 0 targets a client endpoint instead (RunFabricScale's
  // single-server topology faults clients).
  int server = -1;
  // Client/tenant filter: restricts kRnrStall to one client's QPs, or (in
  // RunFabricScale) selects the client endpoint to blackhole. -1 = all.
  int client = -1;
  FaultKind kind = FaultKind::kBlackhole;
  sim::Nanos down_at = 0;
  sim::Nanos up_at = 0;  // 0 = never heals (kCrash: never re-joins)
  int rnr_count = 64;    // kRnrStall: stalled delivery probes per QP
  // kFlaky: loss probability during a burst, and the mean burst/gap
  // lengths. Actual lengths are drawn uniformly in [0.5x, 1.5x] of the
  // mean from a per-entry seeded RNG, so plans replay bit-identically.
  double flaky_loss = 0.35;
  sim::Nanos flaky_burst = 4'000;
  sim::Nanos flaky_gap = 8'000;
  // kSlow: added one-way latency on the target's link.
  sim::Nanos slow_ns = 30'000;
};

struct FaultPlan {
  std::vector<FaultEntry> entries;
  bool empty() const { return entries.empty(); }
};

// Structural validation shared by every driver that consumes a FaultPlan.
// Throws std::invalid_argument with the entry index and an actionable
// message on: up_at <= down_at (when up_at != 0), negative down_at,
// overlapping windows targeting the same node (an entry with up_at == 0
// extends to infinity), and out-of-range kind parameters (flaky_loss
// outside (0, 1], non-positive burst/gap/slow_ns, non-positive rnr_count).
// Driver-specific rules (index ranges, which kinds a driver supports) stay
// with the driver.
void ValidateFaultPlan(const FaultPlan& plan);

}  // namespace redn::workload
