#include "workload/experiments.h"

#include <algorithm>
#include <memory>

#include "baseline/two_sided.h"
#include "kv/memcached.h"
#include "offloads/hash_harness.h"
#include "rnic/device.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

namespace redn::workload {
namespace {

using baseline::TwoSidedKvClient;
using baseline::TwoSidedKvServer;

// Starts `writers` closed-loop set clients against `server`. Each writer
// owns a distinct 10K-key range and walks it sequentially (the paper's
// §5.5 setup). Returns the clients (caller keeps them alive).
std::vector<std::unique_ptr<TwoSidedKvClient>> StartWriters(
    rnic::RnicDevice& cdev, TwoSidedKvServer& server, int writers) {
  server.set_writers(writers);
  std::vector<std::unique_ptr<TwoSidedKvClient>> out;
  for (int w = 0; w < writers; ++w) {
    out.push_back(std::make_unique<TwoSidedKvClient>(cdev, server, 4096));
    TwoSidedKvClient* c = out.back().get();
    const std::uint64_t base = 1'000'000ULL * (w + 1);
    auto next = std::make_shared<std::uint64_t>(0);
    // Closed loop: the ack callback immediately issues the next set.
    auto loop = std::make_shared<std::function<void(sim::Nanos)>>();
    *loop = [c, base, next, loop](sim::Nanos) {
      const std::uint64_t key = base + (*next)++ % 10'000;
      c->SendSet(key, 64, *loop);
    };
    (*loop)(0);
  }
  return out;
}

}  // namespace

ContentionResult RunTwoSidedContention(int writers, int n_gets,
                                       std::uint64_t seed) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 16});
  kv::ValueHeap heap(sdev, 256 << 20);
  TwoSidedKvServer server(sdev, table, heap, TwoSidedKvServer::Mode::kPolling);

  // Reader's keys.
  sim::Rng rng(seed);
  std::vector<std::byte> v(64, std::byte{0x5a});
  for (std::uint64_t k = 1; k <= 10'000; ++k) {
    table.Insert(k, heap.Store(v.data(), 64), 64);
  }

  auto writers_alive = StartWriters(cdev, server, writers);
  TwoSidedKvClient reader(cdev, server, 4096);

  sim::LatencyRecorder rec;
  for (int i = 0; i < n_gets; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(10'000);
    auto r = reader.Get(key, sim::Millis(50));
    if (r.ok) rec.Add(r.latency);
  }
  return ContentionResult{rec.MeanUs(), rec.PercentileUs(99), rec.count()};
}

ContentionResult RunRedNContention(int writers, int n_gets,
                                   std::uint64_t seed) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  // Writers hammer the CPU through a two-sided server sharing the device.
  kv::RdmaHashTable wtable(sdev, {.buckets = 1 << 16});
  kv::ValueHeap wheap(sdev, 256 << 20);
  TwoSidedKvServer wserver(sdev, wtable, wheap,
                           TwoSidedKvServer::Mode::kPolling);
  auto writers_alive = StartWriters(cdev, wserver, writers);

  // The reader's gets are NIC-served; the contended CPU is not involved.
  offloads::HashGetHarness harness(cdev, sdev,
                                   {.buckets = 1, .max_requests = n_gets + 16});
  sim::Rng rng(seed);
  for (std::uint64_t k = 1; k <= 1'000; ++k) harness.PutPattern(k, 64);
  harness.Arm(n_gets + 8);

  sim::LatencyRecorder rec;
  for (int i = 0; i < n_gets; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(1'000);
    auto r = harness.Get(key, sim::Millis(5));
    if (r.found) rec.Add(r.latency);
  }
  return ContentionResult{rec.MeanUs(), rec.PercentileUs(99), rec.count()};
}

FailoverResult RunFailover(const FailoverConfig& cfg) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  sim::ThroughputTimeline timeline(cfg.bucket, cfg.horizon);
  std::uint64_t sent = 0;
  auto served = std::make_shared<std::uint64_t>(0);
  const std::uint64_t total_ops = static_cast<std::uint64_t>(
      cfg.rate_per_sec * sim::ToSeconds(cfg.horizon));
  const sim::Nanos gap =
      static_cast<sim::Nanos>(1e9 / cfg.rate_per_sec);

  std::unique_ptr<kv::MemcachedServer> mc;
  std::unique_ptr<offloads::HashGetHarness> harness;
  std::unique_ptr<TwoSidedKvClient> client;

  if (cfg.redn) {
    harness = std::make_unique<offloads::HashGetHarness>(
        cdev, sdev,
        offloads::HashGetOffload::Config{
            .buckets = 2,  // keys displaced to their H2 bucket stay visible
            .max_requests = static_cast<int>(total_ops) + 32},
        kv::RdmaHashTable::Config{.buckets = 1 << 16});
    for (int k = 1; k <= cfg.keys; ++k) {
      harness->PutPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    harness->SetServerOwner(cfg.hull_parent ? kv::MemcachedServer::kHullPid
                                            : kv::MemcachedServer::kAppPid);
    harness->Arm(static_cast<int>(total_ops) + 16);
    // Count responses as they land.
    harness->client_recv_cq()->SetHostNotify([&sim, &cdev, h = harness.get(),
                                              served, &timeline] {
      rnic::Cqe cqe;
      while (cdev.PollCq(h->client_recv_cq(), 1, &cqe) == 1) {
        h->NoteOpenLoopResponse(cqe.qp_id);
        ++*served;
        timeline.Record(sim.now());
      }
    });
  } else {
    kv::MemcachedServer::Config mcfg;
    mcfg.rpc_mode = TwoSidedKvServer::Mode::kPolling;
    mcfg.hull_parent = cfg.hull_parent;
    mc = std::make_unique<kv::MemcachedServer>(sdev, mcfg);
    for (int k = 1; k <= cfg.keys; ++k) {
      mc->SetPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    client = std::make_unique<TwoSidedKvClient>(cdev, mc->rpc(), 4096);
  }

  // Open-loop get stream.
  sim::Rng rng(99);
  std::function<void()> tick = [&] {
    if (sim.now() >= cfg.horizon) return;
    const std::uint64_t key = 1 + rng.NextBelow(cfg.keys);
    if (cfg.redn) {
      harness->SendTrigger(key);
    } else {
      client->SendGet(key, [&sim, served, &timeline](sim::Nanos) {
        ++*served;
        timeline.Record(sim.now());
      });
    }
    ++sent;
    sim.After(gap, tick);
  };
  sim.After(gap, tick);

  // The crash.
  sim.At(cfg.crash_at, [&] {
    if (cfg.redn) {
      // The Memcached process dies; the OS reclaims resources owned by the
      // app pid. With the hull parent, the armed chains are untouched.
      if (!cfg.hull_parent) {
        sdev.KillProcessResources(kv::MemcachedServer::kAppPid);
      }
    } else {
      mc->CrashProcess();
    }
  });

  sim.RunUntil(cfg.horizon + sim::Seconds(1));

  FailoverResult out;
  out.sent = sent;
  out.served = *served;
  // Normalize against the pre-crash plateau.
  double plateau = 1.0;
  const std::size_t crash_bucket =
      static_cast<std::size_t>(cfg.crash_at / cfg.bucket);
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t b = 1; b + 1 < crash_bucket && b < timeline.buckets(); ++b) {
    sum += static_cast<double>(timeline.count(b));
    ++n;
  }
  plateau = n > 0 ? sum / static_cast<double>(n) : 1.0;
  if (plateau <= 0) plateau = 1.0;
  for (std::size_t b = 0; b < timeline.buckets(); ++b) {
    const double norm =
        std::min(1.25, static_cast<double>(timeline.count(b)) / plateau);
    out.normalized.push_back(norm);
    if (b > 0 && norm < 0.05) out.outage_seconds += sim::ToSeconds(cfg.bucket);
  }
  return out;
}

}  // namespace redn::workload
