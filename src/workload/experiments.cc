#include "workload/experiments.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "baseline/two_sided.h"
#include "kv/memcached.h"
#include "offloads/hash_harness.h"
#include "rnic/device.h"
#include "sim/rng.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "verbs/verbs.h"

namespace redn::workload {
namespace {

using baseline::TwoSidedKvClient;
using baseline::TwoSidedKvServer;

// Starts `writers` closed-loop set clients against `server`. Each writer
// owns a distinct 10K-key range and walks it sequentially (the paper's
// §5.5 setup). Returns the writers (caller keeps them alive).
struct Writer {
  std::unique_ptr<TwoSidedKvClient> client;
  // The self-rescheduling ack callback. Owned here, NOT by the lambda: a
  // closure capturing the shared_ptr that stores it is a reference cycle
  // that never frees (found by the ASan CI job).
  std::shared_ptr<std::function<void(sim::Nanos)>> loop;
};

std::vector<Writer> StartWriters(rnic::RnicDevice& cdev,
                                 TwoSidedKvServer& server, int writers) {
  server.set_writers(writers);
  std::vector<Writer> out;
  for (int w = 0; w < writers; ++w) {
    auto client = std::make_unique<TwoSidedKvClient>(cdev, server, 4096);
    TwoSidedKvClient* c = client.get();
    const std::uint64_t base = 1'000'000ULL * (w + 1);
    auto next = std::make_shared<std::uint64_t>(0);
    // Closed loop: the ack callback immediately issues the next set. The
    // raw pointer is safe: the Writer in `out` outlives the simulation.
    auto loop = std::make_shared<std::function<void(sim::Nanos)>>();
    *loop = [c, base, next, lp = loop.get()](sim::Nanos) {
      const std::uint64_t key = base + (*next)++ % 10'000;
      c->SendSet(key, 64, *lp);
    };
    (*loop)(0);
    out.push_back(Writer{std::move(client), std::move(loop)});
  }
  return out;
}

// Builds the packetized transport from the shared FabricScaleConfig knobs.
// `home` is the transport's legacy domain: flows whose two endpoints both
// live there run the classic single-domain protocol; everything else splits.
std::unique_ptr<sim::Transport> MakePacketizedTransport(
    sim::Simulator& home, sim::Fabric& fabric, const FabricScaleConfig& cfg) {
  sim::TransportConfig tc;
  tc.mtu = cfg.mtu;
  tc.loss = cfg.loss;
  tc.corrupt = cfg.corrupt;
  tc.rto = cfg.rto;
  tc.seed = cfg.transport_seed;
  tc.mode = cfg.selective_repeat ? sim::TransportMode::kSelectiveRepeat
                                 : sim::TransportMode::kGoBackN;
  tc.retry_count = cfg.retry_count;
  tc.rnr_retry_count = cfg.rnr_retry_count;
  tc.timeout_exp = cfg.timeout_exp;
  tc.min_rnr_timer = cfg.min_rnr_timer;
  return std::make_unique<sim::Transport>(home, fabric, tc);
}

// Sharded variant of RunFabricScale: same topology and closed loops, run on
// a ShardedSimulator with per-client placement. Every piece of mutable
// driver state (rng, recorder, timestamps) is per-client, because each
// client's completion hook fires on its own shard's thread; results merge
// in client order after the run, which keeps same-config reruns bit-stable.
// With cfg.packetized, client<->server QPs ride split transport flows: the
// sender half lives on the client's shard, the receiver half on the
// server's, and DATA/ACK legs cross through the mailboxes (docs/NET.md).
FabricScaleResult RunFabricScaleSharded(const FabricScaleConfig& cfg) {
  sim::ShardedSimulator ssim(cfg.shards);
  sim::Fabric fabric(cfg.switch_latency);
  std::unique_ptr<sim::Transport> transport;
  if (cfg.packetized) {
    // Home = the server's shard: a client co-resident with the server keeps
    // the legacy single-domain flow; cross-shard pairs split per endpoint.
    transport =
        MakePacketizedTransport(ssim.shard(cfg.server_shard), fabric, cfg);
  }
  rnic::RnicDevice sdev(ssim.shard(cfg.server_shard),
                        rnic::NicConfig::ConnectX5(), {}, "server");
  sdev.AttachPort(0, fabric, {cfg.server_gbps, cfg.propagation});

  struct Client {
    std::unique_ptr<rnic::RnicDevice> dev;
    std::unique_ptr<offloads::HashGetHarness> harness;
    sim::Rng rng{1};
    sim::LatencyRecorder rec;
    int shard = 0;
    int remaining = 0;
    sim::Nanos t_sent = 0;
    sim::Nanos first_sent = -1;
    sim::Nanos last_resp = 0;
    std::uint64_t error_cqes = 0;
    bool waiting = false;
  };
  std::vector<Client> clients(static_cast<std::size_t>(cfg.clients));

  const std::size_t heap_bytes =
      static_cast<std::size_t>(cfg.keys + 1) * cfg.value_len + (64 << 10);
  for (int i = 0; i < cfg.clients; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.shard = cfg.placement.empty() ? i % cfg.shards
                                    : cfg.placement[static_cast<std::size_t>(i)];
    c.rng = sim::Rng(cfg.seed +
                     0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
    c.dev = std::make_unique<rnic::RnicDevice>(
        ssim.shard(c.shard), rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "client" + std::to_string(i));
    c.dev->AttachPort(0, fabric, {cfg.client_gbps, cfg.propagation});
    c.harness = std::make_unique<offloads::HashGetHarness>(
        *c.dev, sdev,
        offloads::HashGetOffload::Config{.buckets = 2,
                                         .max_requests = cfg.gets_per_client + 8,
                                         .fabric = &fabric,
                                         .transport = transport.get()},
        kv::RdmaHashTable::Config{.buckets = 1 << 12}, heap_bytes,
        /*max_value=*/cfg.value_len + 64);
    for (int k = 1; k <= cfg.keys; ++k) {
      c.harness->PutPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    c.harness->Arm(cfg.gets_per_client + 4);
    c.remaining = cfg.gets_per_client;
  }

  std::vector<std::uint64_t> visible;
  visible.reserve(static_cast<std::size_t>(cfg.keys));
  for (int k = 1; k <= cfg.keys; ++k) {
    if (clients[0].harness->table().NicVisible(static_cast<std::uint64_t>(k))) {
      visible.push_back(static_cast<std::uint64_t>(k));
    }
  }
  if (visible.empty()) {
    throw std::runtime_error(
        "RunFabricScale: no NIC-visible keys — table too small for keyspace");
  }

  // Runs on client i's shard only: touches nothing but that client's state.
  auto issue = [&clients, &ssim, &visible](int i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    const sim::Nanos now = ssim.shard(c.shard).now();
    c.t_sent = now;
    c.waiting = true;
    if (c.first_sent < 0) c.first_sent = now;
    c.harness->SendTrigger(visible[c.rng.NextBelow(visible.size())]);
  };
  for (int i = 0; i < cfg.clients; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.harness->client_recv_cq()->SetHostNotify([&clients, &ssim, &issue, i] {
      Client& cl = clients[static_cast<std::size_t>(i)];
      rnic::Cqe cqe;
      while (cl.dev->PollCq(cl.harness->client_recv_cq(), 1, &cqe) == 1) {
        if (cqe.status != rnic::WcStatus::kSuccess) {
          ++cl.error_cqes;
          continue;
        }
        cl.harness->NoteOpenLoopResponse(cqe.qp_id);
        cl.waiting = false;
        const sim::Nanos now = ssim.shard(cl.shard).now();
        cl.rec.Add(now - cl.t_sent);
        cl.last_resp = std::max(cl.last_resp, now);
        if (--cl.remaining > 0) issue(i);
      }
    });
    ssim.shard(c.shard).At(static_cast<sim::Nanos>(i) * 200,
                           [&issue, i] { issue(i); });
  }

  // Fault windows run on the shard that owns the touched state: link-fault
  // flips on the faulted client's shard (the endpoint's owning domain),
  // RQ stalls on the server's, and the recovery re-arm splits — the client
  // half locally, the server half via a mailbox hop of one fabric one-way
  // (>= the pair's lookahead floor, and strictly ahead of any reissued
  // trigger, whose data leg pays the same one-way plus NIC processing).
  const sim::Nanos hop = 2 * cfg.propagation + cfg.switch_latency;
  for (const FaultEntry& e : cfg.faults.entries) {
    const int i = e.client;
    Client& c = clients[static_cast<std::size_t>(i)];
    sim::EventDomain& cdom = ssim.shard(c.shard);
    if (e.kind == FaultKind::kBlackhole) {
      cdom.At(e.down_at, [&transport, &clients, i] {
        transport->SetLinkFaults(
            clients[static_cast<std::size_t>(i)].dev->fabric_endpoint(0), 1.0,
            0.0);
      });
    } else {  // kRnrStall: the probed RQ is server-side state
      ssim.shard(cfg.server_shard).At(e.down_at, [&sdev, &clients, e, i] {
        sdev.StallRecvsFor(
            clients[static_cast<std::size_t>(i)].harness->server_qp(),
            e.rnr_count);
      });
    }
    if (e.up_at > 0) {
      cdom.At(e.up_at, [&, e, i] {
        Client& cl = clients[static_cast<std::size_t>(i)];
        if (e.kind == FaultKind::kBlackhole) {
          transport->SetLinkFaults(cl.dev->fabric_endpoint(0), cfg.loss,
                                   cfg.corrupt);
        } else if (cl.harness->client_qp()->state != rnic::QpState::kError) {
          return;  // stall drained transiently; nothing to repair
        }
        cl.harness->RearmTransportClientHalf();
        sim::EventDomain& dom = ssim.shard(cl.shard);
        const int n = cl.remaining + 4;
        dom.SendTo(cfg.server_shard, dom.now() + hop, [&clients, i, n] {
          clients[static_cast<std::size_t>(i)]
              .harness->RearmTransportServerHalf(n);
        });
        // Depth-1 loop: if the outstanding get died with the fault,
        // nothing will ever poke the notify hook again — reissue it.
        if (cl.waiting && cl.remaining > 0) issue(i);
      });
    }
  }

  ssim.RunUntil(sim::Seconds(30));

  FabricScaleResult out;
  out.shards = cfg.shards;
  out.mailbox_sends = ssim.cross_shard_sends();
  out.sync_rounds = ssim.rounds();
  sim::LatencyRecorder rec;
  sim::Nanos first_sent = -1;
  sim::Nanos last_resp = 0;
  for (const Client& c : clients) {
    for (const sim::Nanos s : c.rec.samples()) rec.Add(s);
    if (c.first_sent >= 0 && (first_sent < 0 || c.first_sent < first_sent)) {
      first_sent = c.first_sent;
    }
    last_resp = std::max(last_resp, c.last_resp);
    out.error_cqes += c.error_cqes;
  }
  out.gets = rec.count();
  const sim::Nanos span = last_resp > first_sent ? last_resp - first_sent : 1;
  out.duration_us = sim::ToMicros(span);
  out.gets_per_sec = static_cast<double>(out.gets) / sim::ToSeconds(span);
  const sim::LatencySummary sum = rec.Summarize();
  out.avg_us = sum.avg_us;
  out.p50_us = sum.p50_us;
  out.p99_us = sum.p99_us;
  out.p999_us = sum.p999_us;
  const int sep = sdev.fabric_endpoint(0);
  out.server_tx_util = fabric.TxUtilisation(sep, last_resp);
  out.server_rx_util = fabric.RxUtilisation(sep, last_resp);
  out.events = ssim.events_processed();
  if (transport != nullptr) {
    // counters() sums every flow's two halves; safe here — the run is over,
    // no shard thread is live.
    const sim::TransportCounters tc = transport->counters();
    out.data_packets = tc.data_packets;
    out.retransmits = tc.retransmits;
    out.timeouts = tc.timeouts;
    out.packets_lost = tc.PacketsLost();
    out.acks = tc.acks_sent;
    out.goodput_gbps = 8.0 * static_cast<double>(tc.payload_bytes_delivered) /
                       static_cast<double>(span);
    out.rto_fires = tc.rto_fires;
    out.spurious_retransmits = tc.spurious_retransmits;
    out.sack_retransmits = tc.sack_retransmits;
    out.rnr_naks = tc.rnr_naks;
    out.flow_resets = tc.flow_resets;
    out.qp_errors = sdev.counters().qp_errors;
    out.qp_rearms = sdev.counters().qp_rearms;
    for (const Client& c : clients) {
      out.qp_errors += c.dev->counters().qp_errors;
      out.qp_rearms += c.dev->counters().qp_rearms;
    }
  }
  return out;
}

}  // namespace

FabricScaleResult RunFabricScale(const FabricScaleConfig& cfg) {
  if (cfg.shards < 1) {
    throw std::invalid_argument("FabricScaleConfig: shards must be >= 1");
  }
  // Fail fast: the reliability engine and fault scripting only exist on the
  // packetized transport — silently ignoring these knobs on the lossless
  // message path has burned people before.
  if (!cfg.packetized &&
      (cfg.selective_repeat || cfg.retry_count != 0 ||
       cfg.rnr_retry_count != 0 || cfg.timeout_exp != 0 ||
       !cfg.faults.empty())) {
    throw std::invalid_argument(
        "FabricScaleConfig: selective_repeat/retry_count/rnr_retry_count/"
        "timeout_exp and FaultPlan entries require packetized = true");
  }
  ValidateFaultPlan(cfg.faults);
  for (const FaultEntry& e : cfg.faults.entries) {
    if (e.client < 0 || e.client >= cfg.clients) {
      throw std::invalid_argument(
          "FabricScaleConfig: FaultPlan entry needs a valid client index");
    }
    if (e.server != -1) {
      throw std::invalid_argument(
          "FabricScaleConfig: shard-side faults belong to RunKvService");
    }
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kFlaky ||
        e.kind == FaultKind::kSlow) {
      throw std::invalid_argument(
          std::string("FabricScaleConfig: ") + FaultKindName(e.kind) +
          " faults belong to RunKvService");
    }
  }
  if (cfg.shards > 1) {
    if (!cfg.placement.empty() &&
        cfg.placement.size() != static_cast<std::size_t>(cfg.clients)) {
      throw std::invalid_argument(
          "FabricScaleConfig: placement must be empty or name a shard per "
          "client");
    }
    for (const int p : cfg.placement) {
      if (p < 0 || p >= cfg.shards) {
        throw std::invalid_argument(
            "FabricScaleConfig: placement entry out of shard range");
      }
    }
    if (cfg.server_shard < 0 || cfg.server_shard >= cfg.shards) {
      throw std::invalid_argument(
          "FabricScaleConfig: server_shard out of shard range");
    }
    return RunFabricScaleSharded(cfg);
  }
  sim::Simulator sim;
  sim::Fabric fabric(cfg.switch_latency);
  std::unique_ptr<sim::Transport> transport;
  if (cfg.packetized) {
    transport = MakePacketizedTransport(sim, fabric, cfg);
  }
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  sdev.AttachPort(0, fabric, {cfg.server_gbps, cfg.propagation});

  struct Client {
    std::unique_ptr<rnic::RnicDevice> dev;
    std::unique_ptr<offloads::HashGetHarness> harness;
    int remaining = 0;
    sim::Nanos t_sent = 0;   // closed loop depth 1: one outstanding get
    bool waiting = false;    // a get is outstanding (no response counted yet)
  };
  std::vector<Client> clients(static_cast<std::size_t>(cfg.clients));
  sim::Rng rng(cfg.seed);
  sim::LatencyRecorder rec;
  sim::Nanos first_sent = -1;
  sim::Nanos last_resp = 0;

  const std::size_t heap_bytes =
      static_cast<std::size_t>(cfg.keys + 1) * cfg.value_len + (64 << 10);
  for (int i = 0; i < cfg.clients; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.dev = std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "client" + std::to_string(i));
    c.dev->AttachPort(0, fabric, {cfg.client_gbps, cfg.propagation});
    c.harness = std::make_unique<offloads::HashGetHarness>(
        *c.dev, sdev,
        // Two probed buckets: keys displaced to H2 stay visible, so the
        // depth-1 closed loop can never starve on a hash collision.
        offloads::HashGetOffload::Config{.buckets = 2,
                                         .max_requests = cfg.gets_per_client + 8,
                                         .fabric = &fabric,
                                         .transport = transport.get()},
        kv::RdmaHashTable::Config{.buckets = 1 << 12}, heap_bytes,
        /*max_value=*/cfg.value_len + 64);
    for (int k = 1; k <= cfg.keys; ++k) {
      c.harness->PutPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    c.harness->Arm(cfg.gets_per_client + 4);
    c.remaining = cfg.gets_per_client;
  }

  // Depth-1 closed loops starve forever on a miss, so draw only keys the
  // 2-bucket NIC probe can actually see: a doubly-colliding key falls back
  // to the hopscotch neighbourhood, which the offload never reads. Every
  // table is built identically, so client 0's visibility map covers all.
  std::vector<std::uint64_t> visible;
  visible.reserve(static_cast<std::size_t>(cfg.keys));
  for (int k = 1; k <= cfg.keys; ++k) {
    if (clients[0].harness->table().NicVisible(static_cast<std::uint64_t>(k))) {
      visible.push_back(static_cast<std::uint64_t>(k));
    }
  }
  if (visible.empty()) {
    throw std::runtime_error(
        "RunFabricScale: no NIC-visible keys — table too small for keyspace");
  }

  std::uint64_t error_cqes = 0;
  auto issue = [&](int i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.t_sent = sim.now();
    c.waiting = true;
    if (first_sent < 0) first_sent = sim.now();
    c.harness->SendTrigger(visible[rng.NextBelow(visible.size())]);
  };
  for (int i = 0; i < cfg.clients; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.harness->client_recv_cq()->SetHostNotify([&, i] {
      Client& cl = clients[static_cast<std::size_t>(i)];
      rnic::Cqe cqe;
      while (cl.dev->PollCq(cl.harness->client_recv_cq(), 1, &cqe) == 1) {
        if (cqe.status != rnic::WcStatus::kSuccess) {
          // Flushed RECVs from a QP that died mid-partition; not a get.
          ++error_cqes;
          continue;
        }
        cl.harness->NoteOpenLoopResponse(cqe.qp_id);
        cl.waiting = false;
        rec.Add(sim.now() - cl.t_sent);
        last_resp = std::max(last_resp, sim.now());
        if (--cl.remaining > 0) issue(i);
      }
    });
    // Staggered starts so clients do not issue in artificial lockstep.
    sim.At(static_cast<sim::Nanos>(i) * 200, [&, i] { issue(i); });
  }

  for (const FaultEntry& e : cfg.faults.entries) {
    const int i = e.client;
    sim.At(e.down_at, [&, e, i] {
      if (e.kind == FaultKind::kBlackhole) {
        transport->SetLinkFaults(clients[static_cast<std::size_t>(i)]
                                     .dev->fabric_endpoint(0),
                                 1.0, 0.0);
      } else {  // kRnrStall: drop the next N receiver probe attempts
        sdev.StallRecvsFor(
            clients[static_cast<std::size_t>(i)].harness->server_qp(),
            e.rnr_count);
      }
    });
    if (e.up_at > 0) {
      sim.At(e.up_at, [&, e, i] {
        Client& c = clients[static_cast<std::size_t>(i)];
        if (e.kind == FaultKind::kBlackhole) {
          transport->SetLinkFaults(c.dev->fabric_endpoint(0), cfg.loss,
                                   cfg.corrupt);
        } else if (c.harness->client_qp()->state != rnic::QpState::kError) {
          return;  // stall drained transiently; nothing to repair
        }
        c.harness->RearmTransport(c.remaining + 4);
        // Depth-1 loop: if the outstanding get died with the fault,
        // nothing will ever poke the notify hook again — reissue it.
        if (c.waiting && c.remaining > 0) issue(i);
      });
    }
  }

  sim.RunUntil(sim::Seconds(30));  // drains when the last response lands

  FabricScaleResult out;
  out.gets = rec.count();
  const sim::Nanos span = last_resp > first_sent ? last_resp - first_sent : 1;
  out.duration_us = sim::ToMicros(span);
  out.gets_per_sec = static_cast<double>(out.gets) / sim::ToSeconds(span);
  const sim::LatencySummary sum = rec.Summarize();
  out.avg_us = sum.avg_us;
  out.p50_us = sum.p50_us;
  out.p99_us = sum.p99_us;
  out.p999_us = sum.p999_us;
  const int sep = sdev.fabric_endpoint(0);
  out.server_tx_util = fabric.TxUtilisation(sep, last_resp);
  out.server_rx_util = fabric.RxUtilisation(sep, last_resp);
  out.events = sim.events_processed();
  if (transport != nullptr) {
    const sim::TransportCounters tc = transport->counters();
    out.data_packets = tc.data_packets;
    out.retransmits = tc.retransmits;
    out.timeouts = tc.timeouts;
    out.packets_lost = tc.PacketsLost();
    out.acks = tc.acks_sent;
    out.goodput_gbps = 8.0 * static_cast<double>(tc.payload_bytes_delivered) /
                       static_cast<double>(span);
    out.rto_fires = tc.rto_fires;
    out.spurious_retransmits = tc.spurious_retransmits;
    out.sack_retransmits = tc.sack_retransmits;
    out.rnr_naks = tc.rnr_naks;
    out.flow_resets = tc.flow_resets;
    out.error_cqes = error_cqes;
    out.qp_errors = sdev.counters().qp_errors;
    out.qp_rearms = sdev.counters().qp_rearms;
    for (const Client& c : clients) {
      out.qp_errors += c.dev->counters().qp_errors;
      out.qp_rearms += c.dev->counters().qp_rearms;
    }
  }
  return out;
}

ContentionResult RunTwoSidedContention(int writers, int n_gets,
                                       std::uint64_t seed) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 16});
  kv::ValueHeap heap(sdev, 256 << 20);
  TwoSidedKvServer server(sdev, table, heap, TwoSidedKvServer::Mode::kPolling);

  // Reader's keys.
  sim::Rng rng(seed);
  std::vector<std::byte> v(64, std::byte{0x5a});
  for (std::uint64_t k = 1; k <= 10'000; ++k) {
    table.Insert(k, heap.Store(v.data(), 64), 64);
  }

  auto writers_alive = StartWriters(cdev, server, writers);
  TwoSidedKvClient reader(cdev, server, 4096);

  sim::LatencyRecorder rec;
  for (int i = 0; i < n_gets; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(10'000);
    auto r = reader.Get(key, sim::Millis(50));
    if (r.ok) rec.Add(r.latency);
  }
  return ContentionResult{rec.MeanUs(), rec.PercentileUs(50), rec.PercentileUs(99),
                          rec.PercentileUs(99.9), rec.count()};
}

ContentionResult RunRedNContention(int writers, int n_gets,
                                   std::uint64_t seed) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  // Writers hammer the CPU through a two-sided server sharing the device.
  kv::RdmaHashTable wtable(sdev, {.buckets = 1 << 16});
  kv::ValueHeap wheap(sdev, 256 << 20);
  TwoSidedKvServer wserver(sdev, wtable, wheap,
                           TwoSidedKvServer::Mode::kPolling);
  auto writers_alive = StartWriters(cdev, wserver, writers);

  // The reader's gets are NIC-served; the contended CPU is not involved.
  offloads::HashGetHarness harness(cdev, sdev,
                                   {.buckets = 1, .max_requests = n_gets + 16});
  sim::Rng rng(seed);
  for (std::uint64_t k = 1; k <= 1'000; ++k) harness.PutPattern(k, 64);
  harness.Arm(n_gets + 8);

  sim::LatencyRecorder rec;
  for (int i = 0; i < n_gets; ++i) {
    const std::uint64_t key = 1 + rng.NextBelow(1'000);
    auto r = harness.Get(key, sim::Millis(5));
    if (r.found) rec.Add(r.latency);
  }
  return ContentionResult{rec.MeanUs(), rec.PercentileUs(50), rec.PercentileUs(99),
                          rec.PercentileUs(99.9), rec.count()};
}

FailoverResult RunFailover(const FailoverConfig& cfg) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  sim::ThroughputTimeline timeline(cfg.bucket, cfg.horizon);
  std::uint64_t sent = 0;
  auto served = std::make_shared<std::uint64_t>(0);
  const std::uint64_t total_ops = static_cast<std::uint64_t>(
      cfg.rate_per_sec * sim::ToSeconds(cfg.horizon));
  const sim::Nanos gap =
      static_cast<sim::Nanos>(1e9 / cfg.rate_per_sec);

  std::unique_ptr<kv::MemcachedServer> mc;
  std::unique_ptr<offloads::HashGetHarness> harness;
  std::unique_ptr<TwoSidedKvClient> client;

  if (cfg.redn) {
    harness = std::make_unique<offloads::HashGetHarness>(
        cdev, sdev,
        offloads::HashGetOffload::Config{
            .buckets = 2,  // keys displaced to their H2 bucket stay visible
            .max_requests = static_cast<int>(total_ops) + 32},
        kv::RdmaHashTable::Config{.buckets = 1 << 16});
    for (int k = 1; k <= cfg.keys; ++k) {
      harness->PutPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    harness->SetServerOwner(cfg.hull_parent ? kv::MemcachedServer::kHullPid
                                            : kv::MemcachedServer::kAppPid);
    harness->Arm(static_cast<int>(total_ops) + 16);
    // Count responses as they land.
    harness->client_recv_cq()->SetHostNotify([&sim, &cdev, h = harness.get(),
                                              served, &timeline] {
      rnic::Cqe cqe;
      while (cdev.PollCq(h->client_recv_cq(), 1, &cqe) == 1) {
        h->NoteOpenLoopResponse(cqe.qp_id);
        ++*served;
        timeline.Record(sim.now());
      }
    });
  } else {
    kv::MemcachedServer::Config mcfg;
    mcfg.rpc_mode = TwoSidedKvServer::Mode::kPolling;
    mcfg.hull_parent = cfg.hull_parent;
    mc = std::make_unique<kv::MemcachedServer>(sdev, mcfg);
    for (int k = 1; k <= cfg.keys; ++k) {
      mc->SetPattern(static_cast<std::uint64_t>(k), cfg.value_len);
    }
    client = std::make_unique<TwoSidedKvClient>(cdev, mc->rpc(), 4096);
  }

  // Open-loop get stream.
  sim::Rng rng(99);
  std::function<void()> tick = [&] {
    if (sim.now() >= cfg.horizon) return;
    const std::uint64_t key = 1 + rng.NextBelow(cfg.keys);
    if (cfg.redn) {
      harness->SendTrigger(key);
    } else {
      client->SendGet(key, [&sim, served, &timeline](sim::Nanos) {
        ++*served;
        timeline.Record(sim.now());
      });
    }
    ++sent;
    sim.After(gap, tick);
  };
  sim.After(gap, tick);

  // The crash.
  sim.At(cfg.crash_at, [&] {
    if (cfg.redn) {
      // The Memcached process dies; the OS reclaims resources owned by the
      // app pid. With the hull parent, the armed chains are untouched.
      if (!cfg.hull_parent) {
        sdev.KillProcessResources(kv::MemcachedServer::kAppPid);
      }
    } else {
      mc->CrashProcess();
    }
  });

  sim.RunUntil(cfg.horizon + sim::Seconds(1));

  FailoverResult out;
  out.sent = sent;
  out.served = *served;
  // Normalize against the pre-crash plateau.
  double plateau = 1.0;
  const std::size_t crash_bucket =
      static_cast<std::size_t>(cfg.crash_at / cfg.bucket);
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t b = 1; b + 1 < crash_bucket && b < timeline.buckets(); ++b) {
    sum += static_cast<double>(timeline.count(b));
    ++n;
  }
  plateau = n > 0 ? sum / static_cast<double>(n) : 1.0;
  if (plateau <= 0) plateau = 1.0;
  for (std::size_t b = 0; b < timeline.buckets(); ++b) {
    const double norm =
        std::min(1.25, static_cast<double>(timeline.count(b)) / plateau);
    out.normalized.push_back(norm);
    if (b > 0 && norm < 0.05) out.outage_seconds += sim::ToSeconds(cfg.bucket);
  }
  return out;
}

}  // namespace redn::workload
