// Sharded multi-tenant KV service driver with chain-replication failover.
//
// Topology: M shard NICs and N tenant NICs on one switch fabric, every
// connection riding the packetized reliability transport. Keys (>= 100K by
// default) place onto shards via a consistent-hash ring with virtual nodes;
// each key is stored on its primary AND the primary's chain successor
// (kv::ConsistentHashRing). Tenants run depth-1 closed loops of NIC-served
// gets with Zipfian-skewed key draws from per-tenant deterministic streams.
//
// Failover (FailoverPolicy::kOffloadChain): every (tenant, shard) pair
// pre-installs an offloads::ClientFailoverChain — a WAIT on the primary
// connection's send CQ that, on the failure CQE a dead shard produces
// (retry-budget exhaustion or dead-peer NAK), ENABLEs a parked, already-
// built get against the backup shard with zero host involvement. The
// baseline (kHostReissue) has no chain: the host notices a stuck get only
// via a conservative application-level RPC timer (default 16x the base
// RTO — the "multi-RTO stall") and re-issues on the CPU.
//
// Faults arrive from a workload::FaultPlan (blackhole / rnr_stall / crash
// windows per shard). Results report per-tenant p50/p99/p999 and a
// bounded-blip metric (the longest gap between consecutive completions a
// tenant observed — the outage_seconds analogue at per-tenant granularity).
//
// See docs/KV.md for the architecture and the failover timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"
#include "workload/fault_plan.h"

namespace redn::workload {

enum class FailoverPolicy : std::uint8_t {
  kOffloadChain,  // pre-installed client-NIC WAIT/ENABLE detour
  kHostReissue,   // host RPC-timeout watchdog + CPU re-issue
};

struct KvTenantStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;              // completed (acked) puts
  std::uint64_t detour_responses = 0;  // gets answered by the fired detour
  std::uint64_t reroutes = 0;          // issued straight to the backup
  std::uint64_t host_reissues = 0;     // watchdog-driven re-sends (baseline)
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  // Longest gap between consecutive completions (first gap measured from
  // the tenant's first issue) — the per-tenant bounded-blip metric.
  double max_blip_us = 0;
};

struct KvServiceConfig {
  int shards = 4;
  int tenants = 4;
  int gets_per_tenant = 400;
  int keys = 100'000;              // keyspace size (keys 1..keys)
  std::uint32_t value_len = 256;
  double zipf_theta = 0.99;        // 0 = uniform
  int ring_vnodes = 16;
  double gbps = 25.0;              // every endpoint link
  sim::Nanos propagation = 125;
  sim::Nanos switch_latency = 0;
  std::uint64_t seed = 1;

  // Transport (always packetized; selective repeat by default).
  double loss = 0.0;
  double corrupt = 0.0;
  std::uint32_t mtu = 4096;
  bool selective_repeat = true;
  std::uint32_t retry_count = 1;      // budget-exhaustion failure detector
  std::uint32_t rnr_retry_count = 4;
  std::uint32_t timeout_exp = 6;      // base RTO = 4096ns << 6 = 262us
  std::uint32_t min_rnr_timer = 1;
  std::uint64_t transport_seed = 0x7a115eedULL;

  FailoverPolicy policy = FailoverPolicy::kOffloadChain;
  // kOffloadChain: while a get is outstanding to a primary, the client
  // posts unsignaled keepalive SENDs on a probe QP that shares the primary
  // connection's send CQ. A crashed shard NAKs the probe, so even a get
  // whose trigger was delivered-and-acked right before the crash (no CQE
  // of its own — the silent-loss race) still produces the failure CQE the
  // detour chain WAITs on, within ~probe_interval. Healthy gets complete
  // well under the interval, so no probe is ever sent on the fast path.
  sim::Nanos probe_interval = 15'000;
  // kHostReissue: the application RPC timer. 0 = 16 x (4096ns << timeout_exp).
  sim::Nanos host_timeout = 0;
  // kHostReissue: host-side cost between noticing and re-issuing.
  sim::Nanos host_reissue_cost = 2'000;

  // --- write path (chain-ordered replication) --------------------------------
  // Fraction of each tenant's ops issued as puts (YCSB-style mix; 0 = the
  // classic pure-get service, bit-identical to configs that predate the
  // write path). A put travels tenant -> primary -> chain successor: the
  // primary applies, propagates the whole versioned value to the successor
  // with an RDMA WRITE, and acks the tenant only after the propagation's
  // completion — i.e. after the successor durably holds the bytes. When
  // put_fraction > 0 (or a crash window re-joins, below) every value
  // carries a u64 version tag in its first 8 bytes (kv::WriteVersionedValue
  // layout), which requires value_len >= 16.
  double put_fraction = 0.0;
  // Host-side cost to apply one put at a shard (parse + table update).
  sim::Nanos put_apply_cost = 500;
  // Anti-entropy re-sync: RDMA READs kept in flight per session.
  int resync_window = 32;

  FaultPlan faults;
  sim::Nanos horizon = sim::Seconds(30);

  // --- sharded parallel engine ----------------------------------------------
  // sim_shards > 1 runs the service on a ShardedSimulator. The KV shards
  // (and the transport's home) live on `service_shard`; `placement` pins
  // each tenant's NIC and host loop to its own domain (empty = co-resident
  // with the service — the classic single-domain path, bit-identical to
  // the pre-sharding driver). A spread tenant's transport flows split into
  // per-endpoint sender/receiver halves whose DATA/ACK packets ride the
  // conservative mailbox sync, with per-flow RNG streams whose draw order
  // depends only on each half's own packets (docs/NET.md "Split flows");
  // heals
  // and fault windows route each QP re-arm to the shard that owns it. Same
  // (seed, placement) reruns are bit-stable; moving tenants between
  // domains may reorder same-instant arrivals (docs/PARSIM.md).
  int sim_shards = 1;
  int service_shard = 0;
  std::vector<int> placement;  // per-tenant shard; empty = all service_shard
};

struct KvServiceResult {
  std::uint64_t gets = 0;             // completed (must equal the demand)
  std::uint64_t unanswered = 0;       // gets still pending at the horizon
  std::uint64_t detour_responses = 0;
  std::uint64_t host_reissues = 0;
  std::uint64_t probes_sent = 0;      // keepalives posted for slow gets
  std::uint64_t reroutes = 0;
  std::uint64_t heal_reissues = 0;    // pending gets re-sent by heal re-arm
  std::uint64_t stale_responses = 0;  // responses for no-longer-pending gets
  std::uint64_t faults_applied = 0;
  std::uint64_t heals_applied = 0;
  std::uint64_t keys_visible = 0;     // NIC-visible on primary AND backup
  // --- write path ------------------------------------------------------------
  std::uint64_t puts = 0;             // acked puts (the completed write ops)
  std::uint64_t acked_puts_full = 0;  // acked with both replicas confirmed
  std::uint64_t degraded_acks = 0;    // acked by a lone replica (peer down)
  std::uint64_t chain_forwards = 0;   // primary->successor WRITE propagations
  std::uint64_t put_retries = 0;      // watchdog-driven put re-sends
  // End-of-run audit: acknowledged writes whose confirmed replica no longer
  // holds a version >= the acked one (must be 0 — the zero-loss invariant).
  std::uint64_t lost_acked_writes = 0;
  // Read-your-writes violations: a get returned a version older than one
  // the same tenant had fully acked for that key.
  std::uint64_t ryw_violations = 0;
  // Replicas that are both serving at the end but disagree (same version,
  // different bytes — or a value failing its own pattern check).
  std::uint64_t value_divergence = 0;
  double put_avg_us = 0;
  double put_p50_us = 0;
  double put_p99_us = 0;
  double put_p999_us = 0;
  // --- recovery --------------------------------------------------------------
  std::uint64_t rejoins = 0;            // crash windows that healed
  std::uint64_t resyncs_started = 0;    // anti-entropy sessions launched
  std::uint64_t resync_keys_scanned = 0;
  std::uint64_t resync_keys_applied = 0;
  std::uint64_t resync_keys_kept = 0;   // local copy was newer (dual-apply)
  std::uint64_t resync_bytes = 0;
  std::uint64_t resync_failures = 0;    // sessions that hit an error CQE
  // Longest down_at -> back-to-serving span over all fault windows (for a
  // re-join that is down_at -> resync completion, not just down_at -> up_at).
  double degraded_window_us = 0;
  double duration_us = 0;
  double gets_per_sec = 0;
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_blip_us = 0;             // worst per-tenant blip
  std::vector<KvTenantStats> tenants;
  // Transport + device accounting.
  std::uint64_t data_packets = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t rnr_naks = 0;
  std::uint64_t sack_retransmits = 0;
  std::uint64_t error_cqes = 0;       // non-success CQEs seen by tenant loops
  std::uint64_t qp_errors = 0;
  std::uint64_t qp_rearms = 0;
  std::uint64_t events = 0;
  int sim_shards = 1;                 // event domains the run was hosted on
};

// Runs the service; throws std::invalid_argument on malformed configs
// (< 2 shards, overlapping fault windows, fault entries naming
// out-of-range shards, a versioned run with value_len < 16, ...).
//
// A kCrash entry with up_at > 0 is a crash + re-join: the shard's process
// resources are revived at up_at with an EMPTY store (the crash lost its
// memory), QPs are cycled, and an anti-entropy ResyncSession streams the
// shard's key range back from its chain peers via RDMA READs, reconciling
// by version tag. The shard serves again only once re-sync completes;
// writes forwarded to it while re-syncing dual-apply and are never
// clobbered by the stale bytes the transfer stages.
KvServiceResult RunKvService(const KvServiceConfig& cfg);

}  // namespace redn::workload
