#include "workload/kv_service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "kv/resync.h"
#include "kv/ring.h"
#include "kv/table.h"
#include "rnic/memory.h"
#include "offloads/failover_chain.h"
#include "offloads/hash_harness.h"
#include "rnic/device.h"
#include "sim/rng.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "verbs/verbs.h"

namespace redn::workload {
namespace {

// Shard s's server-side resources are owned by this pid (kCrash kills it).
constexpr int kShardPidBase = 100;
// Detour fires a chain can serve per (tenant, shard) over the run.
constexpr int kDetourArms = 16;

std::size_t Pow2AtLeast(std::size_t n) {
  std::size_t p = 1024;
  while (p < n) p <<= 1;
  return p;
}

// Values carry a version tag iff the run has a write path or a crash that
// re-joins (re-sync reconciles by tag). Pure-get configs keep the classic
// untagged layout so their packet traces stay bit-identical.
bool Versioned(const KvServiceConfig& cfg) {
  if (cfg.put_fraction > 0.0) return true;
  for (const FaultEntry& e : cfg.faults.entries) {
    if (e.kind == FaultKind::kCrash && e.up_at > 0) return true;
  }
  return false;
}

// Shard lifecycle during fault windows.
enum class ShardState : std::uint8_t { kServing, kDead, kResyncing };

void Validate(const KvServiceConfig& cfg) {
  if (cfg.shards < 2) {
    throw std::invalid_argument(
        "KvServiceConfig: chain replication needs shards >= 2");
  }
  if (cfg.tenants < 1 || cfg.gets_per_tenant < 1 || cfg.keys < 1) {
    throw std::invalid_argument(
        "KvServiceConfig: tenants, gets_per_tenant, keys must be positive");
  }
  ValidateFaultPlan(cfg.faults);
  for (const FaultEntry& e : cfg.faults.entries) {
    if (e.server < 0 || e.server >= cfg.shards) {
      throw std::invalid_argument(
          "FaultPlan: entry names an out-of-range shard");
    }
    if (e.client >= cfg.tenants) {
      throw std::invalid_argument(
          "FaultPlan: entry names an out-of-range tenant");
    }
  }
  if (cfg.put_fraction < 0.0 || cfg.put_fraction > 1.0) {
    throw std::invalid_argument(
        "KvServiceConfig: put_fraction must be in [0, 1]");
  }
  if (cfg.resync_window < 1) {
    throw std::invalid_argument("KvServiceConfig: resync_window must be >= 1");
  }
  if (cfg.put_apply_cost < 0) {
    throw std::invalid_argument(
        "KvServiceConfig: put_apply_cost must be >= 0");
  }
  if (Versioned(cfg) && cfg.value_len < 2 * kv::kValueVersionBytes) {
    throw std::invalid_argument(
        "KvServiceConfig: the versioned value layout (put_fraction > 0 or a "
        "crash window that re-joins) needs value_len >= 16 — 8 bytes of "
        "version tag plus a non-empty payload");
  }
  if (cfg.sim_shards < 1) {
    throw std::invalid_argument("KvServiceConfig: sim_shards must be >= 1");
  }
  if (cfg.service_shard < 0 || cfg.service_shard >= cfg.sim_shards) {
    throw std::invalid_argument(
        "KvServiceConfig: service_shard out of sim_shards range");
  }
  if (!cfg.placement.empty() &&
      cfg.placement.size() != static_cast<std::size_t>(cfg.tenants)) {
    throw std::invalid_argument(
        "KvServiceConfig: placement must be empty or name a shard per tenant");
  }
  for (const int p : cfg.placement) {
    if (p < 0 || p >= cfg.sim_shards) {
      throw std::invalid_argument(
          "KvServiceConfig: placement names an out-of-range sim shard");
    }
  }
}

}  // namespace

KvServiceResult RunKvService(const KvServiceConfig& cfg) {
  Validate(cfg);

  // The KV shards (and the transport's home) live on service_shard; each
  // tenant's NIC lives on placement[t] (empty = co-resident with the
  // service). Co-resident flows stay single-domain legacy flows; a spread
  // tenant's flows split into per-endpoint halves riding the mailbox sync
  // (docs/NET.md "Split flows"). sim_shards == 1 is the classic
  // single-domain path, bit-identical to the pre-sharding driver.
  sim::ShardedSimulator ssim(cfg.sim_shards);
  sim::Simulator& sim = ssim.shard(cfg.service_shard);
  sim::Fabric fabric(cfg.switch_latency);
  sim::TransportConfig tc;
  tc.mtu = cfg.mtu;
  tc.loss = cfg.loss;
  tc.corrupt = cfg.corrupt;
  tc.seed = cfg.transport_seed;
  tc.mode = cfg.selective_repeat ? sim::TransportMode::kSelectiveRepeat
                                 : sim::TransportMode::kGoBackN;
  tc.retry_count = cfg.retry_count;
  tc.rnr_retry_count = cfg.rnr_retry_count;
  tc.timeout_exp = cfg.timeout_exp;
  tc.min_rnr_timer = cfg.min_rnr_timer;
  sim::Transport transport(sim, fabric, tc);

  const kv::ConsistentHashRing ring(cfg.shards, cfg.ring_vnodes, cfg.seed);

  std::vector<std::unique_ptr<rnic::RnicDevice>> sdev;
  for (int s = 0; s < cfg.shards; ++s) {
    sdev.push_back(std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "shard" + std::to_string(s)));
    sdev.back()->AttachPort(0, fabric, {cfg.gbps, cfg.propagation});
  }
  // Tenant t's host logic and NIC run on place[t]'s domain; tsim(t) is the
  // clock and scheduler every tenant-side callback must use.
  std::vector<int> place(static_cast<std::size_t>(cfg.tenants),
                         cfg.service_shard);
  for (std::size_t t = 0; t < cfg.placement.size(); ++t) {
    place[t] = cfg.placement[t];
  }
  auto tsim = [&](int t) -> sim::Simulator& {
    return ssim.shard(place[static_cast<std::size_t>(t)]);
  };
  std::vector<std::unique_ptr<rnic::RnicDevice>> tdev;
  for (int t = 0; t < cfg.tenants; ++t) {
    tdev.push_back(std::make_unique<rnic::RnicDevice>(
        tsim(t), rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "tenant" + std::to_string(t)));
    tdev.back()->AttachPort(0, fabric, {cfg.gbps, cfg.propagation});
  }

  // --- key placement + shard stores ----------------------------------------
  // Every key lives on its ring primary AND the primary's chain successor.
  std::vector<std::vector<std::uint64_t>> shard_keys(
      static_cast<std::size_t>(cfg.shards));
  for (int k = 1; k <= cfg.keys; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k);
    const int p = ring.PrimaryOf(key);
    shard_keys[static_cast<std::size_t>(p)].push_back(key);
    shard_keys[static_cast<std::size_t>(ring.SuccessorOf(p))].push_back(key);
  }
  const bool versioned = Versioned(cfg);
  const std::size_t slot = (static_cast<std::size_t>(cfg.value_len) + 7) & ~std::size_t{7};
  std::vector<std::unique_ptr<kv::RdmaHashTable>> tables;
  std::vector<std::unique_ptr<kv::ValueHeap>> heaps;
  // Per-shard key -> value address (stable for the run: puts and re-sync
  // rewrite values in place, so replication and anti-entropy can target
  // fixed remote addresses).
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> vaddr(
      static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s) {
    const std::size_t cnt = shard_keys[static_cast<std::size_t>(s)].size();
    tables.push_back(std::make_unique<kv::RdmaHashTable>(
        *sdev[static_cast<std::size_t>(s)],
        kv::RdmaHashTable::Config{.buckets = Pow2AtLeast(4 * cnt + 16)}));
    heaps.push_back(std::make_unique<kv::ValueHeap>(
        *sdev[static_cast<std::size_t>(s)], cnt * slot + (64 << 10)));
    std::vector<std::byte> v(cfg.value_len);
    for (std::uint64_t key : shard_keys[static_cast<std::size_t>(s)]) {
      std::uint64_t ptr;
      if (versioned) {
        ptr = heaps.back()->Reserve(cfg.value_len);
        kv::WriteVersionedValue(ptr, cfg.value_len, key, /*version=*/0);
      } else {
        for (std::uint32_t i = 0; i < cfg.value_len; ++i) {
          v[i] = static_cast<std::byte>((key + i) & 0xff);  // PutPattern layout
        }
        ptr = heaps.back()->Store(v.data(), cfg.value_len);
      }
      tables.back()->Insert(key, ptr, cfg.value_len);
      vaddr[static_cast<std::size_t>(s)][key] = ptr;
    }
  }

  // Depth-1 closed loops starve on a miss, so tenants draw only keys the
  // 2-bucket NIC probe can see on BOTH replicas.
  std::vector<std::uint64_t> eligible;
  eligible.reserve(static_cast<std::size_t>(cfg.keys));
  for (int k = 1; k <= cfg.keys; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k);
    const int p = ring.PrimaryOf(key);
    const int b = ring.SuccessorOf(p);
    if (tables[static_cast<std::size_t>(p)]->NicVisible(key) &&
        tables[static_cast<std::size_t>(b)]->NicVisible(key)) {
      eligible.push_back(key);
    }
  }
  if (eligible.empty()) {
    throw std::runtime_error("RunKvService: no NIC-visible keys");
  }

  // --- harnesses, detour chains ---------------------------------------------
  const bool offloaded = cfg.policy == FailoverPolicy::kOffloadChain;
  const int arm0 = cfg.gets_per_tenant + 8;
  using HarnessRow = std::vector<std::unique_ptr<offloads::HashGetHarness>>;
  std::vector<HarnessRow> H(static_cast<std::size_t>(cfg.tenants));
  std::vector<HarnessRow> F(static_cast<std::size_t>(cfg.tenants));
  std::vector<std::vector<std::unique_ptr<offloads::ClientFailoverChain>>>
      chains(static_cast<std::size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    for (int s = 0; s < cfg.shards; ++s) {
      auto h = std::make_unique<offloads::HashGetHarness>(
          *tdev[static_cast<std::size_t>(t)],
          *sdev[static_cast<std::size_t>(s)],
          offloads::HashGetOffload::Config{
              .buckets = 2,
              .max_requests = cfg.gets_per_tenant + 32,
              .fabric = &fabric,
              .transport = &transport},
          *tables[static_cast<std::size_t>(s)],
          *heaps[static_cast<std::size_t>(s)],
          /*max_value=*/cfg.value_len + 64);
      h->SetServerOwner(kShardPidBase + s);
      h->Arm(arm0);
      H[static_cast<std::size_t>(t)].push_back(std::move(h));
    }
    if (offloaded) {
      for (int s = 0; s < cfg.shards; ++s) {
        const int b = ring.SuccessorOf(s);
        auto f = std::make_unique<offloads::HashGetHarness>(
            *tdev[static_cast<std::size_t>(t)],
            *sdev[static_cast<std::size_t>(b)],
            offloads::HashGetOffload::Config{.buckets = 2,
                                             .max_requests = kDetourArms + 4,
                                             .fabric = &fabric,
                                             .transport = &transport,
                                             .managed_client_sq = true},
            *tables[static_cast<std::size_t>(b)],
            *heaps[static_cast<std::size_t>(b)],
            /*max_value=*/cfg.value_len + 64);
        f->SetServerOwner(kShardPidBase + b);
        f->Arm(kDetourArms);
        f->PrepostResponseRecvs(kDetourArms + 4);
        F[static_cast<std::size_t>(t)].push_back(std::move(f));
      }
      for (int s = 0; s < cfg.shards; ++s) {
        auto c = std::make_unique<offloads::ClientFailoverChain>(
            *H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)],
            *F[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)],
            kDetourArms);
        c->Arm();
        chains[static_cast<std::size_t>(t)].push_back(std::move(c));
      }
    }
  }

  // Keepalive probe QPs (offload policy): one per (tenant, shard), the
  // client end sharing the primary connection's send CQ so a probe failure
  // CQE trips the same WAIT the trigger failures do. Probes are unsignaled
  // zero-byte SENDs — healthy probes keep the CQ silent.
  std::vector<std::vector<rnic::QueuePair*>> probe_cli(
      static_cast<std::size_t>(cfg.tenants));
  std::vector<std::vector<rnic::QueuePair*>> probe_srv(
      static_cast<std::size_t>(cfg.tenants));
  if (offloaded) {
    for (int t = 0; t < cfg.tenants; ++t) {
      for (int s = 0; s < cfg.shards; ++s) {
        rnic::QpConfig sc;
        sc.rq_depth = 512;
        sc.send_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
        sc.recv_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
        rnic::QueuePair* ps =
            sdev[static_cast<std::size_t>(s)]->CreateQp(sc);
        ps->owner_pid = kShardPidBase + s;
        rnic::QpConfig cc;
        cc.send_cq = H[static_cast<std::size_t>(t)][static_cast<std::size_t>(
                          s)]->client_qp()->send_cq;
        cc.recv_cq = tdev[static_cast<std::size_t>(t)]->CreateCq();
        rnic::QueuePair* pc =
            tdev[static_cast<std::size_t>(t)]->CreateQp(cc);
        rnic::ConnectOverTransport(pc, ps, transport);
        verbs::RecvWr rwr;
        for (int i = 0; i < 64; ++i) verbs::PostRecv(ps, rwr);
        probe_cli[static_cast<std::size_t>(t)].push_back(pc);
        probe_srv[static_cast<std::size_t>(t)].push_back(ps);
      }
    }
  }

  // --- write path: put links + chain edges -----------------------------------
  // Puts ride dedicated QP pairs (the get path's trigger/response plumbing
  // is an offload program with a fixed request shape): per (tenant, shard)
  // a request pair carries tenant -> shard SENDs of [key u64 | payload] and
  // an ack pair carries shard -> tenant SENDs of [key, version, replica
  // mask]. Chain propagation rides one QP pair per directed ring edge
  // s -> SuccessorOf(s): the primary RDMA-WRITEs the whole versioned value
  // into the successor's heap slot and treats the WRITE's completion as
  // "the peer durably applied" — only then does it ack the tenant.
  const bool writes = cfg.put_fraction > 0.0;
  constexpr int kPutSlots = 4;
  constexpr std::uint32_t kAckBytes = 24;
  constexpr std::uint64_t kFwdRing = 256;
  struct PutLink {
    rnic::QueuePair* req_cli = nullptr;  // tenant-side requester
    rnic::QueuePair* req_srv = nullptr;
    rnic::QueuePair* ack_srv = nullptr;  // shard-side requester
    rnic::QueuePair* ack_cli = nullptr;
    std::unique_ptr<std::byte[]> req_rx;  // shard: kPutSlots x value_len
    rnic::MemoryRegion req_rx_mr;
    std::unique_ptr<std::byte[]> ack_tx;  // shard: kPutSlots x kAckBytes
    rnic::MemoryRegion ack_tx_mr;
    std::unique_ptr<std::byte[]> ack_rx;  // tenant: kPutSlots x kAckBytes
    rnic::MemoryRegion ack_rx_mr;
    std::uint64_t ack_seq = 0;
  };
  struct Fwd {
    int tenant = 0;
    int peer = 0;
    std::uint64_t key = 0;
    std::uint64_t version = 0;
  };
  struct Edge {
    rnic::QueuePair* req = nullptr;  // requester at s
    rnic::QueuePair* rsp = nullptr;  // responder at SuccessorOf(s)
    std::vector<Fwd> ring;           // wr_id -> in-flight forward context
    std::uint64_t next = 0;
  };
  std::vector<std::vector<PutLink>> plinks;
  std::vector<Edge> edges;
  std::vector<std::unique_ptr<std::byte[]>> ptx;  // per-tenant request buffer
  std::vector<rnic::MemoryRegion> ptx_mr;
  auto post_req_slot = [&](PutLink& L, int slot) {
    verbs::RecvWr r;
    r.wr_id = static_cast<std::uint64_t>(slot);
    r.local_addr = L.req_rx_mr.addr +
                   static_cast<std::uint64_t>(slot) * cfg.value_len;
    r.length = cfg.value_len;
    r.lkey = L.req_rx_mr.lkey;
    verbs::PostRecv(L.req_srv, r);
  };
  auto post_ack_slot = [&](PutLink& L, int slot) {
    verbs::RecvWr r;
    r.wr_id = static_cast<std::uint64_t>(slot);
    r.local_addr = L.ack_rx_mr.addr +
                   static_cast<std::uint64_t>(slot) * kAckBytes;
    r.length = kAckBytes;
    r.lkey = L.ack_rx_mr.lkey;
    verbs::PostRecv(L.ack_cli, r);
  };
  if (writes) {
    plinks.resize(static_cast<std::size_t>(cfg.tenants));
    for (int t = 0; t < cfg.tenants; ++t) {
      auto& td = *tdev[static_cast<std::size_t>(t)];
      ptx.push_back(std::make_unique<std::byte[]>(cfg.value_len));
      ptx_mr.push_back(
          td.pd().Register(ptx.back().get(), cfg.value_len, rnic::kAccessAll));
      plinks[static_cast<std::size_t>(t)].resize(
          static_cast<std::size_t>(cfg.shards));
      for (int s = 0; s < cfg.shards; ++s) {
        auto& sd = *sdev[static_cast<std::size_t>(s)];
        PutLink& L =
            plinks[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
        rnic::QpConfig rs;
        rs.rq_depth = 64;
        rs.send_cq = sd.CreateCq();
        rs.recv_cq = sd.CreateCq();
        L.req_srv = sd.CreateQp(rs);
        L.req_srv->owner_pid = kShardPidBase + s;
        rnic::QpConfig rc;
        rc.send_cq = td.CreateCq();
        rc.recv_cq = td.CreateCq();
        L.req_cli = td.CreateQp(rc);
        rnic::ConnectOverTransport(L.req_cli, L.req_srv, transport);
        L.req_rx = std::make_unique<std::byte[]>(
            static_cast<std::size_t>(kPutSlots) * cfg.value_len);
        L.req_rx_mr = sd.pd().Register(
            L.req_rx.get(), static_cast<std::size_t>(kPutSlots) * cfg.value_len,
            rnic::kAccessAll);
        rnic::QpConfig as;
        as.send_cq = sd.CreateCq();
        as.recv_cq = sd.CreateCq();
        L.ack_srv = sd.CreateQp(as);
        L.ack_srv->owner_pid = kShardPidBase + s;
        rnic::QpConfig ac;
        ac.rq_depth = 64;
        ac.send_cq = td.CreateCq();
        ac.recv_cq = td.CreateCq();
        L.ack_cli = td.CreateQp(ac);
        rnic::ConnectOverTransport(L.ack_srv, L.ack_cli, transport);
        L.ack_tx = std::make_unique<std::byte[]>(
            static_cast<std::size_t>(kPutSlots) * kAckBytes);
        L.ack_tx_mr = sd.pd().Register(
            L.ack_tx.get(), static_cast<std::size_t>(kPutSlots) * kAckBytes,
            rnic::kAccessAll);
        L.ack_rx = std::make_unique<std::byte[]>(
            static_cast<std::size_t>(kPutSlots) * kAckBytes);
        L.ack_rx_mr = td.pd().Register(
            L.ack_rx.get(), static_cast<std::size_t>(kPutSlots) * kAckBytes,
            rnic::kAccessAll);
        for (int i = 0; i < kPutSlots; ++i) {
          post_req_slot(L, i);
          post_ack_slot(L, i);
        }
      }
    }
    edges.resize(static_cast<std::size_t>(cfg.shards));
    for (int s = 0; s < cfg.shards; ++s) {
      const int b = ring.SuccessorOf(s);
      Edge& E = edges[static_cast<std::size_t>(s)];
      E.ring.resize(kFwdRing);
      rnic::QpConfig es;
      es.send_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
      es.recv_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
      E.req = sdev[static_cast<std::size_t>(s)]->CreateQp(es);
      E.req->owner_pid = kShardPidBase + s;
      rnic::QpConfig er;
      er.send_cq = sdev[static_cast<std::size_t>(b)]->CreateCq();
      er.recv_cq = sdev[static_cast<std::size_t>(b)]->CreateCq();
      E.rsp = sdev[static_cast<std::size_t>(b)]->CreateQp(er);
      E.rsp->owner_pid = kShardPidBase + b;
      rnic::ConnectOverTransport(E.req, E.rsp, transport);
    }
  }

  // Shard lifecycle + anti-entropy bookkeeping. `dirty[s]` records that s
  // missed at least one chain write while unreachable — its heal must run
  // a re-sync before tenants may route reads back to it.
  std::vector<ShardState> shard_state(static_cast<std::size_t>(cfg.shards),
                                      ShardState::kServing);
  std::vector<char> dirty(static_cast<std::size_t>(cfg.shards), 0);
  std::vector<std::unique_ptr<kv::ResyncSession>> sessions;
  struct AckedWrite {
    std::uint64_t key;
    std::uint64_t version;
    std::uint64_t mask;  // bit s = shard s confirmed durable at ack time
  };
  std::vector<AckedWrite> ledger;

  // --- Zipf sampling ---------------------------------------------------------
  // p(rank r) ~ 1/(r+1)^theta over the eligible keyspace; per-tenant streams
  // rotate the ranking so tenants have distinct (overlapping) hot sets.
  const std::size_t nkeys = eligible.size();
  std::vector<double> cdf;
  if (cfg.zipf_theta > 0) {
    cdf.resize(nkeys);
    double acc = 0;
    for (std::size_t r = 0; r < nkeys; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), cfg.zipf_theta);
      cdf[r] = acc;
    }
  }
  const std::size_t rot = std::max<std::size_t>(1, nkeys / static_cast<std::size_t>(cfg.tenants));

  // --- tenant state ----------------------------------------------------------
  struct Tenant {
    sim::Rng rng{1};
    int remaining = 0;
    bool started = false;
    bool waiting = false;
    std::uint64_t key = 0;
    int primary = 0;
    int target = 0;
    sim::Nanos t_sent = 0;
    std::uint64_t seq = 0;      // one per op
    std::uint64_t attempt = 0;  // one per send (watchdog staleness guard)
    std::vector<char> dead;     // per-shard "stop routing there" flags
    sim::LatencyRecorder rec;
    sim::Nanos last_mark = 0;
    sim::Nanos max_blip = 0;
    std::uint64_t detours = 0, reroutes = 0, host_reissues = 0;
    // Write path.
    bool is_put = false;
    std::uint64_t puts = 0;
    sim::LatencyRecorder put_rec;
    // Highest fully-acked (both replicas) version per key — the tenant's
    // read-your-writes floor.
    std::unordered_map<std::uint64_t, std::uint64_t> ryw;
    // Shard-local accounting: the tenant's domain owns these, and the
    // run-wide totals are merged after RunUntil (tenant order), so spread
    // placements never write run-global counters from a shard thread.
    sim::Nanos first_sent = -1;
    sim::Nanos last_resp = 0;
    std::uint64_t err_cqes = 0, stale = 0, probes = 0;
    std::uint64_t heal_resends = 0, put_retry = 0, ryw_viol = 0, full_acks = 0;
    std::vector<AckedWrite> ledger;
    // Nonzero while a spread heal is mid-flight between its tenant-shard
    // and service-shard legs: the server-side offload program is being
    // swapped over there, so sends park until the final leg resumes them.
    int healing = 0;
  };
  std::vector<Tenant> tenants(static_cast<std::size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    T.rng = sim::Rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(t + 1));
    T.remaining = cfg.gets_per_tenant;
    T.dead.assign(static_cast<std::size_t>(cfg.shards), 0);
  }

  const sim::Nanos base_rto =
      cfg.timeout_exp > 0 ? (sim::Nanos{4096} << cfg.timeout_exp) : tc.rto;
  const sim::Nanos host_timeout =
      cfg.host_timeout > 0 ? cfg.host_timeout : 16 * base_rto;
  // One-way endpoint->endpoint latency: the legal (and exact) cross-shard
  // mailbox hop between a spread tenant's domain and the service shard.
  const sim::Nanos hop = 2 * cfg.propagation + cfg.switch_latency;

  sim::Nanos first_sent = -1;
  sim::Nanos last_resp = 0;
  std::uint64_t error_cqes = 0, stale_responses = 0, heal_reissues = 0;
  std::uint64_t faults_applied = 0, heals_applied = 0, probes_sent = 0;
  std::uint64_t acked_full = 0, degraded_acks = 0, chain_forwards = 0;
  std::uint64_t put_retries = 0, ryw_violations = 0;
  std::uint64_t rejoins = 0, resyncs_started = 0, resync_failures = 0;
  std::uint64_t resync_scanned = 0, resync_applied = 0, resync_kept = 0;
  std::uint64_t resync_bytes = 0;
  // Per fault-plan-entry degraded window (down_at -> back to serving), us.
  std::vector<double> degraded_win(cfg.faults.entries.size(), 0.0);

  auto draw = [&](int t) -> std::uint64_t {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    std::size_t rank;
    if (cdf.empty()) {
      rank = static_cast<std::size_t>(T.rng.NextBelow(nkeys));
    } else {
      const double u = T.rng.NextDouble() * cdf.back();
      rank = static_cast<std::size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (rank >= nkeys) rank = nkeys - 1;
    }
    return eligible[(rank + static_cast<std::size_t>(t) * rot) % nkeys];
  };

  std::function<void(int)> send_fn;
  std::function<void(int)> issue_next;
  std::function<void(int, std::uint64_t, std::uint64_t, int)> probe_fn;

  // Keepalive tick: as long as the same send is still pending against
  // primary `p`, ping the probe QP and reschedule. A dead or blackholed
  // shard turns a probe into the failure CQE that fires the detour chain;
  // a completed get cancels the next tick via the seq/attempt guard.
  probe_fn = [&](int t, std::uint64_t seq, std::uint64_t attempt, int p) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    if (!T.waiting || T.seq != seq || T.attempt != attempt) return;
    rnic::QueuePair* pq =
        probe_cli[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    if (pq->sq.error || pq->state != rnic::QpState::kRts) {
      return;  // a probe already tripped; the chain fired or is firing
    }
    verbs::PostSendNow(pq, verbs::MakeSend(0, 0, 0, /*signaled=*/false));
    ++T.probes;
    sim::Simulator& ts = tsim(t);
    rnic::QueuePair* ps =
        probe_srv[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    if (place[static_cast<std::size_t>(t)] == cfg.service_shard) {
      if (ps->alive && ps->state == rnic::QpState::kRts) {
        verbs::RecvWr rwr;
        verbs::PostRecv(ps, rwr);  // keep the responder's RQ topped up
      }
    } else {
      // The responder's RQ belongs to the service shard; the top-up rides
      // the mailbox at the one-way latency (the probe itself takes at
      // least as long to arrive, so the RQ is replenished in time).
      ts.SendTo(cfg.service_shard, ts.now() + hop, [ps] {
        if (ps->alive && ps->state == rnic::QpState::kRts) {
          verbs::RecvWr rwr;
          verbs::PostRecv(ps, rwr);
        }
      });
    }
    ts.After(cfg.probe_interval,
             [&, t, seq, attempt, p] { probe_fn(t, seq, attempt, p); });
  };

  auto schedule_watchdog = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    const std::uint64_t seq = T.seq, attempt = T.attempt;
    sim::Simulator& ts = tsim(t);
    ts.At(ts.now() + host_timeout, [&, t, seq, attempt] {
      Tenant& W = tenants[static_cast<std::size_t>(t)];
      if (!W.waiting || W.seq != seq || W.attempt != attempt) return;
      // The send is stuck past the application RPC timer: declare its
      // target dead and re-issue from the CPU (the multi-RTO stall).
      W.dead[static_cast<std::size_t>(W.target)] = 1;
      if (W.is_put) {
        ++W.put_retry;  // puts have no detour chain; the watchdog is their
                        // only failure detector
      } else {
        ++W.host_reissues;
      }
      tsim(t).After(cfg.host_reissue_cost, [&, t, seq] {
        Tenant& W2 = tenants[static_cast<std::size_t>(t)];
        if (!W2.waiting || W2.seq != seq) return;
        send_fn(t);
      });
    });
  };

  send_fn = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    sim::Simulator& ts = tsim(t);
    if (T.healing > 0) {
      // A spread heal is rebuilding this tenant's server-side programs on
      // the service shard; park like the no-live-replica case and let the
      // heal's final leg (or this retry) resume.
      ts.After(sim::Millis(1), [&, t] {
        Tenant& W = tenants[static_cast<std::size_t>(t)];
        if (W.waiting || W.remaining <= 0) return;
        send_fn(t);
      });
      T.waiting = false;
      return;
    }
    const int p = ring.PrimaryOf(T.key);
    T.primary = p;
    const int b = ring.SuccessorOf(p);
    const int pref = T.dead[static_cast<std::size_t>(p)] ? b : p;
    const int alt = pref == p ? b : p;
    if (T.is_put) {
      // Chain-ordered write: the put goes to the chain head (the primary;
      // the successor acts as a degraded head only while the primary is
      // unroutable). No detour chain covers puts — the host watchdog is
      // the backstop for a put swallowed by a fault.
      for (const int target : {pref, alt}) {
        if (T.dead[static_cast<std::size_t>(target)]) continue;
        PutLink& L = plinks[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(target)];
        if (L.req_cli->sq.error || L.req_cli->state != rnic::QpState::kRts) {
          T.dead[static_cast<std::size_t>(target)] = 1;
          continue;
        }
        rnic::dma::WriteU64(ptx_mr[static_cast<std::size_t>(t)].addr, T.key);
        auto* pay = reinterpret_cast<std::uint8_t*>(
            ptx_mr[static_cast<std::size_t>(t)].addr);
        for (std::uint32_t i = kv::kValueVersionBytes; i < cfg.value_len;
             ++i) {
          pay[i] = static_cast<std::uint8_t>((T.key + i) & 0xff);
        }
        verbs::PostSendNow(
            L.req_cli,
            verbs::MakeSend(ptx_mr[static_cast<std::size_t>(t)].addr,
                            cfg.value_len,
                            ptx_mr[static_cast<std::size_t>(t)].lkey,
                            /*signaled=*/false));
        if (target != p) ++T.reroutes;
        T.target = target;
        T.waiting = true;
        ++T.attempt;
        if (T.first_sent < 0) T.first_sent = ts.now();
        schedule_watchdog(t);
        return;
      }
      ts.After(sim::Millis(1), [&, t] {
        Tenant& W = tenants[static_cast<std::size_t>(t)];
        if (W.waiting || W.remaining <= 0) return;
        send_fn(t);
      });
      T.waiting = false;
      return;
    }
    for (const int target : {pref, alt}) {
      if (T.dead[static_cast<std::size_t>(target)]) continue;
      auto& h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(target)];
      if (target == p && offloaded) {
        // Healthy-path host work: keep the parked detour's trigger bytes
        // pointing at the in-flight key.
        chains[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]
            ->SetKey(T.key);
      }
      if (!h->SendTriggerBlind(T.key)) {
        // The local QP is wrecked (errored earlier and not yet healed) —
        // that much the host can see without peering into the server.
        T.dead[static_cast<std::size_t>(target)] = 1;
        continue;
      }
      if (target != p) ++T.reroutes;
      T.target = target;
      T.waiting = true;
      ++T.attempt;
      if (T.first_sent < 0) T.first_sent = ts.now();
      // The detour chain covers gets aimed at a live primary; everything
      // else (baseline policy, or a get already running on the backup)
      // falls back to the host watchdog so no get can be lost.
      if (cfg.policy == FailoverPolicy::kHostReissue || target != p) {
        schedule_watchdog(t);
      } else if (cfg.probe_interval > 0) {
        const std::uint64_t seq = T.seq, attempt = T.attempt;
        ts.After(cfg.probe_interval,
                 [&, t, seq, attempt, p] { probe_fn(t, seq, attempt, p); });
      }
      return;
    }
    // No live replica right now — retry once a heal had a chance to land.
    ts.After(sim::Millis(1), [&, t] {
      Tenant& W = tenants[static_cast<std::size_t>(t)];
      if (W.waiting || W.remaining <= 0) return;
      send_fn(t);
    });
    // Not waiting: the get is parked host-side, not in flight.
    T.waiting = false;
  };

  issue_next = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    if (T.remaining <= 0) return;
    sim::Simulator& ts = tsim(t);
    if (!T.started) {
      T.started = true;
      T.last_mark = ts.now();
    }
    T.key = draw(t);
    // The mix draw happens only on write-enabled runs so pure-get configs
    // consume exactly the RNG stream they always did (bit-compat).
    T.is_put = writes && T.rng.NextDouble() < cfg.put_fraction;
    T.t_sent = ts.now();
    send_fn(t);
  };

  auto complete = [&](int t, bool via_detour) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    sim::Simulator& ts = tsim(t);
    T.waiting = false;
    if (T.is_put) {
      T.put_rec.Add(ts.now() - T.t_sent);
      ++T.puts;
    } else {
      T.rec.Add(ts.now() - T.t_sent);
    }
    T.max_blip = std::max(T.max_blip, ts.now() - T.last_mark);
    T.last_mark = ts.now();
    T.last_resp = std::max(T.last_resp, ts.now());
    if (via_detour) {
      T.dead[static_cast<std::size_t>(T.primary)] = 1;
      ++T.detours;
    }
    ++T.seq;
    --T.remaining;
    if (T.remaining > 0) issue_next(t);
  };

  for (int t = 0; t < cfg.tenants; ++t) {
    for (int s = 0; s < cfg.shards; ++s) {
      offloads::HashGetHarness* h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
      h->client_recv_cq()->SetHostNotify([&, t, s, h] {
        rnic::Cqe cqe;
        while (tdev[static_cast<std::size_t>(t)]->PollCq(h->client_recv_cq(),
                                                         1, &cqe) == 1) {
          Tenant& T = tenants[static_cast<std::size_t>(t)];
          if (cqe.status != rnic::WcStatus::kSuccess) {
            ++T.err_cqes;  // flushed RECVs from an errored QP
            continue;
          }
          h->NoteOpenLoopResponse(cqe.qp_id);
          if (!T.waiting || T.target != s) {
            ++T.stale;
            continue;
          }
          if (versioned && !T.is_put) {
            const auto it = T.ryw.find(T.key);
            if (it != T.ryw.end() && h->ResponseVersion() < it->second) {
              ++T.ryw_viol;  // older than this tenant's own acked write
            }
          }
          complete(t, /*via_detour=*/false);
        }
      });
      if (offloaded) {
        offloads::HashGetHarness* f =
            F[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
        f->client_recv_cq()->SetHostNotify([&, t, s, f] {
          rnic::Cqe cqe;
          while (tdev[static_cast<std::size_t>(t)]->PollCq(f->client_recv_cq(),
                                                           1, &cqe) == 1) {
            Tenant& T = tenants[static_cast<std::size_t>(t)];
            if (cqe.status != rnic::WcStatus::kSuccess) {
              ++T.err_cqes;
              continue;
            }
            f->NoteOpenLoopResponse(cqe.qp_id);
            // The detour watching primary `s` answered the get that was in
            // flight toward it.
            if (!T.waiting || T.target != s) {
              ++T.stale;
              continue;
            }
            if (versioned && !T.is_put) {
              const auto it = T.ryw.find(T.key);
              if (it != T.ryw.end() && f->ResponseVersion() < it->second) {
                ++T.ryw_viol;
              }
            }
            complete(t, /*via_detour=*/true);
          }
        });
      }
    }
    tsim(t).At(static_cast<sim::Nanos>(t) * 311 + 17,
               [&, t] { issue_next(t); });
  }

  // --- write path: apply, propagate, ack -------------------------------------
  auto send_put_ack = [&](int t, int s, std::uint64_t key,
                          std::uint64_t version, std::uint64_t mask) {
    PutLink& L =
        plinks[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
    if (!L.ack_srv->alive || L.ack_srv->sq.error ||
        L.ack_srv->state != rnic::QpState::kRts) {
      return;  // the tenant's watchdog re-issues; the apply is durable
    }
    const int slot = static_cast<int>(L.ack_seq++ %
                                      static_cast<std::uint64_t>(kPutSlots));
    const std::uint64_t a =
        L.ack_tx_mr.addr + static_cast<std::uint64_t>(slot) * kAckBytes;
    rnic::dma::WriteU64(a, key);
    rnic::dma::WriteU64(a + 8, version);
    rnic::dma::WriteU64(a + 16, mask);
    verbs::PostSendNow(L.ack_srv, verbs::MakeSend(a, kAckBytes,
                                                  L.ack_tx_mr.lkey,
                                                  /*signaled=*/false));
  };

  // Applies one put at shard `s` and drives the chain: the primary
  // propagates to its successor and acks only on the WRITE's completion;
  // a degraded head (successor serving while the primary is down, or a
  // primary whose successor is unreachable) acks alone and marks the
  // absent peer dirty so its heal runs anti-entropy.
  auto apply_put = [&](int t, int s, std::uint64_t key) {
    auto& amap = vaddr[static_cast<std::size_t>(s)];
    const auto it = amap.find(key);
    if (it == amap.end()) return;  // not a replica of this key
    const std::uint64_t addr = it->second;
    const std::uint64_t version = kv::ValueVersion(addr) + 1;
    kv::WriteVersionedValue(addr, cfg.value_len, key, version);
    const int p = ring.PrimaryOf(key);
    if (s != p) {
      // Degraded head: the tenant routed here because the primary was
      // unroutable — the primary is missing this write.
      dirty[static_cast<std::size_t>(p)] = 1;
      ++degraded_acks;
      send_put_ack(t, s, key, version, 1ULL << s);
      return;
    }
    const int b = ring.SuccessorOf(p);
    Edge& E = edges[static_cast<std::size_t>(s)];
    const bool peer_up = shard_state[static_cast<std::size_t>(b)] !=
                             ShardState::kDead &&
                         E.req->alive && !E.req->sq.error &&
                         E.req->state == rnic::QpState::kRts;
    if (!peer_up) {
      dirty[static_cast<std::size_t>(b)] = 1;
      ++degraded_acks;
      send_put_ack(t, s, key, version, 1ULL << s);
      return;
    }
    // Ring indices wrap at kFwdRing; depth-1 tenants bound in-flight
    // forwards to cfg.tenants, far below the ring size.
    const std::uint64_t idx = E.next++;
    E.ring[idx % kFwdRing] = Fwd{t, b, key, version};
    verbs::SendWr wr = verbs::MakeWrite(
        addr, cfg.value_len, heaps[static_cast<std::size_t>(s)]->lkey(),
        vaddr[static_cast<std::size_t>(b)][key],
        heaps[static_cast<std::size_t>(b)]->rkey(), /*signaled=*/true);
    wr.wr_id = idx % kFwdRing;
    verbs::PostSendNow(E.req, wr);
    ++chain_forwards;
  };

  if (writes) {
    for (int t = 0; t < cfg.tenants; ++t) {
      for (int s = 0; s < cfg.shards; ++s) {
        PutLink& L =
            plinks[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
        // Shard side: request arrival -> host apply after put_apply_cost.
        L.req_srv->recv_cq->SetHostNotify([&, t, s] {
          PutLink& LL = plinks[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(s)];
          rnic::Cqe cqe;
          while (sdev[static_cast<std::size_t>(s)]->PollCq(
                     LL.req_srv->recv_cq, 1, &cqe) == 1) {
            if (cqe.status != rnic::WcStatus::kSuccess) {
              ++error_cqes;
              continue;
            }
            const int slot = static_cast<int>(cqe.wr_id);
            const std::uint64_t key = rnic::dma::ReadU64(
                LL.req_rx_mr.addr +
                static_cast<std::uint64_t>(slot) * cfg.value_len);
            // The apply regenerates bytes from (key, version), so the slot
            // can be reposted immediately.
            post_req_slot(LL, slot);
            sim.After(cfg.put_apply_cost,
                      [&, t, s, key] { apply_put(t, s, key); });
          }
        });
        // Tenant side: ack arrival -> ledger + RYW floor + completion.
        L.ack_cli->recv_cq->SetHostNotify([&, t, s] {
          PutLink& LL = plinks[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(s)];
          rnic::Cqe cqe;
          while (tdev[static_cast<std::size_t>(t)]->PollCq(
                     LL.ack_cli->recv_cq, 1, &cqe) == 1) {
            Tenant& T = tenants[static_cast<std::size_t>(t)];
            if (cqe.status != rnic::WcStatus::kSuccess) {
              ++T.err_cqes;
              continue;
            }
            const int slot = static_cast<int>(cqe.wr_id);
            const std::uint64_t a =
                LL.ack_rx_mr.addr + static_cast<std::uint64_t>(slot) * kAckBytes;
            const std::uint64_t key = rnic::dma::ReadU64(a);
            const std::uint64_t version = rnic::dma::ReadU64(a + 8);
            const std::uint64_t mask = rnic::dma::ReadU64(a + 16);
            post_ack_slot(LL, slot);
            // Even a stale ack (the watchdog already re-issued) attests a
            // durable apply: it belongs in the ledger and lifts the RYW
            // floor. Only the op completion is staleness-guarded.
            T.ledger.push_back(AckedWrite{key, version, mask});
            if (__builtin_popcountll(mask) >= 2) {
              std::uint64_t& floor = T.ryw[key];
              floor = std::max(floor, version);
              ++T.full_acks;
            }
            if (!T.waiting || !T.is_put || T.key != key || T.target != s) {
              ++T.stale;
              continue;
            }
            complete(t, /*via_detour=*/false);
          }
        });
      }
    }
    for (int s = 0; s < cfg.shards; ++s) {
      // Forward completion at the primary: the successor durably holds the
      // bytes -> full-chain ack. An error CQE means the propagation died
      // (peer crashed / link black) -> degraded ack + dirty peer.
      edges[static_cast<std::size_t>(s)].req->send_cq->SetHostNotify([&, s] {
        Edge& E = edges[static_cast<std::size_t>(s)];
        rnic::Cqe cqe;
        while (sdev[static_cast<std::size_t>(s)]->PollCq(E.req->send_cq, 1,
                                                         &cqe) == 1) {
          const Fwd f = E.ring[cqe.wr_id % kFwdRing];
          if (cqe.status == rnic::WcStatus::kSuccess) {
            send_put_ack(f.tenant, s, f.key, f.version,
                         (1ULL << s) | (1ULL << f.peer));
          } else {
            ++error_cqes;
            dirty[static_cast<std::size_t>(f.peer)] = 1;
            ++degraded_acks;
            send_put_ack(f.tenant, s, f.key, f.version, 1ULL << s);
          }
        }
      });
    }
  }

  // --- the fault plan --------------------------------------------------------
  auto tenant_in_scope = [&](const FaultEntry& e, int t) {
    return e.client < 0 || e.client == t;
  };
  auto cycle_qp = [](rnic::QueuePair* q) {
    q->device->ModifyQp(q, rnic::QpState::kReset);
    q->device->ModifyQp(q, rnic::QpState::kInit);
    q->device->ModifyQp(q, rnic::QpState::kRtr);
    q->device->ModifyQp(q, rnic::QpState::kRts);
  };
  auto qp_unhealthy = [](rnic::QueuePair* q) {
    return q->state == rnic::QpState::kError || q->sq.error || !q->alive;
  };
  auto note_window = [&](std::size_t ei, sim::Nanos down_at) {
    degraded_win[ei] = sim::ToMicros(sim.now() - down_at);
  };

  // Gray failure: flaky links drop seeded loss bursts. Burst and gap
  // lengths draw uniform [0.5x, 1.5x] of their configured means from a
  // per-entry RNG, so flaky windows are deterministic per (seed, entry).
  std::vector<char> flaky_on(cfg.faults.entries.size(), 0);
  std::vector<sim::Rng> flaky_rng;
  for (std::size_t i = 0; i < cfg.faults.entries.size(); ++i) {
    flaky_rng.push_back(sim::Rng(cfg.seed ^ (0xf1a57ULL * (i + 1)) ^
                                 0x9e3779b97f4a7c15ULL));
  }
  std::function<void(std::size_t, int)> flaky_burst = [&](std::size_t ei,
                                                          int s) {
    if (!flaky_on[ei]) return;
    const FaultEntry& e = cfg.faults.entries[ei];
    const int ep = sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0);
    transport.SetLinkFaults(ep, e.flaky_loss, cfg.corrupt);
    const sim::Nanos burst = static_cast<sim::Nanos>(
        (0.5 + flaky_rng[ei].NextDouble()) *
        static_cast<double>(e.flaky_burst));
    sim.After(burst, [&, ei, s, ep] {
      if (flaky_on[ei]) transport.SetLinkFaults(ep, cfg.loss, cfg.corrupt);
      const sim::Nanos gap = static_cast<sim::Nanos>(
          (0.5 + flaky_rng[ei].NextDouble()) *
          static_cast<double>(cfg.faults.entries[ei].flaky_gap));
      sim.After(gap, [&, ei, s] { flaky_burst(ei, s); });
    });
  };

  // Heals the write-path plumbing touching shard `s`: put links of every
  // tenant, plus the chain edges into and out of s.
  auto heal_put_links = [&](int s) {
    if (!writes) return;
    for (int t = 0; t < cfg.tenants; ++t) {
      PutLink& L =
          plinks[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
      if (place[static_cast<std::size_t>(t)] != cfg.service_shard) {
        // Spread tenant: only the shard-side ends may be inspected here.
        // The tenant-shard leg checks its own ends, cycles them, and hops
        // back so the request slots are re-posted after both ends are
        // fresh (a put racing the middle leg just RNR-retries).
        const bool srv_bad =
            qp_unhealthy(L.req_srv) || qp_unhealthy(L.ack_srv);
        sim.SendTo(
            place[static_cast<std::size_t>(t)], sim.now() + hop,
            [&, t, s, srv_bad] {
              PutLink& LL = plinks[static_cast<std::size_t>(t)]
                                  [static_cast<std::size_t>(s)];
              Tenant& T = tenants[static_cast<std::size_t>(t)];
              if (!srv_bad && !qp_unhealthy(LL.req_cli) &&
                  !qp_unhealthy(LL.ack_cli)) {
                return;
              }
              rnic::Cqe cqe;
              for (rnic::QueuePair* q : {LL.req_cli, LL.ack_cli}) {
                while (tdev[static_cast<std::size_t>(t)]->PollCq(
                           q->send_cq, 1, &cqe) == 1) {
                  if (cqe.status != rnic::WcStatus::kSuccess) ++T.err_cqes;
                }
              }
              cycle_qp(LL.req_cli);
              cycle_qp(LL.ack_cli);
              for (int i = 0; i < kPutSlots; ++i) post_ack_slot(LL, i);
              sim::Simulator& ts = tsim(t);
              ts.SendTo(cfg.service_shard, ts.now() + hop, [&, t, s] {
                PutLink& LS = plinks[static_cast<std::size_t>(t)]
                                    [static_cast<std::size_t>(s)];
                cycle_qp(LS.req_srv);
                cycle_qp(LS.ack_srv);
                for (int i = 0; i < kPutSlots; ++i) post_req_slot(LS, i);
              });
            });
        continue;
      }
      if (!(qp_unhealthy(L.req_cli) || qp_unhealthy(L.req_srv) ||
            qp_unhealthy(L.ack_srv) || qp_unhealthy(L.ack_cli))) {
        continue;
      }
      // Drain flushed/error CQEs nothing else polls.
      rnic::Cqe cqe;
      for (rnic::QueuePair* q : {L.req_cli, L.ack_cli}) {
        while (tdev[static_cast<std::size_t>(t)]->PollCq(q->send_cq, 1,
                                                         &cqe) == 1) {
          if (cqe.status != rnic::WcStatus::kSuccess) ++error_cqes;
        }
      }
      for (rnic::QueuePair* q : {L.req_cli, L.req_srv, L.ack_srv, L.ack_cli}) {
        cycle_qp(q);
      }
      for (int i = 0; i < kPutSlots; ++i) {
        post_req_slot(L, i);
        post_ack_slot(L, i);
      }
    }
    for (int x = 0; x < cfg.shards; ++x) {
      if (x != s && ring.SuccessorOf(x) != s) continue;
      Edge& E = edges[static_cast<std::size_t>(x)];
      if (!(qp_unhealthy(E.req) || qp_unhealthy(E.rsp))) continue;
      rnic::Cqe cqe;
      while (sdev[static_cast<std::size_t>(x)]->PollCq(E.req->send_cq, 1,
                                                       &cqe) == 1) {
        if (cqe.status != rnic::WcStatus::kSuccess) {
          // A flushed forward: the peer never confirmed. Degraded-ack it
          // so the tenant's put is not stranded, and mark the peer dirty.
          const Fwd f = E.ring[cqe.wr_id % kFwdRing];
          ++error_cqes;
          dirty[static_cast<std::size_t>(f.peer)] = 1;
          ++degraded_acks;
          send_put_ack(f.tenant, x, f.key, f.version, 1ULL << x);
        }
      }
      cycle_qp(E.req);
      cycle_qp(E.rsp);
    }
  };

  // Spread-tenant heal: the same recovery as the co-resident body below,
  // split into a tenant-shard leg (client-side QP halves), a service-shard
  // leg (server-side halves + offload program rebuilds), and a final
  // tenant-shard leg that resumes sends only once the fresh server program
  // is armed. Each leg rides the mailbox at the fabric one-way latency —
  // a client really would learn of the heal over the wire. T.healing parks
  // sends across the window so no trigger races the program swap.
  auto heal_tenant_spread = [&](int s, bool crash, bool clear_dead, int t) {
    sim.SendTo(place[static_cast<std::size_t>(t)], sim.now() + hop,
               [&, s, crash, clear_dead, t] {
      Tenant& T = tenants[static_cast<std::size_t>(t)];
      offloads::HashGetHarness* h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
      rnic::QueuePair* qp = h->client_qp();
      const bool errored = qp->state == rnic::QpState::kError;
      const bool routed_off = T.dead[static_cast<std::size_t>(s)] != 0;
      if (!clear_dead) {
        // The shard is rejoining with a wiped store: close routing even
        // for a tenant that never saw the failure first-hand (its op may
        // have been parked on the watchdog the whole window), or a stale
        // read slips out before anti-entropy drains. finish_recovery
        // reopens the flag once the resync completes.
        T.dead[static_cast<std::size_t>(s)] = 1;
      }
      if (!errored && !crash && !routed_off) return;
      ++T.healing;
      rnic::Cqe cqe;
      while (tdev[static_cast<std::size_t>(t)]->PollCq(qp->send_cq, 1,
                                                       &cqe) == 1) {
        if (cqe.status != rnic::WcStatus::kSuccess) ++T.err_cqes;
      }
      const bool rearm = errored || crash;
      const int arm_n = T.remaining + 8;
      if (rearm) h->RearmTransportClientHalf();
      if (clear_dead) T.dead[static_cast<std::size_t>(s)] = 0;
      bool pc_err = false;
      std::vector<std::pair<int, char>> detours;  // (column, client errored)
      if (offloaded) {
        auto& chain =
            chains[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
        if (qp->send_cq->hw_count() >= chain->wait_threshold()) {
          chain->Rearm();
        }
        rnic::QueuePair* pc = probe_cli[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(s)];
        pc_err = pc->state == rnic::QpState::kError;
        if (pc_err) cycle_qp(pc);
        if (crash) {
          for (int x = 0; x < cfg.shards; ++x) {
            if (ring.SuccessorOf(x) != s) continue;
            offloads::HashGetHarness* f =
                F[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)]
                    .get();
            const bool fc = f->client_qp()->state == rnic::QpState::kError;
            if (fc) f->RearmTransportClientHalf();
            detours.emplace_back(x, fc ? 1 : 0);
          }
        }
      }
      sim::Simulator& ts = tsim(t);
      ts.SendTo(
          cfg.service_shard, ts.now() + hop,
          [&, s, t, rearm, arm_n, pc_err, detours = std::move(detours)] {
        if (rearm) {
          offloads::HashGetHarness* h =
              H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]
                  .get();
          h->RearmTransportServerHalf(arm_n);
          h->SetServerOwner(kShardPidBase + s);
        }
        bool cycle_pc = false;
        // Detour columns the final tenant leg must finish: (column,
        // client half still to cycle).
        std::vector<std::pair<int, char>> fresh;
        if (offloaded) {
          rnic::QueuePair* ps = probe_srv[static_cast<std::size_t>(t)]
                                        [static_cast<std::size_t>(s)];
          if (pc_err || ps->state == rnic::QpState::kError) {
            cycle_pc = !pc_err;  // only the server end tripped
            cycle_qp(ps);
            verbs::RecvWr rwr;
            for (int i = 0; i < 64; ++i) verbs::PostRecv(ps, rwr);
          }
          for (const auto& [x, fc] : detours) {
            offloads::HashGetHarness* f =
                F[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)]
                    .get();
            const bool fs = f->server_qp()->state == rnic::QpState::kError;
            if (!fc && !fs) continue;
            f->RearmTransportServerHalf(kDetourArms);
            f->SetServerOwner(kShardPidBase + s);
            fresh.emplace_back(x, fc ? 0 : 1);
          }
        }
        sim.SendTo(place[static_cast<std::size_t>(t)], sim.now() + hop,
                   [&, s, t, cycle_pc, fresh = std::move(fresh)] {
          if (cycle_pc) {
            cycle_qp(probe_cli[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(s)]);
          }
          for (const auto& [x, nc] : fresh) {
            offloads::HashGetHarness* f =
                F[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)]
                    .get();
            if (nc) f->RearmTransportClientHalf();
            f->PrepostResponseRecvs(kDetourArms + 4);
            chains[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)]
                ->Rearm();
          }
          Tenant& T = tenants[static_cast<std::size_t>(t)];
          --T.healing;
          if (T.waiting && T.target == s) {
            ++T.heal_resends;
            send_fn(t);
          } else if (!T.waiting && T.remaining > 0 && T.started) {
            send_fn(t);
          }
        });
      });
    });
  };

  // Per-tenant client-side recovery for shard `s`. `crash` forces a full
  // transport re-arm (the server side was revived in ERROR even if the
  // client QP never noticed); `clear_dead` restores routing to s now,
  // while a re-syncing shard instead CLOSES routing on sharded runs
  // (dead[s] = 1 for every tenant in scope) and defers the reopen to
  // finish_recovery — otherwise a tenant that never saw the outage
  // (e.g. parked on the put watchdog the whole window on its own
  // domain) could read the wiped store before anti-entropy drains.
  auto heal_tenants = [&](const FaultEntry& e, int s, bool crash,
                          bool clear_dead) {
    for (int t = 0; t < cfg.tenants; ++t) {
      if (!tenant_in_scope(e, t)) continue;
      if (place[static_cast<std::size_t>(t)] != cfg.service_shard) {
        heal_tenant_spread(s, crash, clear_dead, t);
        continue;
      }
      Tenant& T = tenants[static_cast<std::size_t>(t)];
      offloads::HashGetHarness* h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
      rnic::QueuePair* qp = h->client_qp();
      const bool errored = qp->state == rnic::QpState::kError;
      const bool routed_off = T.dead[static_cast<std::size_t>(s)] != 0;
      if (!clear_dead && cfg.sim_shards > 1) {
        // Same stale-read guard as the spread leg: a re-syncing shard is
        // unroutable until finish_recovery, no matter what this tenant
        // observed during the outage. Gated to sharded runs — classic
        // single-domain runs keep their recorded schedules bit for bit
        // (there a put reaching the re-syncing shard dies on its ERROR
        // QP and retries off the watchdog; only gets could read stale,
        // and the goldens' tight co-resident interleavings mark the
        // shard dead through first-hand probe/detour evidence first).
        T.dead[static_cast<std::size_t>(s)] = 1;
      }
      if (!errored && !crash && !routed_off) {
        continue;
      }
      // Drain the failure CQEs nothing else polls (the WAIT chain
      // consumed them NIC-side; this is host bookkeeping).
      rnic::Cqe cqe;
      while (tdev[static_cast<std::size_t>(t)]->PollCq(qp->send_cq, 1,
                                                       &cqe) == 1) {
        if (cqe.status != rnic::WcStatus::kSuccess) ++error_cqes;
      }
      if (errored || crash) {
        h->RearmTransport(T.remaining + 8);
        h->SetServerOwner(kShardPidBase + s);  // re-tag the fresh program
      }
      if (clear_dead) T.dead[static_cast<std::size_t>(s)] = 0;
      if (offloaded) {
        auto& chain =
            chains[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
        if (qp->send_cq->hw_count() >= chain->wait_threshold()) {
          chain->Rearm();  // the old WAIT fired; park a fresh detour
        }
        rnic::QueuePair* pc = probe_cli[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(s)];
        rnic::QueuePair* ps = probe_srv[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(s)];
        if (pc->state == rnic::QpState::kError ||
            ps->state == rnic::QpState::kError) {
          cycle_qp(pc);
          cycle_qp(ps);
          verbs::RecvWr rwr;
          for (int i = 0; i < 64; ++i) verbs::PostRecv(ps, rwr);
        }
        if (crash) {
          // Detours whose BACKUP is the re-joined shard parked their get
          // on QPs the crash flushed; re-arm them and park fresh detours.
          for (int x = 0; x < cfg.shards; ++x) {
            if (ring.SuccessorOf(x) != s) continue;
            offloads::HashGetHarness* f =
                F[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)]
                    .get();
            if (f->client_qp()->state == rnic::QpState::kError ||
                f->server_qp()->state == rnic::QpState::kError) {
              f->RearmTransport(kDetourArms);
              f->SetServerOwner(kShardPidBase + s);
              f->PrepostResponseRecvs(kDetourArms + 4);
              chains[static_cast<std::size_t>(t)]
                    [static_cast<std::size_t>(x)]
                        ->Rearm();
            }
          }
        }
      }
      if (T.waiting && T.target == s) {
        // The pending op died in the reset's flush — re-send it (its
        // latency keeps accruing from the original t_sent; send_fn
        // respects the dead flags, so a re-syncing s is avoided).
        ++T.heal_resends;
        send_fn(t);
      } else if (!T.waiting && T.remaining > 0 && T.started) {
        // The tenant parked because both replicas looked dead.
        send_fn(t);
      }
    }
  };

  // Recovery completes only when anti-entropy has drained: the shard
  // returns to kServing, routing re-opens, and the degraded window closes.
  auto finish_recovery = [&](int s, std::size_t ei, sim::Nanos down_at) {
    shard_state[static_cast<std::size_t>(s)] = ShardState::kServing;
    dirty[static_cast<std::size_t>(s)] = 0;
    note_window(ei, down_at);
    for (int t = 0; t < cfg.tenants; ++t) {
      if (place[static_cast<std::size_t>(t)] != cfg.service_shard) {
        // The routing flag and resume belong to the tenant's domain.
        sim.SendTo(place[static_cast<std::size_t>(t)], sim.now() + hop,
                   [&, t, s] {
          Tenant& T = tenants[static_cast<std::size_t>(t)];
          T.dead[static_cast<std::size_t>(s)] = 0;
          if (!T.waiting && T.remaining > 0 && T.started) send_fn(t);
        });
        continue;
      }
      Tenant& T = tenants[static_cast<std::size_t>(t)];
      T.dead[static_cast<std::size_t>(s)] = 0;
      if (!T.waiting && T.remaining > 0 && T.started) send_fn(t);
    }
  };

  // Streams shard s's key range back from its chain peers: for each key
  // the donor is the other replica (the primary if s backs it up, the
  // successor if s owns it). One session per donor over a dedicated QP.
  auto start_resync = [&](int s, std::size_t ei, sim::Nanos down_at) {
    std::vector<std::vector<kv::ResyncSession::Item>> by_donor(
        static_cast<std::size_t>(cfg.shards));
    for (std::uint64_t key : shard_keys[static_cast<std::size_t>(s)]) {
      const int p = ring.PrimaryOf(key);
      const int donor = p == s ? ring.SuccessorOf(p) : p;
      if (donor == s ||
          shard_state[static_cast<std::size_t>(donor)] !=
              ShardState::kServing) {
        continue;  // no live donor; the key keeps its local (wiped) value
      }
      by_donor[static_cast<std::size_t>(donor)].push_back(
          kv::ResyncSession::Item{
              key, vaddr[static_cast<std::size_t>(donor)][key],
              vaddr[static_cast<std::size_t>(s)][key], cfg.value_len});
    }
    auto outstanding = std::make_shared<int>(0);
    for (const auto& items : by_donor) {
      if (!items.empty()) ++*outstanding;
    }
    if (*outstanding == 0) {
      finish_recovery(s, ei, down_at);
      return;
    }
    for (int d = 0; d < cfg.shards; ++d) {
      auto& items = by_donor[static_cast<std::size_t>(d)];
      if (items.empty()) continue;
      rnic::QpConfig qc;
      qc.send_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
      qc.recv_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
      rnic::QueuePair* rq = sdev[static_cast<std::size_t>(s)]->CreateQp(qc);
      rq->owner_pid = kShardPidBase + s;
      rnic::QpConfig dc;
      dc.send_cq = sdev[static_cast<std::size_t>(d)]->CreateCq();
      dc.recv_cq = sdev[static_cast<std::size_t>(d)]->CreateCq();
      rnic::QueuePair* dq = sdev[static_cast<std::size_t>(d)]->CreateQp(dc);
      dq->owner_pid = kShardPidBase + d;
      rnic::ConnectOverTransport(rq, dq, transport);
      ++resyncs_started;
      kv::ResyncSession::Config rc;
      rc.qp = rq;
      rc.remote_rkey = heaps[static_cast<std::size_t>(d)]->rkey();
      rc.window = cfg.resync_window;
      sessions.push_back(std::make_unique<kv::ResyncSession>(
          sim, rc, std::move(items),
          [&, s, ei, down_at, outstanding](
              const kv::ResyncSession::Stats& st) {
            resync_scanned += st.keys_scanned;
            resync_applied += st.keys_applied;
            resync_kept += st.keys_kept_local;
            resync_bytes += st.bytes_read;
            if (st.failed) ++resync_failures;
            if (--*outstanding == 0) finish_recovery(s, ei, down_at);
          }));
      sessions.back()->Start();
    }
  };

  for (std::size_t ei = 0; ei < cfg.faults.entries.size(); ++ei) {
    const FaultEntry& e = cfg.faults.entries[ei];
    const int s = e.server;
    sim.At(e.down_at, [&, e, s, ei] {
      ++faults_applied;
      switch (e.kind) {
        case FaultKind::kBlackhole:
          transport.SetLinkFaults(
              sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0), 1.0, 0.0);
          break;
        case FaultKind::kRnrStall:
          for (int t = 0; t < cfg.tenants; ++t) {
            if (!tenant_in_scope(e, t)) continue;
            sdev[static_cast<std::size_t>(s)]->StallRecvsFor(
                H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]
                    ->server_qp(),
                e.rnr_count);
          }
          break;
        case FaultKind::kCrash:
          sdev[static_cast<std::size_t>(s)]->KillProcessResources(
              kShardPidBase + s);
          shard_state[static_cast<std::size_t>(s)] = ShardState::kDead;
          break;
        case FaultKind::kFlaky:
          flaky_on[ei] = 1;
          flaky_burst(ei, s);
          break;
        case FaultKind::kSlow:
          transport.SetLinkDelay(
              sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0),
              e.slow_ns);
          break;
      }
    });
    if (e.up_at > 0) {
      sim.At(e.up_at, [&, e, s, ei] {
        ++heals_applied;
        switch (e.kind) {
          case FaultKind::kBlackhole:
            transport.SetLinkFaults(
                sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0),
                cfg.loss, cfg.corrupt);
            break;
          case FaultKind::kFlaky:
            flaky_on[ei] = 0;
            transport.SetLinkFaults(
                sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0),
                cfg.loss, cfg.corrupt);
            break;
          case FaultKind::kSlow:
            // Added latency drops nothing: no QP errored, no write was
            // missed — restore the link and close the window.
            transport.SetLinkDelay(
                sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0), 0);
            note_window(ei, e.down_at);
            return;
          case FaultKind::kRnrStall:
            break;
          case FaultKind::kCrash: {
            // Crash + re-join: revive the process's resources, restart
            // from an empty (seed-version) store — the crash lost its
            // memory, so surviving higher-version tags would be phantom
            // state — then re-arm the plumbing and anti-entropy the key
            // range back before serving.
            ++rejoins;
            sdev[static_cast<std::size_t>(s)]->ReviveProcessResources(
                kShardPidBase + s);
            shard_state[static_cast<std::size_t>(s)] = ShardState::kResyncing;
            for (std::uint64_t key :
                 shard_keys[static_cast<std::size_t>(s)]) {
              kv::WriteVersionedValue(
                  vaddr[static_cast<std::size_t>(s)][key], cfg.value_len,
                  key, /*version=*/0);
            }
            heal_tenants(e, s, /*crash=*/true, /*clear_dead=*/false);
            heal_put_links(s);
            start_resync(s, ei, e.down_at);
            return;
          }
        }
        // Blackhole / rnr-stall / flaky heal. A dirty shard (missed chain
        // writes while unreachable) must anti-entropy before it serves
        // reads again; a clean one re-opens immediately.
        const bool resync = versioned && dirty[static_cast<std::size_t>(s)];
        if (resync) {
          shard_state[static_cast<std::size_t>(s)] = ShardState::kResyncing;
        }
        heal_tenants(e, s, /*crash=*/false, /*clear_dead=*/!resync);
        heal_put_links(s);
        if (resync) {
          start_resync(s, ei, e.down_at);
        } else {
          note_window(ei, e.down_at);
        }
      });
    }
  }

  ssim.RunUntil(cfg.horizon);

  // Merge the shard-local tenant accounting into the run-wide totals
  // (tenant order: deterministic, and order-independent anyway — sums,
  // extrema, and an order-insensitive ledger).
  for (int t = 0; t < cfg.tenants; ++t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    if (T.first_sent >= 0 && (first_sent < 0 || T.first_sent < first_sent)) {
      first_sent = T.first_sent;
    }
    last_resp = std::max(last_resp, T.last_resp);
    error_cqes += T.err_cqes;
    stale_responses += T.stale;
    heal_reissues += T.heal_resends;
    probes_sent += T.probes;
    put_retries += T.put_retry;
    ryw_violations += T.ryw_viol;
    acked_full += T.full_acks;
    ledger.insert(ledger.end(), T.ledger.begin(), T.ledger.end());
  }

  // --- results ---------------------------------------------------------------
  KvServiceResult out;
  out.keys_visible = eligible.size();
  out.faults_applied = faults_applied;
  out.heals_applied = heals_applied;
  out.error_cqes = error_cqes;
  out.stale_responses = stale_responses;
  out.heal_reissues = heal_reissues;
  out.probes_sent = probes_sent;
  sim::LatencyRecorder all;
  sim::LatencyRecorder put_all;
  for (int t = 0; t < cfg.tenants; ++t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    KvTenantStats ts;
    ts.gets = T.rec.count();
    ts.puts = T.puts;
    ts.detour_responses = T.detours;
    ts.reroutes = T.reroutes;
    ts.host_reissues = T.host_reissues;
    const sim::LatencySummary sum = T.rec.Summarize();
    ts.avg_us = sum.avg_us;
    ts.p50_us = sum.p50_us;
    ts.p99_us = sum.p99_us;
    ts.p999_us = sum.p999_us;
    ts.max_blip_us = sim::ToMicros(T.max_blip);
    out.tenants.push_back(ts);
    out.gets += ts.gets;
    out.puts += T.puts;
    out.detour_responses += T.detours;
    out.reroutes += T.reroutes;
    out.host_reissues += T.host_reissues;
    out.unanswered += static_cast<std::uint64_t>(T.remaining);
    out.max_blip_us = std::max(out.max_blip_us, ts.max_blip_us);
    for (sim::Nanos sample : T.rec.samples()) all.Add(sample);
    for (sim::Nanos sample : T.put_rec.samples()) put_all.Add(sample);
  }
  const sim::LatencySummary sum = all.Summarize();
  out.avg_us = sum.avg_us;
  out.p50_us = sum.p50_us;
  out.p99_us = sum.p99_us;
  out.p999_us = sum.p999_us;
  const sim::LatencySummary psum = put_all.Summarize();
  out.put_avg_us = psum.avg_us;
  out.put_p50_us = psum.p50_us;
  out.put_p99_us = psum.p99_us;
  out.put_p999_us = psum.p999_us;
  out.acked_puts_full = acked_full;
  out.degraded_acks = degraded_acks;
  out.chain_forwards = chain_forwards;
  out.put_retries = put_retries;
  out.ryw_violations = ryw_violations;
  out.rejoins = rejoins;
  out.resyncs_started = resyncs_started;
  out.resync_keys_scanned = resync_scanned;
  out.resync_keys_applied = resync_applied;
  out.resync_keys_kept = resync_kept;
  out.resync_bytes = resync_bytes;
  out.resync_failures = resync_failures;
  for (double w : degraded_win) {
    out.degraded_window_us = std::max(out.degraded_window_us, w);
  }

  // --- end-of-run audits -----------------------------------------------------
  // Zero-loss invariant: every acked write must still be durable on every
  // replica that confirmed it (skipping replicas not serving at the end —
  // a still-dead shard attests nothing). The `>=` is because later puts
  // legitimately overwrite with higher versions.
  for (const AckedWrite& w : ledger) {
    for (int s = 0; s < cfg.shards; ++s) {
      if (!(w.mask & (1ULL << s))) continue;
      if (shard_state[static_cast<std::size_t>(s)] != ShardState::kServing) {
        continue;
      }
      if (kv::ValueVersion(vaddr[static_cast<std::size_t>(s)][w.key]) <
          w.version) {
        ++out.lost_acked_writes;
      }
    }
  }
  // Divergence: replicas that both serve a key must hold internally
  // consistent values, and equal versions must mean equal bytes.
  if (versioned) {
    for (std::uint64_t key : eligible) {
      const int p = ring.PrimaryOf(key);
      const int b = ring.SuccessorOf(p);
      if (shard_state[static_cast<std::size_t>(p)] != ShardState::kServing ||
          shard_state[static_cast<std::size_t>(b)] != ShardState::kServing) {
        continue;
      }
      const std::uint64_t pa = vaddr[static_cast<std::size_t>(p)][key];
      const std::uint64_t ba = vaddr[static_cast<std::size_t>(b)][key];
      const bool pi = kv::VersionedValueIntact(pa, cfg.value_len, key);
      const bool bi = kv::VersionedValueIntact(ba, cfg.value_len, key);
      if (!pi || !bi) {
        ++out.value_divergence;
        continue;
      }
      if (kv::ValueVersion(pa) == kv::ValueVersion(ba) &&
          std::memcmp(reinterpret_cast<const void*>(pa),
                      reinterpret_cast<const void*>(ba), cfg.value_len) != 0) {
        ++out.value_divergence;
      }
    }
  }
  const sim::Nanos span = last_resp > first_sent ? last_resp - first_sent : 1;
  out.duration_us = sim::ToMicros(span);
  out.gets_per_sec = static_cast<double>(out.gets) / sim::ToSeconds(span);
  const sim::TransportCounters tcs = transport.counters();
  out.data_packets = tcs.data_packets;
  out.retransmits = tcs.retransmits;
  out.rto_fires = tcs.rto_fires;
  out.rnr_naks = tcs.rnr_naks;
  out.sack_retransmits = tcs.sack_retransmits;
  for (const auto& d : sdev) {
    out.qp_errors += d->counters().qp_errors;
    out.qp_rearms += d->counters().qp_rearms;
  }
  for (const auto& d : tdev) {
    out.qp_errors += d->counters().qp_errors;
    out.qp_rearms += d->counters().qp_rearms;
  }
  out.events = ssim.events_processed();
  out.sim_shards = cfg.sim_shards;
  return out;
}

}  // namespace redn::workload
