#include "workload/kv_service.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "kv/ring.h"
#include "kv/table.h"
#include "offloads/failover_chain.h"
#include "offloads/hash_harness.h"
#include "rnic/device.h"
#include "sim/rng.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "verbs/verbs.h"

namespace redn::workload {
namespace {

// Shard s's server-side resources are owned by this pid (kCrash kills it).
constexpr int kShardPidBase = 100;
// Detour fires a chain can serve per (tenant, shard) over the run.
constexpr int kDetourArms = 16;

std::size_t Pow2AtLeast(std::size_t n) {
  std::size_t p = 1024;
  while (p < n) p <<= 1;
  return p;
}

void Validate(const KvServiceConfig& cfg) {
  if (cfg.shards < 2) {
    throw std::invalid_argument(
        "KvServiceConfig: chain replication needs shards >= 2");
  }
  if (cfg.tenants < 1 || cfg.gets_per_tenant < 1 || cfg.keys < 1) {
    throw std::invalid_argument(
        "KvServiceConfig: tenants, gets_per_tenant, keys must be positive");
  }
  for (const FaultEntry& e : cfg.faults.entries) {
    if (e.server < 0 || e.server >= cfg.shards) {
      throw std::invalid_argument(
          "FaultPlan: entry names an out-of-range shard");
    }
    if (e.kind == FaultKind::kCrash && e.up_at != 0) {
      throw std::invalid_argument(
          "FaultPlan: kCrash is permanent — up_at must be 0");
    }
    if (e.up_at != 0 && e.up_at <= e.down_at) {
      throw std::invalid_argument("FaultPlan: up_at must follow down_at");
    }
    if (e.client >= cfg.tenants) {
      throw std::invalid_argument(
          "FaultPlan: entry names an out-of-range tenant");
    }
  }
  if (cfg.sim_shards < 1) {
    throw std::invalid_argument("KvServiceConfig: sim_shards must be >= 1");
  }
  if (cfg.service_shard < 0 || cfg.service_shard >= cfg.sim_shards) {
    throw std::invalid_argument(
        "KvServiceConfig: service_shard out of sim_shards range");
  }
  if (!cfg.placement.empty() &&
      cfg.placement.size() != static_cast<std::size_t>(cfg.tenants)) {
    throw std::invalid_argument(
        "KvServiceConfig: placement must be empty or name a shard per tenant");
  }
  for (const int p : cfg.placement) {
    if (p != cfg.service_shard) {
      throw std::invalid_argument(
          "KvServiceConfig: tenant placed off service_shard — packetized "
          "transport flows are shard-local, so every KV-service actor must "
          "share one event domain (see docs/PARSIM.md)");
    }
  }
}

}  // namespace

KvServiceResult RunKvService(const KvServiceConfig& cfg) {
  Validate(cfg);

  // All actors live on one domain (transport flows are shard-local); the
  // coordinator still hosts the run so the service composes with sharded
  // callers, and sim_shards == 1 is the classic single-domain path.
  sim::ShardedSimulator ssim(cfg.sim_shards);
  sim::Simulator& sim = ssim.shard(cfg.service_shard);
  sim::Fabric fabric(cfg.switch_latency);
  sim::TransportConfig tc;
  tc.mtu = cfg.mtu;
  tc.loss = cfg.loss;
  tc.corrupt = cfg.corrupt;
  tc.seed = cfg.transport_seed;
  tc.mode = cfg.selective_repeat ? sim::TransportMode::kSelectiveRepeat
                                 : sim::TransportMode::kGoBackN;
  tc.retry_count = cfg.retry_count;
  tc.rnr_retry_count = cfg.rnr_retry_count;
  tc.timeout_exp = cfg.timeout_exp;
  tc.min_rnr_timer = cfg.min_rnr_timer;
  sim::Transport transport(sim, fabric, tc);

  const kv::ConsistentHashRing ring(cfg.shards, cfg.ring_vnodes, cfg.seed);

  std::vector<std::unique_ptr<rnic::RnicDevice>> sdev;
  for (int s = 0; s < cfg.shards; ++s) {
    sdev.push_back(std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "shard" + std::to_string(s)));
    sdev.back()->AttachPort(0, fabric, {cfg.gbps, cfg.propagation});
  }
  std::vector<std::unique_ptr<rnic::RnicDevice>> tdev;
  for (int t = 0; t < cfg.tenants; ++t) {
    tdev.push_back(std::make_unique<rnic::RnicDevice>(
        sim, rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "tenant" + std::to_string(t)));
    tdev.back()->AttachPort(0, fabric, {cfg.gbps, cfg.propagation});
  }

  // --- key placement + shard stores ----------------------------------------
  // Every key lives on its ring primary AND the primary's chain successor.
  std::vector<std::vector<std::uint64_t>> shard_keys(
      static_cast<std::size_t>(cfg.shards));
  for (int k = 1; k <= cfg.keys; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k);
    const int p = ring.PrimaryOf(key);
    shard_keys[static_cast<std::size_t>(p)].push_back(key);
    shard_keys[static_cast<std::size_t>(ring.SuccessorOf(p))].push_back(key);
  }
  const std::size_t slot = (static_cast<std::size_t>(cfg.value_len) + 7) & ~std::size_t{7};
  std::vector<std::unique_ptr<kv::RdmaHashTable>> tables;
  std::vector<std::unique_ptr<kv::ValueHeap>> heaps;
  for (int s = 0; s < cfg.shards; ++s) {
    const std::size_t cnt = shard_keys[static_cast<std::size_t>(s)].size();
    tables.push_back(std::make_unique<kv::RdmaHashTable>(
        *sdev[static_cast<std::size_t>(s)],
        kv::RdmaHashTable::Config{.buckets = Pow2AtLeast(4 * cnt + 16)}));
    heaps.push_back(std::make_unique<kv::ValueHeap>(
        *sdev[static_cast<std::size_t>(s)], cnt * slot + (64 << 10)));
    std::vector<std::byte> v(cfg.value_len);
    for (std::uint64_t key : shard_keys[static_cast<std::size_t>(s)]) {
      for (std::uint32_t i = 0; i < cfg.value_len; ++i) {
        v[i] = static_cast<std::byte>((key + i) & 0xff);  // PutPattern layout
      }
      tables.back()->Insert(key, heaps.back()->Store(v.data(), cfg.value_len),
                            cfg.value_len);
    }
  }

  // Depth-1 closed loops starve on a miss, so tenants draw only keys the
  // 2-bucket NIC probe can see on BOTH replicas.
  std::vector<std::uint64_t> eligible;
  eligible.reserve(static_cast<std::size_t>(cfg.keys));
  for (int k = 1; k <= cfg.keys; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k);
    const int p = ring.PrimaryOf(key);
    const int b = ring.SuccessorOf(p);
    if (tables[static_cast<std::size_t>(p)]->NicVisible(key) &&
        tables[static_cast<std::size_t>(b)]->NicVisible(key)) {
      eligible.push_back(key);
    }
  }
  if (eligible.empty()) {
    throw std::runtime_error("RunKvService: no NIC-visible keys");
  }

  // --- harnesses, detour chains ---------------------------------------------
  const bool offloaded = cfg.policy == FailoverPolicy::kOffloadChain;
  const int arm0 = cfg.gets_per_tenant + 8;
  using HarnessRow = std::vector<std::unique_ptr<offloads::HashGetHarness>>;
  std::vector<HarnessRow> H(static_cast<std::size_t>(cfg.tenants));
  std::vector<HarnessRow> F(static_cast<std::size_t>(cfg.tenants));
  std::vector<std::vector<std::unique_ptr<offloads::ClientFailoverChain>>>
      chains(static_cast<std::size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    for (int s = 0; s < cfg.shards; ++s) {
      auto h = std::make_unique<offloads::HashGetHarness>(
          *tdev[static_cast<std::size_t>(t)],
          *sdev[static_cast<std::size_t>(s)],
          offloads::HashGetOffload::Config{
              .buckets = 2,
              .max_requests = cfg.gets_per_tenant + 32,
              .fabric = &fabric,
              .transport = &transport},
          *tables[static_cast<std::size_t>(s)],
          *heaps[static_cast<std::size_t>(s)],
          /*max_value=*/cfg.value_len + 64);
      h->SetServerOwner(kShardPidBase + s);
      h->Arm(arm0);
      H[static_cast<std::size_t>(t)].push_back(std::move(h));
    }
    if (offloaded) {
      for (int s = 0; s < cfg.shards; ++s) {
        const int b = ring.SuccessorOf(s);
        auto f = std::make_unique<offloads::HashGetHarness>(
            *tdev[static_cast<std::size_t>(t)],
            *sdev[static_cast<std::size_t>(b)],
            offloads::HashGetOffload::Config{.buckets = 2,
                                             .max_requests = kDetourArms + 4,
                                             .fabric = &fabric,
                                             .transport = &transport,
                                             .managed_client_sq = true},
            *tables[static_cast<std::size_t>(b)],
            *heaps[static_cast<std::size_t>(b)],
            /*max_value=*/cfg.value_len + 64);
        f->SetServerOwner(kShardPidBase + b);
        f->Arm(kDetourArms);
        f->PrepostResponseRecvs(kDetourArms + 4);
        F[static_cast<std::size_t>(t)].push_back(std::move(f));
      }
      for (int s = 0; s < cfg.shards; ++s) {
        auto c = std::make_unique<offloads::ClientFailoverChain>(
            *H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)],
            *F[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)],
            kDetourArms);
        c->Arm();
        chains[static_cast<std::size_t>(t)].push_back(std::move(c));
      }
    }
  }

  // Keepalive probe QPs (offload policy): one per (tenant, shard), the
  // client end sharing the primary connection's send CQ so a probe failure
  // CQE trips the same WAIT the trigger failures do. Probes are unsignaled
  // zero-byte SENDs — healthy probes keep the CQ silent.
  std::vector<std::vector<rnic::QueuePair*>> probe_cli(
      static_cast<std::size_t>(cfg.tenants));
  std::vector<std::vector<rnic::QueuePair*>> probe_srv(
      static_cast<std::size_t>(cfg.tenants));
  if (offloaded) {
    for (int t = 0; t < cfg.tenants; ++t) {
      for (int s = 0; s < cfg.shards; ++s) {
        rnic::QpConfig sc;
        sc.rq_depth = 512;
        sc.send_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
        sc.recv_cq = sdev[static_cast<std::size_t>(s)]->CreateCq();
        rnic::QueuePair* ps =
            sdev[static_cast<std::size_t>(s)]->CreateQp(sc);
        ps->owner_pid = kShardPidBase + s;
        rnic::QpConfig cc;
        cc.send_cq = H[static_cast<std::size_t>(t)][static_cast<std::size_t>(
                          s)]->client_qp()->send_cq;
        cc.recv_cq = tdev[static_cast<std::size_t>(t)]->CreateCq();
        rnic::QueuePair* pc =
            tdev[static_cast<std::size_t>(t)]->CreateQp(cc);
        rnic::ConnectOverTransport(pc, ps, transport);
        verbs::RecvWr rwr;
        for (int i = 0; i < 64; ++i) verbs::PostRecv(ps, rwr);
        probe_cli[static_cast<std::size_t>(t)].push_back(pc);
        probe_srv[static_cast<std::size_t>(t)].push_back(ps);
      }
    }
  }

  // --- Zipf sampling ---------------------------------------------------------
  // p(rank r) ~ 1/(r+1)^theta over the eligible keyspace; per-tenant streams
  // rotate the ranking so tenants have distinct (overlapping) hot sets.
  const std::size_t nkeys = eligible.size();
  std::vector<double> cdf;
  if (cfg.zipf_theta > 0) {
    cdf.resize(nkeys);
    double acc = 0;
    for (std::size_t r = 0; r < nkeys; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), cfg.zipf_theta);
      cdf[r] = acc;
    }
  }
  const std::size_t rot = std::max<std::size_t>(1, nkeys / static_cast<std::size_t>(cfg.tenants));

  // --- tenant state ----------------------------------------------------------
  struct Tenant {
    sim::Rng rng{1};
    int remaining = 0;
    bool started = false;
    bool waiting = false;
    std::uint64_t key = 0;
    int primary = 0;
    int target = 0;
    sim::Nanos t_sent = 0;
    std::uint64_t seq = 0;      // one per get
    std::uint64_t attempt = 0;  // one per send (watchdog staleness guard)
    std::vector<char> dead;     // per-shard "stop routing there" flags
    sim::LatencyRecorder rec;
    sim::Nanos last_mark = 0;
    sim::Nanos max_blip = 0;
    std::uint64_t detours = 0, reroutes = 0, host_reissues = 0;
  };
  std::vector<Tenant> tenants(static_cast<std::size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    T.rng = sim::Rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(t + 1));
    T.remaining = cfg.gets_per_tenant;
    T.dead.assign(static_cast<std::size_t>(cfg.shards), 0);
  }

  const sim::Nanos base_rto =
      cfg.timeout_exp > 0 ? (sim::Nanos{4096} << cfg.timeout_exp) : tc.rto;
  const sim::Nanos host_timeout =
      cfg.host_timeout > 0 ? cfg.host_timeout : 16 * base_rto;

  sim::Nanos first_sent = -1;
  sim::Nanos last_resp = 0;
  std::uint64_t error_cqes = 0, stale_responses = 0, heal_reissues = 0;
  std::uint64_t faults_applied = 0, heals_applied = 0, probes_sent = 0;

  auto draw = [&](int t) -> std::uint64_t {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    std::size_t rank;
    if (cdf.empty()) {
      rank = static_cast<std::size_t>(T.rng.NextBelow(nkeys));
    } else {
      const double u = T.rng.NextDouble() * cdf.back();
      rank = static_cast<std::size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (rank >= nkeys) rank = nkeys - 1;
    }
    return eligible[(rank + static_cast<std::size_t>(t) * rot) % nkeys];
  };

  std::function<void(int)> send_fn;
  std::function<void(int)> issue_next;
  std::function<void(int, std::uint64_t, std::uint64_t, int)> probe_fn;

  // Keepalive tick: as long as the same send is still pending against
  // primary `p`, ping the probe QP and reschedule. A dead or blackholed
  // shard turns a probe into the failure CQE that fires the detour chain;
  // a completed get cancels the next tick via the seq/attempt guard.
  probe_fn = [&](int t, std::uint64_t seq, std::uint64_t attempt, int p) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    if (!T.waiting || T.seq != seq || T.attempt != attempt) return;
    rnic::QueuePair* pq =
        probe_cli[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    if (pq->sq.error || pq->state != rnic::QpState::kRts) {
      return;  // a probe already tripped; the chain fired or is firing
    }
    verbs::PostSendNow(pq, verbs::MakeSend(0, 0, 0, /*signaled=*/false));
    ++probes_sent;
    rnic::QueuePair* ps =
        probe_srv[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    if (ps->alive && ps->state == rnic::QpState::kRts) {
      verbs::RecvWr rwr;
      verbs::PostRecv(ps, rwr);  // keep the responder's RQ topped up
    }
    sim.After(cfg.probe_interval,
              [&, t, seq, attempt, p] { probe_fn(t, seq, attempt, p); });
  };

  auto schedule_watchdog = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    const std::uint64_t seq = T.seq, attempt = T.attempt;
    sim.At(sim.now() + host_timeout, [&, t, seq, attempt] {
      Tenant& W = tenants[static_cast<std::size_t>(t)];
      if (!W.waiting || W.seq != seq || W.attempt != attempt) return;
      // The send is stuck past the application RPC timer: declare its
      // target dead and re-issue from the CPU (the multi-RTO stall).
      W.dead[static_cast<std::size_t>(W.target)] = 1;
      ++W.host_reissues;
      sim.After(cfg.host_reissue_cost, [&, t, seq] {
        Tenant& W2 = tenants[static_cast<std::size_t>(t)];
        if (!W2.waiting || W2.seq != seq) return;
        send_fn(t);
      });
    });
  };

  send_fn = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    const int p = ring.PrimaryOf(T.key);
    T.primary = p;
    const int b = ring.SuccessorOf(p);
    const int pref = T.dead[static_cast<std::size_t>(p)] ? b : p;
    const int alt = pref == p ? b : p;
    for (const int target : {pref, alt}) {
      if (T.dead[static_cast<std::size_t>(target)]) continue;
      auto& h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(target)];
      if (target == p && offloaded) {
        // Healthy-path host work: keep the parked detour's trigger bytes
        // pointing at the in-flight key.
        chains[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]
            ->SetKey(T.key);
      }
      if (!h->SendTriggerBlind(T.key)) {
        // The local QP is wrecked (errored earlier and not yet healed) —
        // that much the host can see without peering into the server.
        T.dead[static_cast<std::size_t>(target)] = 1;
        continue;
      }
      if (target != p) ++T.reroutes;
      T.target = target;
      T.waiting = true;
      ++T.attempt;
      if (first_sent < 0) first_sent = sim.now();
      // The detour chain covers gets aimed at a live primary; everything
      // else (baseline policy, or a get already running on the backup)
      // falls back to the host watchdog so no get can be lost.
      if (cfg.policy == FailoverPolicy::kHostReissue || target != p) {
        schedule_watchdog(t);
      } else if (cfg.probe_interval > 0) {
        const std::uint64_t seq = T.seq, attempt = T.attempt;
        sim.After(cfg.probe_interval,
                  [&, t, seq, attempt, p] { probe_fn(t, seq, attempt, p); });
      }
      return;
    }
    // No live replica right now — retry once a heal had a chance to land.
    sim.After(sim::Millis(1), [&, t] {
      Tenant& W = tenants[static_cast<std::size_t>(t)];
      if (W.waiting || W.remaining <= 0) return;
      send_fn(t);
    });
    // Not waiting: the get is parked host-side, not in flight.
    T.waiting = false;
  };

  issue_next = [&](int t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    if (T.remaining <= 0) return;
    if (!T.started) {
      T.started = true;
      T.last_mark = sim.now();
    }
    T.key = draw(t);
    T.t_sent = sim.now();
    send_fn(t);
  };

  auto complete = [&](int t, bool via_detour) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    T.waiting = false;
    T.rec.Add(sim.now() - T.t_sent);
    T.max_blip = std::max(T.max_blip, sim.now() - T.last_mark);
    T.last_mark = sim.now();
    last_resp = std::max(last_resp, sim.now());
    if (via_detour) {
      T.dead[static_cast<std::size_t>(T.primary)] = 1;
      ++T.detours;
    }
    ++T.seq;
    --T.remaining;
    if (T.remaining > 0) issue_next(t);
  };

  for (int t = 0; t < cfg.tenants; ++t) {
    for (int s = 0; s < cfg.shards; ++s) {
      offloads::HashGetHarness* h =
          H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
      h->client_recv_cq()->SetHostNotify([&, t, s, h] {
        rnic::Cqe cqe;
        while (tdev[static_cast<std::size_t>(t)]->PollCq(h->client_recv_cq(),
                                                         1, &cqe) == 1) {
          if (cqe.status != rnic::WcStatus::kSuccess) {
            ++error_cqes;  // flushed RECVs from an errored QP
            continue;
          }
          h->NoteOpenLoopResponse(cqe.qp_id);
          Tenant& T = tenants[static_cast<std::size_t>(t)];
          if (!T.waiting || T.target != s) {
            ++stale_responses;
            continue;
          }
          complete(t, /*via_detour=*/false);
        }
      });
      if (offloaded) {
        offloads::HashGetHarness* f =
            F[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)].get();
        f->client_recv_cq()->SetHostNotify([&, t, s, f] {
          rnic::Cqe cqe;
          while (tdev[static_cast<std::size_t>(t)]->PollCq(f->client_recv_cq(),
                                                           1, &cqe) == 1) {
            if (cqe.status != rnic::WcStatus::kSuccess) {
              ++error_cqes;
              continue;
            }
            f->NoteOpenLoopResponse(cqe.qp_id);
            Tenant& T = tenants[static_cast<std::size_t>(t)];
            // The detour watching primary `s` answered the get that was in
            // flight toward it.
            if (!T.waiting || T.target != s) {
              ++stale_responses;
              continue;
            }
            complete(t, /*via_detour=*/true);
          }
        });
      }
    }
    sim.At(static_cast<sim::Nanos>(t) * 311 + 17, [&, t] { issue_next(t); });
  }

  // --- the fault plan --------------------------------------------------------
  auto tenant_in_scope = [&](const FaultEntry& e, int t) {
    return e.client < 0 || e.client == t;
  };
  for (const FaultEntry& e : cfg.faults.entries) {
    const int s = e.server;
    sim.At(e.down_at, [&, e, s] {
      ++faults_applied;
      switch (e.kind) {
        case FaultKind::kBlackhole:
          transport.SetLinkFaults(
              sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0), 1.0, 0.0);
          break;
        case FaultKind::kRnrStall:
          for (int t = 0; t < cfg.tenants; ++t) {
            if (!tenant_in_scope(e, t)) continue;
            sdev[static_cast<std::size_t>(s)]->StallRecvsFor(
                H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]
                    ->server_qp(),
                e.rnr_count);
          }
          break;
        case FaultKind::kCrash:
          sdev[static_cast<std::size_t>(s)]->KillProcessResources(
              kShardPidBase + s);
          break;
      }
    });
    if (e.up_at > 0) {
      sim.At(e.up_at, [&, e, s] {
        ++heals_applied;
        if (e.kind == FaultKind::kBlackhole) {
          transport.SetLinkFaults(
              sdev[static_cast<std::size_t>(s)]->fabric_endpoint(0), cfg.loss,
              cfg.corrupt);
        }
        for (int t = 0; t < cfg.tenants; ++t) {
          if (!tenant_in_scope(e, t)) continue;
          Tenant& T = tenants[static_cast<std::size_t>(t)];
          offloads::HashGetHarness* h =
              H[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]
                  .get();
          rnic::QueuePair* qp = h->client_qp();
          const bool errored = qp->state == rnic::QpState::kError;
          if (!errored && !T.dead[static_cast<std::size_t>(s)]) continue;
          // Drain the failure CQEs nothing else polls (the WAIT chain
          // consumed them NIC-side; this is host bookkeeping).
          rnic::Cqe cqe;
          while (tdev[static_cast<std::size_t>(t)]->PollCq(qp->send_cq, 1,
                                                           &cqe) == 1) {
            if (cqe.status != rnic::WcStatus::kSuccess) ++error_cqes;
          }
          if (errored) h->RearmTransport(T.remaining + 8);
          T.dead[static_cast<std::size_t>(s)] = 0;
          if (offloaded) {
            auto& chain = chains[static_cast<std::size_t>(t)]
                                [static_cast<std::size_t>(s)];
            if (qp->send_cq->hw_count() >= chain->wait_threshold()) {
              chain->Rearm();  // the old WAIT fired; park a fresh detour
            }
            rnic::QueuePair* pc = probe_cli[static_cast<std::size_t>(t)]
                                          [static_cast<std::size_t>(s)];
            rnic::QueuePair* ps = probe_srv[static_cast<std::size_t>(t)]
                                          [static_cast<std::size_t>(s)];
            if (pc->state == rnic::QpState::kError ||
                ps->state == rnic::QpState::kError) {
              for (rnic::QueuePair* q : {pc, ps}) {
                q->device->ModifyQp(q, rnic::QpState::kReset);
                q->device->ModifyQp(q, rnic::QpState::kInit);
                q->device->ModifyQp(q, rnic::QpState::kRtr);
                q->device->ModifyQp(q, rnic::QpState::kRts);
              }
              verbs::RecvWr rwr;
              for (int i = 0; i < 64; ++i) verbs::PostRecv(ps, rwr);
            }
          }
          if (T.waiting && T.target == s) {
            // The pending get died in the reset's flush — re-send it (its
            // latency keeps accruing from the original t_sent).
            ++heal_reissues;
            send_fn(t);
          } else if (!T.waiting && T.remaining > 0 && T.started) {
            // The tenant parked because both replicas looked dead.
            send_fn(t);
          }
        }
      });
    }
  }

  ssim.RunUntil(cfg.horizon);

  // --- results ---------------------------------------------------------------
  KvServiceResult out;
  out.keys_visible = eligible.size();
  out.faults_applied = faults_applied;
  out.heals_applied = heals_applied;
  out.error_cqes = error_cqes;
  out.stale_responses = stale_responses;
  out.heal_reissues = heal_reissues;
  out.probes_sent = probes_sent;
  sim::LatencyRecorder all;
  for (int t = 0; t < cfg.tenants; ++t) {
    Tenant& T = tenants[static_cast<std::size_t>(t)];
    KvTenantStats ts;
    ts.gets = T.rec.count();
    ts.detour_responses = T.detours;
    ts.reroutes = T.reroutes;
    ts.host_reissues = T.host_reissues;
    const sim::LatencySummary sum = T.rec.Summarize();
    ts.avg_us = sum.avg_us;
    ts.p50_us = sum.p50_us;
    ts.p99_us = sum.p99_us;
    ts.p999_us = sum.p999_us;
    ts.max_blip_us = sim::ToMicros(T.max_blip);
    out.tenants.push_back(ts);
    out.gets += ts.gets;
    out.detour_responses += T.detours;
    out.reroutes += T.reroutes;
    out.host_reissues += T.host_reissues;
    out.unanswered += static_cast<std::uint64_t>(T.remaining);
    out.max_blip_us = std::max(out.max_blip_us, ts.max_blip_us);
    for (sim::Nanos sample : T.rec.samples()) all.Add(sample);
  }
  const sim::LatencySummary sum = all.Summarize();
  out.avg_us = sum.avg_us;
  out.p50_us = sum.p50_us;
  out.p99_us = sum.p99_us;
  out.p999_us = sum.p999_us;
  const sim::Nanos span = last_resp > first_sent ? last_resp - first_sent : 1;
  out.duration_us = sim::ToMicros(span);
  out.gets_per_sec = static_cast<double>(out.gets) / sim::ToSeconds(span);
  const sim::TransportCounters& tcs = transport.counters();
  out.data_packets = tcs.data_packets;
  out.retransmits = tcs.retransmits;
  out.rto_fires = tcs.rto_fires;
  out.rnr_naks = tcs.rnr_naks;
  out.sack_retransmits = tcs.sack_retransmits;
  for (const auto& d : sdev) {
    out.qp_errors += d->counters().qp_errors;
    out.qp_rearms += d->counters().qp_rearms;
  }
  for (const auto& d : tdev) {
    out.qp_errors += d->counters().qp_errors;
    out.qp_rearms += d->counters().qp_rearms;
  }
  out.events = ssim.events_processed();
  out.sim_shards = cfg.sim_shards;
  return out;
}

}  // namespace redn::workload
