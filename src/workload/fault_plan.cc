#include "workload/fault_plan.h"

#include <limits>
#include <stdexcept>
#include <string>

namespace redn::workload {
namespace {

// A window's exclusive end; up_at == 0 means "never heals".
sim::Nanos WindowEnd(const FaultEntry& e) {
  return e.up_at == 0 ? std::numeric_limits<sim::Nanos>::max() : e.up_at;
}

[[noreturn]] void Reject(std::size_t idx, const std::string& why) {
  throw std::invalid_argument("FaultPlan entry #" + std::to_string(idx) +
                              ": " + why);
}

// Same target node? Server-side entries collide per shard; pure client-side
// entries (server == -1) collide per client.
bool SameTarget(const FaultEntry& a, const FaultEntry& b) {
  if (a.server >= 0 || b.server >= 0) return a.server == b.server;
  return a.client == b.client;
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kBlackhole: return "blackhole";
    case FaultKind::kRnrStall: return "rnr_stall";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kFlaky: return "flaky";
    case FaultKind::kSlow: return "slow";
  }
  return "?";
}

void ValidateFaultPlan(const FaultPlan& plan) {
  const auto& es = plan.entries;
  for (std::size_t i = 0; i < es.size(); ++i) {
    const FaultEntry& e = es[i];
    if (e.down_at < 0) {
      Reject(i, "down_at must be >= 0 (got " + std::to_string(e.down_at) +
                    ")");
    }
    if (e.up_at != 0 && e.up_at <= e.down_at) {
      Reject(i, "up_at (" + std::to_string(e.up_at) +
                    ") must follow down_at (" + std::to_string(e.down_at) +
                    "); use up_at = 0 for a window that never heals");
    }
    switch (e.kind) {
      case FaultKind::kRnrStall:
        if (e.rnr_count <= 0) {
          Reject(i, "rnr_stall needs rnr_count > 0");
        }
        break;
      case FaultKind::kFlaky:
        if (!(e.flaky_loss > 0.0 && e.flaky_loss <= 1.0)) {
          Reject(i, "flaky_loss must be in (0, 1], got " +
                        std::to_string(e.flaky_loss));
        }
        if (e.flaky_burst <= 0 || e.flaky_gap <= 0) {
          Reject(i, "flaky_burst and flaky_gap must be positive");
        }
        break;
      case FaultKind::kSlow:
        if (e.slow_ns <= 0) {
          Reject(i, "slow needs slow_ns > 0");
        }
        break;
      case FaultKind::kBlackhole:
      case FaultKind::kCrash:
        break;
    }
    // Overlap: two windows on the same node would fight over one link /
    // process (the second down_at fires inside the first window, and the
    // heals race). Today that fails deep inside the run; reject up front.
    for (std::size_t j = 0; j < i; ++j) {
      const FaultEntry& p = es[j];
      if (!SameTarget(p, e)) continue;
      if (e.down_at < WindowEnd(p) && p.down_at < WindowEnd(e)) {
        Reject(i, std::string("window [") + std::to_string(e.down_at) + ", " +
                      (e.up_at == 0 ? std::string("inf")
                                    : std::to_string(e.up_at)) +
                      ") overlaps entry #" + std::to_string(j) + "'s [" +
                      std::to_string(p.down_at) + ", " +
                      (p.up_at == 0 ? std::string("inf")
                                    : std::to_string(p.up_at)) +
                      ") on the same node; stagger the windows or merge "
                      "the entries");
      }
    }
  }
}

}  // namespace redn::workload
