// End-to-end experiment drivers for the evaluation's macro figures.
//
// Each function builds a fresh two-node topology (client(s) + server),
// runs the workload, and returns the measurements the paper plots. Both the
// benches and the integration tests call these, so figure generation is a
// thin formatting layer.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"
#include "workload/fault_plan.h"

namespace redn::workload {

// --- Shared-fabric scale-out: N clients, one server link --------------------
//
// Fig 15/16-style NIC-served gets, scaled out: `clients` independent client
// NICs attach to a switch fabric and hammer one server NIC whose single
// port link everyone shares. Each client runs a closed loop of depth 1
// (send trigger, await the offloaded WRITE_IMM response, repeat), so
// per-get latency is exact and aggregate throughput is limited by whatever
// saturates first — with enough clients and large values, the server's TX
// link. The per-QP constant-latency path cannot express this: private
// wires never contend.
struct FabricScaleConfig {
  int clients = 8;
  int gets_per_client = 200;
  // Response payload (the congesting bytes). Large enough that the wire —
  // not the server NIC's serialized managed-fetch unit — is what saturates.
  std::uint32_t value_len = 16384;
  int keys = 512;                  // keyspace per client
  double client_gbps = 25.0;       // each client's link
  double server_gbps = 25.0;       // the shared server link (the bottleneck)
  sim::Nanos propagation = 125;    // endpoint <-> switch one-way
  sim::Nanos switch_latency = 0;
  std::uint64_t seed = 1;

  // --- packetized lossy transport ------------------------------------------
  // When true, client<->server QPs ride sim::Transport: payloads segment
  // into `mtu` packets, every link drops/corrupts packets with the given
  // probabilities, and go-back-N recovers. false keeps the lossless
  // message-level fabric path (bit-identical to pre-transport behaviour).
  bool packetized = false;
  double loss = 0.0;               // per-link per-packet loss probability
  double corrupt = 0.0;            // per-link corruption probability
  std::uint32_t mtu = 4096;
  sim::Nanos rto = 60'000;         // retransmission timeout
  std::uint64_t transport_seed = 0x7a115eedULL;

  // --- reliability engine (requires packetized) -----------------------------
  // Selective repeat (SACK-range retransmission) instead of go-back-N.
  bool selective_repeat = false;
  // Consecutive-RTO budget before a flow fails and its QP enters ERROR;
  // 0 keeps retry-forever.
  std::uint32_t retry_count = 0;
  std::uint32_t rnr_retry_count = 0;  // RNR NAK budget; 0 disables RNR path
  std::uint32_t timeout_exp = 0;      // base RTO = 4096ns << exp when nonzero
  std::uint32_t min_rnr_timer = 5;    // RNR backoff base exponent

  // --- sharded parallel engine ----------------------------------------------
  // shards > 1 runs the topology on a ShardedSimulator: each client NIC is
  // pinned to `placement[i]` (empty = round-robin over shards), the server
  // to `server_shard`, and cross-shard verbs ride the conservative mailbox
  // sync whose lookahead floor is the fabric's one-way link latency. The
  // determinism key is (seed, shards): same-config reruns are bit-stable,
  // but different shard counts may order same-instant RX reservations
  // differently (see docs/PARSIM.md). shards == 1 is the classic
  // single-domain path, bit-identical to the pre-sharding driver.
  // Composes with `packetized`: cross-shard transport flows split into
  // per-endpoint halves with per-flow RNG streams (docs/NET.md), so lossy
  // GBN/SR recovery, RNR backoff, and fault windows all run sharded.
  int shards = 1;
  std::vector<int> placement;      // client i -> shard id; empty = i % shards
  int server_shard = 0;

  // --- scripted fault injection (requires packetized) -----------------------
  // Client-side fault windows: each entry names a client (FaultEntry::client;
  // `server` must stay -1 here — shard-side faults belong to RunKvService)
  // and a window. kBlackhole blackholes that client's link (loss = 1.0 both
  // directions): its in-flight gets exhaust their retry budgets, the QPs on
  // both ends enter ERROR and flush; at `up_at` the link heals, the client
  // re-arms through the reset->init->rtr->rts cycle and resumes. kRnrStall
  // drops the next `rnr_count` receiver probe attempts on that client's
  // server QP (transient RNR NAK/backoff, no error unless the budget dies).
  // kCrash is not supported for this single-server driver.
  FaultPlan faults;
};

struct FabricScaleResult {
  std::uint64_t gets = 0;          // responses received (all clients)
  double duration_us = 0;          // first trigger -> last response
  double gets_per_sec = 0;         // aggregate
  double avg_us = 0;               // per-get latency across all clients
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double server_tx_util = 0;       // server-link TX busy fraction
  double server_rx_util = 0;
  std::uint64_t events = 0;        // engine events processed (perf floors)
  // Transport accounting (all zero unless cfg.packetized).
  std::uint64_t data_packets = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t packets_lost = 0;  // dropped at egress/ingress + corrupted
  std::uint64_t acks = 0;
  double goodput_gbps = 0;         // delivered payload bits / duration
  // Reliability-engine accounting (all zero on the default config).
  std::uint64_t rto_fires = 0;
  std::uint64_t spurious_retransmits = 0;
  std::uint64_t sack_retransmits = 0;
  std::uint64_t rnr_naks = 0;          // transport-level RNR NAKs sent
  std::uint64_t flow_resets = 0;
  std::uint64_t error_cqes = 0;        // non-success CQEs seen by client loops
  std::uint64_t qp_errors = 0;         // QPs that entered ERROR (all devices)
  std::uint64_t qp_rearms = 0;         // ERROR -> reset -> RTS recoveries
  // Sharded-engine accounting (defaults on the classic single-domain path).
  int shards = 1;
  std::uint64_t mailbox_sends = 0;     // cross-shard messages posted
  std::uint64_t sync_rounds = 0;       // conservative windows executed
};

FabricScaleResult RunFabricScale(const FabricScaleConfig& cfg);

// --- Fig 15: performance isolation under CPU contention ---------------------
//
// One reader issues gets while `writers` closed-loop clients hammer the
// server with set RPCs (distinct 10K-key ranges, accessed sequentially).
// Baseline gets go through the two-sided CPU path; RedN gets are NIC-served.
struct ContentionResult {
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::uint64_t gets = 0;
};

ContentionResult RunTwoSidedContention(int writers, int n_gets,
                                       std::uint64_t seed = 1);
ContentionResult RunRedNContention(int writers, int n_gets,
                                   std::uint64_t seed = 1);

// --- Fig 16: failure resiliency ---------------------------------------------
//
// An open-loop client issues gets at `rate_per_sec` for `horizon`; the
// Memcached process is killed at `crash_at`. Returns per-bucket served
// throughput, normalized to the pre-crash plateau.
struct FailoverConfig {
  bool redn = false;        // NIC-served gets vs two-sided vanilla Memcached
  bool hull_parent = true;  // RDMA resources owned by the empty-hull parent
  double rate_per_sec = 2000;
  sim::Nanos horizon = sim::Seconds(12);
  sim::Nanos crash_at = sim::Seconds(5);
  sim::Nanos bucket = sim::Seconds(0.25);
  std::uint32_t value_len = 64;
  int keys = 10'000;
};

struct FailoverResult {
  std::vector<double> normalized;  // served-throughput per bucket, 0..1
  std::uint64_t served = 0;
  std::uint64_t sent = 0;
  // Seconds of wall time with (near-)zero service.
  double outage_seconds = 0;
};

FailoverResult RunFailover(const FailoverConfig& cfg);

}  // namespace redn::workload
