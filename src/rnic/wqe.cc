#include "rnic/wqe.h"

#include <cstring>

namespace redn::rnic {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNoop: return "NOOP";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kWriteImm: return "WRITE_IMM";
    case Opcode::kRead: return "READ";
    case Opcode::kSend: return "SEND";
    case Opcode::kSendImm: return "SEND_IMM";
    case Opcode::kRecv: return "RECV";
    case Opcode::kCompSwap: return "CAS";
    case Opcode::kFetchAdd: return "ADD";
    case Opcode::kCalcMax: return "MAX";
    case Opcode::kCalcMin: return "MIN";
    case Opcode::kWait: return "WAIT";
    case Opcode::kEnable: return "ENABLE";
    default: return "INVALID";
  }
}

void WqeView::Clear() { std::memset(base_, 0, kWqeSize); }

}  // namespace redn::rnic
