#include "rnic/wqe.h"

#include <cstring>

namespace redn::rnic {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNoop: return "NOOP";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kWriteImm: return "WRITE_IMM";
    case Opcode::kRead: return "READ";
    case Opcode::kSend: return "SEND";
    case Opcode::kSendImm: return "SEND_IMM";
    case Opcode::kRecv: return "RECV";
    case Opcode::kCompSwap: return "CAS";
    case Opcode::kFetchAdd: return "ADD";
    case Opcode::kCalcMax: return "MAX";
    case Opcode::kCalcMin: return "MIN";
    case Opcode::kWait: return "WAIT";
    case Opcode::kEnable: return "ENABLE";
    default: return "INVALID";
  }
}

WqeImage WqeView::Load() const {
  WqeImage img;
  img.ctrl = dma::ReadU64(FieldAddr(WqeField::kCtrl));
  img.remote_addr = dma::ReadU64(FieldAddr(WqeField::kRemoteAddr));
  img.rkey = dma::ReadU32(FieldAddr(WqeField::kRkey));
  img.flags = dma::ReadU32(FieldAddr(WqeField::kFlags));
  img.local_addr = dma::ReadU64(FieldAddr(WqeField::kLocalAddr));
  img.length = dma::ReadU32(FieldAddr(WqeField::kLength));
  img.lkey = dma::ReadU32(FieldAddr(WqeField::kLkey));
  img.compare_add = dma::ReadU64(FieldAddr(WqeField::kCompareAdd));
  img.swap = dma::ReadU64(FieldAddr(WqeField::kSwap));
  img.target_id = dma::ReadU32(FieldAddr(WqeField::kTargetId));
  img.imm = dma::ReadU32(FieldAddr(WqeField::kImm));
  return img;
}

void WqeView::Store(const WqeImage& img) {
  dma::WriteU64(FieldAddr(WqeField::kCtrl), img.ctrl);
  dma::WriteU64(FieldAddr(WqeField::kRemoteAddr), img.remote_addr);
  dma::WriteU32(FieldAddr(WqeField::kRkey), img.rkey);
  dma::WriteU32(FieldAddr(WqeField::kFlags), img.flags);
  dma::WriteU64(FieldAddr(WqeField::kLocalAddr), img.local_addr);
  dma::WriteU32(FieldAddr(WqeField::kLength), img.length);
  dma::WriteU32(FieldAddr(WqeField::kLkey), img.lkey);
  dma::WriteU64(FieldAddr(WqeField::kCompareAdd), img.compare_add);
  dma::WriteU64(FieldAddr(WqeField::kSwap), img.swap);
  dma::WriteU32(FieldAddr(WqeField::kTargetId), img.target_id);
  dma::WriteU32(FieldAddr(WqeField::kImm), img.imm);
}

void WqeView::Clear() { std::memset(base_, 0, kWqeSize); }

}  // namespace redn::rnic
