#include "rnic/queues.h"

#include <algorithm>

namespace redn::rnic {

const char* WcStatusName(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kLocalAccessError: return "LOCAL_ACCESS_ERROR";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRnrError: return "RNR_ERROR";
    case WcStatus::kAlignmentError: return "ALIGNMENT_ERROR";
    case WcStatus::kBadOpcode: return "BAD_OPCODE";
    case WcStatus::kRetryExcError: return "RETRY_EXC_ERR";
    case WcStatus::kRnrRetryExcError: return "RNR_RETRY_EXC_ERR";
    case WcStatus::kWrFlushError: return "WR_FLUSH_ERR";
  }
  return "UNKNOWN";
}

namespace {
// Min-heap on (threshold, seq): std::*_heap are max-heaps, so "later" wins.
struct WaiterLater {
  bool operator()(const CompletionQueue::Waiter& a,
                  const CompletionQueue::Waiter& b) const {
    if (a.threshold != b.threshold) return a.threshold > b.threshold;
    return a.seq > b.seq;
  }
};
}  // namespace

void CompletionQueue::AddWaiter(WorkQueue* wq, std::uint64_t threshold) {
  waiters_.push_back(Waiter{threshold, next_waiter_seq_++, wq});
  std::push_heap(waiters_.begin(), waiters_.end(), WaiterLater{});
}

const std::vector<WorkQueue*>& CompletionQueue::BumpHwCount() {
  ++hw_count_;
  ready_scratch_.clear();  // keeps capacity: no allocation in steady state
  while (!waiters_.empty() && waiters_.front().threshold <= hw_count_) {
    std::pop_heap(waiters_.begin(), waiters_.end(), WaiterLater{});
    ready_scratch_.push_back(waiters_.back().wq);
    waiters_.pop_back();
  }
  return ready_scratch_;
}

int CompletionQueue::Poll(sim::Nanos now, int max, Cqe* out) {
  int n = 0;
  while (n < max && !host_entries_.empty() && host_entries_.front().first <= now) {
    out[n++] = host_entries_.front().second;
    host_entries_.pop_front();
  }
  return n;
}

std::size_t CompletionQueue::HostDepth(sim::Nanos now) const {
  std::size_t n = 0;
  for (const auto& [t, cqe] : host_entries_) {
    if (t <= now) ++n;
  }
  return n;
}

void WorkQueue::Init(QueuePair* qp, bool is_send, std::byte* slots,
                     std::uint32_t capacity, bool managed, CompletionQueue* cq,
                     int pu_index) {
  qp_ = qp;
  is_send_ = is_send;
  slots_ = slots;
  capacity_ = capacity;
  managed_ = managed;
  cq_ = cq;
  pu_index_ = pu_index;
  images_.assign(capacity, WqeImage{});
  decoded_.assign(capacity, 0);
  plans_.assign(capacity, SgePlan{});
}

}  // namespace redn::rnic
