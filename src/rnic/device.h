// The simulated RDMA NIC: queue pairs, verb execution, ordering semantics,
// and the contended-resource timing model.
//
// Execution model (mirrors §3.1 of the paper):
//  - Every WQ is pinned to one processing unit (PU) on its port; WQEs in a
//    WQ issue strictly in order, pipelined (issue of n+1 does not wait for
//    completion of n) — this is "WQ order".
//  - WAIT blocks a WQ until a target CQ's NIC-internal completion count
//    reaches a threshold — "completion order".
//  - Managed queues never prefetch: the NIC fetches (and snapshots) each WQE
//    one-by-one through a serialized per-port fetch unit, and only up to the
//    limit raised by ENABLE verbs — "doorbell order". A WQE modified before
//    its (late) fetch is executed in its *modified* form; a WQE in a
//    non-managed queue is snapshotted at doorbell time and later
//    modifications are invisible. This asymmetry is exactly why RedN needs
//    doorbell ordering for self-modifying code.
//  - Execution limits are monotonic and may exceed the posted count: that is
//    WQ recycling (§3.4) — the NIC wraps the ring and re-executes slots.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rnic/calibration.h"
#include "rnic/memory.h"
#include "rnic/queues.h"
#include "rnic/wqe.h"
#include "sim/fabric.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace redn::sim {
class Transport;
enum class MsgFailure : std::uint8_t;
}  // namespace redn::sim

namespace redn::rnic {

class RnicDevice;

// ibv_qp_state analogue. QPs are born RTS (the simulator's historical
// behaviour — Connect* does the whole handshake); the machine only matters
// on the error path: a transport retry budget dying moves the QP to kError
// (in-flight WR completes with RETRY_EXC/RNR_RETRY_EXC, queued WRs flush),
// and ModifyQp kReset -> kInit -> kRtr -> kRts re-arms it.
enum class QpState : std::uint8_t { kReset, kInit, kRtr, kRts, kError };

const char* QpStateName(QpState s);

// Queue pair: a send queue + receive queue bound to CQs and a port.
struct QueuePair {
  std::uint32_t id = 0;
  RnicDevice* device = nullptr;
  WorkQueue sq;
  WorkQueue rq;
  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;
  QueuePair* peer = nullptr;     // connected remote (or loopback) QP
  sim::Nanos net_one_way = 0;    // 0 for loopback
  // True when the connection routes through a shared sim::Fabric (see
  // ConnectOverFabric): latency and serialization come from the contended
  // links instead of the constant net_one_way above.
  bool via_fabric = false;
  // Non-null when the connection additionally rides the packetized
  // go-back-N transport (ConnectOverTransport): WRITE/SEND/READ payloads
  // segment into MTU packets subject to per-link loss, and requester
  // completions wait for the transport-level cumulative ACK.
  sim::Transport* transport = nullptr;
  int flow = -1;  // outbound transport flow (this QP -> peer)
  int port = 0;
  bool alive = true;             // false once the owning process died
  int owner_pid = 0;             // resource-ownership for failure experiments
  QpState state = QpState::kRts;
  // Receiver-stall fault injection (StallRecvsFor): the next N inbound
  // transport delivery attempts see "no RECV posted" regardless of the
  // RQ's depth. Counted per rnr_probe invocation, so each backoff retry of
  // one SEND consumes one — N models attempts, not distinct messages.
  int stall_recvs = 0;
  // Bumped on every ModifyQp(kReset). Transport on_failed callbacks capture
  // the value at message-send time: a mismatch means a reset (and possibly a
  // re-arm) happened while the message was in flight, so the failure must
  // flush silently instead of erroring the freshly re-armed QP. Same-shard
  // flows flush synchronously inside the reset (state == kReset covers
  // them); split flows flush at the fence echo, after the re-arm.
  std::uint64_t reset_gen = 0;

  // WQ rate limiter (ibv_modify_qp_rate_limit analogue): minimum gap
  // between issued WQEs. 0 = unlimited.
  sim::Nanos rate_gap = 0;
  sim::Nanos next_rate_slot = 0;

  // Last MR resolved for remote (rkey) accesses landing on this QP.
  MrCacheEntry remote_mr_cache;

  std::unique_ptr<std::byte[]> sq_buf;
  std::unique_ptr<std::byte[]> rq_buf;
  MemoryRegion sq_mr;  // the registered "code region" (self-modification)
  MemoryRegion rq_mr;

  std::uint64_t SqWqeAddr(std::uint64_t idx, WqeField f) const {
    return sq.SlotAddr(idx, f);
  }
};

struct QpConfig {
  std::uint32_t sq_depth = 256;
  std::uint32_t rq_depth = 256;
  bool managed = false;  // doorbell-order (no prefetch) send queue
  int port = 0;
  CompletionQueue* send_cq = nullptr;  // required
  CompletionQueue* recv_cq = nullptr;  // required
  int owner_pid = 0;
  // Ops/sec cap (0 = unlimited). See §3.5 "Isolation".
  double rate_ops_per_sec = 0.0;
};

// Execution counters, used both for reporting and for the paper's WR-budget
// claims (Table 2, Fig 13's "~30 vs ~50 WRs").
struct DeviceCounters {
  std::uint64_t executed_by_opcode[static_cast<int>(Opcode::kOpcodeCount)] = {};
  std::uint64_t managed_fetches = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t cqes = 0;
  std::uint64_t rnr_drops = 0;
  std::uint64_t rnr_naks = 0;          // transport RNR probes answered not-ready
  std::uint64_t error_completions = 0; // every non-success CQE delivered
  std::uint64_t wrs_flushed = 0;       // WR_FLUSH_ERR CQEs (SQ + RQ)
  std::uint64_t qp_errors = 0;         // RTS->ERROR transitions
  std::uint64_t qp_rearms = 0;         // ERROR->...->RTS recoveries
  // Decoded-WQE translation cache: fetches served by a verified cached
  // decode / fetches that had to decode / cache entries a write killed or
  // refreshed (tracked stores and verify failures both count).
  std::uint64_t wqe_cache_hits = 0;
  std::uint64_t wqe_cache_misses = 0;
  std::uint64_t wqe_cache_invalidations = 0;

  std::uint64_t TotalExecuted() const {
    std::uint64_t t = 0;
    for (auto v : executed_by_opcode) t += v;
    return t;
  }
  double WqeCacheHitRate() const {
    const std::uint64_t total = wqe_cache_hits + wqe_cache_misses;
    return total == 0 ? 1.0
                      : static_cast<double>(wqe_cache_hits) /
                            static_cast<double>(total);
  }
};

// Fixed-capacity scatter/gather list resolved from a WQE. Lives on the
// caller's stack — resolving SGEs never allocates (kMaxSges is the
// device-wide scatter limit).
struct SgeScratch {
  std::array<Sge, kMaxSges> entries;
  int count = 0;

  const Sge* begin() const { return entries.data(); }
  const Sge* end() const { return entries.data() + count; }
};

// Recycled shuttle for data in flight between engine events: the payload
// bytes, the WQE image that produced them, and small per-op scratch. Events
// capture a single Payload* instead of a WqeImage + shared_ptr<vector>,
// which keeps closures inside the simulator's inline event storage and
// makes steady-state data verbs allocation-free (buffer capacity is
// retained across reuse). CQEs do NOT ride here: a Cqe is 32 bytes and is
// captured directly inside its delivery event.
struct Payload {
  std::vector<std::byte> bytes;
  WqeImage img{};
  std::uint64_t slot = 0;     // absolute WQE index (SgePlan lookup at scatter)
  std::uint64_t scratch = 0;  // atomics: old value returned to the requester
  bool rmw_done = false;      // atomics: the RMW actually executed remotely
  // Transport path only: the Accept* status carried from message delivery
  // to the ACK-time completion, and whether that completion was flushed
  // (QP/WQ died in between — release the payload, deliver no CQE).
  WcStatus st = WcStatus::kSuccess;
  bool flushed = false;
  Payload* next_free = nullptr;

  void Recycle() { bytes.clear(); }  // keeps capacity for the next op
};

// Device-owned free list of recycled engine objects. Acquire/Release never
// touch the system allocator once the pool has grown to the device's peak
// in-flight depth. T needs an intrusive `T* next_free` link and a
// `Recycle()` that resets state while keeping buffer capacity.
template <class T>
class RecyclePool {
 public:
  RecyclePool() = default;
  RecyclePool(const RecyclePool&) = delete;
  RecyclePool& operator=(const RecyclePool&) = delete;

  T* Acquire() {
    ++acquires_;
    if (free_ == nullptr) {
      all_.push_back(std::make_unique<T>());
      return all_.back().get();
    }
    ++reuses_;
    T* p = free_;
    free_ = p->next_free;
    p->next_free = nullptr;
    return p;
  }

  void Release(T* p) {
    p->Recycle();
    p->next_free = free_;
    free_ = p;
  }

  std::size_t allocated() const { return all_.size(); }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::unique_ptr<T>> all_;
  T* free_ = nullptr;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

using PayloadPool = RecyclePool<Payload>;

class RnicDevice {
 public:
  RnicDevice(sim::Simulator& sim, NicConfig cfg, Calibration cal,
             std::string name = "rnic");
  ~RnicDevice();

  RnicDevice(const RnicDevice&) = delete;
  RnicDevice& operator=(const RnicDevice&) = delete;

  sim::Simulator& sim() { return sim_; }
  const NicConfig& config() const { return cfg_; }
  const Calibration& cal() const { return cal_; }
  const std::string& name() const { return name_; }
  ProtectionDomain& pd() { return pd_; }
  const DeviceCounters& counters() const { return counters_; }
  const PayloadPool& payload_pool() const { return payloads_; }

  // --- Resource setup -------------------------------------------------------
  CompletionQueue* CreateCq();
  QueuePair* CreateQp(const QpConfig& cfg);
  CompletionQueue* GetCq(std::uint32_t id);
  QueuePair* GetQp(std::uint32_t id);

  // --- Driver-side operations (the "verbs" layer calls these) --------------
  // Rings the doorbell on a non-managed SQ: the NIC fetches and snapshots
  // everything posted so far, then starts executing. Managed SQs ignore
  // doorbells; they advance only via ENABLE.
  void RingDoorbell(QueuePair* qp);
  // Notifies the NIC that RECVs were appended (no doorbell latency; RQ WQEs
  // are read at message arrival).
  void NotifyRecvPosted(QueuePair* qp);
  int PollCq(CompletionQueue* cq, int max, Cqe* out);
  // Host-side ENABLE fallback: lets tests drive managed queues directly.
  void HostEnable(QueuePair* qp, std::uint64_t limit);
  // ibv_modify_qp_rate_limit analogue: reconfigures the WQ pacing gap
  // (0 = unlimited). Forgets the schedule built under the previous rate, so
  // the first WQE after a reconfigure paces from now rather than waiting
  // out a slot computed from the old gap.
  void SetRateLimit(QueuePair* qp, double ops_per_sec);
  // ibv_modify_qp analogue for the state machine. kReset drops the WQ
  // backlog, clears the error latches, and (transport connections) resets
  // the QP's outbound flow to a fresh PSN space; kInit/kRtr/kRts record the
  // re-arm handshake (an ERROR->RTS recovery bumps counters().qp_rearms);
  // kError force-transitions with the same flush semantics as a transport
  // budget death.
  void ModifyQp(QueuePair* qp, QpState next);
  // Deterministic receiver-stall fault injection: the next `n` delivery
  // attempts of inbound transport SENDs targeting `qp` are RNR-NAKed as if
  // no RECV were posted. `n` counts probe attempts — each backoff retry of
  // the same SEND consumes one — so `n` NAK+backoff rounds hit one message
  // that keeps retrying.
  void StallRecvsFor(QueuePair* qp, int n) { qp->stall_recvs += n; }

  // --- Shared fabric --------------------------------------------------------
  // Plugs `port` into a shared fabric. QPs on this port connected with
  // ConnectOverFabric route their traffic through the fabric's contended
  // links; QPs connected with Connect/ConnectSelf keep the constant-latency
  // compat path.
  void AttachPort(int port, sim::Fabric& fabric, const sim::LinkSpec& spec);
  sim::Fabric* fabric(int port) const { return fabric_ports_[port].fabric; }
  int fabric_endpoint(int port) const { return fabric_ports_[port].endpoint; }

  // --- Failure injection ----------------------------------------------------
  // Kills every QP owned by `pid` (the OS reclaiming a dead process's
  // memory); in-flight and future work on those QPs stops, mid-chain.
  void KillProcessResources(int pid);
  // Re-join: the killed process (or a spare replacement adopting its pid
  // and resources) comes back. Every QP the kill marked dead becomes alive
  // again but stays in ERROR with its error latches set — the owner must
  // still cycle it through ModifyQp kReset -> ... -> kRts before use,
  // exactly like any other errored QP.
  void ReviveProcessResources(int pid);
  bool HasLiveQps() const;

  // Tracked-write (dirty) generation of a managed QP's SQ ring — how many
  // NIC-side stores have landed inside it. 0 for unwatched (non-managed)
  // rings. Diagnostic surface for tests and tooling.
  std::uint64_t RingDirtyGen(const QueuePair* qp) const {
    return ring_watches_.DirtyGen(&qp->sq);
  }

  // --- Utilisation introspection (bottleneck reporting for Table 4) --------
  double PuUtilisation(int port, sim::Nanos window) const;
  double FetchUnitUtilisation(int port, sim::Nanos window) const;
  double LinkUtilisation(int port, sim::Nanos window) const;
  double PcieUtilisation(sim::Nanos window) const;
  const char* BusiestResource(sim::Nanos window) const;

 private:
  friend struct QueuePair;
  struct PortResources {
    std::vector<sim::FifoResource> pus;
    sim::FifoResource fetch_unit;   // serialized managed-mode WQE fetches
    sim::FifoResource atomic_unit;  // PCIe atomic concurrency control
    sim::BandwidthResource link;
    explicit PortResources(int pus_count, double link_gbps)
        : pus(pus_count), link(link_gbps) {}
  };

  // One CQE delivery, captured by value inside its event (56 bytes with the
  // packed Cqe — fits the simulator's 64-byte inline storage). Runs at the
  // NIC-internal completion instant: bumps hw_count, wakes WAIT waiters,
  // and stages the host entry at the precomputed visibility instant.
  struct CqeDeliver {
    RnicDevice* dev;
    CompletionQueue* cq;
    sim::Nanos visible_at;
    Cqe cqe;
    void operator()() const;
  };

  // Pooled batch of WAIT waiters woken by one CQE, resumed by a single
  // event after cal.wait_resume.
  struct ResumeBatch {
    std::vector<WorkQueue*> wqs;
    ResumeBatch* next_free = nullptr;

    void Recycle() { wqs.clear(); }  // keeps capacity
  };

  // Engine.
  void Advance(WorkQueue& wq);
  void Issue(WorkQueue& wq, std::uint64_t idx);
  void FinishControlVerb(WorkQueue& wq, std::uint64_t idx, const WqeImage& img);
  // Takes ownership of `pl` (image + slot already staged by Issue); every
  // path releases it back to the pool when the op retires.
  void ExecuteData(WorkQueue& wq, std::uint64_t idx, Payload* pl,
                   sim::Nanos t_issue);
  // Packetized-transport variants of the data paths (QP connected with
  // ConnectOverTransport). WRITE/SEND: the gathered payload goes out as one
  // transport message from `ready`; the responder Accept runs at in-order
  // delivery and the requester CQE waits for the go-back-N cumulative ACK.
  // READ: a header-only request message; the response payload rides back on
  // the responder's flow and completes the requester at delivery.
  void SendOverTransport(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                         Payload* pl, Opcode op, sim::Nanos ready);
  void ReadOverTransport(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                         Payload* pl, sim::Nanos t_issue, sim::Nanos ow);
  // Cross-shard READ over a split transport flow: the request's on_deliver
  // runs on the responder's shard, so every requester-side outcome (NAK,
  // scatter, CQE, error latch) hops back through a SendTo mailbox message
  // and the response data rides a shared bundle instead of the requester's
  // Payload (which stays owned by the request leg on the requester's shard).
  void ReadOverTransportSplit(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                              Payload* pl, sim::Nanos t_issue, sim::Nanos ow);
  // True when the peer's device schedules on a different event domain
  // (shard). The devices' domains are fixed at construction, so this is a
  // pure pointer compare — safe from any shard's thread.
  bool CrossShard(const QueuePair* peer) const {
    return peer != nullptr && &peer->device->sim_ != &sim_;
  }
  // Cross-shard halves of the fabric data paths (sharded runs only; the
  // same-shard code above is untouched). Each splits at the shard
  // boundary: the requester's shard reserves its TX pipe and computes the
  // port-arrival instant, a SendTo mailbox message carries the op to the
  // responder's shard (which reserves its own RX pipe and runs every
  // responder-side check — liveness, protection, RQ state — locally), and
  // the ACK/NAK/response legs mail back. Requester-side state (wq.error,
  // qp->alive, scatter) is only ever touched on the requester's shard, at
  // the ACK instant.
  void SendAcrossFabric(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                        Payload* pl, Opcode op, sim::Nanos ready);
  void ReadAcrossFabric(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                        Payload* pl, sim::Nanos t_issue, sim::Nanos ow);
  void AtomicAcrossFabric(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                          Payload* pl, Opcode op, sim::Nanos t_issue,
                          sim::Nanos ow);
  // Snapshots slot `idx` through the translation cache: a verified cached
  // decode is a hit (no reload); anything else decodes and refills. Charges
  // no simulated time itself — callers pay the fetch latency exactly as
  // before the cache existed.
  void FetchSlot(WorkQueue& wq, std::uint64_t idx);
  void CompleteWr(QueuePair* qp, CompletionQueue* cq, const WqeImage& img,
                  sim::Nanos t_done, WcStatus status, std::uint32_t byte_len,
                  bool force_cqe = false, sim::Nanos host_extra = 0);
  // `host_extra` delays only host visibility (e.g. the RC ack a NOP's CQE
  // waits for), not the NIC-internal count WAIT verbs observe.
  void DeliverCqe(CompletionQueue* cq, const Cqe& cqe, sim::Nanos t_hw,
                  sim::Nanos host_extra = 0);
  // Clears `waiting` and schedules the wait_resume wake-up(s) for the
  // waiters BumpHwCount just returned — one event for the whole batch.
  void ScheduleResumes(const std::vector<WorkQueue*>& ready);
  // Shared enable semantics (ENABLE verb and HostEnable): raises the
  // execution limit monotonically, snapshots non-managed queues up to the
  // new limit, and kicks the queue.
  void ApplyEnable(WorkQueue& wq, std::uint64_t limit);
  void FailWr(WorkQueue& wq, const WqeImage& img, sim::Nanos t, WcStatus status);
  // Transport retry-budget death: delivers the in-flight WR's error CQE
  // (always signaled — errors never complete silently) and moves the QP to
  // ERROR, flushing everything queued behind it.
  void FailQpOverTransport(QueuePair* qp, const WqeImage& img, sim::Nanos t,
                           WcStatus status);
  // RTS->ERROR: latches the WQ error flags and flushes queued-but-
  // unexecuted SQ WQEs and unconsumed RECVs with WR_FLUSH_ERR CQEs (one
  // same-instant event later, so in-flight failures complete first).
  void TransitionToError(QueuePair* qp);
  void FlushQueued(QueuePair* qp);
  static WcStatus StatusOf(sim::MsgFailure why);

  // Incoming traffic from a peer device (or loopback), executed at arrival
  // time on the responder device.
  WcStatus AcceptWrite(QueuePair* dst_qp, std::uint64_t addr,
                       std::uint32_t rkey, const std::byte* data,
                       std::size_t len);
  WcStatus AcceptSend(QueuePair* dst_qp, const std::byte* data,
                      std::size_t len, std::uint32_t imm, bool has_imm,
                      std::size_t reported_len);

  // Gather/scatter helpers with protection checks. All SGE resolution goes
  // through caller-provided (stack) scratch — no per-op allocation. `wq` is
  // the queue whose WQE is being executed and `idx` its absolute slot: the
  // slot's SgePlan absorbs the CheckLocal re-walk for non-table WQEs, and
  // the queue's last-hit MR cache absorbs the remaining key lookups.
  bool GatherLocal(WorkQueue& wq, std::uint64_t idx, const WqeImage& img,
                   std::vector<std::byte>& out, WcStatus* err);
  bool ScatterList(WorkQueue& wq, std::uint64_t idx, const WqeImage& img,
                   const std::byte* data, std::size_t len, WcStatus* err);
  void ResolveSges(const WqeImage& img, SgeScratch& out) const;
  // Tracked NIC-side store into this device's memory: routes the written
  // extent through the ring watch set so overlapped cached decodes are
  // refreshed (write-through) and counted as invalidations.
  void NoteDmaWrite(std::uint64_t addr, std::size_t len) {
    if (ring_watches_.empty()) return;
    ring_watches_.ForOverlaps(
        addr, len, [this](void* owner, std::uint64_t first, std::uint64_t last,
                          std::uint64_t) {
          WorkQueue* wq = static_cast<WorkQueue*>(owner);
          counters_.wqe_cache_invalidations += wq->RefreshSlots(
              first / kWqeSize, last / kWqeSize);
        });
  }

  sim::Nanos PuService(Opcode op) const;
  sim::Nanos ExecExtra(Opcode op) const;
  // ExecExtra with the calibration's jitter applied.
  sim::Nanos ExecCost(Opcode op);
  // Store-and-forward serial delay for `bytes` of payload. `wire_link` is
  // the egress link the bytes serialize through (the QP's own port for a
  // requester, the responder's port for a READ response); nullptr means
  // loopback, which crosses PCIe twice instead.
  sim::Nanos DataDelay(std::uint64_t bytes,
                       const sim::BandwidthResource* wire_link) const;
  // Host-side (PCIe + memory) store-and-forward terms only; the wire terms
  // of a fabric-routed transfer come from Fabric::Deliver instead.
  sim::Nanos HostDataDelay(std::uint64_t bytes) const;
  // Fabric path helpers: propagation latency between two connected QPs'
  // endpoints, and a contended delivery reservation `from` -> `to`.
  static sim::Nanos FabricOneWay(const QueuePair* from, const QueuePair* to);
  static sim::Nanos FabricDeliver(const QueuePair* from, const QueuePair* to,
                                  sim::Nanos t, std::uint64_t bytes);

  std::uint64_t ExecLimitOf(const WorkQueue& wq) const { return wq.exec_limit; }
  void SnapshotRange(WorkQueue& wq, std::uint64_t upto);

  sim::Simulator& sim_;
  NicConfig cfg_;
  Calibration cal_;
  std::string name_;
  ProtectionDomain pd_;
  struct FabricAttach {
    sim::Fabric* fabric = nullptr;
    int endpoint = -1;
  };
  std::vector<PortResources> ports_;
  std::vector<FabricAttach> fabric_ports_;  // one per port; unattached = null
  sim::BandwidthResource pcie_;
  sim::BandwidthResource membw_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::vector<int> next_pu_per_port_;
  sim::Rng jitter_rng_{0x7e57ab1e};
  DeviceCounters counters_;
  PayloadPool payloads_;
  RecyclePool<ResumeBatch> resume_batches_;
  // Send-queue ring extents watched for self-modifying stores (the
  // translation cache's invalidation filter).
  WriteWatchSet ring_watches_;
};

// Connects two QPs as an RC pair with the given one-way wire latency.
// Pass one_way = 0 and the same device for a loopback connection (the
// pattern RedN uses for server-local self-modifying chains).
void Connect(QueuePair* a, QueuePair* b, sim::Nanos one_way);

// Connects a QP to itself — the tightest loopback; SENDs would consume the
// QP's own RECVs.
void ConnectSelf(QueuePair* qp);

// Connects two QPs as an RC pair routed through a shared fabric. Both QPs'
// ports must already be attached (AttachPort) to the *same* fabric; wire
// latency and serialization then come from the contended links instead of a
// per-QP constant, so N clients genuinely share the server's port.
void ConnectOverFabric(QueuePair* a, QueuePair* b);

// ConnectOverFabric plus the packetized go-back-N transport: opens one
// transport flow per direction, so WRITE/SEND/READ payloads between these
// QPs segment into MTU packets, experience the transport's configured
// loss/corruption, and recover via retransmission. `t` must be built over
// the same fabric the QPs' ports are attached to. NOOPs and atomics keep
// the constant-latency control path (see docs/NET.md).
void ConnectOverTransport(QueuePair* a, QueuePair* b, sim::Transport& t);

}  // namespace redn::rnic
