// Work Queue Entry (WQE) binary layout.
//
// WQEs live as raw bytes inside work-queue ring buffers in (simulated) host
// memory, exactly like mlx5 WQEs live in a memory-mapped send queue. RedN's
// entire trick depends on this: a CAS/WRITE/RECV-scatter that targets the
// *address of a WQE field* rewrites the program the NIC will execute.
//
// Layout (64 bytes, little-endian words):
//
//   offset 0  : u64 ctrl         [63:48] opcode | [47:0] wr_id ("id" field)
//   offset 8  : u64 remote_addr
//   offset 16 : u32 rkey
//   offset 20 : u32 flags        bit0 SIGNALED, bit1 SGE_TABLE
//   offset 24 : u64 local_addr   (or SGE-table pointer when SGE_TABLE)
//   offset 32 : u32 length       (or SGE count when SGE_TABLE)
//   offset 36 : u32 lkey
//   offset 40 : u64 compare_add  CAS compare / ADD operand / WAIT+ENABLE count
//   offset 48 : u64 swap         CAS swap / CALC operand
//   offset 56 : u32 target_id    WAIT: CQ id / ENABLE: QP id
//   offset 60 : u32 imm
//
// The ctrl word packs the opcode into the top 16 bits and the 48-bit wr_id
// below it. This is why RedN conditionals carry 48-bit operands (§3.5): one
// 64-bit CAS on the ctrl word compares {opcode, id} against {NOOP, x} and can
// swap in {WRITE, x}, flipping a no-op into an enabled instruction exactly
// when the ids match.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "rnic/memory.h"

namespace redn::rnic {

inline constexpr std::size_t kWqeSize = 64;
inline constexpr std::uint64_t kWrIdMask = (1ULL << 48) - 1;

enum class Opcode : std::uint16_t {
  kNoop = 0,  // must be 0 so a bare 48-bit key compares equal to a NOOP ctrl
  kWrite = 1,
  kWriteImm = 2,
  kRead = 3,
  kSend = 4,
  kSendImm = 5,
  kRecv = 6,
  kCompSwap = 7,   // CAS
  kFetchAdd = 8,   // ADD
  kCalcMax = 9,    // vendor Calc verb (ConnectX)
  kCalcMin = 10,
  kWait = 11,      // cross-channel: block until CQ count reaches threshold
  kEnable = 12,    // cross-channel: raise a managed queue's fetch limit
  kOpcodeCount = 13,
};

const char* OpcodeName(Opcode op);

enum WqeFlags : std::uint32_t {
  kFlagSignaled = 1u << 0,  // produce a CQE (and count toward WAIT)
  kFlagSgeTable = 1u << 1,  // local_addr points to an Sge[length] table
};

// Scatter/gather element for multi-entry lists (RECV scatter, READ response
// scatter). A RECV can scatter into at most kMaxSges entries (§5.3: "RECVs
// can only perform 16 scatters").
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};
inline constexpr int kMaxSges = 16;

// Field identifiers used to compute self-modification target addresses.
enum class WqeField : std::uint32_t {
  kCtrl = 0,         // the {opcode, wr_id} word — CAS target for conditionals
  kRemoteAddr = 8,
  kRkey = 16,
  kFlags = 20,
  kLocalAddr = 24,
  kLength = 32,
  kLkey = 36,
  kCompareAdd = 40,
  kSwap = 48,
  kTargetId = 56,
  kImm = 60,
};

constexpr std::size_t FieldOffset(WqeField f) { return static_cast<std::size_t>(f); }

// Packs {opcode, id} into a ctrl word.
constexpr std::uint64_t PackCtrl(Opcode op, std::uint64_t wr_id) {
  return (static_cast<std::uint64_t>(op) << 48) | (wr_id & kWrIdMask);
}
constexpr Opcode CtrlOpcode(std::uint64_t ctrl) {
  return static_cast<Opcode>(ctrl >> 48);
}
constexpr std::uint64_t CtrlWrId(std::uint64_t ctrl) { return ctrl & kWrIdMask; }

// A decoded, value-semantics snapshot of one WQE. The NIC operates on
// snapshots taken at *fetch* time — this is what makes prefetch staleness
// observable and doorbell ordering necessary.
//
// The member order mirrors the wire layout word for word (static_asserts
// below), so a fetch is ONE 64-byte copy, a post is one 64-byte store, and
// the translation cache can verify a cached decode against live ring bytes
// with a single memcmp instead of a field-by-field reload.
struct WqeImage {
  std::uint64_t ctrl = 0;
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t flags = 0;
  std::uint64_t local_addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;
  std::uint32_t target_id = 0;
  std::uint32_t imm = 0;

  Opcode opcode() const { return CtrlOpcode(ctrl); }
  std::uint64_t wr_id() const { return CtrlWrId(ctrl); }
  bool signaled() const { return flags & kFlagSignaled; }
  bool uses_sge_table() const { return flags & kFlagSgeTable; }
};

static_assert(sizeof(WqeImage) == kWqeSize &&
                  std::is_trivially_copyable_v<WqeImage>,
              "WqeImage must be memcpy-compatible with the raw WQE bytes");
static_assert(offsetof(WqeImage, ctrl) == FieldOffset(WqeField::kCtrl) &&
                  offsetof(WqeImage, remote_addr) ==
                      FieldOffset(WqeField::kRemoteAddr) &&
                  offsetof(WqeImage, rkey) == FieldOffset(WqeField::kRkey) &&
                  offsetof(WqeImage, flags) == FieldOffset(WqeField::kFlags) &&
                  offsetof(WqeImage, local_addr) ==
                      FieldOffset(WqeField::kLocalAddr) &&
                  offsetof(WqeImage, length) == FieldOffset(WqeField::kLength) &&
                  offsetof(WqeImage, lkey) == FieldOffset(WqeField::kLkey) &&
                  offsetof(WqeImage, compare_add) ==
                      FieldOffset(WqeField::kCompareAdd) &&
                  offsetof(WqeImage, swap) == FieldOffset(WqeField::kSwap) &&
                  offsetof(WqeImage, target_id) ==
                      FieldOffset(WqeField::kTargetId) &&
                  offsetof(WqeImage, imm) == FieldOffset(WqeField::kImm),
              "WqeImage member order must match the wire layout");

// Mutable view over 64 raw WQE bytes in host memory. The driver (verbs
// layer) uses it to post WRs; RDMA verbs modify the same bytes via dma::*.
class WqeView {
 public:
  explicit WqeView(std::byte* base) : base_(base) {}

  std::uint64_t addr() const { return dma::AddrOf(base_); }
  std::uint64_t FieldAddr(WqeField f) const { return addr() + FieldOffset(f); }

  // Load/Store are inline, and — because WqeImage mirrors the wire layout —
  // each is a single 64-byte block copy the compiler vectorizes. This runs
  // once per fetched/posted WQE on the hot path.
  WqeImage Load() const {
    WqeImage img;
    dma::Read(&img, addr(), kWqeSize);
    return img;
  }
  void Store(const WqeImage& img) { dma::Write(addr(), &img, kWqeSize); }
  // True when the raw slot bytes equal `img` — the translation-cache verify:
  // one memcmp decides whether a cached decode is still current.
  bool Matches(const WqeImage& img) const {
    return std::memcmp(base_, &img, kWqeSize) == 0;
  }
  void Clear();

  // Typed field accessors (reads/writes through dma helpers).
  std::uint64_t ctrl() const { return dma::ReadU64(FieldAddr(WqeField::kCtrl)); }
  void set_ctrl(std::uint64_t v) { dma::WriteU64(FieldAddr(WqeField::kCtrl), v); }
  Opcode opcode() const { return CtrlOpcode(ctrl()); }
  void set_opcode(Opcode op) { set_ctrl(PackCtrl(op, CtrlWrId(ctrl()))); }
  std::uint64_t wr_id() const { return CtrlWrId(ctrl()); }
  void set_wr_id(std::uint64_t id) { set_ctrl(PackCtrl(opcode(), id)); }

 private:
  std::byte* base_;
};

}  // namespace redn::rnic
