// Registered memory: protection domains, memory regions, key checks, DMA.
//
// Simulated RDMA targets *real process memory*: an address in a WQE is a
// reinterpret_cast of a host pointer. Registration attaches lkey/rkey
// capability tokens and access rights; every NIC access is checked the way
// the hardware's MTT/MPT would check it. This is what makes self-modifying
// chains honest — the "code region" is the WQ ring buffer itself, registered
// like any other memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace redn::rnic {

// Access rights for a memory region (bitmask).
enum Access : std::uint32_t {
  kLocalRead = 1u << 0,   // usable as a gather source
  kLocalWrite = 1u << 1,  // usable as a scatter target
  kRemoteRead = 1u << 2,
  kRemoteWrite = 1u << 3,
  kRemoteAtomic = 1u << 4,
  kAccessAll = kLocalRead | kLocalWrite | kRemoteRead | kRemoteWrite | kRemoteAtomic,
};

struct MemoryRegion {
  std::uint64_t addr = 0;  // start address (host pointer value)
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint32_t access = 0;

  bool Contains(std::uint64_t a, std::size_t len) const {
    return a >= addr && a + len <= addr + length && a + len >= a;
  }
};

// Why an access check failed (surfaces as a CQE error status).
enum class MemCheck {
  kOk,
  kBadKey,
  kOutOfBounds,
  kNoPermission,
};

// One-entry memoization of the last MR lookup a queue performed. RedN
// traffic hits the same 2-3 regions (code ring, hash table, value heap)
// millions of times, so the common case is "same key as last time": a hit
// validates against the cached extent directly and skips both the table
// probe and the region-store load.
//
// Caching the extent makes staleness dangerous: ibv_rereg_mr-style
// re-registration keeps the *same* lkey/rkey values while changing bounds,
// so a key compare alone would happily validate against the old extent
// (e.g. a client writing through `remote_mr_cache` past a shrunk region).
// The epoch tag closes that hole: the owning ProtectionDomain bumps its
// epoch on every Deregister/Reregister, and a hit requires both the key
// and the epoch to match — any mutation of the key space invalidates every
// outstanding cache entry at once.
struct MrCacheEntry {
  std::uint32_t key = 0;      // 0 = empty (real keys start at 0x1000)
  std::uint32_t epoch = 0;    // ProtectionDomain::epoch() at fill time
  std::uint64_t addr = 0;     // cached extent + rights of the resolved MR
  std::uint64_t length = 0;
  std::uint32_t access = 0;
};

class ProtectionDomain {
 public:
  // Registers [ptr, ptr+len) and returns the region descriptor by value:
  // the internal region store reallocates as it grows, so a reference into
  // it would dangle across a later Register.
  MemoryRegion Register(void* ptr, std::size_t len, std::uint32_t access);

  // Removes a region; accesses with its keys fail afterwards.
  bool Deregister(std::uint32_t lkey);

  // ibv_rereg_mr analogue: rebinds an existing registration to new bounds
  // and rights while KEEPING its lkey/rkey values — the hardware behaviour
  // that makes stale extent caches dangerous. Bumps the epoch so every
  // MrCacheEntry filled before the rereg misses and re-resolves.
  bool Reregister(std::uint32_t lkey, void* ptr, std::size_t len,
                  std::uint32_t access);

  // Validates a local (lkey) access. `cache`, when given, is consulted
  // before the key table and refreshed on a successful lookup. The hit
  // path is inline: it runs once per SGE on every data verb, and a valid
  // (key, epoch) entry answers from the cached extent alone.
  MemCheck CheckLocal(std::uint64_t addr, std::size_t len, std::uint32_t lkey,
                      std::uint32_t required_access,
                      MrCacheEntry* cache = nullptr) const {
    if (cache != nullptr && cache->key == lkey && cache->epoch == epoch_) {
      return CheckCached(*cache, addr, len, required_access);
    }
    return CheckSlow(addr, len, lkey, required_access, /*remote=*/false, cache);
  }

  // Validates a remote (rkey) access.
  MemCheck CheckRemote(std::uint64_t addr, std::size_t len, std::uint32_t rkey,
                       std::uint32_t required_access,
                       MrCacheEntry* cache = nullptr) const {
    if (cache != nullptr && cache->key == rkey && cache->epoch == epoch_) {
      return CheckCached(*cache, addr, len, required_access);
    }
    return CheckSlow(addr, len, rkey, required_access, /*remote=*/true, cache);
  }

  std::size_t region_count() const { return live_count_; }
  // Generation counter for MrCacheEntry validation; bumped by every
  // Deregister/Reregister (key-space mutation).
  std::uint32_t epoch() const { return epoch_; }

 private:
  // Open-addressed key table: maps an lkey or rkey to its region slot.
  // Both key kinds share one table (the key counter never collides them),
  // so a remote check is a single probe instead of the old two-map
  // rkey->lkey->region chain.
  struct TableSlot {
    std::uint32_t key = 0;    // kEmptyKey / kTombstoneKey / a real key
    std::uint32_t index = 0;  // slot in regions_
  };
  static constexpr std::uint32_t kEmptyKey = 0;
  static constexpr std::uint32_t kTombstoneKey = 1;
  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};
  // First key ever issued. Values below it (the sentinels above, and the
  // zeroes Deregister blanks a region's keys to) are never valid lookups;
  // Resolve rejects them up front so a blanked key cannot alias an empty
  // table slot or a dead region.
  static constexpr std::uint32_t kFirstKey = 0x1000;

  static std::size_t Mix(std::uint32_t key) {
    return static_cast<std::size_t>(key * 2654435761u);
  }
  std::uint32_t Find(std::uint32_t key) const;  // region index or kNotFound
  void Insert(std::uint32_t key, std::uint32_t index);
  void GrowTable();

  // Table probe + kind check (lkey vs rkey); cache handling lives in the
  // Check* fast paths.
  const MemoryRegion* Resolve(std::uint32_t key, bool remote) const;
  // Permission + bounds against a validated cache entry (same arithmetic as
  // MemoryRegion::Contains, overflow check included).
  static MemCheck CheckCached(const MrCacheEntry& e, std::uint64_t addr,
                              std::size_t len, std::uint32_t required_access) {
    if ((e.access & required_access) != required_access) {
      return MemCheck::kNoPermission;
    }
    if (addr >= e.addr && addr + len <= e.addr + e.length && addr + len >= addr) {
      return MemCheck::kOk;
    }
    return MemCheck::kOutOfBounds;
  }
  // Miss path: table probe, cache refill, full check.
  MemCheck CheckSlow(std::uint64_t addr, std::size_t len, std::uint32_t key,
                     std::uint32_t required_access, bool remote,
                     MrCacheEntry* cache) const;

  std::uint32_t next_key_ = kFirstKey;
  std::uint32_t epoch_ = 0;
  std::size_t live_count_ = 0;
  std::vector<MemoryRegion> regions_;  // append-only; dereg blanks keys
  std::vector<TableSlot> table_;       // power-of-two, linear probing
  std::size_t table_used_ = 0;         // live + tombstone slots
};

// DMA helpers: all NIC memory traffic funnels through these, so tests can
// rely on memcpy semantics (no strict-aliasing surprises). They are inline
// on purpose: a WQE fetch/store touches every field through them (~20 calls
// per WQE), and as out-of-line functions they dominated the per-verb cost
// of the data path. Inlined, a WqeView::Load collapses into straight-line
// loads the compiler can schedule and vectorize.
namespace dma {
inline void Copy(std::uint64_t dst, std::uint64_t src, std::size_t len) {
  std::memmove(reinterpret_cast<void*>(dst), reinterpret_cast<const void*>(src),
               len);
}
inline void Write(std::uint64_t dst, const void* src, std::size_t len) {
  std::memcpy(reinterpret_cast<void*>(dst), src, len);
}
inline void Read(void* dst, std::uint64_t src, std::size_t len) {
  std::memcpy(dst, reinterpret_cast<const void*>(src), len);
}
inline std::uint64_t ReadU64(std::uint64_t addr) {
  std::uint64_t v;
  Read(&v, addr, sizeof(v));
  return v;
}
inline void WriteU64(std::uint64_t addr, std::uint64_t value) {
  Write(addr, &value, sizeof(value));
}
inline std::uint32_t ReadU32(std::uint64_t addr) {
  std::uint32_t v;
  Read(&v, addr, sizeof(v));
  return v;
}
inline void WriteU32(std::uint64_t addr, std::uint32_t value) {
  Write(addr, &value, sizeof(value));
}
inline std::uint64_t AddrOf(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
}  // namespace dma

}  // namespace redn::rnic
