// Registered memory: protection domains, memory regions, key checks, DMA.
//
// Simulated RDMA targets *real process memory*: an address in a WQE is a
// reinterpret_cast of a host pointer. Registration attaches lkey/rkey
// capability tokens and access rights; every NIC access is checked the way
// the hardware's MTT/MPT would check it. This is what makes self-modifying
// chains honest — the "code region" is the WQ ring buffer itself, registered
// like any other memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace redn::rnic {

// Access rights for a memory region (bitmask).
enum Access : std::uint32_t {
  kLocalRead = 1u << 0,   // usable as a gather source
  kLocalWrite = 1u << 1,  // usable as a scatter target
  kRemoteRead = 1u << 2,
  kRemoteWrite = 1u << 3,
  kRemoteAtomic = 1u << 4,
  kAccessAll = kLocalRead | kLocalWrite | kRemoteRead | kRemoteWrite | kRemoteAtomic,
};

struct MemoryRegion {
  std::uint64_t addr = 0;  // start address (host pointer value)
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint32_t access = 0;

  bool Contains(std::uint64_t a, std::size_t len) const {
    return a >= addr && a + len <= addr + length && a + len >= a;
  }
};

// Why an access check failed (surfaces as a CQE error status).
enum class MemCheck {
  kOk,
  kBadKey,
  kOutOfBounds,
  kNoPermission,
};

class ProtectionDomain {
 public:
  // Registers [ptr, ptr+len) and returns the region descriptor.
  const MemoryRegion& Register(void* ptr, std::size_t len, std::uint32_t access);

  // Removes a region; accesses with its keys fail afterwards.
  bool Deregister(std::uint32_t lkey);

  // Validates a local (lkey) access.
  MemCheck CheckLocal(std::uint64_t addr, std::size_t len, std::uint32_t lkey,
                      std::uint32_t required_access) const;

  // Validates a remote (rkey) access.
  MemCheck CheckRemote(std::uint64_t addr, std::size_t len, std::uint32_t rkey,
                       std::uint32_t required_access) const;

  std::size_t region_count() const { return by_lkey_.size(); }

 private:
  std::uint32_t next_key_ = 0x1000;
  std::unordered_map<std::uint32_t, MemoryRegion> by_lkey_;
  std::unordered_map<std::uint32_t, std::uint32_t> rkey_to_lkey_;
};

// DMA helpers: all NIC memory traffic funnels through these, so tests can
// rely on memcpy semantics (no strict-aliasing surprises).
namespace dma {
void Copy(std::uint64_t dst, std::uint64_t src, std::size_t len);
void Write(std::uint64_t dst, const void* src, std::size_t len);
void Read(void* dst, std::uint64_t src, std::size_t len);
std::uint64_t ReadU64(std::uint64_t addr);
void WriteU64(std::uint64_t addr, std::uint64_t value);
std::uint32_t ReadU32(std::uint64_t addr);
void WriteU32(std::uint64_t addr, std::uint32_t value);
std::uint64_t AddrOf(const void* p);
}  // namespace dma

}  // namespace redn::rnic
