// Registered memory: protection domains, memory regions, key checks, DMA.
//
// Simulated RDMA targets *real process memory*: an address in a WQE is a
// reinterpret_cast of a host pointer. Registration attaches lkey/rkey
// capability tokens and access rights; every NIC access is checked the way
// the hardware's MTT/MPT would check it. This is what makes self-modifying
// chains honest — the "code region" is the WQ ring buffer itself, registered
// like any other memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace redn::rnic {

// Access rights for a memory region (bitmask).
enum Access : std::uint32_t {
  kLocalRead = 1u << 0,   // usable as a gather source
  kLocalWrite = 1u << 1,  // usable as a scatter target
  kRemoteRead = 1u << 2,
  kRemoteWrite = 1u << 3,
  kRemoteAtomic = 1u << 4,
  kAccessAll = kLocalRead | kLocalWrite | kRemoteRead | kRemoteWrite | kRemoteAtomic,
};

struct MemoryRegion {
  std::uint64_t addr = 0;  // start address (host pointer value)
  std::size_t length = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  std::uint32_t access = 0;

  bool Contains(std::uint64_t a, std::size_t len) const {
    return a >= addr && a + len <= addr + length && a + len >= a;
  }
};

// Why an access check failed (surfaces as a CQE error status).
enum class MemCheck {
  kOk,
  kBadKey,
  kOutOfBounds,
  kNoPermission,
};

// One-entry memoization of the last MR lookup a queue performed. RedN
// traffic hits the same 2-3 regions (code ring, hash table, value heap)
// millions of times, so the common case is "same key as last time": a hit
// validates against the cached extent directly and skips both the table
// probe and the region-store load.
//
// Caching the extent makes staleness dangerous: ibv_rereg_mr-style
// re-registration keeps the *same* lkey/rkey values while changing bounds,
// so a key compare alone would happily validate against the old extent
// (e.g. a client writing through `remote_mr_cache` past a shrunk region).
// The epoch tag closes that hole: the owning ProtectionDomain bumps its
// epoch on every Deregister/Reregister, and a hit requires both the key
// and the epoch to match — any mutation of the key space invalidates every
// outstanding cache entry at once.
struct MrCacheEntry {
  std::uint32_t key = 0;      // 0 = empty (real keys start at 0x1000)
  std::uint32_t epoch = 0;    // ProtectionDomain::epoch() at fill time
  std::uint64_t addr = 0;     // cached extent + rights of the resolved MR
  std::uint64_t length = 0;
  std::uint32_t access = 0;
};

class ProtectionDomain {
 public:
  // Registers [ptr, ptr+len) and returns the region descriptor by value:
  // the internal region store reallocates as it grows, so a reference into
  // it would dangle across a later Register.
  MemoryRegion Register(void* ptr, std::size_t len, std::uint32_t access);

  // Removes a region; accesses with its keys fail afterwards.
  bool Deregister(std::uint32_t lkey);

  // ibv_rereg_mr analogue: rebinds an existing registration to new bounds
  // and rights while KEEPING its lkey/rkey values — the hardware behaviour
  // that makes stale extent caches dangerous. Bumps the epoch so every
  // MrCacheEntry filled before the rereg misses and re-resolves.
  bool Reregister(std::uint32_t lkey, void* ptr, std::size_t len,
                  std::uint32_t access);

  // Validates a local (lkey) access. `cache`, when given, is consulted
  // before the key table and refreshed on a successful lookup. The hit
  // path is inline: it runs once per SGE on every data verb, and a valid
  // (key, epoch) entry answers from the cached extent alone.
  MemCheck CheckLocal(std::uint64_t addr, std::size_t len, std::uint32_t lkey,
                      std::uint32_t required_access,
                      MrCacheEntry* cache = nullptr) const {
    if (cache != nullptr && cache->key == lkey && cache->epoch == epoch_) {
      return CheckCached(*cache, addr, len, required_access);
    }
    return CheckSlow(addr, len, lkey, required_access, /*remote=*/false, cache);
  }

  // Validates a remote (rkey) access.
  MemCheck CheckRemote(std::uint64_t addr, std::size_t len, std::uint32_t rkey,
                       std::uint32_t required_access,
                       MrCacheEntry* cache = nullptr) const {
    if (cache != nullptr && cache->key == rkey && cache->epoch == epoch_) {
      return CheckCached(*cache, addr, len, required_access);
    }
    return CheckSlow(addr, len, rkey, required_access, /*remote=*/true, cache);
  }

  std::size_t region_count() const { return live_count_; }
  // Generation counter for MrCacheEntry validation; bumped by every
  // Deregister/Reregister (key-space mutation).
  std::uint32_t epoch() const { return epoch_; }

 private:
  // Open-addressed key table: maps an lkey or rkey to its region slot.
  // Both key kinds share one table (the key counter never collides them),
  // so a remote check is a single probe instead of the old two-map
  // rkey->lkey->region chain.
  struct TableSlot {
    std::uint32_t key = 0;    // kEmptyKey / kTombstoneKey / a real key
    std::uint32_t index = 0;  // slot in regions_
  };
  static constexpr std::uint32_t kEmptyKey = 0;
  static constexpr std::uint32_t kTombstoneKey = 1;
  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};
  // First key ever issued. Values below it (the sentinels above, and the
  // zeroes Deregister blanks a region's keys to) are never valid lookups;
  // Resolve rejects them up front so a blanked key cannot alias an empty
  // table slot or a dead region.
  static constexpr std::uint32_t kFirstKey = 0x1000;

  static std::size_t Mix(std::uint32_t key) {
    return static_cast<std::size_t>(key * 2654435761u);
  }
  std::uint32_t Find(std::uint32_t key) const;  // region index or kNotFound
  void Insert(std::uint32_t key, std::uint32_t index);
  void GrowTable();

  // Table probe + kind check (lkey vs rkey); cache handling lives in the
  // Check* fast paths.
  const MemoryRegion* Resolve(std::uint32_t key, bool remote) const;
  // Permission + bounds against a validated cache entry (same arithmetic as
  // MemoryRegion::Contains, overflow check included).
  static MemCheck CheckCached(const MrCacheEntry& e, std::uint64_t addr,
                              std::size_t len, std::uint32_t required_access) {
    if ((e.access & required_access) != required_access) {
      return MemCheck::kNoPermission;
    }
    if (addr >= e.addr && addr + len <= e.addr + e.length && addr + len >= addr) {
      return MemCheck::kOk;
    }
    return MemCheck::kOutOfBounds;
  }
  // Miss path: table probe, cache refill, full check.
  MemCheck CheckSlow(std::uint64_t addr, std::size_t len, std::uint32_t key,
                     std::uint32_t required_access, bool remote,
                     MrCacheEntry* cache) const;

  std::uint32_t next_key_ = kFirstKey;
  std::uint32_t epoch_ = 0;
  std::size_t live_count_ = 0;
  std::vector<MemoryRegion> regions_;  // append-only; dereg blanks keys
  std::vector<TableSlot> table_;       // power-of-two, linear probing
  std::size_t table_used_ = 0;         // live + tombstone slots
};

// Sorted registry of watched memory extents (the WQE "code rings") with a
// per-extent dirty generation — the write side of the decoded-WQE
// translation cache. NIC-side stores (RDMA WRITE delivery, RECV/READ
// scatter, atomic RMWs) are routed through ForOverlaps; a write landing
// inside a watched ring bumps that ring's generation and hands the owner
// the overlapped byte range so it can refresh exactly the touched slots.
// Most writes target payload heaps, so the common case is one binary-search
// reject over a small sorted vector.
//
// This complements (not replaces) the ProtectionDomain epoch: the epoch
// invalidates *translations* (cached MR extents) on key-space mutation,
// while the dirty generation invalidates *decodes* on data writes.
class WriteWatchSet {
 public:
  // Registers [base, base+len) owned by `owner` (a WorkQueue). Extents are
  // distinct allocations and are never unregistered (QPs live for the whole
  // simulation), which keeps the vector append-then-sort simple.
  void Watch(std::uint64_t base, std::uint64_t len, void* owner);

  bool empty() const { return entries_.empty(); }

  // Dirty generation of the extent owned by `owner` (0 if not watched):
  // the number of tracked writes that have landed inside it. Diagnostic
  // surface for tests and tooling — the refresh path itself acts on the
  // overlap callback, not the counter.
  std::uint64_t DirtyGen(const void* owner) const {
    for (const Entry& e : entries_) {
      if (e.owner == owner) return e.dirty_gen;
    }
    return 0;
  }

  // Invokes fn(owner, first_off, last_off, dirty_gen) for every watched
  // extent overlapping [addr, addr+len); offsets are byte offsets into the
  // extent. Bumps the extent's dirty generation. Inline: runs on every
  // NIC-side store, and the miss path is one partition-point reject.
  template <class Fn>
  void ForOverlaps(std::uint64_t addr, std::uint64_t len, Fn&& fn) {
    if (entries_.empty() || len == 0) return;
    const std::uint64_t wend = addr + len;
    // First extent whose end is past the write start; extents are disjoint
    // and sorted by base, so overlaps are contiguous from here.
    std::size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (entries_[mid].end <= addr) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (std::size_t i = lo; i < entries_.size() && entries_[i].base < wend;
         ++i) {
      Entry& e = entries_[i];
      ++e.dirty_gen;
      const std::uint64_t first = addr > e.base ? addr - e.base : 0;
      const std::uint64_t last =
          (wend < e.end ? wend : e.end) - e.base - 1;
      fn(e.owner, first, last, e.dirty_gen);
    }
  }

 private:
  struct Entry {
    std::uint64_t base = 0;
    std::uint64_t end = 0;
    void* owner = nullptr;
    std::uint64_t dirty_gen = 0;  // per-MR dirty generation
  };
  std::vector<Entry> entries_;  // sorted by base, disjoint
};

// DMA helpers: all NIC memory traffic funnels through these, so tests can
// rely on memcpy semantics (no strict-aliasing surprises). They are inline
// on purpose: a WQE fetch/store touches every field through them (~20 calls
// per WQE), and as out-of-line functions they dominated the per-verb cost
// of the data path. Inlined, a WqeView::Load collapses into straight-line
// loads the compiler can schedule and vectorize.
namespace dma {
inline void Copy(std::uint64_t dst, std::uint64_t src, std::size_t len) {
  std::memmove(reinterpret_cast<void*>(dst), reinterpret_cast<const void*>(src),
               len);
}
inline void Write(std::uint64_t dst, const void* src, std::size_t len) {
  std::memcpy(reinterpret_cast<void*>(dst), src, len);
}
inline void Read(void* dst, std::uint64_t src, std::size_t len) {
  std::memcpy(dst, reinterpret_cast<const void*>(src), len);
}
// Appends `len` bytes from simulated memory to `out` without resize()'s
// zero-fill (insert copies straight from the source). Keeps gather/READ
// capture inside the dma funnel so read-side instrumentation has the same
// single choke point the write side does.
inline void ReadAppend(std::vector<std::byte>& out, std::uint64_t src,
                       std::size_t len) {
  const std::byte* p = reinterpret_cast<const std::byte*>(src);
  out.insert(out.end(), p, p + len);
}
inline std::uint64_t ReadU64(std::uint64_t addr) {
  std::uint64_t v;
  Read(&v, addr, sizeof(v));
  return v;
}
inline void WriteU64(std::uint64_t addr, std::uint64_t value) {
  Write(addr, &value, sizeof(value));
}
inline std::uint32_t ReadU32(std::uint64_t addr) {
  std::uint32_t v;
  Read(&v, addr, sizeof(v));
  return v;
}
inline void WriteU32(std::uint64_t addr, std::uint32_t value) {
  Write(addr, &value, sizeof(value));
}
inline std::uint64_t AddrOf(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
}  // namespace dma

}  // namespace redn::rnic
