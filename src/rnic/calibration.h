// Timing and capacity calibration for the simulated RNIC.
//
// The simulator implements RDMA *semantics* exactly (ordering, prefetch
// staleness, completion counting, managed-queue gating). The *timing*
// constants below are free parameters, tuned once so that the
// microbenchmarks land on the values the paper measured on ConnectX-5
// hardware (Fig 7, Fig 8, Tables 1 and 3). The macro experiments
// (Figs 10-16, Tables 4-5) then fall out of the same model.
//
// Paper anchor points used for tuning:
//  - remote NOOP 1.21 us, local-remote delta 0.25 us        (Fig 7/8)
//  - WRITE 1.6 us, READ/CAS ~1.8 us, ADD ~1.79, MAX ~1.85   (Fig 7)
//  - chain slopes: WQ order 0.17 us/WR, completion order
//    0.19 us/WR, doorbell order 0.54 us/WR                  (Fig 8)
//  - WRITE 63M/s, READ 65M/s, CAS/ADD 8.4M/s per port       (Table 3)
//  - generation scaling 15M / 63M / 112M verbs/s            (Table 1)
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace redn::rnic {

struct Calibration {
  // --- Host-side / fetch costs ---------------------------------------------
  // MMIO write that rings the doorbell register.
  sim::Nanos doorbell_mmio = 300;
  // DMA latency for the initial WQE batch fetch after a doorbell.
  sim::Nanos first_fetch = 340;
  // Requester-side acknowledgment turnaround charged per wire-crossing op
  // (RC acks; calibrates remote verbs onto the paper's measured values).
  sim::Nanos remote_ack_extra = 240;
  // Serialized per-WQE fetch for managed (no-prefetch) queues, charged on
  // the per-port fetch unit. 490 ns + WAIT/ENABLE overheads reproduce the
  // paper's 0.54 us-per-WR doorbell-order slope.
  sim::Nanos managed_fetch = 490;

  // --- Per-opcode processing-unit occupancy (pipelined issue rate) ---------
  // A single WQ is bound to one PU; consecutive WQEs issue back-to-back at
  // these intervals. 170 ns reproduces the paper's NOOP chain slope; 127 ns
  // reproduces 63M WRITEs/s across 8 PUs.
  sim::Nanos pu_noop = 170;
  sim::Nanos pu_write = 127;
  sim::Nanos pu_read = 123;   // 65M/s across 8 PUs
  sim::Nanos pu_send = 127;
  sim::Nanos pu_calc = 127;   // MAX/MIN: 63M/s
  sim::Nanos pu_atomic = 119;
  sim::Nanos pu_wait = 10;    // completion-order extra: 0.19 us slope
  sim::Nanos pu_enable = 10;
  // Issue cost for WQEs that were individually fetched in managed mode: the
  // batched-prefetch amortisation baked into the costs above does not apply
  // when the explicit fetch was already charged.
  sim::Nanos pu_managed_issue = 20;

  // --- Execution path (issue -> remote effect -> completion) ---------------
  // One-way wire latency between back-to-back nodes (0.25 us RTT in Fig 7).
  // Loopback connections use zero.
  sim::Nanos net_one_way = 125;
  // Extra latency past issue for each verb's data path (PCIe gather /
  // non-posted read / atomic round trip), excluding size-dependent terms.
  sim::Nanos exec_noop = 0;    // NOP completes inside the NIC
  sim::Nanos exec_write = 175;
  sim::Nanos exec_send = 575;
  sim::Nanos exec_read = 370;
  sim::Nanos exec_cas = 270;
  sim::Nanos exec_add = 250;
  sim::Nanos exec_calc = 310;
  // Responder-side RECV consumption (WQE read + scatter setup), plus a cost
  // per scatter entry actually written.
  sim::Nanos recv_processing = 550;
  sim::Nanos recv_scatter_per_sge = 300;
  // Atomic-unit service time: 8.4M CAS/s per port.
  sim::Nanos atomic_unit_service = 119;

  // --- Completion path ------------------------------------------------------
  // Delay until a completion is visible to WAIT verbs inside the NIC.
  sim::Nanos cq_internal = 10;
  // Extra delay until the CQE is DMAed to host memory and pollable.
  sim::Nanos completion_write = 150;
  // Latency for a WAIT-blocked queue to resume after its CQ fires.
  sim::Nanos wait_resume = 0;

  // --- Variability ----------------------------------------------------------
  // Uniform +/- fraction applied to per-verb execution costs. Zero keeps the
  // simulation deterministic (unit tests); benches that report percentiles
  // enable a small value to model NIC/PCIe timing noise.
  double jitter_frac = 0.0;

  // --- Bandwidths (size-dependent store-and-forward + occupancy) -----------
  // Effective InfiniBand data bandwidth per port (paper: ~92 Gbps).
  double link_gbps = 92.0;
  // Effective PCIe 3.0 x16 data bandwidth, shared by both ports.
  double pcie_gbps = 100.0;
  // Host memory subsystem bandwidth seen by NIC DMA.
  double mem_gbps = 150.0;
};

// Per-generation capacity parameters (Table 1). PUs are per port.
struct NicConfig {
  std::string name = "ConnectX-5";
  int ports = 1;
  int pus_per_port = 8;
  // Copy-verb PU service time; scales the generation's verb throughput.
  sim::Nanos pu_copy_service = 127;
  // Non-managed prefetch granularity (how many WQEs one DMA read snapshots).
  int prefetch_batch = 8;

  static NicConfig ConnectX3(int ports = 1) {
    return NicConfig{"ConnectX-3", ports, 2, 133, 8};
  }
  static NicConfig ConnectX5(int ports = 1) {
    return NicConfig{"ConnectX-5", ports, 8, 127, 8};
  }
  static NicConfig ConnectX6(int ports = 1) {
    return NicConfig{"ConnectX-6", ports, 16, 143, 8};
  }

  // Applies the generation's copy-verb service time to a calibration.
  Calibration Calibrated(Calibration base = {}) const {
    base.pu_write = pu_copy_service;
    base.pu_send = pu_copy_service;
    base.pu_calc = pu_copy_service;
    base.pu_read = pu_copy_service > 4 ? pu_copy_service - 4 : pu_copy_service;
    return base;
  }
};

}  // namespace redn::rnic
