// Work queues and completion queues.
//
// A WorkQueue is a circular buffer of 64-byte WQE slots living in registered
// host memory. All progress counters are *monotonic absolute indices* (never
// reset on wrap) — this mirrors ConnectX behaviour and is load-bearing for
// RedN: WQ recycling re-executes old slots by pushing the execution limit
// past the number of posted WQEs, and WAIT/ENABLE thresholds must keep
// increasing (the paper's ADD-on-wqe_count trick, §3.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rnic/wqe.h"
#include "sim/time.h"

namespace redn::rnic {

class RnicDevice;
class WorkQueue;
struct QueuePair;

// Completion status carried in a CQE. One byte: the Cqe below is packed to
// 32 bytes so a whole CQE rides inline in an event capture (together with a
// device, CQ, and visibility timestamp) within the simulator's 64-byte
// inline storage — the completion path schedules one event per CQE with no
// pooled shuttle.
enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocalAccessError,   // lkey / bounds / permission on the local side
  kRemoteAccessError,  // rkey / bounds / permission on the remote side
  kRnrError,           // SEND arrived with no RECV posted
  kAlignmentError,     // atomic target not 8-byte aligned
  kBadOpcode,          // malformed WQE (e.g. RECV opcode in a send queue)
  kRetryExcError,      // transport retry budget spent (peer unreachable)
  kRnrRetryExcError,   // RNR retry budget spent (receiver never ready)
  kWrFlushError,       // WR flushed: queued behind a failure / QP in ERROR
};

const char* WcStatusName(WcStatus s);

struct Cqe {
  std::uint64_t wr_id = 0;
  sim::Nanos completed_at = 0;  // NIC-internal completion time
  std::uint32_t qp_id = 0;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;
  Opcode opcode = Opcode::kNoop;
  WcStatus status = WcStatus::kSuccess;
  bool has_imm = false;
};
static_assert(sizeof(Cqe) == 32, "Cqe must stay small enough to inline into "
                                 "an event capture (see RnicDevice::DeliverCqe)");

// Completion queue. Two notions of visibility:
//  - hw_count: cumulative number of CQEs as seen *inside* the NIC; WAIT
//    verbs compare their threshold against this.
//  - host entries: CQEs become pollable only after the CQE DMA delay.
class CompletionQueue {
 public:
  CompletionQueue(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const { return id_; }
  std::uint64_t hw_count() const { return hw_count_; }

  // --- engine side ---
  // Waiters are a binary min-heap ordered by (threshold, seq): hw_count is
  // monotonic, so BumpHwCount only ever needs the smallest thresholds, and
  // the registration seq preserves FIFO wake order among equal thresholds.
  // The old linear scan walked every parked waiter per CQE; the heap pops
  // exactly the ready ones.
  struct Waiter {
    std::uint64_t threshold;
    std::uint64_t seq;
    WorkQueue* wq;
  };
  void AddWaiter(WorkQueue* wq, std::uint64_t threshold);
  // Bumps the NIC-internal count; returns waiters whose threshold is now met
  // (removed from the wait list). The returned vector is a member scratch
  // buffer reused across calls — consume it before the next BumpHwCount.
  const std::vector<WorkQueue*>& BumpHwCount();
  void PushHostEntry(sim::Nanos visible_at, const Cqe& cqe) {
    host_entries_.push_back({visible_at, cqe});
  }

  // --- host side ---
  // Pops up to `max` CQEs visible at time `now`.
  int Poll(sim::Nanos now, int max, Cqe* out);
  std::size_t HostDepth(sim::Nanos now) const;
  // Instant at which the oldest undelivered host entry becomes pollable
  // (CQEs are polled in completion order, so the front entry gates the
  // rest), or -1 if none is in flight. Poll helpers use this to advance
  // simulated time now that CQE delivery no longer schedules an
  // unconditional host-visibility event.
  sim::Nanos NextVisibleAt() const {
    return host_entries_.empty() ? -1 : host_entries_.front().first;
  }

  // Host notification hook: invoked (in simulation context) whenever a CQE
  // becomes host-visible. Models an interrupt / busy-poll observation point;
  // actors add their own poll-interval or event-wakeup delay on top.
  // Arm it before the CQEs of interest are delivered: the wake-up is
  // scheduled at the CQE's NIC-internal delivery instant, so a CQE already
  // past that point when the hook is armed will not fire it (poll instead).
  void SetHostNotify(std::function<void()> fn) { host_notify_ = std::move(fn); }
  const std::function<void()>& host_notify() const { return host_notify_; }

 private:
  std::uint32_t id_;
  std::function<void()> host_notify_;
  std::uint64_t hw_count_ = 0;
  std::uint64_t next_waiter_seq_ = 0;
  std::vector<Waiter> waiters_;            // min-heap by (threshold, seq)
  std::vector<WorkQueue*> ready_scratch_;  // reused by BumpHwCount
  std::deque<std::pair<sim::Nanos, Cqe>> host_entries_;
};

// A cached, MR-validated resolution of a WQE's (non-table) scatter/gather
// element: the protection-check result of CheckLocal, remembered per slot.
// Self-validating: a hit requires the PD epoch and the WQE's {addr, length,
// lkey} to match what was validated, so neither ring recycling nor
// re-registration can replay a stale check. Content is NOT cached — gathers
// and scatters still move live bytes at execution time.
struct SgePlan {
  Sge sge{};                  // the validated element
  std::uint32_t pd_epoch = 0; // ProtectionDomain::epoch() at validation
  std::uint32_t access = 0;   // rights proven so far (kLocalRead/kLocalWrite)

  bool Covers(std::uint64_t addr, std::uint32_t length, std::uint32_t lkey,
              std::uint32_t required_access, std::uint32_t epoch) const {
    return (access & required_access) == required_access &&
           pd_epoch == epoch && sge.addr == addr && sge.length == length &&
           sge.lkey == lkey;
  }
};

// One direction of a queue pair (send queue or receive queue).
class WorkQueue {
 public:
  void Init(QueuePair* qp, bool is_send, std::byte* slots, std::uint32_t capacity,
            bool managed, CompletionQueue* cq, int pu_index);

  QueuePair* qp() const { return qp_; }
  bool is_send() const { return is_send_; }
  bool managed() const { return managed_; }
  std::uint32_t capacity() const { return capacity_; }
  CompletionQueue* cq() const { return cq_; }
  int pu_index() const { return pu_index_; }

  // Ring (buffer) slot of absolute index `idx`. The modulo is a runtime
  // integer divide (capacities are not forced to powers of two — chain
  // queues size to their program length), so hot paths compute it ONCE and
  // use the *B accessors below.
  std::size_t BufSlot(std::uint64_t idx) const {
    return static_cast<std::size_t>(idx % capacity_);
  }

  // Raw slot view for absolute index `idx` (wraps modulo capacity).
  WqeView Slot(std::uint64_t idx) const { return SlotAtB(BufSlot(idx)); }
  WqeView SlotAtB(std::size_t s) const {
    return WqeView(slots_ + s * kWqeSize);
  }
  std::uint64_t SlotAddr(std::uint64_t idx, WqeField f) const {
    return Slot(idx).FieldAddr(f);
  }
  std::uint64_t RingBase() const { return dma::AddrOf(slots_); }
  std::uint64_t RingBytes() const {
    return static_cast<std::uint64_t>(capacity_) * kWqeSize;
  }

  // Fetched snapshot for absolute index `idx`.
  WqeImage& ImageAt(std::uint64_t idx) { return images_[BufSlot(idx)]; }
  WqeImage& ImageAtB(std::size_t s) { return images_[s]; }

  // --- decoded-WQE translation cache ---------------------------------------
  // `decoded_` marks ring slots whose `images_` entry is a candidate decode.
  // The candidate is trusted only after WqeView::Matches verifies it against
  // the live slot bytes (one memcmp) — the backstop that keeps host-side
  // raw-DMA WQE patches (the §4 "expose WQ buffer" trick) honest even
  // though they bypass every tracked write path.
  bool DecodedAtB(std::size_t s) const { return decoded_[s]; }
  void MarkDecodedAtB(std::size_t s) { decoded_[s] = 1; }

  // Driver write-through (PostSend): the driver hands the NIC the decoded
  // image it just stored, the same way mlx5 BlueFlame doorbells carry WQE
  // bytes inline — the later fetch still pays its simulated latency but
  // verifies instead of re-decoding.
  void PostImage(std::uint64_t idx, const WqeImage& img) {
    const std::size_t s = BufSlot(idx);
    WqeView slot = SlotAtB(s);
    // Re-posting an identical WQE (the steady-state driver loop) is one
    // 64-byte compare: no slot store, no cache update — the candidate
    // decode, whatever its state, is settled by the verify at fetch time.
    if (slot.Matches(img)) {
      if (!DecodedAtB(s) && SnapshotWritable(idx)) {
        ImageAtB(s) = img;
        MarkDecodedAtB(s);
      }
      return;
    }
    slot.Store(img);
    if (SnapshotWritable(idx)) {
      ImageAtB(s) = img;
      MarkDecodedAtB(s);
    }
  }

  // NIC write-through: a tracked store just landed on the ring slots in
  // [first, last] (buffer-slot indices). Cached decodes are refreshed from
  // the live bytes — the essence of self-modifying chains is that the next
  // fetch of the slot executes the *modified* form. Returns how many live
  // cache entries the write invalidated (for the device counters).
  //
  // Managed queues only: on a non-managed queue `images_` holds the
  // *committed doorbell-time snapshot* for not-yet-executed slots, and
  // doorbell ordering demands that snapshot stay stale — there the verify
  // at the next (recycling) fetch re-decodes instead. The same hazard
  // guards the one managed slot that is fetched but still executing (a
  // parked WAIT re-reads its image on resume): skip it and let the verify
  // settle the next lap.
  int RefreshSlots(std::uint64_t first, std::uint64_t last) {
    if (!managed_) return 0;
    const bool in_flight = fetch_horizon > next_exec;
    const std::uint64_t live_slot = next_exec % capacity_;
    int invalidated = 0;
    for (std::uint64_t s = first; s <= last; ++s) {
      if (!decoded_[s] || (in_flight && s == live_slot)) continue;
      WqeView slot(slots_ + s * kWqeSize);
      if (slot.Matches(images_[s])) continue;  // write was a no-op re-store
      images_[s] = slot.Load();
      ++invalidated;
    }
    return invalidated;
  }

  // Whether the driver may write `idx`'s snapshot through at post time. On
  // a non-managed queue a slot already inside the fetch horizon (an
  // enable-ahead or prefetch-batch overshoot snapshotted it before it was
  // posted) holds a COMMITTED stale snapshot that doorbell ordering says
  // must execute as-is — posting over it updates ring bytes only, exactly
  // like the pre-cache engine. Managed slots are safe: the one
  // fetched-but-unexecuted slot can never be re-posted (the SQ overflow
  // guard), and everything else is fetched at execution time.
  bool SnapshotWritable(std::uint64_t idx) const {
    return managed_ || idx >= fetch_horizon;
  }

  // Per-slot validated SGE resolution (see SgePlan).
  SgePlan& PlanAt(std::uint64_t idx) { return plans_[BufSlot(idx)]; }

  // --- progress counters (all monotonic) ---
  std::uint64_t posted = 0;         // WQEs written by the driver
  std::uint64_t exec_limit = 0;     // doorbell (non-managed) / enable (managed)
  std::uint64_t fetch_horizon = 0;  // WQEs snapshotted by the NIC
  std::uint64_t next_exec = 0;      // next WQE to issue
  std::uint64_t consumed = 0;       // RQ only: RECVs consumed by arrivals

  // --- engine state ---
  bool busy = false;     // a fetch/issue is in flight for this queue
  bool waiting = false;  // blocked in a WAIT verb
  bool error = false;    // QP moved to error state; no further processing

  // Last MR this queue's gathers/scatters resolved (see MrCacheEntry).
  MrCacheEntry mr_cache;

  // Snapshot of the control verb (WAIT/ENABLE) currently being issued.
  // Valid while `busy` or `waiting` holds (only one issue is ever in flight
  // per WQ), so control-verb events capture {device, wq, idx} and read the
  // image here. Data verbs stage their image in the pooled Payload instead
  // — either way captures stay within the simulator's inline event storage.
  WqeImage inflight_img{};

 private:
  QueuePair* qp_ = nullptr;
  bool is_send_ = true;
  std::byte* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  bool managed_ = false;
  CompletionQueue* cq_ = nullptr;
  int pu_index_ = 0;
  std::vector<WqeImage> images_;
  std::vector<std::uint8_t> decoded_;  // translation-cache candidate flags
  std::vector<SgePlan> plans_;         // per-slot validated SGE resolutions
};

}  // namespace redn::rnic
