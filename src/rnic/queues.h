// Work queues and completion queues.
//
// A WorkQueue is a circular buffer of 64-byte WQE slots living in registered
// host memory. All progress counters are *monotonic absolute indices* (never
// reset on wrap) — this mirrors ConnectX behaviour and is load-bearing for
// RedN: WQ recycling re-executes old slots by pushing the execution limit
// past the number of posted WQEs, and WAIT/ENABLE thresholds must keep
// increasing (the paper's ADD-on-wqe_count trick, §3.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rnic/wqe.h"
#include "sim/time.h"

namespace redn::rnic {

class RnicDevice;
class WorkQueue;
struct QueuePair;

// Completion status carried in a CQE. One byte: the Cqe below is packed to
// 32 bytes so a whole CQE rides inline in an event capture (together with a
// device, CQ, and visibility timestamp) within the simulator's 64-byte
// inline storage — the completion path schedules one event per CQE with no
// pooled shuttle.
enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocalAccessError,   // lkey / bounds / permission on the local side
  kRemoteAccessError,  // rkey / bounds / permission on the remote side
  kRnrError,           // SEND arrived with no RECV posted
  kAlignmentError,     // atomic target not 8-byte aligned
  kBadOpcode,          // malformed WQE (e.g. RECV opcode in a send queue)
};

const char* WcStatusName(WcStatus s);

struct Cqe {
  std::uint64_t wr_id = 0;
  sim::Nanos completed_at = 0;  // NIC-internal completion time
  std::uint32_t qp_id = 0;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;
  Opcode opcode = Opcode::kNoop;
  WcStatus status = WcStatus::kSuccess;
  bool has_imm = false;
};
static_assert(sizeof(Cqe) == 32, "Cqe must stay small enough to inline into "
                                 "an event capture (see RnicDevice::DeliverCqe)");

// Completion queue. Two notions of visibility:
//  - hw_count: cumulative number of CQEs as seen *inside* the NIC; WAIT
//    verbs compare their threshold against this.
//  - host entries: CQEs become pollable only after the CQE DMA delay.
class CompletionQueue {
 public:
  CompletionQueue(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const { return id_; }
  std::uint64_t hw_count() const { return hw_count_; }

  // --- engine side ---
  // Waiters are a binary min-heap ordered by (threshold, seq): hw_count is
  // monotonic, so BumpHwCount only ever needs the smallest thresholds, and
  // the registration seq preserves FIFO wake order among equal thresholds.
  // The old linear scan walked every parked waiter per CQE; the heap pops
  // exactly the ready ones.
  struct Waiter {
    std::uint64_t threshold;
    std::uint64_t seq;
    WorkQueue* wq;
  };
  void AddWaiter(WorkQueue* wq, std::uint64_t threshold);
  // Bumps the NIC-internal count; returns waiters whose threshold is now met
  // (removed from the wait list). The returned vector is a member scratch
  // buffer reused across calls — consume it before the next BumpHwCount.
  const std::vector<WorkQueue*>& BumpHwCount();
  void PushHostEntry(sim::Nanos visible_at, const Cqe& cqe) {
    host_entries_.push_back({visible_at, cqe});
  }

  // --- host side ---
  // Pops up to `max` CQEs visible at time `now`.
  int Poll(sim::Nanos now, int max, Cqe* out);
  std::size_t HostDepth(sim::Nanos now) const;
  // Instant at which the oldest undelivered host entry becomes pollable
  // (CQEs are polled in completion order, so the front entry gates the
  // rest), or -1 if none is in flight. Poll helpers use this to advance
  // simulated time now that CQE delivery no longer schedules an
  // unconditional host-visibility event.
  sim::Nanos NextVisibleAt() const {
    return host_entries_.empty() ? -1 : host_entries_.front().first;
  }

  // Host notification hook: invoked (in simulation context) whenever a CQE
  // becomes host-visible. Models an interrupt / busy-poll observation point;
  // actors add their own poll-interval or event-wakeup delay on top.
  // Arm it before the CQEs of interest are delivered: the wake-up is
  // scheduled at the CQE's NIC-internal delivery instant, so a CQE already
  // past that point when the hook is armed will not fire it (poll instead).
  void SetHostNotify(std::function<void()> fn) { host_notify_ = std::move(fn); }
  const std::function<void()>& host_notify() const { return host_notify_; }

 private:
  std::uint32_t id_;
  std::function<void()> host_notify_;
  std::uint64_t hw_count_ = 0;
  std::uint64_t next_waiter_seq_ = 0;
  std::vector<Waiter> waiters_;            // min-heap by (threshold, seq)
  std::vector<WorkQueue*> ready_scratch_;  // reused by BumpHwCount
  std::deque<std::pair<sim::Nanos, Cqe>> host_entries_;
};

// One direction of a queue pair (send queue or receive queue).
class WorkQueue {
 public:
  void Init(QueuePair* qp, bool is_send, std::byte* slots, std::uint32_t capacity,
            bool managed, CompletionQueue* cq, int pu_index);

  QueuePair* qp() const { return qp_; }
  bool is_send() const { return is_send_; }
  bool managed() const { return managed_; }
  std::uint32_t capacity() const { return capacity_; }
  CompletionQueue* cq() const { return cq_; }
  int pu_index() const { return pu_index_; }

  // Raw slot view for absolute index `idx` (wraps modulo capacity).
  WqeView Slot(std::uint64_t idx) const {
    return WqeView(slots_ + (idx % capacity_) * kWqeSize);
  }
  std::uint64_t SlotAddr(std::uint64_t idx, WqeField f) const {
    return Slot(idx).FieldAddr(f);
  }

  // Fetched snapshot for absolute index `idx`.
  WqeImage& ImageAt(std::uint64_t idx) { return images_[idx % capacity_]; }

  // --- progress counters (all monotonic) ---
  std::uint64_t posted = 0;         // WQEs written by the driver
  std::uint64_t exec_limit = 0;     // doorbell (non-managed) / enable (managed)
  std::uint64_t fetch_horizon = 0;  // WQEs snapshotted by the NIC
  std::uint64_t next_exec = 0;      // next WQE to issue
  std::uint64_t consumed = 0;       // RQ only: RECVs consumed by arrivals

  // --- engine state ---
  bool busy = false;     // a fetch/issue is in flight for this queue
  bool waiting = false;  // blocked in a WAIT verb
  bool error = false;    // QP moved to error state; no further processing

  // Last MR this queue's gathers/scatters resolved (see MrCacheEntry).
  MrCacheEntry mr_cache;

  // Snapshot of the WQE currently being issued. Valid while `busy` holds
  // (only one issue is ever in flight per WQ), so engine events capture
  // {device, wq, idx} and read the image here instead of copying 64 bytes
  // into every closure — this keeps captures within the simulator's inline
  // event storage.
  WqeImage inflight_img{};

 private:
  QueuePair* qp_ = nullptr;
  bool is_send_ = true;
  std::byte* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  bool managed_ = false;
  CompletionQueue* cq_ = nullptr;
  int pu_index_ = 0;
  std::vector<WqeImage> images_;
};

}  // namespace redn::rnic
