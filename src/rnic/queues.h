// Work queues and completion queues.
//
// A WorkQueue is a circular buffer of 64-byte WQE slots living in registered
// host memory. All progress counters are *monotonic absolute indices* (never
// reset on wrap) — this mirrors ConnectX behaviour and is load-bearing for
// RedN: WQ recycling re-executes old slots by pushing the execution limit
// past the number of posted WQEs, and WAIT/ENABLE thresholds must keep
// increasing (the paper's ADD-on-wqe_count trick, §3.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rnic/wqe.h"
#include "sim/time.h"

namespace redn::rnic {

class RnicDevice;
class WorkQueue;
struct QueuePair;

// Completion status carried in a CQE.
enum class WcStatus {
  kSuccess,
  kLocalAccessError,   // lkey / bounds / permission on the local side
  kRemoteAccessError,  // rkey / bounds / permission on the remote side
  kRnrError,           // SEND arrived with no RECV posted
  kAlignmentError,     // atomic target not 8-byte aligned
  kBadOpcode,          // malformed WQE (e.g. RECV opcode in a send queue)
};

const char* WcStatusName(WcStatus s);

struct Cqe {
  std::uint32_t qp_id = 0;
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kNoop;
  WcStatus status = WcStatus::kSuccess;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
  sim::Nanos completed_at = 0;  // NIC-internal completion time
};

// Completion queue. Two notions of visibility:
//  - hw_count: cumulative number of CQEs as seen *inside* the NIC; WAIT
//    verbs compare their threshold against this.
//  - host entries: CQEs become pollable only after the CQE DMA delay.
class CompletionQueue {
 public:
  CompletionQueue(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const { return id_; }
  std::uint64_t hw_count() const { return hw_count_; }

  // --- engine side ---
  struct Waiter {
    WorkQueue* wq;
    std::uint64_t threshold;
  };
  void AddWaiter(WorkQueue* wq, std::uint64_t threshold) {
    waiters_.push_back(Waiter{wq, threshold});
  }
  // Bumps the NIC-internal count; returns waiters whose threshold is now met
  // (removed from the wait list). The returned vector is a member scratch
  // buffer reused across calls — consume it before the next BumpHwCount.
  const std::vector<WorkQueue*>& BumpHwCount();
  void PushHostEntry(sim::Nanos visible_at, const Cqe& cqe) {
    host_entries_.push_back({visible_at, cqe});
  }

  // --- host side ---
  // Pops up to `max` CQEs visible at time `now`.
  int Poll(sim::Nanos now, int max, Cqe* out);
  std::size_t HostDepth(sim::Nanos now) const;

  // Host notification hook: invoked (in simulation context) whenever a CQE
  // becomes host-visible. Models an interrupt / busy-poll observation point;
  // actors add their own poll-interval or event-wakeup delay on top.
  void SetHostNotify(std::function<void()> fn) { host_notify_ = std::move(fn); }
  const std::function<void()>& host_notify() const { return host_notify_; }

 private:
  std::uint32_t id_;
  std::function<void()> host_notify_;
  std::uint64_t hw_count_ = 0;
  std::vector<Waiter> waiters_;
  std::vector<WorkQueue*> ready_scratch_;  // reused by BumpHwCount
  std::deque<std::pair<sim::Nanos, Cqe>> host_entries_;
};

// One direction of a queue pair (send queue or receive queue).
class WorkQueue {
 public:
  void Init(QueuePair* qp, bool is_send, std::byte* slots, std::uint32_t capacity,
            bool managed, CompletionQueue* cq, int pu_index);

  QueuePair* qp() const { return qp_; }
  bool is_send() const { return is_send_; }
  bool managed() const { return managed_; }
  std::uint32_t capacity() const { return capacity_; }
  CompletionQueue* cq() const { return cq_; }
  int pu_index() const { return pu_index_; }

  // Raw slot view for absolute index `idx` (wraps modulo capacity).
  WqeView Slot(std::uint64_t idx) const {
    return WqeView(slots_ + (idx % capacity_) * kWqeSize);
  }
  std::uint64_t SlotAddr(std::uint64_t idx, WqeField f) const {
    return Slot(idx).FieldAddr(f);
  }

  // Fetched snapshot for absolute index `idx`.
  WqeImage& ImageAt(std::uint64_t idx) { return images_[idx % capacity_]; }

  // --- progress counters (all monotonic) ---
  std::uint64_t posted = 0;         // WQEs written by the driver
  std::uint64_t exec_limit = 0;     // doorbell (non-managed) / enable (managed)
  std::uint64_t fetch_horizon = 0;  // WQEs snapshotted by the NIC
  std::uint64_t next_exec = 0;      // next WQE to issue
  std::uint64_t consumed = 0;       // RQ only: RECVs consumed by arrivals

  // --- engine state ---
  bool busy = false;     // a fetch/issue is in flight for this queue
  bool waiting = false;  // blocked in a WAIT verb
  bool error = false;    // QP moved to error state; no further processing

  // Snapshot of the WQE currently being issued. Valid while `busy` holds
  // (only one issue is ever in flight per WQ), so engine events capture
  // {device, wq, idx} and read the image here instead of copying 64 bytes
  // into every closure — this keeps captures within the simulator's inline
  // event storage.
  WqeImage inflight_img{};

 private:
  QueuePair* qp_ = nullptr;
  bool is_send_ = true;
  std::byte* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  bool managed_ = false;
  CompletionQueue* cq_ = nullptr;
  int pu_index_ = 0;
  std::vector<WqeImage> images_;
};

}  // namespace redn::rnic
