#include "rnic/memory.h"

#include <cstring>

namespace redn::rnic {

std::uint32_t ProtectionDomain::Find(std::uint32_t key) const {
  if (table_.empty()) return kNotFound;
  const std::size_t mask = table_.size() - 1;
  std::size_t i = Mix(key) & mask;
  for (;;) {
    const TableSlot& slot = table_[i];
    if (slot.key == key) return slot.index;
    if (slot.key == kEmptyKey) return kNotFound;
    i = (i + 1) & mask;  // skips tombstones too
  }
}

void ProtectionDomain::Insert(std::uint32_t key, std::uint32_t index) {
  // Grow at ~70% occupancy (tombstones included) to keep probes short.
  if (table_.empty() || (table_used_ + 1) * 10 >= table_.size() * 7) {
    GrowTable();
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t i = Mix(key) & mask;
  while (table_[i].key != kEmptyKey && table_[i].key != kTombstoneKey) {
    i = (i + 1) & mask;
  }
  if (table_[i].key == kEmptyKey) ++table_used_;
  table_[i] = TableSlot{key, index};
}

void ProtectionDomain::GrowTable() {
  const std::size_t cap = table_.empty() ? 64 : table_.size() * 2;
  std::vector<TableSlot> old = std::move(table_);
  table_.assign(cap, TableSlot{});
  table_used_ = 0;
  const std::size_t mask = cap - 1;
  for (const TableSlot& slot : old) {
    if (slot.key == kEmptyKey || slot.key == kTombstoneKey) continue;
    std::size_t i = Mix(slot.key) & mask;
    while (table_[i].key != kEmptyKey) i = (i + 1) & mask;
    table_[i] = slot;
    ++table_used_;
  }
}

MemoryRegion ProtectionDomain::Register(void* ptr, std::size_t len,
                                        std::uint32_t access) {
  MemoryRegion mr;
  mr.addr = dma::AddrOf(ptr);
  mr.length = len;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.access = access;
  const std::uint32_t index = static_cast<std::uint32_t>(regions_.size());
  regions_.push_back(mr);
  Insert(mr.lkey, index);
  Insert(mr.rkey, index);
  ++live_count_;
  return regions_[index];
}

bool ProtectionDomain::Deregister(std::uint32_t lkey) {
  if (lkey < kFirstKey) return false;  // sentinel / blanked-key values
  const std::uint32_t index = Find(lkey);
  if (index == kNotFound) return false;
  MemoryRegion& mr = regions_[index];
  if (mr.lkey != lkey) return false;  // an rkey is not a deregistration handle
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t key : {mr.lkey, mr.rkey}) {
    std::size_t i = Mix(key) & mask;
    while (table_[i].key != key) i = (i + 1) & mask;
    table_[i].key = kTombstoneKey;
  }
  // Blank the keys so a stale table hit fails its key compare; the epoch
  // bump invalidates every outstanding MrCacheEntry at once.
  mr.lkey = 0;
  mr.rkey = 0;
  mr.access = 0;
  --live_count_;
  ++epoch_;
  return true;
}

bool ProtectionDomain::Reregister(std::uint32_t lkey, void* ptr,
                                  std::size_t len, std::uint32_t access) {
  if (lkey < kFirstKey) return false;
  const std::uint32_t index = Find(lkey);
  if (index == kNotFound) return false;
  MemoryRegion& mr = regions_[index];
  if (mr.lkey != lkey) return false;  // an rkey is not a rereg handle
  mr.addr = dma::AddrOf(ptr);
  mr.length = len;
  mr.access = access;
  // Same keys, new extent: every cache entry filled before this instant
  // holds the old bounds and must miss.
  ++epoch_;
  return true;
}

void WriteWatchSet::Watch(std::uint64_t base, std::uint64_t len, void* owner) {
  Entry e;
  e.base = base;
  e.end = base + len;
  e.owner = owner;
  // Insert sorted by base; the set is tiny (one entry per SQ ring) and this
  // runs only at QP creation.
  auto it = entries_.begin();
  while (it != entries_.end() && it->base < e.base) ++it;
  entries_.insert(it, e);
}

const MemoryRegion* ProtectionDomain::Resolve(std::uint32_t key,
                                              bool remote) const {
  if (key < kFirstKey) return nullptr;  // sentinel / blanked-key values
  const std::uint32_t index = Find(key);
  if (index == kNotFound) return nullptr;
  const MemoryRegion& mr = regions_[index];
  // The table holds both key kinds; reject an rkey used as an lkey (and
  // vice versa), exactly like the old per-kind maps did.
  if ((remote ? mr.rkey : mr.lkey) != key) return nullptr;
  return &mr;
}

MemCheck ProtectionDomain::CheckSlow(std::uint64_t addr, std::size_t len,
                                     std::uint32_t key,
                                     std::uint32_t required_access, bool remote,
                                     MrCacheEntry* cache) const {
  const MemoryRegion* mr = Resolve(key, remote);
  if (mr == nullptr) return MemCheck::kBadKey;
  if (cache != nullptr) {
    *cache = MrCacheEntry{key, epoch_, mr->addr, mr->length, mr->access};
  }
  if ((mr->access & required_access) != required_access) return MemCheck::kNoPermission;
  if (!mr->Contains(addr, len)) return MemCheck::kOutOfBounds;
  return MemCheck::kOk;
}

}  // namespace redn::rnic
