#include "rnic/memory.h"

#include <cstring>

namespace redn::rnic {

const MemoryRegion& ProtectionDomain::Register(void* ptr, std::size_t len,
                                               std::uint32_t access) {
  MemoryRegion mr;
  mr.addr = dma::AddrOf(ptr);
  mr.length = len;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.access = access;
  rkey_to_lkey_[mr.rkey] = mr.lkey;
  auto [it, inserted] = by_lkey_.emplace(mr.lkey, mr);
  (void)inserted;
  return it->second;
}

bool ProtectionDomain::Deregister(std::uint32_t lkey) {
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return false;
  rkey_to_lkey_.erase(it->second.rkey);
  by_lkey_.erase(it);
  return true;
}

MemCheck ProtectionDomain::CheckLocal(std::uint64_t addr, std::size_t len,
                                      std::uint32_t lkey,
                                      std::uint32_t required_access) const {
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return MemCheck::kBadKey;
  const MemoryRegion& mr = it->second;
  if ((mr.access & required_access) != required_access) return MemCheck::kNoPermission;
  if (!mr.Contains(addr, len)) return MemCheck::kOutOfBounds;
  return MemCheck::kOk;
}

MemCheck ProtectionDomain::CheckRemote(std::uint64_t addr, std::size_t len,
                                       std::uint32_t rkey,
                                       std::uint32_t required_access) const {
  auto it = rkey_to_lkey_.find(rkey);
  if (it == rkey_to_lkey_.end()) return MemCheck::kBadKey;
  const MemoryRegion& mr = by_lkey_.at(it->second);
  if ((mr.access & required_access) != required_access) return MemCheck::kNoPermission;
  if (!mr.Contains(addr, len)) return MemCheck::kOutOfBounds;
  return MemCheck::kOk;
}

namespace dma {

void Copy(std::uint64_t dst, std::uint64_t src, std::size_t len) {
  std::memmove(reinterpret_cast<void*>(dst), reinterpret_cast<const void*>(src), len);
}

void Write(std::uint64_t dst, const void* src, std::size_t len) {
  std::memcpy(reinterpret_cast<void*>(dst), src, len);
}

void Read(void* dst, std::uint64_t src, std::size_t len) {
  std::memcpy(dst, reinterpret_cast<const void*>(src), len);
}

std::uint64_t ReadU64(std::uint64_t addr) {
  std::uint64_t v;
  Read(&v, addr, sizeof(v));
  return v;
}

void WriteU64(std::uint64_t addr, std::uint64_t value) {
  Write(addr, &value, sizeof(value));
}

std::uint32_t ReadU32(std::uint64_t addr) {
  std::uint32_t v;
  Read(&v, addr, sizeof(v));
  return v;
}

void WriteU32(std::uint64_t addr, std::uint32_t value) {
  Write(addr, &value, sizeof(value));
}

std::uint64_t AddrOf(const void* p) { return reinterpret_cast<std::uint64_t>(p); }

}  // namespace dma
}  // namespace redn::rnic
