#include "rnic/device.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/sharded.h"
#include "sim/transport.h"

namespace redn::rnic {

namespace {
// Wire payload of a READ request riding the packetized transport: the RETH
// (virtual address, rkey, length) beyond the per-packet header the
// transport already charges.
constexpr std::uint64_t kReadRequestBytes = 16;
}  // namespace

RnicDevice::RnicDevice(sim::Simulator& sim, NicConfig cfg, Calibration cal,
                       std::string name)
    : sim_(sim),
      cfg_(cfg),
      cal_(cal),
      name_(std::move(name)),
      pcie_(cal.pcie_gbps),
      membw_(cal.mem_gbps) {
  ports_.reserve(cfg_.ports);
  for (int p = 0; p < cfg_.ports; ++p) {
    ports_.emplace_back(cfg_.pus_per_port, cal_.link_gbps);
  }
  fabric_ports_.resize(cfg_.ports);
  next_pu_per_port_.assign(cfg_.ports, 0);
}

RnicDevice::~RnicDevice() = default;

CompletionQueue* RnicDevice::CreateCq() {
  cqs_.push_back(std::make_unique<CompletionQueue>(
      static_cast<std::uint32_t>(cqs_.size())));
  return cqs_.back().get();
}

QueuePair* RnicDevice::CreateQp(const QpConfig& qcfg) {
  assert(qcfg.send_cq && qcfg.recv_cq && "QPs require send and recv CQs");
  assert(qcfg.port >= 0 && qcfg.port < cfg_.ports);
  auto qp = std::make_unique<QueuePair>();
  qp->id = static_cast<std::uint32_t>(qps_.size());
  qp->device = this;
  qp->send_cq = qcfg.send_cq;
  qp->recv_cq = qcfg.recv_cq;
  qp->port = qcfg.port;
  qp->owner_pid = qcfg.owner_pid;
  if (qcfg.rate_ops_per_sec > 0) {
    qp->rate_gap = static_cast<sim::Nanos>(1e9 / qcfg.rate_ops_per_sec);
  }

  const std::size_t sq_bytes = qcfg.sq_depth * kWqeSize;
  const std::size_t rq_bytes = qcfg.rq_depth * kWqeSize;
  qp->sq_buf = std::make_unique<std::byte[]>(sq_bytes);
  qp->rq_buf = std::make_unique<std::byte[]>(rq_bytes);
  std::fill_n(qp->sq_buf.get(), sq_bytes, std::byte{0});
  std::fill_n(qp->rq_buf.get(), rq_bytes, std::byte{0});
  // The WQ rings are the "code region": registered so RDMA verbs (including
  // loopback CAS/WRITE/RECV-scatter) can rewrite posted WQEs.
  qp->sq_mr = pd_.Register(qp->sq_buf.get(), sq_bytes, kAccessAll);
  qp->rq_mr = pd_.Register(qp->rq_buf.get(), rq_bytes, kAccessAll);

  int& rr = next_pu_per_port_[qcfg.port];
  const int pu = rr;
  rr = (rr + 1) % cfg_.pus_per_port;
  qp->sq.Init(qp.get(), /*is_send=*/true, qp->sq_buf.get(), qcfg.sq_depth,
              qcfg.managed, qcfg.send_cq, pu);
  qp->rq.Init(qp.get(), /*is_send=*/false, qp->rq_buf.get(), qcfg.rq_depth,
              /*managed=*/false, qcfg.recv_cq, pu);
  // Watch managed SQ rings for tracked NIC-side stores: a verb that
  // rewrites a posted WQE (the RedN self-modification trick) refreshes the
  // slot's cached decode through NoteDmaWrite, so the next doorbell-order
  // fetch of a self-modified slot still hits. Non-managed rings stay
  // unwatched — their snapshots must go stale by design, and the
  // verify-at-fetch re-decodes recycled slots. RQ WQEs are read fresh at
  // every consumption, so RQ rings never join either.
  if (qcfg.managed) {
    ring_watches_.Watch(qp->sq.RingBase(), qp->sq.RingBytes(), &qp->sq);
  }
  qps_.push_back(std::move(qp));
  return qps_.back().get();
}

CompletionQueue* RnicDevice::GetCq(std::uint32_t id) {
  return id < cqs_.size() ? cqs_[id].get() : nullptr;
}

QueuePair* RnicDevice::GetQp(std::uint32_t id) {
  return id < qps_.size() ? qps_[id].get() : nullptr;
}

void RnicDevice::RingDoorbell(QueuePair* qp) {
  WorkQueue& wq = qp->sq;
  if (wq.managed()) return;  // managed queues advance only via ENABLE
  ++counters_.doorbells;
  const std::uint64_t new_limit = wq.posted;
  if (new_limit <= wq.exec_limit) return;
  const sim::Nanos delay = cal_.doorbell_mmio + cal_.first_fetch;
  sim_.After(delay, [this, &wq, new_limit] {
    if (wq.error) return;
    SnapshotRange(wq, new_limit);
    wq.exec_limit = std::max(wq.exec_limit, new_limit);
    Advance(wq);
  });
}

void RnicDevice::NotifyRecvPosted(QueuePair* qp) { ++qp->rq.posted; }

int RnicDevice::PollCq(CompletionQueue* cq, int max, Cqe* out) {
  return cq->Poll(sim_.now(), max, out);
}

void RnicDevice::ApplyEnable(WorkQueue& wq, std::uint64_t limit) {
  wq.exec_limit = std::max(wq.exec_limit, limit);
  // A non-managed queue snapshots up to the new limit, so later WQE
  // rewrites are invisible; a managed queue keeps fetching one-by-one at
  // execution time. Sharing this between the ENABLE verb and HostEnable
  // keeps host-driven and verb-driven enables agreeing.
  if (!wq.managed()) SnapshotRange(wq, wq.exec_limit);
  Advance(wq);
}

void RnicDevice::HostEnable(QueuePair* qp, std::uint64_t limit) {
  WorkQueue& wq = qp->sq;
  sim_.After(cal_.doorbell_mmio, [this, &wq, limit] {
    if (wq.error) return;
    ApplyEnable(wq, limit);
  });
}

void RnicDevice::SetRateLimit(QueuePair* qp, double ops_per_sec) {
  qp->rate_gap =
      ops_per_sec > 0 ? static_cast<sim::Nanos>(1e9 / ops_per_sec) : 0;
  // The next-slot cursor was computed under the old gap; keeping it would
  // delay the first WQE after a reconfigure (or a QP reuse) by the stale
  // schedule. Pacing restarts from the next issue instant.
  qp->next_rate_slot = 0;
}

void RnicDevice::AttachPort(int port, sim::Fabric& fabric,
                            const sim::LinkSpec& spec) {
  assert(port >= 0 && port < cfg_.ports);
  assert(fabric_ports_[port].fabric == nullptr && "port already attached");
  // Passing the device's event domain lets the fabric register cross-shard
  // link latencies as lookahead floors (and reject zero-latency cross-shard
  // pairs) the moment the topology is declared.
  fabric_ports_[port] = FabricAttach{
      &fabric,
      fabric.Attach(spec, name_ + ":" + std::to_string(port), &sim_)};
}

void RnicDevice::KillProcessResources(int pid) {
  for (auto& qp : qps_) {
    if (qp->owner_pid == pid && qp->alive) {
      qp->alive = false;
      qp->state = QpState::kError;
      qp->sq.error = true;
      qp->rq.error = true;
    }
  }
}

void RnicDevice::ReviveProcessResources(int pid) {
  for (auto& qp : qps_) {
    if (qp->owner_pid == pid && !qp->alive) {
      qp->alive = true;  // still kError + latched; ModifyQp re-arms
    }
  }
}

bool RnicDevice::HasLiveQps() const {
  for (const auto& qp : qps_) {
    if (qp->alive) return true;
  }
  return false;
}

void RnicDevice::SnapshotRange(WorkQueue& wq, std::uint64_t upto) {
  for (std::uint64_t i = wq.fetch_horizon; i < upto; ++i) {
    FetchSlot(wq, i);
  }
  wq.fetch_horizon = std::max(wq.fetch_horizon, upto);
}

void RnicDevice::FetchSlot(WorkQueue& wq, std::uint64_t idx) {
  const std::size_t s = wq.BufSlot(idx);
  WqeImage& img = wq.ImageAtB(s);
  const WqeView slot = wq.SlotAtB(s);
  // The verify is the correctness backbone: a cached decode is trusted only
  // if the live slot bytes still equal it, so even host-side raw-DMA WQE
  // patches (which bypass every tracked write path) are always honoured —
  // exactly the snapshot the pre-cache fetch would have taken.
  if (wq.DecodedAtB(s)) {
    if (slot.Matches(img)) {
      ++counters_.wqe_cache_hits;
      return;
    }
    ++counters_.wqe_cache_invalidations;  // untracked write beat the filter
  }
  img = slot.Load();
  wq.MarkDecodedAtB(s);
  ++counters_.wqe_cache_misses;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

void RnicDevice::Advance(WorkQueue& wq) {
  if (wq.busy || wq.waiting || wq.error || !wq.qp()->alive) return;
  if (wq.next_exec >= wq.exec_limit) return;
  wq.busy = true;
  const std::uint64_t idx = wq.next_exec;
  if (idx >= wq.fetch_horizon) {
    if (wq.managed()) {
      // Doorbell order: one serialized WQE fetch through the port's fetch
      // unit. The snapshot is taken when the DMA completes, so modifications
      // made before that point are honoured — the essence of self-modifying
      // chains.
      auto& port = ports_[wq.qp()->port];
      const sim::Nanos done =
          port.fetch_unit.Reserve(sim_.now(), cal_.managed_fetch);
      ++counters_.managed_fetches;
      sim_.At(done, [this, &wq, idx] {
        if (wq.error || !wq.qp()->alive) {
          wq.busy = false;
          return;
        }
        FetchSlot(wq, idx);
        wq.fetch_horizon = std::max(wq.fetch_horizon, idx + 1);
        Issue(wq, idx);
      });
      return;
    }
    // Non-managed queue executing beyond its snapshot (recycling a plain
    // queue): fetch now, batch-granular.
    SnapshotRange(wq, idx + cfg_.prefetch_batch);
  }
  Issue(wq, idx);
}

void RnicDevice::Issue(WorkQueue& wq, std::uint64_t idx) {
  // Precondition: wq.busy == true, snapshot available. Control verbs stage
  // the image in wq.inflight_img (stable while busy); data verbs copy it
  // straight into their pooled Payload shuttle instead — one 64-byte copy
  // per verb, and the closures below only carry pointers and an index.
  const WqeImage& img = wq.ImageAt(idx);
  QueuePair* qp = wq.qp();
  auto& port = ports_[qp->port];
  auto& pu = port.pus[wq.pu_index()];
  const Opcode op = img.opcode();

  switch (op) {
    case Opcode::kWait: {
      wq.inflight_img = img;  // copy: ring slot may be recycled
      CompletionQueue* cq = GetCq(img.target_id);
      if (cq == nullptr) {
        FailWr(wq, img, sim_.now(), WcStatus::kBadOpcode);
        return;
      }
      if (cq->hw_count() >= img.compare_add) {
        const sim::Nanos done = pu.Reserve(sim_.now(), cal_.pu_wait);
        sim_.At(done,
                [this, &wq, idx] { FinishControlVerb(wq, idx, wq.inflight_img); });
      } else {
        // Block; the CQ will wake us when the threshold is reached.
        wq.busy = false;
        wq.waiting = true;
        cq->AddWaiter(&wq, img.compare_add);
      }
      return;
    }
    case Opcode::kEnable: {
      wq.inflight_img = img;  // copy: ring slot may be recycled
      const sim::Nanos done = pu.Reserve(sim_.now(), cal_.pu_enable);
      sim_.At(done, [this, &wq, idx] {
        const WqeImage& img = wq.inflight_img;
        QueuePair* target = GetQp(img.target_id);
        if (target != nullptr && target->alive) {
          ApplyEnable(target->sq, img.compare_add);
        }
        FinishControlVerb(wq, idx, img);
      });
      return;
    }
    case Opcode::kRecv:
      FailWr(wq, img, sim_.now(), WcStatus::kBadOpcode);
      return;
    default: {
      if (static_cast<std::uint16_t>(op) >=
          static_cast<std::uint16_t>(Opcode::kOpcodeCount)) {
        FailWr(wq, img, sim_.now(), WcStatus::kBadOpcode);
        return;
      }
      // Data verb: pipelined issue through the PU, subject to the QP rate
      // limiter (§3.5 Isolation).
      sim::Nanos start = sim_.now();
      if (qp->rate_gap > 0) {
        start = std::max(start, qp->next_rate_slot);
        qp->next_rate_slot = start + qp->rate_gap;
      }
      const sim::Nanos service =
          wq.managed() ? cal_.pu_managed_issue : PuService(op);
      const sim::Nanos t_issue = pu.Reserve(start, service);
      Payload* pl = payloads_.Acquire();
      pl->img = img;  // copy: ring slot may be recycled
      pl->slot = idx;
      sim_.At(t_issue, [this, &wq, idx, pl] {
        if (wq.error || !wq.qp()->alive) {
          payloads_.Release(pl);
          wq.busy = false;
          return;
        }
        ++counters_.executed_by_opcode[static_cast<int>(pl->img.opcode())];
        ExecuteData(wq, idx, pl, sim_.now());
        // Pipelining: the next WQE may issue without waiting for this one's
        // completion (WQ order).
        wq.next_exec = idx + 1;
        wq.busy = false;
        Advance(wq);
      });
      return;
    }
  }
}

void RnicDevice::FinishControlVerb(WorkQueue& wq, std::uint64_t idx,
                                   const WqeImage& img) {
  if (wq.error || !wq.qp()->alive) {
    wq.busy = false;
    return;
  }
  ++counters_.executed_by_opcode[static_cast<int>(img.opcode())];
  wq.next_exec = idx + 1;
  wq.busy = false;
  if (img.signaled()) {
    CompleteWr(wq.qp(), wq.cq(), img, sim_.now(), WcStatus::kSuccess, 0);
  }
  Advance(wq);
}

void RnicDevice::ResolveSges(const WqeImage& img, SgeScratch& out) const {
  if (img.uses_sge_table()) {
    int count = static_cast<int>(img.length);
    if (count > kMaxSges) count = kMaxSges;
    out.count = count;
    dma::Read(out.entries.data(), img.local_addr, sizeof(Sge) * count);
  } else {
    out.count = 1;
    out.entries[0] = Sge{img.local_addr, img.length, img.lkey};
  }
}

bool RnicDevice::GatherLocal(WorkQueue& wq, std::uint64_t idx,
                             const WqeImage& img, std::vector<std::byte>& out,
                             WcStatus* err) {
  const ProtectionDomain& pd = wq.qp()->device->pd_;
  if (!img.uses_sge_table()) {
    // Single-element fast path: the slot's SgePlan remembers the validated
    // CheckLocal result, so a recycled ring lap re-gathering through the
    // same {addr, length, lkey} skips the protection re-walk. Bytes are
    // still read live — only the *translation* is cached.
    if (img.length == 0) return true;
    SgePlan& plan = wq.PlanAt(idx);
    if (!plan.Covers(img.local_addr, img.length, img.lkey, kLocalRead,
                     pd.epoch())) {
      const MemCheck mc = pd.CheckLocal(img.local_addr, img.length, img.lkey,
                                        kLocalRead, &wq.mr_cache);
      if (mc != MemCheck::kOk) {
        *err = WcStatus::kLocalAccessError;
        return false;
      }
      plan.sge = Sge{img.local_addr, img.length, img.lkey};
      plan.pd_epoch = pd.epoch();
      plan.access = kLocalRead;
    }
    dma::ReadAppend(out, img.local_addr, img.length);
    return true;
  }
  SgeScratch sges;
  ResolveSges(img, sges);
  for (const Sge& sge : sges) {
    if (sge.length == 0) continue;
    const MemCheck mc = pd.CheckLocal(sge.addr, sge.length, sge.lkey,
                                      kLocalRead, &wq.mr_cache);
    if (mc != MemCheck::kOk) {
      *err = WcStatus::kLocalAccessError;
      return false;
    }
    dma::ReadAppend(out, sge.addr, sge.length);
  }
  return true;
}

bool RnicDevice::ScatterList(WorkQueue& wq, std::uint64_t idx,
                             const WqeImage& img, const std::byte* data,
                             std::size_t len, WcStatus* err) {
  const ProtectionDomain& pd = wq.qp()->device->pd_;
  if (!img.uses_sge_table()) {
    // Single-element fast path, mirroring GatherLocal. The plan may have
    // been validated for reads (a WRITE gather) — the write right is proven
    // on first use and remembered alongside.
    if (len == 0) return true;
    if (img.length == 0) {
      *err = WcStatus::kLocalAccessError;  // payload larger than scatter list
      return false;
    }
    const std::size_t chunk = std::min<std::size_t>(img.length, len);
    SgePlan& plan = wq.PlanAt(idx);
    if (plan.Covers(img.local_addr, img.length, img.lkey, kLocalWrite,
                    pd.epoch())) {
      dma::Write(img.local_addr, data, chunk);
    } else {
      const MemCheck mc =
          pd.CheckLocal(img.local_addr, chunk, img.lkey, kLocalWrite,
                        &wq.mr_cache);
      if (mc != MemCheck::kOk) {
        *err = WcStatus::kLocalAccessError;
        return false;
      }
      if (plan.Covers(img.local_addr, img.length, img.lkey, 0, pd.epoch())) {
        plan.access |= kLocalWrite;  // same element, new right proven
      } else if (chunk == img.length) {
        // Only a full-length check proves the whole element's bounds.
        plan.sge = Sge{img.local_addr, img.length, img.lkey};
        plan.pd_epoch = pd.epoch();
        plan.access = kLocalWrite;
      }
      dma::Write(img.local_addr, data, chunk);
    }
    NoteDmaWrite(img.local_addr, chunk);
    if (chunk < len) {
      *err = WcStatus::kLocalAccessError;  // payload larger than scatter list
      return false;
    }
    return true;
  }
  std::size_t consumed = 0;
  SgeScratch sges;
  ResolveSges(img, sges);
  for (const Sge& sge : sges) {
    if (consumed >= len) break;
    const std::size_t chunk =
        std::min<std::size_t>(sge.length, len - consumed);
    if (chunk == 0) continue;
    const MemCheck mc =
        pd.CheckLocal(sge.addr, chunk, sge.lkey, kLocalWrite, &wq.mr_cache);
    if (mc != MemCheck::kOk) {
      *err = WcStatus::kLocalAccessError;
      return false;
    }
    dma::Write(sge.addr, data + consumed, chunk);
    NoteDmaWrite(sge.addr, chunk);
    consumed += chunk;
  }
  if (consumed < len) {
    // Payload larger than the scatter list.
    *err = WcStatus::kLocalAccessError;
    return false;
  }
  return true;
}

void RnicDevice::ExecuteData(WorkQueue& wq, std::uint64_t idx, Payload* pl,
                             sim::Nanos t_issue) {
  const WqeImage& img = pl->img;
  QueuePair* qp = wq.qp();
  QueuePair* peer = qp->peer;
  // Fabric-routed QPs derive wire latency from the shared links; everything
  // else keeps the per-QP constant (loopback/compat path — bit-identical to
  // the pre-fabric model).
  const bool via_fabric = qp->via_fabric && peer != nullptr;
  const sim::Nanos ow = via_fabric ? FabricOneWay(qp, peer) : qp->net_one_way;
  const bool wire = via_fabric || ow > 0;
  const Opcode op = img.opcode();
  auto& port = ports_[qp->port];

  switch (op) {
    case Opcode::kNoop: {
      // NOP executes inside the NIC: WAIT verbs observe its completion
      // immediately (Fig 8's cheap completion ordering), but on a
      // wire-connected QP the host-visible CQE still pays the RC ack round
      // trip (Fig 7's remote-vs-local NOOP delta).
      CompleteWr(qp, qp->send_cq, img, t_issue + cal_.exec_noop,
                 WcStatus::kSuccess, 0,
                 /*force_cqe=*/false, /*host_extra=*/wire ? 2 * ow : 0);
      payloads_.Release(pl);
      return;
    }
    case Opcode::kWrite:
    case Opcode::kWriteImm:
    case Opcode::kSend:
    case Opcode::kSendImm: {
      // A cross-shard peer's alive flag is the responder shard's state; the
      // check runs there (SendAcrossFabric) and comes back as a NAK.
      if (peer == nullptr || (!CrossShard(peer) && !peer->alive)) {
        FailWr(wq, img, t_issue, WcStatus::kRemoteAccessError);
        payloads_.Release(pl);
        return;
      }
      WcStatus err = WcStatus::kSuccess;
      if (!GatherLocal(wq, idx, img, pl->bytes, &err)) {
        FailWr(wq, img, t_issue, err);
        payloads_.Release(pl);
        return;
      }
      const std::uint64_t len = pl->bytes.size();
      const sim::Nanos pcie_done = pcie_.Reserve(t_issue, len);
      const sim::Nanos mem_done = membw_.Reserve(t_issue, len);
      if (via_fabric && qp->transport != nullptr) {
        const sim::Nanos ready = std::max(
            {t_issue + ExecCost(op) + HostDataDelay(len), pcie_done, mem_done});
        SendOverTransport(wq, qp, peer, pl, op, ready);
        return;
      }
      sim::Nanos t_arrive;
      if (via_fabric) {
        // Egress waits for the host-side DMA, then the payload queues
        // through the shared links (src TX, then dst RX — the congested
        // server port under N-client load).
        const sim::Nanos ready = std::max(
            {t_issue + ExecCost(op) + HostDataDelay(len), pcie_done, mem_done});
        if (CrossShard(peer)) {
          SendAcrossFabric(wq, qp, peer, pl, op, ready);
          return;
        }
        t_arrive = FabricDeliver(qp, peer, ready, len);
      } else {
        const sim::Nanos link_done =
            wire ? port.link.Reserve(t_issue, len) : t_issue;
        t_arrive = std::max({t_issue + ExecCost(op) +
                                 DataDelay(len, wire ? &port.link : nullptr),
                             pcie_done, mem_done, link_done}) +
                   ow;
      }
      const sim::Nanos ack = wire ? ow + cal_.remote_ack_extra : 0;
      sim_.At(t_arrive, [this, &wq, qp, peer, pl, op, ack] {
        const WqeImage& img = pl->img;
        const std::uint64_t len = pl->bytes.size();
        if (wq.error) {  // QP flushed after an earlier failure
          payloads_.Release(pl);
          return;
        }
        WcStatus st = WcStatus::kSuccess;
        if (!peer->alive) {
          st = WcStatus::kRemoteAccessError;
        } else if (op == Opcode::kWrite || op == Opcode::kWriteImm) {
          st = peer->device->AcceptWrite(peer, img.remote_addr, img.rkey,
                                         pl->bytes.data(), len);
          if (st == WcStatus::kSuccess && op == Opcode::kWriteImm) {
            st = peer->device->AcceptSend(peer, nullptr, 0, img.imm,
                                          /*has_imm=*/true, len);
          }
        } else {
          st = peer->device->AcceptSend(
              peer, pl->bytes.data(), len, img.imm,
              /*has_imm=*/op == Opcode::kSendImm, len);
        }
        if (!qp->alive) {
          payloads_.Release(pl);
          return;
        }
        if (st != WcStatus::kSuccess && st != WcStatus::kRnrError) {
          // Remote failure: the QP enters error state immediately at the
          // responder (NAK); later-arriving WRs of this QP are flushed.
          wq.error = true;
          ++counters_.error_completions;
        }
        CompleteWr(qp, qp->send_cq, img, sim_.now() + ack, st,
                   static_cast<std::uint32_t>(len));
        payloads_.Release(pl);
      });
      return;
    }
    case Opcode::kRead: {
      if (peer == nullptr || (!CrossShard(peer) && !peer->alive)) {
        FailWr(wq, img, t_issue, WcStatus::kRemoteAccessError);
        payloads_.Release(pl);
        return;
      }
      if (via_fabric && qp->transport != nullptr) {
        ReadOverTransport(wq, qp, peer, pl, t_issue, ow);
        return;
      }
      if (via_fabric && CrossShard(peer)) {
        ReadAcrossFabric(wq, qp, peer, pl, t_issue, ow);
        return;
      }
      const sim::Nanos t_req = t_issue + ow;
      sim_.At(t_req, [this, &wq, qp, peer, pl, ow, wire] {
        const WqeImage& img = pl->img;
        if (!qp->alive) {  // requester died: flush silently
          payloads_.Release(pl);
          return;
        }
        if (!peer->alive) {
          // Target died mid-flight (the RunFailover window): the request is
          // NAKed instead of silently dropped — the requester must not hang.
          FailWr(wq, img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        RnicDevice* rdev = peer->device;
        // Remote read length: with a scatter table, the WQE length field
        // holds the SGE count, so the byte count is the sum of the entries.
        std::uint64_t len = img.length;
        if (img.uses_sge_table()) {
          SgeScratch sges;
          ResolveSges(img, sges);
          len = 0;
          for (const Sge& sge : sges) len += sge.length;
        }
        const MemCheck mc =
            rdev->pd_.CheckRemote(img.remote_addr, len, img.rkey, kRemoteRead,
                                  &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          FailWr(wq, img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        // Data is captured at the remote memory *now* (request arrival).
        if (len > 0) dma::ReadAppend(pl->bytes, img.remote_addr, len);
        const sim::Nanos t_req_now = sim_.now();
        sim::Nanos t_done;
        if (qp->via_fabric) {
          // The response DMA happens at the responder: its PCIe/memory are
          // what the transfer occupies, so N-client read scale-out contends
          // on the server's host interface, not each requester's own.
          const sim::Nanos pcie_done = rdev->pcie_.Reserve(t_req_now, len);
          const sim::Nanos mem_done = rdev->membw_.Reserve(t_req_now, len);
          const sim::Nanos ready = std::max(
              {t_req_now + ExecCost(Opcode::kRead) + rdev->HostDataDelay(len),
               pcie_done, mem_done});
          // The response payload rides the responder's TX link back through
          // the fabric, then pays the requester-side ack turnaround.
          t_done = FabricDeliver(peer, qp, ready, len) + cal_.remote_ack_extra;
        } else {
          sim::BandwidthResource* rlink =
              wire ? &rdev->ports_[peer->port].link : nullptr;
          const sim::Nanos link_done =
              wire ? rlink->Reserve(t_req_now, len) : t_req_now;
          const sim::Nanos pcie_done = pcie_.Reserve(t_req_now, len);
          const sim::Nanos mem_done = membw_.Reserve(t_req_now, len);
          t_done = std::max({t_req_now + ExecCost(Opcode::kRead) +
                                 DataDelay(len, rlink),
                             link_done, pcie_done, mem_done}) +
                   (wire ? ow + cal_.remote_ack_extra : 0);
        }
        sim_.At(t_done, [this, &wq, qp, pl] {
          if (!qp->alive) {
            payloads_.Release(pl);
            return;
          }
          WcStatus st = WcStatus::kSuccess;
          if (!ScatterList(wq, pl->slot, pl->img, pl->bytes.data(),
                           pl->bytes.size(), &st)) {
            FailWr(wq, pl->img, sim_.now(), st);
            payloads_.Release(pl);
            return;
          }
          CompleteWr(qp, qp->send_cq, pl->img, sim_.now(), WcStatus::kSuccess,
                     static_cast<std::uint32_t>(pl->bytes.size()));
          payloads_.Release(pl);
        });
      });
      return;
    }
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd:
    case Opcode::kCalcMax:
    case Opcode::kCalcMin: {
      if (peer == nullptr || (!CrossShard(peer) && !peer->alive)) {
        FailWr(wq, img, t_issue, WcStatus::kRemoteAccessError);
        payloads_.Release(pl);
        return;
      }
      // If the peer dies before the RMW event runs, the completion below
      // must observe that the op never executed (rmw_done stays false) and
      // flush instead of reporting a success that touched nothing.
      pl->scratch = 0;
      pl->rmw_done = false;
      if (via_fabric && CrossShard(peer)) {
        AtomicAcrossFabric(wq, qp, peer, pl, op, t_issue, ow);
        return;
      }
      const sim::Nanos t_req = t_issue + ow;
      sim_.At(t_req, [this, &wq, qp, peer, pl, op, ow, wire] {
        const WqeImage& img = pl->img;
        if (!qp->alive) {  // requester died: flush silently
          payloads_.Release(pl);
          return;
        }
        if (!peer->alive) {
          FailWr(wq, img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        RnicDevice* rdev = peer->device;
        const MemCheck mc = rdev->pd_.CheckRemote(
            img.remote_addr, 8, img.rkey, kRemoteAtomic, &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          FailWr(wq, img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        if (img.remote_addr % 8 != 0) {
          FailWr(wq, img, sim_.now() + ow, WcStatus::kAlignmentError);
          payloads_.Release(pl);
          return;
        }
        // True atomics (CAS/ADD) serialize on the responder port's atomic
        // unit (PCIe concurrency control) — this is what limits CAS to
        // 8.4M/s. Vendor calc verbs (MAX/MIN) are not atomic RMWs on the
        // host bus and run at copy-verb rates (Table 3: MAX 63M/s).
        const bool true_atomic =
            op == Opcode::kCompSwap || op == Opcode::kFetchAdd;
        auto& unit = rdev->ports_[peer->port].atomic_unit;
        const sim::Nanos unit_done =
            true_atomic
                ? unit.Reserve(sim_.now(), rdev->cal_.atomic_unit_service)
                : sim_.now() + rdev->cal_.atomic_unit_service;
        // The RMW event below never releases `pl`; the completion event at
        // t_done >= unit_done (scheduled after it, so also later in FIFO
        // order at equal times) owns the release.
        sim_.At(unit_done, [pl, op, peer] {
          if (!peer->alive) return;  // died mid-flight: memory stays untouched
          pl->rmw_done = true;
          const WqeImage& img = pl->img;
          const std::uint64_t cur = dma::ReadU64(img.remote_addr);
          pl->scratch = cur;
          std::uint64_t next = cur;
          switch (op) {
            case Opcode::kCompSwap:
              if (cur == img.compare_add) next = img.swap;
              break;
            case Opcode::kFetchAdd:
              next = cur + img.compare_add;
              break;
            case Opcode::kCalcMax:
              next = std::max(cur, img.compare_add);
              break;
            case Opcode::kCalcMin:
              next = std::min(cur, img.compare_add);
              break;
            default:
              break;
          }
          dma::WriteU64(img.remote_addr, next);
          // The RedN conditional: atomics landing on WQE fields are the
          // canonical self-modification, so the write-through refresh here
          // is what keeps recycled chain rings hitting the cache.
          peer->device->NoteDmaWrite(img.remote_addr, 8);
        });
        const sim::Nanos t_done =
            unit_done + ExecCost(op) + (wire ? ow + cal_.remote_ack_extra : 0);
        sim_.At(t_done, [this, &wq, qp, pl] {
          if (!qp->alive) {
            payloads_.Release(pl);
            return;
          }
          if (!pl->rmw_done) {
            // The target died between the protection check and the RMW: the
            // op never executed, so a success completion would lie about
            // remote memory. NAK and flush instead.
            FailWr(wq, pl->img, sim_.now(), WcStatus::kRemoteAccessError);
            payloads_.Release(pl);
            return;
          }
          // Return the old value into the local sge, if one was given.
          if (pl->img.local_addr != 0) {
            WcStatus st = WcStatus::kSuccess;
            const std::byte* bytes =
                reinterpret_cast<const std::byte*>(&pl->scratch);
            WqeImage resp = pl->img;
            resp.length = 8;
            resp.flags &= ~kFlagSgeTable;
            if (!ScatterList(wq, pl->slot, resp, bytes, 8, &st)) {
              FailWr(wq, pl->img, sim_.now(), st);
              payloads_.Release(pl);
              return;
            }
          }
          CompleteWr(qp, qp->send_cq, pl->img, sim_.now(), WcStatus::kSuccess,
                     8);
          payloads_.Release(pl);
        });
      });
      return;
    }
    default:
      FailWr(wq, img, t_issue, WcStatus::kBadOpcode);
      payloads_.Release(pl);
      return;
  }
}

void RnicDevice::SendOverTransport(WorkQueue& wq, QueuePair* qp,
                                   QueuePair* peer, Payload* pl, Opcode op,
                                   sim::Nanos ready) {
  pl->st = WcStatus::kSuccess;
  pl->flushed = false;
  const std::uint64_t rg = qp->reset_gen;
  sim::Transport::MessageOps ops;
  // Ops that consume a RECV probe the responder's RQ before delivery: an
  // empty RQ (or an injected stall) answers RNR NAK and the transport
  // retries after backoff instead of completing with kRnrError. Only wired
  // when the transport's RNR engine is on — with rnr_retry_count == 0 the
  // probe is never consulted and AcceptSend keeps the legacy drop.
  if (op == Opcode::kSend || op == Opcode::kSendImm || op == Opcode::kWriteImm) {
    ops.rnr_probe = [this, peer](sim::Nanos) {
      if (!peer->alive) return true;  // let delivery surface the real error
      if (peer->stall_recvs > 0) {
        --peer->stall_recvs;
        ++peer->device->counters_.rnr_naks;
        return false;
      }
      if (peer->rq.consumed >= peer->rq.posted) {
        ++peer->device->counters_.rnr_naks;
        return false;
      }
      return true;
    };
  }
  if (CrossShard(peer)) {
    // Split-flow callback layout: on_deliver runs on the responder's shard
    // and may only touch responder-side state plus pl fields the requester
    // reads strictly later (pl->st — the ACK crossing orders it); every
    // requester-side outcome (wq.error check + latch, CQE, release) moves
    // to on_acked/on_failed on the requester's shard. One semantic shift vs
    // the same-shard path, cross-shard only: delivered bytes land in the
    // responder's memory even if the requester's WQ flushed mid-flight —
    // the responder cannot observe that, which is what a real NIC does too.
    ops.on_deliver =
        [peer, pl, op](sim::Nanos) {
          const std::uint64_t len = pl->bytes.size();
          WcStatus st = WcStatus::kSuccess;
          if (!peer->alive) {
            st = WcStatus::kRemoteAccessError;
          } else if (op == Opcode::kWrite || op == Opcode::kWriteImm) {
            st = peer->device->AcceptWrite(peer, pl->img.remote_addr,
                                           pl->img.rkey, pl->bytes.data(),
                                           len);
            if (st == WcStatus::kSuccess && op == Opcode::kWriteImm) {
              st = peer->device->AcceptSend(peer, nullptr, 0, pl->img.imm,
                                            /*has_imm=*/true, len);
            }
          } else {
            st = peer->device->AcceptSend(peer, pl->bytes.data(), len,
                                          pl->img.imm,
                                          /*has_imm=*/op == Opcode::kSendImm,
                                          len);
          }
          pl->st = st;
        };
    ops.on_acked =
        [this, &wq, qp, pl](sim::Nanos) {
          if (wq.error || !qp->alive) {
            payloads_.Release(pl);
            return;
          }
          if (pl->st != WcStatus::kSuccess && pl->st != WcStatus::kRnrError) {
            // Remote failure surfaces at the ACK (the NAK's arrival) on this
            // shard; later WRs of this QP flush from here on.
            wq.error = true;
            ++counters_.error_completions;
          }
          CompleteWr(qp, qp->send_cq, pl->img,
                     sim_.now() + cal_.remote_ack_extra, pl->st,
                     static_cast<std::uint32_t>(pl->bytes.size()));
          payloads_.Release(pl);
        };
    ops.on_failed =
        [this, qp, pl, rg](sim::Nanos t, sim::MsgFailure why) {
          if (!qp->alive || qp->state == QpState::kReset ||
              qp->reset_gen != rg) {
            payloads_.Release(pl);
            return;
          }
          FailQpOverTransport(qp, pl->img, t, StatusOf(why));
          payloads_.Release(pl);
        };
    qp->transport->SendMessageEx(qp->flow, ready, pl->bytes.size(),
                                 std::move(ops));
    return;
  }
  ops.on_deliver =
      [this, &wq, qp, peer, pl, op](sim::Nanos) {
        if (wq.error) {  // QP flushed after an earlier failure: no CQE
          pl->flushed = true;
          return;
        }
        const std::uint64_t len = pl->bytes.size();
        WcStatus st = WcStatus::kSuccess;
        if (!peer->alive) {
          st = WcStatus::kRemoteAccessError;
        } else if (op == Opcode::kWrite || op == Opcode::kWriteImm) {
          st = peer->device->AcceptWrite(peer, pl->img.remote_addr,
                                         pl->img.rkey, pl->bytes.data(), len);
          if (st == WcStatus::kSuccess && op == Opcode::kWriteImm) {
            st = peer->device->AcceptSend(peer, nullptr, 0, pl->img.imm,
                                          /*has_imm=*/true, len);
          }
        } else {
          st = peer->device->AcceptSend(peer, pl->bytes.data(), len,
                                        pl->img.imm,
                                        /*has_imm=*/op == Opcode::kSendImm,
                                        len);
        }
        if (!qp->alive) {
          pl->flushed = true;
          return;
        }
        if (st != WcStatus::kSuccess && st != WcStatus::kRnrError) {
          wq.error = true;
          ++counters_.error_completions;
        }
        pl->st = st;
      };
  ops.on_acked =
      [this, qp, pl](sim::Nanos) {
        if (pl->flushed || !qp->alive) {
          payloads_.Release(pl);
          return;
        }
        CompleteWr(qp, qp->send_cq, pl->img,
                   sim_.now() + cal_.remote_ack_extra, pl->st,
                   static_cast<std::uint32_t>(pl->bytes.size()));
        payloads_.Release(pl);
      };
  ops.on_failed =
      [this, qp, pl, rg](sim::Nanos t, sim::MsgFailure why) {
        // kReset: ModifyQp is tearing the flow down under us — a reset
        // discards in-flight work silently instead of erroring the QP it
        // just cleared. Same-foreign-domain split flows flush at the fence
        // echo, after the re-arm: the reset_gen mismatch covers them.
        if (pl->flushed || !qp->alive || qp->state == QpState::kReset ||
            qp->reset_gen != rg) {
          payloads_.Release(pl);
          return;
        }
        FailQpOverTransport(qp, pl->img, t, StatusOf(why));
        payloads_.Release(pl);
      };
  qp->transport->SendMessageEx(qp->flow, ready, pl->bytes.size(),
                               std::move(ops));
}

void RnicDevice::ReadOverTransport(WorkQueue& wq, QueuePair* qp,
                                   QueuePair* peer, Payload* pl,
                                   sim::Nanos t_issue, sim::Nanos ow) {
  if (CrossShard(peer)) {
    ReadOverTransportSplit(wq, qp, peer, pl, t_issue, ow);
    return;
  }
  // Protection and dead-peer NAKs return as constant-latency control
  // messages (`ow`): they are tiny, generated unconditionally by the
  // responder, and the requester must never hang on them — so they bypass
  // the loss injector, while the request and the data-bearing response ride
  // the lossy packetized flows.
  const std::uint64_t rg = qp->reset_gen;
  sim::Transport::MessageOps req;
  req.on_deliver =
      [this, &wq, qp, peer, pl, ow, rg](sim::Nanos) {
        if (!qp->alive) {  // requester died: flush silently
          payloads_.Release(pl);
          return;
        }
        const std::uint64_t prg = peer->reset_gen;
        if (!peer->alive) {
          // Target died before the (possibly retransmitted) request landed:
          // NAK instead of silently dropping — the requester must not hang
          // even when the loss injector ate the original transmission.
          FailWr(wq, pl->img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        RnicDevice* rdev = peer->device;
        const WqeImage& img = pl->img;
        std::uint64_t len = img.length;
        if (img.uses_sge_table()) {
          SgeScratch sges;
          ResolveSges(img, sges);
          len = 0;
          for (const Sge& sge : sges) len += sge.length;
        }
        const MemCheck mc =
            rdev->pd_.CheckRemote(img.remote_addr, len, img.rkey, kRemoteRead,
                                  &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          FailWr(wq, img, sim_.now() + ow, WcStatus::kRemoteAccessError);
          payloads_.Release(pl);
          return;
        }
        // Data captured at the remote memory now (request delivery).
        if (len > 0) dma::ReadAppend(pl->bytes, img.remote_addr, len);
        const sim::Nanos now = sim_.now();
        const sim::Nanos pcie_done = rdev->pcie_.Reserve(now, len);
        const sim::Nanos mem_done = rdev->membw_.Reserve(now, len);
        const sim::Nanos ready = std::max(
            {now + ExecCost(Opcode::kRead) + rdev->HostDataDelay(len),
             pcie_done, mem_done});
        // The response payload rides the responder's flow back; READs
        // complete at in-order data delivery (no extra ack leg).
        sim::Transport::MessageOps resp;
        resp.on_deliver =
            [this, &wq, qp, pl](sim::Nanos) {
              if (!qp->alive) {
                payloads_.Release(pl);
                return;
              }
              WcStatus st = WcStatus::kSuccess;
              if (!ScatterList(wq, pl->slot, pl->img, pl->bytes.data(),
                               pl->bytes.size(), &st)) {
                FailWr(wq, pl->img, sim_.now(), st);
                payloads_.Release(pl);
                return;
              }
              CompleteWr(qp, qp->send_cq, pl->img,
                         sim_.now() + cal_.remote_ack_extra,
                         WcStatus::kSuccess,
                         static_cast<std::uint32_t>(pl->bytes.size()));
              payloads_.Release(pl);
            };
        resp.on_failed =
            [this, qp, peer, pl, rg, prg](sim::Nanos t, sim::MsgFailure why) {
              // The responder's flow died under the response: the READ must
              // still resolve on the requester CQ, and both ends of the
              // connection are now broken — except a responder mid-reset,
              // whose flow is being re-armed (not dying) and must stay
              // clear of the error latches the reset just dropped.
              if (peer->alive && peer->state != QpState::kReset &&
                  peer->reset_gen == prg) {
                peer->device->TransitionToError(peer);
              }
              if (!qp->alive || qp->state == QpState::kReset ||
                  qp->reset_gen != rg) {
                payloads_.Release(pl);
                return;
              }
              FailQpOverTransport(qp, pl->img, t, StatusOf(why));
              payloads_.Release(pl);
            };
        peer->transport->SendMessageEx(peer->flow, ready, len,
                                       std::move(resp));
      };
  req.on_failed =
      [this, qp, pl, rg](sim::Nanos t, sim::MsgFailure why) {
        // A lost READ request exhausting its retries surfaces on the
        // requester CQ instead of waiting forever on the response flow. A
        // requester mid-reset flushes silently (see SendOverTransport).
        if (!qp->alive || qp->state == QpState::kReset ||
            qp->reset_gen != rg) {
          payloads_.Release(pl);
          return;
        }
        FailQpOverTransport(qp, pl->img, t, StatusOf(why));
        payloads_.Release(pl);
      };
  qp->transport->SendMessageEx(qp->flow, t_issue, kReadRequestBytes,
                               std::move(req));
}

namespace {
// Cross-shard READ bundle. The requester's Payload stays owned by the
// request leg (released at its ACK or failure, always on the requester's
// shard); everything the other legs need rides here instead. `bytes` is
// written by the responder before the response send and read by the
// requester at response delivery — the mailbox crossing orders the two.
// `resolved` collapses the racing resolution paths (response delivery, NAK
// hop, response-flow failure hop, request-flow failure) to exactly one CQE;
// it is only ever touched on the requester's shard.
struct ReadCtx {
  WqeImage img{};
  std::uint64_t slot = 0;
  std::uint64_t len = 0;
  std::vector<std::byte> bytes;
  bool resolved = false;
};
}  // namespace

void RnicDevice::ReadOverTransportSplit(WorkQueue& wq, QueuePair* qp,
                                        QueuePair* peer, Payload* pl,
                                        sim::Nanos t_issue, sim::Nanos ow) {
  auto ctx = std::make_shared<ReadCtx>();
  ctx->img = pl->img;
  ctx->slot = pl->slot;
  // Resolve the SGE table at issue, on the requester's shard: the table
  // lives in requester memory, and reading it from the responder's shard
  // (where the same-shard path resolves it, at request arrival) would race
  // with requester-side chain rewrites.
  ctx->len = ctx->img.length;
  if (ctx->img.uses_sge_table()) {
    SgeScratch sges;
    ResolveSges(ctx->img, sges);
    ctx->len = 0;
    for (const Sge& sge : sges) ctx->len += sge.length;
  }
  const std::uint64_t rg = qp->reset_gen;
  const int req_shard = sim_.shard();
  sim::Transport::MessageOps req;
  req.on_deliver =
      [this, &wq, qp, peer, ctx, ow, rg, req_shard](sim::Nanos) {
        // Runs on the responder's shard: liveness, protection, DMA capture,
        // and the response send are all local; requester-side outcomes hop
        // back through the mailbox (ow is exactly the pair's registered
        // lookahead floor, so now + ow is always a legal crossing).
        RnicDevice* rdev = peer->device;
        sim::Simulator& dsim = rdev->sim_;
        const sim::Nanos dnow = dsim.now();
        if (!peer->alive) {
          // NAK: constant-latency control message (see the same-shard path).
          dsim.SendTo(req_shard, dnow + ow, [this, &wq, qp, ctx] {
            if (ctx->resolved || !qp->alive) return;
            ctx->resolved = true;
            FailWr(wq, ctx->img, sim_.now(), WcStatus::kRemoteAccessError);
          });
          return;
        }
        const std::uint64_t prg = peer->reset_gen;
        const WqeImage& img = ctx->img;
        const std::uint64_t len = ctx->len;
        const MemCheck mc =
            rdev->pd_.CheckRemote(img.remote_addr, len, img.rkey, kRemoteRead,
                                  &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          dsim.SendTo(req_shard, dnow + ow, [this, &wq, qp, ctx] {
            if (ctx->resolved || !qp->alive) return;
            ctx->resolved = true;
            FailWr(wq, ctx->img, sim_.now(), WcStatus::kRemoteAccessError);
          });
          return;
        }
        // Data captured at the remote memory now (request delivery).
        if (len > 0) dma::ReadAppend(ctx->bytes, img.remote_addr, len);
        const sim::Nanos pcie_done = rdev->pcie_.Reserve(dnow, len);
        const sim::Nanos mem_done = rdev->membw_.Reserve(dnow, len);
        const sim::Nanos ready = std::max(
            {dnow + ExecCost(Opcode::kRead) + rdev->HostDataDelay(len),
             pcie_done, mem_done});
        sim::Transport::MessageOps resp;
        resp.on_deliver =
            [this, &wq, qp, ctx](sim::Nanos) {
              // Back on the requester's shard.
              if (ctx->resolved || !qp->alive) return;
              ctx->resolved = true;
              WcStatus st = WcStatus::kSuccess;
              if (!ScatterList(wq, ctx->slot, ctx->img, ctx->bytes.data(),
                               ctx->bytes.size(), &st)) {
                FailWr(wq, ctx->img, sim_.now(), st);
                return;
              }
              CompleteWr(qp, qp->send_cq, ctx->img,
                         sim_.now() + cal_.remote_ack_extra,
                         WcStatus::kSuccess,
                         static_cast<std::uint32_t>(ctx->bytes.size()));
            };
        resp.on_failed =
            [this, qp, peer, ctx, ow, rg, prg, req_shard](
                sim::Nanos t, sim::MsgFailure why) {
              // Fires on the responder's shard (sender half of the response
              // flow): error the responder locally, hop the requester CQE.
              if (peer->alive && peer->state != QpState::kReset &&
                  peer->reset_gen == prg) {
                peer->device->TransitionToError(peer);
              }
              peer->device->sim_.SendTo(
                  req_shard, t + ow, [this, qp, ctx, why, rg] {
                    if (ctx->resolved || !qp->alive ||
                        qp->state == QpState::kReset || qp->reset_gen != rg) {
                      return;
                    }
                    ctx->resolved = true;
                    FailQpOverTransport(qp, ctx->img, sim_.now(),
                                        StatusOf(why));
                  });
            };
        peer->transport->SendMessageEx(peer->flow, ready, len,
                                       std::move(resp));
      };
  req.on_acked =
      [this, pl](sim::Nanos) { payloads_.Release(pl); };
  req.on_failed =
      [this, qp, pl, ctx, rg](sim::Nanos t, sim::MsgFailure why) {
        payloads_.Release(pl);
        if (ctx->resolved || !qp->alive || qp->state == QpState::kReset ||
            qp->reset_gen != rg) {
          return;
        }
        ctx->resolved = true;
        FailQpOverTransport(qp, ctx->img, t, StatusOf(why));
      };
  qp->transport->SendMessageEx(qp->flow, t_issue, kReadRequestBytes,
                               std::move(req));
}

WcStatus RnicDevice::AcceptWrite(QueuePair* dst_qp, std::uint64_t addr,
                                 std::uint32_t rkey, const std::byte* data,
                                 std::size_t len) {
  // Defence in depth: callers check liveness at arrival time, but no path
  // may ever land bytes in a dead process's memory (its pages are being
  // reclaimed — see KillProcessResources).
  if (!dst_qp->alive) return WcStatus::kRemoteAccessError;
  const MemCheck mc = pd_.CheckRemote(addr, len, rkey, kRemoteWrite,
                                      &dst_qp->remote_mr_cache);
  if (mc != MemCheck::kOk) return WcStatus::kRemoteAccessError;
  if (len > 0) {
    dma::Write(addr, data, len);
    NoteDmaWrite(addr, len);
  }
  return WcStatus::kSuccess;
}

WcStatus RnicDevice::AcceptSend(QueuePair* dst_qp, const std::byte* data,
                                std::size_t len, std::uint32_t imm,
                                bool has_imm, std::size_t reported_len) {
  if (!dst_qp->alive) return WcStatus::kRemoteAccessError;
  WorkQueue& rq = dst_qp->rq;
  if (rq.consumed >= rq.posted) {
    ++counters_.rnr_drops;
    return WcStatus::kRnrError;
  }
  const std::uint64_t ridx = rq.consumed++;
  // RQ WQEs are read at consumption time: current memory contents.
  const WqeImage rimg = rq.Slot(ridx).Load();
  WcStatus st = WcStatus::kSuccess;
  int sges_written = 0;
  if (data != nullptr && len > 0) {
    if (!ScatterList(rq, ridx, rimg, data, len, &st)) {
      // fallthrough: deliver an error CQE for the RECV
    } else {
      sges_written = rimg.uses_sge_table() ? static_cast<int>(rimg.length) : 1;
    }
  }
  Cqe cqe;
  cqe.qp_id = dst_qp->id;
  cqe.wr_id = rimg.wr_id();
  cqe.opcode = Opcode::kRecv;
  cqe.status = st;
  cqe.byte_len = static_cast<std::uint32_t>(reported_len);
  cqe.imm = imm;
  cqe.has_imm = has_imm;
  const sim::Nanos t_hw = sim_.now() + cal_.recv_processing +
                          sges_written * cal_.recv_scatter_per_sge +
                          cal_.cq_internal;
  DeliverCqe(dst_qp->recv_cq, cqe, t_hw);
  return st;
}

void RnicDevice::CompleteWr(QueuePair* qp, CompletionQueue* cq,
                            const WqeImage& img, sim::Nanos t_done,
                            WcStatus status, std::uint32_t byte_len,
                            bool force_cqe, sim::Nanos host_extra) {
  if (status == WcStatus::kSuccess && !img.signaled() && !force_cqe) {
    // Unsignaled: no CQE, and — critically for RedN's `break` — no bump of
    // the CQ count that WAIT verbs observe.
    return;
  }
  Cqe cqe;
  cqe.qp_id = qp->id;
  cqe.wr_id = img.wr_id();
  cqe.opcode = img.opcode();
  cqe.status = status;
  cqe.byte_len = byte_len;
  DeliverCqe(cq, cqe, t_done + cal_.cq_internal, host_extra);
}

void RnicDevice::DeliverCqe(CompletionQueue* cq, const Cqe& cqe,
                            sim::Nanos t_hw, sim::Nanos host_extra) {
  // One event per CQE: the 32-byte Cqe is captured by value together with
  // the precomputed host-visibility instant. Both timestamps are knowable
  // here (`At` clamps past times to now, so clamp the same way first).
  if (t_hw < sim_.now()) t_hw = sim_.now();
  Cqe stamped = cqe;
  stamped.completed_at = t_hw;
  sim_.At(t_hw, CqeDeliver{this, cq, t_hw + cal_.completion_write + host_extra,
                           stamped});
}

void RnicDevice::CqeDeliver::operator()() const {
  RnicDevice* d = dev;
  ++d->counters_.cqes;
  // NIC-internal count first: WAIT verbs see completions before the host.
  const std::vector<WorkQueue*>& ready = cq->BumpHwCount();
  if (!ready.empty()) d->ScheduleResumes(ready);
  cq->PushHostEntry(visible_at, cqe);
  // Host visibility needs no event of its own: the noted horizon lets a
  // drained run (and the poll helpers) advance time to `visible_at`. Only
  // an armed notify hook — an event-driven actor — warrants a wake-up.
  d->sim_.NoteHorizon(visible_at);
  if (cq->host_notify()) {
    d->sim_.At(visible_at, [cq = cq] {
      if (cq->host_notify()) cq->host_notify()();
    });
  }
}

void RnicDevice::ScheduleResumes(const std::vector<WorkQueue*>& ready) {
  for (WorkQueue* wq : ready) wq->waiting = false;
  if (ready.size() == 1) {
    WorkQueue* wq = ready.front();
    sim_.After(cal_.wait_resume, [this, wq] { Advance(*wq); });
    return;
  }
  // Same-instant fan-out wake: all waiters resume at the same time and
  // would otherwise each pay an event. Batch them into one; the waiters
  // advance in wake (FIFO) order, exactly as consecutive per-waiter events
  // would have.
  ResumeBatch* batch = resume_batches_.Acquire();
  batch->wqs.assign(ready.begin(), ready.end());
  sim_.After(cal_.wait_resume, [this, batch] {
    for (WorkQueue* wq : batch->wqs) Advance(*wq);
    resume_batches_.Release(batch);
  });
}

void RnicDevice::FailWr(WorkQueue& wq, const WqeImage& img, sim::Nanos t,
                        WcStatus status) {
  ++counters_.error_completions;
  wq.error = true;
  wq.busy = false;
  Cqe cqe;
  cqe.qp_id = wq.qp()->id;
  cqe.wr_id = img.wr_id();
  cqe.opcode = img.opcode();
  cqe.status = status;
  DeliverCqe(wq.cq(), cqe, t + cal_.cq_internal);
}

WcStatus RnicDevice::StatusOf(sim::MsgFailure why) {
  switch (why) {
    case sim::MsgFailure::kRetryExceeded: return WcStatus::kRetryExcError;
    case sim::MsgFailure::kRnrRetryExceeded: return WcStatus::kRnrRetryExcError;
    case sim::MsgFailure::kFlushed: return WcStatus::kWrFlushError;
  }
  return WcStatus::kWrFlushError;
}

void RnicDevice::FailQpOverTransport(QueuePair* qp, const WqeImage& img,
                                     sim::Nanos t, WcStatus status) {
  ++counters_.error_completions;
  if (status == WcStatus::kWrFlushError) ++counters_.wrs_flushed;
  Cqe cqe;
  cqe.qp_id = qp->id;
  cqe.wr_id = img.wr_id();
  cqe.opcode = img.opcode();
  cqe.status = status;
  DeliverCqe(qp->send_cq, cqe, t + cal_.cq_internal);
  TransitionToError(qp);
}

void RnicDevice::TransitionToError(QueuePair* qp) {
  if (qp->state == QpState::kError) return;
  qp->state = QpState::kError;
  ++counters_.qp_errors;
  qp->sq.error = true;
  qp->sq.busy = false;
  qp->rq.error = true;
  // Flush one same-instant event later: a flow failure fans out on_failed
  // over every in-flight WR first, and their error CQEs should precede the
  // flush CQEs of WRs that never executed.
  sim_.At(sim_.now(), [this, qp] { FlushQueued(qp); });
}

void RnicDevice::FlushQueued(QueuePair* qp) {
  if (qp->state != QpState::kError) return;  // re-armed before the flush ran
  const sim::Nanos t = sim_.now() + cal_.cq_internal;
  for (std::uint64_t idx = qp->sq.next_exec; idx < qp->sq.posted; ++idx) {
    const WqeImage img = qp->sq.Slot(idx).Load();
    ++counters_.error_completions;
    ++counters_.wrs_flushed;
    Cqe cqe;
    cqe.qp_id = qp->id;
    cqe.wr_id = img.wr_id();
    cqe.opcode = img.opcode();
    cqe.status = WcStatus::kWrFlushError;
    DeliverCqe(qp->send_cq, cqe, t);
  }
  qp->sq.next_exec = qp->sq.posted;
  qp->sq.fetch_horizon = std::max(qp->sq.fetch_horizon, qp->sq.posted);
  for (std::uint64_t idx = qp->rq.consumed; idx < qp->rq.posted; ++idx) {
    const WqeImage img = qp->rq.Slot(idx).Load();
    ++counters_.error_completions;
    ++counters_.wrs_flushed;
    Cqe cqe;
    cqe.qp_id = qp->id;
    cqe.wr_id = img.wr_id();
    cqe.opcode = Opcode::kRecv;
    cqe.status = WcStatus::kWrFlushError;
    DeliverCqe(qp->recv_cq, cqe, t);
  }
  qp->rq.consumed = qp->rq.posted;
}

void RnicDevice::ModifyQp(QueuePair* qp, QpState next) {
  switch (next) {
    case QpState::kReset: {
      const bool rearming = qp->state == QpState::kError;
      qp->state = QpState::kReset;
      ++qp->reset_gen;
      // Drop the backlog (anything worth completing was flushed on the way
      // to ERROR; a reset from a healthy state discards silently, like
      // ibv_modify_qp →RESET). Progress counters stay monotonic.
      qp->sq.error = false;
      qp->sq.busy = false;
      qp->sq.waiting = false;
      qp->sq.next_exec = qp->sq.posted;
      qp->sq.fetch_horizon = std::max(qp->sq.fetch_horizon, qp->sq.posted);
      qp->rq.error = false;
      qp->rq.busy = false;
      qp->rq.consumed = qp->rq.posted;
      qp->stall_recvs = 0;
      if (qp->transport != nullptr && qp->flow >= 0) {
        qp->transport->ResetFlow(qp->flow);
      }
      if (rearming) ++counters_.qp_rearms;
      break;
    }
    case QpState::kInit:
    case QpState::kRtr:
    case QpState::kRts:
      qp->state = next;
      break;
    case QpState::kError:
      TransitionToError(qp);
      break;
  }
}

sim::Nanos RnicDevice::PuService(Opcode op) const {
  switch (op) {
    case Opcode::kNoop: return cal_.pu_noop;
    case Opcode::kWrite:
    case Opcode::kWriteImm: return cal_.pu_write;
    case Opcode::kRead: return cal_.pu_read;
    case Opcode::kSend:
    case Opcode::kSendImm: return cal_.pu_send;
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd: return cal_.pu_atomic;
    case Opcode::kCalcMax:
    case Opcode::kCalcMin: return cal_.pu_calc;
    case Opcode::kWait: return cal_.pu_wait;
    case Opcode::kEnable: return cal_.pu_enable;
    default: return cal_.pu_noop;
  }
}

sim::Nanos RnicDevice::ExecExtra(Opcode op) const {
  switch (op) {
    case Opcode::kNoop: return cal_.exec_noop;
    case Opcode::kWrite:
    case Opcode::kWriteImm: return cal_.exec_write;
    case Opcode::kSend:
    case Opcode::kSendImm: return cal_.exec_send;
    case Opcode::kRead: return cal_.exec_read;
    case Opcode::kCompSwap: return cal_.exec_cas;
    case Opcode::kFetchAdd: return cal_.exec_add;
    case Opcode::kCalcMax:
    case Opcode::kCalcMin: return cal_.exec_calc;
    default: return 0;
  }
}

sim::Nanos RnicDevice::ExecCost(Opcode op) {
  const sim::Nanos base = ExecExtra(op);
  if (cal_.jitter_frac <= 0.0) return base;
  const double f = 1.0 + cal_.jitter_frac * (2.0 * jitter_rng_.NextDouble() - 1.0);
  return static_cast<sim::Nanos>(static_cast<double>(base) * f);
}

sim::Nanos RnicDevice::DataDelay(std::uint64_t bytes,
                                 const sim::BandwidthResource* wire_link) const {
  if (bytes == 0) return 0;
  sim::Nanos d = pcie_.SerializationDelay(bytes) + membw_.SerializationDelay(bytes);
  if (wire_link != nullptr) {
    d += wire_link->SerializationDelay(bytes);
  } else {
    d += pcie_.SerializationDelay(bytes);  // loopback crosses PCIe twice
  }
  return d;
}

sim::Nanos RnicDevice::HostDataDelay(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  return pcie_.SerializationDelay(bytes) + membw_.SerializationDelay(bytes);
}

sim::Nanos RnicDevice::FabricOneWay(const QueuePair* from,
                                    const QueuePair* to) {
  const FabricAttach& s = from->device->fabric_ports_[from->port];
  const FabricAttach& d = to->device->fabric_ports_[to->port];
  return s.fabric->OneWay(s.endpoint, d.endpoint);
}

sim::Nanos RnicDevice::FabricDeliver(const QueuePair* from, const QueuePair* to,
                                     sim::Nanos t, std::uint64_t bytes) {
  const FabricAttach& s = from->device->fabric_ports_[from->port];
  const FabricAttach& d = to->device->fabric_ports_[to->port];
  return s.fabric->Deliver(s.endpoint, d.endpoint, t, bytes);
}

// ---------------------------------------------------------------------------
// Cross-shard fabric data paths (see device.h and docs/PARSIM.md).
//
// Timing is the same formula as the same-shard paths with Fabric::Deliver
// split at the shard boundary: the requester reserves TX at `ready`, the
// responder reserves RX at port arrival (TX-done + one-way propagation).
// The only semantic shifts, both confined to fault scenarios: requester-
// side abort checks (wq.error, qp->alive) run at the ACK instant instead
// of at arrival (the requester cannot read them from the responder's
// thread), and ExecCost jitter for READ/atomic responses draws from the
// responder's per-device stream (jitter is off by default, so the default
// timing is identical).
// ---------------------------------------------------------------------------

void RnicDevice::SendAcrossFabric(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                                  Payload* pl, Opcode op, sim::Nanos ready) {
  const FabricAttach& s = fabric_ports_[qp->port];
  const FabricAttach& d = peer->device->fabric_ports_[peer->port];
  sim::Fabric* fab = s.fabric;
  const std::uint64_t len = pl->bytes.size();
  const sim::Nanos ow = fab->OneWay(s.endpoint, d.endpoint);
  const sim::Nanos t_port = fab->ReserveTx(s.endpoint, ready, len) + ow;
  RnicDevice* rdev = peer->device;
  const int src_shard = sim_.shard();
  sim_.SendTo(
      rdev->sim_.shard(), t_port,
      [this, &wq, qp, peer, pl, fab, dep = d.endpoint, src_shard] {
        RnicDevice* rdev = peer->device;
        sim::Simulator& dsim = rdev->sim_;
        const std::uint64_t len = pl->bytes.size();
        const sim::Nanos t_arrive = fab->ReserveRx(dep, dsim.now(), len);
        dsim.At(t_arrive, [this, &wq, qp, peer, pl, src_shard] {
          RnicDevice* rdev = peer->device;
          const Opcode op = pl->img.opcode();
          const std::uint64_t len = pl->bytes.size();
          WcStatus st = WcStatus::kSuccess;
          if (!peer->alive) {
            st = WcStatus::kRemoteAccessError;
          } else if (op == Opcode::kWrite || op == Opcode::kWriteImm) {
            st = rdev->AcceptWrite(peer, pl->img.remote_addr, pl->img.rkey,
                                   pl->bytes.data(), len);
            if (st == WcStatus::kSuccess && op == Opcode::kWriteImm) {
              st = rdev->AcceptSend(peer, nullptr, 0, pl->img.imm,
                                    /*has_imm=*/true, len);
            }
          } else {
            st = rdev->AcceptSend(peer, pl->bytes.data(), len, pl->img.imm,
                                  /*has_imm=*/op == Opcode::kSendImm, len);
          }
          const sim::Nanos t_ack = rdev->sim_.now() + FabricOneWay(peer, qp) +
                                   cal_.remote_ack_extra;
          rdev->sim_.SendTo(src_shard, t_ack, [this, &wq, qp, pl, st] {
            if (wq.error || !qp->alive) {  // flushed / requester died
              payloads_.Release(pl);
              return;
            }
            if (st != WcStatus::kSuccess && st != WcStatus::kRnrError) {
              wq.error = true;
              ++counters_.error_completions;
            }
            CompleteWr(qp, qp->send_cq, pl->img, sim_.now(), st,
                       static_cast<std::uint32_t>(pl->bytes.size()));
            payloads_.Release(pl);
          });
        });
      });
}

void RnicDevice::ReadAcrossFabric(WorkQueue& wq, QueuePair* qp, QueuePair* peer,
                                  Payload* pl, sim::Nanos t_issue,
                                  sim::Nanos ow) {
  // The SGE-table byte count resolves here, at issue on the requester's
  // shard — the table lives in requester host memory, which the responder
  // must never read across the boundary.
  const WqeImage& img = pl->img;
  std::uint64_t len = img.length;
  if (img.uses_sge_table()) {
    SgeScratch sges;
    ResolveSges(img, sges);
    len = 0;
    for (const Sge& sge : sges) len += sge.length;
  }
  RnicDevice* rdev = peer->device;
  const int src_shard = sim_.shard();
  sim_.SendTo(
      rdev->sim_.shard(), t_issue + ow,
      [this, &wq, qp, peer, pl, ow, len, src_shard] {
        RnicDevice* rdev = peer->device;
        sim::Simulator& dsim = rdev->sim_;
        const WqeImage& img = pl->img;
        const auto nak = [&](WcStatus st) {
          dsim.SendTo(src_shard, dsim.now() + ow, [this, &wq, qp, pl, st] {
            if (!qp->alive) {  // requester died: flush silently
              payloads_.Release(pl);
              return;
            }
            FailWr(wq, pl->img, sim_.now(), st);
            payloads_.Release(pl);
          });
        };
        if (!peer->alive) {
          nak(WcStatus::kRemoteAccessError);
          return;
        }
        const MemCheck mc = rdev->pd_.CheckRemote(
            img.remote_addr, len, img.rkey, kRemoteRead,
            &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          nak(WcStatus::kRemoteAccessError);
          return;
        }
        if (len > 0) dma::ReadAppend(pl->bytes, img.remote_addr, len);
        const sim::Nanos t_req_now = dsim.now();
        const sim::Nanos pcie_done = rdev->pcie_.Reserve(t_req_now, len);
        const sim::Nanos mem_done = rdev->membw_.Reserve(t_req_now, len);
        const sim::Nanos ready =
            std::max({t_req_now + rdev->ExecCost(Opcode::kRead) +
                          rdev->HostDataDelay(len),
                      pcie_done, mem_done});
        const FabricAttach& rs = rdev->fabric_ports_[peer->port];
        const FabricAttach& rd = fabric_ports_[qp->port];
        sim::Fabric* fab = rs.fabric;
        const sim::Nanos t_port = fab->ReserveTx(rs.endpoint, ready, len) + ow;
        dsim.SendTo(src_shard, t_port,
                    [this, &wq, qp, pl, fab, dep = rd.endpoint] {
                      const std::uint64_t rlen = pl->bytes.size();
                      const sim::Nanos t_done =
                          fab->ReserveRx(dep, sim_.now(), rlen) +
                          cal_.remote_ack_extra;
                      sim_.At(t_done, [this, &wq, qp, pl] {
                        if (!qp->alive) {
                          payloads_.Release(pl);
                          return;
                        }
                        WcStatus st = WcStatus::kSuccess;
                        if (!ScatterList(wq, pl->slot, pl->img,
                                         pl->bytes.data(), pl->bytes.size(),
                                         &st)) {
                          FailWr(wq, pl->img, sim_.now(), st);
                          payloads_.Release(pl);
                          return;
                        }
                        CompleteWr(qp, qp->send_cq, pl->img, sim_.now(),
                                   WcStatus::kSuccess,
                                   static_cast<std::uint32_t>(pl->bytes.size()));
                        payloads_.Release(pl);
                      });
                    });
      });
}

void RnicDevice::AtomicAcrossFabric(WorkQueue& wq, QueuePair* qp,
                                    QueuePair* peer, Payload* pl, Opcode op,
                                    sim::Nanos t_issue, sim::Nanos ow) {
  RnicDevice* rdev = peer->device;
  const int src_shard = sim_.shard();
  sim_.SendTo(
      rdev->sim_.shard(), t_issue + ow,
      [this, &wq, qp, peer, pl, op, ow, src_shard] {
        RnicDevice* rdev = peer->device;
        sim::Simulator& dsim = rdev->sim_;
        const WqeImage& img = pl->img;
        const auto nak = [&](WcStatus st) {
          dsim.SendTo(src_shard, dsim.now() + ow, [this, &wq, qp, pl, st] {
            if (!qp->alive) {
              payloads_.Release(pl);
              return;
            }
            FailWr(wq, pl->img, sim_.now(), st);
            payloads_.Release(pl);
          });
        };
        if (!peer->alive) {
          nak(WcStatus::kRemoteAccessError);
          return;
        }
        const MemCheck mc =
            rdev->pd_.CheckRemote(img.remote_addr, 8, img.rkey, kRemoteAtomic,
                                  &peer->remote_mr_cache);
        if (mc != MemCheck::kOk) {
          nak(WcStatus::kRemoteAccessError);
          return;
        }
        if (img.remote_addr % 8 != 0) {
          nak(WcStatus::kAlignmentError);
          return;
        }
        const bool true_atomic =
            op == Opcode::kCompSwap || op == Opcode::kFetchAdd;
        auto& unit = rdev->ports_[peer->port].atomic_unit;
        const sim::Nanos unit_done =
            true_atomic
                ? unit.Reserve(dsim.now(), rdev->cal_.atomic_unit_service)
                : dsim.now() + rdev->cal_.atomic_unit_service;
        // Same RMW body as the same-shard path; runs on the responder's
        // shard, which owns the target memory. The completion message below
        // is due >= unit_done + lookahead, i.e. in a strictly later round,
        // so the requester reads rmw_done/scratch after a barrier.
        dsim.At(unit_done, [pl, op, peer] {
          if (!peer->alive) return;  // died mid-flight: memory stays untouched
          pl->rmw_done = true;
          const WqeImage& img = pl->img;
          const std::uint64_t cur = dma::ReadU64(img.remote_addr);
          pl->scratch = cur;
          std::uint64_t next = cur;
          switch (op) {
            case Opcode::kCompSwap:
              if (cur == img.compare_add) next = img.swap;
              break;
            case Opcode::kFetchAdd:
              next = cur + img.compare_add;
              break;
            case Opcode::kCalcMax:
              next = std::max(cur, img.compare_add);
              break;
            case Opcode::kCalcMin:
              next = std::min(cur, img.compare_add);
              break;
            default:
              break;
          }
          dma::WriteU64(img.remote_addr, next);
          peer->device->NoteDmaWrite(img.remote_addr, 8);
        });
        const sim::Nanos t_done =
            unit_done + rdev->ExecCost(op) + ow + cal_.remote_ack_extra;
        dsim.SendTo(src_shard, t_done, [this, &wq, qp, pl] {
          if (!qp->alive) {
            payloads_.Release(pl);
            return;
          }
          if (!pl->rmw_done) {
            FailWr(wq, pl->img, sim_.now(), WcStatus::kRemoteAccessError);
            payloads_.Release(pl);
            return;
          }
          if (pl->img.local_addr != 0) {
            WcStatus st = WcStatus::kSuccess;
            const std::byte* bytes =
                reinterpret_cast<const std::byte*>(&pl->scratch);
            WqeImage resp = pl->img;
            resp.length = 8;
            resp.flags &= ~kFlagSgeTable;
            if (!ScatterList(wq, pl->slot, resp, bytes, 8, &st)) {
              FailWr(wq, pl->img, sim_.now(), st);
              payloads_.Release(pl);
              return;
            }
          }
          CompleteWr(qp, qp->send_cq, pl->img, sim_.now(), WcStatus::kSuccess,
                     8);
          payloads_.Release(pl);
        });
      });
}

double RnicDevice::PuUtilisation(int port, sim::Nanos window) const {
  sim::Nanos busy = 0;
  for (const auto& pu : ports_[port].pus) busy += pu.busy_time();
  return static_cast<double>(busy) /
         (static_cast<double>(window) * ports_[port].pus.size());
}

double RnicDevice::FetchUnitUtilisation(int port, sim::Nanos window) const {
  return static_cast<double>(ports_[port].fetch_unit.busy_time()) /
         static_cast<double>(window);
}

double RnicDevice::LinkUtilisation(int port, sim::Nanos window) const {
  return static_cast<double>(ports_[port].link.busy_time()) /
         static_cast<double>(window);
}

double RnicDevice::PcieUtilisation(sim::Nanos window) const {
  return static_cast<double>(pcie_.busy_time()) / static_cast<double>(window);
}

const char* RnicDevice::BusiestResource(sim::Nanos window) const {
  double best = 0.0;
  const char* who = "idle";
  for (int p = 0; p < cfg_.ports; ++p) {
    const double pu = PuUtilisation(p, window);
    if (pu > best) {
      best = pu;
      who = "NIC PU";
    }
    const double fetch = FetchUnitUtilisation(p, window);
    if (fetch > best) {
      best = fetch;
      who = "NIC PU";  // managed fetch is NIC processing (paper's term)
    }
    const double link = LinkUtilisation(p, window);
    if (link > best) {
      best = link;
      who = "IB bw";
    }
  }
  const double pcie = PcieUtilisation(window);
  if (pcie > best) {
    best = pcie;
    who = "PCIe bw";
  }
  return who;
}

const char* QpStateName(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "UNKNOWN";
}

void Connect(QueuePair* a, QueuePair* b, sim::Nanos one_way) {
  a->peer = b;
  b->peer = a;
  a->net_one_way = one_way;
  b->net_one_way = one_way;
  a->via_fabric = false;
  b->via_fabric = false;
  a->transport = nullptr;
  b->transport = nullptr;
}

void ConnectSelf(QueuePair* qp) {
  qp->peer = qp;
  qp->net_one_way = 0;
  qp->via_fabric = false;
  qp->transport = nullptr;
}

void ConnectOverFabric(QueuePair* a, QueuePair* b) {
  sim::Fabric* fa = a->device->fabric(a->port);
  sim::Fabric* fb = b->device->fabric(b->port);
  assert(fa != nullptr && fb != nullptr &&
         "AttachPort both ends before ConnectOverFabric");
  assert(fa == fb && "QPs must share one fabric");
  (void)fa;
  (void)fb;
  a->peer = b;
  b->peer = a;
  a->via_fabric = true;
  b->via_fabric = true;
  a->transport = nullptr;
  b->transport = nullptr;
  // Unused on the fabric path; kept zero so nothing falls back silently.
  a->net_one_way = 0;
  b->net_one_way = 0;
}

void ConnectOverTransport(QueuePair* a, QueuePair* b, sim::Transport& t) {
  // Endpoints on different shards are fine: OpenFlow looks up each
  // endpoint's EventDomain through the fabric and runs the flow split —
  // SenderHalf on the source's shard, ReceiverHalf on the destination's,
  // DATA/ACK as mailbox crossings (docs/NET.md "Split flows").
  ConnectOverFabric(a, b);
  assert(&t.fabric() == a->device->fabric(a->port) &&
         "transport must be built over the QPs' fabric");
  a->transport = &t;
  b->transport = &t;
  a->flow = t.OpenFlow(a->device->fabric_endpoint(a->port),
                       b->device->fabric_endpoint(b->port));
  b->flow = t.OpenFlow(b->device->fabric_endpoint(b->port),
                       a->device->fabric_endpoint(a->port));
}

}  // namespace redn::rnic
