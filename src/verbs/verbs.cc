#include "verbs/verbs.h"

#include <cassert>
#include <stdexcept>

namespace redn::verbs {
namespace detail {

rnic::WqeImage ToImage(const SendWr& wr) {
  rnic::WqeImage img;
  img.ctrl = rnic::PackCtrl(wr.opcode, wr.wr_id);
  img.remote_addr = wr.remote_addr;
  img.rkey = wr.rkey;
  img.flags = wr.signaled ? static_cast<std::uint32_t>(rnic::kFlagSignaled) : 0u;
  if (wr.sge_table != nullptr) {
    img.flags |= rnic::kFlagSgeTable;
    img.local_addr = rnic::dma::AddrOf(wr.sge_table);
    img.length = wr.sge_count;
  } else {
    img.local_addr = wr.local_addr;
    img.length = wr.length;
    img.lkey = wr.lkey;
  }
  img.compare_add = wr.compare_add != 0 ? wr.compare_add : wr.threshold;
  img.swap = wr.swap;
  img.target_id = wr.target_id;
  img.imm = wr.imm;
  return img;
}

void ThrowSqOverflow(const QueuePair* qp) {
  throw std::runtime_error(
      "send queue overflow on qp " + std::to_string(qp->id) + " (" +
      qp->device->name() + "): posted " +
      std::to_string(qp->sq.posted) + " executed " +
      std::to_string(qp->sq.next_exec) + " capacity " +
      std::to_string(qp->sq.capacity()) +
      "; size the QP for the full pre-posted chain");
}

}  // namespace detail

SendWr MakeNoop(bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kNoop;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeWrite(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                 std::uint64_t raddr, std::uint32_t rkey, bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = laddr;
  wr.length = len;
  wr.lkey = lkey;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeWriteImm(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                    std::uint64_t raddr, std::uint32_t rkey, std::uint32_t imm,
                    bool signaled) {
  SendWr wr = MakeWrite(laddr, len, lkey, raddr, rkey, signaled);
  wr.opcode = Opcode::kWriteImm;
  wr.imm = imm;
  return wr;
}

SendWr MakeRead(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                std::uint64_t raddr, std::uint32_t rkey, bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.local_addr = laddr;
  wr.length = len;
  wr.lkey = lkey;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeSend(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local_addr = laddr;
  wr.length = len;
  wr.lkey = lkey;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeSendImm(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                   std::uint32_t imm, bool signaled) {
  SendWr wr = MakeSend(laddr, len, lkey, signaled);
  wr.opcode = Opcode::kSendImm;
  wr.imm = imm;
  return wr;
}

SendWr MakeCas(std::uint64_t raddr, std::uint32_t rkey, std::uint64_t compare,
               std::uint64_t swap, std::uint64_t result_addr,
               std::uint32_t result_lkey, bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kCompSwap;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.compare_add = compare;
  wr.swap = swap;
  wr.local_addr = result_addr;
  wr.length = result_addr != 0 ? 8 : 0;
  wr.lkey = result_lkey;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeFetchAdd(std::uint64_t raddr, std::uint32_t rkey, std::uint64_t add,
                    std::uint64_t result_addr, std::uint32_t result_lkey,
                    bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kFetchAdd;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.compare_add = add;
  wr.local_addr = result_addr;
  wr.length = result_addr != 0 ? 8 : 0;
  wr.lkey = result_lkey;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeCalcMax(std::uint64_t raddr, std::uint32_t rkey,
                   std::uint64_t operand, bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kCalcMax;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.compare_add = operand;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeWait(const CompletionQueue* cq, std::uint64_t count, bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kWait;
  wr.target_id = cq->id();
  wr.threshold = count;
  wr.signaled = signaled;
  return wr;
}

SendWr MakeEnable(const QueuePair* target_qp, std::uint64_t limit,
                  bool signaled) {
  SendWr wr;
  wr.opcode = Opcode::kEnable;
  wr.target_id = target_qp->id;
  wr.threshold = limit;
  wr.signaled = signaled;
  return wr;
}

std::uint64_t PostRecv(QueuePair* qp, const RecvWr& wr) {
  rnic::WqeImage img;
  img.ctrl = rnic::PackCtrl(Opcode::kRecv, wr.wr_id);
  img.flags = rnic::kFlagSignaled;
  if (wr.sge_table != nullptr) {
    img.flags |= rnic::kFlagSgeTable;
    img.local_addr = rnic::dma::AddrOf(wr.sge_table);
    img.length = wr.sge_count;
  } else {
    img.local_addr = wr.local_addr;
    img.length = wr.length;
    img.lkey = wr.lkey;
  }
  const std::uint64_t idx = qp->rq.posted;
  qp->rq.Slot(idx).Store(img);
  qp->device->NotifyRecvPosted(qp);
  return idx;
}

bool AwaitCqe(sim::Simulator& sim, rnic::RnicDevice& dev, CompletionQueue* cq,
              Cqe* out, sim::Nanos deadline) {
  for (;;) {
    if (dev.PollCq(cq, 1, out) == 1) return true;
    if (deadline >= 0 && sim.now() > deadline) return false;
    // CQE delivery stages host entries with a visibility timestamp instead
    // of scheduling a wake-up event, so advance the clock to that instant
    // ourselves when nothing else happens first.
    const sim::Nanos vis = cq->NextVisibleAt();
    sim::Nanos next;
    const bool has_event = sim.PeekNextEventTime(&next);
    if (vis >= 0 && (!has_event || next > vis)) {
      sim.RunUntil(vis);
      continue;
    }
    if (!sim.Step()) return dev.PollCq(cq, 1, out) == 1;
  }
}

bool AwaitCqes(sim::Simulator& sim, rnic::RnicDevice& dev, CompletionQueue* cq,
               int n, Cqe* last, sim::Nanos deadline) {
  for (int i = 0; i < n; ++i) {
    if (!AwaitCqe(sim, dev, cq, last, deadline)) return false;
  }
  return true;
}

}  // namespace redn::verbs
