// ibverbs-flavoured posting API over the simulated RNIC.
//
// This mirrors how RedN's C implementation drives libibverbs/libmlx5:
// the driver builds WQE bytes directly into the (registered) send-queue
// ring, then rings the doorbell — or, for managed queues, does *not* ring
// it and lets ENABLE verbs drive execution. Post* functions return the
// absolute WQE index so offload code can compute field addresses for
// self-modification (the libmlx5 "expose WQ buffer" trick from §4).
#pragma once

#include <cstdint>
#include <vector>

#include "rnic/device.h"
#include "rnic/queues.h"
#include "rnic/wqe.h"
#include "sim/simulator.h"

namespace redn::verbs {

using rnic::Cqe;
using rnic::CompletionQueue;
using rnic::Opcode;
using rnic::QueuePair;
using rnic::Sge;
using rnic::WcStatus;
using rnic::WqeField;

// A work request in builder form. Exactly one of {inline gather (local_addr/
// length/lkey), sge_table} is used; sge_table points to caller-owned stable
// storage (the NIC reads it at execution time).
struct SendWr {
  Opcode opcode = Opcode::kNoop;
  std::uint64_t wr_id = 0;
  bool signaled = true;

  std::uint64_t local_addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
  const Sge* sge_table = nullptr;
  std::uint32_t sge_count = 0;

  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;

  std::uint64_t compare_add = 0;  // CAS compare / ADD addend / CALC operand
  std::uint64_t swap = 0;         // CAS swap
  std::uint32_t imm = 0;

  // Cross-channel (§3.1): WAIT waits on a CQ, ENABLE drives a QP's SQ.
  std::uint32_t target_id = 0;
  std::uint64_t threshold = 0;  // WAIT: CQ count; ENABLE: WQE limit
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  std::uint64_t local_addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
  const Sge* sge_table = nullptr;
  std::uint32_t sge_count = 0;
};

// --- WR constructors -------------------------------------------------------

SendWr MakeNoop(bool signaled = true);
SendWr MakeWrite(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                 std::uint64_t raddr, std::uint32_t rkey, bool signaled = true);
SendWr MakeWriteImm(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                    std::uint64_t raddr, std::uint32_t rkey, std::uint32_t imm,
                    bool signaled = true);
SendWr MakeRead(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                std::uint64_t raddr, std::uint32_t rkey, bool signaled = true);
SendWr MakeSend(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                bool signaled = true);
SendWr MakeSendImm(std::uint64_t laddr, std::uint32_t len, std::uint32_t lkey,
                   std::uint32_t imm, bool signaled = true);
SendWr MakeCas(std::uint64_t raddr, std::uint32_t rkey, std::uint64_t compare,
               std::uint64_t swap, std::uint64_t result_addr = 0,
               std::uint32_t result_lkey = 0, bool signaled = true);
SendWr MakeFetchAdd(std::uint64_t raddr, std::uint32_t rkey, std::uint64_t add,
                    std::uint64_t result_addr = 0, std::uint32_t result_lkey = 0,
                    bool signaled = true);
SendWr MakeCalcMax(std::uint64_t raddr, std::uint32_t rkey, std::uint64_t operand,
                   bool signaled = true);
SendWr MakeWait(const CompletionQueue* cq, std::uint64_t count,
                bool signaled = false);
SendWr MakeEnable(const QueuePair* target_qp, std::uint64_t limit,
                  bool signaled = false);

// --- Posting ---------------------------------------------------------------

namespace detail {
// Encodes a builder-form WR into the 64-byte WQE image.
rnic::WqeImage ToImage(const SendWr& wr);
// Cold path of PostSend, out of line so the hot path inlines cleanly.
[[noreturn]] void ThrowSqOverflow(const QueuePair* qp);
}  // namespace detail

// Writes the WQE into the next send-queue slot. Returns the absolute WQE
// index. Does NOT ring the doorbell. Inline: the driver loop runs once per
// verb, and posting through WorkQueue::PostImage both collapses the store
// to one 64-byte copy and hands the NIC's translation cache the decoded
// image (write-through, BlueFlame-style).
inline std::uint64_t PostSend(QueuePair* qp, const SendWr& wr) {
  // The unexecuted backlog must fit the ring: overwriting a slot the NIC
  // has not executed yet silently corrupts the program, so this check stays
  // on in every build type.
  if (qp->sq.posted - qp->sq.next_exec >= qp->sq.capacity()) [[unlikely]] {
    detail::ThrowSqOverflow(qp);
  }
  const std::uint64_t idx = qp->sq.posted;
  qp->sq.PostImage(idx, detail::ToImage(wr));
  ++qp->sq.posted;
  return idx;
}

// PostSend + doorbell, the common non-managed path.
inline std::uint64_t PostSendNow(QueuePair* qp, const SendWr& wr) {
  const std::uint64_t idx = PostSend(qp, wr);
  qp->device->RingDoorbell(qp);
  return idx;
}

std::uint64_t PostRecv(QueuePair* qp, const RecvWr& wr);

inline void RingDoorbell(QueuePair* qp) { qp->device->RingDoorbell(qp); }

inline int PollCq(QueuePair* qp, CompletionQueue* cq, int max, Cqe* out) {
  return qp->device->PollCq(cq, max, out);
}

// Address of a field of a posted (or future) send WQE — the self-
// modification handle. `idx` is the absolute WQE index PostSend returned.
inline std::uint64_t WqeFieldAddr(const QueuePair* qp, std::uint64_t idx,
                                  WqeField f) {
  return qp->sq.SlotAddr(idx, f);
}

// --- Test / client conveniences --------------------------------------------

// Runs the simulator until a CQE is pollable on `cq` (or the event queue
// drains / `deadline` passes). Returns true and fills `out` on success.
bool AwaitCqe(sim::Simulator& sim, rnic::RnicDevice& dev, CompletionQueue* cq,
              Cqe* out, sim::Nanos deadline = -1);

// Awaits `n` CQEs, discarding all but the last.
bool AwaitCqes(sim::Simulator& sim, rnic::RnicDevice& dev, CompletionQueue* cq,
               int n, Cqe* last, sim::Nanos deadline = -1);

}  // namespace redn::verbs
