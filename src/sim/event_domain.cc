#include "sim/event_domain.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace redn::sim {

thread_local EventDomain* EventDomain::tls_running_ = nullptr;

EventDomain::~EventDomain() { DrainAll(); }

// ---------------------------------------------------------------------------
// Wheel primitives
// ---------------------------------------------------------------------------

void EventDomain::Wheel::Append(std::size_t b, EventNode* n) {
  Bucket& bucket = buckets[b];
  n->next = nullptr;
  if (bucket.tail == nullptr) {
    bucket.head = bucket.tail = n;
    bitmap[b >> 6] |= std::uint64_t{1} << (b & 63);
    summary |= std::uint64_t{1} << (b >> 6);
  } else {
    bucket.tail->next = n;
    bucket.tail = n;
  }
  ++size;
}

EventNode* EventDomain::Wheel::PopFront(std::size_t b) {
  Bucket& bucket = buckets[b];
  EventNode* n = bucket.head;
  bucket.head = n->next;
  if (bucket.head == nullptr) {
    bucket.tail = nullptr;
    bitmap[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (bitmap[b >> 6] == 0) summary &= ~(std::uint64_t{1} << (b >> 6));
  }
  n->next = nullptr;
  --size;
  return n;
}

std::size_t EventDomain::Wheel::FirstBucket() const {
  const std::size_t w = static_cast<std::size_t>(std::countr_zero(summary));
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(bitmap[w]));
}

void EventDomain::CoarseWheel::Append(std::size_t b, EventNode* n) {
  std::vector<EventNode*>& bucket = buckets[b];
  if (bucket.empty()) {
    bitmap[b >> 6] |= std::uint64_t{1} << (b & 63);
    summary |= std::uint64_t{1} << (b >> 6);
  }
  bucket.push_back(n);
  ++size;
}

void EventDomain::CoarseWheel::ClearBucket(std::size_t b) {
  std::vector<EventNode*>& bucket = buckets[b];
  size -= bucket.size();
  bucket.clear();  // capacity retained for reuse
  bitmap[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  if (bitmap[b >> 6] == 0) summary &= ~(std::uint64_t{1} << (b >> 6));
}

std::size_t EventDomain::CoarseWheel::FirstBucket() const {
  const std::size_t w = static_cast<std::size_t>(std::countr_zero(summary));
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(bitmap[w]));
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

void EventDomain::Place(EventNode* n) {
  if (n->time < fine_base_ + kFineSpan) {
    // All pending times are >= now_ >= fine_base_, so the slot-local index
    // is a bijection onto [fine_base_, fine_base_ + kFineSpan).
    fine_.Append(FineIndex(n->time), n);
  } else if (n->time < coarse_base_ + kCoarseSpan) {
    coarse_.Append(CoarseIndex(n->time), n);
  } else {
    if (far_.empty() || n->time < far_min_) far_min_ = n->time;
    far_.push_back(FarEntry{n->time, n->seq, n});
    far_sorted_ = false;
  }
}

void EventDomain::AdvanceWindows(Nanos t) {
  const Nanos new_fine = t & ~(kFineSpan - 1);
  if (new_fine == fine_base_) return;
  fine_base_ = new_fine;
  const Nanos new_coarse = t & ~(kCoarseSpan - 1);
  if (new_coarse != coarse_base_) {
    coarse_base_ = new_coarse;
    // Far events now inside the coarse window cascade first: any event that
    // shares an instant with one already in a wheel was scheduled later
    // (eager cascade keeps the structures time-disjoint per instant), so
    // placing far pops — which come out (time, seq)-sorted — before the
    // coarse drain below preserves FIFO.
    const Nanos limit = coarse_base_ + kCoarseSpan;
    if (!far_.empty() && far_min_ < limit) {
      if (!far_sorted_) {
        std::sort(far_.begin(), far_.end(), FarLater{});
        far_sorted_ = true;
      }
      // Back of the descending-sorted vector is the earliest (time, seq);
      // popping in that order means cascaded events reach the wheels in
      // exactly the order a heap would have produced.
      while (!far_.empty() && far_.back().time < limit) {
        EventNode* n = far_.back().node;
        far_.pop_back();
        Place(n);
      }
      if (!far_.empty()) far_min_ = far_.back().time;
    }
  }
  // Drain the coarse bucket covering the new fine slot. Append order is seq
  // order for same-instant events, and fine bucketing separates distinct
  // instants, so a plain in-order walk is order-preserving.
  const std::size_t c = CoarseIndex(fine_base_);
  std::vector<EventNode*>& bucket = coarse_.buckets[c];
  if (!bucket.empty()) {
    constexpr std::size_t kPrefetchDepth = 8;
    const std::size_t count = bucket.size();
    for (std::size_t i = 0; i < count; ++i) {
      if (i + kPrefetchDepth < count) {
        __builtin_prefetch(bucket[i + kPrefetchDepth]);
      }
      EventNode* n = bucket[i];
      fine_.Append(FineIndex(n->time), n);
    }
    coarse_.ClearBucket(c);
  }
}

bool EventDomain::PeekEarliest(Nanos* t) const {
  if (fine_.size > 0) {
    *t = fine_base_ | static_cast<Nanos>(fine_.FirstBucket());
    return true;
  }
  if (coarse_.size > 0) {
    // A coarse bucket mixes timestamps; scan its FIFO list for the minimum.
    // This runs at most a couple of times per bucket (peek, then the
    // bucket is drained into the fine wheel on the next advance).
    const std::size_t c = coarse_.FirstBucket();
    Nanos best = 0;
    bool first = true;
    for (const EventNode* n : coarse_.buckets[c]) {
      if (first || n->time < best) best = n->time;
      first = false;
    }
    *t = best;
    return true;
  }
  if (!far_.empty()) {
    *t = far_min_;
    return true;
  }
  return false;
}

void EventDomain::Dispatch(Nanos t) {
  now_ = t;
  AdvanceWindows(t);
  DispatchFine(FineIndex(t));
}

void EventDomain::DispatchFine(std::size_t bucket) {
  EventNode* n = fine_.PopFront(bucket);
  assert(n != nullptr && n->time == now_);
  --size_;
  ++events_processed_;
  in_dispatch_ = true;
  n->op(n, /*run=*/true);
  pool_.Release(n);
  if (!deferred_.empty()) [[unlikely]] DrainDeferred();
  in_dispatch_ = false;
}

void EventDomain::DrainDeferred() {
  // Drain the fusion trampoline: each entry was enqueued at a moment when
  // nothing was pending for the current instant, so running it here — in
  // FIFO order, before the main loop touches the wheels again — dispatches
  // it exactly when the calendar queue would have. An entry may fuse more
  // continuations (index loop: the vector can grow mid-iteration).
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    EventNode* d = deferred_[i];
    --size_;
    ++events_processed_;
    d->op(d, /*run=*/true);
    pool_.Release(d);
  }
  deferred_.clear();
  fuse_budget_ = kMaxFusedPerDispatch;
}

bool EventDomain::Step() {
  if (TryDispatchFineEarliest(kNanosMax)) [[likely]] return true;
  Nanos t;
  if (!PeekEarliest(&t)) {
    if (horizon_ > now_) {
      now_ = horizon_;
      AdvanceWindows(now_);
    }
    return false;
  }
  Dispatch(t);
  return true;
}

void EventDomain::Run() {
  while (Step()) {
  }
}

void EventDomain::RunUntil(Nanos t) {
  for (;;) {
    if (TryDispatchFineEarliest(t)) [[likely]] continue;
    if (fine_.size > 0) break;  // earliest fine event lies beyond t
    Nanos next;
    if (!PeekEarliest(&next) || next > t) break;
    Dispatch(next);  // reuses the peek: one wheel scan per event
  }
  if (now_ < t) {
    now_ = t;
    AdvanceWindows(t);
  }
}

void EventDomain::DrainWindow(Nanos end_exclusive) {
  // Same per-event loop as RunUntil with an exclusive bound, minus the
  // final clock advance: after the window the clock sits at the last
  // dispatched instant so the coordinator's next T_min reflects real
  // event times, not window edges.
  const Nanos limit = end_exclusive - 1;  // end_exclusive >= 1 always
  for (;;) {
    if (TryDispatchFineEarliest(limit)) [[likely]] continue;
    if (fine_.size > 0) break;  // earliest fine event lies beyond the window
    Nanos next;
    if (!PeekEarliest(&next) || next >= end_exclusive) break;
    Dispatch(next);
  }
}

void EventDomain::Reset() {
  DrainAll();
  now_ = 0;
  horizon_ = 0;
  fine_base_ = 0;
  coarse_base_ = 0;
  next_seq_ = 0;
}

void EventDomain::DrainAll() {
  // Defensive: the trampoline is empty outside Dispatch, but a teardown
  // mid-callback must still destroy pending fused callables.
  for (EventNode* d : deferred_) {
    d->op(d, /*run=*/false);
    pool_.Release(d);
  }
  deferred_.clear();
  fuse_budget_ = kMaxFusedPerDispatch;
  const auto drain_wheel = [this](Wheel& wheel) {
    for (std::size_t w = 0; w < kWords; ++w) {
      std::uint64_t bits = wheel.bitmap[w];
      while (bits != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        Bucket& bucket = wheel.buckets[b];
        EventNode* n = bucket.head;
        while (n != nullptr) {
          EventNode* next = n->next;
          n->op(n, /*run=*/false);
          pool_.Release(n);
          n = next;
        }
        bucket.head = bucket.tail = nullptr;
      }
      wheel.bitmap[w] = 0;
    }
    wheel.summary = 0;
    wheel.size = 0;
  };
  drain_wheel(fine_);
  for (std::size_t b = 0; b < kSlots; ++b) {
    for (EventNode* n : coarse_.buckets[b]) {
      n->op(n, /*run=*/false);
      pool_.Release(n);
    }
    coarse_.buckets[b].clear();
  }
  coarse_.bitmap.fill(0);
  coarse_.summary = 0;
  coarse_.size = 0;
  for (const FarEntry& e : far_) {
    e.node->op(e.node, /*run=*/false);
    pool_.Release(e.node);
  }
  far_.clear();
  far_sorted_ = true;
  size_ = 0;
}

}  // namespace redn::sim
