// Deterministic discrete-event engine — one shard's event domain.
//
// An EventDomain is the single-threaded calendar-queue core that has always
// driven the RNIC model: hardware units, host CPUs, and clients are actors
// that schedule closures at absolute simulated times, and events scheduled
// for the same instant run in FIFO order of scheduling, which makes runs
// bit-for-bit reproducible.
//
// `Simulator` is an alias for EventDomain (sim/simulator.h): a standalone
// domain with no coordinator IS the classic single-threaded simulator, and
// every pre-sharding call site compiles and behaves unchanged.
//
// Sharding (sim/sharded.h): a ShardedSimulator owns N domains and advances
// them in bounded-lookahead rounds on real threads. Within a round a domain
// is touched only by its own thread; the only cross-domain channel is
// `SendTo(shard, t, fn)`, which appends to a per-(src,dst) mailbox that the
// coordinator merges into the destination wheel at round barriers in
// (time, src_shard, seq) order. `At`/`After` assert shard affinity: calling
// them on a foreign domain while a sharded round is executing is a data
// race by construction, so debug builds abort with a pointer at SendTo.
//
// Hot-path design (see docs/PERF.md for measurements):
//  - Events are fixed-size nodes from a free-list slab (sim/event.h); the
//    callback lives in 64 bytes of inline storage inside the node, so the
//    steady-state schedule/dispatch cycle performs zero heap allocations.
//    Oversized captures fall back to one heap allocation, counted by
//    `heap_fallbacks()` so regressions are visible.
//  - The pending set is a hierarchical calendar queue. A fine wheel of 4096
//    one-nanosecond FIFO buckets covers the current time-aligned 4.1 us
//    slot; a coarse wheel of 4096 slot-wide buckets covers the current
//    16.8 ms super-slot; everything farther sits in an append-only vector
//    sorted lazily by (time, seq) when a cascade needs ordered pops.
//    Two-level bitmaps give O(1) next-bucket scans, and
//    events cascade down (far -> coarse -> fine) exactly when the clock
//    enters their slot — eagerly, so a bucket can never receive a direct
//    insert ahead of an earlier-scheduled event for the same instant.
//    Because a fine bucket holds exactly one timestamp, FIFO append
//    preserves the seq tie-break order: dispatch order is identical to a
//    total (time, seq) sort.
//
// Ordering guarantee: `At` clamps past times to `now()`, and a clamped
// event is appended *behind* every event already queued for the current
// instant (its seq is newer). Code that schedules at `now()` from inside a
// callback therefore always runs after the events that were already due.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"

namespace redn::sim {

class ShardedSimulator;

class EventDomain {
 public:
  EventDomain() = default;
  ~EventDomain();

  EventDomain(const EventDomain&) = delete;
  EventDomain& operator=(const EventDomain&) = delete;

  // Current simulated time.
  Nanos now() const { return now_; }

  // Shard identity. A standalone domain (the classic `sim::Simulator`) is
  // shard 0 of no coordinator.
  int shard() const { return shard_; }
  ShardedSimulator* coordinator() const { return coord_; }

  // The domain currently dispatching on this thread, or nullptr outside a
  // sharded round (setup code, single-threaded runs). Used by the shard-
  // affinity asserts and by device code to pick the executing shard.
  static EventDomain* Current() { return tls_running_; }

  // Schedules `action` to run at absolute time `t`. Scheduling into the past
  // clamps to `now()`; the clamped action runs after all events already
  // queued at the current instant (FIFO by scheduling order).
  //
  // Same-instant continuation fusion: a continuation scheduled for `now()`
  // from inside a running event is fused onto a bounded trampoline — run by
  // `Dispatch` right after the current callback returns — instead of
  // round-tripping the calendar queue, but ONLY when it would provably be
  // the very next event dispatched: the fine bucket for `now()` must be
  // empty (every pending same-instant event lives there, because cascades
  // are eager), and earlier fused continuations drain in FIFO order before
  // it. Once anything is pending at the current instant, later same-instant
  // schedules fall back to the queue, so dispatch order — and therefore
  // every simulated result — is bit-identical to the unfused engine
  // (tests/sim_determinism_test.cc covers exactly these cases).
  //
  // `action` is any void() callable. Captures up to 64 bytes are stored
  // inline in the slab node (no heap); larger ones heap-allocate and bump
  // `heap_fallbacks()`.
  template <class F>
  void At(Nanos t, F&& action) {
    AssertSameShard();
    if (t <= now_) [[unlikely]] {
      t = now_;
      if (in_dispatch_ && fuse_budget_ > 0 &&
          fine_.buckets[FineIndex(now_)].head == nullptr) {
        --fuse_budget_;
        Bind(t, std::forward<F>(action), /*fused=*/true);
        return;
      }
    }
    Bind(t, std::forward<F>(action), /*fused=*/false);
  }

  // Schedules `action` to run `delay` ns from now.
  template <class F>
  void After(Nanos delay, F&& action) {
    At(now_ + delay, std::forward<F>(action));
  }

  // Schedules `action` at absolute time `t` on shard `dst_shard` of this
  // domain's coordinator. Same-shard (or coordinator-less) sends degrade to
  // plain At. Cross-shard sends append to the (src,dst) mailbox — written
  // only by this domain's thread during a round, merged into the
  // destination wheel at the next round barrier in (time, src_shard, seq)
  // order — and must respect the conservative lookahead: `t` at least
  // `now() + lookahead()` ns in the future, or std::logic_error.
  // Defined in sim/sharded.h (needs the coordinator's mailbox).
  template <class F>
  void SendTo(int dst_shard, Nanos t, F&& action);

  // Runs a single event. Returns false when the queue is empty; in that
  // case the clock still advances to any noted horizon (see NoteHorizon),
  // so a drained run ends at the last host-visibility instant exactly as
  // it did when every CQE scheduled a visibility event.
  bool Step();

  // Time of the earliest pending event, if any. Lets poll helpers decide
  // whether a known future instant (e.g. a CQE's host-visibility time)
  // arrives before the next event.
  bool PeekNextEventTime(Nanos* t) const { return PeekEarliest(t); }

  // Records that simulated state becomes externally observable at `t`
  // without scheduling an event: when the queue drains, the clock advances
  // to the latest noted horizon. This is how CQE host-visibility keeps
  // "time flowing" for pollers at one event per CQE.
  void NoteHorizon(Nanos t) {
    if (t > horizon_) horizon_ = t;
  }

  // Runs until the event queue drains.
  void Run();

  // Runs until the queue drains or simulated time would exceed `t`.
  // Events scheduled exactly at `t` are executed.
  void RunUntil(Nanos t);

  // Round execution for the sharded coordinator: dispatches every pending
  // event with time < `end_exclusive` and stops, leaving the clock at the
  // last dispatched instant (NOT advanced to the window end — the next
  // round's safe horizon is computed from real event times). Safe to call
  // on a standalone domain too.
  void DrainWindow(Nanos end_exclusive);

  // Drops all pending events and resets the clock to zero. Statistics
  // (events_processed, slab counters) are kept; they are cumulative per
  // domain.
  void Reset();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return size_; }

  // Callback-storage accounting: events whose callable fit the node's
  // inline storage vs. those that needed a heap allocation.
  std::uint64_t slab_hits() const { return slab_hits_; }
  std::uint64_t heap_fallbacks() const { return heap_fallbacks_; }

 private:
  friend class ShardedSimulator;

  // Wheel geometry. The fine wheel's 4096 x 1 ns buckets cover every
  // latency constant in the NIC calibration; the coarse wheel's 4096 x
  // 4096 ns buckets absorb host-side delays (poll intervals, rate
  // limiters); only multi-16.8ms horizons touch the far heap.
  static constexpr std::size_t kSlotBits = 12;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kSlotMask = kSlots - 1;
  static constexpr Nanos kFineSpan = static_cast<Nanos>(kSlots);
  static constexpr Nanos kCoarseSpan = kFineSpan * static_cast<Nanos>(kSlots);
  static constexpr std::size_t kWords = kSlots / 64;

  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  // Fine wheel: intrusive FIFO lists plus a two-level occupancy bitmap.
  // Both wheels are *aligned* to their span (window base = now & ~(span-1)),
  // so bucket index is monotone in time within the window and scans never
  // wrap.
  struct Wheel {
    std::array<Bucket, kSlots> buckets{};
    std::array<std::uint64_t, kWords> bitmap{};
    std::uint64_t summary = 0;  // bit w set <=> bitmap[w] != 0
    std::size_t size = 0;

    void Append(std::size_t b, EventNode* n);
    EventNode* PopFront(std::size_t b);
    // Index of the first non-empty bucket; wheel must be non-empty.
    std::size_t FirstBucket() const;
  };

  // Coarse wheel: buckets are recycled pointer arrays instead of intrusive
  // lists. Appending never touches the previous tail node (the slab nodes
  // are scattered; that write is a guaranteed cache miss), and draining
  // walks a dense array that can be prefetched arbitrarily deep. Capacity
  // is retained across reuse, so steady-state appends do not allocate.
  struct CoarseWheel {
    std::array<std::vector<EventNode*>, kSlots> buckets;
    std::array<std::uint64_t, kWords> bitmap{};
    std::uint64_t summary = 0;
    std::size_t size = 0;

    void Append(std::size_t b, EventNode* n);
    void ClearBucket(std::size_t b);
    // Index of the first non-empty bucket; wheel must be non-empty.
    std::size_t FirstBucket() const;
  };

  // Far entries carry (time, seq) by value so sort compares never chase
  // the node pointer (the nodes live scattered across slab chunks). The far
  // set is an *unsorted* append-only vector sorted lazily — descending by
  // (time, seq) — only when a super-slot cascade actually needs ordered
  // pops (from the back, so remaining entries stay sorted). Appends are
  // sequential writes instead of log-n heap sifts over cold memory, which
  // is the difference that shows up on the wide-window burst bench.
  struct FarEntry {
    Nanos time;
    std::uint64_t seq;
    EventNode* node;
  };
  struct FarLater {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static std::size_t FineIndex(Nanos t) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t)) & kSlotMask;
  }
  static std::size_t CoarseIndex(Nanos t) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >>
                                    kSlotBits) &
           kSlotMask;
  }

  // Shard-affinity guard: while a sharded round is executing, the only
  // domain a thread may schedule into directly is the one it is running.
  // Cross-shard scheduling must go through SendTo (mailboxes are the only
  // legal cross-thread edge). No-op outside rounds and in release builds.
  void AssertSameShard() const {
    assert((tls_running_ == nullptr || tls_running_ == this) &&
           "At/After on a foreign shard during a sharded round; use "
           "SendTo(shard, t, fn)");
  }

  // Binds the callable into a slab node and either queues it or appends it
  // to the fusion trampoline.
  template <class F>
  void Bind(Nanos t, F&& action, bool fused) {
    EventNode* n = pool_.Acquire();
    n->time = t;
    n->seq = next_seq_++;
    if (BindEvent(n, std::forward<F>(action))) {
      ++slab_hits_;
    } else {
      ++heap_fallbacks_;
    }
    ++size_;
    if (fused) {
      deferred_.push_back(n);
    } else {
      Place(n);
    }
  }

  // Files `n` into fine wheel / coarse wheel / far heap based on its time
  // relative to the current (aligned) windows.
  void Place(EventNode* n);
  // Advances the aligned windows to contain `t` and cascades events down:
  // far -> coarse when the super-slot changes, then the coarse bucket of
  // the new fine slot -> fine. Must run on every `now_` advance so FIFO
  // order per instant is preserved (see class comment).
  void AdvanceWindows(Nanos t);
  static constexpr Nanos kNanosMax = std::numeric_limits<Nanos>::max();

  // Runs the earliest event, already peeked at time `t`.
  void Dispatch(Nanos t);
  // Dispatches the earliest fine-wheel event if one exists at time <= limit;
  // returns whether it did. The single home of the base|bucket fast path
  // shared by Step and RunUntil: the earliest event's bucket index doubles
  // as its timestamp (t = base | bucket), the time is inside the current
  // windows by construction, and the peek's bucket scan is reused for the
  // pop — one bitmap walk per event instead of two plus a window check.
  // Defined here so the per-event Run/Step loop inlines it.
  bool TryDispatchFineEarliest(Nanos limit) {
    if (fine_.size == 0) return false;
    const std::size_t b = fine_.FirstBucket();
    const Nanos when = fine_base_ | static_cast<Nanos>(b);
    if (when > limit) return false;
    now_ = when;
    DispatchFine(b);
    return true;
  }
  // Pops and runs the head of fine bucket `bucket`; `now_` must already be
  // set to the bucket's instant and the windows must cover it.
  void DispatchFine(std::size_t bucket);
  // Out-of-line tail of Dispatch: runs pending fused continuations.
  void DrainDeferred();
  bool PeekEarliest(Nanos* t) const;
  // Destroys all pending callables without running them.
  void DrainAll();

  Nanos now_ = 0;
  Nanos horizon_ = 0;      // latest NoteHorizon instant; consumed on drain
  Nanos fine_base_ = 0;    // == now_ & ~(kFineSpan - 1)
  Nanos coarse_base_ = 0;  // == now_ & ~(kCoarseSpan - 1)
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t slab_hits_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  std::size_t size_ = 0;

  // Continuation-fusion trampoline. Bounded per dispatch so a pathological
  // same-instant self-rescheduler degrades to the queue (where it would
  // have spun anyway) instead of starving the budget reset.
  static constexpr int kMaxFusedPerDispatch = 64;
  bool in_dispatch_ = false;
  int fuse_budget_ = kMaxFusedPerDispatch;
  std::vector<EventNode*> deferred_;  // FIFO; drained by Dispatch

  Wheel fine_;
  CoarseWheel coarse_;
  std::vector<FarEntry> far_;   // lazily sorted descending by (time, seq)
  bool far_sorted_ = true;      // false after an append past the sorted tail
  Nanos far_min_ = 0;           // min time in far_; valid iff !far_.empty()
  EventPool pool_;

  // Set by ShardedSimulator at construction; a standalone domain keeps the
  // defaults and is indistinguishable from the pre-sharding Simulator.
  int shard_ = 0;
  ShardedSimulator* coord_ = nullptr;

  static thread_local EventDomain* tls_running_;
};

// Historical name: the single-threaded simulator is exactly one event
// domain with no coordinator.
using Simulator = EventDomain;

}  // namespace redn::sim
