// Slab-allocated event nodes with inline (small-buffer-optimized) callbacks.
//
// The simulator's hot path schedules millions of short-lived closures; a
// `std::function` per event means one heap allocation on construction and
// another on every copy. Instead, each event is a fixed-size `EventNode`
// drawn from a free-list slab owned by the simulator, and the callable is
// placement-constructed into 64 bytes of inline storage. Every engine-side
// lambda in the RNIC model fits (the device keeps bulky state — WQE images,
// payloads — in pooled side structures precisely so captures stay small);
// oversized captures fall back to a single heap allocation, counted so
// benches can assert the fallback never happens on the steady-state path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace redn::sim {

// Inline callable storage per event. 64 bytes holds every capture list the
// engine uses (pointers + indices); see the class comment above.
inline constexpr std::size_t kEventInlineBytes = 64;

struct EventNode {
  Nanos time = 0;
  std::uint64_t seq = 0;       // tie-breaker: FIFO among same-time events
  EventNode* next = nullptr;   // bucket FIFO link / free-list link
  // Type-erased dispatcher. `run == true` invokes the callable then destroys
  // it; `run == false` destroys it without invoking (Reset / teardown).
  void (*op)(EventNode*, bool run) = nullptr;
  alignas(std::max_align_t) std::byte storage[kEventInlineBytes];
};

// Slab allocator for EventNodes. Nodes are carved out of large chunks and
// recycled forever; steady-state Acquire/Release never touches the system
// allocator. The free set is a dense pointer stack rather than an intrusive
// list: a linked free list makes every Acquire a *dependent* cache miss
// (the next head pointer lives inside the cold node just handed out), while
// a stack lets Acquire prefetch the node it will return several calls from
// now, so burst schedules overlap their slab misses.
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* Acquire() {
    if (free_.empty()) Grow();
    EventNode* n = free_.back();
    free_.pop_back();
    const std::size_t sz = free_.size();
    if (sz >= kPrefetchDepth) __builtin_prefetch(free_[sz - kPrefetchDepth], 1);
    return n;
  }

  // The node's callable must already be destroyed (via `op`).
  void Release(EventNode* n) {
    n->op = nullptr;
    free_.push_back(n);
  }

 private:
  static constexpr std::size_t kChunkNodes = 512;
  static constexpr std::size_t kPrefetchDepth = 8;

  void Grow() {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    EventNode* base = chunks_.back().get();
    free_.reserve(free_.size() + kChunkNodes);
    for (std::size_t i = kChunkNodes; i-- > 0;) free_.push_back(&base[i]);
  }

  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::vector<EventNode*> free_;
};

namespace detail {
template <class Fn>
inline constexpr bool kFitsInline = sizeof(Fn) <= kEventInlineBytes &&
                                    alignof(Fn) <= alignof(std::max_align_t) &&
                                    std::is_nothrow_move_constructible_v<Fn>;
}  // namespace detail

// Binds callable `f` into `n`. Returns true when it fit inline (slab hit),
// false when it required a heap allocation (oversized capture fallback).
template <class F>
bool BindEvent(EventNode* n, F&& f) {
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_v<Fn&>, "event callback must be callable");
  if constexpr (detail::kFitsInline<Fn>) {
    ::new (static_cast<void*>(n->storage)) Fn(std::forward<F>(f));
    n->op = [](EventNode* node, bool run) {
      Fn* fn = std::launder(reinterpret_cast<Fn*>(node->storage));
      if (run) (*fn)();
      fn->~Fn();
    };
    return true;
  } else {
    Fn* heap = new Fn(std::forward<F>(f));
    ::new (static_cast<void*>(n->storage)) Fn*(heap);
    n->op = [](EventNode* node, bool run) {
      Fn* fn = *std::launder(reinterpret_cast<Fn**>(node->storage));
      if (run) (*fn)();
      delete fn;
    };
    return false;
  }
}

}  // namespace redn::sim
