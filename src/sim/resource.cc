#include "sim/resource.h"

namespace redn::sim {

Nanos FifoResource::Reserve(Nanos now, Nanos service) {
  const Nanos start = free_at_ > now ? free_at_ : now;
  free_at_ = start + service;
  busy_time_ += service;
  ++jobs_;
  return free_at_;
}

Nanos BandwidthResource::Reserve(Nanos now, std::uint64_t bytes) {
  const Nanos service = SerializationDelay(bytes);
  const Nanos start = free_at_ > now ? free_at_ : now;
  free_at_ = start + service;
  busy_time_ += service;
  bytes_moved_ += bytes;
  return free_at_;
}

}  // namespace redn::sim
