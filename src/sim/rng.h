// Deterministic random number generation (xoshiro256**) for workloads.
//
// std::mt19937_64 would work, but a small local generator keeps state
// copyable/seedable across actors and is noticeably faster for the
// million-operation workloads the benches run.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace redn::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponential with the given mean (used by scheduling-delay models).
  double NextExponential(double mean);

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Duration helpers.
  Nanos NextNanos(Nanos lo, Nanos hi) {
    return static_cast<Nanos>(NextInRange(static_cast<std::uint64_t>(lo),
                                          static_cast<std::uint64_t>(hi)));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace redn::sim
