// Measurement helpers: latency recorders, percentiles, throughput timelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace redn::sim {

// The avg/percentile bundle the workload drivers report (µs).
struct LatencySummary {
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

// Collects individual latency samples (ns) and reports summary statistics.
class LatencyRecorder {
 public:
  void Add(Nanos sample) {
    samples_.push_back(sample);
    sorted_ = false;  // invalidate here, not in the percentile query
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MeanNs() const;
  Nanos MinNs() const;
  Nanos MaxNs() const;
  // Nearest-rank percentile, p in [0,100].
  Nanos PercentileNs(double p) const;

  double MeanUs() const { return MeanNs() / 1e3; }
  double PercentileUs(double p) const { return ToMicros(PercentileNs(p)); }
  double MedianUs() const { return PercentileUs(50.0); }
  LatencySummary Summarize() const {
    if (empty()) return {};
    return {MeanUs(), PercentileUs(50.0), PercentileUs(99.0),
            PercentileUs(99.9)};
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }
  const std::vector<Nanos>& samples() const { return samples_; }

 private:
  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Counts events into fixed-width time buckets; used for the Fig 16
// throughput-over-time plot.
class ThroughputTimeline {
 public:
  ThroughputTimeline(Nanos bucket_width, Nanos horizon);

  void Record(Nanos when);
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const { return counts_[bucket]; }
  double BucketStartSeconds(std::size_t bucket) const;
  // Ops/sec within the bucket.
  double Rate(std::size_t bucket) const;
  std::uint64_t MaxCount() const;

 private:
  Nanos bucket_width_;
  std::vector<std::uint64_t> counts_;
};

// Formats a floating value with fixed precision (report helper).
std::string Fixed(double v, int digits = 2);

}  // namespace redn::sim
