// Sharded parallel simulation: N EventDomains advanced in deterministic
// conservative rounds on real threads.
//
// Synchronization model (docs/PARSIM.md has the full write-up):
//  - Every actor (device, host poller, client) lives on exactly one shard
//    and schedules only into its own domain; the ONLY cross-shard channel
//    is `EventDomain::SendTo(shard, t, fn)`.
//  - Cross-shard links declare a one-way latency via SetLookaheadFloor
//    (the fabric does this at AttachPort time); the minimum over all
//    cross-shard links is the lookahead L. Zero-latency cross-shard links
//    are rejected — with L = 0 no shard could ever safely run ahead.
//  - A round computes T_min = earliest pending event across all shards and
//    lets every shard dispatch events in the window [T_min, T_min + L) in
//    parallel. Any message sent from inside the window is due at
//    t_send + (path latency >= L) >= T_min + L, i.e. strictly beyond the
//    window, so no shard can receive an event in its past: conservative
//    synchronization with link latency as the lookahead, as in federated
//    ns-3 co-simulation.
//  - Mailboxes are per-(src,dst) single-producer queues: appended only by
//    the source shard's thread during a round, merged into the destination
//    wheel by the coordinator between rounds (the round barrier is the
//    happens-before edge — mailboxes and the round window are the only
//    cross-thread data, which is what the TSan CI job checks). The merge
//    is sorted by (time, src_shard, seq), so simulated results are a pure
//    function of seed x shard count: bit-identical across reruns and
//    independent of thread scheduling.
//
// `shards = 1` is the degenerate case: Run/RunUntil delegate straight to
// the single domain's classic single-threaded loop — the exact pre-sharding
// code path, byte-for-byte identical results.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/event_domain.h"

namespace redn::sim {

class ShardedSimulator {
 public:
  explicit ShardedSimulator(int shards);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shards() const { return static_cast<int>(domains_.size()); }
  EventDomain& shard(int i) { return *domains_[static_cast<std::size_t>(i)]; }
  const EventDomain& shard(int i) const {
    return *domains_[static_cast<std::size_t>(i)];
  }

  // Registers a cross-shard one-way latency; the lookahead is the minimum
  // over all registrations. Called by Fabric when a port attach creates a
  // cross-shard pair, or directly by tests/custom topologies. A zero (or
  // negative) latency makes conservative sync impossible and throws
  // std::invalid_argument.
  void SetLookaheadFloor(Nanos one_way);
  // Current lookahead; kNoLookahead until a cross-shard link registers one
  // (then the whole run is a single embarrassingly-parallel round).
  Nanos lookahead() const { return lookahead_; }
  static constexpr Nanos kNoLookahead = std::numeric_limits<Nanos>::max();

  // Runs until every domain's queue and every mailbox drains.
  void Run();
  // Runs until drained or simulated time would exceed `t`; events exactly
  // at `t` execute, and every domain's clock ends at >= t.
  void RunUntil(Nanos t);

  // Drops pending events in every domain and every undrained mailbox and
  // resets all clocks (and mailbox sequence counters) to zero. Cumulative
  // statistics are kept, mirroring EventDomain::Reset.
  void Reset();

  // Aggregated statistics. Each counter is summed over the per-shard
  // domains exactly once (the domains are disjoint — no double counting);
  // pending_events additionally includes messages sitting in mailboxes
  // that have not been merged into a destination wheel yet.
  std::uint64_t events_processed() const;
  std::uint64_t slab_hits() const;
  std::uint64_t heap_fallbacks() const;
  std::size_t pending_events() const;
  // Latest domain clock (all domains agree after RunUntil).
  Nanos now() const;

  // Mailbox traffic counters (cumulative, like the domain stats).
  std::uint64_t cross_shard_sends() const;
  std::uint64_t mailbox_merges() const { return merges_; }
  std::uint64_t rounds() const { return rounds_; }

  // Mailbox append — called by EventDomain::SendTo from the source shard's
  // thread (or from setup code between runs). Throws std::logic_error when
  // `t` violates the lookahead contract (t < src_now + lookahead, or no
  // cross-shard lookahead registered at all).
  void PostCrossShard(int src, int dst, Nanos t, Nanos src_now,
                      std::function<void()> fn);

 private:
  struct MailMsg {
    Nanos time;
    std::uint64_t seq;  // per-(src,dst) send order
    std::function<void()> fn;
  };
  struct Mailbox {
    std::vector<MailMsg> pending;  // written by src thread, drained by merge
    std::uint64_t next_seq = 0;
    std::uint64_t total_sent = 0;
  };

  // Sense-reversing spin barrier. Rounds are often sub-microsecond, so a
  // condvar barrier's wake latency would dominate; spin first, then yield
  // so oversubscribed machines (or a 1-core CI box) still make progress.
  class SpinBarrier {
   public:
    void Init(int n) { n_ = n; }
    void Wait() {
      const std::uint64_t ph = phase_.load(std::memory_order_acquire);
      if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        count_.store(0, std::memory_order_relaxed);
        phase_.store(ph + 1, std::memory_order_release);
      } else {
        int spins = 0;
        while (phase_.load(std::memory_order_acquire) == ph) {
          if (++spins > 2048) {
            std::this_thread::yield();
            spins = 0;
          }
        }
      }
    }

   private:
    int n_ = 1;
    std::atomic<int> count_{0};
    std::atomic<std::uint64_t> phase_{0};
  };

  void RunWindowed(Nanos limit);  // rounds until no pending event <= limit
  void MergeMailboxes();
  bool EarliestPending(Nanos* t) const;
  void RunShard(int k);   // one shard's window, exceptions captured
  void WorkerLoop(int k);

  std::vector<std::unique_ptr<EventDomain>> domains_;
  std::vector<Mailbox> mail_;  // index: src * shards + dst
  Nanos lookahead_ = kNoLookahead;

  // Round state. window_end_ is written by the coordinator before the
  // start barrier and read by workers after it; stop_/abort_ are atomic.
  Nanos window_end_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> abort_{false};
  SpinBarrier start_;
  SpinBarrier end_;
  std::mutex err_mu_;
  std::exception_ptr err_;  // first exception thrown inside a round

  std::uint64_t rounds_ = 0;
  std::uint64_t merges_ = 0;

  // Merge scratch (coordinator only): reused across rounds.
  struct MergeKey {
    Nanos time;
    int src;
    std::uint64_t seq;
    std::function<void()>* fn;
  };
  std::vector<MergeKey> merge_scratch_;
};

// Cross-shard scheduling. Same-shard (or coordinator-less) sends are plain
// At; cross-shard sends go through the coordinator's mailbox.
template <class F>
void EventDomain::SendTo(int dst_shard, Nanos t, F&& action) {
  if (coord_ == nullptr) {
    if (dst_shard != shard_) {
      throw std::logic_error(
          "SendTo: standalone Simulator has no coordinator; only its own "
          "shard is addressable");
    }
    At(t, std::forward<F>(action));
    return;
  }
  if (dst_shard == shard_) {
    At(t, std::forward<F>(action));
    return;
  }
  coord_->PostCrossShard(shard_, dst_shard, t, now_,
                         std::function<void()>(std::forward<F>(action)));
}

}  // namespace redn::sim
