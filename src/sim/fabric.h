// Shared network fabric: named endpoints (NIC ports) attached to a switch
// through full-duplex bandwidth-modeled links.
//
// The per-QP constant `net_one_way` latency models an uncontended point-to-
// point cable: links never queue and experiments cannot scale past one
// client per QP pair. The fabric replaces that with a shared-bottleneck
// model in the spirit of RDMA traffic generators: every endpoint owns a TX
// and an RX pipe (BandwidthResource), and a transfer src -> dst
//
//   1. serializes out of src's TX pipe (queueing behind src's own traffic),
//   2. propagates src.prop + switch_latency + dst.prop, then
//   3. serializes into dst's RX pipe (queueing behind *everyone else's*
//      traffic to dst — the N-clients-one-server congestion point).
//
// Store-and-forward at the switch is deliberate: arrival is when the last
// byte lands, so both serialization terms appear in latency, and the
// reservation model keeps this exact for FIFO service with zero extra
// events (see sim/resource.h).
//
// The fabric is a pure timing layer: it moves no bytes and knows nothing
// about verbs. Devices ask "when does a transfer of `bytes` leaving at `t`
// arrive?" and schedule delivery themselves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/resource.h"
#include "sim/sharded.h"
#include "sim/time.h"

namespace redn::sim {

// One attachment point (a NIC port's cable into the switch).
struct LinkSpec {
  double gbps = 92.0;       // full-duplex: TX and RX each at this rate
  Nanos propagation = 125;  // port <-> switch one-way latency
};

class Fabric {
 public:
  explicit Fabric(Nanos switch_latency = 0)
      : switch_latency_(switch_latency) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Plugs a new endpoint into the switch; returns its id. `domain` is the
  // event domain (shard) the owning device schedules on; when two endpoints
  // of the same coordinator land on different shards, the pair's one-way
  // latency becomes a lookahead floor for the conservative sync — and a
  // zero-latency cross-shard pair is rejected right here, at attach time,
  // because no lookahead window could ever cover it.
  int Attach(const LinkSpec& spec, std::string name = {},
             EventDomain* domain = nullptr) {
    if (domain != nullptr && domain->coordinator() != nullptr) {
      for (const Endpoint& other : eps_) {
        if (other.domain == nullptr || other.domain == domain ||
            other.domain->coordinator() != domain->coordinator()) {
          continue;
        }
        domain->coordinator()->SetLookaheadFloor(spec.propagation +
                                                 switch_latency_ + other.prop);
      }
    }
    eps_.push_back(Endpoint{BandwidthResource(spec.gbps),
                            BandwidthResource(spec.gbps), spec.propagation,
                            std::move(name), domain});
    return static_cast<int>(eps_.size()) - 1;
  }

  // The event domain endpoint `ep` was attached with (nullptr for
  // pre-sharding callers).
  EventDomain* domain(int ep) const { return eps_[ep].domain; }

  std::size_t endpoint_count() const { return eps_.size(); }
  const std::string& name(int ep) const { return eps_[ep].name; }
  Nanos switch_latency() const { return switch_latency_; }

  // Zero-byte one-way latency src -> dst (acks, tiny control messages).
  Nanos OneWay(int src, int dst) const {
    return eps_[src].prop + switch_latency_ + eps_[dst].prop;
  }

  // Reserves the path for `bytes` leaving src at `t`; returns the instant
  // the last byte arrives at dst. Both pipes advance their horizons, so
  // concurrent transfers queue exactly where real traffic would.
  Nanos Deliver(int src, int dst, Nanos t, std::uint64_t bytes) {
    Endpoint& s = eps_[src];
    Endpoint& d = eps_[dst];
    const Nanos tx_done = s.tx.Reserve(t, bytes);
    const Nanos at_dst = tx_done + s.prop + switch_latency_ + d.prop;
    return d.rx.Reserve(at_dst, bytes);
  }

  // Pure serialization delay through an endpoint's pipe (no queueing).
  Nanos SerializationDelay(int ep, std::uint64_t bytes) const {
    return eps_[ep].tx.SerializationDelay(bytes);
  }

  // --- packet-level access (sim::Transport) ---------------------------------
  // One side of the path at a time, so the packetized transport can model
  // partial traversals: a packet eaten at the sender's egress reserves TX
  // only and never occupies the receiver's pipe, while one dropped or
  // corrupted at the receiver has already burned both pipes' bandwidth.
  Nanos ReserveTx(int ep, Nanos t, std::uint64_t bytes) {
    return eps_[ep].tx.Reserve(t, bytes);
  }
  Nanos ReserveRx(int ep, Nanos t, std::uint64_t bytes) {
    return eps_[ep].rx.Reserve(t, bytes);
  }

  // --- utilisation / accounting (bottleneck reporting) ---------------------
  double TxUtilisation(int ep, Nanos window) const {
    return Util(eps_[ep].tx, window);
  }
  double RxUtilisation(int ep, Nanos window) const {
    return Util(eps_[ep].rx, window);
  }

 private:
  struct Endpoint {
    BandwidthResource tx;
    BandwidthResource rx;
    Nanos prop;
    std::string name;
    EventDomain* domain = nullptr;  // shard affinity of the owning device
  };

  // Fraction of [0, window] the pipe spent busy. A reservation extending
  // past `window` is truncated at the boundary (busy_time_before), and the
  // result is clamped to 1.0: a raw busy_time() / window quotient exceeds
  // 1.0 whenever the measurement window is shorter than the accumulated
  // busy time (e.g. a warmup-excluded window), which is a meaningless
  // utilisation.
  static double Util(const BandwidthResource& r, Nanos window) {
    if (window <= 0) return 0.0;
    const double u = static_cast<double>(r.busy_time_before(window)) /
                     static_cast<double>(window);
    return u > 1.0 ? 1.0 : u;
  }

  std::vector<Endpoint> eps_;
  Nanos switch_latency_;
};

}  // namespace redn::sim
