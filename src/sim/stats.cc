#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace redn::sim {

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyRecorder::MeanNs() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

Nanos LatencyRecorder::MinNs() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Nanos LatencyRecorder::MaxNs() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

Nanos LatencyRecorder::PercentileNs(double p) const {
  if (samples_.empty()) return 0;
  // Add()/Clear() invalidate sorted_, so back-to-back percentile queries
  // reuse one sort instead of re-sorting O(n log n) on every call.
  EnsureSorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx == 0) idx = 1;
  if (idx > samples_.size()) idx = samples_.size();
  return samples_[idx - 1];
}

ThroughputTimeline::ThroughputTimeline(Nanos bucket_width, Nanos horizon)
    : bucket_width_(bucket_width),
      counts_(static_cast<std::size_t>((horizon + bucket_width - 1) / bucket_width), 0) {
  if (bucket_width <= 0) throw std::invalid_argument("bucket_width must be > 0");
}

void ThroughputTimeline::Record(Nanos when) {
  if (when < 0) return;
  const std::size_t b = static_cast<std::size_t>(when / bucket_width_);
  if (b < counts_.size()) ++counts_[b];
}

double ThroughputTimeline::BucketStartSeconds(std::size_t bucket) const {
  return ToSeconds(static_cast<Nanos>(bucket) * bucket_width_);
}

double ThroughputTimeline::Rate(std::size_t bucket) const {
  return static_cast<double>(counts_[bucket]) / ToSeconds(bucket_width_);
}

std::uint64_t ThroughputTimeline::MaxCount() const {
  std::uint64_t m = 0;
  for (auto c : counts_) m = std::max(m, c);
  return m;
}

std::string Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace redn::sim
