// Simulated time primitives.
//
// All simulated time in this project is carried as signed 64-bit
// nanoseconds. Helpers below convert to/from the microsecond values the
// paper reports.
#pragma once

#include <cstdint>

namespace redn::sim {

// Nanoseconds of simulated time. Signed so durations can be subtracted
// without surprises; the simulator never schedules into the past.
using Nanos = std::int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

// Converts a nanosecond count to (fractional) microseconds for reporting.
constexpr double ToMicros(Nanos ns) { return static_cast<double>(ns) / 1e3; }

// Converts a nanosecond count to (fractional) seconds for reporting.
constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / 1e9; }

// Convenience literals used throughout the calibration tables.
constexpr Nanos Micros(double us) { return static_cast<Nanos>(us * 1e3); }
constexpr Nanos Millis(double ms) { return static_cast<Nanos>(ms * 1e6); }
constexpr Nanos Seconds(double s) { return static_cast<Nanos>(s * 1e9); }

}  // namespace redn::sim
