// Deterministic discrete-event simulator.
//
// The whole RNIC model is single-threaded and event-driven: hardware units,
// host CPUs, and clients are all actors that schedule closures at absolute
// simulated times. Events scheduled for the same instant run in FIFO order
// of scheduling, which makes runs bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace redn::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  // Current simulated time.
  Nanos now() const { return now_; }

  // Schedules `action` to run at absolute time `t`. Scheduling into the past
  // clamps to `now()` (the action runs as the next event at current time).
  void At(Nanos t, Action action);

  // Schedules `action` to run `delay` ns from now.
  void After(Nanos delay, Action action) { At(now_ + delay, std::move(action)); }

  // Runs a single event. Returns false when the queue is empty.
  bool Step();

  // Runs until the event queue drains.
  void Run();

  // Runs until the queue drains or simulated time would exceed `t`.
  // Events scheduled exactly at `t` are executed.
  void RunUntil(Nanos t);

  // Drops all pending events and resets the clock to zero. Statistics
  // (events_processed) are kept; they are cumulative per Simulator.
  void Reset();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos time;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace redn::sim
