// Historical header: `sim::Simulator` is now an alias for the per-shard
// `sim::EventDomain` (the single-threaded calendar-queue engine, unchanged).
// The class and its implementation live in sim/event_domain.{h,cc}; the
// multi-shard coordinator is sim/sharded.h. Existing includes keep working.
#pragma once

#include "sim/event_domain.h"
