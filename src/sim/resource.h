// Contended hardware resources for the timing model.
//
// Two shapes cover everything the RNIC model needs:
//  - FifoResource: a serial server (a processing unit, the WQE fetch engine,
//    the PCIe atomic unit, a CPU core). Work items occupy it back-to-back.
//  - BandwidthResource: a pipe with a byte rate (IB link, PCIe, memory bus).
//    Transfers occupy it for size/rate.
//
// Both are *reservation* models: callers ask "if I submit work of this size
// now, when does it finish?" and the resource advances its horizon. This is
// exact for FIFO service and keeps the event count low (one event per
// completion, none for queue churn).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace redn::sim {

// A serial FIFO server. `Reserve(now, service)` returns the completion time
// of a work item of duration `service` submitted at `now`.
class FifoResource {
 public:
  FifoResource() = default;

  // Reserves the resource; returns completion time. Inline: this runs once
  // or more per executed verb and is a handful of adds.
  Nanos Reserve(Nanos now, Nanos service) {
    const Nanos start = free_at_ > now ? free_at_ : now;
    free_at_ = start + service;
    busy_time_ += service;
    ++jobs_;
    return free_at_;
  }

  // Start time the next reservation would get.
  Nanos NextFree(Nanos now) const { return free_at_ > now ? free_at_ : now; }

  // Total busy time accumulated (for utilisation reporting).
  Nanos busy_time() const { return busy_time_; }
  std::uint64_t jobs() const { return jobs_; }

  void Reset() {
    free_at_ = 0;
    busy_time_ = 0;
    jobs_ = 0;
  }

 private:
  Nanos free_at_ = 0;
  Nanos busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

// A shared pipe with a fixed byte rate. `Reserve(now, bytes)` returns the
// time at which the last byte has passed through.
class BandwidthResource {
 public:
  // `gbits_per_sec` is the effective data rate of the pipe.
  explicit BandwidthResource(double gbits_per_sec)
      : ns_per_byte_(8.0 / gbits_per_sec) {}

  Nanos Reserve(Nanos now, std::uint64_t bytes) {
    const Nanos service = SerializationDelay(bytes);
    const Nanos start = free_at_ > now ? free_at_ : now;
    free_at_ = start + service;
    busy_time_ += service;
    bytes_moved_ += bytes;
    return free_at_;
  }

  // Pure serialization delay of `bytes` through this pipe, ignoring queueing.
  // Used for store-and-forward latency terms. Steady-state traffic repeats
  // one transfer size (64 B verbs, one value size), so a one-entry memo
  // turns the float multiply + truncation into a compare; the memo is a
  // pure-function cache and cannot affect determinism.
  Nanos SerializationDelay(std::uint64_t bytes) const {
    if (bytes != memo_bytes_) {
      memo_bytes_ = bytes;
      memo_delay_ =
          static_cast<Nanos>(ns_per_byte_ * static_cast<double>(bytes));
    }
    return memo_delay_;
  }

  double gbps() const { return 8.0 / ns_per_byte_; }
  Nanos busy_time() const { return busy_time_; }
  Nanos free_at() const { return free_at_; }
  // Busy time accumulated inside [0, t]: a reservation extending past `t`
  // is truncated at the boundary. The overhang beyond `t` belongs to the
  // final contiguous busy run ending at free_at_ (reservations start no
  // later than they are made), so subtracting it is exact for any `t` at
  // or after the last reservation instant — the utilisation-window case.
  // For earlier `t` the subtraction over-counts the overhang; clamping at
  // zero keeps the result a valid lower bound either way.
  Nanos busy_time_before(Nanos t) const {
    const Nanos over = free_at_ - t;
    if (over <= 0) return busy_time_;
    return over < busy_time_ ? busy_time_ - over : 0;
  }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

  void Reset() {
    free_at_ = 0;
    busy_time_ = 0;
    bytes_moved_ = 0;
  }

 private:
  double ns_per_byte_;
  Nanos free_at_ = 0;
  Nanos busy_time_ = 0;
  std::uint64_t bytes_moved_ = 0;
  // One-entry memo for SerializationDelay (bytes=0 maps to delay 0, so the
  // zero-init state is already a correct entry).
  mutable std::uint64_t memo_bytes_ = 0;
  mutable Nanos memo_delay_ = 0;
};

}  // namespace redn::sim
