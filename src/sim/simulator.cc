#include "sim/simulator.h"

#include <utility>

namespace redn::sim {

void Simulator::At(Nanos t, Action action) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns a const ref; move out via const_cast is
  // UB-prone, so copy the action handle (std::function copy) then pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  ev.action();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Nanos t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::Reset() {
  queue_ = {};
  now_ = 0;
  next_seq_ = 0;
}

}  // namespace redn::sim
