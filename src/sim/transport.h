// Packetized reliable-connection transport over the shared fabric.
//
// sim::Fabric moves whole messages, in order, losslessly: a transfer is one
// pair of pipe reservations and one delivery instant. That is exact for a
// healthy RC connection but cannot express the paper's resilience story
// (fig16) on the wire — nothing is ever dropped, reordered relative to a
// retransmission, or late because of one.
//
// Transport adds the missing layer, modeled on an InfiniBand RC engine:
//
//  - MTU segmentation: a message of L bytes becomes ceil(L/mtu) packets
//    (min 1 — a header-only message still crosses the wire), each carrying
//    `header_bytes` of overhead. Every packet pays its own TX and RX pipe
//    reservations, so packetized flows contend on the fabric exactly where
//    whole-message flows do, plus header tax.
//  - Per-flow PSN sequencing: a flow is one direction of one QP connection.
//    Packets carry consecutive PSNs; delivery to the caller is always in
//    order and duplicates are filtered by design.
//  - Loss/corruption injection: each endpoint link has independent loss and
//    corruption probabilities (defaults from the config, overridable per
//    link). A packet eaten at the sender's egress reserves TX bandwidth
//    only; one dropped or corrupted on ingress has burned both pipes. All
//    draws come from one seeded sim::Rng in event order, so a given
//    (config, seed) replays bit-identically.
//  - Loss recovery, two modes (TransportConfig::mode):
//      * go-back-N (default): the receiver buffers nothing and NAKs the
//        first out-of-order packet of a gap; the sender rewinds to the
//        lowest unacked PSN once per loss event.
//      * selective repeat: the receiver holds out-of-order packets in a
//        reassembly window and every NAK/ACK carries SACK ranges naming the
//        missing PSNs; the sender retransmits exactly those (once per SACK
//        event), so one lost packet costs one retransmission.
//    In both modes a retransmission timeout clocked off the simulator
//    covers tail losses and eaten ACKs. Consecutive timeouts on the same
//    base PSN double the interval (bounded exponential backoff, the
//    D2TCP-instability lesson); cumulative progress resets the exponent.
//  - Retry budgets: `retry_count` bounds consecutive timeouts on one base
//    PSN and `rnr_retry_count` bounds consecutive RNR NAKs; exhausting
//    either fails the flow — every unacked message fires `on_failed`
//    (first with the exhaustion reason, the rest flushed), later sends
//    fail immediately, and only ResetFlow() revives the flow. 0 keeps the
//    legacy retry-forever behaviour.
//  - RNR NAK + backoff: a message whose `rnr_probe` reports the receiver
//    not-ready (no RECV posted) is not delivered — the receiver rewinds to
//    the message's first PSN and answers an RNR NAK; the requester backs
//    off 4096ns × 2^min_rnr_timer, doubling per consecutive NAK, then
//    retransmits. A late-posted RECV lets the retry complete normally.
//  - ACK coalescing: cumulative ACKs are sent on message boundaries, every
//    `ack_every` in-order packets, and after at most `ack_delay` (the
//    delayed-ACK backstop that keeps a window-limited sender alive). ACKs
//    ride the reverse-direction pipes and are themselves subject to loss.
//
// Callers observe two instants per message: `on_deliver` fires when the
// last byte lands in order at the receiver, `on_acked` when the sender's
// cumulative ACK covers the message. The RNIC maps WRITE/SEND requester
// completions to on_acked and READ/receiver semantics to on_deliver — see
// RnicDevice::SendOverTransport / ReadOverTransport and docs/NET.md.
//
// The transport is pure protocol + timing: like the fabric it moves no
// payload bytes (the device's pooled Payload carries them) and it knows
// nothing about verbs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/fabric.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace redn::sim {

enum class TransportMode : std::uint8_t {
  kGoBackN,          // receiver buffers nothing; a gap rewinds the window
  kSelectiveRepeat,  // out-of-order reassembly + SACK-range retransmission
};

struct TransportConfig {
  std::uint32_t mtu = 4096;         // payload bytes per packet
  std::uint32_t header_bytes = 30;  // per-packet wire overhead (LRH+BTH+ICRC)
  std::uint32_t ack_bytes = 30;     // ACK/NAK wire size
  std::uint32_t window = 64;        // send window, packets
  std::uint32_t ack_every = 4;      // coalesce: ack every Nth in-order packet
  Nanos ack_delay = 2'000;          // delayed-ACK backstop
  Nanos rto = 50'000;               // base retransmission timeout (see below)
  double loss = 0.0;                // default per-link packet-loss probability
  double corrupt = 0.0;             // default per-link corruption probability
  std::uint64_t seed = 0x7a115eedULL;

  // --- RoCEv2-style reliability engine --------------------------------------
  TransportMode mode = TransportMode::kGoBackN;
  // Consecutive-RTO budget on one base PSN before the flow fails with
  // kRetryExceeded. 0 = unlimited (the legacy retry-forever default).
  std::uint32_t retry_count = 0;
  // Consecutive-RNR budget before kRnrRetryExceeded. 0 disables the RNR
  // NAK path entirely: rnr_probe is never consulted and SENDs racing an
  // empty RQ keep the legacy accept-as-dropped semantics.
  std::uint32_t rnr_retry_count = 0;
  // When nonzero, the base RTO becomes 4096ns × 2^timeout_exp (the IB
  // ibv_qp_attr::timeout encoding) instead of `rto`. Either base doubles
  // per consecutive timeout on the same PSN.
  std::uint32_t timeout_exp = 0;
  // RNR backoff base: the requester waits 4096ns × 2^min_rnr_timer after an
  // RNR NAK, doubling per consecutive NAK on the same message.
  std::uint32_t min_rnr_timer = 5;
  // SACK wire cost: bytes added to ack_bytes per missing-PSN range carried.
  std::uint32_t sack_range_bytes = 8;
};

struct TransportCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_acked = 0;
  std::uint64_t messages_failed = 0;  // on_failed deliveries (incl. flushes)
  std::uint64_t payload_bytes_delivered = 0;  // goodput numerator
  std::uint64_t wire_bytes_sent = 0;  // headers + retransmits + acks included
  std::uint64_t data_packets = 0;     // first transmissions
  std::uint64_t retransmits = 0;      // resends of any kind
  std::uint64_t sack_retransmits = 0; // resends targeted by SACK ranges
  std::uint64_t timeouts = 0;         // RTO firings that resent something
  std::uint64_t rto_fires = 0;        // every RTO firing with unacked data
  std::uint64_t spurious_retransmits = 0;  // arrived but receiver had it
  std::uint64_t nak_gobacks = 0;      // NAK-triggered go-back-N rewinds
  std::uint64_t dropped_tx = 0;       // eaten at the sender's egress
  std::uint64_t dropped_rx = 0;       // eaten at the receiver's ingress
  std::uint64_t corrupted = 0;        // delivered, failed the CRC, discarded
  std::uint64_t duplicates = 0;       // PSN below expected, discarded
  std::uint64_t out_of_order = 0;     // PSN above expected (a gap)
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t sacks_sent = 0;       // ACK/NAKs that carried SACK ranges
  std::uint64_t rnr_naks = 0;         // receiver-not-ready NAKs sent
  std::uint64_t rnr_backoffs = 0;     // requester backoff pauses taken
  std::uint64_t retry_exhausted = 0;  // flows failed: retry budget spent
  std::uint64_t rnr_exhausted = 0;    // flows failed: RNR budget spent
  std::uint64_t flow_resets = 0;      // ResetFlow() re-arms

  std::uint64_t PacketsLost() const {
    return dropped_tx + dropped_rx + corrupted;
  }
};

// Why a message failed (MessageOps::on_failed). The first unacked message
// of a failing flow carries the exhaustion reason; everything queued behind
// it flushes.
enum class MsgFailure : std::uint8_t {
  kRetryExceeded,     // consecutive-RTO budget spent (peer unreachable)
  kRnrRetryExceeded,  // consecutive-RNR budget spent (receiver never ready)
  kFlushed,           // queued behind a failure / sent on an errored flow
};

class Transport {
 public:
  // Fires with the simulated instant of the event (delivery or ack).
  using Callback = std::function<void(Nanos)>;

  // Extended per-message hooks. `rnr_probe` (optional) is consulted before
  // delivery: returning false means "receiver not ready" — the message is
  // NAKed and retried after backoff instead of delivered. It is only ever
  // consulted when cfg.rnr_retry_count > 0. `on_failed` (optional) fires
  // exactly once if the flow's retry budget dies under the message;
  // a message fires either {on_deliver, on_acked} or on_failed, never both.
  struct MessageOps {
    std::function<bool(Nanos)> rnr_probe;
    Callback on_deliver;
    Callback on_acked;
    std::function<void(Nanos, MsgFailure)> on_failed;
  };

  Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  Fabric& fabric() { return fabric_; }
  const TransportConfig& config() const { return cfg_; }
  const TransportCounters& counters() const { return counters_; }

  // Opens a unidirectional reliable flow src_ep -> dst_ep (fabric endpoint
  // ids). An RC connection uses one flow per direction.
  int OpenFlow(int src_ep, int dst_ep);

  // Queues a message of `bytes` payload on `flow`, transmissible from `t`
  // (clamped to now; messages on one flow go out in SendMessage order).
  // `on_deliver` fires when the last byte lands in order at the receiver;
  // `on_acked` (optional) when the sender's cumulative ACK covers it.
  // on_deliver always fires before on_acked. Both fire exactly once.
  void SendMessage(int flow, Nanos t, std::uint64_t bytes,
                   Callback on_deliver, Callback on_acked = {});

  // SendMessage with the full hook set (RNR probe + failure notification).
  void SendMessageEx(int flow, Nanos t, std::uint64_t bytes, MessageOps ops);

  // True once the flow's retry budget died; only ResetFlow revives it.
  bool FlowErrored(int flow) const {
    return flows_[static_cast<std::size_t>(flow)]->error;
  }

  // Tears the flow back to a fresh PSN space (the ibv_modify_qp →RESET
  // analogue): pending messages flush via on_failed(kFlushed), in-flight
  // packets and timers of the old incarnation die, and both the sender and
  // receiver halves restart from PSN 0.
  void ResetFlow(int flow);

  // Overrides the loss/corruption probabilities of one endpoint's link
  // (both directions); endpoints default to the config-wide values.
  void SetLinkFaults(int ep, double loss, double corrupt);

  // Gray-failure hook: adds `extra` one-way latency to every packet and ACK
  // that touches endpoint `ep` (either end of the flow), on top of the
  // fabric's propagation. 0 (the default for every endpoint) restores the
  // healthy path — and is exactly the pre-hook arithmetic, so configs that
  // never call this are bit-identical.
  void SetLinkDelay(int ep, Nanos extra);

  // Deterministic fault hooks for tests: eat the next `n` data packets /
  // ACKs crossing the fabric, bypassing the probabilistic model (and
  // consuming no randomness).
  void DropNextData(int n) { force_drop_data_ += n; }
  void DropNextAcks(int n) { force_drop_acks_ += n; }

 private:
  // ACK-leg flavours. kAck may still carry SACK ranges (selective repeat
  // acking around a hole); kNak is the go-back-N sequence-error NAK; kRnr
  // is receiver-not-ready, answered with backoff instead of retransmission.
  enum class AckKind : std::uint8_t { kAck, kNak, kRnr };

  struct Message {
    std::uint64_t len = 0;
    std::uint64_t first_psn = 0;
    std::uint64_t last_psn = 0;
    Nanos ready = 0;  // earliest transmission instant (DMA/exec done)
    MessageOps ops;
  };

  // Both directions' protocol state for one flow lives here; the sender and
  // receiver halves touch disjoint fields. unique_ptr keeps the address
  // stable — in-flight events capture Flow*.
  struct Flow {
    int src = -1;
    int dst = -1;
    // Incarnation: bumped by ResetFlow/FailFlow so in-flight packet and ACK
    // events of the old life are dropped on arrival.
    std::uint64_t gen = 0;
    bool error = false;  // budget exhausted; dead until ResetFlow
    // Sender.
    std::uint64_t next_psn = 0;     // next PSN to assign
    std::uint64_t base = 0;         // lowest unacked PSN
    std::uint64_t send_cursor = 0;  // next PSN to (re)transmit
    std::uint64_t high_water = 0;   // PSNs transmitted at least once
    std::uint64_t rto_epoch = 0;    // invalidates superseded RTO events
    std::uint32_t consec_rtos = 0;  // RTO fires since last cumulative progress
    std::uint32_t rnr_attempts = 0; // consecutive RNR NAKs received
    bool goback_armed = false;      // one NAK rewind per loss event
    bool rnr_paused = false;        // backing off; transmit nothing
    std::set<std::uint64_t> known_received;   // SACKed above base (SR)
    std::set<std::uint64_t> retx_outstanding; // SACK-resent, once per event
    std::deque<Message> msgs;       // FIFO, not yet fully acked
    std::size_t delivered = 0;      // msgs[0..delivered) fired on_deliver
    // Receiver.
    std::uint64_t expected = 0;     // next in-order PSN
    std::uint32_t rx_unacked = 0;   // in-order packets since the last ACK
    std::uint64_t ack_epoch = 0;    // invalidates superseded delayed ACKs
    bool ack_timer_armed = false;
    std::set<std::uint64_t> rx_ooo; // held out-of-order PSNs (SR only)
  };

  struct LinkFault {
    double loss = 0.0;
    double corrupt = 0.0;
  };

  struct PacketView {
    std::uint32_t bytes;  // payload bytes (wire adds header_bytes)
    Nanos ready;
  };

  // Missing-PSN ranges [first, last] carried by a selective-repeat ACK.
  using SackRanges = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

  PacketView PacketOf(const Flow& f, std::uint64_t psn) const;
  const LinkFault& FaultAt(int ep) const;
  Nanos DelayAt(int ep) const {
    const std::size_t i = static_cast<std::size_t>(ep);
    return i < delays_.size() ? delays_[i] : 0;
  }
  bool Lost(double p) { return p > 0.0 && rng_.NextDouble() < p; }
  static bool TakeForced(int* budget) {
    if (*budget <= 0) return false;
    --*budget;
    return true;
  }
  bool Sr() const { return cfg_.mode == TransportMode::kSelectiveRepeat; }
  Nanos BaseRto() const {
    return cfg_.timeout_exp == 0 ? cfg_.rto
                                 : (Nanos{4096} << cfg_.timeout_exp);
  }
  Nanos RnrDelay(std::uint32_t attempt) const;

  void TrySend(Flow& f);
  void SendPacket(Flow& f, std::uint64_t psn, const PacketView& p);
  void OnData(Flow& f, std::uint64_t psn);
  // Delivers every fully-arrived message at the head of the queue; returns
  // false if an rnr_probe rejected one (expected already rewound to its
  // first PSN, arrived packets of the tail re-held when selective repeat).
  bool DeliverReady(Flow& f, bool* boundary);
  void SendAck(Flow& f, AckKind kind);
  SackRanges MissingRanges(const Flow& f) const;
  // Records what a SACK proves arrived ([upto, high] minus the missing
  // ranges) in f.known_received.
  void MarkKnownReceived(Flow& f, std::uint64_t upto, std::uint64_t high,
                         const SackRanges& ranges);
  // Retransmits the SACK-named holes, at most once each per loss event;
  // returns how many packets went out.
  int SackRetransmit(Flow& f, const SackRanges& ranges);
  void OnAck(Flow& f, std::uint64_t upto, AckKind kind, std::uint64_t high,
             const SackRanges& ranges);
  // RTO/RNR-resume path: retransmits everything in [base, high_water) not
  // known received.
  void RetransmitMissing(Flow& f);
  void ArmRto(Flow& f);
  void OnRto(Flow& f);
  void OnRnrResume(Flow& f);
  void ArmAckTimer(Flow& f);
  void OnAckTimer(Flow& f, std::uint64_t epoch);
  void FailFlow(Flow& f, MsgFailure why);

  Simulator& sim_;
  Fabric& fabric_;
  TransportConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<LinkFault> faults_;  // indexed by endpoint; lazily grown
  std::vector<Nanos> delays_;      // per-endpoint added latency (kSlow)
  LinkFault default_fault_;
  int force_drop_data_ = 0;
  int force_drop_acks_ = 0;
  TransportCounters counters_;
};

}  // namespace redn::sim
