// Packetized reliable-connection transport over the shared fabric.
//
// sim::Fabric moves whole messages, in order, losslessly: a transfer is one
// pair of pipe reservations and one delivery instant. That is exact for a
// healthy RC connection but cannot express the paper's resilience story
// (fig16) on the wire — nothing is ever dropped, reordered relative to a
// retransmission, or late because of one.
//
// Transport adds the missing layer, modeled on an InfiniBand RC engine:
//
//  - MTU segmentation: a message of L bytes becomes ceil(L/mtu) packets
//    (min 1 — a header-only message still crosses the wire), each carrying
//    `header_bytes` of overhead. Every packet pays its own TX and RX pipe
//    reservations, so packetized flows contend on the fabric exactly where
//    whole-message flows do, plus header tax.
//  - Per-flow PSN sequencing: a flow is one direction of one QP connection.
//    Packets carry consecutive PSNs; delivery to the caller is always in
//    order and duplicates are filtered by design.
//  - Loss/corruption injection: each endpoint link has independent loss and
//    corruption probabilities (defaults from the config, overridable per
//    link). A packet eaten at the sender's egress reserves TX bandwidth
//    only; one dropped or corrupted on ingress has burned both pipes.
//  - Loss recovery, two modes (TransportConfig::mode):
//      * go-back-N (default): the receiver buffers nothing and NAKs the
//        first out-of-order packet of a gap; the sender rewinds to the
//        lowest unacked PSN once per loss event.
//      * selective repeat: the receiver holds out-of-order packets in a
//        reassembly window and every NAK/ACK carries SACK ranges naming the
//        missing PSNs; the sender retransmits exactly those (once per SACK
//        event), so one lost packet costs one retransmission.
//    In both modes a retransmission timeout clocked off the simulator
//    covers tail losses and eaten ACKs. Consecutive timeouts on the same
//    base PSN double the interval (bounded exponential backoff, the
//    D2TCP-instability lesson); cumulative progress resets the exponent.
//  - Retry budgets: `retry_count` bounds consecutive timeouts on one base
//    PSN and `rnr_retry_count` bounds consecutive RNR NAKs; exhausting
//    either fails the flow — every unacked message fires `on_failed`
//    (first with the exhaustion reason, the rest flushed), later sends
//    fail immediately, and only ResetFlow() revives the flow. 0 keeps the
//    legacy retry-forever behaviour.
//  - RNR NAK + backoff: a message whose `rnr_probe` reports the receiver
//    not-ready (no RECV posted) is not delivered — the receiver rewinds to
//    the message's first PSN and answers an RNR NAK; the requester backs
//    off 4096ns × 2^min_rnr_timer, doubling per consecutive NAK, then
//    retransmits. A late-posted RECV lets the retry complete normally.
//  - ACK coalescing: cumulative ACKs are sent on message boundaries, every
//    `ack_every` in-order packets, and after at most `ack_delay` (the
//    delayed-ACK backstop that keeps a window-limited sender alive). ACKs
//    ride the reverse-direction pipes and are themselves subject to loss.
//
// Callers observe two instants per message: `on_deliver` fires when the
// last byte lands in order at the receiver, `on_acked` when the sender's
// cumulative ACK covers the message. The RNIC maps WRITE/SEND requester
// completions to on_acked and READ/receiver semantics to on_deliver — see
// RnicDevice::SendOverTransport / ReadOverTransport and docs/NET.md.
//
// --- Split flows: one protocol, two event domains -------------------------
//
// A flow's state machine is split into a SenderHalf (window/base, SACK
// retransmit bookkeeping, RTO + retry budgets, RNR backoff) and a
// ReceiverHalf (reassembly, duplicate discard, SACK/NAK generation,
// delayed-ACK timers). Each half lives on its endpoint's EventDomain — the
// domain its device attached the fabric port with:
//
//  - When BOTH endpoints resolve to the transport's home domain, the flow
//    runs the *legacy* path: both halves advance on the home thread, every
//    loss/corruption draw comes from the one seeded `rng_` in event order,
//    and the wire crossing is the synchronous ReserveTx→ReserveRx walk —
//    byte-for-byte the pre-split engine, so shards=1 runs (and every
//    existing golden) stay bit-identical.
//  - Any other flow runs *split*: DATA, ACK/NAK, and reset-fence messages
//    cross between the halves as timestamped mailbox messages on the
//    sharded engine's (time, src_shard, seq) path (EventDomain::SendTo),
//    and all randomness moves to two per-flow seeded streams (sender-half
//    egress draws, receiver-half ingress draws — keyed off cfg.seed and
//    the flow id), so draw order is a pure function of seed × shard count.
//    The fabric guarantees OneWay(src,dst) ≥ the coordinator's lookahead
//    for any cross-shard endpoint pair (the pair itself registered a
//    lookahead floor at attach), which is exactly what makes every
//    cross-half SendTo legal.
//
// Ownership discipline (Debug builds assert it, mirroring EventDomain's
// tls check): sender-half state, the src endpoint's fabric pipes, and the
// src link's fault/delay entries are touched only on the sender's domain;
// likewise for the receiver half and dst. SendMessage/ResetFlow/
// FlowErrored are sender-half calls; SetLinkFaults/SetLinkDelay belong to
// the endpoint's owning shard. In split mode FailFlow/ResetFlow flush
// asynchronously: the sender bumps its incarnation, parks unacked messages
// in a limbo queue, and posts a reset fence to the receiver; only the
// fence's echo (≈ one RTT later) fires their on_failed — guaranteeing no
// receiver-side delivery of the old incarnation can still be in flight
// when the caller reclaims message resources. Legacy flows flush
// synchronously, exactly as before.
//
// The transport is pure protocol + timing: like the fabric it moves no
// payload bytes (the device's pooled Payload carries them) and it knows
// nothing about verbs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "sim/fabric.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace redn::sim {

enum class TransportMode : std::uint8_t {
  kGoBackN,          // receiver buffers nothing; a gap rewinds the window
  kSelectiveRepeat,  // out-of-order reassembly + SACK-range retransmission
};

struct TransportConfig {
  std::uint32_t mtu = 4096;         // payload bytes per packet
  std::uint32_t header_bytes = 30;  // per-packet wire overhead (LRH+BTH+ICRC)
  std::uint32_t ack_bytes = 30;     // ACK/NAK wire size
  std::uint32_t window = 64;        // send window, packets
  std::uint32_t ack_every = 4;      // coalesce: ack every Nth in-order packet
  Nanos ack_delay = 2'000;          // delayed-ACK backstop
  Nanos rto = 50'000;               // base retransmission timeout (see below)
  double loss = 0.0;                // default per-link packet-loss probability
  double corrupt = 0.0;             // default per-link corruption probability
  std::uint64_t seed = 0x7a115eedULL;

  // --- RoCEv2-style reliability engine --------------------------------------
  TransportMode mode = TransportMode::kGoBackN;
  // Consecutive-RTO budget on one base PSN before the flow fails with
  // kRetryExceeded. 0 = unlimited (the legacy retry-forever default).
  std::uint32_t retry_count = 0;
  // Consecutive-RNR budget before kRnrRetryExceeded. 0 disables the RNR
  // NAK path entirely: rnr_probe is never consulted and SENDs racing an
  // empty RQ keep the legacy accept-as-dropped semantics.
  std::uint32_t rnr_retry_count = 0;
  // When nonzero, the base RTO becomes 4096ns × 2^timeout_exp (the IB
  // ibv_qp_attr::timeout encoding) instead of `rto`. Either base doubles
  // per consecutive timeout on the same PSN.
  std::uint32_t timeout_exp = 0;
  // RNR backoff base: the requester waits 4096ns × 2^min_rnr_timer after an
  // RNR NAK, doubling per consecutive NAK on the same message.
  std::uint32_t min_rnr_timer = 5;
  // SACK wire cost: bytes added to ack_bytes per missing-PSN range carried.
  std::uint32_t sack_range_bytes = 8;
};

struct TransportCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_acked = 0;
  std::uint64_t messages_failed = 0;  // on_failed deliveries (incl. flushes)
  std::uint64_t payload_bytes_delivered = 0;  // goodput numerator
  std::uint64_t wire_bytes_sent = 0;  // headers + retransmits + acks included
  std::uint64_t data_packets = 0;     // first transmissions
  std::uint64_t retransmits = 0;      // resends of any kind
  std::uint64_t sack_retransmits = 0; // resends targeted by SACK ranges
  std::uint64_t timeouts = 0;         // RTO firings that resent something
  std::uint64_t rto_fires = 0;        // every RTO firing with unacked data
  std::uint64_t spurious_retransmits = 0;  // arrived but receiver had it
  std::uint64_t nak_gobacks = 0;      // NAK-triggered go-back-N rewinds
  std::uint64_t dropped_tx = 0;       // eaten at the sender's egress
  std::uint64_t dropped_rx = 0;       // eaten at the receiver's ingress
  std::uint64_t corrupted = 0;        // delivered, failed the CRC, discarded
  std::uint64_t duplicates = 0;       // PSN below expected, discarded
  std::uint64_t out_of_order = 0;     // PSN above expected (a gap)
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t sacks_sent = 0;       // ACK/NAKs that carried SACK ranges
  std::uint64_t rnr_naks = 0;         // receiver-not-ready NAKs sent
  std::uint64_t rnr_backoffs = 0;     // requester backoff pauses taken
  std::uint64_t retry_exhausted = 0;  // flows failed: retry budget spent
  std::uint64_t rnr_exhausted = 0;    // flows failed: RNR budget spent
  std::uint64_t flow_resets = 0;      // ResetFlow() re-arms

  std::uint64_t PacketsLost() const {
    return dropped_tx + dropped_rx + corrupted;
  }

  TransportCounters& operator+=(const TransportCounters& o);
};

// Why a message failed (MessageOps::on_failed). The first unacked message
// of a failing flow carries the exhaustion reason; everything queued behind
// it flushes.
enum class MsgFailure : std::uint8_t {
  kRetryExceeded,     // consecutive-RTO budget spent (peer unreachable)
  kRnrRetryExceeded,  // consecutive-RNR budget spent (receiver never ready)
  kFlushed,           // queued behind a failure / sent on an errored flow
};

class Transport {
 public:
  // Fires with the simulated instant of the event (delivery or ack).
  using Callback = std::function<void(Nanos)>;

  // Extended per-message hooks. `rnr_probe` (optional) is consulted before
  // delivery: returning false means "receiver not ready" — the message is
  // NAKed and retried after backoff instead of delivered. It is only ever
  // consulted when cfg.rnr_retry_count > 0. `on_failed` (optional) fires
  // exactly once if the flow's retry budget dies under the message;
  // a message fires either {on_deliver, on_acked} or on_failed, never both.
  //
  // Shard affinity: rnr_probe and on_deliver run on the RECEIVER half's
  // domain; on_acked and on_failed run on the SENDER half's domain. For a
  // flow whose endpoints share the transport's home domain they all run
  // there, exactly as before.
  struct MessageOps {
    std::function<bool(Nanos)> rnr_probe;
    Callback on_deliver;
    Callback on_acked;
    std::function<void(Nanos, MsgFailure)> on_failed;
  };

  // `sim` is the transport's home domain: flows whose two endpoints both
  // resolve to it run the single-threaded legacy path; every other flow
  // runs split across its endpoints' domains (see the file comment).
  Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  Fabric& fabric() { return fabric_; }
  const TransportConfig& config() const { return cfg_; }

  // Aggregated counters over every flow (sender + receiver halves). Call
  // outside sharded rounds (setup, between RunUntil calls, or after a run):
  // the sum walks state owned by other shards.
  TransportCounters counters() const;

  // Per-flow snapshot (sender + receiver half of one flow) so tests can
  // assert retransmit/SACK/RNR behaviour per flow instead of globally.
  // Same visibility rule as counters().
  TransportCounters FlowCounters(int flow) const;

  // Opens a unidirectional reliable flow src_ep -> dst_ep (fabric endpoint
  // ids). An RC connection uses one flow per direction. Call at setup, or
  // mid-run only with ReserveFlows headroom (growing the flow table while
  // other shards resolve flow ids would race).
  int OpenFlow(int src_ep, int dst_ep);

  // Pre-sizes the flow table so mid-run OpenFlow (e.g. recovery paths that
  // build fresh connections inside a sharded round) never reallocates it.
  void ReserveFlows(std::size_t n) { flows_.reserve(n); }

  // Queues a message of `bytes` payload on `flow`, transmissible from `t`
  // (clamped to now; messages on one flow go out in SendMessage order).
  // `on_deliver` fires when the last byte lands in order at the receiver;
  // `on_acked` (optional) when the sender's cumulative ACK covers it.
  // on_deliver always fires before on_acked. Both fire exactly once.
  // Must be called on the flow's sender-half domain.
  void SendMessage(int flow, Nanos t, std::uint64_t bytes,
                   Callback on_deliver, Callback on_acked = {});

  // SendMessage with the full hook set (RNR probe + failure notification).
  void SendMessageEx(int flow, Nanos t, std::uint64_t bytes, MessageOps ops);

  // True once the flow's retry budget died; only ResetFlow revives it.
  // Sender-half state: call on the sender's domain.
  bool FlowErrored(int flow) const {
    const Flow& f = *flows_[static_cast<std::size_t>(flow)];
    AssertOn(f.sdom);
    return f.snd.error;
  }

  // Tears the flow back to a fresh PSN space (the ibv_modify_qp →RESET
  // analogue): pending messages flush via on_failed(kFlushed), in-flight
  // packets and timers of the old incarnation die, and both the sender and
  // receiver halves restart from PSN 0. On a split flow the receiver half
  // restarts when the reset fence reaches it (≈ OneWay later) and the
  // flushes fire on the fence's echo; a legacy flow flushes synchronously.
  // Must be called on the flow's sender-half domain.
  void ResetFlow(int flow);

  // Overrides the loss/corruption probabilities of one endpoint's link
  // (both directions); endpoints default to the config-wide values.
  // Owned by the endpoint's shard: call on the domain the endpoint's
  // device attached with (Debug builds assert, like EventDomain::At).
  void SetLinkFaults(int ep, double loss, double corrupt);

  // Gray-failure hook: adds `extra` one-way latency to every packet and ACK
  // that touches endpoint `ep` (either end of the flow), on top of the
  // fabric's propagation. 0 (the default for every endpoint) restores the
  // healthy path — and is exactly the pre-hook arithmetic, so configs that
  // never call this are bit-identical. Same shard-ownership rule as
  // SetLinkFaults.
  void SetLinkDelay(int ep, Nanos extra);

  // Deterministic fault hooks for tests: eat the next `n` data packets /
  // ACKs crossing the fabric, bypassing the probabilistic model (and
  // consuming no randomness). Atomic because split flows consume the data
  // budget on sender shards and the ACK budget on receiver shards.
  void DropNextData(int n) {
    force_drop_data_.fetch_add(n, std::memory_order_relaxed);
  }
  void DropNextAcks(int n) {
    force_drop_acks_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  // ACK-leg flavours. kAck may still carry SACK ranges (selective repeat
  // acking around a hole); kNak is the go-back-N sequence-error NAK; kRnr
  // is receiver-not-ready, answered with backoff instead of retransmission.
  enum class AckKind : std::uint8_t { kAck, kNak, kRnr };

  // Receiver-half view of one message: what the delivery logic needs. On a
  // legacy flow it is filed into the receiver's reassembly map at
  // SendMessage time (same thread); on a split flow every DATA packet of
  // the message carries it, and the receiver files it idempotently.
  struct RxDesc {
    std::uint64_t len = 0;
    std::uint64_t first_psn = 0;
    std::uint64_t last_psn = 0;
    std::function<bool(Nanos)> rnr_probe;
    Callback on_deliver;
  };

  // Sender-half view of one message.
  struct Message {
    std::uint64_t len = 0;
    std::uint64_t first_psn = 0;
    std::uint64_t last_psn = 0;
    Nanos ready = 0;  // earliest transmission instant (DMA/exec done)
    Callback on_acked;
    std::function<void(Nanos, MsgFailure)> on_failed;
    std::shared_ptr<RxDesc> desc;  // split flows: shipped with each packet
    MsgFailure why = MsgFailure::kFlushed;  // limbo flush reason (split)
  };

  struct SenderHalf {
    // Incarnation: bumped by ResetFlow/FailFlow; DATA carries it (the
    // receiver adopts higher, drops lower) and ACKs echo the receiver's
    // (the sender drops mismatches), so in-flight events of an old life
    // die on arrival.
    std::uint64_t gen = 0;
    bool error = false;  // budget exhausted; dead until ResetFlow
    std::uint64_t next_psn = 0;     // next PSN to assign
    std::uint64_t base = 0;         // lowest unacked PSN
    std::uint64_t send_cursor = 0;  // next PSN to (re)transmit
    std::uint64_t high_water = 0;   // PSNs transmitted at least once
    std::uint64_t rto_epoch = 0;    // invalidates superseded RTO events
    std::uint32_t consec_rtos = 0;  // RTO fires since last cumulative progress
    std::uint32_t rnr_attempts = 0; // consecutive RNR NAKs received
    bool goback_armed = false;      // one NAK rewind per loss event
    bool rnr_paused = false;        // backing off; transmit nothing
    std::set<std::uint64_t> known_received;   // SACKed above base (SR)
    std::set<std::uint64_t> retx_outstanding; // SACK-resent, once per event
    std::deque<Message> msgs;       // FIFO, not yet fully acked
    // Split flows: unacked messages of a failed/reset incarnation, held
    // until the reset fence echoes back (no receiver-side event of the old
    // life can still fire), then flushed via on_failed.
    std::deque<Message> limbo;
    Rng rng{1};                     // split flows: egress-side draws
    TransportCounters ctr;          // sender-half share of the counters
  };

  struct ReceiverHalf {
    std::uint64_t gen = 0;          // incarnation adopted from DATA/fences
    std::uint64_t expected = 0;     // next in-order PSN
    std::uint32_t rx_unacked = 0;   // in-order packets since the last ACK
    std::uint64_t ack_epoch = 0;    // invalidates superseded delayed ACKs
    bool ack_timer_armed = false;
    std::set<std::uint64_t> rx_ooo; // held out-of-order PSNs (SR only)
    // Reassembly/delivery queue, keyed by first PSN.
    std::map<std::uint64_t, std::shared_ptr<RxDesc>> rx_msgs;
    Rng rng{1};                     // split flows: ingress-side draws
    TransportCounters ctr;          // receiver-half share of the counters
  };

  // One flow = one sender half + one receiver half + immutable routing.
  // unique_ptr keeps the address stable — in-flight events capture Flow*,
  // which is also what lets mailbox messages skip the flow-table lookup.
  struct Flow {
    int id = -1;
    int src = -1;
    int dst = -1;
    EventDomain* sdom = nullptr;  // sender half's event domain
    EventDomain* ddom = nullptr;  // receiver half's event domain
    bool split = false;           // false: both halves on the home domain
    SenderHalf snd;
    ReceiverHalf rcv;
  };

  struct LinkFault {
    double loss = 0.0;
    double corrupt = 0.0;
  };

  struct PacketView {
    std::uint32_t bytes;  // payload bytes (wire adds header_bytes)
    Nanos ready;
    const Message* msg;   // owning message (split flows ship msg->desc)
  };

  // Missing-PSN ranges [first, last] carried by a selective-repeat ACK.
  using SackRanges = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

  // Shard-affinity guard, mirroring EventDomain::AssertSameShard: while a
  // sharded round is executing, the touched half/endpoint must belong to
  // the running domain. No-op outside rounds and in release builds.
  static void AssertOn(const EventDomain* dom) {
    assert((EventDomain::Current() == nullptr ||
            EventDomain::Current() == dom) &&
           "transport state touched from a foreign shard; route the call "
           "to the owning endpoint's domain");
    (void)dom;
  }

  EventDomain* DomainOf(int ep) const {
    if (ep < 0 || static_cast<std::size_t>(ep) >= fabric_.endpoint_count()) {
      return &sim_;
    }
    EventDomain* d = fabric_.domain(ep);
    return d != nullptr ? d : &sim_;
  }
  Nanos SNow(const Flow& f) const { return f.sdom->now(); }
  Nanos DNow(const Flow& f) const { return f.ddom->now(); }
  // Randomness sources: the home stream for legacy flows (draws interleave
  // in event order, exactly the pre-split behaviour), per-half streams for
  // split flows (draw order invariant under shard count).
  Rng& SndRng(Flow& f) { return f.split ? f.snd.rng : rng_; }
  Rng& RcvRng(Flow& f) { return f.split ? f.rcv.rng : rng_; }
  static bool Draw(Rng& rng, double p) {
    return p > 0.0 && rng.NextDouble() < p;
  }
  std::uint64_t FlowSeed(int flow, int side) const;

  PacketView PacketOf(const Flow& f, std::uint64_t psn) const;
  const LinkFault& FaultAt(int ep) const;
  Nanos DelayAt(int ep) const {
    const std::size_t i = static_cast<std::size_t>(ep);
    return i < delays_.size() ? delays_[i] : 0;
  }
  static bool TakeForced(std::atomic<int>* budget) {
    int v = budget->load(std::memory_order_relaxed);
    while (v > 0) {
      if (budget->compare_exchange_weak(v, v - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  bool Sr() const { return cfg_.mode == TransportMode::kSelectiveRepeat; }
  Nanos BaseRto() const {
    return cfg_.timeout_exp == 0 ? cfg_.rto
                                 : (Nanos{4096} << cfg_.timeout_exp);
  }
  Nanos RnrDelay(std::uint32_t attempt) const;
  void EnsureLinkTables();

  // --- sender-half logic (runs on f.sdom) -----------------------------------
  void TrySend(Flow& f);
  void SendPacket(Flow& f, std::uint64_t psn, const PacketView& p);
  void MarkKnownReceived(Flow& f, std::uint64_t upto, std::uint64_t high,
                         const SackRanges& ranges);
  int SackRetransmit(Flow& f, const SackRanges& ranges);
  void OnAck(Flow& f, std::uint64_t upto, AckKind kind, std::uint64_t high,
             const SackRanges& ranges);
  // ACK-leg ingress at the sender's endpoint (split flows: runs as the
  // mailbox message the receiver posted).
  void OnAckMail(Flow& f, std::uint64_t upto, AckKind kind,
                 std::uint64_t high, SackRanges ranges, std::uint64_t wire,
                 std::uint64_t gen);
  void RetransmitMissing(Flow& f);
  void ArmRto(Flow& f);
  void OnRto(Flow& f);
  void OnRnrResume(Flow& f);
  void FailFlow(Flow& f, MsgFailure why);
  // Split flows: parks the unacked queue in limbo and posts the reset
  // fence; the fence's echo (OnFenceEcho) flushes it.
  void ParkAndFence(Flow& f, MsgFailure why);
  void OnFenceEcho(Flow& f, std::uint64_t gen);
  void FlushLimbo(Flow& f);
  // Protocol-state resets that preserve the half's counters and RNG stream.
  static void ResetSenderHalf(SenderHalf& s, std::uint64_t gen,
                              std::uint64_t rto_epoch);
  static void ResetReceiverHalf(ReceiverHalf& r, std::uint64_t gen,
                                std::uint64_t ack_epoch);

  // --- receiver-half logic (runs on f.ddom) ---------------------------------
  // DATA-leg ingress at the receiver's endpoint (split flows: runs as the
  // mailbox message the sender posted).
  void OnDataMail(Flow& f, std::uint64_t psn, std::uint64_t wire,
                  std::uint64_t gen, bool src_corrupt,
                  std::shared_ptr<RxDesc> desc);
  void OnData(Flow& f, std::uint64_t psn);
  // Delivers every fully-arrived message at the head of the queue; returns
  // false if an rnr_probe rejected one (expected already rewound to its
  // first PSN, arrived packets of the tail re-held when selective repeat).
  bool DeliverReady(Flow& f, bool* boundary);
  void SendAck(Flow& f, AckKind kind);
  SackRanges MissingRanges(const Flow& f) const;
  void ArmAckTimer(Flow& f);
  void OnAckTimer(Flow& f, std::uint64_t epoch);
  // Restarts the receiver half for incarnation `gen` (reset fence arrived,
  // or DATA of a newer life overtook it).
  void AdoptGen(Flow& f, std::uint64_t gen);

  Simulator& sim_;  // home domain
  Fabric& fabric_;
  TransportConfig cfg_;
  Rng rng_;  // legacy flows' shared stream
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<LinkFault> faults_;  // indexed by endpoint
  std::vector<Nanos> delays_;      // per-endpoint added latency (kSlow)
  LinkFault default_fault_;
  bool any_split_ = false;  // at least one flow crosses domains
  std::atomic<int> force_drop_data_{0};
  std::atomic<int> force_drop_acks_{0};
};

}  // namespace redn::sim
