// Packetized reliable-connection transport over the shared fabric.
//
// sim::Fabric moves whole messages, in order, losslessly: a transfer is one
// pair of pipe reservations and one delivery instant. That is exact for a
// healthy RC connection but cannot express the paper's resilience story
// (fig16) on the wire — nothing is ever dropped, reordered relative to a
// retransmission, or late because of one.
//
// Transport adds the missing layer, modeled on an InfiniBand RC engine:
//
//  - MTU segmentation: a message of L bytes becomes ceil(L/mtu) packets
//    (min 1 — a header-only message still crosses the wire), each carrying
//    `header_bytes` of overhead. Every packet pays its own TX and RX pipe
//    reservations, so packetized flows contend on the fabric exactly where
//    whole-message flows do, plus header tax.
//  - Per-flow PSN sequencing: a flow is one direction of one QP connection.
//    Packets carry consecutive PSNs; the receiver accepts only the expected
//    PSN, so delivery is in order and duplicates are filtered by design.
//  - Loss/corruption injection: each endpoint link has independent loss and
//    corruption probabilities (defaults from the config, overridable per
//    link). A packet eaten at the sender's egress reserves TX bandwidth
//    only; one dropped or corrupted on ingress has burned both pipes. All
//    draws come from one seeded sim::Rng in event order, so a given
//    (config, seed) replays bit-identically.
//  - Go-back-N recovery: the receiver NAKs the first out-of-order packet of
//    a gap (an IB "NAK sequence error"); the sender rewinds to the lowest
//    unacked PSN once per loss event, and a retransmission timeout clocked
//    off the simulator covers tail losses and eaten ACKs. Duplicates
//    arriving after a spurious retransmit are discarded and re-ACKed, never
//    re-delivered.
//  - ACK coalescing: cumulative ACKs are sent on message boundaries, every
//    `ack_every` in-order packets, and after at most `ack_delay` (the
//    delayed-ACK backstop that keeps a window-limited sender alive). ACKs
//    ride the reverse-direction pipes and are themselves subject to loss.
//
// Callers observe two instants per message: `on_deliver` fires when the
// last byte lands in order at the receiver, `on_acked` when the sender's
// cumulative ACK covers the message. The RNIC maps WRITE/SEND requester
// completions to on_acked and READ/receiver semantics to on_deliver — see
// RnicDevice::SendOverTransport / ReadOverTransport and docs/NET.md.
//
// The transport is pure protocol + timing: like the fabric it moves no
// payload bytes (the device's pooled Payload carries them) and it knows
// nothing about verbs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fabric.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace redn::sim {

struct TransportConfig {
  std::uint32_t mtu = 4096;         // payload bytes per packet
  std::uint32_t header_bytes = 30;  // per-packet wire overhead (LRH+BTH+ICRC)
  std::uint32_t ack_bytes = 30;     // ACK/NAK wire size
  std::uint32_t window = 64;        // go-back-N window, packets
  std::uint32_t ack_every = 4;      // coalesce: ack every Nth in-order packet
  Nanos ack_delay = 2'000;          // delayed-ACK backstop
  Nanos rto = 50'000;               // retransmission timeout
  double loss = 0.0;                // default per-link packet-loss probability
  double corrupt = 0.0;             // default per-link corruption probability
  std::uint64_t seed = 0x7a115eedULL;
};

struct TransportCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_acked = 0;
  std::uint64_t payload_bytes_delivered = 0;  // goodput numerator
  std::uint64_t wire_bytes_sent = 0;  // headers + retransmits + acks included
  std::uint64_t data_packets = 0;     // first transmissions
  std::uint64_t retransmits = 0;      // go-back-N resends
  std::uint64_t timeouts = 0;         // RTO firings that rewound a flow
  std::uint64_t nak_gobacks = 0;      // NAK-triggered rewinds (pre-timeout)
  std::uint64_t dropped_tx = 0;       // eaten at the sender's egress
  std::uint64_t dropped_rx = 0;       // eaten at the receiver's ingress
  std::uint64_t corrupted = 0;        // delivered, failed the CRC, discarded
  std::uint64_t duplicates = 0;       // PSN below expected, discarded
  std::uint64_t out_of_order = 0;     // PSN above expected (a gap), discarded
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_dropped = 0;

  std::uint64_t PacketsLost() const {
    return dropped_tx + dropped_rx + corrupted;
  }
};

class Transport {
 public:
  // Fires with the simulated instant of the event (delivery or ack).
  using Callback = std::function<void(Nanos)>;

  Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  Fabric& fabric() { return fabric_; }
  const TransportConfig& config() const { return cfg_; }
  const TransportCounters& counters() const { return counters_; }

  // Opens a unidirectional reliable flow src_ep -> dst_ep (fabric endpoint
  // ids). An RC connection uses one flow per direction.
  int OpenFlow(int src_ep, int dst_ep);

  // Queues a message of `bytes` payload on `flow`, transmissible from `t`
  // (clamped to now; messages on one flow go out in SendMessage order).
  // `on_deliver` fires when the last byte lands in order at the receiver;
  // `on_acked` (optional) when the sender's cumulative ACK covers it.
  // on_deliver always fires before on_acked. Both fire exactly once.
  void SendMessage(int flow, Nanos t, std::uint64_t bytes,
                   Callback on_deliver, Callback on_acked = {});

  // Overrides the loss/corruption probabilities of one endpoint's link
  // (both directions); endpoints default to the config-wide values.
  void SetLinkFaults(int ep, double loss, double corrupt);

  // Deterministic fault hooks for tests: eat the next `n` data packets /
  // ACKs crossing the fabric, bypassing the probabilistic model (and
  // consuming no randomness).
  void DropNextData(int n) { force_drop_data_ += n; }
  void DropNextAcks(int n) { force_drop_acks_ += n; }

 private:
  struct Message {
    std::uint64_t len = 0;
    std::uint64_t first_psn = 0;
    std::uint64_t last_psn = 0;
    Nanos ready = 0;  // earliest transmission instant (DMA/exec done)
    Callback on_deliver;
    Callback on_acked;
  };

  // Both directions' protocol state for one flow lives here; the sender and
  // receiver halves touch disjoint fields. unique_ptr keeps the address
  // stable — in-flight events capture Flow*.
  struct Flow {
    int src = -1;
    int dst = -1;
    // Sender.
    std::uint64_t next_psn = 0;     // next PSN to assign
    std::uint64_t base = 0;         // lowest unacked PSN
    std::uint64_t send_cursor = 0;  // next PSN to (re)transmit
    std::uint64_t high_water = 0;   // PSNs transmitted at least once
    std::uint64_t rto_epoch = 0;    // invalidates superseded RTO events
    bool goback_armed = false;      // one NAK rewind per loss event
    std::deque<Message> msgs;       // FIFO, not yet fully acked
    std::size_t delivered = 0;      // msgs[0..delivered) fired on_deliver
    // Receiver.
    std::uint64_t expected = 0;     // next in-order PSN
    std::uint32_t rx_unacked = 0;   // in-order packets since the last ACK
    std::uint64_t ack_epoch = 0;    // invalidates superseded delayed ACKs
    bool ack_timer_armed = false;
  };

  struct LinkFault {
    double loss = 0.0;
    double corrupt = 0.0;
  };

  struct PacketView {
    std::uint32_t bytes;  // payload bytes (wire adds header_bytes)
    Nanos ready;
  };

  PacketView PacketOf(const Flow& f, std::uint64_t psn) const;
  const LinkFault& FaultAt(int ep) const;
  bool Lost(double p) { return p > 0.0 && rng_.NextDouble() < p; }
  static bool TakeForced(int* budget) {
    if (*budget <= 0) return false;
    --*budget;
    return true;
  }

  void TrySend(Flow& f);
  void SendPacket(Flow& f, std::uint64_t psn, const PacketView& p);
  void OnData(Flow& f, std::uint64_t psn);
  void SendAck(Flow& f, bool nak);
  void OnAck(Flow& f, std::uint64_t upto, bool nak);
  void ArmRto(Flow& f);
  void OnRto(Flow& f);
  void ArmAckTimer(Flow& f);
  void OnAckTimer(Flow& f, std::uint64_t epoch);

  Simulator& sim_;
  Fabric& fabric_;
  TransportConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<LinkFault> faults_;  // indexed by endpoint; lazily grown
  LinkFault default_fault_;
  int force_drop_data_ = 0;
  int force_drop_acks_ = 0;
  TransportCounters counters_;
};

}  // namespace redn::sim
