#include "sim/transport.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace redn::sim {

namespace {
// Bounds the exponential backoff shifts: 2^10 on a 50µs base is ~51ms,
// already far past any budget a test or bench configures.
constexpr std::uint32_t kMaxBackoffShift = 10;
// SACK ranges carried per ACK; holes past the cap wait for the next ACK
// or the RTO (the sender must never mis-learn an unreported hole as
// received, so `high` clamps to the last reported range).
constexpr std::size_t kMaxSackRanges = 8;
}  // namespace

TransportCounters& TransportCounters::operator+=(const TransportCounters& o) {
  messages_sent += o.messages_sent;
  messages_delivered += o.messages_delivered;
  messages_acked += o.messages_acked;
  messages_failed += o.messages_failed;
  payload_bytes_delivered += o.payload_bytes_delivered;
  wire_bytes_sent += o.wire_bytes_sent;
  data_packets += o.data_packets;
  retransmits += o.retransmits;
  sack_retransmits += o.sack_retransmits;
  timeouts += o.timeouts;
  rto_fires += o.rto_fires;
  spurious_retransmits += o.spurious_retransmits;
  nak_gobacks += o.nak_gobacks;
  dropped_tx += o.dropped_tx;
  dropped_rx += o.dropped_rx;
  corrupted += o.corrupted;
  duplicates += o.duplicates;
  out_of_order += o.out_of_order;
  acks_sent += o.acks_sent;
  acks_dropped += o.acks_dropped;
  sacks_sent += o.sacks_sent;
  rnr_naks += o.rnr_naks;
  rnr_backoffs += o.rnr_backoffs;
  retry_exhausted += o.retry_exhausted;
  rnr_exhausted += o.rnr_exhausted;
  flow_resets += o.flow_resets;
  return *this;
}

Transport::Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg)
    : sim_(sim),
      fabric_(fabric),
      cfg_(cfg),
      rng_(cfg.seed),
      default_fault_{cfg.loss, cfg.corrupt} {
  assert(cfg_.mtu > 0 && "mtu must be positive");
  assert(cfg_.window > 0 && "window must be positive");
}

TransportCounters Transport::counters() const {
  // Walks every half, including ones owned by foreign shards: legal only
  // outside rounds, or mid-round when no flow is split (then every half
  // lives on the home domain and the caller IS the home domain).
  assert((EventDomain::Current() == nullptr ||
          (!any_split_ && EventDomain::Current() == &sim_)) &&
         "aggregate counters read every shard's halves; call between runs");
  TransportCounters total;
  for (const auto& f : flows_) {
    total += f->snd.ctr;
    total += f->rcv.ctr;
  }
  return total;
}

TransportCounters Transport::FlowCounters(int flow) const {
  const Flow& f = *flows_[static_cast<std::size_t>(flow)];
  assert((EventDomain::Current() == nullptr ||
          (EventDomain::Current() == f.sdom &&
           EventDomain::Current() == f.ddom)) &&
         "a split flow's counters span two shards; snapshot between runs");
  TransportCounters total = f.snd.ctr;
  total += f.rcv.ctr;
  return total;
}

std::uint64_t Transport::FlowSeed(int flow, int side) const {
  // splitmix64-style finalizer over (config seed, flow id, half): two
  // decorrelated streams per split flow whose draw order depends only on
  // that half's own packet events — never on global event interleaving.
  std::uint64_t z =
      cfg_.seed ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(flow) * 2 +
                    static_cast<std::uint64_t>(side) + 1));
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

void Transport::EnsureLinkTables() {
  const std::size_t n = fabric_.endpoint_count();
  if (faults_.size() < n) {
    assert(EventDomain::Current() == nullptr &&
           "link tables grow only outside sharded rounds");
    faults_.resize(n, default_fault_);
  }
  if (delays_.size() < n) {
    assert(EventDomain::Current() == nullptr &&
           "link tables grow only outside sharded rounds");
    delays_.resize(n, 0);
  }
}

int Transport::OpenFlow(int src_ep, int dst_ep) {
  // Growing the table mid-round is legal only with ReserveFlows headroom:
  // a reallocation would move the vector's storage out from under foreign
  // shards resolving their own flow ids concurrently.
  assert((EventDomain::Current() == nullptr ||
          flows_.size() < flows_.capacity()) &&
         "mid-round OpenFlow without ReserveFlows headroom");
  auto fl = std::make_unique<Flow>();
  Flow& f = *fl;
  f.id = static_cast<int>(flows_.size());
  f.src = src_ep;
  f.dst = dst_ep;
  f.sdom = DomainOf(src_ep);
  f.ddom = DomainOf(dst_ep);
  // Legacy iff both halves advance on the home domain; anything else
  // (either half foreign, even when both share one foreign domain) runs
  // the split protocol with per-flow randomness.
  f.split = !(f.sdom == &sim_ && f.ddom == &sim_);
  if (f.split) {
    any_split_ = true;
    f.snd.rng = Rng(FlowSeed(f.id, 0));
    f.rcv.rng = Rng(FlowSeed(f.id, 1));
  }
  // Size the per-endpoint fault/delay tables now, while single-threaded:
  // mid-round SetLinkFaults/SetLinkDelay then writes its own slot in place.
  EnsureLinkTables();
  flows_.push_back(std::move(fl));
  return f.id;
}

void Transport::SetLinkFaults(int ep, double loss, double corrupt) {
  AssertOn(DomainOf(ep));
  if (faults_.size() <= static_cast<std::size_t>(ep)) {
    assert(EventDomain::Current() == nullptr &&
           "link tables grow only outside sharded rounds");
    faults_.resize(static_cast<std::size_t>(ep) + 1, default_fault_);
  }
  faults_[static_cast<std::size_t>(ep)] = LinkFault{loss, corrupt};
}

void Transport::SetLinkDelay(int ep, Nanos extra) {
  AssertOn(DomainOf(ep));
  if (delays_.size() <= static_cast<std::size_t>(ep)) {
    assert(EventDomain::Current() == nullptr &&
           "link tables grow only outside sharded rounds");
    delays_.resize(static_cast<std::size_t>(ep) + 1, 0);
  }
  delays_[static_cast<std::size_t>(ep)] = extra;
}

const Transport::LinkFault& Transport::FaultAt(int ep) const {
  const auto i = static_cast<std::size_t>(ep);
  return i < faults_.size() ? faults_[i] : default_fault_;
}

Nanos Transport::RnrDelay(std::uint32_t attempt) const {
  const std::uint32_t shift =
      std::min(attempt > 0 ? attempt - 1 : 0u, kMaxBackoffShift);
  return (Nanos{4096} << cfg_.min_rnr_timer) << shift;
}

Transport::PacketView Transport::PacketOf(const Flow& f,
                                          std::uint64_t psn) const {
  // Linear from the front: the deque holds only unacked messages and
  // the sender never transmits below base, so the walk is bounded by the
  // window's message count.
  for (const Message& m : f.snd.msgs) {
    if (psn <= m.last_psn) {
      const std::uint64_t off = (psn - m.first_psn) *
                                static_cast<std::uint64_t>(cfg_.mtu);
      const std::uint64_t rem = m.len > off ? m.len - off : 0;
      const std::uint64_t take = rem < cfg_.mtu ? rem : cfg_.mtu;
      return PacketView{static_cast<std::uint32_t>(take), m.ready, &m};
    }
  }
  assert(false && "psn not covered by any queued message");
  return PacketView{0, 0, nullptr};
}

void Transport::SendMessage(int flow, Nanos t, std::uint64_t bytes,
                            Callback on_deliver, Callback on_acked) {
  MessageOps ops;
  ops.on_deliver = std::move(on_deliver);
  ops.on_acked = std::move(on_acked);
  SendMessageEx(flow, t, bytes, std::move(ops));
}

void Transport::SendMessageEx(int flow, Nanos t, std::uint64_t bytes,
                              MessageOps ops) {
  Flow& f = *flows_[static_cast<std::size_t>(flow)];
  AssertOn(f.sdom);
  SenderHalf& s = f.snd;
  ++s.ctr.messages_sent;
  if (s.error) {
    // The flow's budget already died: fail fast (asynchronously, so the
    // caller never re-enters itself) instead of queueing into a void.
    ++s.ctr.messages_failed;
    if (ops.on_failed) {
      f.sdom->At(SNow(f), [this, fp = &f, cb = std::move(ops.on_failed)] {
        cb(SNow(*fp), MsgFailure::kFlushed);
      });
    }
    return;
  }
  if (t < SNow(f)) t = SNow(f);
  const std::uint64_t segs =
      bytes == 0 ? 1 : (bytes + cfg_.mtu - 1) / cfg_.mtu;
  Message m;
  m.len = bytes;
  m.ready = t;
  m.first_psn = s.next_psn;
  m.last_psn = s.next_psn + segs - 1;
  m.on_acked = std::move(ops.on_acked);
  m.on_failed = std::move(ops.on_failed);
  m.desc = std::make_shared<RxDesc>();
  m.desc->len = bytes;
  m.desc->first_psn = m.first_psn;
  m.desc->last_psn = m.last_psn;
  m.desc->rnr_probe = std::move(ops.rnr_probe);
  m.desc->on_deliver = std::move(ops.on_deliver);
  if (!f.split) {
    // Same thread as the receiver half: file the delivery descriptor
    // directly. Split flows ship it with every DATA packet instead.
    f.rcv.rx_msgs.emplace(m.first_psn, m.desc);
  }
  const bool was_idle = s.base == s.next_psn;
  s.next_psn += segs;
  s.msgs.push_back(std::move(m));
  if (!s.rnr_paused) TrySend(f);
  // Only an idle->busy transition arms the timer: re-arming on every
  // enqueue would let a steady message stream postpone the RTO forever
  // while the base PSN sits unacked.
  if (was_idle && !s.rnr_paused) ArmRto(f);
}

void Transport::TrySend(Flow& f) {
  SenderHalf& s = f.snd;
  const std::uint64_t limit = s.base + cfg_.window;
  while (s.send_cursor < s.next_psn && s.send_cursor < limit) {
    SendPacket(f, s.send_cursor, PacketOf(f, s.send_cursor));
    ++s.send_cursor;
  }
}

void Transport::SendPacket(Flow& f, std::uint64_t psn, const PacketView& p) {
  SenderHalf& s = f.snd;
  const Nanos t = p.ready > SNow(f) ? p.ready : SNow(f);
  const std::uint64_t wire = p.bytes + cfg_.header_bytes;
  if (psn < s.high_water) {
    ++s.ctr.retransmits;
  } else {
    ++s.ctr.data_packets;
    s.high_water = psn + 1;
  }
  s.ctr.wire_bytes_sent += wire;
  // The packet serializes out of the sender's pipe whether or not anything
  // downstream eats it; losses only decide how far along the path the
  // bytes billed.
  const Nanos tx_done = fabric_.ReserveTx(f.src, t, wire);
  if (TakeForced(&force_drop_data_) ||
      Draw(SndRng(f), FaultAt(f.src).loss)) {
    ++s.ctr.dropped_tx;
    return;
  }
  if (!f.split) {
    const Nanos at_dst = tx_done + fabric_.OneWay(f.src, f.dst) +
                         DelayAt(f.src) + DelayAt(f.dst);
    const Nanos arrive = fabric_.ReserveRx(f.dst, at_dst, wire);
    if (Draw(RcvRng(f), FaultAt(f.dst).loss)) {
      ++f.rcv.ctr.dropped_rx;
      return;
    }
    if (Draw(SndRng(f), FaultAt(f.src).corrupt) ||
        Draw(RcvRng(f), FaultAt(f.dst).corrupt)) {
      // Bad ICRC at the receiver: silently discarded, exactly like a loss
      // except the bytes crossed the whole path first.
      ++f.rcv.ctr.corrupted;
      return;
    }
    sim_.At(arrive, [this, fp = &f, psn, gen = s.gen] {
      if (gen != fp->rcv.gen) return;  // a reset/failure outlived this packet
      OnData(*fp, psn);
    });
    return;
  }
  // Split flow: the sender's half of the wire crossing ends here. The
  // src-side corruption draw happens now (its RNG lives on this shard);
  // the verdict rides the DATA message, and the receiver finishes the path
  // (its own delay, RX reservation, ingress loss/corruption) over there.
  // OneWay(src,dst) >= the coordinator's lookahead for any cross-shard
  // endpoint pair — the pair registered that floor at Attach — so the
  // mailbox send is always legal.
  const bool src_corrupt = Draw(SndRng(f), FaultAt(f.src).corrupt);
  const Nanos due = tx_done + fabric_.OneWay(f.src, f.dst) + DelayAt(f.src);
  f.sdom->SendTo(
      f.ddom->shard(), due,
      [this, fp = &f, psn, wire, gen = s.gen, src_corrupt,
       desc = p.msg->desc]() mutable {
        OnDataMail(*fp, psn, wire, gen, src_corrupt, std::move(desc));
      });
}

void Transport::OnDataMail(Flow& f, std::uint64_t psn, std::uint64_t wire,
                           std::uint64_t gen, bool src_corrupt,
                           std::shared_ptr<RxDesc> desc) {
  ReceiverHalf& r = f.rcv;
  if (gen < r.gen) return;  // a dead incarnation's packet; never bill it
  if (gen > r.gen) {
    // DATA of a newer life overtook its reset fence: restart now.
    AdoptGen(f, gen);
  }
  const Nanos at_dst = DNow(f) + DelayAt(f.dst);
  const Nanos arrive = fabric_.ReserveRx(f.dst, at_dst, wire);
  if (Draw(RcvRng(f), FaultAt(f.dst).loss)) {
    ++r.ctr.dropped_rx;
    return;
  }
  if (src_corrupt || Draw(RcvRng(f), FaultAt(f.dst).corrupt)) {
    ++r.ctr.corrupted;
    return;
  }
  if (desc && desc->last_psn >= r.expected) {
    // Idempotent: the descriptor rides every packet of the message, and
    // `expected` filters re-filing anything already delivered.
    r.rx_msgs.emplace(desc->first_psn, std::move(desc));
  }
  f.ddom->At(arrive, [this, fp = &f, psn, gen] {
    if (gen != fp->rcv.gen) return;
    OnData(*fp, psn);
  });
}

void Transport::OnData(Flow& f, std::uint64_t psn) {
  ReceiverHalf& r = f.rcv;
  if (!f.split && f.snd.error) return;
  if (psn == r.expected) {
    ++r.expected;
    if (Sr()) {
      // Drain the reassembly window: contiguous held packets are as good
      // as arrived now.
      auto it = r.rx_ooo.begin();
      while (it != r.rx_ooo.end() && *it == r.expected) {
        it = r.rx_ooo.erase(it);
        ++r.expected;
      }
    }
    bool boundary = false;
    const bool ready = DeliverReady(f, &boundary);
    ++r.rx_unacked;
    if (!ready) {
      // An rnr_probe rejected the head message: expected has been rewound
      // to its first PSN; tell the sender to back off and retry.
      SendAck(f, AckKind::kRnr);
      return;
    }
    if (boundary || r.rx_unacked >= cfg_.ack_every) {
      SendAck(f, AckKind::kAck);
    } else {
      ArmAckTimer(f);
    }
  } else if (psn > r.expected) {
    ++r.ctr.out_of_order;
    if (Sr()) {
      if (!r.rx_ooo.insert(psn).second) {
        // Already held: the sender resent something we have.
        ++r.ctr.duplicates;
        ++r.ctr.spurious_retransmits;
      }
      // Either way the ACK carries the current missing ranges, so the
      // sender learns exactly which holes remain.
      SendAck(f, AckKind::kAck);
    } else {
      // Gap: a go-back-N receiver buffers nothing. NAK so the sender
      // rewinds without waiting out the RTO.
      SendAck(f, AckKind::kNak);
    }
  } else {
    // Duplicate from a spurious retransmit (e.g. an eaten ACK): discard —
    // this filter is what guarantees single delivery — and re-ACK so the
    // sender's base can advance.
    ++r.ctr.duplicates;
    ++r.ctr.spurious_retransmits;
    SendAck(f, AckKind::kAck);
  }
}

bool Transport::DeliverReady(Flow& f, bool* boundary) {
  ReceiverHalf& r = f.rcv;
  auto it = r.rx_msgs.begin();
  while (it != r.rx_msgs.end()) {
    RxDesc& d = *it->second;
    if (d.last_psn >= r.expected) break;
    if (cfg_.rnr_retry_count > 0 && d.rnr_probe && !d.rnr_probe(DNow(f))) {
      // Receiver not ready (no RECV posted): rewind to the message start.
      // Selective repeat re-holds what already arrived past the first
      // packet; go-back-N discards it — the sender rewinds anyway.
      const std::uint64_t arrived_to = r.expected;
      r.expected = d.first_psn;
      if (Sr()) {
        for (std::uint64_t p = d.first_psn + 1; p < arrived_to; ++p) {
          r.rx_ooo.insert(p);
        }
      }
      ++r.ctr.rnr_naks;
      return false;
    }
    ++r.ctr.messages_delivered;
    r.ctr.payload_bytes_delivered += d.len;
    *boundary = true;
    // Erase before the callback (keeping the descriptor alive through it):
    // map iterators survive inserts a delivery callback might make, and a
    // delivered message can never be re-filed — `expected` is past it.
    std::shared_ptr<RxDesc> keep = std::move(it->second);
    it = r.rx_msgs.erase(it);
    if (keep->on_deliver) keep->on_deliver(DNow(f));
  }
  return true;
}

Transport::SackRanges Transport::MissingRanges(const Flow& f) const {
  SackRanges r;
  std::uint64_t need = f.rcv.expected;
  for (const std::uint64_t psn : f.rcv.rx_ooo) {
    if (psn > need) {
      if (r.size() == kMaxSackRanges) break;
      r.push_back({need, psn - 1});
    }
    need = psn + 1;
  }
  return r;
}

void Transport::SendAck(Flow& f, AckKind kind) {
  ReceiverHalf& r = f.rcv;
  r.rx_unacked = 0;
  ++r.ack_epoch;  // cancels any pending delayed ACK
  ++r.ctr.acks_sent;
  SackRanges ranges;
  std::uint64_t high = 0;
  if (Sr() && !r.rx_ooo.empty()) {
    ranges = MissingRanges(f);
    if (!ranges.empty()) {
      ++r.ctr.sacks_sent;
      // Everything in [upto, high] not named missing is known-received at
      // the sender. When the range cap truncated the report, high clamps
      // to the last reported hole so unreported holes are not mis-learned.
      high = ranges.size() == kMaxSackRanges ? ranges.back().second
                                             : *r.rx_ooo.rbegin();
    }
  }
  const std::uint64_t wire =
      cfg_.ack_bytes + ranges.size() * cfg_.sack_range_bytes;
  r.ctr.wire_bytes_sent += wire;
  const std::uint64_t upto = r.expected;
  const Nanos tx_done = fabric_.ReserveTx(f.dst, DNow(f), wire);
  if (TakeForced(&force_drop_acks_) ||
      Draw(RcvRng(f), FaultAt(f.dst).loss)) {
    ++r.ctr.acks_dropped;
    return;
  }
  if (!f.split) {
    const Nanos at_src = tx_done + fabric_.OneWay(f.dst, f.src) +
                         DelayAt(f.dst) + DelayAt(f.src);
    const Nanos arrive = fabric_.ReserveRx(f.src, at_src, wire);
    if (Draw(SndRng(f), FaultAt(f.src).loss)) {
      ++f.snd.ctr.acks_dropped;
      return;
    }
    sim_.At(arrive, [this, fp = &f, upto, kind, gen = r.gen, high,
                     ranges = std::move(ranges)] {
      if (gen != fp->snd.gen) return;
      OnAck(*fp, upto, kind, high, ranges);
    });
    return;
  }
  // Split flow: the ACK rides the mailbox back to the sender's shard,
  // which finishes the reverse path (src delay, RX reservation, ingress
  // loss) with its own RNG stream.
  const Nanos due = tx_done + fabric_.OneWay(f.dst, f.src) + DelayAt(f.dst);
  f.ddom->SendTo(f.sdom->shard(), due,
                 [this, fp = &f, upto, kind, high, wire, gen = r.gen,
                  ranges = std::move(ranges)]() mutable {
                   OnAckMail(*fp, upto, kind, high, std::move(ranges), wire,
                             gen);
                 });
}

void Transport::OnAckMail(Flow& f, std::uint64_t upto, AckKind kind,
                          std::uint64_t high, SackRanges ranges,
                          std::uint64_t wire, std::uint64_t gen) {
  SenderHalf& s = f.snd;
  const Nanos at_src = SNow(f) + DelayAt(f.src);
  const Nanos arrive = fabric_.ReserveRx(f.src, at_src, wire);
  if (Draw(SndRng(f), FaultAt(f.src).loss)) {
    ++s.ctr.acks_dropped;
    return;
  }
  f.sdom->At(arrive, [this, fp = &f, upto, kind, high,
                      ranges = std::move(ranges), gen] {
    if (gen != fp->snd.gen) return;  // echo of a dead incarnation
    OnAck(*fp, upto, kind, high, ranges);
  });
}

void Transport::MarkKnownReceived(Flow& f, std::uint64_t upto,
                                  std::uint64_t high,
                                  const SackRanges& ranges) {
  SenderHalf& s = f.snd;
  if (!Sr() || ranges.empty()) return;
  std::size_t ri = 0;
  for (std::uint64_t psn = std::max(upto, s.base); psn <= high; ++psn) {
    while (ri < ranges.size() && psn > ranges[ri].second) ++ri;
    const bool missing = ri < ranges.size() && psn >= ranges[ri].first &&
                         psn <= ranges[ri].second;
    if (!missing) s.known_received.insert(psn);
  }
}

int Transport::SackRetransmit(Flow& f, const SackRanges& ranges) {
  SenderHalf& s = f.snd;
  int resent = 0;
  for (const auto& [first, last] : ranges) {
    const std::uint64_t lo = std::max(first, s.base);
    const std::uint64_t hi = std::min(last + 1, s.high_water);
    for (std::uint64_t psn = lo; psn < hi; ++psn) {
      if (s.known_received.count(psn) != 0) continue;
      // Once per loss event: a hole named by several SACKs (every arrival
      // behind it generates one) is resent on the first report only; the
      // RTO clears the set and covers a lost retransmission.
      if (!s.retx_outstanding.insert(psn).second) continue;
      ++s.ctr.sack_retransmits;
      SendPacket(f, psn, PacketOf(f, psn));
      ++resent;
    }
  }
  return resent;
}

void Transport::OnAck(Flow& f, std::uint64_t upto, AckKind kind,
                      std::uint64_t high, const SackRanges& ranges) {
  SenderHalf& s = f.snd;
  if (s.error) return;
  bool progressed = false;
  if (upto > s.base) {
    progressed = true;
    s.base = upto;
    s.goback_armed = false;
    // Cumulative progress proves the path and the peer are alive: both
    // backoff ladders restart.
    s.consec_rtos = 0;
    s.rnr_attempts = 0;
    while (!s.msgs.empty() && s.msgs.front().last_psn < s.base) {
      // A cumulative ACK past last_psn implies the receiver delivered the
      // message (delivery precedes every ACK that covers it).
      Message m = std::move(s.msgs.front());
      s.msgs.pop_front();
      ++s.ctr.messages_acked;
      if (m.on_acked) m.on_acked(SNow(f));
    }
    if (s.send_cursor < s.base) s.send_cursor = s.base;
    if (Sr()) {
      s.known_received.erase(s.known_received.begin(),
                             s.known_received.lower_bound(s.base));
      s.retx_outstanding.erase(s.retx_outstanding.begin(),
                               s.retx_outstanding.lower_bound(s.base));
    }
  }
  if (kind == AckKind::kRnr) {
    // An ack_every/delayed ACK can advance base into a multi-segment SEND
    // before the rnr_probe rejects it at the message boundary; the RNR NAK
    // then carries the receiver's rewound expected (the message's first
    // PSN), below base. Take those PSNs back as unacked — every retransmit
    // path clamps at base, so without this rewind the receiver would wait
    // forever on packets the sender believes are acked. Nothing needs
    // un-popping: base never passes the blocked message's last PSN, so the
    // message (and everything behind it) is still queued.
    if (upto < s.base) s.base = upto;
    // Recorded even for deduped burst NAKs: their SACK ranges still teach
    // us what the receiver holds, so the resume resends only true holes.
    MarkKnownReceived(f, upto, high, ranges);
    if (s.rnr_attempts >= 1 && s.rnr_paused) return;  // NAK burst: one pause
    ++s.rnr_attempts;
    if (cfg_.rnr_retry_count > 0 &&
        s.rnr_attempts > cfg_.rnr_retry_count) {
      FailFlow(f, MsgFailure::kRnrRetryExceeded);
      return;
    }
    ++s.ctr.rnr_backoffs;
    s.rnr_paused = true;
    ++s.rto_epoch;  // the backoff owns the clock; silence the RTO
    f.sdom->After(RnrDelay(s.rnr_attempts), [this, fp = &f, gen = s.gen] {
      if (gen != fp->snd.gen) return;
      OnRnrResume(*fp);
    });
    return;
  }
  if (s.rnr_paused) {
    // Stragglers during the backoff still teach us what arrived, but the
    // resume event owns all transmission.
    MarkKnownReceived(f, upto, high, ranges);
    return;
  }
  if (Sr()) {
    MarkKnownReceived(f, upto, high, ranges);
    const int resent = ranges.empty() ? 0 : SackRetransmit(f, ranges);
    if (progressed) TrySend(f);  // the window slid open
    if (progressed || resent > 0) ArmRto(f);
    return;
  }
  // Go-back-N. Decide the NAK rewind BEFORE transmitting anything: a NAK
  // that also carries cumulative progress must not first slide the window
  // forward (sending fresh packets the gapped receiver would only discard)
  // and rewind afterwards — that would transmit every post-gap packet
  // twice.
  if (kind == AckKind::kNak && upto == s.base && s.base < s.next_psn &&
      !s.goback_armed) {
    // The receiver reported a gap at our current base: rewind once per
    // loss event (repeated NAKs for the same gap are already answered by
    // the retransmission in flight).
    s.goback_armed = true;
    ++s.ctr.nak_gobacks;
    s.send_cursor = s.base;
    TrySend(f);
    ArmRto(f);
  } else if (progressed) {
    TrySend(f);  // the window slid open
    ArmRto(f);
  }
  // upto < base (and no gap at base): a stale ACK overtaken by progress.
}

void Transport::RetransmitMissing(Flow& f) {
  SenderHalf& s = f.snd;
  const std::uint64_t hi = std::min(s.high_water, s.base + cfg_.window);
  for (std::uint64_t psn = s.base; psn < hi; ++psn) {
    if (s.known_received.count(psn) != 0) continue;
    SendPacket(f, psn, PacketOf(f, psn));
  }
}

void Transport::ArmRto(Flow& f) {
  SenderHalf& s = f.snd;
  const std::uint64_t epoch = ++s.rto_epoch;  // supersede any pending timer
  if (s.base == s.next_psn || s.error) return;  // nothing outstanding
  // Consecutive timeouts on one base PSN double the interval: a feedback
  // loop with a fixed period and a lossy channel otherwise retransmits in
  // lockstep with whatever is eating the packets.
  const std::uint32_t shift = std::min(s.consec_rtos, kMaxBackoffShift);
  f.sdom->After(BaseRto() << shift, [this, fp = &f, epoch] {
    if (epoch != fp->snd.rto_epoch) return;
    OnRto(*fp);
  });
}

void Transport::OnRto(Flow& f) {
  SenderHalf& s = f.snd;
  if (s.error || s.rnr_paused) return;
  if (s.base == s.next_psn) return;
  ++s.ctr.rto_fires;
  ++s.consec_rtos;
  if (cfg_.retry_count > 0 && s.consec_rtos > cfg_.retry_count) {
    FailFlow(f, MsgFailure::kRetryExceeded);
    return;
  }
  ++s.ctr.timeouts;
  s.goback_armed = false;
  if (Sr()) {
    // The timeout invalidates what we thought was in flight: every hole
    // may be resent again on the next SACK.
    s.retx_outstanding.clear();
    RetransmitMissing(f);
  } else {
    s.send_cursor = s.base;
    TrySend(f);
  }
  ArmRto(f);
}

void Transport::OnRnrResume(Flow& f) {
  SenderHalf& s = f.snd;
  if (s.error || !s.rnr_paused) return;
  s.rnr_paused = false;
  if (s.base == s.next_psn) return;  // acked away during the pause
  if (Sr()) {
    s.retx_outstanding.clear();
    RetransmitMissing(f);
    TrySend(f);
  } else {
    s.goback_armed = false;
    s.send_cursor = s.base;
    TrySend(f);
  }
  ArmRto(f);
}

void Transport::ArmAckTimer(Flow& f) {
  ReceiverHalf& r = f.rcv;
  if (r.ack_timer_armed) return;
  r.ack_timer_armed = true;
  const std::uint64_t epoch = r.ack_epoch;
  f.ddom->After(cfg_.ack_delay,
                [this, fp = &f, epoch] { OnAckTimer(*fp, epoch); });
}

void Transport::OnAckTimer(Flow& f, std::uint64_t epoch) {
  ReceiverHalf& r = f.rcv;
  r.ack_timer_armed = false;
  if ((!f.split && f.snd.error) || r.rx_unacked == 0) return;
  if (epoch != r.ack_epoch) {
    // An eager ACK superseded this timer but packets arrived since; cover
    // the current batch with a fresh delay.
    ArmAckTimer(f);
    return;
  }
  SendAck(f, AckKind::kAck);
}

void Transport::ResetSenderHalf(SenderHalf& s, std::uint64_t gen,
                                std::uint64_t rto_epoch) {
  s.gen = gen;
  s.error = false;
  s.next_psn = 0;
  s.base = 0;
  s.send_cursor = 0;
  s.high_water = 0;
  s.rto_epoch = rto_epoch;
  s.consec_rtos = 0;
  s.rnr_attempts = 0;
  s.goback_armed = false;
  s.rnr_paused = false;
  s.known_received.clear();
  s.retx_outstanding.clear();
  assert(s.msgs.empty() && "flush before resetting the sender half");
  // ctr, rng, and limbo survive: counters are cumulative, the RNG stream
  // continues, and limbo waits for its fence echo.
}

void Transport::ResetReceiverHalf(ReceiverHalf& r, std::uint64_t gen,
                                  std::uint64_t ack_epoch) {
  r.gen = gen;
  r.expected = 0;
  r.rx_unacked = 0;
  r.ack_epoch = ack_epoch;
  r.ack_timer_armed = false;
  r.rx_ooo.clear();
  r.rx_msgs.clear();
}

void Transport::AdoptGen(Flow& f, std::uint64_t gen) {
  ResetReceiverHalf(f.rcv, gen, f.rcv.ack_epoch + 1);
}

void Transport::ParkAndFence(Flow& f, MsgFailure why) {
  SenderHalf& s = f.snd;
  bool first = true;
  while (!s.msgs.empty()) {
    Message m = std::move(s.msgs.front());
    s.msgs.pop_front();
    m.why = first ? why : MsgFailure::kFlushed;
    first = false;
    s.limbo.push_back(std::move(m));
  }
  // Reset fence: tells the receiver half to restart for incarnation
  // s.gen and to echo back. Only the echo releases the limbo — by then no
  // event of the old incarnation can be alive anywhere (everything it
  // could schedule is bounded by one crossing, and the fence + echo is
  // two), so the caller may reclaim per-message resources in on_failed.
  f.sdom->SendTo(
      f.ddom->shard(), SNow(f) + fabric_.OneWay(f.src, f.dst),
      [this, fp = &f, gen = s.gen] {
        if (gen > fp->rcv.gen) AdoptGen(*fp, gen);
        // Echo unconditionally: the newest fence's echo must always come
        // back to flush the limbo, and stale echoes die on the gen check.
        fp->ddom->SendTo(fp->sdom->shard(),
                         DNow(*fp) + fabric_.OneWay(fp->dst, fp->src),
                         [this, fp, gen] { OnFenceEcho(*fp, gen); });
      });
}

void Transport::OnFenceEcho(Flow& f, std::uint64_t gen) {
  if (gen != f.snd.gen) return;  // a newer fence owns the flush
  FlushLimbo(f);
}

void Transport::FlushLimbo(Flow& f) {
  SenderHalf& s = f.snd;
  while (!s.limbo.empty()) {
    Message m = std::move(s.limbo.front());
    s.limbo.pop_front();
    ++s.ctr.messages_failed;
    if (m.on_failed) m.on_failed(SNow(f), m.why);
  }
}

void Transport::FailFlow(Flow& f, MsgFailure why) {
  SenderHalf& s = f.snd;
  if (s.error) return;
  s.error = true;
  ++s.gen;  // in-flight packets, ACKs, and timers of this life die
  ++s.rto_epoch;
  s.rnr_paused = false;
  if (why == MsgFailure::kRetryExceeded) {
    ++s.ctr.retry_exhausted;
  } else {
    ++s.ctr.rnr_exhausted;
  }
  if (!f.split) {
    ReceiverHalf& r = f.rcv;
    r.gen = s.gen;  // legacy halves share one incarnation, in lockstep
    ++r.ack_epoch;
    r.ack_timer_armed = false;
    // The message under the exhausted budget carries the reason; everything
    // queued behind it flushes. on_failed is the *only* hook fired — a
    // delivered-but-unacked message is indistinguishable from an
    // undelivered one at the requester, exactly the IB ambiguity ERROR
    // state models.
    bool first = true;
    while (!s.msgs.empty()) {
      Message m = std::move(s.msgs.front());
      s.msgs.pop_front();
      ++s.ctr.messages_failed;
      if (m.on_failed) {
        m.on_failed(SNow(f), first ? why : MsgFailure::kFlushed);
      }
      first = false;
    }
    r.rx_ooo.clear();
    r.rx_msgs.clear();
    s.known_received.clear();
    s.retx_outstanding.clear();
    return;
  }
  // Split flow: the receiver half is on another shard, and its delivery
  // events for this incarnation may still be in flight. Park the queue and
  // flush only on the fence echo.
  s.goback_armed = false;
  s.known_received.clear();
  s.retx_outstanding.clear();
  ParkAndFence(f, why);
}

void Transport::ResetFlow(int flow) {
  Flow& f = *flows_[static_cast<std::size_t>(flow)];
  AssertOn(f.sdom);
  SenderHalf& s = f.snd;
  if (!f.split) {
    // Tearing down a live flow flushes whatever is still queued; an errored
    // flow already flushed everything in FailFlow.
    while (!s.msgs.empty()) {
      Message m = std::move(s.msgs.front());
      s.msgs.pop_front();
      ++s.ctr.messages_failed;
      if (m.on_failed) m.on_failed(SNow(f), MsgFailure::kFlushed);
    }
    // Epochs and the generation survive the reset monotonically so events
    // of the old incarnation can never match the new one's.
    ResetSenderHalf(s, s.gen + 1, s.rto_epoch + 1);
    ResetReceiverHalf(f.rcv, s.gen, f.rcv.ack_epoch + 1);
    ++s.ctr.flow_resets;
    return;
  }
  // Split flow: park the queue (everything flushes as kFlushed on the
  // fence echo), restart the sender half now, and fence with the NEW
  // incarnation — its echo flushes the limbo, including anything parked by
  // an earlier FailFlow whose own echo lost the race.
  while (!s.msgs.empty()) {
    Message m = std::move(s.msgs.front());
    s.msgs.pop_front();
    m.why = MsgFailure::kFlushed;
    s.limbo.push_back(std::move(m));
  }
  ResetSenderHalf(s, s.gen + 1, s.rto_epoch + 1);
  ++s.ctr.flow_resets;
  ParkAndFence(f, MsgFailure::kFlushed);
}

}  // namespace redn::sim
