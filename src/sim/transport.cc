#include "sim/transport.h"

#include <cassert>

namespace redn::sim {

Transport::Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg)
    : sim_(sim),
      fabric_(fabric),
      cfg_(cfg),
      rng_(cfg.seed),
      default_fault_{cfg.loss, cfg.corrupt} {
  assert(cfg_.mtu > 0 && "mtu must be positive");
  assert(cfg_.window > 0 && "window must be positive");
}

int Transport::OpenFlow(int src_ep, int dst_ep) {
  flows_.push_back(std::make_unique<Flow>());
  Flow& f = *flows_.back();
  f.src = src_ep;
  f.dst = dst_ep;
  return static_cast<int>(flows_.size()) - 1;
}

void Transport::SetLinkFaults(int ep, double loss, double corrupt) {
  if (faults_.size() <= static_cast<std::size_t>(ep)) {
    faults_.resize(static_cast<std::size_t>(ep) + 1, default_fault_);
  }
  faults_[static_cast<std::size_t>(ep)] = LinkFault{loss, corrupt};
}

const Transport::LinkFault& Transport::FaultAt(int ep) const {
  const auto i = static_cast<std::size_t>(ep);
  return i < faults_.size() ? faults_[i] : default_fault_;
}

Transport::PacketView Transport::PacketOf(const Flow& f,
                                          std::uint64_t psn) const {
  // Linear from the front: the deque holds only unacked messages and
  // go-back-N never transmits below base, so the walk is bounded by the
  // window's message count.
  for (const Message& m : f.msgs) {
    if (psn <= m.last_psn) {
      const std::uint64_t off = (psn - m.first_psn) *
                                static_cast<std::uint64_t>(cfg_.mtu);
      const std::uint64_t rem = m.len > off ? m.len - off : 0;
      const std::uint64_t take = rem < cfg_.mtu ? rem : cfg_.mtu;
      return PacketView{static_cast<std::uint32_t>(take), m.ready};
    }
  }
  assert(false && "psn not covered by any queued message");
  return PacketView{0, 0};
}

void Transport::SendMessage(int flow, Nanos t, std::uint64_t bytes,
                            Callback on_deliver, Callback on_acked) {
  Flow& f = *flows_[static_cast<std::size_t>(flow)];
  if (t < sim_.now()) t = sim_.now();
  const std::uint64_t segs =
      bytes == 0 ? 1 : (bytes + cfg_.mtu - 1) / cfg_.mtu;
  Message m;
  m.len = bytes;
  m.ready = t;
  m.first_psn = f.next_psn;
  m.last_psn = f.next_psn + segs - 1;
  m.on_deliver = std::move(on_deliver);
  m.on_acked = std::move(on_acked);
  const bool was_idle = f.base == f.next_psn;
  f.next_psn += segs;
  f.msgs.push_back(std::move(m));
  ++counters_.messages_sent;
  TrySend(f);
  // Only an idle->busy transition arms the timer: re-arming on every
  // enqueue would let a steady message stream postpone the RTO forever
  // while the base PSN sits unacked.
  if (was_idle) ArmRto(f);
}

void Transport::TrySend(Flow& f) {
  const std::uint64_t limit = f.base + cfg_.window;
  while (f.send_cursor < f.next_psn && f.send_cursor < limit) {
    SendPacket(f, f.send_cursor, PacketOf(f, f.send_cursor));
    ++f.send_cursor;
  }
}

void Transport::SendPacket(Flow& f, std::uint64_t psn, const PacketView& p) {
  const Nanos t = p.ready > sim_.now() ? p.ready : sim_.now();
  const std::uint64_t wire = p.bytes + cfg_.header_bytes;
  if (psn < f.high_water) {
    ++counters_.retransmits;
  } else {
    ++counters_.data_packets;
    f.high_water = psn + 1;
  }
  counters_.wire_bytes_sent += wire;
  // The packet serializes out of the sender's pipe whether or not anything
  // downstream eats it; losses only decide how far along the path the
  // bytes billed.
  const Nanos tx_done = fabric_.ReserveTx(f.src, t, wire);
  if (TakeForced(&force_drop_data_) || Lost(FaultAt(f.src).loss)) {
    ++counters_.dropped_tx;
    return;
  }
  const Nanos at_dst = tx_done + fabric_.OneWay(f.src, f.dst);
  const Nanos arrive = fabric_.ReserveRx(f.dst, at_dst, wire);
  if (Lost(FaultAt(f.dst).loss)) {
    ++counters_.dropped_rx;
    return;
  }
  if (Lost(FaultAt(f.src).corrupt) || Lost(FaultAt(f.dst).corrupt)) {
    // Bad ICRC at the receiver: silently discarded, exactly like a loss
    // except the bytes crossed the whole path first.
    ++counters_.corrupted;
    return;
  }
  sim_.At(arrive, [this, fp = &f, psn] { OnData(*fp, psn); });
}

void Transport::OnData(Flow& f, std::uint64_t psn) {
  if (psn == f.expected) {
    ++f.expected;
    bool boundary = false;
    while (f.delivered < f.msgs.size()) {
      // Deque references stay valid across push_back, so a callback that
      // queues a response on this same flow cannot invalidate `m`.
      Message& m = f.msgs[f.delivered];
      if (m.last_psn >= f.expected) break;
      ++f.delivered;
      ++counters_.messages_delivered;
      counters_.payload_bytes_delivered += m.len;
      boundary = true;
      if (m.on_deliver) m.on_deliver(sim_.now());
    }
    ++f.rx_unacked;
    if (boundary || f.rx_unacked >= cfg_.ack_every) {
      SendAck(f, /*nak=*/false);
    } else {
      ArmAckTimer(f);
    }
  } else if (psn > f.expected) {
    // Gap: a go-back-N receiver buffers nothing. NAK so the sender rewinds
    // without waiting out the RTO.
    ++counters_.out_of_order;
    SendAck(f, /*nak=*/true);
  } else {
    // Duplicate from a spurious retransmit (e.g. an eaten ACK): discard —
    // this filter is what guarantees single delivery — and re-ACK so the
    // sender's base can advance.
    ++counters_.duplicates;
    SendAck(f, /*nak=*/false);
  }
}

void Transport::SendAck(Flow& f, bool nak) {
  f.rx_unacked = 0;
  ++f.ack_epoch;  // cancels any pending delayed ACK
  ++counters_.acks_sent;
  counters_.wire_bytes_sent += cfg_.ack_bytes;
  const std::uint64_t upto = f.expected;
  const Nanos tx_done = fabric_.ReserveTx(f.dst, sim_.now(), cfg_.ack_bytes);
  if (TakeForced(&force_drop_acks_) || Lost(FaultAt(f.dst).loss)) {
    ++counters_.acks_dropped;
    return;
  }
  const Nanos at_src = tx_done + fabric_.OneWay(f.dst, f.src);
  const Nanos arrive = fabric_.ReserveRx(f.src, at_src, cfg_.ack_bytes);
  if (Lost(FaultAt(f.src).loss)) {
    ++counters_.acks_dropped;
    return;
  }
  sim_.At(arrive, [this, fp = &f, upto, nak] { OnAck(*fp, upto, nak); });
}

void Transport::OnAck(Flow& f, std::uint64_t upto, bool nak) {
  bool progressed = false;
  if (upto > f.base) {
    progressed = true;
    f.base = upto;
    f.goback_armed = false;
    while (!f.msgs.empty() && f.msgs.front().last_psn < f.base) {
      // A cumulative ACK past last_psn implies the receiver delivered the
      // message, so `delivered` always covers the popped entry.
      Message m = std::move(f.msgs.front());
      f.msgs.pop_front();
      --f.delivered;
      ++counters_.messages_acked;
      if (m.on_acked) m.on_acked(sim_.now());
    }
    if (f.send_cursor < f.base) f.send_cursor = f.base;
  }
  // Decide the NAK rewind BEFORE transmitting anything: a NAK that also
  // carries cumulative progress must not first slide the window forward
  // (sending fresh packets the gapped receiver would only discard) and
  // rewind afterwards — that would transmit every post-gap packet twice.
  if (nak && upto == f.base && f.base < f.next_psn && !f.goback_armed) {
    // The receiver reported a gap at our current base: rewind once per
    // loss event (repeated NAKs for the same gap are already answered by
    // the retransmission in flight).
    f.goback_armed = true;
    ++counters_.nak_gobacks;
    f.send_cursor = f.base;
    TrySend(f);
    ArmRto(f);
  } else if (progressed) {
    TrySend(f);  // the window slid open
    ArmRto(f);
  }
  // upto < base (and no gap at base): a stale ACK overtaken by progress.
}

void Transport::ArmRto(Flow& f) {
  const std::uint64_t epoch = ++f.rto_epoch;  // supersede any pending timer
  if (f.base == f.next_psn) return;           // nothing outstanding
  sim_.After(cfg_.rto, [this, fp = &f, epoch] {
    if (epoch != fp->rto_epoch) return;
    OnRto(*fp);
  });
}

void Transport::OnRto(Flow& f) {
  if (f.base == f.next_psn) return;
  ++counters_.timeouts;
  f.goback_armed = false;
  f.send_cursor = f.base;
  TrySend(f);
  ArmRto(f);
}

void Transport::ArmAckTimer(Flow& f) {
  if (f.ack_timer_armed) return;
  f.ack_timer_armed = true;
  const std::uint64_t epoch = f.ack_epoch;
  sim_.After(cfg_.ack_delay, [this, fp = &f, epoch] { OnAckTimer(*fp, epoch); });
}

void Transport::OnAckTimer(Flow& f, std::uint64_t epoch) {
  f.ack_timer_armed = false;
  if (f.rx_unacked == 0) return;
  if (epoch != f.ack_epoch) {
    // An eager ACK superseded this timer but packets arrived since; cover
    // the current batch with a fresh delay.
    ArmAckTimer(f);
    return;
  }
  SendAck(f, /*nak=*/false);
}

}  // namespace redn::sim
