#include "sim/transport.h"

#include <algorithm>
#include <cassert>

namespace redn::sim {

namespace {
// Bounds the exponential backoff shifts: 2^10 on a 50µs base is ~51ms,
// already far past any budget a test or bench configures.
constexpr std::uint32_t kMaxBackoffShift = 10;
// SACK ranges carried per ACK; holes past the cap wait for the next ACK
// or the RTO (the sender must never mis-learn an unreported hole as
// received, so `high` clamps to the last reported range).
constexpr std::size_t kMaxSackRanges = 8;
}  // namespace

Transport::Transport(Simulator& sim, Fabric& fabric, TransportConfig cfg)
    : sim_(sim),
      fabric_(fabric),
      cfg_(cfg),
      rng_(cfg.seed),
      default_fault_{cfg.loss, cfg.corrupt} {
  assert(cfg_.mtu > 0 && "mtu must be positive");
  assert(cfg_.window > 0 && "window must be positive");
}

int Transport::OpenFlow(int src_ep, int dst_ep) {
  flows_.push_back(std::make_unique<Flow>());
  Flow& f = *flows_.back();
  f.src = src_ep;
  f.dst = dst_ep;
  return static_cast<int>(flows_.size()) - 1;
}

void Transport::SetLinkFaults(int ep, double loss, double corrupt) {
  if (faults_.size() <= static_cast<std::size_t>(ep)) {
    faults_.resize(static_cast<std::size_t>(ep) + 1, default_fault_);
  }
  faults_[static_cast<std::size_t>(ep)] = LinkFault{loss, corrupt};
}

void Transport::SetLinkDelay(int ep, Nanos extra) {
  if (delays_.size() <= static_cast<std::size_t>(ep)) {
    delays_.resize(static_cast<std::size_t>(ep) + 1, 0);
  }
  delays_[static_cast<std::size_t>(ep)] = extra;
}

const Transport::LinkFault& Transport::FaultAt(int ep) const {
  const auto i = static_cast<std::size_t>(ep);
  return i < faults_.size() ? faults_[i] : default_fault_;
}

Nanos Transport::RnrDelay(std::uint32_t attempt) const {
  const std::uint32_t shift =
      std::min(attempt > 0 ? attempt - 1 : 0u, kMaxBackoffShift);
  return (Nanos{4096} << cfg_.min_rnr_timer) << shift;
}

Transport::PacketView Transport::PacketOf(const Flow& f,
                                          std::uint64_t psn) const {
  // Linear from the front: the deque holds only unacked messages and
  // the sender never transmits below base, so the walk is bounded by the
  // window's message count.
  for (const Message& m : f.msgs) {
    if (psn <= m.last_psn) {
      const std::uint64_t off = (psn - m.first_psn) *
                                static_cast<std::uint64_t>(cfg_.mtu);
      const std::uint64_t rem = m.len > off ? m.len - off : 0;
      const std::uint64_t take = rem < cfg_.mtu ? rem : cfg_.mtu;
      return PacketView{static_cast<std::uint32_t>(take), m.ready};
    }
  }
  assert(false && "psn not covered by any queued message");
  return PacketView{0, 0};
}

void Transport::SendMessage(int flow, Nanos t, std::uint64_t bytes,
                            Callback on_deliver, Callback on_acked) {
  MessageOps ops;
  ops.on_deliver = std::move(on_deliver);
  ops.on_acked = std::move(on_acked);
  SendMessageEx(flow, t, bytes, std::move(ops));
}

void Transport::SendMessageEx(int flow, Nanos t, std::uint64_t bytes,
                              MessageOps ops) {
  Flow& f = *flows_[static_cast<std::size_t>(flow)];
  ++counters_.messages_sent;
  if (f.error) {
    // The flow's budget already died: fail fast (asynchronously, so the
    // caller never re-enters itself) instead of queueing into a void.
    ++counters_.messages_failed;
    if (ops.on_failed) {
      sim_.At(sim_.now(), [this, cb = std::move(ops.on_failed)] {
        cb(sim_.now(), MsgFailure::kFlushed);
      });
    }
    return;
  }
  if (t < sim_.now()) t = sim_.now();
  const std::uint64_t segs =
      bytes == 0 ? 1 : (bytes + cfg_.mtu - 1) / cfg_.mtu;
  Message m;
  m.len = bytes;
  m.ready = t;
  m.first_psn = f.next_psn;
  m.last_psn = f.next_psn + segs - 1;
  m.ops = std::move(ops);
  const bool was_idle = f.base == f.next_psn;
  f.next_psn += segs;
  f.msgs.push_back(std::move(m));
  if (!f.rnr_paused) TrySend(f);
  // Only an idle->busy transition arms the timer: re-arming on every
  // enqueue would let a steady message stream postpone the RTO forever
  // while the base PSN sits unacked.
  if (was_idle && !f.rnr_paused) ArmRto(f);
}

void Transport::TrySend(Flow& f) {
  const std::uint64_t limit = f.base + cfg_.window;
  while (f.send_cursor < f.next_psn && f.send_cursor < limit) {
    SendPacket(f, f.send_cursor, PacketOf(f, f.send_cursor));
    ++f.send_cursor;
  }
}

void Transport::SendPacket(Flow& f, std::uint64_t psn, const PacketView& p) {
  const Nanos t = p.ready > sim_.now() ? p.ready : sim_.now();
  const std::uint64_t wire = p.bytes + cfg_.header_bytes;
  if (psn < f.high_water) {
    ++counters_.retransmits;
  } else {
    ++counters_.data_packets;
    f.high_water = psn + 1;
  }
  counters_.wire_bytes_sent += wire;
  // The packet serializes out of the sender's pipe whether or not anything
  // downstream eats it; losses only decide how far along the path the
  // bytes billed.
  const Nanos tx_done = fabric_.ReserveTx(f.src, t, wire);
  if (TakeForced(&force_drop_data_) || Lost(FaultAt(f.src).loss)) {
    ++counters_.dropped_tx;
    return;
  }
  const Nanos at_dst = tx_done + fabric_.OneWay(f.src, f.dst) +
                       DelayAt(f.src) + DelayAt(f.dst);
  const Nanos arrive = fabric_.ReserveRx(f.dst, at_dst, wire);
  if (Lost(FaultAt(f.dst).loss)) {
    ++counters_.dropped_rx;
    return;
  }
  if (Lost(FaultAt(f.src).corrupt) || Lost(FaultAt(f.dst).corrupt)) {
    // Bad ICRC at the receiver: silently discarded, exactly like a loss
    // except the bytes crossed the whole path first.
    ++counters_.corrupted;
    return;
  }
  sim_.At(arrive, [this, fp = &f, psn, gen = f.gen] {
    if (gen != fp->gen) return;  // a reset/failure outlived this packet
    OnData(*fp, psn);
  });
}

void Transport::OnData(Flow& f, std::uint64_t psn) {
  if (f.error) return;
  if (psn == f.expected) {
    ++f.expected;
    if (Sr()) {
      // Drain the reassembly window: contiguous held packets are as good
      // as arrived now.
      auto it = f.rx_ooo.begin();
      while (it != f.rx_ooo.end() && *it == f.expected) {
        it = f.rx_ooo.erase(it);
        ++f.expected;
      }
    }
    bool boundary = false;
    const bool ready = DeliverReady(f, &boundary);
    ++f.rx_unacked;
    if (!ready) {
      // An rnr_probe rejected the head message: expected has been rewound
      // to its first PSN; tell the sender to back off and retry.
      SendAck(f, AckKind::kRnr);
      return;
    }
    if (boundary || f.rx_unacked >= cfg_.ack_every) {
      SendAck(f, AckKind::kAck);
    } else {
      ArmAckTimer(f);
    }
  } else if (psn > f.expected) {
    ++counters_.out_of_order;
    if (Sr()) {
      if (!f.rx_ooo.insert(psn).second) {
        // Already held: the sender resent something we have.
        ++counters_.duplicates;
        ++counters_.spurious_retransmits;
      }
      // Either way the ACK carries the current missing ranges, so the
      // sender learns exactly which holes remain.
      SendAck(f, AckKind::kAck);
    } else {
      // Gap: a go-back-N receiver buffers nothing. NAK so the sender
      // rewinds without waiting out the RTO.
      SendAck(f, AckKind::kNak);
    }
  } else {
    // Duplicate from a spurious retransmit (e.g. an eaten ACK): discard —
    // this filter is what guarantees single delivery — and re-ACK so the
    // sender's base can advance.
    ++counters_.duplicates;
    ++counters_.spurious_retransmits;
    SendAck(f, AckKind::kAck);
  }
}

bool Transport::DeliverReady(Flow& f, bool* boundary) {
  while (f.delivered < f.msgs.size()) {
    // Deque references stay valid across push_back, so a callback that
    // queues a response on this same flow cannot invalidate `m`.
    Message& m = f.msgs[f.delivered];
    if (m.last_psn >= f.expected) break;
    if (cfg_.rnr_retry_count > 0 && m.ops.rnr_probe &&
        !m.ops.rnr_probe(sim_.now())) {
      // Receiver not ready (no RECV posted): rewind to the message start.
      // Selective repeat re-holds what already arrived past the first
      // packet; go-back-N discards it — the sender rewinds anyway.
      const std::uint64_t arrived_to = f.expected;
      f.expected = m.first_psn;
      if (Sr()) {
        for (std::uint64_t p = m.first_psn + 1; p < arrived_to; ++p) {
          f.rx_ooo.insert(p);
        }
      }
      ++counters_.rnr_naks;
      return false;
    }
    ++f.delivered;
    ++counters_.messages_delivered;
    counters_.payload_bytes_delivered += m.len;
    *boundary = true;
    if (m.ops.on_deliver) m.ops.on_deliver(sim_.now());
  }
  return true;
}

Transport::SackRanges Transport::MissingRanges(const Flow& f) const {
  SackRanges r;
  std::uint64_t need = f.expected;
  for (const std::uint64_t psn : f.rx_ooo) {
    if (psn > need) {
      if (r.size() == kMaxSackRanges) break;
      r.push_back({need, psn - 1});
    }
    need = psn + 1;
  }
  return r;
}

void Transport::SendAck(Flow& f, AckKind kind) {
  f.rx_unacked = 0;
  ++f.ack_epoch;  // cancels any pending delayed ACK
  ++counters_.acks_sent;
  SackRanges ranges;
  std::uint64_t high = 0;
  if (Sr() && !f.rx_ooo.empty()) {
    ranges = MissingRanges(f);
    if (!ranges.empty()) {
      ++counters_.sacks_sent;
      // Everything in [upto, high] not named missing is known-received at
      // the sender. When the range cap truncated the report, high clamps
      // to the last reported hole so unreported holes are not mis-learned.
      high = ranges.size() == kMaxSackRanges ? ranges.back().second
                                             : *f.rx_ooo.rbegin();
    }
  }
  const std::uint64_t wire =
      cfg_.ack_bytes + ranges.size() * cfg_.sack_range_bytes;
  counters_.wire_bytes_sent += wire;
  const std::uint64_t upto = f.expected;
  const Nanos tx_done = fabric_.ReserveTx(f.dst, sim_.now(), wire);
  if (TakeForced(&force_drop_acks_) || Lost(FaultAt(f.dst).loss)) {
    ++counters_.acks_dropped;
    return;
  }
  const Nanos at_src = tx_done + fabric_.OneWay(f.dst, f.src) +
                       DelayAt(f.dst) + DelayAt(f.src);
  const Nanos arrive = fabric_.ReserveRx(f.src, at_src, wire);
  if (Lost(FaultAt(f.src).loss)) {
    ++counters_.acks_dropped;
    return;
  }
  sim_.At(arrive, [this, fp = &f, upto, kind, gen = f.gen,
                   high, ranges = std::move(ranges)] {
    if (gen != fp->gen) return;
    OnAck(*fp, upto, kind, high, ranges);
  });
}

void Transport::MarkKnownReceived(Flow& f, std::uint64_t upto,
                                  std::uint64_t high,
                                  const SackRanges& ranges) {
  if (!Sr() || ranges.empty()) return;
  std::size_t ri = 0;
  for (std::uint64_t psn = std::max(upto, f.base); psn <= high; ++psn) {
    while (ri < ranges.size() && psn > ranges[ri].second) ++ri;
    const bool missing = ri < ranges.size() && psn >= ranges[ri].first &&
                         psn <= ranges[ri].second;
    if (!missing) f.known_received.insert(psn);
  }
}

int Transport::SackRetransmit(Flow& f, const SackRanges& ranges) {
  int resent = 0;
  for (const auto& [first, last] : ranges) {
    const std::uint64_t lo = std::max(first, f.base);
    const std::uint64_t hi = std::min(last + 1, f.high_water);
    for (std::uint64_t psn = lo; psn < hi; ++psn) {
      if (f.known_received.count(psn) != 0) continue;
      // Once per loss event: a hole named by several SACKs (every arrival
      // behind it generates one) is resent on the first report only; the
      // RTO clears the set and covers a lost retransmission.
      if (!f.retx_outstanding.insert(psn).second) continue;
      ++counters_.sack_retransmits;
      SendPacket(f, psn, PacketOf(f, psn));
      ++resent;
    }
  }
  return resent;
}

void Transport::OnAck(Flow& f, std::uint64_t upto, AckKind kind,
                      std::uint64_t high, const SackRanges& ranges) {
  if (f.error) return;
  bool progressed = false;
  if (upto > f.base) {
    progressed = true;
    f.base = upto;
    f.goback_armed = false;
    // Cumulative progress proves the path and the peer are alive: both
    // backoff ladders restart.
    f.consec_rtos = 0;
    f.rnr_attempts = 0;
    while (!f.msgs.empty() && f.msgs.front().last_psn < f.base) {
      // A cumulative ACK past last_psn implies the receiver delivered the
      // message, so `delivered` always covers the popped entry.
      Message m = std::move(f.msgs.front());
      f.msgs.pop_front();
      --f.delivered;
      ++counters_.messages_acked;
      if (m.ops.on_acked) m.ops.on_acked(sim_.now());
    }
    if (f.send_cursor < f.base) f.send_cursor = f.base;
    if (Sr()) {
      f.known_received.erase(f.known_received.begin(),
                             f.known_received.lower_bound(f.base));
      f.retx_outstanding.erase(f.retx_outstanding.begin(),
                               f.retx_outstanding.lower_bound(f.base));
    }
  }
  if (kind == AckKind::kRnr) {
    // An ack_every/delayed ACK can advance base into a multi-segment SEND
    // before the rnr_probe rejects it at the message boundary; the RNR NAK
    // then carries the receiver's rewound expected (the message's first
    // PSN), below base. Take those PSNs back as unacked — every retransmit
    // path clamps at base, so without this rewind the receiver would wait
    // forever on packets the sender believes are acked. Nothing needs
    // un-popping: base never passes the blocked message's last PSN, so the
    // message (and everything behind it) is still queued.
    if (upto < f.base) f.base = upto;
    // Recorded even for deduped burst NAKs: their SACK ranges still teach
    // us what the receiver holds, so the resume resends only true holes.
    MarkKnownReceived(f, upto, high, ranges);
    if (f.rnr_attempts >= 1 && f.rnr_paused) return;  // NAK burst: one pause
    ++f.rnr_attempts;
    if (cfg_.rnr_retry_count > 0 &&
        f.rnr_attempts > cfg_.rnr_retry_count) {
      FailFlow(f, MsgFailure::kRnrRetryExceeded);
      return;
    }
    ++counters_.rnr_backoffs;
    f.rnr_paused = true;
    ++f.rto_epoch;  // the backoff owns the clock; silence the RTO
    sim_.After(RnrDelay(f.rnr_attempts), [this, fp = &f, gen = f.gen] {
      if (gen != fp->gen) return;
      OnRnrResume(*fp);
    });
    return;
  }
  if (f.rnr_paused) {
    // Stragglers during the backoff still teach us what arrived, but the
    // resume event owns all transmission.
    MarkKnownReceived(f, upto, high, ranges);
    return;
  }
  if (Sr()) {
    MarkKnownReceived(f, upto, high, ranges);
    const int resent = ranges.empty() ? 0 : SackRetransmit(f, ranges);
    if (progressed) TrySend(f);  // the window slid open
    if (progressed || resent > 0) ArmRto(f);
    return;
  }
  // Go-back-N. Decide the NAK rewind BEFORE transmitting anything: a NAK
  // that also carries cumulative progress must not first slide the window
  // forward (sending fresh packets the gapped receiver would only discard)
  // and rewind afterwards — that would transmit every post-gap packet
  // twice.
  if (kind == AckKind::kNak && upto == f.base && f.base < f.next_psn &&
      !f.goback_armed) {
    // The receiver reported a gap at our current base: rewind once per
    // loss event (repeated NAKs for the same gap are already answered by
    // the retransmission in flight).
    f.goback_armed = true;
    ++counters_.nak_gobacks;
    f.send_cursor = f.base;
    TrySend(f);
    ArmRto(f);
  } else if (progressed) {
    TrySend(f);  // the window slid open
    ArmRto(f);
  }
  // upto < base (and no gap at base): a stale ACK overtaken by progress.
}

void Transport::RetransmitMissing(Flow& f) {
  const std::uint64_t hi = std::min(f.high_water, f.base + cfg_.window);
  for (std::uint64_t psn = f.base; psn < hi; ++psn) {
    if (f.known_received.count(psn) != 0) continue;
    SendPacket(f, psn, PacketOf(f, psn));
  }
}

void Transport::ArmRto(Flow& f) {
  const std::uint64_t epoch = ++f.rto_epoch;  // supersede any pending timer
  if (f.base == f.next_psn || f.error) return;  // nothing outstanding
  // Consecutive timeouts on one base PSN double the interval: a feedback
  // loop with a fixed period and a lossy channel otherwise retransmits in
  // lockstep with whatever is eating the packets.
  const std::uint32_t shift = std::min(f.consec_rtos, kMaxBackoffShift);
  sim_.After(BaseRto() << shift, [this, fp = &f, epoch] {
    if (epoch != fp->rto_epoch) return;
    OnRto(*fp);
  });
}

void Transport::OnRto(Flow& f) {
  if (f.error || f.rnr_paused) return;
  if (f.base == f.next_psn) return;
  ++counters_.rto_fires;
  ++f.consec_rtos;
  if (cfg_.retry_count > 0 && f.consec_rtos > cfg_.retry_count) {
    FailFlow(f, MsgFailure::kRetryExceeded);
    return;
  }
  ++counters_.timeouts;
  f.goback_armed = false;
  if (Sr()) {
    // The timeout invalidates what we thought was in flight: every hole
    // may be resent again on the next SACK.
    f.retx_outstanding.clear();
    RetransmitMissing(f);
  } else {
    f.send_cursor = f.base;
    TrySend(f);
  }
  ArmRto(f);
}

void Transport::OnRnrResume(Flow& f) {
  if (f.error || !f.rnr_paused) return;
  f.rnr_paused = false;
  if (f.base == f.next_psn) return;  // acked away during the pause
  if (Sr()) {
    f.retx_outstanding.clear();
    RetransmitMissing(f);
    TrySend(f);
  } else {
    f.goback_armed = false;
    f.send_cursor = f.base;
    TrySend(f);
  }
  ArmRto(f);
}

void Transport::ArmAckTimer(Flow& f) {
  if (f.ack_timer_armed) return;
  f.ack_timer_armed = true;
  const std::uint64_t epoch = f.ack_epoch;
  sim_.After(cfg_.ack_delay, [this, fp = &f, epoch] { OnAckTimer(*fp, epoch); });
}

void Transport::OnAckTimer(Flow& f, std::uint64_t epoch) {
  f.ack_timer_armed = false;
  if (f.error || f.rx_unacked == 0) return;
  if (epoch != f.ack_epoch) {
    // An eager ACK superseded this timer but packets arrived since; cover
    // the current batch with a fresh delay.
    ArmAckTimer(f);
    return;
  }
  SendAck(f, AckKind::kAck);
}

void Transport::FailFlow(Flow& f, MsgFailure why) {
  if (f.error) return;
  f.error = true;
  ++f.gen;  // in-flight packets, ACKs, and timers of this life die
  ++f.rto_epoch;
  ++f.ack_epoch;
  f.ack_timer_armed = false;
  f.rnr_paused = false;
  if (why == MsgFailure::kRetryExceeded) {
    ++counters_.retry_exhausted;
  } else {
    ++counters_.rnr_exhausted;
  }
  // The message under the exhausted budget carries the reason; everything
  // queued behind it flushes. on_failed is the *only* hook fired — a
  // delivered-but-unacked message is indistinguishable from an undelivered
  // one at the requester, exactly the IB ambiguity ERROR state models.
  bool first = true;
  while (!f.msgs.empty()) {
    Message m = std::move(f.msgs.front());
    f.msgs.pop_front();
    ++counters_.messages_failed;
    if (m.ops.on_failed) {
      m.ops.on_failed(sim_.now(), first ? why : MsgFailure::kFlushed);
    }
    first = false;
  }
  f.delivered = 0;
  f.rx_ooo.clear();
  f.known_received.clear();
  f.retx_outstanding.clear();
}

void Transport::ResetFlow(int flow) {
  Flow& f = *flows_[static_cast<std::size_t>(flow)];
  // Tearing down a live flow flushes whatever is still queued; an errored
  // flow already flushed everything in FailFlow.
  while (!f.msgs.empty()) {
    Message m = std::move(f.msgs.front());
    f.msgs.pop_front();
    ++counters_.messages_failed;
    if (m.ops.on_failed) m.ops.on_failed(sim_.now(), MsgFailure::kFlushed);
  }
  const int src = f.src;
  const int dst = f.dst;
  // Epochs and the generation survive the reset monotonically so events
  // of the old incarnation can never match the new one's.
  const std::uint64_t gen = f.gen + 1;
  const std::uint64_t rto_epoch = f.rto_epoch + 1;
  const std::uint64_t ack_epoch = f.ack_epoch + 1;
  f = Flow{};
  f.src = src;
  f.dst = dst;
  f.gen = gen;
  f.rto_epoch = rto_epoch;
  f.ack_epoch = ack_epoch;
  ++counters_.flow_resets;
}

}  // namespace redn::sim
