#include "sim/rng.h"

#include <cmath>

namespace redn::sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the xoshiro state from SplitMix64, as recommended by its authors.
  for (auto& s : s_) s = SplitMix64(seed);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Debiased modulo via rejection sampling on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

}  // namespace redn::sim
