#include "sim/sharded.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace redn::sim {

namespace {
constexpr Nanos kNanosMax = std::numeric_limits<Nanos>::max();
}  // namespace

ShardedSimulator::ShardedSimulator(int shards) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  domains_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto d = std::make_unique<EventDomain>();
    d->shard_ = i;
    d->coord_ = this;
    domains_.push_back(std::move(d));
  }
  mail_.resize(static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards));
  start_.Init(shards);
  end_.Init(shards);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::SetLookaheadFloor(Nanos one_way) {
  if (one_way <= 0) {
    throw std::invalid_argument(
        "zero-latency cross-shard link: conservative sharded simulation "
        "needs every cross-shard link's one-way latency (propagation + "
        "switch) > 0 ns — it is the lookahead window. Give the link a "
        "propagation delay, or place both endpoints on the same shard.");
  }
  if (one_way < lookahead_) lookahead_ = one_way;
}

void ShardedSimulator::PostCrossShard(int src, int dst, Nanos t, Nanos src_now,
                                      std::function<void()> fn) {
  if (dst < 0 || dst >= shards()) {
    throw std::out_of_range("SendTo: destination shard " + std::to_string(dst) +
                            " out of range [0, " + std::to_string(shards()) +
                            ")");
  }
  if (lookahead_ == kNoLookahead) {
    throw std::logic_error(
        "SendTo: cross-shard message with no lookahead registered — declare "
        "the link latency first (Fabric::Attach with a domain, or "
        "ShardedSimulator::SetLookaheadFloor)");
  }
  if (t < src_now + lookahead_) {
    throw std::logic_error(
        "SendTo: lookahead violation — message due at t=" + std::to_string(t) +
        " ns but sender is at " + std::to_string(src_now) +
        " ns with lookahead " + std::to_string(lookahead_) +
        " ns; cross-shard effects must lag the sender by at least the "
        "minimum cross-shard link latency");
  }
  Mailbox& mb = mail_[static_cast<std::size_t>(src) * shards() + dst];
  mb.pending.push_back(MailMsg{t, mb.next_seq++, std::move(fn)});
  ++mb.total_sent;
}

void ShardedSimulator::MergeMailboxes() {
  const int n = shards();
  for (int dst = 0; dst < n; ++dst) {
    merge_scratch_.clear();
    for (int src = 0; src < n; ++src) {
      Mailbox& mb = mail_[static_cast<std::size_t>(src) * n + dst];
      for (MailMsg& m : mb.pending) {
        merge_scratch_.push_back(MergeKey{m.time, src, m.seq, &m.fn});
      }
    }
    if (merge_scratch_.empty()) continue;
    // Deterministic total order: the destination wheel assigns fresh local
    // seqs in merge order, so (time, src_shard, seq) here fixes dispatch
    // order regardless of which thread ran what when.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeKey& a, const MergeKey& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    EventDomain& d = *domains_[static_cast<std::size_t>(dst)];
    for (MergeKey& k : merge_scratch_) {
      assert(k.time >= d.now() && "mailbox message due in destination past");
      d.At(k.time, std::move(*k.fn));
    }
    merges_ += merge_scratch_.size();
    for (int src = 0; src < n; ++src) {
      mail_[static_cast<std::size_t>(src) * n + dst].pending.clear();
    }
  }
}

bool ShardedSimulator::EarliestPending(Nanos* t) const {
  bool any = false;
  Nanos best = 0;
  for (const auto& d : domains_) {
    Nanos cand;
    if (d->PeekNextEventTime(&cand) && (!any || cand < best)) {
      best = cand;
      any = true;
    }
  }
  if (any) *t = best;
  return any;
}

void ShardedSimulator::RunShard(int k) {
  EventDomain* d = domains_[static_cast<std::size_t>(k)].get();
  EventDomain::tls_running_ = d;
  try {
    d->DrainWindow(window_end_);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (!err_) err_ = std::current_exception();
    }
    abort_.store(true, std::memory_order_relaxed);
  }
  EventDomain::tls_running_ = nullptr;
}

void ShardedSimulator::WorkerLoop(int k) {
  for (;;) {
    start_.Wait();
    if (stop_.load(std::memory_order_acquire)) return;
    RunShard(k);
    end_.Wait();
  }
}

void ShardedSimulator::RunWindowed(Nanos limit) {
  const int n = shards();
  stop_.store(false, std::memory_order_release);
  abort_.store(false, std::memory_order_release);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n) - 1);
  for (int k = 1; k < n; ++k) {
    workers.emplace_back(&ShardedSimulator::WorkerLoop, this, k);
  }
  for (;;) {
    // Merge first: a message parked in a mailbox may be the next event.
    MergeMailboxes();
    Nanos tmin;
    if (!EarliestPending(&tmin) || tmin > limit) break;
    Nanos end;  // exclusive window end
    if (lookahead_ == kNoLookahead || tmin > kNanosMax - lookahead_) {
      end = kNanosMax;  // no cross-shard edges: one free-running round
    } else {
      end = tmin + lookahead_;
    }
    if (limit < kNanosMax && end > limit) end = limit + 1;
    window_end_ = end;
    ++rounds_;
    start_.Wait();
    RunShard(0);
    end_.Wait();
    if (abort_.load(std::memory_order_acquire)) break;
  }
  stop_.store(true, std::memory_order_release);
  start_.Wait();
  for (std::thread& th : workers) th.join();
  if (err_) {
    std::exception_ptr e = err_;
    err_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ShardedSimulator::Run() {
  if (shards() == 1) {
    MergeMailboxes();  // staged same-coordinator sends from setup code
    domains_[0]->Run();
    return;
  }
  RunWindowed(kNanosMax);
  // Queues are drained; let each domain consume its noted horizon so a
  // drained run ends at the last host-visibility instant, exactly like the
  // single-threaded engine.
  for (auto& d : domains_) d->Run();
}

void ShardedSimulator::RunUntil(Nanos t) {
  if (shards() == 1) {
    MergeMailboxes();
    domains_[0]->RunUntil(t);
    return;
  }
  RunWindowed(t);
  // No pending event <= t remains anywhere; advance every clock to t.
  for (auto& d : domains_) d->RunUntil(t);
}

void ShardedSimulator::Reset() {
  for (auto& d : domains_) d->Reset();
  for (Mailbox& mb : mail_) {
    mb.pending.clear();
    mb.next_seq = 0;  // total_sent stays cumulative, like domain stats
  }
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->events_processed();
  return total;
}

std::uint64_t ShardedSimulator::slab_hits() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->slab_hits();
  return total;
}

std::uint64_t ShardedSimulator::heap_fallbacks() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->heap_fallbacks();
  return total;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& d : domains_) total += d->pending_events();
  for (const Mailbox& mb : mail_) total += mb.pending.size();
  return total;
}

Nanos ShardedSimulator::now() const {
  Nanos best = 0;
  for (const auto& d : domains_) best = std::max(best, d->now());
  return best;
}

std::uint64_t ShardedSimulator::cross_shard_sends() const {
  std::uint64_t total = 0;
  for (const Mailbox& mb : mail_) total += mb.total_sent;
  return total;
}

}  // namespace redn::sim
