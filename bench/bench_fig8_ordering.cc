// Fig 8: execution latency of NOOP chains posted under the three ordering
// modes (WQ order / completion order / doorbell order), 1..50 WRs.
#include <cstdio>

#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

// Latency of an n-NOOP chain on a fresh remote-connected rig.
double ChainUs(int n, int mode) {  // 0 = WQ, 1 = completion, 2 = doorbell
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  rnic::QpConfig c;
  c.sq_depth = 4096;
  c.send_cq = client.CreateCq();
  c.recv_cq = client.CreateCq();
  rnic::QueuePair* qp = client.CreateQp(c);
  rnic::QpConfig s;
  s.send_cq = server.CreateCq();
  s.recv_cq = server.CreateCq();
  rnic::QueuePair* peer = server.CreateQp(s);
  rnic::Connect(qp, peer, rnic::Calibration{}.net_one_way);

  int signaled = 0;
  if (mode == 0) {
    for (int i = 0; i < n; ++i) verbs::PostSend(qp, verbs::MakeNoop());
    signaled = n;
    verbs::RingDoorbell(qp);
  } else if (mode == 1) {
    for (int i = 0; i < n; ++i) {
      if (i > 0) verbs::PostSend(qp, verbs::MakeWait(qp->send_cq, i));
      verbs::PostSend(qp, verbs::MakeNoop());
    }
    signaled = n;
    verbs::RingDoorbell(qp);
  } else {
    // Managed payload queue, WAIT+ENABLE per WR on a control queue.
    rnic::QpConfig mc;
    mc.sq_depth = 4096;
    mc.managed = true;
    mc.send_cq = client.CreateCq();
    mc.recv_cq = client.CreateCq();
    rnic::QueuePair* chain = client.CreateQp(mc);
    rnic::Connect(chain, peer, rnic::Calibration{}.net_one_way);
    for (int i = 0; i < n; ++i) verbs::PostSend(chain, verbs::MakeNoop());
    for (int i = 0; i < n; ++i) {
      if (i > 0) verbs::PostSend(qp, verbs::MakeWait(chain->send_cq, i));
      verbs::PostSend(qp, verbs::MakeEnable(chain, i + 1));
    }
    signaled = n;
    verbs::RingDoorbell(qp);
    qp = chain;  // completions of interest are on the payload queue
  }

  const sim::Nanos t0 = sim.now();
  verbs::Cqe cqe;
  verbs::AwaitCqes(sim, client, qp->send_cq, signaled, &cqe);
  return sim::ToMicros(sim.now() - t0);
}

}  // namespace

int main() {
  bench::Title("Chain latency under ordering modes", "Fig 8");
  std::printf("  %6s %12s %18s %15s\n", "ops", "WQ order", "completion order",
              "doorbell order");
  const int counts[] = {1, 5, 10, 20, 30, 40, 50};
  double prev[3] = {0, 0, 0};
  double at50[3] = {0, 0, 0};
  for (int n : counts) {
    const double wq = ChainUs(n, 0);
    const double comp = ChainUs(n, 1);
    const double db = ChainUs(n, 2);
    std::printf("  %6d %10.2f us %14.2f us %13.2f us\n", n, wq, comp, db);
    if (n == 50) {
      at50[0] = wq;
      at50[1] = comp;
      at50[2] = db;
    }
    prev[0] = wq;
    prev[1] = comp;
    prev[2] = db;
  }
  (void)prev;
  bench::Section("per-WR slope (derived from the 50-op chain)");
  bench::Compare("WQ order slope", (at50[0] - ChainUs(1, 0)) / 49, 0.17,
                 "us/WR");
  bench::Compare("completion order slope", (at50[1] - ChainUs(1, 1)) / 49,
                 0.19, "us/WR");
  bench::Compare("doorbell order slope", (at50[2] - ChainUs(1, 2)) / 49, 0.54,
                 "us/WR");
  bench::Compare("single NOOP", ChainUs(1, 0), 1.21, "us");
  return 0;
}
