// Fig 11: hash-get latency when the key always lives in the second bucket
// (worst-case collision): RedN-Seq vs RedN-Parallel vs baselines.
#include <cstdio>

#include "baseline/one_sided.h"
#include "baseline/two_sided.h"
#include "offloads/hash_harness.h"
#include "report.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

constexpr std::uint32_t kSizes[] = {64, 1024, 4096, 16384, 65536};
constexpr int kOps = 200;

double RednUs(std::uint32_t len, bool parallel) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  offloads::HashGetHarness h(
      cdev, sdev,
      {.buckets = 2, .parallel = parallel, .max_requests = kOps + 8});
  h.PutPattern(42, len, /*force_second=*/true);
  h.Arm(kOps + 4);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = h.Get(42, sim::Millis(2));
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double OneSidedUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 14});
  kv::ValueHeap heap(sdev, 256 << 20);
  std::vector<std::byte> v(len, std::byte{0x42});
  table.Insert(42, heap.Store(v.data(), len), len, /*force_second=*/true);
  baseline::OneSidedKvClient client(cdev, sdev, table, heap);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double TwoSidedUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 14});
  kv::ValueHeap heap(sdev, 256 << 20);
  std::vector<std::byte> v(len, std::byte{0x42});
  table.Insert(42, heap.Store(v.data(), len), len, /*force_second=*/true);
  baseline::TwoSidedKvServer server(sdev, table, heap,
                                    baseline::TwoSidedKvServer::Mode::kPolling);
  baseline::TwoSidedKvClient client(cdev, server);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.ok) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

}  // namespace

int main() {
  bench::Title("Hash-get latency under collisions (key in 2nd bucket)",
               "Fig 11");
  std::printf("  %8s %12s %14s %11s %13s\n", "size", "RedN-Seq",
              "RedN-Parallel", "One-sided", "2-sided poll");
  double seq64 = 0, par64 = 0;
  for (std::uint32_t len : kSizes) {
    const double seq = RednUs(len, false);
    const double par = RednUs(len, true);
    const double os = OneSidedUs(len);
    const double ts = TwoSidedUs(len);
    std::printf("  %7uB %10.2fus %12.2fus %9.2fus %11.2fus\n", len, seq, par,
                os, ts);
    if (len == 64) {
      seq64 = seq;
      par64 = par;
    }
  }
  bench::Section("paper headline comparisons");
  bench::Compare("RedN-Seq penalty vs Parallel @64B", seq64 - par64, 3.0,
                 "us");
  bench::Note("parallel probing hides the second bucket lookup almost "
              "entirely (two WQs on two PUs), matching Fig 11");
  return 0;
}
