// Table 5: latency of offloaded hash gets vs StRoM (FPGA SmartNIC).
// StRoM rows are the published numbers the paper also quotes (the authors
// had no FPGA either); RedN rows are measured on our simulated CX5.
#include <cstdio>

#include "offloads/hash_harness.h"
#include "report.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

void Measure(std::uint32_t len, double* median, double* p99) {
  sim::Simulator sim;
  rnic::Calibration cal;
  cal.jitter_frac = 0.08;  // model NIC/PCIe timing noise for tails
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), cal, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), cal, "server");
  const int kOps = 2000;
  offloads::HashGetHarness h(cdev, sdev,
                             {.buckets = 1, .max_requests = kOps + 8});
  h.PutPattern(42, len);
  h.Arm(kOps + 4);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = h.Get(42, sim::Millis(2));
    if (r.found) rec.Add(r.latency);
  }
  *median = rec.MedianUs();
  *p99 = rec.PercentileUs(99);
}

}  // namespace

int main() {
  bench::Title("Hash-get latency: RedN vs StRoM SmartNIC", "Table 5");
  struct Row {
    std::uint32_t len;
    double paper_median, paper_p99;
    double strom_median, strom_p99;
  } rows[] = {
      {64, 5.7, 6.9, 7.0, 7.0},
      {4096, 6.7, 8.4, 12.0, 13.0},
  };
  std::printf("  %8s %-10s %12s %12s %14s %12s\n", "IO", "system", "median",
              "99th", "paper median", "paper 99th");
  for (const auto& r : rows) {
    double med = 0, p99 = 0;
    Measure(r.len, &med, &p99);
    std::printf("  %7uB %-10s %9.1f us %9.1f us %11.1f us %9.1f us\n", r.len,
                "RedN", med, p99, r.paper_median, r.paper_p99);
    std::printf("  %7uB %-10s %9.1f us %9.1f us   (published StRoM numbers)\n",
                r.len, "StRoM", r.strom_median, r.strom_p99);
  }
  bench::Note("RedN undercuts the FPGA SmartNIC, especially at 4KB where "
              "StRoM pays extra PCIe round trips — the paper's point that "
              "commodity RNICs can match purpose-built hardware");
  return 0;
}
