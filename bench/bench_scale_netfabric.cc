// Shared-fabric scale-out bench: N clients x RedN NIC-served gets through
// one congested server port.
//
// Every client NIC attaches to a switch fabric with its own link; the
// server's single link carries every trigger in (RX) and every offloaded
// WRITE_IMM response out (TX). As N grows, aggregate throughput stops
// scaling at the server link's line rate and per-get latency inflates with
// queueing — the contention behaviour the per-QP constant-latency model
// cannot express (private wires never queue).
//
// All per-N results are pure simulated time and must be bit-stable across
// runs and seeds of the same value: the bench re-runs the widest
// configuration and fails if any simulated field differs. Only the
// wall-clock events/s line (the CI floor) varies run to run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "report.h"
#include "workload/experiments.h"

using namespace redn;

int main(int argc, char** argv) {
  int gets = 200;
  int max_clients = 8;
  std::uint32_t value_len = 16384;
  int shards = 0;  // >= 2 appends the sharded-engine section
  for (int i = 1; i < argc; ++i) {
    auto val = [&]() -> double { return i + 1 < argc ? std::atof(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--quick") == 0) {
      gets = 100;
    } else if (std::strcmp(argv[i], "--gets") == 0) {
      gets = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      max_clients = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--value") == 0) {
      value_len = static_cast<std::uint32_t>(val());
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(val());
    }
  }

  bench::Title("Shared-fabric N-client scale-out",
               "scale-out of §5.2 NIC-served gets; shared-link contention");
  std::printf("  %u B values, %d gets/client, server link 25 Gbps shared by "
              "all clients\n", value_len, gets);

  auto run = [&](int clients) {
    workload::FabricScaleConfig cfg;
    cfg.clients = clients;
    cfg.gets_per_client = gets;
    cfg.value_len = value_len;
    return workload::RunFabricScale(cfg);
  };

  bench::Section("scaling (simulated, deterministic)");
  std::printf("  %8s %12s %12s %10s %10s %8s %8s\n", "clients", "gets",
              "kgets/s", "avg us", "p99 us", "tx util", "rx util");
  std::vector<workload::FabricScaleResult> results;
  std::uint64_t total_events = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int n = 1; n <= max_clients; n *= 2) {
    const auto r = run(n);
    results.push_back(r);
    total_events += r.events;
    std::printf("  %8d %12llu %12.1f %10.2f %10.2f %7.1f%% %7.1f%%\n", n,
                static_cast<unsigned long long>(r.gets), r.gets_per_sec / 1e3,
                r.avg_us, r.p99_us, 100.0 * r.server_tx_util,
                100.0 * r.server_rx_util);
  }
  // Seed-stability: the same config must reproduce every simulated field
  // exactly (the fabric layer must not introduce nondeterminism).
  const auto again = run(max_clients);
  total_events += again.events;
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& widest = results.back();
  const bool stable = again.gets == widest.gets &&
                      again.duration_us == widest.duration_us &&
                      again.avg_us == widest.avg_us &&
                      again.p99_us == widest.p99_us &&
                      again.server_tx_util == widest.server_tx_util;

  const auto& one = results.front();
  const double speedup = widest.gets_per_sec / one.gets_per_sec;
  bench::Section("contention");
  std::printf("  %d-client aggregate is %.2fx one client (ideal %.0fx); the "
              "shared server link is the ceiling\n", max_clients, speedup,
              static_cast<double>(max_clients));

  const double events_per_sec = static_cast<double>(total_events) / wall_secs;
  bench::JsonWriter("scale_netfabric")
      .Field("clients", static_cast<std::uint64_t>(max_clients))
      .Field("gets", widest.gets)
      .Field("gets_per_sec", widest.gets_per_sec)
      .Field("avg_us", widest.avg_us)
      .Field("p99_us", widest.p99_us)
      .Field("server_tx_util", widest.server_tx_util)
      .Field("scaling_vs_one", speedup)
      .Field("deterministic", static_cast<std::uint64_t>(stable ? 1 : 0))
      .Field("events_per_sec", events_per_sec)
      .Emit();

  // Self-checks: every get answered, a bit-stable rerun, and genuine
  // contention (the N-client run must saturate the shared link while a lone
  // client cannot).
  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::uint64_t expect =
        static_cast<std::uint64_t>(gets) * (1ull << i);
    if (results[i].gets != expect) {
      std::fprintf(stderr, "FAIL: lost responses (%llu != %llu)\n",
                   static_cast<unsigned long long>(results[i].gets),
                   static_cast<unsigned long long>(expect));
      ok = false;
    }
  }
  if (!stable) {
    std::fprintf(stderr, "FAIL: rerun diverged (nondeterministic fabric)\n");
    ok = false;
  }
  // --- sharded engine: real cross-shard mailbox traffic --------------------
  // Unlike the loopback fanout bench, every trigger and response here
  // crosses the client<->server shard boundary, so this section exercises
  // the conservative sync end to end: lookahead windows, mailbox merges,
  // and rerun determinism under real threads. Simulated results are not
  // compared against the single-domain run — same-instant RX reservations
  // can legally merge in a different order (docs/PARSIM.md) — but the
  // sharded run must reproduce itself bit for bit.
  if (shards >= 2) {
    workload::FabricScaleConfig scfg;
    scfg.clients = max_clients;
    scfg.gets_per_client = gets;
    scfg.value_len = value_len;
    scfg.shards = shards;

    const auto tb = std::chrono::steady_clock::now();
    const auto base = run(max_clients);  // classic single-domain path
    const double wall_1shard =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tb)
            .count();
    const auto ts = std::chrono::steady_clock::now();
    const auto s1 = workload::RunFabricScale(scfg);
    const double wall_sharded =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ts)
            .count();
    const auto s2 = workload::RunFabricScale(scfg);
    const double wall_speedup =
        wall_sharded > 0 ? wall_1shard / wall_sharded : 0.0;

    bench::Section("sharded engine");
    std::printf("  %8s %12s %12s %10s %10s %10s\n", "shards", "gets",
                "kgets/s", "avg us", "mailbox", "rounds");
    std::printf("  %8d %12llu %12.1f %10.2f %10llu %10llu\n", shards,
                static_cast<unsigned long long>(s1.gets),
                s1.gets_per_sec / 1e3, s1.avg_us,
                static_cast<unsigned long long>(s1.mailbox_sends),
                static_cast<unsigned long long>(s1.sync_rounds));
    std::printf("  wall %.3f s single-domain vs %.3f s sharded -> %.2fx\n",
                wall_1shard, wall_sharded, wall_speedup);

    const bool sharded_stable =
        s1.gets == s2.gets && s1.duration_us == s2.duration_us &&
        s1.avg_us == s2.avg_us && s1.p99_us == s2.p99_us &&
        s1.server_tx_util == s2.server_tx_util && s1.events == s2.events &&
        s1.mailbox_sends == s2.mailbox_sends &&
        s1.sync_rounds == s2.sync_rounds;

    bench::JsonWriter("scale_netfabric_sharded")
        .Field("shards", static_cast<std::uint64_t>(shards))
        .Field("gets", s1.gets)
        .Field("gets_per_sec", s1.gets_per_sec)
        .Field("avg_us", s1.avg_us)
        .Field("mailbox_sends", s1.mailbox_sends)
        .Field("sync_rounds", s1.sync_rounds)
        .Field("wall_speedup_vs_1shard", wall_speedup)
        .Field("deterministic",
               static_cast<std::uint64_t>(sharded_stable ? 1 : 0))
        .Emit();

    if (s1.gets != static_cast<std::uint64_t>(gets) * max_clients) {
      std::fprintf(stderr, "FAIL: sharded run lost responses (%llu)\n",
                   static_cast<unsigned long long>(s1.gets));
      ok = false;
    }
    if (!sharded_stable) {
      std::fprintf(stderr,
                   "FAIL: sharded rerun diverged (determinism broken)\n");
      ok = false;
    }
    if (s1.mailbox_sends == 0) {
      std::fprintf(stderr,
                   "FAIL: no cross-shard traffic — placement inert?\n");
      ok = false;
    }
    if (base.gets != s1.gets) {
      std::fprintf(stderr, "FAIL: sharded run served a different demand\n");
      ok = false;
    }
  }

  if (max_clients >= 8) {
    if (widest.server_tx_util < 0.5) {
      std::fprintf(stderr, "FAIL: server link not contended (tx util %.2f)\n",
                   widest.server_tx_util);
      ok = false;
    }
    if (speedup > 0.9 * max_clients) {
      std::fprintf(stderr,
                   "FAIL: near-ideal scaling (%.2fx) — link sharing inert?\n",
                   speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
