// Table 3: throughput of common RDMA verbs and of RedN's constructs on a
// single ConnectX-5 port.
#include <cstdio>
#include <memory>
#include <vector>

#include "offloads/recycled_loop.h"
#include "offloads/rpc.h"
#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

// Flood of `op` across many QPs; returns M ops/s.
double VerbRateMops(rnic::Opcode op) {
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  auto cbuf = std::make_unique<std::byte[]>(1 << 20);
  auto cmr = client.pd().Register(cbuf.get(), 1 << 20, rnic::kAccessAll);
  auto sbuf = std::make_unique<std::byte[]>(1 << 20);
  auto smr = server.pd().Register(sbuf.get(), 1 << 20, rnic::kAccessAll);

  const int kQps = 32;
  const int kOps = 3000;
  std::vector<rnic::QueuePair*> qps;
  for (int q = 0; q < kQps; ++q) {
    rnic::QpConfig c;
    c.sq_depth = kOps + 8;
    c.send_cq = client.CreateCq();
    c.recv_cq = client.CreateCq();
    rnic::QueuePair* cqp = client.CreateQp(c);
    rnic::QpConfig s;
    s.send_cq = server.CreateCq();
    s.recv_cq = server.CreateCq();
    rnic::QueuePair* sqp = server.CreateQp(s);
    rnic::Connect(cqp, sqp, rnic::Calibration{}.net_one_way);
    qps.push_back(cqp);
  }
  for (auto* qp : qps) {
    for (int i = 0; i < kOps; ++i) {
      verbs::SendWr wr;
      const bool last = i + 1 == kOps;
      switch (op) {
        case rnic::Opcode::kRead:
          wr = verbs::MakeRead(cmr.addr, 64, cmr.lkey, smr.addr, smr.rkey, last);
          break;
        case rnic::Opcode::kCompSwap:
          wr = verbs::MakeCas(smr.addr, smr.rkey, 0, 0, 0, 0, last);
          break;
        case rnic::Opcode::kFetchAdd:
          wr = verbs::MakeFetchAdd(smr.addr + 64, smr.rkey, 1, 0, 0, last);
          break;
        case rnic::Opcode::kCalcMax:
          wr = verbs::MakeCalcMax(smr.addr + 128, smr.rkey, 1, last);
          break;
        default:
          wr = verbs::MakeWrite(cmr.addr, 64, cmr.lkey, smr.addr, smr.rkey,
                                last);
          break;
      }
      verbs::PostSend(qp, wr);
    }
    verbs::RingDoorbell(qp);
  }
  const sim::Nanos t0 = sim.now();
  sim.Run();
  return static_cast<double>(kQps) * kOps /
         sim::ToSeconds(sim.now() - t0) / 1e6;
}

// Throughput of a serialized stream of `if` constructs (CondRpc offload
// with back-to-back triggers). Doorbell ordering prevents cross-iteration
// pipelining, so the stream is bound by NIC processing — §5.1.3.
double IfRateMops(int n) {
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  rnic::QpConfig s;
  s.sq_depth = 2 * n + 64;
  s.rq_depth = 2 * n + 64;
  s.managed = true;
  s.send_cq = server.CreateCq();
  s.recv_cq = server.CreateCq();
  rnic::QueuePair* srv = server.CreateQp(s);
  rnic::QpConfig c;
  c.sq_depth = n + 64;
  c.rq_depth = n + 64;
  c.send_cq = client.CreateCq();
  c.recv_cq = client.CreateCq();
  rnic::QueuePair* cli = client.CreateQp(c);
  rnic::Connect(cli, srv, rnic::Calibration{}.net_one_way);

  auto buf = std::make_unique<std::byte[]>(4096);
  auto mr = client.pd().Register(buf.get(), 4096, rnic::kAccessAll);
  offloads::CondRpcOffload cond(server, srv, /*y=*/5, n, mr.addr, mr.rkey);

  // Fire all triggers open-loop; the control chain serializes them.
  offloads::CondRpcOffload::BuildTrigger(5, reinterpret_cast<std::byte*>(
                                                buf.get()) + 8);
  for (int i = 0; i < n; ++i) {
    verbs::RecvWr rwr;
    verbs::PostRecv(cli, rwr);
    verbs::PostSendNow(cli, verbs::MakeSend(mr.addr + 8, 8, mr.lkey,
                                            /*signaled=*/false));
  }
  // Time from first to last response.
  verbs::Cqe cqe;
  verbs::AwaitCqe(sim, client, cli->recv_cq, &cqe);
  const sim::Nanos t0 = sim.now();
  verbs::AwaitCqes(sim, client, cli->recv_cq, n - 1, &cqe);
  return static_cast<double>(n - 1) / sim::ToSeconds(sim.now() - t0) / 1e6;
}

double RecycledRateMops() {
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  offloads::RecycledAddLoop loop(dev, /*body_wrs=*/3);
  loop.Start();
  sim.RunUntil(sim::Millis(5));
  return static_cast<double>(loop.iterations()) /
         sim::ToSeconds(sim::Millis(5)) / 1e6;
}

}  // namespace

int main() {
  bench::Title("Verb and construct throughput, single CX5 port", "Table 3");
  bench::Section("native verbs");
  bench::Compare("CAS (atomic)", VerbRateMops(rnic::Opcode::kCompSwap), 8.4,
                 "M/s");
  bench::Compare("ADD (atomic)", VerbRateMops(rnic::Opcode::kFetchAdd), 8.4,
                 "M/s");
  bench::Compare("READ (copy)", VerbRateMops(rnic::Opcode::kRead), 65.0,
                 "M/s");
  bench::Compare("WRITE (copy)", VerbRateMops(rnic::Opcode::kWrite), 63.0,
                 "M/s");
  bench::Section("vendor calc verbs");
  bench::Compare("MAX", VerbRateMops(rnic::Opcode::kCalcMax), 63.0, "M/s");
  bench::Section("RedN constructs");
  const double if_rate = IfRateMops(2000);
  bench::Compare("if", if_rate, 0.7, "M/s");
  bench::Compare("while (unrolled, per iter)", if_rate, 0.7, "M/s");
  bench::Compare("while (WQ recycling)", RecycledRateMops(), 0.3, "M/s");
  bench::Note("if/unrolled-while share the same per-iteration chain, hence "
              "identical throughput, as the paper observes");
  return 0;
}
