// Table 4: NIC throughput of offloaded hash lookups and the bottleneck at
// each operating point (small IO: NIC processing; 64 KB single port: IB
// bandwidth; 64 KB dual port: PCIe bandwidth).
#include <cstdio>
#include <memory>
#include <vector>

#include "offloads/hash_harness.h"
#include "report.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

struct RunResult {
  double kops;
  const char* bottleneck;
};

RunResult Run(std::uint32_t value_len, int ports) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(ports), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(ports), {}, "server");

  const int kClients = 16;
  const int kOpsPerClient = value_len >= 65536 ? 60 : 250;
  std::vector<std::unique_ptr<offloads::HashGetHarness>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<offloads::HashGetHarness>(
        cdev, sdev,
        offloads::HashGetOffload::Config{.buckets = 1,
                                         .max_requests = kOpsPerClient + 8,
                                         .port = i % ports},
        kv::RdmaHashTable::Config{.buckets = 1 << 12},
        /*heap_bytes=*/std::size_t{8} << 20,
        /*max_value=*/value_len));
    clients.back()->PutPattern(7, value_len);
    clients.back()->Arm(kOpsPerClient + 4);
  }
  sim.Run();  // settle arming
  std::uint64_t responses = 0;
  for (auto& c : clients) {
    offloads::HashGetHarness* h = c.get();
    h->client_recv_cq()->SetHostNotify([&cdev, h, &responses] {
      rnic::Cqe cqe;
      while (cdev.PollCq(h->client_recv_cq(), 1, &cqe) == 1) {
        h->NoteOpenLoopResponse(cqe.qp_id);
        ++responses;
      }
    });
  }
  const sim::Nanos t0 = sim.now();
  for (int op = 0; op < kOpsPerClient; ++op) {
    for (auto& c : clients) c->SendTrigger(7);
  }
  sim.Run();
  const sim::Nanos window = sim.now() - t0;
  RunResult r;
  r.kops = static_cast<double>(responses) / sim::ToSeconds(window) / 1e3;
  r.bottleneck = sdev.BusiestResource(window);
  return r;
}

}  // namespace

int main() {
  bench::Title("Offloaded hash-lookup throughput and bottlenecks", "Table 4");
  struct Case {
    std::uint32_t len;
    int ports;
    double paper_kops;
    const char* paper_bneck;
  } cases[] = {
      {64, 1, 500, "NIC PU"},
      {64, 2, 1000, "NIC PU"},
      {65536, 1, 180, "IB bw"},
      {65536, 2, 190, "PCIe bw"},
  };
  std::printf("  %10s %6s %14s %12s %16s %12s\n", "IO size", "ports",
              "measured", "paper", "bottleneck", "paper says");
  for (const auto& c : cases) {
    const RunResult r = Run(c.len, c.ports);
    std::printf("  %9uB %6d %10.0f K/s %8.0f K/s %16s %12s\n", c.len, c.ports,
                r.kops, c.paper_kops, r.bottleneck, c.paper_bneck);
  }
  bench::Note("small IO is bound by the serialized managed-WQE fetches (the "
              "paper's 'NIC processing capacity due to doorbell ordering'); "
              "64KB single-port saturates the ~92 Gbps IB link; dual-port "
              "moves the bottleneck to the shared PCIe 3.0 x16");
  return 0;
}
