// Fig 15: Memcached get latency under CPU contention — 1 reader vs a
// growing number of closed-loop writer clients. RedN stays flat because the
// NIC path never touches the contended CPU; the two-sided baseline's tail
// explodes.
#include <cstdio>

#include "report.h"
#include "workload/experiments.h"

using namespace redn;

int main() {
  bench::Title("Get latency under CPU contention (1 reader, N writers)",
               "Fig 15");
  std::printf("  %8s %12s %12s %14s %14s\n", "writers", "RedN avg",
              "RedN 99th", "2-sided avg", "2-sided 99th");
  double redn_p99_16 = 1, two_p99_16 = 0;
  for (int writers : {1, 2, 4, 8, 16}) {
    const auto redn = workload::RunRedNContention(writers, 250);
    const auto two = workload::RunTwoSidedContention(writers, 600);
    std::printf("  %8d %10.2fus %10.2fus %12.2fus %12.2fus\n", writers,
                redn.avg_us, redn.p99_us, two.avg_us, two.p99_us);
    if (writers == 16) {
      redn_p99_16 = redn.p99_us;
      two_p99_16 = two.p99_us;
    }
  }
  bench::Section("paper headline comparison");
  bench::Compare("2-sided p99 / RedN p99 @16 writers", two_p99_16 / redn_p99_16,
                 35.0, "x");
  bench::Note("RedN average and 99th percentile stay below ~7 us at every "
              "writer count (paper: 'CPU contention has no impact on the "
              "performance of the RNIC')");
  return 0;
}
