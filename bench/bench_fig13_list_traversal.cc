// Fig 13: average latency of walking a remote linked list (size 8) with the
// searched key placed uniformly in [0, range), for range in {1,2,4,8}.
// Systems: RedN (no break), RedN (+break), one-sided (dependent READs),
// two-sided RPC. Also reports the WR budgets the paper quotes (~50 vs ~30).
#include <cstdio>
#include <memory>

#include "baseline/calibration.h"
#include "offloads/list_traversal.h"
#include "report.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

constexpr int kListSize = 8;
constexpr std::uint32_t kValueLen = 64;
constexpr int kOps = 120;

struct Rig {
  sim::Simulator sim;
  rnic::RnicDevice cdev{sim, rnic::NicConfig::ConnectX5(), {}, "client"};
  rnic::RnicDevice sdev{sim, rnic::NicConfig::ConnectX5(), {}, "server"};
  offloads::ListStore list{sdev, kListSize + 1, kValueLen};
  rnic::QueuePair* srv = nullptr;
  rnic::QueuePair* cli = nullptr;
  std::unique_ptr<std::byte[]> bufs = std::make_unique<std::byte[]>(4096);
  rnic::MemoryRegion mr;

  Rig() {
    rnic::QpConfig s;
    s.sq_depth = 1 << 16;
    s.rq_depth = 1 << 16;
    s.managed = true;
    s.send_cq = sdev.CreateCq();
    s.recv_cq = sdev.CreateCq();
    srv = sdev.CreateQp(s);
    rnic::QpConfig c;
    c.sq_depth = 1 << 14;
    c.rq_depth = 1 << 14;
    c.send_cq = cdev.CreateCq();
    c.recv_cq = cdev.CreateCq();
    cli = cdev.CreateQp(c);
    rnic::Connect(cli, srv, rnic::Calibration{}.net_one_way);
    mr = cdev.pd().Register(bufs.get(), 4096, rnic::kAccessAll);
    for (int i = 0; i < kListSize; ++i) list.AppendPattern(100 + i);
  }

  // One RedN traversal (fresh chain per request: the paper's unrolled mode).
  sim::Nanos Traverse(std::uint64_t key, bool use_break) {
    offloads::ListTraversalOffload off(
        sdev, list, srv, {.iterations = kListSize, .use_break = use_break},
        mr.addr + 1024, mr.rkey);
    verbs::RecvWr rwr;
    verbs::PostRecv(cli, rwr);
    off.BuildTrigger(key, bufs.get());
    const sim::Nanos t0 = sim.now();
    verbs::PostSendNow(cli, verbs::MakeSend(mr.addr, off.TriggerBytes(),
                                            mr.lkey, /*signaled=*/false));
    verbs::Cqe cqe;
    sim::Nanos lat = -1;
    if (verbs::AwaitCqe(sim, cdev, cli->recv_cq, &cqe,
                        sim.now() + sim::Micros(500))) {
      lat = sim.now() - t0;
    }
    sim.Run();  // quiesce before the offload (and its SGE tables) dies
    return lat;
  }
};

// One-sided baseline: walk the list with dependent READs (FaRM/Pilaf style).
double OneSidedUs(int range, std::uint64_t seed) {
  Rig rig;  // reuse topology; one-sided only needs the list + a plain QP
  rnic::QpConfig c;
  c.send_cq = rig.cdev.CreateCq();
  c.recv_cq = rig.cdev.CreateCq();
  rnic::QueuePair* qp = rig.cdev.CreateQp(c);
  rnic::QpConfig s;
  s.send_cq = rig.sdev.CreateCq();
  s.recv_cq = rig.sdev.CreateCq();
  rnic::QueuePair* srv = rig.sdev.CreateQp(s);
  rnic::Connect(qp, srv, rnic::Calibration{}.net_one_way);
  const baseline::BaselineCalibration bcal;
  sim::Rng rng(seed);
  sim::LatencyRecorder rec;
  verbs::Cqe cqe;
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t key = 100 + rng.NextBelow(range);
    const sim::Nanos t0 = rig.sim.now();
    std::uint64_t node = rig.list.head();
    while (node != 0) {
      // Client software overhead per dependent READ (post + poll + parse).
      rig.sim.RunUntil(rig.sim.now() + bcal.client_read_overhead);
      verbs::PostSendNow(qp, verbs::MakeRead(rig.mr.addr, rig.list.node_bytes(),
                                             rig.mr.lkey, node,
                                             rig.list.rkey()));
      verbs::AwaitCqe(rig.sim, rig.cdev, qp->send_cq, &cqe);
      const std::uint64_t got_key = rnic::dma::ReadU64(rig.mr.addr);
      const std::uint64_t next = rnic::dma::ReadU64(rig.mr.addr + 8);
      if (got_key == key) break;  // value arrived with the node read
      node = next;
    }
    rec.Add(rig.sim.now() - t0);
  }
  return rec.MeanUs();
}

// Two-sided baseline: one RPC; the server CPU walks the list in-memory.
double TwoSidedUs() {
  // Handler cost is the calibrated RPC service (the in-memory walk itself
  // is nanoseconds); latency is flat in the range — paper's flat line.
  const baseline::BaselineCalibration bcal;
  // request path (~1.5us) + detect + service + response write (~1.7us)
  return sim::ToMicros(1500 + bcal.poll_detect + bcal.get_service + 1750);
}

}  // namespace

int main() {
  bench::Title("Remote linked-list walk latency vs key range", "Fig 13");
  std::printf("  %7s %10s %14s %12s %12s\n", "range", "RedN",
              "RedN(+break)", "One-sided", "Two-sided");
  sim::Rng rng(7);
  double redn8 = 0, os8 = 0;
  std::uint64_t wrs_nobreak = 0, wrs_break = 0, runs_nobreak = 0,
                runs_break = 0;
  for (int range : {1, 2, 4, 8}) {
    Rig rig;  // the no-break variant never stalls, so one rig serves all ops
    sim::LatencyRecorder plain, brk;
    for (int op = 0; op < kOps; ++op) {
      const std::uint64_t key = 100 + rng.NextBelow(range);
      const auto before_p = rig.sdev.counters().TotalExecuted();
      const sim::Nanos lp = rig.Traverse(key, false);
      wrs_nobreak += rig.sdev.counters().TotalExecuted() - before_p;
      ++runs_nobreak;
      if (lp >= 0) plain.Add(lp);
    }
    for (int op = 0; op < kOps / 4; ++op) {
      // A hit stalls the break chain's gates on the shared response queue;
      // re-arming on a fresh connection per request (as the paper's
      // CPU-driven unrolled mode does) keeps requests independent.
      Rig brig;
      const std::uint64_t key = 100 + rng.NextBelow(range);
      const auto before_b = brig.sdev.counters().TotalExecuted();
      const sim::Nanos lb = brig.Traverse(key, true);
      wrs_break += brig.sdev.counters().TotalExecuted() - before_b;
      ++runs_break;
      if (lb >= 0) brk.Add(lb);
    }
    const double os = OneSidedUs(range, 1000 + range);
    std::printf("  %7d %8.2fus %12.2fus %10.2fus %10.2fus\n", range,
                plain.MeanUs(), brk.MeanUs(), os, TwoSidedUs());
    if (range == 8) {
      redn8 = plain.MeanUs();
      os8 = os;
    }
  }
  bench::Section("paper headline comparisons");
  bench::Compare("one-sided vs RedN @range 8 (x)", os8 / redn8, 2.0, "x");
  bench::Compare("avg WRs/op, RedN (no break)",
                 static_cast<double>(wrs_nobreak) / runs_nobreak, 50.0, "WRs");
  bench::Compare("avg WRs/op, RedN (+break)",
                 static_cast<double>(wrs_break) / runs_break, 30.0, "WRs");
  return 0;
}
