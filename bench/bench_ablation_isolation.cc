// Ablation (§3.5 "Isolation"): WQ rate limiters contain runaway offloads.
// A misbehaving client runs a nonterminating recycled loop on the server
// NIC; we measure how much a well-behaved client's offloaded gets suffer,
// with and without a rate limit on the runaway loop's queues.
#include <cstdio>

#include "offloads/hash_harness.h"
#include "offloads/recycled_loop.h"
#include "report.h"
#include "sim/simulator.h"
#include "sim/stats.h"

using namespace redn;

namespace {

double GetLatencyUs(bool runaway, double runaway_rate_cap) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  std::unique_ptr<offloads::RecycledAddLoop> loop;
  if (runaway) {
    loop = std::make_unique<offloads::RecycledAddLoop>(sdev, /*body_wrs=*/3);
    if (runaway_rate_cap > 0) {
      // ibv_modify_qp_rate_limit on the loop's queues.
      loop->body()->rate_gap =
          static_cast<sim::Nanos>(1e9 / runaway_rate_cap);
      loop->ring()->rate_gap = loop->body()->rate_gap;
    }
    loop->Start();
  }

  const int kOps = 200;
  offloads::HashGetHarness h(cdev, sdev,
                             {.buckets = 1, .max_requests = kOps + 8});
  h.PutPattern(42, 64);
  h.Arm(kOps + 4);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = h.Get(42, sim::Millis(2));
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

}  // namespace

int main() {
  bench::Title("Ablation: WQ rate limiting of a runaway recycled loop",
               "§3.5 Isolation");
  const double quiet = GetLatencyUs(false, 0);
  const double contended = GetLatencyUs(true, 0);
  const double limited = GetLatencyUs(true, 20'000);  // 20 K iter/s cap
  std::printf("  well-behaved get latency, no runaway loop:     %8.2f us\n",
              quiet);
  std::printf("  ... with an unthrottled runaway loop:          %8.2f us\n",
              contended);
  std::printf("  ... with the loop rate-limited to 20 K/s:      %8.2f us\n",
              limited);
  bench::Compare("slowdown unthrottled (x)", contended / quiet, 1.0, "x");
  bench::Compare("slowdown rate-limited (x)", limited / quiet, 1.0, "x");
  bench::Note("the runaway loop competes for the port's WQE-fetch unit; the "
              "rate limiter restores isolation, which is how the paper "
              "proposes servers police non-terminating offloads");
  return 0;
}
