// Table 1: verb-processing throughput of ConnectX generations, measured
// ib_write_bw style (64 B WRITE flood across many QPs on one port).
#include <cstdio>
#include <memory>
#include <vector>

#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

double WriteRateMops(rnic::NicConfig cfg) {
  sim::Simulator sim;
  const rnic::Calibration cal = cfg.Calibrated();
  rnic::RnicDevice client(sim, cfg, cal, "client");
  rnic::RnicDevice server(sim, cfg, cal, "server");

  auto buf = std::make_unique<std::byte[]>(1 << 20);
  auto cmr = client.pd().Register(buf.get(), 1 << 20, rnic::kAccessAll);
  auto sbuf = std::make_unique<std::byte[]>(1 << 20);
  auto smr = server.pd().Register(sbuf.get(), 1 << 20, rnic::kAccessAll);

  const int kQps = 4 * cfg.pus_per_port;
  const int kOpsPerQp = 4000;
  std::vector<rnic::QueuePair*> qps;
  for (int q = 0; q < kQps; ++q) {
    rnic::QpConfig c;
    c.sq_depth = kOpsPerQp + 8;
    c.send_cq = client.CreateCq();
    c.recv_cq = client.CreateCq();
    rnic::QueuePair* cqp = client.CreateQp(c);
    rnic::QpConfig s;
    s.send_cq = server.CreateCq();
    s.recv_cq = server.CreateCq();
    rnic::QueuePair* sqp = server.CreateQp(s);
    rnic::Connect(cqp, sqp, cal.net_one_way);
    qps.push_back(cqp);
  }
  for (auto* qp : qps) {
    for (int i = 0; i < kOpsPerQp; ++i) {
      verbs::PostSend(qp, verbs::MakeWrite(cmr.addr, 64, cmr.lkey, smr.addr,
                                           smr.rkey, /*signaled=*/i + 1 ==
                                                         kOpsPerQp));
    }
    verbs::RingDoorbell(qp);
  }
  const sim::Nanos t0 = sim.now();
  sim.Run();
  const double secs = sim::ToSeconds(sim.now() - t0);
  return static_cast<double>(kQps) * kOpsPerQp / secs / 1e6;
}

}  // namespace

int main() {
  bench::Title("Verb throughput across ConnectX generations", "Table 1");
  struct Row {
    rnic::NicConfig cfg;
    int pus;
    double paper_mops;
  } rows[] = {
      {rnic::NicConfig::ConnectX3(), 2, 15.0},
      {rnic::NicConfig::ConnectX5(), 8, 63.0},
      {rnic::NicConfig::ConnectX6(), 16, 112.0},
  };
  std::printf("  %-12s %4s %16s %16s\n", "RNIC", "PUs", "measured", "paper");
  for (const auto& r : rows) {
    const double mops = WriteRateMops(r.cfg);
    std::printf("  %-12s %4d %11.1f M/s %11.1f M/s\n", r.cfg.name.c_str(),
                r.pus, mops, r.paper_mops);
  }
  bench::Note("throughput doubles with each generation's PU count");
  return 0;
}
