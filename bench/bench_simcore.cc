// Wall-clock microbenchmarks of the simulator itself. These guard the
// tool's usability: the macro experiments replay millions of events, so
// event dispatch and verb execution must stay cheap.
//
// Each benchmark prints a human-readable line plus a `JSON {...}` record
// (see bench/report.h) that scripts/ci.sh parses to enforce a minimum
// events/sec threshold. Scenarios:
//  - dispatch_chain: steady-state self-rescheduling actors, all deltas
//    within the calendar ring (the NIC-model hot path).
//  - dispatch_burst: a pre-posted batch spread over a wide window, so
//    events flow through the sorted overflow and migrate into the ring.
//  - remote_write: the full RNIC data path (doorbell, PU, PCIe/link,
//    payload shuttle, CQE), reported as wall-clock ns per verb.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "report.h"
#include "rnic/device.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SlabStats {
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;
  double HitRate() const {
    const std::uint64_t total = hits + fallbacks;
    return total == 0 ? 1.0 : static_cast<double>(hits) / total;
  }
};

SlabStats ReadSlabStats(const sim::Simulator& s) {
  SlabStats st;
  st.hits = s.slab_hits();            // SLAB-STATS
  st.fallbacks = s.heap_fallbacks();  // SLAB-STATS
  return st;
}

// K self-rescheduling actors, each hopping 50..900 ns forward until the
// target event count is reached. Mirrors the steady-state shape of the NIC
// model: many near-future events with small captures.
double RunDispatchChain(std::uint64_t target_events, SlabStats* slab) {
  sim::Simulator s;
  constexpr int kChains = 64;
  std::uint64_t remaining = target_events;
  sim::Rng rng(42);

  struct Chain {
    sim::Simulator* s;
    std::uint64_t* remaining;
    sim::Nanos delta;
    void operator()() {
      if (*remaining == 0) return;
      --*remaining;
      s->After(delta, *this);
    }
  };

  for (int c = 0; c < kChains; ++c) {
    s.After(static_cast<sim::Nanos>(rng.NextInRange(50, 900)),
            Chain{&s, &remaining, static_cast<sim::Nanos>(
                                      rng.NextInRange(50, 900))});
  }
  const auto t0 = std::chrono::steady_clock::now();
  s.Run();
  const double secs = SecondsSince(t0);
  *slab = ReadSlabStats(s);
  return static_cast<double>(s.events_processed()) / secs;
}

// Pre-posts `n` events spread over a 10 ms window (mostly far beyond the
// calendar ring), then drains. Exercises overflow insertion + migration.
double RunDispatchBurst(std::uint64_t n, int rounds, SlabStats* slab) {
  sim::Simulator s;
  sim::Rng rng(7);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    const sim::Nanos base = s.now();
    for (std::uint64_t i = 0; i < n; ++i) {
      s.At(base + static_cast<sim::Nanos>(rng.NextBelow(10'000'000)),
           [&sink] { ++sink; });
    }
    s.Run();
  }
  const double secs = SecondsSince(t0);
  *slab = ReadSlabStats(s);
  if (sink != n * static_cast<std::uint64_t>(rounds)) return -1.0;
  return static_cast<double>(s.events_processed()) / secs;
}

// Full data path: batches of RDMA WRITEs between two devices over a wire.
// Returns wall-clock nanoseconds per verb and the simulator's events/sec
// via `events_per_sec`; `wqe_cache_hit_rate` reports the requester's
// decoded-WQE translation cache (identical re-posts verify-hit, so steady
// state approaches 1.0 — only the first lap of ring slots decodes).
double RunRemoteWrite(std::uint64_t verbs_target, double* events_per_sec,
                      double* wqe_cache_hit_rate, SlabStats* slab) {
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "c");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "s");
  rnic::QpConfig c;
  c.sq_depth = 2048;
  c.send_cq = client.CreateCq();
  c.recv_cq = client.CreateCq();
  auto* cqp = client.CreateQp(c);
  rnic::QpConfig sc;
  sc.send_cq = server.CreateCq();
  sc.recv_cq = server.CreateCq();
  auto* sqp = server.CreateQp(sc);
  rnic::Connect(cqp, sqp, 125);
  auto buf = std::make_unique<std::byte[]>(4096);
  auto cmr = client.pd().Register(buf.get(), 4096, rnic::kAccessAll);
  auto sbuf = std::make_unique<std::byte[]>(4096);
  auto smr = server.pd().Register(sbuf.get(), 4096, rnic::kAccessAll);

  constexpr std::uint64_t kBatch = 1024;
  std::uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < verbs_target) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      verbs::PostSend(cqp, verbs::MakeWrite(cmr.addr, 64, cmr.lkey, smr.addr,
                                            smr.rkey,
                                            /*signaled=*/i + 1 == kBatch));
    }
    verbs::RingDoorbell(cqp);
    sim.Run();
    done += kBatch;
  }
  const double secs = SecondsSince(t0);
  *events_per_sec = static_cast<double>(sim.events_processed()) / secs;
  *wqe_cache_hit_rate = client.counters().WqeCacheHitRate();
  *slab = ReadSlabStats(sim);
  return secs * 1e9 / static_cast<double>(done);
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the workload (CI smoke); default sizes give stable
  // numbers on an idle machine.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t chain_events = quick ? 500'000 : 4'000'000;
  const std::uint64_t burst_n = quick ? 100'000 : 400'000;
  const int burst_rounds = quick ? 2 : 5;
  const std::uint64_t write_verbs = quick ? 64'000 : 256'000;

  bench::Title("Simulator core microbenchmarks", "engine perf guardrail");

  SlabStats slab;
  bench::Section("event dispatch (steady-state chains)");
  const double chain_eps = RunDispatchChain(chain_events, &slab);
  std::printf("  %-34s %12.0f events/s   slab-hit %5.2f%%\n", "dispatch_chain",
              chain_eps, 100.0 * slab.HitRate());
  bench::JsonWriter("dispatch_chain")
      .Field("events_per_sec", chain_eps)
      .Field("slab_hits", slab.hits)
      .Field("heap_fallbacks", slab.fallbacks)
      .Field("slab_hit_rate", slab.HitRate())
      .Emit();

  bench::Section("event dispatch (wide-window burst)");
  const double burst_eps = RunDispatchBurst(burst_n, burst_rounds, &slab);
  std::printf("  %-34s %12.0f events/s   slab-hit %5.2f%%\n", "dispatch_burst",
              burst_eps, 100.0 * slab.HitRate());
  bench::JsonWriter("dispatch_burst")
      .Field("events_per_sec", burst_eps)
      .Field("slab_hits", slab.hits)
      .Field("heap_fallbacks", slab.fallbacks)
      .Field("slab_hit_rate", slab.HitRate())
      .Emit();

  bench::Section("RNIC data path (remote WRITE)");
  double write_eps = 0.0;
  double wqe_hit_rate = 0.0;
  const double ns_per_verb =
      RunRemoteWrite(write_verbs, &write_eps, &wqe_hit_rate, &slab);
  std::printf("  %-34s %12.1f ns/verb    %12.0f events/s   slab-hit %5.2f%%"
              "   wqe-cache %5.2f%%\n",
              "remote_write", ns_per_verb, write_eps, 100.0 * slab.HitRate(),
              100.0 * wqe_hit_rate);
  bench::JsonWriter("remote_write")
      .Field("ns_per_verb", ns_per_verb)
      .Field("events_per_sec", write_eps)
      .Field("slab_hits", slab.hits)
      .Field("heap_fallbacks", slab.fallbacks)
      .Field("slab_hit_rate", slab.HitRate())
      .Field("wqe_cache_hit_rate", wqe_hit_rate)
      .Emit();

  return burst_eps < 0 ? 1 : 0;
}
