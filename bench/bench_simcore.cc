// Wall-clock microbenchmarks of the simulator itself (google-benchmark).
// These guard the tool's usability: the macro experiments replay millions
// of events, so event dispatch and verb execution must stay cheap.
#include <benchmark/benchmark.h>

#include <memory>

#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) s.At(i, [] {});
    s.Run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_RemoteWrite(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), {}, "c");
    rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), {}, "s");
    rnic::QpConfig c;
    c.sq_depth = 2048;
    c.send_cq = client.CreateCq();
    c.recv_cq = client.CreateCq();
    auto* cqp = client.CreateQp(c);
    rnic::QpConfig s;
    s.send_cq = server.CreateCq();
    s.recv_cq = server.CreateCq();
    auto* sqp = server.CreateQp(s);
    rnic::Connect(cqp, sqp, 125);
    auto buf = std::make_unique<std::byte[]>(4096);
    auto cmr = client.pd().Register(buf.get(), 4096, rnic::kAccessAll);
    auto sbuf = std::make_unique<std::byte[]>(4096);
    auto smr = server.pd().Register(sbuf.get(), 4096, rnic::kAccessAll);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      verbs::PostSend(cqp, verbs::MakeWrite(cmr.addr, 64, cmr.lkey, smr.addr,
                                            smr.rkey, i + 1 == n));
    }
    verbs::RingDoorbell(cqp);
    sim.Run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RemoteWrite)->Arg(1000);

void BM_WqeLoadStore(benchmark::State& state) {
  alignas(8) std::byte slot[rnic::kWqeSize] = {};
  rnic::WqeView view(slot);
  rnic::WqeImage img;
  img.ctrl = rnic::PackCtrl(rnic::Opcode::kWrite, 42);
  for (auto _ : state) {
    view.Store(img);
    benchmark::DoNotOptimize(view.Load());
  }
}
BENCHMARK(BM_WqeLoadStore);

}  // namespace

BENCHMARK_MAIN();
