// Sharded KV failover bench: offloaded chain-replication detour vs host
// re-issue, same seed, same FaultPlan.
//
// Topology: M shard NICs + N tenant NICs on one switch fabric, keys placed
// by consistent hashing onto a primary and its chain successor, tenants
// drawing Zipfian keys in depth-1 closed loops over the packetized
// reliability transport. Mid-run a scripted FaultPlan kills one shard.
//
// The A/B isolates the failover mechanism with everything else identical:
//   offload  — each (tenant, shard) pre-installs a client-NIC WAIT/ENABLE
//              chain (offloads::ClientFailoverChain). The failure CQE from
//              the dead primary releases a parked, pre-built get against
//              the backup with zero host instructions in the blip.
//   host     — no chain; a conservative application RPC timer (16x base
//              RTO) notices the stuck get and the CPU re-issues it.
// Both must answer every get; the difference is the tail. The blip metric
// is the longest gap between consecutive completions any tenant saw — the
// per-tenant outage_seconds analogue.
//
// All reported numbers are pure simulated time. The bench re-runs the
// offload configuration and fails if any simulated field differs (tenant
// key draws, transport arbitration, and the fault script all come from
// seeded state in event order, so a config must replay bit-identically).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "report.h"
#include "workload/kv_service.h"

using namespace redn;

int main(int argc, char** argv) {
  int shards = 4;
  int tenants = 4;
  int gets = 150;
  int keys = 100'000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    auto val = [&]() -> double { return i + 1 < argc ? std::atof(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--quick") == 0) {
      gets = 60;
      keys = 20'000;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--gets") == 0) {
      gets = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      keys = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(val());
    }
  }

  bench::Title("Sharded KV offloaded chain-replication failover",
               "fig16's hostless resiliency applied to the client NIC");
  std::printf("  %d shards, %d tenants, %d gets/tenant, %d-key space, "
              "zipf 0.99, seed %llu\n", shards, tenants, gets, keys,
              static_cast<unsigned long long>(seed));
  std::printf("  FaultPlan: crash shard 1 at t=60us (dead-peer NAKs, no "
              "heal)\n");

  auto run = [&](workload::FailoverPolicy policy) {
    workload::KvServiceConfig cfg;
    cfg.shards = shards;
    cfg.tenants = tenants;
    cfg.gets_per_tenant = gets;
    cfg.keys = keys;
    cfg.seed = seed;
    cfg.policy = policy;
    workload::FaultEntry crash;
    crash.server = 1;
    crash.kind = workload::FaultKind::kCrash;
    crash.down_at = 60'000;
    cfg.faults.entries.push_back(crash);
    return workload::RunKvService(cfg);
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto off = run(workload::FailoverPolicy::kOffloadChain);
  const auto host = run(workload::FailoverPolicy::kHostReissue);
  const auto again = run(workload::FailoverPolicy::kOffloadChain);
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  bench::Section("kill-a-shard A/B (same seed, same FaultPlan)");
  std::printf("  %8s %8s %6s %9s %9s %9s %9s %11s %9s\n", "policy", "gets",
              "unans", "p50 us", "p99 us", "p999 us", "blip us", "detours",
              "reissues");
  auto row = [&](const char* name, const workload::KvServiceResult& r) {
    std::printf("  %8s %8llu %6llu %9.2f %9.2f %9.2f %9.1f %11llu %9llu\n",
                name, static_cast<unsigned long long>(r.gets),
                static_cast<unsigned long long>(r.unanswered), r.p50_us,
                r.p99_us, r.p999_us, r.max_blip_us,
                static_cast<unsigned long long>(r.detour_responses),
                static_cast<unsigned long long>(r.host_reissues));
  };
  row("offload", off);
  row("host", host);

  bench::Section("per-tenant tails (offload policy)");
  std::printf("  %7s %8s %9s %9s %9s %9s %9s\n", "tenant", "gets", "p50 us",
              "p99 us", "p999 us", "blip us", "detours");
  for (std::size_t t = 0; t < off.tenants.size(); ++t) {
    const auto& ts = off.tenants[t];
    std::printf("  %7zu %8llu %9.2f %9.2f %9.2f %9.1f %9llu\n", t,
                static_cast<unsigned long long>(ts.gets), ts.p50_us,
                ts.p99_us, ts.p999_us, ts.max_blip_us,
                static_cast<unsigned long long>(ts.detour_responses));
  }

  const double blip_ratio =
      off.max_blip_us > 0 ? host.max_blip_us / off.max_blip_us : 0;
  bench::Section("failover delta");
  std::printf("  offload blip %.1f us vs host stall %.1f us (%.1fx): the\n"
              "  detour fires on the failure CQE; the host waits out its\n"
              "  multi-RTO timer first\n",
              off.max_blip_us, host.max_blip_us, blip_ratio);

  const bool stable =
      again.gets == off.gets && again.duration_us == off.duration_us &&
      again.avg_us == off.avg_us && again.p50_us == off.p50_us &&
      again.p99_us == off.p99_us && again.p999_us == off.p999_us &&
      again.max_blip_us == off.max_blip_us &&
      again.detour_responses == off.detour_responses &&
      again.data_packets == off.data_packets &&
      again.retransmits == off.retransmits && again.events == off.events;

  const double events_per_sec =
      static_cast<double>(off.events + host.events + again.events) / wall_secs;
  bench::JsonWriter("scale_failover")
      .Field("shards", static_cast<std::uint64_t>(shards))
      .Field("tenants", static_cast<std::uint64_t>(tenants))
      .Field("gets", off.gets)
      .Field("unanswered", off.unanswered)
      .Field("host_unanswered", host.unanswered)
      .Field("keys_visible", off.keys_visible)
      .Field("p50_us", off.p50_us)
      .Field("p99_us", off.p99_us)
      .Field("p999_us", off.p999_us)
      .Field("host_p999_us", host.p999_us)
      .Field("blip_us", off.max_blip_us)
      .Field("host_blip_us", host.max_blip_us)
      .Field("blip_ratio", blip_ratio)
      .Field("detour_responses", off.detour_responses)
      .Field("reroutes", off.reroutes)
      .Field("host_reissues", host.host_reissues)
      .Field("qp_errors", off.qp_errors)
      .Field("deterministic", static_cast<std::uint64_t>(stable ? 1 : 0))
      .Field("events_per_sec", events_per_sec)
      .Emit();

  // Self-checks: both policies answer every get, the offloaded detour
  // actually fired, and its blip beats the host stall outright.
  bool ok = true;
  const std::uint64_t expect =
      static_cast<std::uint64_t>(gets) * static_cast<std::uint64_t>(tenants);
  if (off.gets != expect || off.unanswered != 0) {
    std::fprintf(stderr, "FAIL: offload policy left gets unserved "
                 "(%llu/%llu)\n",
                 static_cast<unsigned long long>(off.gets),
                 static_cast<unsigned long long>(expect));
    ok = false;
  }
  if (host.gets != expect || host.unanswered != 0) {
    std::fprintf(stderr, "FAIL: host policy left gets unserved (%llu/%llu)\n",
                 static_cast<unsigned long long>(host.gets),
                 static_cast<unsigned long long>(expect));
    ok = false;
  }
  if (off.detour_responses == 0) {
    std::fprintf(stderr, "FAIL: the failover chain never fired\n");
    ok = false;
  }
  if (off.max_blip_us >= host.max_blip_us || off.p999_us >= host.p999_us) {
    std::fprintf(stderr, "FAIL: offloaded failover did not beat the host "
                 "baseline (blip %.1f vs %.1f us, p999 %.1f vs %.1f us)\n",
                 off.max_blip_us, host.max_blip_us, off.p999_us,
                 host.p999_us);
    ok = false;
  }
  if (!stable) {
    std::fprintf(stderr, "FAIL: same-seed rerun diverged\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
