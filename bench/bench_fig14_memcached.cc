// Fig 14: Memcached get latency with different IO sizes — RedN offload vs
// one-sided RDMA vs two-sided over the VMA user-space sockets stack.
#include <cstdio>

#include "baseline/one_sided.h"
#include "kv/memcached.h"
#include "offloads/hash_harness.h"
#include "report.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

constexpr std::uint32_t kSizes[] = {64, 1024, 4096, 16384, 65536};
constexpr int kOps = 250;

double RednUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  // 2-bucket probing: the Memcached integration serves arbitrary keys.
  offloads::HashGetHarness h(cdev, sdev,
                             {.buckets = 2, .max_requests = kOps + 8});
  h.PutPattern(42, len);
  h.Arm(kOps + 4);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = h.Get(42, sim::Millis(2));
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double OneSidedUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::MemcachedServer mc(sdev, {});
  mc.SetPattern(42, len);
  baseline::OneSidedKvClient client(cdev, sdev, mc.table(), mc.heap());
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double VmaUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::MemcachedServer::Config cfg;
  cfg.rpc_mode = baseline::TwoSidedKvServer::Mode::kVma;
  kv::MemcachedServer mc(sdev, cfg);
  mc.SetPattern(42, len);
  baseline::TwoSidedKvClient client(cdev, mc.rpc());
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.ok) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

}  // namespace

int main() {
  bench::Title("Memcached get latency vs IO size", "Fig 14");
  std::printf("  %8s %10s %12s %16s\n", "size", "RedN", "One-sided",
              "Two-sided (VMA)");
  double redn64 = 0, os64 = 0, vma64 = 0;
  for (std::uint32_t len : kSizes) {
    const double redn = RednUs(len);
    const double os = OneSidedUs(len);
    const double vma = VmaUs(len);
    std::printf("  %7uB %8.2fus %10.2fus %14.2fus\n", len, redn, os, vma);
    if (len == 64) {
      redn64 = redn;
      os64 = os;
      vma64 = vma;
    }
  }
  bench::Section("paper headline comparisons (64 B)");
  bench::Compare("one-sided vs RedN (x)", os64 / redn64, 1.7, "x");
  bench::Compare("two-sided VMA vs RedN (x)", vma64 / redn64, 2.6, "x");
  bench::Note("VMA degrades further at large values: the sockets API forces "
              "per-byte memcpy on both sides (paper §5.4)");
  return 0;
}
