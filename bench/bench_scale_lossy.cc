// Lossy packetized-transport scale bench: N clients x RedN NIC-served gets
// through one congested server port, with per-link packet loss and
// loss recovery in both transport modes.
//
// Same topology as bench_scale_netfabric, but every client<->server QP
// rides sim::Transport: trigger SENDs and the offloaded WRITE_IMM responses
// segment into MTU packets, links eat packets with the configured
// probability, and the connection recovers via NAK rewinds and RTOs. The
// sweep raises the loss rate and watches goodput collapse and tail latency
// inflate — the wire-level failure behaviour the lossless fabric cannot
// express. Each loss rate runs twice with the same seed: once under
// go-back-N and once under selective repeat, so the A/B isolates the
// recovery strategy (SACK-targeted resends vs window rewinds) with an
// identical loss pattern at the first divergence point.
//
// All per-loss results are pure simulated time: the bench re-runs the
// lossiest configuration and fails if any simulated field differs (the
// transport's loss draws come from one seeded Rng in event order, so a
// given config must replay bit-identically). Only the wall-clock events/s
// line (the CI floor) varies run to run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "report.h"
#include "workload/experiments.h"

using namespace redn;

int main(int argc, char** argv) {
  int gets = 150;
  int clients = 4;
  std::uint32_t value_len = 65536;
  int sim_shards = 1;
  for (int i = 1; i < argc; ++i) {
    auto val = [&]() -> double { return i + 1 < argc ? std::atof(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--quick") == 0) {
      gets = 60;
    } else if (std::strcmp(argv[i], "--gets") == 0) {
      gets = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--value") == 0) {
      value_len = static_cast<std::uint32_t>(val());
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      sim_shards = static_cast<int>(val());
    }
  }

  bench::Title("Lossy-transport N-client scale-out",
               "wire-level resilience in the spirit of fig16; GBN vs SR");
  std::printf("  %d clients, %u B values, %d gets/client, packetized "
              "transport (mtu 4096)\n", clients, value_len, gets);

  const double losses[] = {0.0, 0.002, 0.01, 0.05};
  auto run = [&](double loss, bool selective_repeat) {
    workload::FabricScaleConfig cfg;
    cfg.clients = clients;
    cfg.gets_per_client = gets;
    cfg.value_len = value_len;
    cfg.packetized = true;
    cfg.loss = loss;
    cfg.selective_repeat = selective_repeat;
    // IB-style timeout exponent: base RTO 4096ns << 6 = 262us, doubling on
    // consecutive fires. Large enough that queueing on the shared server
    // link (4 clients x 16-packet responses) never fires a spurious RTO at
    // zero loss; the doubling keeps the 5% rows from retransmit storms.
    cfg.timeout_exp = 6;
    return workload::RunFabricScale(cfg);
  };

  bench::Section("loss sweep, same seed per mode (simulated, deterministic)");
  std::printf("  %8s %4s %8s %12s %10s %12s %9s %9s %9s %9s\n", "loss",
              "mode", "gets", "kgets/s", "p99 us", "goodput Gb", "rexmits",
              "sack rtx", "rto", "spurious");
  std::vector<workload::FabricScaleResult> results;     // go-back-N rows
  std::vector<workload::FabricScaleResult> sr_results;  // selective repeat
  std::uint64_t total_events = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (double loss : losses) {
    for (const bool sr : {false, true}) {
      const auto r = run(loss, sr);
      (sr ? sr_results : results).push_back(r);
      total_events += r.events;
      std::printf(
          "  %7.2f%% %4s %8llu %12.1f %10.2f %12.2f %9llu %9llu %9llu %9llu\n",
          100.0 * loss, sr ? "sr" : "gbn",
          static_cast<unsigned long long>(r.gets), r.gets_per_sec / 1e3,
          r.p99_us, r.goodput_gbps,
          static_cast<unsigned long long>(r.retransmits),
          static_cast<unsigned long long>(r.sack_retransmits),
          static_cast<unsigned long long>(r.rto_fires),
          static_cast<unsigned long long>(r.spurious_retransmits));
    }
  }
  // Seed-stability: the lossiest config must reproduce every simulated
  // field exactly — the loss injector is part of the deterministic replay.
  // Both modes are checked: the SR engine adds draws-in-event-order state
  // (SACK ranges, reassembly) that must replay just as exactly.
  const auto again = run(losses[3], false);
  const auto sr_again = run(losses[3], true);
  total_events += again.events + sr_again.events;
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& lossiest = results.back();
  const auto& sr_lossiest = sr_results.back();
  const bool stable = again.gets == lossiest.gets &&
                      again.duration_us == lossiest.duration_us &&
                      again.avg_us == lossiest.avg_us &&
                      again.p99_us == lossiest.p99_us &&
                      again.retransmits == lossiest.retransmits &&
                      again.goodput_gbps == lossiest.goodput_gbps &&
                      sr_again.gets == sr_lossiest.gets &&
                      sr_again.duration_us == sr_lossiest.duration_us &&
                      sr_again.retransmits == sr_lossiest.retransmits &&
                      sr_again.sack_retransmits == sr_lossiest.sack_retransmits &&
                      sr_again.goodput_gbps == sr_lossiest.goodput_gbps;

  bench::Section("collapse and recovery-mode delta");
  std::printf("  gbn goodput %.2f -> %.2f Gb/s and p99 %.1f -> %.1f us from "
              "0%% to %.0f%% loss\n", results[0].goodput_gbps,
              lossiest.goodput_gbps, results[0].p99_us, lossiest.p99_us,
              100.0 * losses[3]);
  std::printf("  sr keeps %.2f Gb/s at %.0f%% loss (+%.1f%% over gbn, "
              "%llu targeted vs %llu rewound resends)\n",
              sr_lossiest.goodput_gbps, 100.0 * losses[3],
              100.0 * (sr_lossiest.goodput_gbps / lossiest.goodput_gbps - 1.0),
              static_cast<unsigned long long>(sr_lossiest.retransmits),
              static_cast<unsigned long long>(lossiest.retransmits));

  // --- sharded engine (--shards N): same lossy workload, one event domain
  // vs N, wall-clock A/B. Client NICs round-robin over shards, the server
  // stays on shard 0, and every cross-shard flow runs the split
  // sender/receiver-half protocol with DATA/ACKs in the mailboxes. All
  // sharded output (and its JSON fields) is gated on the flag so the
  // default run stays byte-identical.
  double wall_speedup = 0;
  bool sharded_ok = true;
  std::uint64_t sharded_stable = 0;
  if (sim_shards > 1) {
    bench::Section("sharded engine: wall-clock, 1 domain vs N");
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < static_cast<unsigned>(sim_shards)) {
      std::printf("  SKIP note: only %u cores for %d shards — speedup "
                  "numbers will understate the engine\n", cores, sim_shards);
    }
    auto sharded_cfg = [&](int n) {
      workload::FabricScaleConfig cfg;
      cfg.clients = std::max(clients, 2 * sim_shards);
      cfg.gets_per_client = gets;
      cfg.value_len = value_len;
      cfg.packetized = true;
      cfg.loss = 0.01;
      cfg.timeout_exp = 6;
      cfg.shards = n;
      return cfg;
    };
    auto timed = [&](int n, workload::FabricScaleResult* out) {
      // Best of two: the first rep pays thread spin-up and cold caches.
      double best = 1e30;
      for (int rep = 0; rep < 2; ++rep) {
        const auto w0 = std::chrono::steady_clock::now();
        *out = workload::RunFabricScale(sharded_cfg(n));
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - w0).count());
      }
      return best;
    };
    workload::FabricScaleResult one, many, many2;
    const double wall_one = timed(1, &one);
    const double wall_many = timed(sim_shards, &many);
    timed(sim_shards, &many2);  // same-config rerun for the stability check
    wall_speedup = wall_one / wall_many;
    sharded_stable =
        (many.gets == many2.gets && many.duration_us == many2.duration_us &&
         many.avg_us == many2.avg_us && many.p99_us == many2.p99_us &&
         many.retransmits == many2.retransmits &&
         many.goodput_gbps == many2.goodput_gbps &&
         many.mailbox_sends == many2.mailbox_sends &&
         many.sync_rounds == many2.sync_rounds)
            ? 1
            : 0;
    std::printf("  %d clients x %d gets at 1%% loss: %.3f s on 1 shard, "
                "%.3f s on %d shards — wall_speedup x%.2f\n",
                sharded_cfg(1).clients, gets, wall_one, wall_many, sim_shards,
                wall_speedup);
    std::printf("  sharded run: %llu gets, %llu mailbox sends, %llu sync "
                "rounds, %s\n",
                static_cast<unsigned long long>(many.gets),
                static_cast<unsigned long long>(many.mailbox_sends),
                static_cast<unsigned long long>(many.sync_rounds),
                sharded_stable ? "rerun bit-stable" : "RERUN DIVERGED");
    const std::uint64_t sharded_expect =
        static_cast<std::uint64_t>(sharded_cfg(1).clients) *
        static_cast<std::uint64_t>(gets);
    if (many.gets != sharded_expect || one.gets != sharded_expect) {
      std::fprintf(stderr, "FAIL: sharded run lost responses (%llu/%llu)\n",
                   static_cast<unsigned long long>(many.gets),
                   static_cast<unsigned long long>(sharded_expect));
      sharded_ok = false;
    }
    if (sharded_stable == 0) {
      std::fprintf(stderr, "FAIL: sharded same-seed rerun diverged\n");
      sharded_ok = false;
    }
    if (many.mailbox_sends == 0) {
      std::fprintf(stderr, "FAIL: no cross-shard traffic at %d shards\n",
                   sim_shards);
      sharded_ok = false;
    }
  }

  const double events_per_sec = static_cast<double>(total_events) / wall_secs;
  // The JSON goodput field is the 1% row: high enough loss to exercise
  // recovery constantly, low enough that a healthy go-back-N keeps most of
  // the line rate (the CI floor).
  bench::JsonWriter json("scale_lossy");
  json.Field("clients", static_cast<std::uint64_t>(clients))
      .Field("gets", lossiest.gets)
      .Field("goodput_gbps", results[2].goodput_gbps)
      .Field("goodput_gbps_lossless", results[0].goodput_gbps)
      .Field("goodput_gbps_lossiest", lossiest.goodput_gbps)
      .Field("sr_goodput_gbps", sr_results[2].goodput_gbps)
      .Field("sr_goodput_gbps_lossiest", sr_lossiest.goodput_gbps)
      .Field("p99_us_lossiest", lossiest.p99_us)
      .Field("retransmits", lossiest.retransmits)
      .Field("sr_retransmits", sr_lossiest.retransmits)
      .Field("sr_sack_retransmits", sr_lossiest.sack_retransmits)
      .Field("rto_fires", lossiest.rto_fires)
      .Field("spurious_retransmits", lossiest.spurious_retransmits)
      .Field("packets_lost", lossiest.packets_lost)
      .Field("deterministic", static_cast<std::uint64_t>(stable ? 1 : 0))
      .Field("events_per_sec", events_per_sec);
  if (sim_shards > 1) {
    json.Field("shards", static_cast<std::uint64_t>(sim_shards))
        .Field("wall_speedup", wall_speedup)
        .Field("sharded_deterministic", sharded_stable);
  }
  json.Emit();

  // Self-checks: reliable delivery (every get answered at every loss rate),
  // a bit-stable rerun, goodput monotonically non-increasing with loss, and
  // the loss machinery actually engaged.
  bool ok = true;
  const std::uint64_t expect =
      static_cast<std::uint64_t>(gets) * static_cast<std::uint64_t>(clients);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].gets != expect) {
      std::fprintf(stderr,
                   "FAIL: lost responses at loss %.3f (%llu != %llu) — "
                   "go-back-N failed to recover\n", losses[i],
                   static_cast<unsigned long long>(results[i].gets),
                   static_cast<unsigned long long>(expect));
      ok = false;
    }
  }
  if (!stable) {
    std::fprintf(stderr, "FAIL: rerun diverged (nondeterministic transport)\n");
    ok = false;
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].goodput_gbps > results[i - 1].goodput_gbps) {
      std::fprintf(stderr,
                   "FAIL: goodput rose with loss (%.3f Gb/s at %.3f vs "
                   "%.3f Gb/s at %.3f)\n", results[i].goodput_gbps, losses[i],
                   results[i - 1].goodput_gbps, losses[i - 1]);
      ok = false;
    }
  }
  if (results[0].retransmits != 0 || results[0].timeouts != 0) {
    std::fprintf(stderr, "FAIL: retransmissions without loss (%llu/%llu)\n",
                 static_cast<unsigned long long>(results[0].retransmits),
                 static_cast<unsigned long long>(results[0].timeouts));
    ok = false;
  }
  if (lossiest.retransmits == 0 || lossiest.packets_lost == 0) {
    std::fprintf(stderr, "FAIL: loss injector inert at %.0f%% loss\n",
                 100.0 * losses[3]);
    ok = false;
  }
  for (std::size_t i = 0; i < sr_results.size(); ++i) {
    if (sr_results[i].gets != expect) {
      std::fprintf(stderr,
                   "FAIL: lost responses at loss %.3f (%llu != %llu) — "
                   "selective repeat failed to recover\n", losses[i],
                   static_cast<unsigned long long>(sr_results[i].gets),
                   static_cast<unsigned long long>(expect));
      ok = false;
    }
  }
  if (sr_lossiest.sack_retransmits == 0) {
    std::fprintf(stderr,
                 "FAIL: SACK machinery inert at %.0f%% loss under sr\n",
                 100.0 * losses[3]);
    ok = false;
  }
  // The acceptance criterion: targeted resends must beat window rewinds
  // under the identical loss pattern at the highest loss rate.
  if (sr_lossiest.goodput_gbps <= lossiest.goodput_gbps) {
    std::fprintf(stderr,
                 "FAIL: sr goodput %.3f Gb/s <= gbn %.3f Gb/s at %.0f%% "
                 "loss\n", sr_lossiest.goodput_gbps, lossiest.goodput_gbps,
                 100.0 * losses[3]);
    ok = false;
  }
  if (!sharded_ok) ok = false;
  return ok ? 0 : 1;
}
