// Fig 10: average latency of offloaded hash-table gets vs value size,
// against Ideal (single READ), one-sided (FaRM-KV), and two-sided RPC
// (polling and event-based).
#include <cstdio>
#include <memory>

#include "baseline/one_sided.h"
#include "baseline/two_sided.h"
#include "offloads/hash_harness.h"
#include "report.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

constexpr std::uint32_t kSizes[] = {64, 1024, 4096, 16384, 65536};
constexpr int kOps = 300;

double RednUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  offloads::HashGetHarness h(cdev, sdev,
                             {.buckets = 1, .max_requests = kOps + 8});
  h.PutPattern(42, len);
  h.Arm(kOps + 4);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = h.Get(42, sim::Millis(2));
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double IdealUs(std::uint32_t len) {
  // A single network round-trip READ of the value.
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  rnic::QpConfig c;
  c.send_cq = cdev.CreateCq();
  c.recv_cq = cdev.CreateCq();
  rnic::QueuePair* cqp = cdev.CreateQp(c);
  rnic::QpConfig s;
  s.send_cq = sdev.CreateCq();
  s.recv_cq = sdev.CreateCq();
  rnic::QueuePair* sqp = sdev.CreateQp(s);
  rnic::Connect(cqp, sqp, rnic::Calibration{}.net_one_way);
  auto cbuf = std::make_unique<std::byte[]>(len);
  auto cmr = cdev.pd().Register(cbuf.get(), len, rnic::kAccessAll);
  auto sbuf = std::make_unique<std::byte[]>(len);
  auto smr = sdev.pd().Register(sbuf.get(), len, rnic::kAccessAll);
  sim::LatencyRecorder rec;
  verbs::Cqe cqe;
  for (int i = 0; i < kOps; ++i) {
    const sim::Nanos t0 = sim.now();
    verbs::PostSendNow(cqp, verbs::MakeRead(cmr.addr, len, cmr.lkey, smr.addr,
                                            smr.rkey));
    verbs::AwaitCqe(sim, cdev, cqp->send_cq, &cqe);
    rec.Add(sim.now() - t0);
  }
  return rec.MeanUs();
}

double OneSidedUs(std::uint32_t len) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 14});
  kv::ValueHeap heap(sdev, 256 << 20);
  std::vector<std::byte> v(len, std::byte{0x42});
  table.Insert(42, heap.Store(v.data(), len), len);
  baseline::OneSidedKvClient client(cdev, sdev, table, heap);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.found) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

double TwoSidedUs(std::uint32_t len, baseline::TwoSidedKvServer::Mode mode) {
  sim::Simulator sim;
  rnic::RnicDevice cdev(sim, rnic::NicConfig::ConnectX5(), {}, "client");
  rnic::RnicDevice sdev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  kv::RdmaHashTable table(sdev, {.buckets = 1 << 14});
  kv::ValueHeap heap(sdev, 256 << 20);
  std::vector<std::byte> v(len, std::byte{0x42});
  table.Insert(42, heap.Store(v.data(), len), len);
  baseline::TwoSidedKvServer server(sdev, table, heap, mode);
  baseline::TwoSidedKvClient client(cdev, server);
  sim::LatencyRecorder rec;
  for (int i = 0; i < kOps; ++i) {
    auto r = client.Get(42);
    if (r.ok) rec.Add(r.latency);
  }
  return rec.MeanUs();
}

}  // namespace

int main() {
  bench::Title("Hash-lookup get latency vs value size", "Fig 10");
  std::printf("  %8s %10s %10s %11s %14s %13s\n", "size", "Ideal", "RedN",
              "One-sided", "2-sided poll", "2-sided evt");
  double redn64 = 0, redn64k = 0, ideal64k = 0, os64 = 0, poll64k = 0,
         evt64 = 0;
  for (std::uint32_t len : kSizes) {
    const double ideal = IdealUs(len);
    const double redn = RednUs(len);
    const double os = OneSidedUs(len);
    const double poll = TwoSidedUs(len, baseline::TwoSidedKvServer::Mode::kPolling);
    const double evt = TwoSidedUs(len, baseline::TwoSidedKvServer::Mode::kEvent);
    std::printf("  %7uB %8.2fus %8.2fus %9.2fus %12.2fus %11.2fus\n", len,
                ideal, redn, os, poll, evt);
    if (len == 64) {
      redn64 = redn;
      os64 = os;
      evt64 = evt;
    }
    if (len == 65536) {
      redn64k = redn;
      ideal64k = ideal;
      poll64k = poll;
    }
  }
  bench::Section("paper headline comparisons");
  bench::Compare("RedN 64KB get", redn64k, 16.22, "us");
  bench::Compare("RedN 64KB vs Ideal (x)", redn64k / ideal64k, 1.05, "x");
  bench::Compare("one-sided vs RedN @64B (x)", os64 / redn64, 2.0, "x");
  bench::Compare("2-sided poll vs RedN @64KB (x)", poll64k / redn64k, 2.0,
                 "x");
  bench::Compare("2-sided event vs RedN @64B (x)", evt64 / redn64, 3.8, "x");
  return 0;
}
