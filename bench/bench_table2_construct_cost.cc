// Table 2: WR budget of RedN's constructs (C copy / A atomic / E sync) and
// the 48-bit operand limit.
#include <cstdio>

#include "offloads/recycled_loop.h"
#include "redn/program.h"
#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

int main() {
  bench::Title("WR budget of RedN constructs", "Table 2");
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "server");

  // if / unrolled while iteration: EmitEqualIf around a 1-copy target.
  core::Program prog(dev);
  rnic::QueuePair* chain = prog.NewChainQueue();
  auto buf = std::make_unique<std::byte[]>(64);
  auto mr = dev.pd().Register(buf.get(), 64, rnic::kAccessAll);
  prog.ResetBudget();
  verbs::SendWr target =
      verbs::MakeWrite(mr.addr, 8, mr.lkey, mr.addr + 8, mr.rkey);
  target.opcode = rnic::Opcode::kNoop;
  core::WrRef t = prog.Post(chain, target);
  prog.EmitEqualIf(prog.control_cq(), 0, t, 42, rnic::Opcode::kWrite);
  const auto if_budget = prog.budget();

  // while with WQ recycling: one loop round of the self-sustaining ring,
  // with the 3-WR conditional body of a full while.
  offloads::RecycledAddLoop loop(dev, /*body_wrs=*/3);
  loop.Start();
  const auto rec_budget = loop.budget();

  std::printf("  %-28s %8s %8s %8s   paper\n", "construct", "C", "A", "E");
  std::printf("  %-28s %8d %8d %8d   1C + 1A + 3E\n", "if", if_budget.copy,
              if_budget.atomics, if_budget.sync);
  std::printf("  %-28s %8d %8d %8d   1C + 1A + 3E (per iteration)\n",
              "while (unrolled)", if_budget.copy, if_budget.atomics,
              if_budget.sync);
  std::printf("  %-28s %8d %8d %8d   3C + 2A + 4E (per iteration)\n",
              "while (WQ recycling)", rec_budget.copy, rec_budget.atomics,
              rec_budget.sync);
  bench::Note(
      "recycling diverges from the paper's accounting: our WQE layout needs "
      "one ADD per WAIT/ENABLE threshold (4A) where the paper packs counter "
      "updates into 2 copies + 1 ADD; total WR count per round is similar "
      "and the throughput consequence (Table 3) matches.");

  bench::Section("operand limit");
  std::printf("  ctrl word = [opcode:16][id:48] -> %d-bit operands\n", 48);
  std::printf("  paper: 48-bit operand limit; wider operands via chained CAS "
              "(tested in program_test)\n");
  return 0;
}
