// Table 7 / Appendix A: mov addressing modes emulated with RDMA chains —
// per-instruction latency and WR budget for each mode, plus the
// nontermination demonstration (WQ recycling).
#include <cstdio>

#include "offloads/recycled_loop.h"
#include "redn/mov.h"
#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"

using namespace redn;

namespace {

template <typename Emit>
double PerInstrUs(Emit emit, int n = 200) {
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  core::MovMachine m(dev, 8, /*cells=*/8192);
  const std::uint64_t cells = m.AllocCells(16);
  for (int i = 0; i < 16; ++i) m.SetCell(cells + i * 8, i);
  m.SetReg(1, cells);
  m.SetReg(2, 8);
  for (int i = 0; i < n; ++i) emit(m);
  const sim::Nanos t = m.Run();
  return sim::ToMicros(t) / n;
}

}  // namespace

int main() {
  bench::Title("x86 mov emulation over RDMA", "Table 7 / Appendix A");
  std::printf("  %-26s %14s   RDMA implementation\n", "addressing mode",
              "per-instr");
  std::printf("  %-26s %11.2f us   WRITE from constant pool\n",
              "immediate  mov R,C",
              PerInstrUs([](core::MovMachine& m) { m.MovImmediate(0, 7); }));
  std::printf("  %-26s %11.2f us   WRITE Rsrc->Rdst\n", "register   mov R,R",
              PerInstrUs([](core::MovMachine& m) { m.MovReg(0, 2); }));
  std::printf(
      "  %-26s %11.2f us   WRITE patches src of WRITE (doorbell order)\n",
      "indirect   mov R,[R]",
      PerInstrUs([](core::MovMachine& m) { m.MovIndirectLoad(0, 1); }));
  std::printf(
      "  %-26s %11.2f us   + ADD patches the offset into the address\n",
      "indexed    mov R,[R+R]",
      PerInstrUs([](core::MovMachine& m) { m.MovIndexedLoad(0, 1, 2); }));
  std::printf(
      "  %-26s %11.2f us   WRITE patches dst of WRITE (doorbell order)\n",
      "store      mov [R],R",
      PerInstrUs([](core::MovMachine& m) { m.MovIndirectStore(1, 2); }));

  bench::Section("nontermination (Appendix A.2)");
  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "server");
  offloads::RecycledAddLoop loop(dev);
  loop.Start();
  sim.RunUntil(sim::Millis(10));
  std::printf("  WQ-recycled unconditional loop: %llu iterations in 10 ms "
              "with zero CPU involvement\n",
              static_cast<unsigned long long>(loop.iterations()));
  bench::Note("together with conditionals this discharges requirements "
              "T1-T3: RDMA emulates Dolan's mov machine");
  return 0;
}
