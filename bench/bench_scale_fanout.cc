// Multi-tenant completion-path scale bench (wall-clock guardrail).
//
// N tenants share one simulated RNIC. Each tenant runs:
//  - a rate-limited background writer (non-managed loopback QP, the §3.5
//    isolation knob) streaming signaled 64B WRITEs into the tenant's heap,
//    so its send CQ ticks at a steady rate; and
//  - M managed chain queues, each an 8-slot self-recycling RedN ring that
//    WAITs on the tenant's background CQ, does one signaled WRITE of "work",
//    self-increments its WAIT/ENABLE thresholds (the §3.4 ADD-on-threshold
//    trick) and re-ENABLEs itself forever.
//
// Every background CQE therefore wakes all M chains of its tenant at the
// same instant — the fan-out stresses exactly the paths this repo's
// completion overhaul touched: one-event CQE delivery, the waiter heap,
// batched same-instant WAIT resumes, and last-hit MR caches (each tenant
// alternates between its code rings and its heap).
//
// Reported: wall-clock events/s (the CI floor), simulated verbs/s, event
// slab hit rate, and payload-pool reuse rate. Simulated results stay
// deterministic; only the wall-clock rates vary run to run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "report.h"
#include "rnic/device.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

struct Params {
  int tenants = 4;
  int chains_per_tenant = 4;
  double bg_rate = 10'000.0;    // background CQEs per second per tenant
  sim::Nanos duration = sim::Millis(1200);
  int bg_batch = 16;            // WRITEs posted per driver wake-up
  // --shards S: sharded-engine mode — one RNIC per tenant, tenants placed
  // round-robin on S event domains. All traffic is loopback, so there are
  // zero cross-shard edges: the run measures pure engine parallelism, and
  // the simulated results must be identical at every shard count.
  int shards = 0;               // 0 = legacy single-device path
};

// Background writer driver: posts a batch of signaled WRITEs and
// reschedules itself one batch-period later, until the measurement window
// closes. The QP's rate limiter spaces actual issue at bg_rate.
struct TenantBg {
  sim::Simulator* sim = nullptr;
  rnic::QueuePair* qp = nullptr;
  std::uint64_t heap_addr = 0;
  std::uint32_t heap_lkey = 0;
  std::uint32_t heap_rkey = 0;
  sim::Nanos period = 0;  // batch / bg_rate
  sim::Nanos end = 0;
  int batch = 0;

  void PostBatch() {
    for (int i = 0; i < batch; ++i) {
      verbs::PostSend(qp, verbs::MakeWrite(heap_addr, 64, heap_lkey,
                                           heap_addr + 512, heap_rkey,
                                           /*signaled=*/true));
    }
    verbs::RingDoorbell(qp);
    if (sim->now() + period < end) {
      sim->After(period, [this] { PostBatch(); });
    }
  }
};

// Chain ring layout (absolute slot indices in an 8-deep managed queue):
//   0: WAIT(bg_cq, t)         t += 1 per round
//   1: WRITE heap->heap 64B   signaled (the round's "work")
//   2: ADD slot0.threshold += 1
//   3: ADD slot6.threshold += 4    (four signaled data verbs per round)
//   4: ADD slot7.limit     += 8    (ring size)
//   5: NOOP (unsignaled padding)
//   6: WAIT(own cq, w)        barrier: this round's data verbs completed
//   7: ENABLE(self, l)        wrap into the next round
//
// Initial thresholds are doorbell-order aware: a managed queue fetches each
// WQE at execution time, so round r's ADDs (slots 2-4) land in memory
// before slots 6-7 of the same round are fetched. Slot 6 therefore starts
// at 0 (fetched as 4r in round r — the round's 4 signaled data verbs) and
// slot 7 at kRing (fetched as 8r+8, enabling round r+1). Slot 0 is fetched
// before its own round's ADD, so it starts at 1 (fetched as r).
//
// Translation cache interaction: every lap re-fetches all 8 slots, and the
// ADDs rewrite exactly three of them (0, 6, 7). Those tracked writes
// refresh the cached decode in place (write-through), so in steady state
// all 8 fetches are verified cache hits — the reported wqe_cache_hit_rate
// approaches 1.0 and scripts/ci.sh enforces a 0.9 floor on it.
constexpr std::uint32_t kRing = 8;

void BuildChain(rnic::RnicDevice& dev, rnic::QueuePair* chain,
                rnic::CompletionQueue* bg_cq, std::uint64_t heap_addr,
                std::uint32_t heap_lkey, std::uint32_t heap_rkey) {
  using rnic::WqeField;
  const std::uint32_t code_rkey = chain->sq_mr.rkey;
  auto slot_field = [&](std::uint64_t idx, WqeField f) {
    return chain->sq.SlotAddr(idx, f);
  };

  verbs::PostSend(chain, verbs::MakeWait(bg_cq, 1));
  verbs::PostSend(chain, verbs::MakeWrite(heap_addr, 64, heap_lkey,
                                          heap_addr + 1024, heap_rkey,
                                          /*signaled=*/true));
  verbs::PostSend(chain, verbs::MakeFetchAdd(
                             slot_field(0, WqeField::kCompareAdd), code_rkey, 1));
  verbs::PostSend(chain, verbs::MakeFetchAdd(
                             slot_field(6, WqeField::kCompareAdd), code_rkey, 4));
  verbs::PostSend(chain, verbs::MakeFetchAdd(
                             slot_field(7, WqeField::kCompareAdd), code_rkey,
                             kRing));
  verbs::PostSend(chain, verbs::MakeNoop(/*signaled=*/false));
  verbs::PostSend(chain, verbs::MakeWait(chain->send_cq, 0));
  verbs::PostSend(chain, verbs::MakeEnable(chain, kRing));
  dev.HostEnable(chain, kRing);  // kick round 1
}

// One full sharded run: the same tenant workload, each tenant on its own
// device, devices round-robin across `shards` domains. Returns everything
// the caller needs to check flatness (simulated fields) and speedup (wall).
struct ShardRun {
  double wall_secs = 0;
  std::uint64_t rounds = 0;
  std::uint64_t verbs = 0;
  std::uint64_t events = 0;
  std::uint64_t sync_rounds = 0;
  std::uint64_t mailbox_sends = 0;
  std::vector<std::uint64_t> events_per_shard;
};

ShardRun RunShardedFanout(const Params& p, int shards) {
  sim::ShardedSimulator ssim(shards);

  struct Tenant {
    std::unique_ptr<rnic::RnicDevice> dev;
    std::unique_ptr<std::byte[]> heap;
    TenantBg bg;
    std::vector<rnic::QueuePair*> chains;
  };
  std::vector<Tenant> tenants(static_cast<std::size_t>(p.tenants));
  constexpr std::size_t kHeapBytes = 4096;

  for (int i = 0; i < p.tenants; ++i) {
    Tenant& t = tenants[static_cast<std::size_t>(i)];
    sim::EventDomain& dom = ssim.shard(i % shards);
    t.dev = std::make_unique<rnic::RnicDevice>(
        dom, rnic::NicConfig::ConnectX5(), rnic::Calibration{},
        "tenant" + std::to_string(i));
    t.heap = std::make_unique<std::byte[]>(kHeapBytes);
    std::memset(t.heap.get(), 0, kHeapBytes);
    const rnic::MemoryRegion heap_mr =
        t.dev->pd().Register(t.heap.get(), kHeapBytes, rnic::kAccessAll);

    rnic::QpConfig bgc;
    bgc.sq_depth = 256;
    bgc.send_cq = t.dev->CreateCq();
    bgc.recv_cq = t.dev->CreateCq();
    bgc.rate_ops_per_sec = p.bg_rate;
    rnic::QueuePair* bg_qp = t.dev->CreateQp(bgc);
    rnic::ConnectSelf(bg_qp);

    t.bg = TenantBg{&dom,
                    bg_qp,
                    heap_mr.addr,
                    heap_mr.lkey,
                    heap_mr.rkey,
                    static_cast<sim::Nanos>(1e9 * p.bg_batch / p.bg_rate),
                    p.duration,
                    p.bg_batch};

    for (int c = 0; c < p.chains_per_tenant; ++c) {
      rnic::QpConfig cc;
      cc.sq_depth = kRing;
      cc.managed = true;
      cc.send_cq = t.dev->CreateCq();
      cc.recv_cq = t.dev->CreateCq();
      rnic::QueuePair* chain = t.dev->CreateQp(cc);
      rnic::ConnectSelf(chain);
      BuildChain(*t.dev, chain, bg_qp->send_cq, heap_mr.addr, heap_mr.lkey,
                 heap_mr.rkey);
      t.chains.push_back(chain);
    }
  }
  for (Tenant& t : tenants) t.bg.PostBatch();

  const auto t0 = std::chrono::steady_clock::now();
  ssim.RunUntil(p.duration);

  ShardRun out;
  out.wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const Tenant& t : tenants) {
    out.verbs += t.dev->counters().TotalExecuted();
    for (const rnic::QueuePair* chain : t.chains) {
      out.rounds += chain->send_cq->hw_count() / 4;
    }
  }
  out.events = ssim.events_processed();
  out.sync_rounds = ssim.rounds();
  out.mailbox_sends = ssim.cross_shard_sends();
  for (int s = 0; s < shards; ++s) {
    out.events_per_shard.push_back(ssim.shard(s).events_processed());
  }
  return out;
}

// Sharded-mode driver: the same workload at 1 shard and at S shards, flat
// simulated results enforced, wall-clock speedup reported.
int MainSharded(const Params& p) {
  bench::Title("Multi-tenant fan-out scale bench (sharded engine)",
               "per-tenant RNICs on parallel event domains; docs/PARSIM.md");
  std::printf("  %d tenants x %d chain queues on %d shards, %.0f ms "
              "simulated\n",
              p.tenants, p.chains_per_tenant, p.shards,
              sim::ToMicros(p.duration) / 1e3);

  const ShardRun base = RunShardedFanout(p, 1);
  const ShardRun wide = RunShardedFanout(p, p.shards);
  const double speedup = wide.wall_secs > 0 ? base.wall_secs / wide.wall_secs
                                            : 0.0;

  bench::Section("results");
  std::printf("  %-30s %9.3f s at 1 shard, %.3f s at %d shards\n",
              "wall clock", base.wall_secs, wide.wall_secs, p.shards);
  std::printf("  %-30s %12.2fx\n", "wall_speedup_vs_1shard", speedup);
  std::printf("  %-30s %llu rounds, %llu verbs, %llu events\n", "volume",
              static_cast<unsigned long long>(wide.rounds),
              static_cast<unsigned long long>(wide.verbs),
              static_cast<unsigned long long>(wide.events));
  std::printf("  %-30s", "events per shard");
  for (const std::uint64_t e : wide.events_per_shard) {
    std::printf(" %llu", static_cast<unsigned long long>(e));
  }
  std::printf("\n  %-30s %llu sync rounds, %llu mailbox sends\n",
              "coordinator",
              static_cast<unsigned long long>(wide.sync_rounds),
              static_cast<unsigned long long>(wide.mailbox_sends));

  bench::JsonWriter("scale_fanout_sharded")
      .Field("shards", static_cast<std::uint64_t>(p.shards))
      .Field("wall_speedup_vs_1shard", speedup)
      .Field("rounds", wide.rounds)
      .Field("verbs", wide.verbs)
      .Field("events", wide.events)
      .Field("sync_rounds", wide.sync_rounds)
      .Field("mailbox_sends", wide.mailbox_sends)
      .Emit();

  // Self-checks: the simulated outcome must be flat across shard counts
  // (no cross-shard edges -> identical per-domain schedules), the chains
  // must have cycled, and loopback-only placement must send no mail.
  bool ok = true;
  if (base.rounds != wide.rounds || base.verbs != wide.verbs ||
      base.events != wide.events) {
    std::fprintf(stderr,
                 "FAIL: simulated results moved with shard count "
                 "(rounds %llu/%llu, verbs %llu/%llu, events %llu/%llu)\n",
                 static_cast<unsigned long long>(base.rounds),
                 static_cast<unsigned long long>(wide.rounds),
                 static_cast<unsigned long long>(base.verbs),
                 static_cast<unsigned long long>(wide.verbs),
                 static_cast<unsigned long long>(base.events),
                 static_cast<unsigned long long>(wide.events));
    ok = false;
  }
  const std::uint64_t min_rounds =
      static_cast<std::uint64_t>(p.tenants) * p.chains_per_tenant * 2;
  if (wide.rounds < min_rounds) {
    std::fprintf(stderr, "FAIL: chains stalled (%llu rounds < %llu)\n",
                 static_cast<unsigned long long>(wide.rounds),
                 static_cast<unsigned long long>(min_rounds));
    ok = false;
  }
  if (wide.mailbox_sends != 0) {
    std::fprintf(stderr, "FAIL: loopback workload sent cross-shard mail\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  for (int i = 1; i < argc; ++i) {
    auto val = [&]() -> double { return i + 1 < argc ? std::atof(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--quick") == 0) {
      p.duration = sim::Millis(300);
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      p.tenants = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--chains") == 0) {
      p.chains_per_tenant = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      p.bg_rate = val();
    } else if (std::strcmp(argv[i], "--ms") == 0) {
      p.duration = sim::Millis(val());
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      p.shards = static_cast<int>(val());
    }
  }
  if (p.shards >= 1) return MainSharded(p);

  bench::Title("Multi-tenant WAIT/ENABLE fan-out scale bench",
               "completion-path scaling; §3.4 recycling + §3.5 isolation");
  std::printf("  %d tenants x %d chain queues, background rate %.0f CQE/s, "
              "%.0f ms simulated\n",
              p.tenants, p.chains_per_tenant, p.bg_rate,
              sim::ToMicros(p.duration) / 1e3);

  sim::Simulator sim;
  rnic::RnicDevice dev(sim, rnic::NicConfig::ConnectX5(), {}, "srv");

  struct Tenant {
    std::unique_ptr<std::byte[]> heap;
    TenantBg bg;
    std::vector<rnic::QueuePair*> chains;
  };
  std::vector<Tenant> tenants(p.tenants);
  constexpr std::size_t kHeapBytes = 4096;

  for (Tenant& t : tenants) {
    t.heap = std::make_unique<std::byte[]>(kHeapBytes);
    std::memset(t.heap.get(), 0, kHeapBytes);
    const rnic::MemoryRegion heap_mr =
        dev.pd().Register(t.heap.get(), kHeapBytes, rnic::kAccessAll);

    rnic::QpConfig bgc;
    bgc.sq_depth = 256;
    bgc.send_cq = dev.CreateCq();
    bgc.recv_cq = dev.CreateCq();
    bgc.rate_ops_per_sec = p.bg_rate;
    rnic::QueuePair* bg_qp = dev.CreateQp(bgc);
    rnic::ConnectSelf(bg_qp);

    t.bg = TenantBg{&sim,
                    bg_qp,
                    heap_mr.addr,
                    heap_mr.lkey,
                    heap_mr.rkey,
                    static_cast<sim::Nanos>(1e9 * p.bg_batch / p.bg_rate),
                    p.duration,
                    p.bg_batch};

    for (int c = 0; c < p.chains_per_tenant; ++c) {
      rnic::QpConfig cc;
      cc.sq_depth = kRing;
      cc.managed = true;
      cc.send_cq = dev.CreateCq();
      cc.recv_cq = dev.CreateCq();
      rnic::QueuePair* chain = dev.CreateQp(cc);
      rnic::ConnectSelf(chain);
      BuildChain(dev, chain, bg_qp->send_cq, heap_mr.addr, heap_mr.lkey,
                 heap_mr.rkey);
      t.chains.push_back(chain);
    }
  }
  for (Tenant& t : tenants) t.bg.PostBatch();

  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(p.duration);
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double sim_secs = sim::ToSeconds(p.duration);
  const std::uint64_t verbs = dev.counters().TotalExecuted();
  std::uint64_t rounds = 0;
  for (const Tenant& t : tenants) {
    for (const rnic::QueuePair* chain : t.chains) {
      rounds += chain->send_cq->hw_count() / 4;
    }
  }
  const double events_per_sec =
      static_cast<double>(sim.events_processed()) / wall_secs;
  const double verbs_per_sec = static_cast<double>(verbs) / sim_secs;
  const std::uint64_t slab_total = sim.slab_hits() + sim.heap_fallbacks();
  const double slab_rate =
      slab_total == 0
          ? 1.0
          : static_cast<double>(sim.slab_hits()) / static_cast<double>(slab_total);
  const auto& pool = dev.payload_pool();
  const double reuse_rate =
      pool.acquires() == 0
          ? 1.0
          : static_cast<double>(pool.reuses()) /
                static_cast<double>(pool.acquires());

  bench::Section("results");
  std::printf("  %-30s %12.0f events/s wall\n", "event rate", events_per_sec);
  std::printf("  %-30s %12.0f verbs/s simulated\n", "verb rate", verbs_per_sec);
  std::printf("  %-30s %12llu chain rounds, %llu verbs, %llu events\n",
              "volume", static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(verbs),
              static_cast<unsigned long long>(sim.events_processed()));
  std::printf("  %-30s slab-hit %5.2f%%  payload-reuse %5.2f%%\n", "allocation",
              100.0 * slab_rate, 100.0 * reuse_rate);
  const double wqe_hit_rate = dev.counters().WqeCacheHitRate();
  std::printf("  %-30s hit %5.2f%%  (%llu hits, %llu misses, %llu writes "
              "refreshed)\n",
              "wqe translation cache", 100.0 * wqe_hit_rate,
              static_cast<unsigned long long>(dev.counters().wqe_cache_hits),
              static_cast<unsigned long long>(dev.counters().wqe_cache_misses),
              static_cast<unsigned long long>(
                  dev.counters().wqe_cache_invalidations));

  bench::JsonWriter("scale_fanout")
      .Field("events_per_sec", events_per_sec)
      .Field("verbs_per_sec", verbs_per_sec)
      .Field("rounds", rounds)
      .Field("events", sim.events_processed())
      .Field("slab_hit_rate", slab_rate)
      .Field("heap_fallbacks", sim.heap_fallbacks())
      .Field("payload_reuse_rate", reuse_rate)
      .Field("wqe_cache_hit_rate", wqe_hit_rate)
      .Emit();

  // Self-check: every chain must actually have cycled (the recycling ADDs
  // kept the thresholds moving) and allocation-free steady state must hold.
  const std::uint64_t min_rounds =
      static_cast<std::uint64_t>(p.tenants) * p.chains_per_tenant * 2;
  if (rounds < min_rounds) {
    std::fprintf(stderr, "FAIL: chains stalled (%llu rounds < %llu)\n",
                 static_cast<unsigned long long>(rounds),
                 static_cast<unsigned long long>(min_rounds));
    return 1;
  }
  return 0;
}
