// Fig 7: average latencies of individual RDMA verbs (64 B IO), remote vs
// local, plus the doorbell (MMIO) floor.
#include <memory>

#include "report.h"
#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

using namespace redn;

namespace {

struct Rig {
  sim::Simulator sim;
  rnic::RnicDevice client{sim, rnic::NicConfig::ConnectX5(), {}, "client"};
  rnic::RnicDevice server{sim, rnic::NicConfig::ConnectX5(), {}, "server"};
  rnic::QueuePair* cqp = nullptr;
  rnic::QueuePair* sqp = nullptr;
  std::unique_ptr<std::byte[]> cbuf, sbuf;
  rnic::MemoryRegion cmr, smr;

  Rig() {
    rnic::QpConfig c;
    c.send_cq = client.CreateCq();
    c.recv_cq = client.CreateCq();
    cqp = client.CreateQp(c);
    rnic::QpConfig s;
    s.send_cq = server.CreateCq();
    s.recv_cq = server.CreateCq();
    sqp = server.CreateQp(s);
    rnic::Connect(cqp, sqp, rnic::Calibration{}.net_one_way);
    cbuf = std::make_unique<std::byte[]>(4096);
    sbuf = std::make_unique<std::byte[]>(4096);
    cmr = client.pd().Register(cbuf.get(), 4096, rnic::kAccessAll);
    smr = server.pd().Register(sbuf.get(), 4096, rnic::kAccessAll);
  }

  // Average latency of `n` executions of `wr` (measured like the paper:
  // post, await completion, repeat).
  double AvgUs(const verbs::SendWr& wr, int n = 1000) {
    sim::LatencyRecorder rec;
    verbs::Cqe cqe;
    for (int i = 0; i < n; ++i) {
      const sim::Nanos t0 = sim.now();
      verbs::PostSendNow(cqp, wr);
      if (!verbs::AwaitCqe(sim, client, cqp->send_cq, &cqe)) break;
      rec.Add(sim.now() - t0);
    }
    return rec.MeanUs();
  }
};

}  // namespace

int main() {
  bench::Title("RDMA verb latencies (64 B IO)", "Fig 7");
  Rig rig;

  const double write_us = rig.AvgUs(verbs::MakeWrite(
      rig.cmr.addr, 64, rig.cmr.lkey, rig.smr.addr, rig.smr.rkey));
  const double read_us = rig.AvgUs(verbs::MakeRead(
      rig.cmr.addr, 64, rig.cmr.lkey, rig.smr.addr, rig.smr.rkey));
  const double cas_us = rig.AvgUs(verbs::MakeCas(
      rig.smr.addr, rig.smr.rkey, 0, 0, rig.cmr.addr, rig.cmr.lkey));
  const double add_us = rig.AvgUs(verbs::MakeFetchAdd(
      rig.smr.addr + 64, rig.smr.rkey, 1, rig.cmr.addr, rig.cmr.lkey));
  const double max_us =
      rig.AvgUs(verbs::MakeCalcMax(rig.smr.addr + 128, rig.smr.rkey, 1));
  const double noop_remote_us = rig.AvgUs(verbs::MakeNoop());

  // Local loopback NOOP for the network-cost estimate.
  rnic::QpConfig lc;
  lc.send_cq = rig.client.CreateCq();
  lc.recv_cq = rig.client.CreateCq();
  rnic::QueuePair* lqp = rig.client.CreateQp(lc);
  rnic::ConnectSelf(lqp);
  sim::LatencyRecorder lrec;
  verbs::Cqe cqe;
  for (int i = 0; i < 1000; ++i) {
    const sim::Nanos t0 = rig.sim.now();
    verbs::PostSendNow(lqp, verbs::MakeNoop());
    verbs::AwaitCqe(rig.sim, rig.client, lqp->send_cq, &cqe);
    lrec.Add(rig.sim.now() - t0);
  }
  const double noop_local_us = lrec.MeanUs();

  bench::Section("copy verbs");
  bench::Compare("WRITE (posted PCIe)", write_us, 1.6, "us");
  bench::Compare("READ (non-posted)", read_us, 1.81, "us");
  bench::Section("atomic verbs");
  bench::Compare("CAS", cas_us, 1.81, "us");
  bench::Compare("ADD", add_us, 1.79, "us");
  bench::Section("calc verbs (vendor)");
  bench::Compare("MAX", max_us, 1.85, "us");
  bench::Section("NOOP and derived costs");
  bench::Compare("NOOP remote", noop_remote_us, 1.21, "us");
  bench::Compare("NOOP local loopback", noop_local_us, 0.96, "us");
  bench::Compare("network cost (remote-local)", noop_remote_us - noop_local_us,
                 0.25, "us");
  bench::Compare("doorbell MMIO floor",
                 sim::ToMicros(rnic::Calibration{}.doorbell_mmio), 0.30, "us");
  return 0;
}
