// Sharded KV recovery bench: chain-ordered writes through crash, re-join,
// and anti-entropy re-sync.
//
// Topology: the bench_scale_failover testbed (M shard NICs + N tenant NICs,
// consistent-hash primary + chain successor, Zipfian closed loops over the
// packetized transport), now with a YCSB-style put mix. A put travels
// tenant -> primary -> successor: the primary applies, RDMA-WRITEs the
// whole versioned value to the successor, and acks only after that
// propagation completes — every ack names the replicas that durably hold
// the write.
//
// Mid-run a scripted FaultPlan crashes one shard and heals it: the revived
// shard re-joins with an empty store and an anti-entropy ResyncSession
// streams its key range back from its chain peers via RDMA READs with
// version-tag reconciliation, while writes forwarded to it dual-apply. A
// later `slow` window on another shard adds gray-failure latency with no
// loss. The headline numbers: the degraded window (down -> serving again,
// including the transfer), write tails across the fault, and the
// end-of-run audits — zero acknowledged writes lost, zero read-your-writes
// violations, zero replica divergence.
//
// All reported numbers are pure simulated time. The bench re-runs the
// configuration and fails if any simulated field differs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "report.h"
#include "workload/kv_service.h"

using namespace redn;

int main(int argc, char** argv) {
  int shards = 4;
  int tenants = 4;
  int ops = 400;
  int keys = 100'000;
  double put_fraction = 0.3;
  std::uint64_t seed = 1;
  int sim_shards = 1;  // --sim-shards: event domains (--shards = KV shards)
  for (int i = 1; i < argc; ++i) {
    auto val = [&]() -> double { return i + 1 < argc ? std::atof(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--quick") == 0) {
      ops = 200;
      keys = 20'000;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      ops = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      keys = static_cast<int>(val());
    } else if (std::strcmp(argv[i], "--put") == 0) {
      put_fraction = val();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(val());
    } else if (std::strcmp(argv[i], "--sim-shards") == 0) {
      sim_shards = static_cast<int>(val());
    }
  }

  constexpr sim::Nanos kCrashAt = 60'000;
  const sim::Nanos rejoin_at = sim::Millis(1);
  const sim::Nanos slow_from = rejoin_at + 500'000;
  const sim::Nanos slow_to = slow_from + 500'000;

  bench::Title("Sharded KV crash + re-join + anti-entropy re-sync",
               "chain-ordered writes surviving the full fault lifecycle");
  std::printf("  %d shards, %d tenants, %d ops/tenant (%.0f%% puts), "
              "%d-key space, zipf 0.99, seed %llu\n", shards, tenants, ops,
              100.0 * put_fraction, keys,
              static_cast<unsigned long long>(seed));
  std::printf("  FaultPlan: crash shard 1 at t=60us, re-join at t=1ms "
              "(wipe + resync); slow +30us on shard 2 [1.5ms, 2ms)\n");

  auto run = [&]() {
    workload::KvServiceConfig cfg;
    cfg.shards = shards;
    cfg.tenants = tenants;
    cfg.gets_per_tenant = ops;
    cfg.keys = keys;
    cfg.seed = seed;
    cfg.put_fraction = put_fraction;
    workload::FaultEntry crash;
    crash.server = 1;
    crash.kind = workload::FaultKind::kCrash;
    crash.down_at = kCrashAt;
    crash.up_at = rejoin_at;
    cfg.faults.entries.push_back(crash);
    workload::FaultEntry slow;
    slow.server = 2;
    slow.kind = workload::FaultKind::kSlow;
    slow.down_at = slow_from;
    slow.up_at = slow_to;
    slow.slow_ns = 30'000;
    cfg.faults.entries.push_back(slow);
    return workload::RunKvService(cfg);
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = run();
  const auto again = run();
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  bench::Section("mixed workload through the fault");
  std::printf("  %8s %8s %6s %9s %9s %12s %9s %9s\n", "ops", "gets", "puts",
              "p99 us", "p999 us", "put p99 us", "degraded", "retries");
  std::printf("  %8llu %8llu %6llu %9.2f %9.2f %12.2f %9llu %9llu\n",
              static_cast<unsigned long long>(r.gets + r.puts),
              static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.puts), r.p99_us, r.p999_us,
              r.put_p99_us,
              static_cast<unsigned long long>(r.degraded_acks),
              static_cast<unsigned long long>(r.put_retries));

  bench::Section("re-join + anti-entropy");
  std::printf("  rejoins %llu, sessions %llu: %llu keys scanned, %llu "
              "adopted, %llu kept local (dual-apply), %llu bytes read\n",
              static_cast<unsigned long long>(r.rejoins),
              static_cast<unsigned long long>(r.resyncs_started),
              static_cast<unsigned long long>(r.resync_keys_scanned),
              static_cast<unsigned long long>(r.resync_keys_applied),
              static_cast<unsigned long long>(r.resync_keys_kept),
              static_cast<unsigned long long>(r.resync_bytes));
  std::printf("  degraded window %.1f us (crash -> serving again; raw "
              "outage was %.1f us)\n", r.degraded_window_us,
              sim::ToMicros(rejoin_at - kCrashAt));

  bench::Section("end-of-run audits");
  std::printf("  lost acked writes %llu, read-your-writes violations %llu, "
              "replica divergence %llu\n",
              static_cast<unsigned long long>(r.lost_acked_writes),
              static_cast<unsigned long long>(r.ryw_violations),
              static_cast<unsigned long long>(r.value_divergence));

  const bool stable =
      again.gets == r.gets && again.puts == r.puts &&
      again.acked_puts_full == r.acked_puts_full &&
      again.degraded_acks == r.degraded_acks &&
      again.chain_forwards == r.chain_forwards &&
      again.resync_keys_applied == r.resync_keys_applied &&
      again.resync_keys_kept == r.resync_keys_kept &&
      again.degraded_window_us == r.degraded_window_us &&
      again.p99_us == r.p99_us && again.p999_us == r.p999_us &&
      again.put_p999_us == r.put_p999_us &&
      again.data_packets == r.data_packets &&
      again.retransmits == r.retransmits && again.events == r.events;

  // --- sharded engine (--sim-shards N): the same fault lifecycle with the
  // tenant NICs spread across event domains (the KV shard NICs and the
  // transport stay on domain 0), wall-clock A/B against the single-domain
  // run. Gated on the flag so the default run stays byte-identical.
  double wall_speedup = 0;
  bool sharded_ok = true;
  std::uint64_t sharded_stable = 0;
  if (sim_shards > 1) {
    bench::Section("sharded engine: wall-clock, 1 domain vs N");
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < static_cast<unsigned>(sim_shards)) {
      std::printf("  SKIP note: only %u cores for %d sim shards — speedup "
                  "numbers will understate the engine\n", cores, sim_shards);
    }
    auto spread_run = [&](int n) {
      workload::KvServiceConfig cfg;
      cfg.shards = shards;
      cfg.tenants = tenants;
      cfg.gets_per_tenant = ops;
      cfg.keys = keys;
      cfg.seed = seed;
      cfg.put_fraction = put_fraction;
      workload::FaultEntry crash;
      crash.server = 1;
      crash.kind = workload::FaultKind::kCrash;
      crash.down_at = kCrashAt;
      crash.up_at = rejoin_at;
      cfg.faults.entries.push_back(crash);
      workload::FaultEntry slow;
      slow.server = 2;
      slow.kind = workload::FaultKind::kSlow;
      slow.down_at = slow_from;
      slow.up_at = slow_to;
      slow.slow_ns = 30'000;
      cfg.faults.entries.push_back(slow);
      cfg.sim_shards = n;
      if (n > 1) {
        // Tenants off the service shard: their flows run split.
        cfg.placement.resize(static_cast<std::size_t>(tenants));
        for (int t = 0; t < tenants; ++t) {
          cfg.placement[static_cast<std::size_t>(t)] = 1 + t % (n - 1);
        }
      }
      return workload::RunKvService(cfg);
    };
    auto timed = [&](int n, workload::KvServiceResult* out) {
      double best = 1e30;
      for (int rep = 0; rep < 2; ++rep) {
        const auto w0 = std::chrono::steady_clock::now();
        *out = spread_run(n);
        const double w = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - w0).count();
        if (w < best) best = w;
      }
      return best;
    };
    workload::KvServiceResult one, many, many2;
    const double wall_one = timed(1, &one);
    const double wall_many = timed(sim_shards, &many);
    timed(sim_shards, &many2);
    wall_speedup = wall_one / wall_many;
    sharded_stable =
        (many.gets == many2.gets && many.puts == many2.puts &&
         many.p99_us == many2.p99_us && many.put_p99_us == many2.put_p99_us &&
         many.data_packets == many2.data_packets &&
         many.degraded_window_us == many2.degraded_window_us &&
         many.events == many2.events)
            ? 1
            : 0;
    std::printf("  %d tenants x %d ops through crash+resync: %.3f s on 1 "
                "domain, %.3f s on %d — wall_speedup x%.2f\n", tenants, ops,
                wall_one, wall_many, sim_shards, wall_speedup);
    std::printf("  spread run: %llu gets + %llu puts, %llu unanswered, "
                "audits %llu/%llu/%llu, %s\n",
                static_cast<unsigned long long>(many.gets),
                static_cast<unsigned long long>(many.puts),
                static_cast<unsigned long long>(many.unanswered),
                static_cast<unsigned long long>(many.lost_acked_writes),
                static_cast<unsigned long long>(many.ryw_violations),
                static_cast<unsigned long long>(many.value_divergence),
                sharded_stable ? "rerun bit-stable" : "RERUN DIVERGED");
    const std::uint64_t sharded_expect = static_cast<std::uint64_t>(ops) *
                                         static_cast<std::uint64_t>(tenants);
    if (many.gets + many.puts != sharded_expect || many.unanswered != 0) {
      std::fprintf(stderr, "FAIL: spread run left ops unserved\n");
      sharded_ok = false;
    }
    if (many.lost_acked_writes != 0 || many.ryw_violations != 0 ||
        many.value_divergence != 0) {
      std::fprintf(stderr, "FAIL: spread run breached a write invariant\n");
      sharded_ok = false;
    }
    if (sharded_stable == 0) {
      std::fprintf(stderr, "FAIL: spread same-seed rerun diverged\n");
      sharded_ok = false;
    }
  }

  const double events_per_sec =
      static_cast<double>(r.events + again.events) / wall_secs;
  bench::JsonWriter json("scale_recovery");
  json.Field("shards", static_cast<std::uint64_t>(shards))
      .Field("tenants", static_cast<std::uint64_t>(tenants))
      .Field("gets", r.gets)
      .Field("puts", r.puts)
      .Field("unanswered", r.unanswered)
      .Field("acked_puts_full", r.acked_puts_full)
      .Field("degraded_acks", r.degraded_acks)
      .Field("chain_forwards", r.chain_forwards)
      .Field("put_retries", r.put_retries)
      .Field("p99_us", r.p99_us)
      .Field("p999_us", r.p999_us)
      .Field("put_p99_us", r.put_p99_us)
      .Field("put_p999_us", r.put_p999_us)
      .Field("rejoins", r.rejoins)
      .Field("resyncs", r.resyncs_started)
      .Field("resync_keys_applied", r.resync_keys_applied)
      .Field("resync_keys_kept", r.resync_keys_kept)
      .Field("resync_bytes", r.resync_bytes)
      .Field("resync_failures", r.resync_failures)
      .Field("degraded_window_us", r.degraded_window_us)
      .Field("lost_acked_writes", r.lost_acked_writes)
      .Field("ryw_violations", r.ryw_violations)
      .Field("value_divergence", r.value_divergence)
      .Field("deterministic", static_cast<std::uint64_t>(stable ? 1 : 0))
      .Field("events_per_sec", events_per_sec);
  if (sim_shards > 1) {
    json.Field("sim_shards", static_cast<std::uint64_t>(sim_shards))
        .Field("wall_speedup", wall_speedup)
        .Field("sharded_deterministic", sharded_stable);
  }
  json.Emit();

  // Self-checks: the fault lifecycle actually ran, every op completed,
  // and the invariants the subsystem exists for all held.
  bool ok = true;
  const std::uint64_t expect =
      static_cast<std::uint64_t>(ops) * static_cast<std::uint64_t>(tenants);
  if (r.gets + r.puts != expect || r.unanswered != 0) {
    std::fprintf(stderr, "FAIL: ops unserved (%llu/%llu, %llu unanswered)\n",
                 static_cast<unsigned long long>(r.gets + r.puts),
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(r.unanswered));
    ok = false;
  }
  if (r.puts == 0 || r.acked_puts_full == 0) {
    std::fprintf(stderr, "FAIL: the write path never acked a put\n");
    ok = false;
  }
  if (r.rejoins != 1 || r.resyncs_started == 0 ||
      r.resync_keys_scanned == 0) {
    std::fprintf(stderr, "FAIL: the crash never re-joined/re-synced "
                 "(rejoins %llu, sessions %llu)\n",
                 static_cast<unsigned long long>(r.rejoins),
                 static_cast<unsigned long long>(r.resyncs_started));
    ok = false;
  }
  if (r.resync_failures != 0) {
    std::fprintf(stderr, "FAIL: %llu resync sessions died mid-transfer\n",
                 static_cast<unsigned long long>(r.resync_failures));
    ok = false;
  }
  if (r.lost_acked_writes != 0 || r.ryw_violations != 0 ||
      r.value_divergence != 0) {
    std::fprintf(stderr, "FAIL: invariant breach (lost %llu, ryw %llu, "
                 "divergence %llu)\n",
                 static_cast<unsigned long long>(r.lost_acked_writes),
                 static_cast<unsigned long long>(r.ryw_violations),
                 static_cast<unsigned long long>(r.value_divergence));
    ok = false;
  }
  if (r.degraded_window_us < sim::ToMicros(rejoin_at - kCrashAt)) {
    std::fprintf(stderr, "FAIL: degraded window %.1f us shorter than the "
                 "outage itself\n", r.degraded_window_us);
    ok = false;
  }
  if (!stable) {
    std::fprintf(stderr, "FAIL: same-seed rerun diverged\n");
    ok = false;
  }
  if (!sharded_ok) ok = false;
  return ok ? 0 : 1;
}
