// Shared formatting for the paper-reproduction benches: every bench prints
// the figure/table it regenerates, with paper-reported values side by side
// so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <string>

#include "sim/stats.h"

namespace redn::bench {

inline void Title(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

inline void Section(const char* name) { std::printf("\n--- %s ---\n", name); }

// "measured vs paper" row with a ratio column.
inline void Compare(const char* label, double measured, double paper,
                    const char* unit) {
  const double ratio = paper != 0 ? measured / paper : 0;
  std::printf("  %-34s measured %10.2f %-8s paper %10.2f   (x%.2f)\n", label,
              measured, unit, paper, ratio);
}

inline void Note(const char* text) { std::printf("  note: %s\n", text); }

// Simple ASCII bar for timeline plots (Fig 16).
inline std::string Bar(double normalized, int width = 40) {
  int n = static_cast<int>(normalized * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(n, '#') + std::string(width - n, ' ');
}

}  // namespace redn::bench
