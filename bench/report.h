// Shared formatting for the paper-reproduction benches: every bench prints
// the figure/table it regenerates, with paper-reported values side by side
// so the shape comparison is immediate.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/stats.h"

namespace redn::bench {

inline void Title(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

inline void Section(const char* name) { std::printf("\n--- %s ---\n", name); }

// "measured vs paper" row with a ratio column.
inline void Compare(const char* label, double measured, double paper,
                    const char* unit) {
  const double ratio = paper != 0 ? measured / paper : 0;
  std::printf("  %-34s measured %10.2f %-8s paper %10.2f   (x%.2f)\n", label,
              measured, unit, paper, ratio);
}

inline void Note(const char* text) { std::printf("  note: %s\n", text); }

// Simple ASCII bar for timeline plots (Fig 16).
inline std::string Bar(double normalized, int width = 40) {
  int n = static_cast<int>(normalized * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(n, '#') + std::string(width - n, ' ');
}

// Machine-readable output: accumulates key/value pairs and prints one JSON
// object per record. Used by bench_simcore (and CI thresholds) so perf
// numbers can be parsed without scraping the human-readable report.
class JsonWriter {
 public:
  explicit JsonWriter(std::string name) {
    body_ = "{\"bench\":\"" + std::move(name) + "\"";
  }
  JsonWriter& Field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    body_ += std::string(",\"") + key + "\":" + buf;
    return *this;
  }
  JsonWriter& Field(const char* key, std::uint64_t value) {
    body_ += std::string(",\"") + key + "\":" + std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const char* key, const char* value) {
    body_ += std::string(",\"") + key + "\":\"" + value + "\"";
    return *this;
  }
  // Prints `JSON {...}` on its own line; the prefix keeps grep trivial.
  void Emit() const { std::printf("JSON %s}\n", body_.c_str()); }

 private:
  std::string body_;
};

}  // namespace redn::bench
