// Fig 16 (+ Table 6): failure resiliency. A Memcached process is killed at
// t = 5 s; vanilla (two-sided) service collapses for restart + hash-table
// rebuild, while RedN-served gets continue uninterrupted because the armed
// chains live in NIC-accessible memory owned by the empty-hull parent.
#include <cstdio>

#include "report.h"
#include "workload/experiments.h"

using namespace redn;

int main() {
  bench::Title("Throughput through a Memcached process crash at t=5s",
               "Fig 16 (and Table 6)");

  workload::FailoverConfig base;
  base.rate_per_sec = 1000;
  base.horizon = sim::Seconds(12);
  base.crash_at = sim::Seconds(5);
  base.keys = 10'000;

  auto vanilla_cfg = base;
  vanilla_cfg.redn = false;
  const auto vanilla = workload::RunFailover(vanilla_cfg);

  auto redn_cfg = base;
  redn_cfg.redn = true;
  redn_cfg.hull_parent = true;
  const auto redn = workload::RunFailover(redn_cfg);

  std::printf("  normalized served throughput per 0.25 s bucket\n");
  std::printf("  %6s  %-42s %-42s\n", "t[s]", "RedN", "vanilla Memcached");
  for (std::size_t b = 0; b < vanilla.normalized.size(); b += 2) {
    const double t = 0.25 * static_cast<double>(b);
    const double r = b < redn.normalized.size() ? redn.normalized[b] : 0;
    const double v = vanilla.normalized[b];
    std::printf("  %6.2f  |%s| |%s|\n", t, bench::Bar(r).c_str(),
                bench::Bar(v).c_str());
  }

  bench::Section("outage accounting");
  bench::Compare("vanilla outage (restart+rebuild)", vanilla.outage_seconds,
                 2.25, "s");
  bench::Compare("RedN outage", redn.outage_seconds, 0.0, "s");
  std::printf("  vanilla served %llu/%llu, RedN served %llu/%llu\n",
              static_cast<unsigned long long>(vanilla.served),
              static_cast<unsigned long long>(vanilla.sent),
              static_cast<unsigned long long>(redn.served),
              static_cast<unsigned long long>(redn.sent));

  // The no-hull ablation: §5.6's point that the fork/empty-hull trick is
  // what keeps RDMA resources alive past the process.
  auto nohull = redn_cfg;
  nohull.hull_parent = false;
  nohull.horizon = sim::Seconds(8);
  nohull.crash_at = sim::Seconds(3);
  const auto dead = workload::RunFailover(nohull);
  bench::Section("ablation: no empty-hull parent");
  std::printf("  without hull ownership the OS reclaim kills the chains: "
              "outage %.2f s, served %llu/%llu\n",
              dead.outage_seconds, static_cast<unsigned long long>(dead.served),
              static_cast<unsigned long long>(dead.sent));

  bench::Section("Table 6: component failure rates (literature values)");
  std::printf("  %-8s %8s %12s %12s\n", "comp", "AFR", "MTTF[h]", "rel.");
  std::printf("  %-8s %8s %12s %12s\n", "OS", "41.9%", "20,906", "99%");
  std::printf("  %-8s %8s %12s %12s\n", "DRAM", "39.5%", "22,177", "99%");
  std::printf("  %-8s %8s %12s %12s\n", "NIC", "1.00%", "876,000", "99.99%");
  std::printf("  %-8s %8s %12s %12s\n", "NVM", "<1.00%", "2,000,000",
              "99.99%");
  return 0;
}
