#!/usr/bin/env bash
# CI entry point: build Release + Debug, run the test suite in both, run
# bench_simcore + bench_scale_fanout (Release) and enforce perf floors, then
# diff three representative paper benches against committed golden stdout so
# semantic regressions (timing, ordering, completion counting) fail loudly
# instead of rotting silently.
#
# An ASan+UBSan Debug build then re-runs the whole ctest suite — the
# slab/inline-callback fast paths are exactly the code sanitizers exist
# for. `--sanitize-only` runs just that stage (the dedicated GitHub job);
# `--skip-sanitize` skips it.
#
# A ThreadSanitizer build (`--tsan-only` for the dedicated job,
# `--skip-tsan` to skip) runs the sharded-engine tests and small --shards
# bench configurations under real threads: the sharded simulator's claim is
# that mailboxes and the round barrier are the only cross-thread edges, and
# TSan is what holds that claim.
#
# Usage: scripts/ci.sh [--skip-debug] [--skip-sanitize] [--sanitize-only]
#                      [--skip-tsan] [--tsan-only]
#
# Perf floors are deliberately conservative (~25% of the numbers in
# docs/PERF.md) so they trip on algorithmic regressions — an accidental
# heap allocation per event, a broken calendar cascade — not on machine
# noise or slow CI hardware. Override via MIN_CHAIN_EPS / MIN_BURST_EPS /
# MIN_FANOUT_EPS.
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_DEBUG=0
SKIP_SANITIZE=0
SANITIZE_ONLY=0
SKIP_TSAN=0
TSAN_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --skip-debug) SKIP_DEBUG=1 ;;
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    --sanitize-only) SANITIZE_ONLY=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --tsan-only) TSAN_ONLY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

MIN_CHAIN_EPS="${MIN_CHAIN_EPS:-10000000}"   # dispatch_chain events/sec floor
MIN_BURST_EPS="${MIN_BURST_EPS:-1500000}"    # dispatch_burst events/sec floor
MIN_FANOUT_EPS="${MIN_FANOUT_EPS:-2000000}"  # bench_scale_fanout events/sec floor
MIN_NETFABRIC_EPS="${MIN_NETFABRIC_EPS:-200000}"  # bench_scale_netfabric floor
MIN_LOSSY_EPS="${MIN_LOSSY_EPS:-150000}"          # bench_scale_lossy events/sec floor
MIN_LOSSY_GOODPUT="${MIN_LOSSY_GOODPUT:-10}"      # go-back-N Gb/s at 1% packet loss
# Selective-repeat goodput floor at 5% loss. The default is the *recorded
# go-back-N* number at 5% loss (~10 Gb/s quick): holding SR above it pins
# the SACK machinery's whole reason to exist — targeted resends must beat
# window rewinds, not just tie them. (The bench also asserts sr > gbn on
# the same run via its exit code; this floor catches slow drift against
# the recorded baseline.)
MIN_LOSSY_SR_GOODPUT="${MIN_LOSSY_SR_GOODPUT:-10}"
MIN_FAILOVER_EPS="${MIN_FAILOVER_EPS:-30000}"     # bench_scale_failover floor
# Bounded-outage floor: host-baseline stall / offloaded-failover blip. The
# detour chain answers a killed shard's gets ~170x faster than the host's
# multi-RTO timer in the recorded runs; 10x is the do-not-regress line.
MIN_FAILOVER_BLIP_RATIO="${MIN_FAILOVER_BLIP_RATIO:-10}"
# Recovery ceiling: crash -> re-joined -> fully re-synced -> serving, in
# simulated microseconds. The recorded quick runs finish the whole
# lifecycle (940us outage + anti-entropy transfer) in ~1.5-2.5ms; 5ms is
# the do-not-regress line for the re-sync machinery lingering.
MAX_RECOVERY_WINDOW="${MAX_RECOVERY_WINDOW:-5000}"
# Sharded-engine wall-clock floor: the embarrassingly-parallel fanout bench
# at 4 shards must run >= this multiple of its own 1-shard wall clock.
# Enforced only on machines with >= 4 cores — conservative threading cannot
# beat single-threaded dispatch on fewer cores than shards, so the check
# skips loudly (the GitHub runners have 4 vCPUs and do enforce it).
MIN_SHARD_SPEEDUP="${MIN_SHARD_SPEEDUP:-2.0}"

build_and_test() {
  local type="$1" dir="$2"
  shift 2
  echo "=== ${type} build ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${type}" "$@" >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)")
}

sanitize_stage() {
  # Full test suite under ASan+UBSan (abort on the first finding).
  echo "=== ASan+UBSan Debug build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DREDN_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$(nproc)"
  (cd build-asan &&
   ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
   UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
     ctest --output-on-failure -j"$(nproc)")
  # Re-run the reliability-engine tests at three extra RNG seeds: their
  # assertions are seed invariants (recovery completes, replay is
  # bit-stable, SR resends less than GBN), and shifting the loss pattern
  # walks ASan through different reassembly/flush/re-arm interleavings.
  echo "=== ASan+UBSan transport reliability seed sweep ==="
  for seed in 1 2 3; do
    (cd build-asan &&
     TRANSPORT_TEST_SEED="${seed}" \
     ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
     UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
       ./transport_test --gtest_brief=1 \
       --gtest_filter='TransportSr.*:TransportRnr.*:ReliabilityBed.*:TransportScale.*')
  done
  # The write-path/recovery tests once more, explicitly: the resync
  # sessions register staging buffers, take over CQ notify hooks, and
  # reconcile via raw value-heap pointers — exactly the lifetime and
  # aliasing hazards the sanitizers are here to catch.
  echo "=== ASan+UBSan KV recovery + resync ==="
  (cd build-asan &&
   ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
   UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
     ./kv_recovery_test --gtest_brief=1)
}

tsan_stage() {
  # Sharded engine under ThreadSanitizer: the unit tests (real threads at
  # shards >= 2) plus small --shards bench configurations, which drive the
  # cross-shard device paths and the coordinator's round loop end to end.
  echo "=== TSan build (sharded engine) ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DREDN_TSAN=ON >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target \
    sharded_sim_test transport_test bench_scale_fanout bench_scale_netfabric \
    bench_scale_lossy bench_scale_recovery
  (cd build-tsan && TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
     ./sharded_sim_test)
  (cd build-tsan && TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
     ./transport_test)
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ./build-tsan/bench_scale_fanout --quick --shards 4 --tenants 8
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ./build-tsan/bench_scale_netfabric --quick --clients 4 --value 4096 --shards 2
  # Split-flow transport across real threads: the per-endpoint halves talk
  # only through timestamped mailbox messages, and these two drive the
  # lossy/recovery packetized paths (retransmits, RNR, crash re-arm) with
  # the flows' halves on different shards.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ./build-tsan/bench_scale_lossy --quick --shards 2
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ./build-tsan/bench_scale_recovery --quick --sim-shards 2
}

if [[ "${SANITIZE_ONLY}" -eq 1 ]]; then
  sanitize_stage
  exit 0
fi
if [[ "${TSAN_ONLY}" -eq 1 ]]; then
  tsan_stage
  exit 0
fi

build_and_test Release build-release
if [[ "${SKIP_DEBUG}" -eq 0 ]]; then
  build_and_test Debug build-debug
fi
if [[ "${SKIP_SANITIZE}" -eq 0 ]]; then
  sanitize_stage
fi
if [[ "${SKIP_TSAN}" -eq 0 ]]; then
  tsan_stage
fi

echo "=== bench_simcore perf floors ==="
bench_out="$(./build-release/bench_simcore --quick)"
echo "${bench_out}"

# Each scenario emits one `JSON {...}` record (bench/report.h).
get_field() {  # get_field <bench-name> <field>
  echo "${bench_out}" | grep "\"bench\":\"$1\"" \
    | sed -n "s/.*\"$2\":\([0-9.]*\).*/\1/p"
}

fail=0
check_floor() {  # check_floor <bench> <field> <min> <label>
  local val
  val="$(get_field "$1" "$2")"
  if [[ -z "${val}" ]]; then
    echo "FAIL: no JSON record for $1" >&2; fail=1; return
  fi
  if ! awk -v v="${val}" -v m="$3" 'BEGIN { exit !(v >= m) }'; then
    echo "FAIL: $4: ${val} < floor $3" >&2; fail=1
  else
    echo "OK:   $4: ${val} >= $3"
  fi
}

check_floor dispatch_chain events_per_sec "${MIN_CHAIN_EPS}" "dispatch_chain events/sec"
check_floor dispatch_burst events_per_sec "${MIN_BURST_EPS}" "dispatch_burst events/sec"
# Zero heap allocations per steady-state event: the slab must absorb
# every engine callback.
check_zero() {  # check_zero <bench> <field> <label>
  local val
  val="$(get_field "$1" "$2")"
  if [[ -z "${val}" ]]; then
    echo "FAIL: no JSON record for $1" >&2; fail=1; return
  fi
  if [[ "${val}" != "0" ]]; then
    echo "FAIL: $3: ${val} != 0" >&2; fail=1
  else
    echo "OK:   $3: 0"
  fi
}
for b in dispatch_chain dispatch_burst remote_write; do
  check_floor "$b" slab_hit_rate 0.99 "$b slab-hit rate"
  check_zero "$b" heap_fallbacks "$b heap fallbacks"
done
# Decoded-WQE translation cache: identical re-posts must verify-hit, so the
# steady-state hit rate sits near 1.0; a drop means the write-through /
# invalidation plumbing regressed (see docs/PERF.md).
check_floor remote_write wqe_cache_hit_rate 0.9 "remote_write wqe-cache hit rate"

echo "=== bench_scale_fanout perf floors ==="
bench_out="$(./build-release/bench_scale_fanout --quick)"
echo "${bench_out}"
check_floor scale_fanout events_per_sec "${MIN_FANOUT_EPS}" "scale_fanout events/sec"
check_floor scale_fanout slab_hit_rate 0.99 "scale_fanout slab-hit rate"
check_zero scale_fanout heap_fallbacks "scale_fanout heap fallbacks"
check_floor scale_fanout payload_reuse_rate 0.99 "scale_fanout payload-reuse rate"
# Self-recycling managed rings must keep hitting the translation cache even
# though three slots per lap are ADD-rewritten — the write-through refresh
# is what holds this above 0.9 (steady state ~1.0).
check_floor scale_fanout wqe_cache_hit_rate 0.9 "scale_fanout wqe-cache hit rate"

echo "=== bench_scale_netfabric perf floors ==="
# The bench self-checks contention and seed-stability (exit code); CI adds
# a wall-clock floor on top.
bench_out="$(./build-release/bench_scale_netfabric --quick)"
echo "${bench_out}"
check_floor scale_netfabric events_per_sec "${MIN_NETFABRIC_EPS}" "scale_netfabric events/sec"
check_floor scale_netfabric server_tx_util 0.5 "scale_netfabric server-link contention"
check_floor scale_netfabric deterministic 1 "scale_netfabric seed-stable rerun"

echo "=== sharded engine: determinism + speedup ==="
# Determinism at shards > 1 under real threads: the netfabric sharded
# section reruns its config and fails on any simulated-field divergence;
# the fanout sharded mode asserts flat simulated results across shard
# counts (its exit codes carry both).
bench_out="$(./build-release/bench_scale_netfabric --quick --shards 2)"
echo "${bench_out}" | grep '"bench":"scale_netfabric_sharded"'
check_floor scale_netfabric_sharded deterministic 1 "sharded netfabric bit-stable rerun"
check_floor scale_netfabric_sharded mailbox_sends 1 "sharded netfabric cross-shard traffic"
bench_out="$(./build-release/bench_scale_fanout --shards 4 --tenants 8)"
echo "${bench_out}" | grep '"bench":"scale_fanout_sharded"'
# Wall-clock speedup floor: only meaningful with enough cores to actually
# run 4 shards in parallel.
if [[ "$(nproc)" -ge 4 ]]; then
  check_floor scale_fanout_sharded wall_speedup_vs_1shard "${MIN_SHARD_SPEEDUP}" "sharded fanout wall speedup @4 shards"
else
  echo "SKIP: sharded speedup floor needs >= 4 cores, have $(nproc) — not enforced on this machine"
fi

echo "=== bench_scale_lossy perf floors ==="
# Packetized transport under packet loss, each rate run in both recovery
# modes with the same seed. The bench self-checks (exit code) that every
# get is answered at every loss rate in both modes, that goodput degrades
# monotonically with loss, that a same-seed rerun reproduces every
# simulated field bit for bit, and that SR goodput strictly beats GBN at
# 5% loss. CI adds goodput floors — GBN at 1% loss (recovery must not
# collapse throughput) and SR at 5% loss (must clear the recorded GBN
# number) — plus the usual wall-clock floor. (The transport unit/device
# tests run in every ctest stage above, including the ASan+UBSan build
# with its reliability seed sweep.)
bench_out="$(./build-release/bench_scale_lossy --quick)"
echo "${bench_out}"
check_floor scale_lossy events_per_sec "${MIN_LOSSY_EPS}" "scale_lossy events/sec"
check_floor scale_lossy goodput_gbps "${MIN_LOSSY_GOODPUT}" "scale_lossy gbn goodput @1% loss"
check_floor scale_lossy sr_goodput_gbps_lossiest "${MIN_LOSSY_SR_GOODPUT}" "scale_lossy sr goodput @5% loss"
check_floor scale_lossy deterministic 1 "scale_lossy seed-stable rerun"

echo "=== sharded packetized transport: determinism ==="
# The same lossy workload with the flow halves split across two shards:
# the bench reruns the sharded config and fails (exit code) on any
# simulated-field divergence or lost response; CI re-asserts the rerun
# flag and that cross-shard DATA/ACK traffic actually rode the mailbox.
bench_out="$(./build-release/bench_scale_lossy --quick --shards 2)"
echo "${bench_out}" | grep '"bench":"scale_lossy"'
check_floor scale_lossy sharded_deterministic 1 "sharded lossy bit-stable rerun"
check_floor scale_lossy deterministic 1 "sharded lossy 1-shard rerun still bit-stable"

echo "=== bench_scale_failover bounded-outage floors + seed sweep ==="
# Sharded KV chain-replication failover A/B (offloaded WAIT/ENABLE detour
# vs host re-issue, same seed and FaultPlan). The bench self-checks (exit
# code) that both policies answer every get, that the detour actually
# fired, that the offload blip and p999 beat the host baseline outright,
# and that a same-seed rerun replays bit for bit. CI adds the
# bounded-outage floor (host stall / offload blip) and sweeps three seeds
# so the claim holds beyond the default key/fault alignment.
for seed in 1 2 3; do
  bench_out="$(./build-release/bench_scale_failover --quick --seed "${seed}")"
  if [[ "${seed}" == "1" ]]; then
    echo "${bench_out}"
  else
    echo "${bench_out}" | grep '"bench":"scale_failover"'
  fi
  check_zero scale_failover unanswered "scale_failover seed ${seed} offload unanswered gets"
  check_zero scale_failover host_unanswered "scale_failover seed ${seed} host unanswered gets"
  check_floor scale_failover blip_ratio "${MIN_FAILOVER_BLIP_RATIO}" "scale_failover seed ${seed} host-stall/offload-blip ratio"
  check_floor scale_failover deterministic 1 "scale_failover seed ${seed} seed-stable rerun"
done
check_floor scale_failover events_per_sec "${MIN_FAILOVER_EPS}" "scale_failover events/sec"

check_ceiling() {  # check_ceiling <bench> <field> <max> <label>
  local val
  val="$(get_field "$1" "$2")"
  if [[ -z "${val}" ]]; then
    echo "FAIL: no JSON record for $1" >&2; fail=1; return
  fi
  if ! awk -v v="${val}" -v m="$3" 'BEGIN { exit !(v <= m) }'; then
    echo "FAIL: $4: ${val} > ceiling $3" >&2; fail=1
  else
    echo "OK:   $4: ${val} <= $3"
  fi
}

echo "=== bench_scale_recovery zero-loss + bounded-window sweep ==="
# Chain-ordered writes through crash + re-join + anti-entropy re-sync,
# with a gray-failure slow window riding along. The bench self-checks
# (exit code) that every op completes, the write path acked puts through
# the fault, the crash re-joined and re-synced, and a same-seed rerun
# replays bit for bit. CI re-asserts the headline invariants per seed —
# zero acknowledged writes lost, zero read-your-writes violations, zero
# replica divergence — and holds the degraded window under the recovery
# ceiling so the re-sync machinery cannot silently start lingering.
for seed in 1 2 3; do
  bench_out="$(./build-release/bench_scale_recovery --quick --seed "${seed}")"
  if [[ "${seed}" == "1" ]]; then
    echo "${bench_out}"
  else
    echo "${bench_out}" | grep '"bench":"scale_recovery"'
  fi
  check_zero scale_recovery unanswered "scale_recovery seed ${seed} unanswered ops"
  check_zero scale_recovery lost_acked_writes "scale_recovery seed ${seed} lost acked writes"
  check_zero scale_recovery ryw_violations "scale_recovery seed ${seed} read-your-writes violations"
  check_zero scale_recovery value_divergence "scale_recovery seed ${seed} replica divergence"
  check_zero scale_recovery resync_failures "scale_recovery seed ${seed} resync failures"
  check_floor scale_recovery rejoins 1 "scale_recovery seed ${seed} crash re-joined"
  check_floor scale_recovery resyncs 1 "scale_recovery seed ${seed} anti-entropy ran"
  check_ceiling scale_recovery degraded_window_us "${MAX_RECOVERY_WINDOW}" "scale_recovery seed ${seed} degraded window us"
  check_floor scale_recovery deterministic 1 "scale_recovery seed ${seed} seed-stable rerun"
done

echo "=== sharded packetized recovery: spread tenants + determinism ==="
# The same crash/re-join/re-sync lifecycle with tenants placed off the
# service shard (every client<->service flow split across the mailbox).
# The bench self-checks (exit code) that the spread run serves every op,
# breaches no write invariant, and reruns bit for bit; CI re-asserts the
# rerun flag on the record.
bench_out="$(./build-release/bench_scale_recovery --quick --sim-shards 2)"
echo "${bench_out}" | grep '"bench":"scale_recovery"'
check_floor scale_recovery sharded_deterministic 1 "sharded recovery bit-stable rerun"
check_zero scale_recovery ryw_violations "sharded recovery read-your-writes violations"
check_zero scale_recovery lost_acked_writes "sharded recovery lost acked writes"

# Determinism guard: these benches print only simulated-time results, so
# their stdout must match the committed goldens bit for bit. A diff here
# means engine/device semantics changed — timing, ordering, or completion
# counting — not just performance.
echo "=== golden output diffs ==="
for b in bench_fig7_verb_latency bench_fig8_ordering bench_table3_verb_throughput; do
  if ! ./build-release/"${b}" | diff -u "tests/golden/${b}.golden" - ; then
    echo "FAIL: ${b} output diverged from tests/golden/${b}.golden" >&2
    fail=1
  else
    echo "OK:   ${b} matches golden"
  fi
done

exit "${fail}"
