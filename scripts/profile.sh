#!/usr/bin/env bash
# gprof profiling wrapper — the recipe used for the PR 1-4 hot-path work.
# The container has no perf or valgrind, so profiling is a -pg Release
# build + gprof flat profile. Builds into build-prof/ (separate cache so it
# never dirties the normal build trees).
#
# Usage: scripts/profile.sh [bench_binary] [bench args...]
#   scripts/profile.sh                       # bench_simcore, default args
#   scripts/profile.sh bench_scale_fanout --quick
#
# Caveats:
#  - gprof attributes inlined callees to their caller; for per-line detail
#    rebuild with -fno-inline (distorts timings) or read the annotated
#    flat profile together with the source.
#  - Wall-clock on this 1-vCPU container is ±20% noisy: use the *ranking*,
#    not the absolute seconds, and confirm wins with interleaved A/B runs
#    of the real benches (docs/PERF.md "Measuring").
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH="${1:-bench_simcore}"
shift || true

cmake -B build-prof -S . -DCMAKE_BUILD_TYPE=Release \
  -DREDN_BUILD_TESTS=OFF -DREDN_BUILD_EXAMPLES=OFF -DREDN_LTO=OFF \
  -DCMAKE_CXX_FLAGS="-O2 -pg -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-pg" >/dev/null
cmake --build build-prof -j"$(nproc)" --target "${BENCH}"

(cd build-prof &&
 ./"${BENCH}" "$@" >/dev/null &&
 gprof -b "./${BENCH}" gmon.out | head -60)
