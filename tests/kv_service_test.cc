// Sharded multi-tenant KV service: consistent-hash placement, Zipfian
// tenants, chain-replication failover. The headline comparisons: a shard
// killed mid-run is absorbed by the pre-installed client-NIC detour chain
// with a bounded blip, while the host-reissue baseline eats the multi-RTO
// application timeout; both policies still answer every get.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "kv/ring.h"
#include "workload/kv_service.h"

namespace redn::test {
namespace {

using workload::FailoverPolicy;
using workload::FaultEntry;
using workload::FaultKind;
using workload::KvServiceConfig;
using workload::KvServiceResult;
using workload::RunKvService;

KvServiceConfig SmallConfig() {
  KvServiceConfig cfg;
  cfg.shards = 3;
  cfg.tenants = 3;
  cfg.gets_per_tenant = 60;
  cfg.keys = 2'000;  // small keyspace keeps table construction fast
  cfg.value_len = 256;
  return cfg;
}

TEST(HashRing, PlacementIsDeterministicAndReasonablyBalanced) {
  kv::ConsistentHashRing ring(4, 16, 42);
  kv::ConsistentHashRing ring2(4, 16, 42);
  std::vector<std::uint64_t> per_shard(4, 0);
  for (std::uint64_t k = 1; k <= 100'000; ++k) {
    const int p = ring.PrimaryOf(k);
    ASSERT_EQ(p, ring2.PrimaryOf(k));  // same seed, same placement
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++per_shard[static_cast<std::size_t>(p)];
  }
  // 16 vnodes won't be perfectly even, but no shard may be starved or
  // hoarding: each within [1/4x, 2.5x] of the fair share.
  for (const std::uint64_t n : per_shard) {
    EXPECT_GT(n, 100'000u / 16);
    EXPECT_LT(n, 100'000u * 5 / 8);
  }
  // Succession: a fixed, distinct successor per shard, and following it
  // visits every shard (single cycle over a small ring is not guaranteed,
  // but the successor may never be self).
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(ring.SuccessorOf(s), s);
    EXPECT_EQ(ring.BackupOf(77), ring.SuccessorOf(ring.PrimaryOf(77)));
  }
  // A different seed moves the cut points.
  kv::ConsistentHashRing moved(4, 16, 43);
  int diffs = 0;
  for (std::uint64_t k = 1; k <= 1'000; ++k) {
    if (moved.PrimaryOf(k) != ring.PrimaryOf(k)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(HashRing, RejectsDegenerateShapes) {
  EXPECT_THROW(kv::ConsistentHashRing(0, 16), std::invalid_argument);
  EXPECT_THROW(kv::ConsistentHashRing(2, 0), std::invalid_argument);
}

TEST(KvService, HealthyRunAnswersEveryGetAcrossAllTenants) {
  KvServiceConfig cfg = SmallConfig();
  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(r.gets, 180u);  // 3 tenants x 60
  EXPECT_EQ(r.unanswered, 0u);
  EXPECT_EQ(r.detour_responses, 0u);
  EXPECT_EQ(r.host_reissues, 0u);
  EXPECT_EQ(r.reroutes, 0u);
  EXPECT_EQ(r.qp_errors, 0u);
  EXPECT_GT(r.keys_visible, 1'000u);
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_GE(r.p999_us, r.p99_us);
  ASSERT_EQ(r.tenants.size(), 3u);
  for (const auto& t : r.tenants) {
    EXPECT_EQ(t.gets, 60u);
    EXPECT_GT(t.p999_us, 0.0);
  }
}

TEST(KvService, CrashedShardOffloadDetourBoundsTheBlipHostBaselineStalls) {
  KvServiceConfig cfg = SmallConfig();
  FaultEntry crash;
  crash.server = 1;
  crash.kind = FaultKind::kCrash;
  // Chosen (deterministic sim, fixed seed) so the crash lands while a get's
  // trigger is already delivered-and-acked but its response is still in
  // flight — the silent-loss window where no failure CQE would ever arrive
  // on its own. The keepalive probe must produce it.
  crash.down_at = 34'000;
  cfg.faults.entries.push_back(crash);

  const KvServiceResult off = RunKvService(cfg);
  EXPECT_EQ(off.gets, 180u);  // every get answered despite the dead shard
  EXPECT_EQ(off.unanswered, 0u);
  EXPECT_GT(off.detour_responses, 0u);  // the chain, not the host, failed over
  EXPECT_GT(off.reroutes, 0u);          // later gets route straight to backup
  // The silent-loss race (trigger acked, response flushed by the crash) is
  // what the keepalive probes exist for — the crash must have engaged them.
  EXPECT_GT(off.probes_sent, 0u);
  EXPECT_EQ(off.faults_applied, 1u);

  KvServiceConfig host_cfg = cfg;
  host_cfg.policy = FailoverPolicy::kHostReissue;
  const KvServiceResult host = RunKvService(host_cfg);
  EXPECT_EQ(host.gets, 180u);
  EXPECT_EQ(host.unanswered, 0u);
  EXPECT_EQ(host.detour_responses, 0u);
  EXPECT_GT(host.host_reissues, 0u);  // the RPC-timeout watchdog did the work

  // The comparison the system exists for: the NIC detour bounds the outage
  // to (roughly) the retry-budget exhaustion time, while the host baseline
  // waits out the conservative multi-RTO application timer first.
  EXPECT_GT(off.max_blip_us, 0.0);
  EXPECT_LT(off.max_blip_us, host.max_blip_us);
  EXPECT_LT(off.p999_us, host.p999_us);
  // Crash detection is a dead-peer NAK (no multi-RTO wait), so even the
  // detour's worst blip sits far under the host's ~4.2 ms timer.
  EXPECT_LT(off.max_blip_us, 1'000.0);
  EXPECT_GT(host.max_blip_us, 3'000.0);
}

TEST(KvService, BlackholeWindowHealsAndServiceRecovers) {
  KvServiceConfig cfg = SmallConfig();
  cfg.gets_per_tenant = 80;
  FaultEntry bh;
  bh.server = 0;
  bh.kind = FaultKind::kBlackhole;
  bh.down_at = 30'000;
  bh.up_at = sim::Millis(3);
  cfg.faults.entries.push_back(bh);

  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(r.gets, 240u);
  EXPECT_EQ(r.unanswered, 0u);
  // Budget exhaustion inside the window: the in-flight gets detoured, and
  // the heal re-armed the wrecked QPs for the post-window traffic.
  EXPECT_GT(r.detour_responses + r.reroutes, 0u);
  EXPECT_EQ(r.heals_applied, 1u);
  EXPECT_GT(r.qp_rearms, 0u);
  EXPECT_GT(r.rto_fires, 0u);
}

TEST(KvService, SameSeedRunsAreBitStable) {
  KvServiceConfig cfg = SmallConfig();
  FaultEntry crash;
  crash.server = 2;
  crash.kind = FaultKind::kCrash;
  crash.down_at = 50'000;
  cfg.faults.entries.push_back(crash);
  const KvServiceResult a = RunKvService(cfg);
  const KvServiceResult b = RunKvService(cfg);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.avg_us, b.avg_us);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.p999_us, b.p999_us);
  EXPECT_EQ(a.max_blip_us, b.max_blip_us);
  EXPECT_EQ(a.detour_responses, b.detour_responses);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].p999_us, b.tenants[t].p999_us);
    EXPECT_EQ(a.tenants[t].max_blip_us, b.tenants[t].max_blip_us);
  }
}

TEST(KvService, RnrStallWindowRecoversTransiently) {
  KvServiceConfig cfg = SmallConfig();
  cfg.rnr_retry_count = 16;  // generous budget: the stall stays transient
  FaultEntry stall;
  stall.server = 0;
  stall.kind = FaultKind::kRnrStall;
  stall.down_at = 20'000;
  stall.up_at = sim::Millis(2);
  stall.rnr_count = 3;
  cfg.faults.entries.push_back(stall);
  const KvServiceResult r = RunKvService(cfg);
  EXPECT_EQ(r.gets, 180u);
  EXPECT_EQ(r.unanswered, 0u);
  EXPECT_GT(r.rnr_naks, 0u);
  EXPECT_EQ(r.detour_responses, 0u);  // backoff absorbed it; no failover
}

TEST(KvService, MalformedConfigsThrow) {
  KvServiceConfig cfg = SmallConfig();
  cfg.shards = 1;  // no chain successor
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  cfg.put_fraction = 1.5;  // not a fraction
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  cfg.put_fraction = 0.5;
  cfg.value_len = 8;  // versioned values need room past the tag
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  cfg.resync_window = 0;
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  FaultEntry flaky;
  flaky.server = 0;
  flaky.kind = FaultKind::kFlaky;
  flaky.down_at = 1'000;
  flaky.up_at = 2'000;
  flaky.flaky_loss = 2.0;  // not a probability
  cfg.faults.entries.push_back(flaky);
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  FaultEntry a;  // overlapping windows on the same shard
  a.server = 0;
  a.kind = FaultKind::kBlackhole;
  a.down_at = 1'000;
  a.up_at = 5'000;
  FaultEntry b = a;
  b.down_at = 3'000;
  b.up_at = 7'000;
  cfg.faults.entries.push_back(a);
  cfg.faults.entries.push_back(b);
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  FaultEntry oob;
  oob.server = 9;
  oob.down_at = 1'000;
  cfg.faults.entries.push_back(oob);
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);

  cfg = SmallConfig();
  FaultEntry inverted;
  inverted.server = 0;
  inverted.down_at = 5'000;
  inverted.up_at = 4'000;
  cfg.faults.entries.push_back(inverted);
  EXPECT_THROW(RunKvService(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace redn::test
