// Edge cases and failure-injection tests for the RNIC engine: zero-length
// ops, scatter-list limits, waiter bookkeeping, rate-limiter precision,
// mid-chain teardown, and utilisation accounting.
#include <gtest/gtest.h>

#include "sim/stats.h"
#include "testbed.h"

namespace redn::test {
namespace {

using verbs::AwaitCqe;
using verbs::AwaitCqes;
using verbs::Cqe;
using verbs::MakeEnable;
using verbs::MakeNoop;
using verbs::MakeWait;
using verbs::MakeWrite;
using verbs::PostSend;
using verbs::PostSendNow;

class EdgeTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(EdgeTest, ZeroLengthWriteCompletes) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 8);
  Buffer dst = bed.Alloc(bed.server, 8);
  dst.SetU64(0, 0x55);
  PostSendNow(cqp, MakeWrite(src.addr(), 0, src.lkey(), dst.addr(), dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0x55u);  // untouched
}

TEST_F(EdgeTest, ZeroLengthSendConsumesRecv) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 8);
  verbs::RecvWr rwr;
  rwr.wr_id = 5;
  verbs::PostRecv(sqp, rwr);
  PostSendNow(cqp, verbs::MakeSend(src.addr(), 0, src.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
  EXPECT_EQ(cqe.wr_id, 5u);
  EXPECT_EQ(cqe.byte_len, 0u);
}

TEST_F(EdgeTest, SendLargerThanScatterListFailsRecv) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.server, 8);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = 8;  // too small for a 64-byte send
  rwr.lkey = dst.lkey();
  verbs::PostRecv(sqp, rwr);
  PostSendNow(cqp, verbs::MakeSend(src.addr(), 64, src.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kLocalAccessError);
}

TEST_F(EdgeTest, SixteenScatterEntriesWork) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 16 * 8);
  Buffer dst = bed.Alloc(bed.server, 16 * 8);
  for (int i = 0; i < 16; ++i) src.SetU64(i, 100 + i);
  std::vector<rnic::Sge> sges;
  for (int i = 0; i < 16; ++i) {
    // reverse order so scatter targets are distinguishable
    sges.push_back({dst.addr() + (15 - i) * 8, 8, dst.lkey()});
  }
  verbs::RecvWr rwr;
  rwr.sge_table = sges.data();
  rwr.sge_count = 16;
  verbs::PostRecv(sqp, rwr);
  PostSendNow(cqp, verbs::MakeSend(src.addr(), 16 * 8, src.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &cqe));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(dst.U64(15 - i), 100u + i);
}

TEST_F(EdgeTest, MultipleWaitersOnOneCqAllWake) {
  rnic::QueuePair* worker = bed.Loopback(bed.client);
  Buffer flags = bed.Alloc(bed.client, 32);
  Buffer one = bed.Alloc(bed.client, 8);
  one.SetU64(0, 1);
  std::vector<rnic::QueuePair*> waiters;
  for (int w = 0; w < 4; ++w) {
    rnic::QueuePair* qp = bed.Loopback(bed.client);
    PostSend(qp, MakeWait(worker->send_cq, 1));
    PostSend(qp, MakeWrite(one.addr(), 8, one.lkey(), flags.addr() + w * 8,
                           flags.rkey()));
    verbs::RingDoorbell(qp);
    waiters.push_back(qp);
  }
  bed.sim.RunUntil(sim::Micros(30));
  for (int w = 0; w < 4; ++w) EXPECT_EQ(flags.U64(w), 0u);
  PostSendNow(worker, MakeNoop());
  bed.sim.Run();
  for (int w = 0; w < 4; ++w) EXPECT_EQ(flags.U64(w), 1u);
}

TEST_F(EdgeTest, WaitThresholdsFarAheadStayBlocked) {
  rnic::QueuePair* worker = bed.Loopback(bed.client);
  rnic::QueuePair* waiter = bed.Loopback(bed.client);
  PostSend(waiter, MakeWait(worker->send_cq, 100));
  PostSend(waiter, MakeNoop());
  verbs::RingDoorbell(waiter);
  for (int i = 0; i < 99; ++i) PostSend(worker, MakeNoop());
  verbs::RingDoorbell(worker);
  bed.sim.Run();
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(waiter->send_cq, 1, &cqe), 0);
  PostSendNow(worker, MakeNoop());  // the 100th
  bed.sim.Run();
  EXPECT_EQ(bed.client.PollCq(waiter->send_cq, 1, &cqe), 1);
}

TEST_F(EdgeTest, EnableIsMonotonicNotResettable) {
  rnic::QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true);
  rnic::QueuePair* ctrl = bed.Loopback(bed.client);
  for (int i = 0; i < 4; ++i) PostSend(chain, MakeNoop());
  PostSend(ctrl, MakeEnable(chain, 3));
  PostSend(ctrl, MakeEnable(chain, 1));  // lower limit must not regress
  verbs::RingDoorbell(ctrl);
  bed.sim.Run();
  Cqe cqe;
  int n = 0;
  while (bed.client.PollCq(chain->send_cq, 1, &cqe) == 1) ++n;
  EXPECT_EQ(n, 3);
}

// HostEnable on a non-managed queue must snapshot up to the new limit at
// enable time, exactly like the ENABLE verb does: WQE bytes rewritten after
// the enable but before execution reaches the slot are invisible.
TEST_F(EdgeTest, HostEnableSnapshotsNonManagedLikeEnableVerb) {
  rnic::QueuePair* qp = bed.Loopback(bed.client);
  Buffer a = bed.Alloc(bed.client, 64);
  Buffer b = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  a.SetU64(0, 0xaaaa);
  b.SetU64(0, 0xbbbb);

  // Slot 8 sits beyond the prefetch batch, so without the enable-time
  // snapshot it would be fetched lazily when execution reaches it — after
  // the rewrite below.
  std::uint64_t wr_idx = 0;
  for (int i = 0; i < 8; ++i) PostSend(qp, MakeNoop(/*signaled=*/false));
  wr_idx = PostSend(qp, MakeWrite(a.addr(), 8, a.lkey(), dst.addr(), dst.rkey()));
  bed.client.HostEnable(qp, 9);

  // Rewrite the gather address once the enable's snapshot has been taken
  // (doorbell MMIO delay) but long before slot 8 executes.
  bed.sim.After(rnic::Calibration{}.doorbell_mmio + 50, [&] {
    rnic::dma::WriteU64(qp->sq.SlotAddr(wr_idx, rnic::WqeField::kLocalAddr),
                        b.addr());
  });

  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xaaaau)
      << "host enable executed post-enable WQE bytes; ENABLE-verb parity lost";
}

TEST_F(EdgeTest, RateLimitedQueueKeepsExactRate) {
  rnic::QpConfig c;
  c.sq_depth = 512;
  c.send_cq = bed.client.CreateCq();
  c.recv_cq = bed.client.CreateCq();
  c.rate_ops_per_sec = 100'000;  // 10 us gap
  rnic::QueuePair* qp = bed.client.CreateQp(c);
  rnic::ConnectSelf(qp);
  const int n = 50;
  for (int i = 0; i < n; ++i) PostSend(qp, MakeNoop());
  verbs::RingDoorbell(qp);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, n, &cqe));
  const double us = sim::ToMicros(bed.sim.now());
  EXPECT_GE(us, (n - 1) * 10.0);
  EXPECT_LE(us, n * 10.0 + 20.0);
}

TEST_F(EdgeTest, RateLimitReconfigureForgetsStaleSchedule) {
  rnic::QpConfig c;
  c.sq_depth = 64;
  c.send_cq = bed.client.CreateCq();
  c.recv_cq = bed.client.CreateCq();
  c.rate_ops_per_sec = 1'000;  // 1 ms gap
  rnic::QueuePair* qp = bed.client.CreateQp(c);
  rnic::ConnectSelf(qp);
  for (int i = 0; i < 3; ++i) PostSend(qp, MakeNoop());
  verbs::RingDoorbell(qp);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 3, &cqe));
  // The limiter's cursor now points ~1 ms into the future. Lifting the cap
  // must forget that schedule: the next WQE paces from now, not from the
  // slot computed under the old gap.
  bed.client.SetRateLimit(qp, 0.0);
  const sim::Nanos before = bed.sim.now();
  PostSend(qp, MakeNoop());
  verbs::RingDoorbell(qp);
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_LT(bed.sim.now() - before, sim::Micros(50))
      << "first WQE after reconfigure still delayed by the stale rate slot";

  // Re-arming a (different) rate also starts fresh rather than inheriting
  // the old cursor.
  bed.client.SetRateLimit(qp, 1e6);  // 1 us gap
  const sim::Nanos t0 = bed.sim.now();
  for (int i = 0; i < 4; ++i) PostSend(qp, MakeNoop());
  verbs::RingDoorbell(qp);
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 4, &cqe));
  const double us = sim::ToMicros(bed.sim.now() - t0);
  EXPECT_GE(us, 3.0);   // paced at the new gap
  EXPECT_LE(us, 10.0);  // but not by any leftover millisecond slot
}

TEST_F(EdgeTest, ManagedRingWrapRefetchesSlotZeroOnSecondLap) {
  // WQ recycling (§3.4) across the ring boundary: a 4-deep managed queue
  // enabled past its posted count re-executes slot 0 on the second lap, and
  // doorbell order means that second execution must be fetched *then* — in
  // its modified form.
  rnic::QueuePair* qp = bed.Loopback(bed.client, /*managed=*/true,
                                     /*depth=*/4);
  Buffer src = bed.Alloc(bed.client, 128);
  Buffer dst = bed.Alloc(bed.client, 8);
  src.SetU64(0, 0x11);
  src.SetU64(8, 0x22);  // at src.addr() + 64, where the ADD shifts the gather

  // Slot 0: the lap-sensitive WRITE. Slot 1: self-modifies slot 0's gather
  // address (+64). Slot 2: barrier until both completed. Slot 3: padding.
  PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                         /*signaled=*/true));
  PostSend(qp, verbs::MakeFetchAdd(
                   qp->sq.SlotAddr(0, rnic::WqeField::kLocalAddr),
                   qp->sq_mr.rkey, 64));
  PostSend(qp, MakeWait(qp->send_cq, 2));
  PostSend(qp, MakeNoop(/*signaled=*/false));

  // Limit 5 > posted 4: index 4 wraps onto ring slot 0 for a second lap.
  bed.client.HostEnable(qp, 5);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 3, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0x22u)
      << "second-lap slot 0 executed a stale snapshot, not the modified WQE";
  EXPECT_EQ(qp->sq.next_exec, 5u);
  // Each executed slot was individually fetched (no prefetch): 5 fetches.
  EXPECT_EQ(bed.client.counters().managed_fetches, 5u);
}

TEST_F(EdgeTest, WriteInFlightWhenPeerDiesFailsWithoutTouchingMemory) {
  auto [cqp, sqp] = bed.ConnectedPair();
  rnic::Connect(cqp, sqp, 10'000);  // long wire: the kill lands mid-flight
  Buffer src = bed.Alloc(bed.client, 8);
  Buffer dst = bed.Alloc(bed.server, 8);
  src.SetU64(0, 0x77);
  sqp->owner_pid = 9;
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey()));
  // Issue happens ~0.8 us in; arrival ~11 us. Kill in between.
  bed.sim.At(sim::Micros(5), [&] { bed.server.KillProcessResources(9); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
  EXPECT_EQ(dst.U64(0), 0u) << "bytes landed in a dead process's memory";
}

TEST_F(EdgeTest, SendInFlightWhenPeerDiesConsumesNoRecv) {
  auto [cqp, sqp] = bed.ConnectedPair();
  rnic::Connect(cqp, sqp, 10'000);
  Buffer src = bed.Alloc(bed.client, 8);
  Buffer dst = bed.Alloc(bed.server, 8);
  verbs::RecvWr rwr;
  rwr.local_addr = dst.addr();
  rwr.length = 8;
  rwr.lkey = dst.lkey();
  verbs::PostRecv(sqp, rwr);
  sqp->owner_pid = 9;
  PostSendNow(cqp, verbs::MakeSend(src.addr(), 8, src.lkey()));
  bed.sim.At(sim::Micros(5), [&] { bed.server.KillProcessResources(9); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
  EXPECT_EQ(sqp->rq.consumed, 0u) << "a dead QP consumed a RECV";
}

TEST_F(EdgeTest, ReadInFlightWhenPeerDiesFailsInsteadOfHanging) {
  auto [cqp, sqp] = bed.ConnectedPair();
  rnic::Connect(cqp, sqp, 10'000);
  Buffer src = bed.Alloc(bed.server, 8);
  Buffer dst = bed.Alloc(bed.client, 8);
  sqp->owner_pid = 9;
  PostSendNow(cqp, verbs::MakeRead(dst.addr(), 8, dst.lkey(), src.addr(),
                                   src.rkey()));
  bed.sim.At(sim::Micros(5), [&] { bed.server.KillProcessResources(9); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe))
      << "READ to a dying peer was dropped silently — requester hangs";
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
}

TEST_F(EdgeTest, AtomicInFlightWhenPeerDiesFailsAndSkipsRmw) {
  auto [cqp, sqp] = bed.ConnectedPair();
  rnic::Connect(cqp, sqp, 10'000);
  Buffer word = bed.Alloc(bed.server, 8);
  word.SetU64(0, 5);
  sqp->owner_pid = 9;
  PostSendNow(cqp, verbs::MakeFetchAdd(word.addr(), word.rkey(), 1));
  bed.sim.At(sim::Micros(5), [&] { bed.server.KillProcessResources(9); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
  EXPECT_EQ(word.U64(0), 5u) << "RMW executed against a dead process";
}

TEST(EdgeCrash, AtomicKilledBetweenCheckAndRmwFlushes) {
  // The narrowest window: the peer passes the protection check at request
  // arrival, then dies before the atomic unit runs the RMW. The completion
  // must report failure — a success CQE would claim remote memory changed.
  rnic::Calibration cal;
  cal.atomic_unit_service = 5'000;  // stretch the check->RMW window
  TestBed bed(rnic::NicConfig::ConnectX5(), cal);
  auto [cqp, sqp] = bed.ConnectedPair();
  rnic::Connect(cqp, sqp, 10'000);
  Buffer word = bed.Alloc(bed.server, 8);
  word.SetU64(0, 5);
  sqp->owner_pid = 9;
  PostSendNow(cqp, verbs::MakeFetchAdd(word.addr(), word.rkey(), 1));
  // t_req ~10.8 us, RMW at ~15.8 us: kill at 13 us lands inside the window.
  bed.sim.At(sim::Micros(13), [&] { bed.server.KillProcessResources(9); });
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError)
      << "atomic completed successfully although the RMW never ran";
  EXPECT_EQ(word.U64(0), 5u);
}

TEST_F(EdgeTest, RemoteWriteAfterServerShrinksMrFaults) {
  // ibv_rereg_mr keeps the key values: a client holding the old rkey must
  // fault past the new bounds even though the server NIC cached the old
  // extent (the MrCacheEntry epoch check, see rnic/memory.h).
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 8);
  Buffer dst = bed.Alloc(bed.server, 1024);
  // Warm the server-side remote MR cache with a far-end write.
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr() + 512,
                             dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  ASSERT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  // The server shrinks the registration to the first 256 bytes.
  ASSERT_TRUE(bed.server.pd().Reregister(dst.mr.lkey, dst.bytes(), 256,
                                         rnic::kAccessAll));
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr() + 512,
                             dst.rkey()));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError)
      << "stale cached extent satisfied a write past the shrunk region";
}

TEST_F(EdgeTest, KilledQpStopsMidChain) {
  rnic::QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true);
  rnic::QueuePair* ctrl = bed.Loopback(bed.client);
  Buffer counter = bed.Alloc(bed.client, 8);
  chain->owner_pid = 42;
  ctrl->owner_pid = 42;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    PostSend(chain, verbs::MakeFetchAdd(counter.addr(), counter.rkey(), 1));
  }
  for (int i = 0; i < n; ++i) {
    if (i > 0) PostSend(ctrl, MakeWait(chain->send_cq, i));
    PostSend(ctrl, MakeEnable(chain, i + 1));
  }
  verbs::RingDoorbell(ctrl);
  bed.sim.RunUntil(sim::Micros(20));  // let a few iterations run
  bed.client.KillProcessResources(42);
  bed.sim.Run();
  const std::uint64_t at_kill = counter.U64(0);
  EXPECT_GT(at_kill, 0u);
  EXPECT_LT(at_kill, static_cast<std::uint64_t>(n));
  bed.sim.RunUntil(bed.sim.now() + sim::Millis(1));
  EXPECT_EQ(counter.U64(0), at_kill);  // no further progress, ever
}

TEST_F(EdgeTest, DeadPeerFailsNewOps) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 8);
  Buffer dst = bed.Alloc(bed.server, 8);
  sqp->owner_pid = 7;
  bed.server.KillProcessResources(7);
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
}

TEST_F(EdgeTest, HasLiveQpsTracksKills) {
  auto [cqp, sqp] = bed.ConnectedPair();
  (void)cqp;
  EXPECT_TRUE(bed.server.HasLiveQps());
  sqp->owner_pid = 3;
  bed.server.KillProcessResources(3);
  EXPECT_FALSE(bed.server.HasLiveQps());
}

TEST_F(EdgeTest, UtilisationAccountingIsSane) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64 * 1024);
  Buffer dst = bed.Alloc(bed.server, 64 * 1024);
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    PostSend(cqp, MakeWrite(src.addr(), 64 * 1024, src.lkey(), dst.addr(),
                            dst.rkey(), i + 1 == n));
  }
  verbs::RingDoorbell(cqp);
  bed.sim.Run();
  const sim::Nanos window = bed.sim.now();
  // 20 x 64 KiB over the link: utilisation must be meaningful and <= 1.
  const double link = bed.client.LinkUtilisation(0, window);
  EXPECT_GT(link, 0.3);
  EXPECT_LE(link, 1.0);
  EXPECT_STREQ(bed.client.BusiestResource(window), "IB bw");
}

TEST_F(EdgeTest, CountersTallyExecutedWork) {
  rnic::QueuePair* qp = bed.Loopback(bed.client);
  Buffer b = bed.Alloc(bed.client, 64);
  PostSend(qp, MakeNoop());
  PostSend(qp, MakeWrite(b.addr(), 8, b.lkey(), b.addr() + 8, b.rkey()));
  PostSend(qp, verbs::MakeFetchAdd(b.addr() + 16, b.rkey(), 1));
  verbs::RingDoorbell(qp);
  bed.sim.Run();
  const auto& c = bed.client.counters();
  EXPECT_EQ(c.executed_by_opcode[int(rnic::Opcode::kNoop)], 1u);
  EXPECT_EQ(c.executed_by_opcode[int(rnic::Opcode::kWrite)], 1u);
  EXPECT_EQ(c.executed_by_opcode[int(rnic::Opcode::kFetchAdd)], 1u);
  EXPECT_EQ(c.TotalExecuted(), 3u);
  EXPECT_EQ(c.doorbells, 1u);
}

TEST_F(EdgeTest, PostSendOverflowThrows) {
  rnic::QpConfig c;
  c.sq_depth = 4;
  c.send_cq = bed.client.CreateCq();
  c.recv_cq = bed.client.CreateCq();
  rnic::QueuePair* qp = bed.client.CreateQp(c);
  rnic::ConnectSelf(qp);
  for (int i = 0; i < 4; ++i) PostSend(qp, MakeNoop());
  EXPECT_THROW(PostSend(qp, MakeNoop()), std::runtime_error);
}

TEST_F(EdgeTest, JitterPreservesMeanRoughly) {
  rnic::Calibration cal;
  cal.jitter_frac = 0.2;
  sim::Simulator sim;
  rnic::RnicDevice client(sim, rnic::NicConfig::ConnectX5(), cal, "c");
  rnic::RnicDevice server(sim, rnic::NicConfig::ConnectX5(), cal, "s");
  rnic::QpConfig cc;
  cc.sq_depth = 4096;
  cc.send_cq = client.CreateCq();
  cc.recv_cq = client.CreateCq();
  rnic::QueuePair* cqp = client.CreateQp(cc);
  rnic::QpConfig sc;
  sc.send_cq = server.CreateCq();
  sc.recv_cq = server.CreateCq();
  rnic::QueuePair* sqp = server.CreateQp(sc);
  rnic::Connect(cqp, sqp, cal.net_one_way);
  auto buf = std::make_unique<std::byte[]>(64);
  auto cmr = client.pd().Register(buf.get(), 64, rnic::kAccessAll);
  auto sbuf = std::make_unique<std::byte[]>(64);
  auto smr = server.pd().Register(sbuf.get(), 64, rnic::kAccessAll);
  sim::LatencyRecorder rec;
  Cqe cqe;
  for (int i = 0; i < 400; ++i) {
    const sim::Nanos t0 = sim.now();
    PostSendNow(cqp, MakeWrite(cmr.addr, 64, cmr.lkey, smr.addr, smr.rkey));
    ASSERT_TRUE(AwaitCqe(sim, client, cqp->send_cq, &cqe));
    rec.Add(sim.now() - t0);
  }
  EXPECT_NEAR(rec.MeanUs(), 1.6, 0.1);            // mean preserved
  EXPECT_GT(rec.MaxNs() - rec.MinNs(), 20);       // but samples vary
}

}  // namespace
}  // namespace redn::test
