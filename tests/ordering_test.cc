// Tests for the three ordering modes of §3.1 and the semantics RedN's
// self-modifying programs depend on: prefetch staleness, WAIT/ENABLE
// gating, managed-queue late fetch, and WQ recycling.
#include <gtest/gtest.h>

#include "testbed.h"

namespace redn::test {
namespace {

using verbs::AwaitCqe;
using verbs::AwaitCqes;
using verbs::Cqe;
using verbs::MakeEnable;
using verbs::MakeNoop;
using verbs::MakeWait;
using verbs::MakeWrite;
using verbs::PostSend;
using verbs::PostSendNow;

class OrderingTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(OrderingTest, WqOrderExecutesInOrder) {
  QueuePair* qp = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  src.SetU64(0, 1);
  src.SetU64(1, 2);
  // Two writes to the same destination word: the later one must win.
  PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey()));
  PostSend(qp, MakeWrite(src.addr() + 8, 8, src.lkey(), dst.addr(), dst.rkey()));
  verbs::RingDoorbell(qp);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 2, &cqe));
  EXPECT_EQ(dst.U64(0), 2u);
}

TEST_F(OrderingTest, PrefetchStalenessOnPlainQueue) {
  // The core hazard motivating doorbell ordering (§3.1): on a non-managed
  // queue the NIC snapshots WQEs at doorbell time, so modifying a posted
  // WQE afterwards has NO effect on execution.
  QueuePair* qp = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  src.SetU64(0, 0xAA);

  const std::uint64_t idx = PostSend(
      qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey()));
  verbs::RingDoorbell(qp);
  // Let the doorbell+fetch happen, then flip the WQE to target dst+8.
  bed.sim.RunUntil(bed.sim.now() + sim::Micros(0.7));
  rnic::dma::WriteU64(verbs::WqeFieldAddr(qp, idx, rnic::WqeField::kRemoteAddr),
                      dst.addr() + 8);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_EQ(dst.U64(0), 0xAAu);  // stale (fetched) version executed
  EXPECT_EQ(dst.U64(1), 0u);     // the modification was invisible
}

TEST_F(OrderingTest, ManagedQueueHonoursLateModification) {
  // Same experiment on a managed queue: the WQE is fetched one-by-one at
  // ENABLE time, so the modification IS honoured. This asymmetry is what
  // makes self-modifying RDMA programs possible.
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true);
  QueuePair* ctrl = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  src.SetU64(0, 0xBB);

  const std::uint64_t idx = PostSend(
      chain, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey()));
  // Modify BEFORE enabling: target dst+8 instead.
  rnic::dma::WriteU64(
      verbs::WqeFieldAddr(chain, idx, rnic::WqeField::kRemoteAddr),
      dst.addr() + 8);
  PostSendNow(ctrl, MakeEnable(chain, 1));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, chain->send_cq, &cqe));
  EXPECT_EQ(dst.U64(0), 0u);
  EXPECT_EQ(dst.U64(1), 0xBBu);  // modified version executed
}

TEST_F(OrderingTest, ManagedQueueIgnoresDoorbell) {
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true);
  PostSend(chain, MakeNoop());
  verbs::RingDoorbell(chain);
  bed.sim.Run();
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(chain->send_cq, 1, &cqe), 0);
}

TEST_F(OrderingTest, EnableReleasesExactlyUpToLimit) {
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true);
  QueuePair* ctrl = bed.Loopback(bed.client);
  for (int i = 0; i < 3; ++i) PostSend(chain, MakeNoop());
  PostSendNow(ctrl, MakeEnable(chain, 2));
  bed.sim.Run();
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(chain->send_cq, 1, &cqe), 1);
  EXPECT_EQ(bed.client.PollCq(chain->send_cq, 1, &cqe), 1);
  EXPECT_EQ(bed.client.PollCq(chain->send_cq, 1, &cqe), 0);  // third gated
  PostSendNow(ctrl, MakeEnable(chain, 3));
  bed.sim.Run();
  EXPECT_EQ(bed.client.PollCq(chain->send_cq, 1, &cqe), 1);
}

TEST_F(OrderingTest, WaitBlocksUntilCqThreshold) {
  QueuePair* worker = bed.Loopback(bed.client);
  QueuePair* waiter = bed.Loopback(bed.client);
  Buffer flag = bed.Alloc(bed.client, 8);
  Buffer one = bed.Alloc(bed.client, 8);
  one.SetU64(0, 1);

  // waiter: WAIT(worker_cq >= 1) then WRITE flag=1.
  PostSend(waiter, MakeWait(worker->send_cq, 1));
  PostSend(waiter,
           MakeWrite(one.addr(), 8, one.lkey(), flag.addr(), flag.rkey()));
  verbs::RingDoorbell(waiter);
  bed.sim.RunUntil(sim::Micros(50));
  EXPECT_EQ(flag.U64(0), 0u);  // still blocked

  PostSendNow(worker, MakeNoop());
  bed.sim.Run();
  EXPECT_EQ(flag.U64(0), 1u);
}

TEST_F(OrderingTest, WaitAlreadySatisfiedPassesImmediately) {
  QueuePair* worker = bed.Loopback(bed.client);
  QueuePair* waiter = bed.Loopback(bed.client);
  PostSendNow(worker, MakeNoop());
  bed.sim.Run();
  PostSend(waiter, MakeWait(worker->send_cq, 1));
  PostSend(waiter, MakeNoop());
  verbs::RingDoorbell(waiter);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, waiter->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
}

TEST_F(OrderingTest, UnsignaledCompletionInvisibleToWait) {
  // RedN's `break` trick (§3.4): clearing a WR's signaled flag makes the
  // next iteration's WAIT never fire.
  QueuePair* worker = bed.Loopback(bed.client);
  QueuePair* waiter = bed.Loopback(bed.client);
  PostSend(waiter, MakeWait(worker->send_cq, 1));
  PostSend(waiter, MakeNoop());
  verbs::RingDoorbell(waiter);

  PostSendNow(worker, MakeNoop(/*signaled=*/false));
  bed.sim.Run();
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(waiter->send_cq, 1, &cqe), 0);  // still blocked

  PostSendNow(worker, MakeNoop(/*signaled=*/true));
  bed.sim.Run();
  EXPECT_EQ(bed.client.PollCq(waiter->send_cq, 1, &cqe), 1);
}

TEST_F(OrderingTest, CompletionOrderChainSlopeMatchesPaper) {
  // Fig 8: completion ordering costs ~0.19 us per additional WR.
  QueuePair* qp = bed.Loopback(bed.client);
  const int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    if (i > 0) PostSend(qp, MakeWait(qp->send_cq, i));
    PostSend(qp, MakeNoop());
  }
  const sim::Nanos t0 = bed.sim.now();
  verbs::RingDoorbell(qp);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, kOps, &cqe));
  const double us = sim::ToMicros(bed.sim.now() - t0);
  const double slope = (us - 0.96) / (kOps - 1);
  EXPECT_NEAR(slope, 0.19, 0.03);
}

TEST_F(OrderingTest, WqRecyclingReexecutesSlots) {
  // §3.4: execution limits may exceed the posted count; the ring wraps and
  // old slots re-execute (index modulo capacity). With a depth-1 ring the
  // single ADD slot re-executes every round: k rounds accumulate k times.
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true, /*depth=*/1);
  QueuePair* ctrl = bed.Loopback(bed.client);
  Buffer counter = bed.Alloc(bed.client, 8);

  PostSend(chain, verbs::MakeFetchAdd(counter.addr(), counter.rkey(), 1));
  // Release the single posted slot 5 times: limit 5 > posted 1.
  for (int round = 1; round <= 5; ++round) {
    if (round > 1) PostSend(ctrl, MakeWait(chain->send_cq, round - 1));
    PostSend(ctrl, MakeEnable(chain, round));
  }
  verbs::RingDoorbell(ctrl);
  bed.sim.Run();
  EXPECT_EQ(counter.U64(0), 5u);
}

TEST_F(OrderingTest, RecycledManagedSlotSeesRewrittenContent) {
  // Recycling + managed fetch: rewriting the slot between rounds changes
  // what the next round executes (the basis of CPU-free unbounded loops).
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true, /*depth=*/1);
  QueuePair* ctrl = bed.Loopback(bed.client);
  // Both counters share one MR: the recycled WQE keeps its original rkey.
  Buffer words = bed.Alloc(bed.client, 16);
  struct View {
    Buffer* buf;
    std::size_t word;
    std::uint64_t addr() const { return buf->addr() + word * 8; }
    std::uint64_t U64(int) const { return buf->U64(word); }
  } a{&words, 0}, b{&words, 1};

  const std::uint64_t idx =
      PostSend(chain, verbs::MakeFetchAdd(a.addr(), words.rkey(), 1));
  PostSend(ctrl, MakeEnable(chain, 1));
  PostSend(ctrl, MakeWait(chain->send_cq, 1));
  // Rewrite the slot's target to `b` using a WRITE in the control chain.
  Buffer baddr = bed.Alloc(bed.client, 8);
  baddr.SetU64(0, b.addr());
  PostSend(ctrl, MakeWrite(baddr.addr(), 8, baddr.lkey(),
                           verbs::WqeFieldAddr(chain, idx,
                                               rnic::WqeField::kRemoteAddr),
                           chain->sq_mr.rkey));
  PostSend(ctrl, MakeWait(ctrl->send_cq, 1));
  PostSend(ctrl, MakeEnable(chain, 2));  // recycle the same slot
  verbs::RingDoorbell(ctrl);
  bed.sim.Run();
  EXPECT_EQ(a.U64(0), 1u);
  EXPECT_EQ(b.U64(0), 1u);
}

TEST_F(OrderingTest, DoorbellOrderSlopeMatchesPaper) {
  // Fig 8: doorbell ordering costs ~0.54 us per WR — the serialized fetch.
  QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true, 128);
  QueuePair* ctrl = bed.Loopback(bed.client);
  const int kOps = 40;
  for (int i = 0; i < kOps; ++i) PostSend(chain, MakeNoop());
  for (int i = 0; i < kOps; ++i) {
    if (i > 0) PostSend(ctrl, MakeWait(chain->send_cq, i));
    PostSend(ctrl, MakeEnable(chain, i + 1));
  }
  const sim::Nanos t0 = bed.sim.now();
  verbs::RingDoorbell(ctrl);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, chain->send_cq, kOps, &cqe));
  const double us = sim::ToMicros(bed.sim.now() - t0);
  const double slope = us / kOps;
  EXPECT_NEAR(slope, 0.54, 0.08);
}

TEST_F(OrderingTest, RatesDontDependOnPostOrderAcrossQueues) {
  // Two independent loopback queues on different PUs run concurrently:
  // total time must be far less than the serial sum (parallelism, §3.5).
  QueuePair* q1 = bed.Loopback(bed.client);
  QueuePair* q2 = bed.Loopback(bed.client);
  const int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    PostSend(q1, MakeNoop());
    PostSend(q2, MakeNoop());
  }
  verbs::RingDoorbell(q1);
  verbs::RingDoorbell(q2);
  const sim::Nanos t0 = bed.sim.now();
  bed.sim.Run();
  const double us = sim::ToMicros(bed.sim.now() - t0);
  const double serial_us = 2 * kOps * 0.17;
  EXPECT_LT(us, serial_us * 0.75);
}

}  // namespace
}  // namespace redn::test
