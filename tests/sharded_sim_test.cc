// Sharded-engine tests: conservative rounds, mailbox merge order, lookahead
// enforcement, stats aggregation, and the cross-shard device data paths.
// These are the tests the TSan CI stage runs — shards >= 2 use real threads.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/sharded.h"
#include "sim/transport.h"
#include "verbs/verbs.h"
#include "workload/experiments.h"

namespace redn::test {
namespace {

using sim::EventDomain;
using sim::Nanos;
using sim::ShardedSimulator;

// ---------------------------------------------------------------------------
// Engine-level: rounds, merge order, lookahead.
// ---------------------------------------------------------------------------

TEST(ShardedSim, SingleShardDelegatesToClassicLoop) {
  ShardedSimulator ssim(1);
  sim::Simulator plain;
  std::vector<int> a, b;
  for (int i = 0; i < 5; ++i) {
    ssim.shard(0).At(i * 10, [&a, i] { a.push_back(i); });
    plain.At(i * 10, [&b, i] { b.push_back(i); });
  }
  ssim.Run();
  plain.Run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(ssim.now(), plain.now());
  EXPECT_EQ(ssim.events_processed(), plain.events_processed());
  EXPECT_EQ(ssim.rounds(), 0u);  // never entered the windowed loop
}

TEST(ShardedSim, CrossShardPingPongIsDeterministic) {
  auto run_once = [](std::vector<std::string>* log) {
    ShardedSimulator ssim(2);
    ssim.SetLookaheadFloor(100);
    // Shard 0 pings shard 1 every lookahead; shard 1 pongs back. Each log
    // entry records (shard-local time, tag); the per-shard logs are merged
    // by the single-threaded test body after the run.
    std::vector<std::string> l0, l1;
    struct Ping {
      ShardedSimulator* s;
      std::vector<std::string>* l0;
      std::vector<std::string>* l1;
      int hops_left;
    };
    auto st = std::make_shared<Ping>(Ping{&ssim, &l0, &l1, 6});
    std::function<void(int)> hop = [st, &hop](int on_shard) {
      EventDomain& d = st->s->shard(on_shard);
      st->l0->push_back("hop@" + std::to_string(d.now()) + "/s" +
                        std::to_string(on_shard));
      if (--st->hops_left <= 0) return;
      const int other = 1 - on_shard;
      d.SendTo(other, d.now() + 100, [&hop, other] { hop(other); });
    };
    ssim.shard(0).At(0, [&hop] { hop(0); });
    ssim.Run();
    *log = l0;
    EXPECT_GT(ssim.rounds(), 1u);
    EXPECT_EQ(ssim.cross_shard_sends(), 5u);
    EXPECT_EQ(ssim.mailbox_merges(), 5u);
    EXPECT_EQ(ssim.pending_events(), 0u);
  };
  std::vector<std::string> first, second;
  run_once(&first);
  run_once(&second);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first, second);  // same-config rerun is bit-stable
  EXPECT_EQ(first.front(), "hop@0/s0");
  EXPECT_EQ(first.back(), "hop@500/s1");
}

TEST(ShardedSim, MessageOnHorizonBoundaryLandsInLaterRound) {
  // L = 100. Round 1 covers [0, 100): shard 0 sends a message due exactly
  // at the horizon (t=100 = 0 + L, the minimum legal lag). Shard 1 already
  // has local events at 99, 100, 101. The merged message runs at t=100
  // AFTER shard 1's own t=100 event (merge assigns a fresh, newer seq).
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(100);
  std::vector<std::string> log1;
  ssim.shard(1).At(99, [&log1] { log1.push_back("local99"); });
  ssim.shard(1).At(100, [&log1] { log1.push_back("local100"); });
  ssim.shard(1).At(101, [&log1] { log1.push_back("local101"); });
  ssim.shard(0).At(0, [&ssim, &log1] {
    ssim.shard(0).SendTo(1, 100, [&log1] { log1.push_back("msg100"); });
  });
  ssim.Run();
  const std::vector<std::string> want{"local99", "local100", "msg100",
                                      "local101"};
  EXPECT_EQ(log1, want);
}

TEST(ShardedSim, MergeTieBreakIsTimeSrcShardSeq) {
  // Three messages land on shard 2 at the same instant: two from shard 0
  // (send order A0, A1) and one from shard 1. A local event at the same
  // instant was scheduled first. Documented order: local (oldest dst seq),
  // then src-shard ascending, then per-pair send order. This is exactly
  // the order a single-shard run of the same schedule produces.
  auto run_once = []() {
    ShardedSimulator ssim(3);
    ssim.SetLookaheadFloor(50);
    std::vector<std::string> log;
    ssim.shard(2).At(60, [&log] { log.push_back("local"); });
    ssim.shard(0).SendTo(2, 60, [&log] { log.push_back("A0"); });
    ssim.shard(0).SendTo(2, 60, [&log] { log.push_back("A1"); });
    ssim.shard(1).SendTo(2, 60, [&log] { log.push_back("B0"); });
    ssim.Run();
    return log;
  };
  // Single-shard reference: same schedule, one domain, At in the same order.
  sim::Simulator ref;
  std::vector<std::string> ref_log;
  ref.At(60, [&ref_log] { ref_log.push_back("local"); });
  ref.At(60, [&ref_log] { ref_log.push_back("A0"); });
  ref.At(60, [&ref_log] { ref_log.push_back("A1"); });
  ref.At(60, [&ref_log] { ref_log.push_back("B0"); });
  ref.Run();
  const auto got = run_once();
  EXPECT_EQ(got, ref_log);
  EXPECT_EQ(got, run_once());  // and bit-stable on rerun
}

TEST(ShardedSim, LookaheadViolationThrows) {
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(100);
  ssim.shard(0).At(0, [&ssim] {
    // Due in 1 ns < lookahead: the conservative window cannot cover it.
    ssim.shard(0).SendTo(1, 1, [] {});
  });
  EXPECT_THROW(ssim.Run(), std::logic_error);
}

TEST(ShardedSim, CrossShardSendWithoutLookaheadThrows) {
  ShardedSimulator ssim(2);
  EXPECT_THROW(ssim.shard(0).SendTo(1, 1'000'000, [] {}),
               std::logic_error);
}

TEST(ShardedSim, ZeroLookaheadFloorRejected) {
  ShardedSimulator ssim(2);
  EXPECT_THROW(ssim.SetLookaheadFloor(0), std::invalid_argument);
}

TEST(ShardedSim, PendingEventsCountsMailboxAndResetClearsIt) {
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(10);
  ssim.shard(0).At(5, [] {});
  ssim.shard(0).SendTo(1, 50, [] {});  // staged in the mailbox, undrained
  EXPECT_EQ(ssim.pending_events(), 2u);
  ssim.Reset();
  EXPECT_EQ(ssim.pending_events(), 0u);
  ssim.Run();  // nothing left; must not deliver the dropped message
  EXPECT_EQ(ssim.events_processed(), 0u);
  EXPECT_EQ(ssim.cross_shard_sends(), 1u);  // cumulative, like domain stats
}

TEST(ShardedSim, StatsAggregateAcrossShardsWithoutDoubleCounting) {
  ShardedSimulator ssim(4);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) ssim.shard(s).At(i, [] {});
  }
  EXPECT_EQ(ssim.pending_events(), 12u);
  ssim.Run();
  EXPECT_EQ(ssim.events_processed(), 12u);
  EXPECT_EQ(ssim.slab_hits(), 12u);
  EXPECT_EQ(ssim.heap_fallbacks(), 0u);
  EXPECT_EQ(ssim.pending_events(), 0u);
  std::uint64_t per_shard = 0;
  for (int s = 0; s < 4; ++s) per_shard += ssim.shard(s).events_processed();
  EXPECT_EQ(per_shard, ssim.events_processed());
}

// ---------------------------------------------------------------------------
// Device-level: cross-shard fabric data paths.
// ---------------------------------------------------------------------------

struct ShardedPair {
  explicit ShardedPair(int shards, int server_shard)
      : ssim(shards),
        fabric(std::make_unique<sim::Fabric>(/*switch_latency=*/50)),
        client(std::make_unique<rnic::RnicDevice>(
            ssim.shard(0), rnic::NicConfig::ConnectX5(), rnic::Calibration{},
            "client")),
        server(std::make_unique<rnic::RnicDevice>(
            ssim.shard(server_shard < shards ? server_shard : 0),
            rnic::NicConfig::ConnectX5(), rnic::Calibration{}, "server")) {
    client->AttachPort(0, *fabric, {25.0, 125});
    server->AttachPort(0, *fabric, {25.0, 125});
    cqp = MakeQp(*client);
    sqp = MakeQp(*server);
    rnic::ConnectOverFabric(cqp, sqp);
  }

  static rnic::QueuePair* MakeQp(rnic::RnicDevice& dev) {
    rnic::QpConfig c;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    return dev.CreateQp(c);
  }

  ShardedSimulator ssim;
  std::unique_ptr<sim::Fabric> fabric;
  std::unique_ptr<rnic::RnicDevice> client;
  std::unique_ptr<rnic::RnicDevice> server;
  rnic::QueuePair* cqp = nullptr;
  rnic::QueuePair* sqp = nullptr;
};

struct WriteOutcome {
  rnic::WcStatus status{};
  std::uint64_t landed = 0;
  Nanos end = 0;
};

WriteOutcome RunCrossWrite(int shards, int server_shard) {
  ShardedPair bed(shards, server_shard);
  auto src = std::make_unique<std::byte[]>(64);
  auto dst = std::make_unique<std::byte[]>(64);
  auto smr = bed.client->pd().Register(src.get(), 64, rnic::kAccessAll);
  auto dmr = bed.server->pd().Register(dst.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0xabcdef01u);
  verbs::PostSendNow(bed.cqp,
                     verbs::MakeWrite(smr.addr, 8, smr.lkey, dmr.addr,
                                      dmr.rkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  WriteOutcome out;
  EXPECT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  out.status = cqe.status;
  out.landed = rnic::dma::ReadU64(dmr.addr);
  out.end = bed.ssim.now();
  return out;
}

TEST(ShardedDevice, CrossShardWriteMatchesSingleShardBitExactly) {
  const WriteOutcome one = RunCrossWrite(1, 0);
  const WriteOutcome two = RunCrossWrite(2, 1);
  EXPECT_EQ(one.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(two.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(one.landed, 0xabcdef01u);
  EXPECT_EQ(two.landed, 0xabcdef01u);
  // An uncontended op's completion instant is placement-invariant: the
  // cross-shard split reserves the same pipes at the same instants.
  EXPECT_EQ(one.end, two.end);
  // And the sharded run reproduces itself.
  const WriteOutcome again = RunCrossWrite(2, 1);
  EXPECT_EQ(two.end, again.end);
}

TEST(ShardedDevice, CrossShardReadReturnsRemoteData) {
  ShardedPair bed(2, 1);
  auto src = std::make_unique<std::byte[]>(64);
  auto dst = std::make_unique<std::byte[]>(64);
  auto dmr = bed.client->pd().Register(dst.get(), 64, rnic::kAccessAll);
  auto smr = bed.server->pd().Register(src.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0x5eed5eedu);
  verbs::PostSendNow(
      bed.cqp, verbs::MakeRead(dmr.addr, 8, dmr.lkey, smr.addr, smr.rkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  ASSERT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(dmr.addr), 0x5eed5eedu);
  EXPECT_GT(bed.ssim.cross_shard_sends(), 0u);
}

TEST(ShardedDevice, CrossShardFetchAddReturnsOldValueAndUpdates) {
  ShardedPair bed(2, 1);
  auto ctr = std::make_unique<std::byte[]>(64);
  auto res = std::make_unique<std::byte[]>(64);
  auto cmr = bed.server->pd().Register(ctr.get(), 64, rnic::kAccessAll);
  auto rmr = bed.client->pd().Register(res.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(cmr.addr, 40);
  verbs::PostSendNow(bed.cqp, verbs::MakeFetchAdd(cmr.addr, cmr.rkey, 2,
                                                  rmr.addr, rmr.lkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  ASSERT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(cmr.addr), 42u);  // counter updated remotely
  EXPECT_EQ(rnic::dma::ReadU64(rmr.addr), 40u);  // old value returned
}

TEST(ShardedDevice, ZeroLatencyCrossShardLinkRejectedAtAttach) {
  ShardedSimulator ssim(2);
  sim::Fabric fabric(/*switch_latency=*/0);
  rnic::RnicDevice a(ssim.shard(0), rnic::NicConfig::ConnectX5(), {}, "a");
  rnic::RnicDevice b(ssim.shard(1), rnic::NicConfig::ConnectX5(), {}, "b");
  a.AttachPort(0, fabric, {25.0, 0});  // first endpoint: no pair yet, fine
  EXPECT_THROW(b.AttachPort(0, fabric, {25.0, 0}), std::invalid_argument);
  // Same-shard zero-latency attach stays legal.
  rnic::RnicDevice c(ssim.shard(0), rnic::NicConfig::ConnectX5(), {}, "c");
  EXPECT_NO_THROW(c.AttachPort(0, fabric, {25.0, 0}));
}

TEST(ShardedDevice, CrossShardTransportRejected) {
  ShardedPair bed(2, 1);
  sim::Transport transport(bed.ssim.shard(0), *bed.fabric,
                           sim::TransportConfig{});
  rnic::QueuePair* c2 = ShardedPair::MakeQp(*bed.client);
  rnic::QueuePair* s2 = ShardedPair::MakeQp(*bed.server);
  EXPECT_THROW(rnic::ConnectOverTransport(c2, s2, transport),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Workload-level: fixed-seed multi-NIC scale-out, shards in {1, 2, 4}.
// ---------------------------------------------------------------------------

workload::FabricScaleConfig SweepConfig(int shards) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 4;
  cfg.gets_per_client = 25;
  cfg.value_len = 2048;
  cfg.keys = 64;
  cfg.seed = 7;
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedWorkload, FabricScaleBitStableAcrossReruns) {
  // The determinism key is (seed, shards): for each shard count, two runs of
  // the identical config must agree on every measured field, bit for bit.
  for (const int shards : {1, 2, 4}) {
    const auto a = workload::RunFabricScale(SweepConfig(shards));
    const auto b = workload::RunFabricScale(SweepConfig(shards));
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(a.gets, 100u);
    EXPECT_EQ(a.gets, b.gets);
    EXPECT_EQ(a.duration_us, b.duration_us);
    EXPECT_EQ(a.avg_us, b.avg_us);
    EXPECT_EQ(a.p99_us, b.p99_us);
    EXPECT_EQ(a.server_tx_util, b.server_tx_util);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.mailbox_sends, b.mailbox_sends);
    EXPECT_EQ(a.sync_rounds, b.sync_rounds);
    EXPECT_EQ(a.shards, shards);
    EXPECT_EQ(a.error_cqes, 0u);
    if (shards > 1) {
      EXPECT_GT(a.mailbox_sends, 0u);
    }
  }
}

TEST(ShardedWorkload, FabricScaleValidatesShardConfig) {
  auto cfg = SweepConfig(2);
  cfg.packetized = true;
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg = SweepConfig(2);
  cfg.placement = {0};  // 4 clients need 4 entries
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg = SweepConfig(2);
  cfg.placement = {0, 1, 2, 0};  // shard 2 does not exist
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg = SweepConfig(2);
  cfg.server_shard = 5;
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace redn::test
