// Sharded-engine tests: conservative rounds, mailbox merge order, lookahead
// enforcement, stats aggregation, and the cross-shard device data paths.
// These are the tests the TSan CI stage runs — shards >= 2 use real threads.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rnic/device.h"
#include "sim/fabric.h"
#include "sim/sharded.h"
#include "sim/transport.h"
#include "verbs/verbs.h"
#include "workload/experiments.h"
#include "workload/kv_service.h"

namespace redn::test {
namespace {

using sim::EventDomain;
using sim::Nanos;
using sim::ShardedSimulator;

// ---------------------------------------------------------------------------
// Engine-level: rounds, merge order, lookahead.
// ---------------------------------------------------------------------------

TEST(ShardedSim, SingleShardDelegatesToClassicLoop) {
  ShardedSimulator ssim(1);
  sim::Simulator plain;
  std::vector<int> a, b;
  for (int i = 0; i < 5; ++i) {
    ssim.shard(0).At(i * 10, [&a, i] { a.push_back(i); });
    plain.At(i * 10, [&b, i] { b.push_back(i); });
  }
  ssim.Run();
  plain.Run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(ssim.now(), plain.now());
  EXPECT_EQ(ssim.events_processed(), plain.events_processed());
  EXPECT_EQ(ssim.rounds(), 0u);  // never entered the windowed loop
}

TEST(ShardedSim, CrossShardPingPongIsDeterministic) {
  auto run_once = [](std::vector<std::string>* log) {
    ShardedSimulator ssim(2);
    ssim.SetLookaheadFloor(100);
    // Shard 0 pings shard 1 every lookahead; shard 1 pongs back. Each log
    // entry records (shard-local time, tag); the per-shard logs are merged
    // by the single-threaded test body after the run.
    std::vector<std::string> l0, l1;
    struct Ping {
      ShardedSimulator* s;
      std::vector<std::string>* l0;
      std::vector<std::string>* l1;
      int hops_left;
    };
    auto st = std::make_shared<Ping>(Ping{&ssim, &l0, &l1, 6});
    std::function<void(int)> hop = [st, &hop](int on_shard) {
      EventDomain& d = st->s->shard(on_shard);
      st->l0->push_back("hop@" + std::to_string(d.now()) + "/s" +
                        std::to_string(on_shard));
      if (--st->hops_left <= 0) return;
      const int other = 1 - on_shard;
      d.SendTo(other, d.now() + 100, [&hop, other] { hop(other); });
    };
    ssim.shard(0).At(0, [&hop] { hop(0); });
    ssim.Run();
    *log = l0;
    EXPECT_GT(ssim.rounds(), 1u);
    EXPECT_EQ(ssim.cross_shard_sends(), 5u);
    EXPECT_EQ(ssim.mailbox_merges(), 5u);
    EXPECT_EQ(ssim.pending_events(), 0u);
  };
  std::vector<std::string> first, second;
  run_once(&first);
  run_once(&second);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first, second);  // same-config rerun is bit-stable
  EXPECT_EQ(first.front(), "hop@0/s0");
  EXPECT_EQ(first.back(), "hop@500/s1");
}

TEST(ShardedSim, MessageOnHorizonBoundaryLandsInLaterRound) {
  // L = 100. Round 1 covers [0, 100): shard 0 sends a message due exactly
  // at the horizon (t=100 = 0 + L, the minimum legal lag). Shard 1 already
  // has local events at 99, 100, 101. The merged message runs at t=100
  // AFTER shard 1's own t=100 event (merge assigns a fresh, newer seq).
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(100);
  std::vector<std::string> log1;
  ssim.shard(1).At(99, [&log1] { log1.push_back("local99"); });
  ssim.shard(1).At(100, [&log1] { log1.push_back("local100"); });
  ssim.shard(1).At(101, [&log1] { log1.push_back("local101"); });
  ssim.shard(0).At(0, [&ssim, &log1] {
    ssim.shard(0).SendTo(1, 100, [&log1] { log1.push_back("msg100"); });
  });
  ssim.Run();
  const std::vector<std::string> want{"local99", "local100", "msg100",
                                      "local101"};
  EXPECT_EQ(log1, want);
}

TEST(ShardedSim, MergeTieBreakIsTimeSrcShardSeq) {
  // Three messages land on shard 2 at the same instant: two from shard 0
  // (send order A0, A1) and one from shard 1. A local event at the same
  // instant was scheduled first. Documented order: local (oldest dst seq),
  // then src-shard ascending, then per-pair send order. This is exactly
  // the order a single-shard run of the same schedule produces.
  auto run_once = []() {
    ShardedSimulator ssim(3);
    ssim.SetLookaheadFloor(50);
    std::vector<std::string> log;
    ssim.shard(2).At(60, [&log] { log.push_back("local"); });
    ssim.shard(0).SendTo(2, 60, [&log] { log.push_back("A0"); });
    ssim.shard(0).SendTo(2, 60, [&log] { log.push_back("A1"); });
    ssim.shard(1).SendTo(2, 60, [&log] { log.push_back("B0"); });
    ssim.Run();
    return log;
  };
  // Single-shard reference: same schedule, one domain, At in the same order.
  sim::Simulator ref;
  std::vector<std::string> ref_log;
  ref.At(60, [&ref_log] { ref_log.push_back("local"); });
  ref.At(60, [&ref_log] { ref_log.push_back("A0"); });
  ref.At(60, [&ref_log] { ref_log.push_back("A1"); });
  ref.At(60, [&ref_log] { ref_log.push_back("B0"); });
  ref.Run();
  const auto got = run_once();
  EXPECT_EQ(got, ref_log);
  EXPECT_EQ(got, run_once());  // and bit-stable on rerun
}

TEST(ShardedSim, LookaheadViolationThrows) {
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(100);
  ssim.shard(0).At(0, [&ssim] {
    // Due in 1 ns < lookahead: the conservative window cannot cover it.
    ssim.shard(0).SendTo(1, 1, [] {});
  });
  EXPECT_THROW(ssim.Run(), std::logic_error);
}

TEST(ShardedSim, CrossShardSendWithoutLookaheadThrows) {
  ShardedSimulator ssim(2);
  EXPECT_THROW(ssim.shard(0).SendTo(1, 1'000'000, [] {}),
               std::logic_error);
}

TEST(ShardedSim, ZeroLookaheadFloorRejected) {
  ShardedSimulator ssim(2);
  EXPECT_THROW(ssim.SetLookaheadFloor(0), std::invalid_argument);
}

TEST(ShardedSim, PendingEventsCountsMailboxAndResetClearsIt) {
  ShardedSimulator ssim(2);
  ssim.SetLookaheadFloor(10);
  ssim.shard(0).At(5, [] {});
  ssim.shard(0).SendTo(1, 50, [] {});  // staged in the mailbox, undrained
  EXPECT_EQ(ssim.pending_events(), 2u);
  ssim.Reset();
  EXPECT_EQ(ssim.pending_events(), 0u);
  ssim.Run();  // nothing left; must not deliver the dropped message
  EXPECT_EQ(ssim.events_processed(), 0u);
  EXPECT_EQ(ssim.cross_shard_sends(), 1u);  // cumulative, like domain stats
}

TEST(ShardedSim, StatsAggregateAcrossShardsWithoutDoubleCounting) {
  ShardedSimulator ssim(4);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) ssim.shard(s).At(i, [] {});
  }
  EXPECT_EQ(ssim.pending_events(), 12u);
  ssim.Run();
  EXPECT_EQ(ssim.events_processed(), 12u);
  EXPECT_EQ(ssim.slab_hits(), 12u);
  EXPECT_EQ(ssim.heap_fallbacks(), 0u);
  EXPECT_EQ(ssim.pending_events(), 0u);
  std::uint64_t per_shard = 0;
  for (int s = 0; s < 4; ++s) per_shard += ssim.shard(s).events_processed();
  EXPECT_EQ(per_shard, ssim.events_processed());
}

// ---------------------------------------------------------------------------
// Device-level: cross-shard fabric data paths.
// ---------------------------------------------------------------------------

struct ShardedPair {
  explicit ShardedPair(int shards, int server_shard)
      : ssim(shards),
        fabric(std::make_unique<sim::Fabric>(/*switch_latency=*/50)),
        client(std::make_unique<rnic::RnicDevice>(
            ssim.shard(0), rnic::NicConfig::ConnectX5(), rnic::Calibration{},
            "client")),
        server(std::make_unique<rnic::RnicDevice>(
            ssim.shard(server_shard < shards ? server_shard : 0),
            rnic::NicConfig::ConnectX5(), rnic::Calibration{}, "server")) {
    client->AttachPort(0, *fabric, {25.0, 125});
    server->AttachPort(0, *fabric, {25.0, 125});
    cqp = MakeQp(*client);
    sqp = MakeQp(*server);
    rnic::ConnectOverFabric(cqp, sqp);
  }

  static rnic::QueuePair* MakeQp(rnic::RnicDevice& dev) {
    rnic::QpConfig c;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    return dev.CreateQp(c);
  }

  ShardedSimulator ssim;
  std::unique_ptr<sim::Fabric> fabric;
  std::unique_ptr<rnic::RnicDevice> client;
  std::unique_ptr<rnic::RnicDevice> server;
  rnic::QueuePair* cqp = nullptr;
  rnic::QueuePair* sqp = nullptr;
};

struct WriteOutcome {
  rnic::WcStatus status{};
  std::uint64_t landed = 0;
  Nanos end = 0;
};

WriteOutcome RunCrossWrite(int shards, int server_shard) {
  ShardedPair bed(shards, server_shard);
  auto src = std::make_unique<std::byte[]>(64);
  auto dst = std::make_unique<std::byte[]>(64);
  auto smr = bed.client->pd().Register(src.get(), 64, rnic::kAccessAll);
  auto dmr = bed.server->pd().Register(dst.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0xabcdef01u);
  verbs::PostSendNow(bed.cqp,
                     verbs::MakeWrite(smr.addr, 8, smr.lkey, dmr.addr,
                                      dmr.rkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  WriteOutcome out;
  EXPECT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  out.status = cqe.status;
  out.landed = rnic::dma::ReadU64(dmr.addr);
  out.end = bed.ssim.now();
  return out;
}

TEST(ShardedDevice, CrossShardWriteMatchesSingleShardBitExactly) {
  const WriteOutcome one = RunCrossWrite(1, 0);
  const WriteOutcome two = RunCrossWrite(2, 1);
  EXPECT_EQ(one.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(two.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(one.landed, 0xabcdef01u);
  EXPECT_EQ(two.landed, 0xabcdef01u);
  // An uncontended op's completion instant is placement-invariant: the
  // cross-shard split reserves the same pipes at the same instants.
  EXPECT_EQ(one.end, two.end);
  // And the sharded run reproduces itself.
  const WriteOutcome again = RunCrossWrite(2, 1);
  EXPECT_EQ(two.end, again.end);
}

TEST(ShardedDevice, CrossShardReadReturnsRemoteData) {
  ShardedPair bed(2, 1);
  auto src = std::make_unique<std::byte[]>(64);
  auto dst = std::make_unique<std::byte[]>(64);
  auto dmr = bed.client->pd().Register(dst.get(), 64, rnic::kAccessAll);
  auto smr = bed.server->pd().Register(src.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0x5eed5eedu);
  verbs::PostSendNow(
      bed.cqp, verbs::MakeRead(dmr.addr, 8, dmr.lkey, smr.addr, smr.rkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  ASSERT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(dmr.addr), 0x5eed5eedu);
  EXPECT_GT(bed.ssim.cross_shard_sends(), 0u);
}

TEST(ShardedDevice, CrossShardFetchAddReturnsOldValueAndUpdates) {
  ShardedPair bed(2, 1);
  auto ctr = std::make_unique<std::byte[]>(64);
  auto res = std::make_unique<std::byte[]>(64);
  auto cmr = bed.server->pd().Register(ctr.get(), 64, rnic::kAccessAll);
  auto rmr = bed.client->pd().Register(res.get(), 64, rnic::kAccessAll);
  rnic::dma::WriteU64(cmr.addr, 40);
  verbs::PostSendNow(bed.cqp, verbs::MakeFetchAdd(cmr.addr, cmr.rkey, 2,
                                                  rmr.addr, rmr.lkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  ASSERT_EQ(verbs::PollCq(bed.cqp, bed.cqp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rnic::dma::ReadU64(cmr.addr), 42u);  // counter updated remotely
  EXPECT_EQ(rnic::dma::ReadU64(rmr.addr), 40u);  // old value returned
}

TEST(ShardedDevice, ZeroLatencyCrossShardLinkRejectedAtAttach) {
  ShardedSimulator ssim(2);
  sim::Fabric fabric(/*switch_latency=*/0);
  rnic::RnicDevice a(ssim.shard(0), rnic::NicConfig::ConnectX5(), {}, "a");
  rnic::RnicDevice b(ssim.shard(1), rnic::NicConfig::ConnectX5(), {}, "b");
  a.AttachPort(0, fabric, {25.0, 0});  // first endpoint: no pair yet, fine
  EXPECT_THROW(b.AttachPort(0, fabric, {25.0, 0}), std::invalid_argument);
  // Same-shard zero-latency attach stays legal.
  rnic::RnicDevice c(ssim.shard(0), rnic::NicConfig::ConnectX5(), {}, "c");
  EXPECT_NO_THROW(c.AttachPort(0, fabric, {25.0, 0}));
}

TEST(ShardedDevice, CrossShardTransportConnectsAndDelivers) {
  // The lift this PR exists for: QPs on different shards connect over a
  // packetized transport, the SEND's DATA/ACK packets ride the mailbox, and
  // the per-flow counter snapshot sees exactly that flow's traffic.
  ShardedPair bed(2, 1);
  sim::Transport transport(bed.ssim.shard(0), *bed.fabric,
                           sim::TransportConfig{});
  rnic::QueuePair* c2 = ShardedPair::MakeQp(*bed.client);
  rnic::QueuePair* s2 = ShardedPair::MakeQp(*bed.server);
  rnic::ConnectOverTransport(c2, s2, transport);  // no longer rejected
  auto src = std::make_unique<std::byte[]>(256);
  auto dst = std::make_unique<std::byte[]>(256);
  auto smr = bed.client->pd().Register(src.get(), 256, rnic::kAccessAll);
  auto dmr = bed.server->pd().Register(dst.get(), 256, rnic::kAccessAll);
  rnic::dma::WriteU64(smr.addr, 0xfeedbee5u);
  verbs::RecvWr rwr;
  rwr.local_addr = dmr.addr;
  rwr.length = 256;
  rwr.lkey = dmr.lkey;
  verbs::PostRecv(s2, rwr);
  verbs::PostSendNow(c2, verbs::MakeSend(smr.addr, 256, smr.lkey));
  bed.ssim.Run();
  verbs::Cqe cqe;
  ASSERT_EQ(verbs::PollCq(c2, c2->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  ASSERT_EQ(verbs::PollCq(s2, s2->recv_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(cqe.byte_len, 256u);
  EXPECT_EQ(rnic::dma::ReadU64(dmr.addr), 0xfeedbee5u);
  EXPECT_GT(bed.ssim.cross_shard_sends(), 0u);
  // Per-flow accounting: the client->server flow carried the data packet;
  // the reverse flow carried none.
  EXPECT_GT(transport.FlowCounters(c2->flow).data_packets, 0u);
  EXPECT_EQ(transport.FlowCounters(s2->flow).data_packets, 0u);
  EXPECT_EQ(transport.counters().payload_bytes_delivered, 256u);
}

// ---------------------------------------------------------------------------
// Transport-level: split flows — sender half on shard 0, receiver half on
// shard 1, every DATA/ACK/NAK/RNR packet a timestamped mailbox message.
// ---------------------------------------------------------------------------

// Same legible arithmetic as transport_test.cc: 8 Gbps = 1 ns/byte.
sim::TransportConfig SplitConfig() {
  sim::TransportConfig cfg;
  cfg.mtu = 1000;
  cfg.header_bytes = 30;
  cfg.ack_bytes = 30;
  cfg.ack_every = 4;
  cfg.ack_delay = 2'000;
  cfg.rto = 20'000;
  return cfg;
}

// Raw protocol endpoints on two shards; the transport is homed on shard 0,
// so the a->b flow runs the split sender/receiver-half protocol.
struct SplitFlowBed {
  explicit SplitFlowBed(int shards, const sim::TransportConfig& cfg)
      : ssim(shards),
        fabric(std::make_unique<sim::Fabric>(/*switch_latency=*/50)) {
    a = fabric->Attach({8.0, 100}, "a", &ssim.shard(0));
    b = fabric->Attach({8.0, 100}, "b",
                       &ssim.shard(shards > 1 ? 1 : 0));
    tr = std::make_unique<sim::Transport>(ssim.shard(0), *fabric, cfg);
    flow = tr->OpenFlow(a, b);
  }
  ShardedSimulator ssim;
  std::unique_ptr<sim::Fabric> fabric;
  std::unique_ptr<sim::Transport> tr;
  int a = 0;
  int b = 0;
  int flow = 0;
};

TEST(ShardedTransport, DataLegLossRecoversAcrossTheMailbox) {
  // First packet of a 3-packet message force-dropped on the data leg: the
  // receiver half NAKs back through the mailbox, go-back-N rewinds the full
  // window where selective repeat resends exactly the hole.
  auto run = [](sim::TransportMode mode) {
    sim::TransportConfig cfg = SplitConfig();
    cfg.mode = mode;
    SplitFlowBed bed(2, cfg);
    bed.tr->DropNextData(1);
    std::vector<Nanos> delivered;
    bed.tr->SendMessage(bed.flow, 0, 3000,
                        [&](Nanos t) { delivered.push_back(t); });
    bed.ssim.Run();
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_LT(delivered[0], cfg.rto);  // NAK recovery beat the RTO
    EXPECT_EQ(bed.tr->counters().timeouts, 0u);
    EXPECT_EQ(bed.tr->counters().dropped_tx, 1u);
    EXPECT_GT(bed.ssim.cross_shard_sends(), 0u);
    return bed.tr->counters();
  };
  const auto gbn = run(sim::TransportMode::kGoBackN);
  EXPECT_EQ(gbn.nak_gobacks, 1u);
  EXPECT_EQ(gbn.retransmits, 3u);
  const auto sr = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_EQ(sr.nak_gobacks, 0u);
  EXPECT_EQ(sr.retransmits, 1u);
  EXPECT_EQ(sr.sack_retransmits, 1u);
}

TEST(ShardedTransport, AckLegLossTimesOutAndDeliversOnce) {
  // The boundary ACK evaporates on its way back across the mailbox: the
  // sender half's RTO fires, the duplicate is discarded by the receiver
  // half, and the message still delivers (and acks) exactly once.
  SplitFlowBed bed(2, SplitConfig());
  bed.tr->DropNextAcks(1);
  int delivered = 0;
  std::vector<Nanos> acked;
  bed.tr->SendMessage(bed.flow, 0, 500, [&](Nanos) { ++delivered; },
                      [&](Nanos t) { acked.push_back(t); });
  bed.ssim.Run();
  EXPECT_EQ(delivered, 1);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_GT(acked[0], SplitConfig().rto);
  EXPECT_EQ(bed.tr->counters().timeouts, 1u);
  EXPECT_EQ(bed.tr->counters().retransmits, 1u);
  EXPECT_EQ(bed.tr->counters().duplicates, 1u);
  EXPECT_EQ(bed.tr->counters().acks_dropped, 1u);
  EXPECT_EQ(bed.tr->counters().messages_delivered, 1u);
  EXPECT_EQ(bed.tr->counters().messages_acked, 1u);
}

TEST(ShardedTransport, RnrBackoffCrossesTheMailbox) {
  // The receiver half (shard 1) runs the rnr_probe and mails the NAK back;
  // the sender half (shard 0) owns the backoff timer. Two rejects cost two
  // full backoff rounds before delivery.
  sim::TransportConfig cfg = SplitConfig();
  cfg.rnr_retry_count = 7;
  cfg.min_rnr_timer = 1;
  SplitFlowBed bed(2, cfg);
  int rejects = 2;
  std::vector<Nanos> delivered, acked;
  sim::Transport::MessageOps ops;
  ops.rnr_probe = [&](Nanos) { return rejects-- <= 0; };
  ops.on_deliver = [&](Nanos t) { delivered.push_back(t); };
  ops.on_acked = [&](Nanos t) { acked.push_back(t); };
  bed.tr->SendMessageEx(bed.flow, 0, 500, std::move(ops));
  bed.ssim.Run();
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_GT(delivered[0], Nanos{8192 + 16384});  // waited out both rounds
  EXPECT_EQ(bed.tr->counters().rnr_naks, 2u);
  EXPECT_EQ(bed.tr->counters().rnr_backoffs, 2u);
  EXPECT_EQ(bed.tr->counters().rnr_exhausted, 0u);
  EXPECT_EQ(bed.tr->counters().messages_delivered, 1u);
}

TEST(ShardedTransport, RandomLossRecoversAndRepliesBitStably) {
  // 40 messages through a 10%-lossy split flow, GBN and SR: every message
  // recovers, and the per-flow RNG streams make the same-config rerun
  // bit-identical counter for counter.
  auto run = [](sim::TransportMode mode) {
    sim::TransportConfig cfg = SplitConfig();
    cfg.mode = mode;
    cfg.loss = 0.1;
    cfg.seed = 42;
    SplitFlowBed bed(2, cfg);
    int delivered = 0;
    for (int i = 0; i < 40; ++i) {
      bed.tr->SendMessage(bed.flow, 0, 2500, [&](Nanos) { ++delivered; });
    }
    bed.ssim.Run();
    EXPECT_EQ(delivered, 40);
    return bed.tr->counters();
  };
  const auto gbn = run(sim::TransportMode::kGoBackN);
  EXPECT_GT(gbn.retransmits, 0u);
  const auto gbn2 = run(sim::TransportMode::kGoBackN);
  EXPECT_EQ(gbn.retransmits, gbn2.retransmits);
  EXPECT_EQ(gbn.wire_bytes_sent, gbn2.wire_bytes_sent);
  EXPECT_EQ(gbn.acks_sent, gbn2.acks_sent);
  const auto sr = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_GT(sr.sack_retransmits, 0u);
  const auto sr2 = run(sim::TransportMode::kSelectiveRepeat);
  EXPECT_EQ(sr.retransmits, sr2.retransmits);
  EXPECT_EQ(sr.sack_retransmits, sr2.sack_retransmits);
  EXPECT_EQ(sr.wire_bytes_sent, sr2.wire_bytes_sent);
  // Selective repeat resends only holes; same seed, strictly fewer resends.
  EXPECT_LT(sr.retransmits, gbn.retransmits);
}

// ---------------------------------------------------------------------------
// Workload-level: fixed-seed multi-NIC scale-out, shards in {1, 2, 4}.
// ---------------------------------------------------------------------------

workload::FabricScaleConfig SweepConfig(int shards) {
  workload::FabricScaleConfig cfg;
  cfg.clients = 4;
  cfg.gets_per_client = 25;
  cfg.value_len = 2048;
  cfg.keys = 64;
  cfg.seed = 7;
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedWorkload, FabricScaleBitStableAcrossReruns) {
  // The determinism key is (seed, shards): for each shard count, two runs of
  // the identical config must agree on every measured field, bit for bit.
  for (const int shards : {1, 2, 4}) {
    const auto a = workload::RunFabricScale(SweepConfig(shards));
    const auto b = workload::RunFabricScale(SweepConfig(shards));
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(a.gets, 100u);
    EXPECT_EQ(a.gets, b.gets);
    EXPECT_EQ(a.duration_us, b.duration_us);
    EXPECT_EQ(a.avg_us, b.avg_us);
    EXPECT_EQ(a.p99_us, b.p99_us);
    EXPECT_EQ(a.server_tx_util, b.server_tx_util);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.mailbox_sends, b.mailbox_sends);
    EXPECT_EQ(a.sync_rounds, b.sync_rounds);
    EXPECT_EQ(a.shards, shards);
    EXPECT_EQ(a.error_cqes, 0u);
    if (shards > 1) {
      EXPECT_GT(a.mailbox_sends, 0u);
    }
  }
}

TEST(ShardedWorkload, FabricScaleValidatesShardConfig) {
  auto cfg = SweepConfig(2);
  cfg.placement = {0};  // 4 clients need 4 entries
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg = SweepConfig(2);
  cfg.placement = {0, 1, 2, 0};  // shard 2 does not exist
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
  cfg = SweepConfig(2);
  cfg.server_shard = 5;
  EXPECT_THROW(workload::RunFabricScale(cfg), std::invalid_argument);
}

TEST(ShardedWorkload, PacketizedLossySweepBitStableAcrossReruns) {
  // The headline satellite: the packetized lossy workload runs sharded.
  // For each shard count and both reliability engines, the same (seed,
  // shards) config must reproduce every measured field bit for bit.
  for (const bool sr : {false, true}) {
    for (const int shards : {1, 2, 4}) {
      auto cfg = SweepConfig(shards);
      cfg.packetized = true;
      cfg.loss = 0.02;
      cfg.selective_repeat = sr;
      const auto a = workload::RunFabricScale(cfg);
      const auto b = workload::RunFabricScale(cfg);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " sr=" + std::to_string(sr));
      EXPECT_EQ(a.gets, 100u);  // every get answered despite loss
      EXPECT_GT(a.retransmits, 0u);
      EXPECT_EQ(a.shards, shards);
      EXPECT_EQ(a.duration_us, b.duration_us);
      EXPECT_EQ(a.avg_us, b.avg_us);
      EXPECT_EQ(a.p99_us, b.p99_us);
      EXPECT_EQ(a.retransmits, b.retransmits);
      EXPECT_EQ(a.sack_retransmits, b.sack_retransmits);
      EXPECT_EQ(a.packets_lost, b.packets_lost);
      EXPECT_EQ(a.goodput_gbps, b.goodput_gbps);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.mailbox_sends, b.mailbox_sends);
      EXPECT_EQ(a.sync_rounds, b.sync_rounds);
      if (shards > 1) {
        EXPECT_GT(a.mailbox_sends, 0u);
      }
    }
  }
}

TEST(ShardedWorkload, KillAndReconnectSpansShards) {
  // The blackhole window kills client 0's QP pair (retry budgets die), the
  // re-arm routes each half's reset to its owning shard, and the client
  // resumes — same fault plan as the single-domain kill-and-reconnect test,
  // now with the server and half the clients on another shard.
  workload::FabricScaleConfig cfg;
  cfg.clients = 3;
  cfg.gets_per_client = 30;
  cfg.value_len = 8192;
  cfg.keys = 64;
  cfg.packetized = true;
  cfg.loss = 0.01;
  cfg.selective_repeat = true;
  cfg.retry_count = 2;
  cfg.rnr_retry_count = 4;
  cfg.timeout_exp = 2;
  cfg.shards = 2;
  cfg.server_shard = 1;  // client 0 (the victim) is cross-shard
  workload::FaultEntry fe;
  fe.client = 0;
  fe.kind = workload::FaultKind::kBlackhole;
  fe.down_at = 50'000;
  fe.up_at = 250'000;
  cfg.faults.entries.push_back(fe);
  const auto r1 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.gets, 90u);  // the dead window costs wall time, not gets
  EXPECT_GT(r1.qp_errors, 0u);
  EXPECT_GT(r1.qp_rearms, 0u);
  EXPECT_GE(r1.flow_resets, 2u);  // both directions of client 0's pair
  EXPECT_GT(r1.rto_fires, 0u);
  EXPECT_GT(r1.mailbox_sends, 0u);
  const auto r2 = workload::RunFabricScale(cfg);
  EXPECT_EQ(r1.duration_us, r2.duration_us);
  EXPECT_EQ(r1.avg_us, r2.avg_us);
  EXPECT_EQ(r1.p99_us, r2.p99_us);
  EXPECT_EQ(r1.retransmits, r2.retransmits);
  EXPECT_EQ(r1.sack_retransmits, r2.sack_retransmits);
  EXPECT_EQ(r1.rto_fires, r2.rto_fires);
  EXPECT_EQ(r1.error_cqes, r2.error_cqes);
  EXPECT_EQ(r1.qp_errors, r2.qp_errors);
  EXPECT_EQ(r1.qp_rearms, r2.qp_rearms);
  EXPECT_EQ(r1.flow_resets, r2.flow_resets);
  EXPECT_EQ(r1.mailbox_sends, r2.mailbox_sends);
}

TEST(ShardedWorkload, KvServiceSpreadPlacementRunsAndValidates) {
  // Spread tenants across domains: the run completes every get, reruns are
  // bit-stable, and the placement validation still rejects bad shards.
  workload::KvServiceConfig cfg;
  cfg.shards = 2;
  cfg.tenants = 2;
  cfg.gets_per_tenant = 20;
  cfg.keys = 256;
  cfg.value_len = 64;
  cfg.sim_shards = 2;
  cfg.placement = {0, 1};  // tenant 1 off the service shard
  const auto a = workload::RunKvService(cfg);
  EXPECT_EQ(a.gets, 40u);
  EXPECT_EQ(a.unanswered, 0u);
  EXPECT_EQ(a.sim_shards, 2);
  const auto b = workload::RunKvService(cfg);
  EXPECT_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.avg_us, b.avg_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.events, b.events);
  auto bad = cfg;
  bad.placement = {0, 5};  // shard 5 does not exist
  EXPECT_THROW(workload::RunKvService(bad), std::invalid_argument);
}

}  // namespace
}  // namespace redn::test
