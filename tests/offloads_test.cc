// Integration tests for the RedN offloads: hash gets (Fig 9), list
// traversal (Fig 12), RPC triggers (Figs 3/4), and recycled loops (§3.4).
#include <gtest/gtest.h>

#include "offloads/hash_harness.h"
#include "offloads/list_traversal.h"
#include "offloads/recycled_loop.h"
#include "offloads/rpc.h"
#include "sim/stats.h"
#include "testbed.h"

namespace redn::test {
namespace {

using offloads::HashGetHarness;
using offloads::HashGetOffload;
using offloads::ListStore;
using offloads::ListTraversalOffload;

class OffloadTest : public ::testing::Test {
 protected:
  TestBed bed;
};

// ---------------------------------------------------------------------------
// Hash lookups
// ---------------------------------------------------------------------------

TEST_F(OffloadTest, HashGetHitReturnsValue) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  h.PutPattern(42, 64);
  h.Arm(4);
  auto r = h.Get(42);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.len, 64u);
  EXPECT_TRUE(h.ResponseMatchesPattern(42, 64));
}

TEST_F(OffloadTest, HashGetMissReturnsNothing) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  h.PutPattern(42, 64);
  h.Arm(4);
  auto r = h.Get(43, sim::Micros(60));
  EXPECT_FALSE(r.found);
}

TEST_F(OffloadTest, HashGetRepeatedRequestsReuseArmedChains) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  for (std::uint64_t k = 1; k <= 16; ++k) h.PutPattern(k, 32);
  h.Arm(16);
  for (std::uint64_t k = 1; k <= 16; ++k) {
    auto r = h.Get(k);
    ASSERT_TRUE(r.found) << "key " << k;
    EXPECT_TRUE(h.ResponseMatchesPattern(k, 32));
  }
}

TEST_F(OffloadTest, HashGetSecondBucketSequential) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 2, .parallel = false});
  h.PutPattern(77, 64, /*force_second=*/true);
  h.Arm(2);
  auto r = h.Get(77);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(h.ResponseMatchesPattern(77, 64));
}

TEST_F(OffloadTest, HashGetSecondBucketParallel) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 2, .parallel = true});
  h.PutPattern(77, 64, /*force_second=*/true);
  h.Arm(2);
  auto r = h.Get(77);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(h.ResponseMatchesPattern(77, 64));
}

TEST_F(OffloadTest, HashGetParallelFasterThanSequentialOnCollision) {
  // Fig 11: with the key always in the second bucket, parallel probing
  // hides the second lookup almost entirely; sequential pays ~3 us extra.
  HashGetHarness hs(bed.client, bed.server, {.buckets = 2, .parallel = false});
  hs.PutPattern(77, 64, /*force_second=*/true);
  hs.Arm(2);
  const auto seq = hs.Get(77);
  ASSERT_TRUE(seq.found);

  TestBed bed2;
  HashGetHarness hp(bed2.client, bed2.server, {.buckets = 2, .parallel = true});
  hp.PutPattern(77, 64, /*force_second=*/true);
  hp.Arm(2);
  const auto par = hp.Get(77);
  ASSERT_TRUE(par.found);
  EXPECT_LT(par.latency, seq.latency - sim::Micros(1.5));
}

TEST_F(OffloadTest, HashGetNoCollisionLatencyNearPaper) {
  // Table 5: 64 B gets complete in ~5.7 us median on the paper's testbed.
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  h.PutPattern(42, 64);
  h.Arm(8);
  sim::LatencyRecorder rec;
  for (int i = 0; i < 8; ++i) {
    auto r = h.Get(42);
    ASSERT_TRUE(r.found);
    rec.Add(r.latency);
  }
  EXPECT_GT(rec.MedianUs(), 3.5);
  EXPECT_LT(rec.MedianUs(), 8.0);
}

TEST_F(OffloadTest, HashGetLargeValue) {
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  h.PutPattern(9, 64 * 1024);
  h.Arm(2);
  auto r = h.Get(9, sim::Micros(500));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.len, 64u * 1024);
  EXPECT_TRUE(h.ResponseMatchesPattern(9, 64 * 1024));
}

TEST_F(OffloadTest, HashGetServesWithoutServerCpuAfterArming) {
  // The whole point of the offload: once armed, requests are served with
  // zero server-side host activity. We verify no *new* server-side posting
  // happens during gets (all doorbells/posts precede the first trigger).
  HashGetHarness h(bed.client, bed.server, {.buckets = 1});
  h.PutPattern(5, 64);
  h.Arm(8);
  bed.sim.Run();  // settle arming
  const auto doorbells_before = bed.server.counters().doorbells;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.Get(5).found);
  }
  EXPECT_EQ(bed.server.counters().doorbells, doorbells_before);
}

// ---------------------------------------------------------------------------
// Linked-list traversal
// ---------------------------------------------------------------------------

struct ListRig {
  TestBed& bed;
  ListStore list;
  rnic::QueuePair* srv_qp;
  rnic::QueuePair* cli_qp;
  Buffer resp;
  Buffer msg;

  ListRig(TestBed& b, int nodes, std::uint32_t vlen)
      : bed(b), list(b.server, nodes + 1, vlen) {
    rnic::QpConfig s;
    s.sq_depth = 4096;
    s.rq_depth = 256;
    s.managed = true;
    s.send_cq = b.server.CreateCq();
    s.recv_cq = b.server.CreateCq();
    srv_qp = b.server.CreateQp(s);
    rnic::QpConfig c;
    c.sq_depth = 256;
    c.rq_depth = 256;
    c.send_cq = b.client.CreateCq();
    c.recv_cq = b.client.CreateCq();
    cli_qp = b.client.CreateQp(c);
    rnic::Connect(cli_qp, srv_qp, rnic::Calibration{}.net_one_way);
    resp = bed.Alloc(b.client, vlen);
    msg = bed.Alloc(b.client, 16 * 8);  // up to 15 iterations + head
    for (int i = 0; i < nodes; ++i) list.AppendPattern(100 + i);
  }

  // One traversal; arms a fresh chain (the paper's unrolled mode).
  HashGetHarness::Result Get(std::uint64_t key, bool use_break,
                             int iterations) {
    ListTraversalOffload off(bed.server, list, srv_qp,
                             {.iterations = iterations, .use_break = use_break},
                             resp.addr(), resp.rkey());
    verbs::RecvWr rwr;
    verbs::PostRecv(cli_qp, rwr);
    off.BuildTrigger(key, msg.bytes());
    auto& sim = bed.sim;
    const sim::Nanos t0 = sim.now();
    verbs::PostSendNow(cli_qp,
                       verbs::MakeSend(msg.addr(), off.TriggerBytes(),
                                       msg.lkey(), /*signaled=*/false));
    verbs::Cqe cqe;
    HashGetHarness::Result r;
    if (verbs::AwaitCqe(sim, bed.client, cli_qp->recv_cq, &cqe,
                        t0 + sim::Micros(400))) {
      r.found = true;
      r.latency = sim.now() - t0;
      r.len = cqe.byte_len;
    }
    // Quiesce before `off` (and the SGE tables the NIC references) dies.
    sim.Run();
    return r;
  }

  bool ResponseMatches(std::uint64_t key, std::uint32_t vlen) const {
    for (std::uint32_t i = 0; i < vlen; ++i) {
      if (resp.data[i] != ListStore::PatternByte(key, i)) return false;
    }
    return true;
  }
};

TEST_F(OffloadTest, ListTraversalFindsEachPosition) {
  ListRig rig(bed, 8, 64);
  for (int pos = 0; pos < 8; ++pos) {
    auto r = rig.Get(100 + pos, /*use_break=*/false, 8);
    ASSERT_TRUE(r.found) << "position " << pos;
    EXPECT_TRUE(rig.ResponseMatches(100 + pos, 64));
  }
}

TEST_F(OffloadTest, ListTraversalWithBreakFindsEachPosition) {
  ListRig rig(bed, 8, 64);
  for (int pos = 0; pos < 8; ++pos) {
    auto r = rig.Get(100 + pos, /*use_break=*/true, 8);
    ASSERT_TRUE(r.found) << "position " << pos;
    EXPECT_TRUE(rig.ResponseMatches(100 + pos, 64));
  }
}

TEST_F(OffloadTest, ListTraversalMissesAbsentKey) {
  ListRig rig(bed, 8, 64);
  auto r = rig.Get(999, /*use_break=*/false, 8);
  EXPECT_FALSE(r.found);
}

TEST_F(OffloadTest, BreakSavesWorkRequests) {
  // §5.3: without breaks every iteration executes; with breaks the chain
  // stops after the hit. Key at position 1 of 8: the break variant must
  // execute far fewer WRs.
  ListRig rig(bed, 8, 64);
  bed.sim.Run();
  const auto before_nobreak = bed.server.counters().TotalExecuted();
  ASSERT_TRUE(rig.Get(101, false, 8).found);
  bed.sim.Run();
  const auto nobreak = bed.server.counters().TotalExecuted() - before_nobreak;

  const auto before_break = bed.server.counters().TotalExecuted();
  ASSERT_TRUE(rig.Get(101, true, 8).found);
  bed.sim.RunUntil(bed.sim.now() + sim::Micros(100));
  const auto wbreak = bed.server.counters().TotalExecuted() - before_break;
  EXPECT_LT(wbreak, nobreak * 2 / 3);  // paper: no-break uses >65% more WRs
}

TEST_F(OffloadTest, BreakStopsLaterIterationsCompletely) {
  // After a hit at position 0, iteration 1+ must never execute: the READ
  // count for the traversal stays at 1.
  ListRig rig(bed, 8, 64);
  bed.sim.Run();
  const auto reads_before =
      bed.server.counters().executed_by_opcode[int(rnic::Opcode::kRead)];
  ASSERT_TRUE(rig.Get(100, true, 8).found);
  bed.sim.RunUntil(bed.sim.now() + sim::Micros(200));
  const auto reads =
      bed.server.counters().executed_by_opcode[int(rnic::Opcode::kRead)] -
      reads_before;
  EXPECT_EQ(reads, 1u);
}

// ---------------------------------------------------------------------------
// RPC offloads
// ---------------------------------------------------------------------------

struct RpcRig {
  TestBed& bed;
  rnic::QueuePair* srv_qp;
  rnic::QueuePair* cli_qp;
  Buffer resp;
  Buffer msg;

  explicit RpcRig(TestBed& b, std::size_t bufsz = 256) : bed(b) {
    rnic::QpConfig s;
    s.sq_depth = 4096;
    s.rq_depth = 4096;
    s.managed = true;
    s.send_cq = b.server.CreateCq();
    s.recv_cq = b.server.CreateCq();
    srv_qp = b.server.CreateQp(s);
    rnic::QpConfig c;
    c.send_cq = b.client.CreateCq();
    c.recv_cq = b.client.CreateCq();
    cli_qp = b.client.CreateQp(c);
    rnic::Connect(cli_qp, srv_qp, rnic::Calibration{}.net_one_way);
    resp = bed.Alloc(b.client, bufsz);
    msg = bed.Alloc(b.client, bufsz);
  }

  bool Call(std::uint32_t len, verbs::Cqe* out) {
    verbs::RecvWr rwr;
    verbs::PostRecv(cli_qp, rwr);
    verbs::PostSendNow(cli_qp, verbs::MakeSend(msg.addr(), len, msg.lkey(),
                                               /*signaled=*/false));
    return verbs::AwaitCqe(bed.sim, bed.client, cli_qp->recv_cq, out,
                           bed.sim.now() + sim::Micros(100));
  }
};

TEST_F(OffloadTest, EchoRpcRoundTripsPayload) {
  RpcRig rig(bed);
  offloads::EchoRpcOffload echo(bed.server, rig.srv_qp, 32, /*n=*/4,
                                rig.resp.addr(), rig.resp.rkey());
  for (int r = 0; r < 4; ++r) {
    rig.msg.SetU64(0, 0x1111 * (r + 1));
    rig.msg.SetU64(1, 0x2222 * (r + 1));
    verbs::Cqe cqe;
    ASSERT_TRUE(rig.Call(32, &cqe));
    EXPECT_EQ(cqe.imm, static_cast<std::uint32_t>(r + 1));
    EXPECT_EQ(rig.resp.U64(0), 0x1111u * (r + 1));
    EXPECT_EQ(rig.resp.U64(1), 0x2222u * (r + 1));
  }
}

TEST_F(OffloadTest, CondRpcComparesAgainstConstant) {
  RpcRig rig(bed);
  offloads::CondRpcOffload cond(bed.server, rig.srv_qp, /*y=*/5, /*n=*/4,
                                rig.resp.addr(), rig.resp.rkey());
  const std::uint64_t xs[4] = {5, 7, 5, 0};
  const std::uint64_t want[4] = {1, 0, 1, 0};
  for (int r = 0; r < 4; ++r) {
    offloads::CondRpcOffload::BuildTrigger(xs[r], rig.msg.bytes());
    verbs::Cqe cqe;
    ASSERT_TRUE(rig.Call(8, &cqe));
    EXPECT_EQ(rig.resp.U64(0), want[r]) << "x=" << xs[r];
  }
}

// ---------------------------------------------------------------------------
// Recycled loops
// ---------------------------------------------------------------------------

TEST_F(OffloadTest, RecycledLoopRunsWithoutCpu) {
  offloads::RecycledAddLoop loop(bed.server);
  loop.Start();
  bed.sim.RunUntil(sim::Micros(200));
  const std::uint64_t at_200us = loop.iterations();
  EXPECT_GT(at_200us, 10u);
  // No further host involvement — the loop keeps making progress.
  bed.sim.RunUntil(sim::Micros(400));
  EXPECT_GT(loop.iterations(), at_200us + 10);
}

TEST_F(OffloadTest, RecycledLoopRateMatchesTable3) {
  // Table 3: while with WQ recycling executes ~0.3M iterations/s.
  offloads::RecycledAddLoop loop(bed.server);
  loop.Start();
  bed.sim.RunUntil(sim::Millis(2));
  const double rate =
      static_cast<double>(loop.iterations()) / sim::ToSeconds(sim::Millis(2));
  EXPECT_GT(rate, 0.15e6);
  EXPECT_LT(rate, 0.6e6);
}

TEST_F(OffloadTest, RecycledLoopStopsWhenKilled) {
  offloads::RecycledAddLoop loop(bed.server);
  loop.Start();
  bed.sim.RunUntil(sim::Micros(100));
  loop.Kill();
  const std::uint64_t frozen = loop.iterations();
  bed.sim.RunUntil(sim::Micros(300));
  EXPECT_LE(loop.iterations(), frozen + 1);
}

TEST_F(OffloadTest, RateLimiterThrottlesRecycledLoop) {
  // §3.5 Isolation: a WQ rate limit bounds even runaway loops.
  offloads::RecycledAddLoop unlimited(bed.server);
  unlimited.Start();
  offloads::RecycledAddLoop limited(bed.server);
  limited.body()->rate_gap = sim::Micros(50);  // 20K iterations/s cap
  limited.Start();
  bed.sim.RunUntil(sim::Millis(2));
  EXPECT_GT(unlimited.iterations(), limited.iterations() * 5);
}

}  // namespace
}  // namespace redn::test
