// Shared test fixture: a simulator, two back-to-back nodes, and helpers for
// registering buffers and connecting QPs — the shape of the paper's testbed.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "rnic/device.h"
#include "sim/simulator.h"
#include "verbs/verbs.h"

namespace redn::test {

using rnic::Calibration;
using rnic::CompletionQueue;
using rnic::NicConfig;
using rnic::QueuePair;
using rnic::QpConfig;
using rnic::RnicDevice;

struct Buffer {
  std::unique_ptr<std::byte[]> data;
  rnic::MemoryRegion mr;

  std::uint64_t addr() const { return rnic::dma::AddrOf(data.get()); }
  std::uint32_t lkey() const { return mr.lkey; }
  std::uint32_t rkey() const { return mr.rkey; }
  std::byte* bytes() { return data.get(); }

  void Fill(std::uint8_t v, std::size_t n) { std::memset(data.get(), v, n); }
  std::uint64_t U64(std::size_t i = 0) const {
    return rnic::dma::ReadU64(addr() + i * 8);
  }
  void SetU64(std::size_t i, std::uint64_t v) {
    rnic::dma::WriteU64(addr() + i * 8, v);
  }
};

class TestBed {
 public:
  explicit TestBed(NicConfig cfg = NicConfig::ConnectX5(),
                   Calibration cal = Calibration{})
      : client(sim, cfg, cal, "client"), server(sim, cfg, cal, "server") {}

  sim::Simulator sim;
  RnicDevice client;
  RnicDevice server;

  Buffer Alloc(RnicDevice& dev, std::size_t size,
               std::uint32_t access = rnic::kAccessAll) {
    Buffer b;
    b.data = std::make_unique<std::byte[]>(size);
    std::memset(b.data.get(), 0, size);
    b.mr = dev.pd().Register(b.data.get(), size, access);
    return b;
  }

  // A connected pair of QPs across the wire (client-side first).
  std::pair<QueuePair*, QueuePair*> ConnectedPair(bool server_managed = false,
                                                  std::uint32_t depth = 256) {
    QpConfig c;
    c.sq_depth = depth;
    c.rq_depth = depth;
    c.send_cq = client.CreateCq();
    c.recv_cq = client.CreateCq();
    QueuePair* cq = client.CreateQp(c);
    QpConfig s;
    s.sq_depth = depth;
    s.rq_depth = depth;
    s.managed = server_managed;
    s.send_cq = server.CreateCq();
    s.recv_cq = server.CreateCq();
    QueuePair* sq = server.CreateQp(s);
    rnic::Connect(cq, sq, Calibration{}.net_one_way);
    return {cq, sq};
  }

  // A loopback QP on `dev` (RedN chain style).
  QueuePair* Loopback(RnicDevice& dev, bool managed = false,
                      std::uint32_t depth = 256) {
    QpConfig c;
    c.sq_depth = depth;
    c.rq_depth = depth;
    c.managed = managed;
    c.send_cq = dev.CreateCq();
    c.recv_cq = dev.CreateCq();
    QueuePair* qp = dev.CreateQp(c);
    rnic::ConnectSelf(qp);
    return qp;
  }
};

}  // namespace redn::test
