// End-to-end verb execution on the simulated RNIC: data movement,
// completions, latency calibration, and error paths.
#include <gtest/gtest.h>

#include "testbed.h"

namespace redn::test {
namespace {

using verbs::AwaitCqe;
using verbs::Cqe;
using verbs::MakeCas;
using verbs::MakeFetchAdd;
using verbs::MakeNoop;
using verbs::MakeRead;
using verbs::MakeSend;
using verbs::MakeWrite;
using verbs::PostRecv;
using verbs::PostSendNow;
using verbs::RecvWr;

class VerbsTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(VerbsTest, RemoteWriteMovesData) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 256);
  Buffer dst = bed.Alloc(bed.server, 256);
  src.SetU64(0, 0xfeedface12345678ULL);

  PostSendNow(cqp, MakeWrite(src.addr(), 64, src.lkey(), dst.addr(), dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(cqe.byte_len, 64u);
  EXPECT_EQ(dst.U64(0), 0xfeedface12345678ULL);
}

TEST_F(VerbsTest, RemoteWriteLatencyMatchesPaper) {
  // Fig 7: a remote 64B WRITE completes in ~1.6 us.
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.server, 64);
  const sim::Nanos t0 = bed.sim.now();
  PostSendNow(cqp, MakeWrite(src.addr(), 64, src.lkey(), dst.addr(), dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  const double us = sim::ToMicros(bed.sim.now() - t0);
  EXPECT_NEAR(us, 1.6, 0.15);
}

TEST_F(VerbsTest, RemoteReadFetchesData) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer local = bed.Alloc(bed.client, 256);
  Buffer remote = bed.Alloc(bed.server, 256);
  remote.SetU64(0, 0xabcdefULL);
  remote.SetU64(1, 0x123456ULL);

  const sim::Nanos t0 = bed.sim.now();
  PostSendNow(cqp, MakeRead(local.addr(), 16, local.lkey(), remote.addr(),
                            remote.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(local.U64(0), 0xabcdefULL);
  EXPECT_EQ(local.U64(1), 0x123456ULL);
  // Fig 7: non-posted verbs take ~1.8 us.
  EXPECT_NEAR(sim::ToMicros(bed.sim.now() - t0), 1.8, 0.15);
}

TEST_F(VerbsTest, NoopRemoteVsLocalDeltaIsNetworkCost) {
  // Fig 7: remote NOOP ~1.21 us; the remote-local delta is ~0.25 us.
  auto [cqp, sqp] = bed.ConnectedPair();
  const sim::Nanos t0 = bed.sim.now();
  PostSendNow(cqp, MakeNoop());
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  const double remote_us = sim::ToMicros(bed.sim.now() - t0);
  EXPECT_NEAR(remote_us, 1.21, 0.1);

  QueuePair* lb = bed.Loopback(bed.client);
  const sim::Nanos t1 = bed.sim.now();
  PostSendNow(lb, MakeNoop());
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, lb->send_cq, &cqe));
  const double local_us = sim::ToMicros(bed.sim.now() - t1);
  EXPECT_NEAR(remote_us - local_us, 0.25, 0.05);
}

TEST_F(VerbsTest, SendConsumesRecvAndScatters) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer msg = bed.Alloc(bed.client, 64);
  Buffer rbuf = bed.Alloc(bed.server, 64);
  msg.SetU64(0, 111);
  msg.SetU64(1, 222);

  RecvWr rwr;
  rwr.wr_id = 9;
  rwr.local_addr = rbuf.addr();
  rwr.length = 64;
  rwr.lkey = rbuf.lkey();
  PostRecv(sqp, rwr);

  PostSendNow(cqp, MakeSend(msg.addr(), 16, msg.lkey()));
  Cqe rcqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &rcqe));
  EXPECT_EQ(rcqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(rcqe.wr_id, 9u);
  EXPECT_EQ(rcqe.byte_len, 16u);
  EXPECT_EQ(rbuf.U64(0), 111u);
  EXPECT_EQ(rbuf.U64(1), 222u);
}

TEST_F(VerbsTest, SendScattersAcrossSgeTable) {
  // The injection primitive: a RECV scatter list pointing at two disjoint
  // destinations (in RedN: fields of different WQEs).
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer msg = bed.Alloc(bed.client, 64);
  Buffer a = bed.Alloc(bed.server, 8);
  Buffer b = bed.Alloc(bed.server, 8);
  msg.SetU64(0, 0xaaaa);
  msg.SetU64(1, 0xbbbb);

  std::vector<rnic::Sge> sges = {{a.addr(), 8, a.lkey()},
                                 {b.addr(), 8, b.lkey()}};
  RecvWr rwr;
  rwr.sge_table = sges.data();
  rwr.sge_count = 2;
  PostRecv(sqp, rwr);

  PostSendNow(cqp, MakeSend(msg.addr(), 16, msg.lkey()));
  Cqe rcqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.server, sqp->recv_cq, &rcqe));
  EXPECT_EQ(a.U64(0), 0xaaaau);
  EXPECT_EQ(b.U64(0), 0xbbbbu);
}

TEST_F(VerbsTest, SendWithoutRecvIsRnr) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer msg = bed.Alloc(bed.client, 64);
  PostSendNow(cqp, MakeSend(msg.addr(), 8, msg.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRnrError);
}

TEST_F(VerbsTest, CasSucceedsOnMatch) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  Buffer result = bed.Alloc(bed.client, 8);
  word.SetU64(0, 42);

  PostSendNow(cqp, MakeCas(word.addr(), word.rkey(), 42, 99, result.addr(),
                           result.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(word.U64(0), 99u);    // swapped
  EXPECT_EQ(result.U64(0), 42u);  // old value returned
}

TEST_F(VerbsTest, CasFailsOnMismatchLeavingMemoryIntact) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  Buffer result = bed.Alloc(bed.client, 8);
  word.SetU64(0, 41);

  PostSendNow(cqp, MakeCas(word.addr(), word.rkey(), 42, 99, result.addr(),
                           result.lkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);  // CAS miss is not an error
  EXPECT_EQ(word.U64(0), 41u);
  EXPECT_EQ(result.U64(0), 41u);
}

TEST_F(VerbsTest, FetchAddAccumulates) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  word.SetU64(0, 100);
  PostSendNow(cqp, MakeFetchAdd(word.addr(), word.rkey(), 7));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(word.U64(0), 107u);
}

TEST_F(VerbsTest, CalcMaxKeepsLargerValue) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 8);
  word.SetU64(0, 50);
  PostSendNow(cqp, verbs::MakeCalcMax(word.addr(), word.rkey(), 80));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(word.U64(0), 80u);
  PostSendNow(cqp, verbs::MakeCalcMax(word.addr(), word.rkey(), 30));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(word.U64(0), 80u);
}

TEST_F(VerbsTest, AtomicRequiresAlignment) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer word = bed.Alloc(bed.server, 16);
  PostSendNow(cqp, MakeCas(word.addr() + 4, word.rkey(), 0, 1));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kAlignmentError);
}

TEST_F(VerbsTest, BadRkeyFailsWrite) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.server, 64);
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), 0xbad));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
}

TEST_F(VerbsTest, QpStopsAfterError) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.server, 64);
  verbs::PostSend(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), 0xbad));
  verbs::PostSend(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(),
                                 dst.rkey()));
  verbs::RingDoorbell(cqp);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kRemoteAccessError);
  bed.sim.Run();
  // The second WR never executes: the QP is in error state.
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);
  EXPECT_EQ(dst.U64(0), 0u);
}

TEST_F(VerbsTest, UnsignaledWrProducesNoCqe) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.server, 64);
  src.SetU64(0, 5);
  PostSendNow(cqp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                             /*signaled=*/false));
  bed.sim.Run();
  Cqe cqe;
  EXPECT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 0);
  EXPECT_EQ(dst.U64(0), 5u);  // data still moved
}

TEST_F(VerbsTest, LargeTransferLatencyScalesWithBandwidth) {
  auto [cqp, sqp] = bed.ConnectedPair();
  Buffer src = bed.Alloc(bed.client, 64 * 1024);
  Buffer dst = bed.Alloc(bed.server, 64 * 1024);
  const sim::Nanos t0 = bed.sim.now();
  PostSendNow(cqp, MakeWrite(src.addr(), 64 * 1024, src.lkey(), dst.addr(),
                             dst.rkey()));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, cqp->send_cq, &cqe));
  const double us = sim::ToMicros(bed.sim.now() - t0);
  // 64 KiB across link+PCIe+memory store-and-forward: ~16 us (Fig 10 regime).
  EXPECT_GT(us, 12.0);
  EXPECT_LT(us, 20.0);
}

TEST_F(VerbsTest, RateLimiterSpacesIssues) {
  // §3.5 Isolation: a WQ rate limit caps issue rate even for runaway posts.
  QpConfig c;
  c.send_cq = bed.client.CreateCq();
  c.recv_cq = bed.client.CreateCq();
  c.rate_ops_per_sec = 1e6;  // 1 op/us
  QueuePair* qp = bed.client.CreateQp(c);
  rnic::ConnectSelf(qp);
  for (int i = 0; i < 10; ++i) verbs::PostSend(qp, MakeNoop());
  verbs::RingDoorbell(qp);
  Cqe cqe;
  ASSERT_TRUE(verbs::AwaitCqes(bed.sim, bed.client, qp->send_cq, 10, &cqe));
  // 10 ops at 1 op/us cannot finish faster than ~9 us.
  EXPECT_GE(bed.sim.now(), sim::Micros(9.0));
}

}  // namespace
}  // namespace redn::test
