// Unit tests for the RDMA-visible hash table and value heap.
#include <gtest/gtest.h>

#include "kv/table.h"
#include "testbed.h"

namespace redn::test {
namespace {

using kv::RdmaHashTable;
using kv::ValueHeap;

class TableTest : public ::testing::Test {
 protected:
  TestBed bed;
};

TEST_F(TableTest, InsertLookupRoundTrip) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  EXPECT_TRUE(t.Insert(42, 0x1000, 64));
  auto e = t.Lookup(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->ptr, 0x1000u);
  EXPECT_EQ(e->len, 64u);
}

TEST_F(TableTest, LookupMissesAbsentKey) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  t.Insert(42, 0x1000, 64);
  EXPECT_FALSE(t.Lookup(43).has_value());
}

TEST_F(TableTest, ZeroKeyRejected) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  EXPECT_FALSE(t.Insert(0, 0x1000, 64));
}

TEST_F(TableTest, KeysMaskedTo48Bits) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  const std::uint64_t wide = 0xffff000000000042ULL;
  EXPECT_TRUE(t.Insert(wide, 0x2000, 8));
  auto e = t.Lookup(0x42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->ptr, 0x2000u);
}

TEST_F(TableTest, UpdateOverwritesExisting) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  t.Insert(7, 0x1000, 16);
  t.Insert(7, 0x2000, 32);
  auto e = t.Lookup(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->ptr, 0x2000u);
  EXPECT_EQ(e->len, 32u);
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(TableTest, EraseRemovesKey) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  t.Insert(7, 0x1000, 16);
  EXPECT_TRUE(t.Erase(7));
  EXPECT_FALSE(t.Lookup(7).has_value());
  EXPECT_FALSE(t.Erase(7));
  EXPECT_EQ(t.size(), 0u);
}

TEST_F(TableTest, ForceSecondPlantsInH2Bucket) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  EXPECT_TRUE(t.Insert(99, 0x3000, 8, /*force_second=*/true));
  const std::uint64_t b2 = t.BucketAddr2(99);
  EXPECT_EQ(rnic::dma::ReadU64(b2), 99u);
  ASSERT_TRUE(t.Lookup(99).has_value());
}

TEST_F(TableTest, BucketLayoutMatchesOffloadAbi) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  t.Insert(55, 0xabcd, 128);
  // Find the bucket that holds it and check field offsets.
  const std::uint64_t addr = t.BucketAddr1(55);
  if (rnic::dma::ReadU64(addr + kv::kBucketKeyOff) == 55u) {
    EXPECT_EQ(rnic::dma::ReadU64(addr + kv::kBucketPtrOff), 0xabcdu);
    EXPECT_EQ(rnic::dma::ReadU32(addr + kv::kBucketLenOff), 128u);
  } else {
    const std::uint64_t a2 = t.BucketAddr2(55);
    EXPECT_EQ(rnic::dma::ReadU64(a2 + kv::kBucketKeyOff), 55u);
  }
}

TEST_F(TableTest, ManyKeysAllRetrievable) {
  RdmaHashTable t(bed.server, {.buckets = 1 << 14});
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    ASSERT_TRUE(t.Insert(k, k * 16, static_cast<std::uint32_t>(k & 0xfff)));
  }
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    auto e = t.Lookup(k);
    ASSERT_TRUE(e.has_value()) << k;
    EXPECT_EQ(e->ptr, k * 16);
  }
  EXPECT_EQ(t.size(), 4000u);
}

TEST_F(TableTest, ClearEmptiesTable) {
  RdmaHashTable t(bed.server, {.buckets = 1024});
  for (std::uint64_t k = 1; k <= 100; ++k) t.Insert(k, k, 8);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_FALSE(t.Lookup(k));
}

TEST_F(TableTest, HashesDifferAcrossFunctions) {
  int same = 0;
  for (std::uint64_t k = 1; k < 1000; ++k) {
    if ((kv::Hash1(k) & 1023) == (kv::Hash2(k) & 1023)) ++same;
  }
  EXPECT_LT(same, 20);  // ~1/1024 expected collisions between H1 and H2
}

TEST_F(TableTest, ValueHeapStoresAndAligns) {
  ValueHeap heap(bed.server, 1 << 20);
  const char data[5] = "abcd";
  const std::uint64_t a = heap.Store(data, 5);
  const std::uint64_t b = heap.Store(data, 5);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(std::memcmp(reinterpret_cast<void*>(a), "abcd", 5), 0);
}

TEST_F(TableTest, ValueHeapThrowsWhenFull) {
  ValueHeap heap(bed.server, 64);
  heap.Reserve(32);
  heap.Reserve(32);
  EXPECT_THROW(heap.Reserve(8), std::bad_alloc);
}

TEST_F(TableTest, NeighborhoodCoversConfiguredBuckets) {
  RdmaHashTable t(bed.server, {.buckets = 1024, .neighborhood = 6});
  EXPECT_EQ(t.NeighborhoodBytes(), 6 * kv::kBucketSize);
  // Neighborhood address is within table bounds even for edge hashes.
  for (std::uint64_t k = 1; k < 500; ++k) {
    const std::uint64_t addr = t.NeighborhoodAddr(k);
    EXPECT_GE(addr, t.BucketAddr1(1) - 1024 * kv::kBucketSize);
  }
}

}  // namespace
}  // namespace redn::test
