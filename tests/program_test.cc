// Tests for the RedN program builder and the `if` construct (Fig 4).
#include <gtest/gtest.h>

#include "redn/program.h"
#include "testbed.h"

namespace redn::test {
namespace {

using core::Program;
using core::WrRef;
using rnic::Opcode;
using verbs::MakeNoop;
using verbs::MakeWrite;
using verbs::PostSend;

class ProgramTest : public ::testing::Test {
 protected:
  TestBed bed;
};

// Builds the Fig 4 `if (x == y) send(1) else send(0)` offload and runs it.
// `x` arrives injected into the target WR's id field; `y` is baked into the
// CAS compare operand at build time. Returns the value the "client" sees.
std::uint64_t RunEqualIf(TestBed& bed, std::uint64_t x, std::uint64_t y) {
  Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  Buffer one = bed.Alloc(bed.server, 8);
  Buffer reply = bed.Alloc(bed.server, 8);
  one.SetU64(0, 1);
  reply.SetU64(0, 0);

  // R2: NOOP that the CAS may flip into a WRITE of 1 into `reply`.
  verbs::SendWr r2 =
      MakeWrite(one.addr(), 8, one.lkey(), reply.addr(), reply.rkey());
  r2.opcode = Opcode::kNoop;
  r2.wr_id = x;  // "injected" argument: the id field stores x
  WrRef target = prog.Post(chain, r2);

  // Trigger: a signaled NOOP on a plain queue stands in for the RPC RECV.
  rnic::QueuePair* trig = prog.NewPlainQueue();
  verbs::PostSend(trig, MakeNoop());

  prog.EmitEqualIf(trig->send_cq, 1, target, y, Opcode::kWrite);
  prog.Launch();
  verbs::RingDoorbell(trig);
  bed.sim.Run();
  return reply.U64(0);
}

TEST_F(ProgramTest, EqualIfTakenBranch) {
  EXPECT_EQ(RunEqualIf(bed, 5, 5), 1u);
}

TEST_F(ProgramTest, EqualIfNotTakenBranch) {
  EXPECT_EQ(RunEqualIf(bed, 5, 7), 0u);
}

TEST_F(ProgramTest, EqualIfBudgetMatchesTable2) {
  // Table 2: if = 1 copy + 1 atomic + 3 WAIT/ENABLE.
  Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  Buffer buf = bed.Alloc(bed.server, 16);
  prog.ResetBudget();
  verbs::SendWr r2 = MakeWrite(buf.addr(), 8, buf.lkey(), buf.addr() + 8,
                               buf.rkey());
  r2.opcode = Opcode::kNoop;
  WrRef target = prog.Post(chain, r2);
  prog.EmitEqualIf(prog.control_cq(), 0, target, 42, Opcode::kWrite);
  EXPECT_EQ(prog.budget().copy, 1);
  EXPECT_EQ(prog.budget().atomics, 1);
  EXPECT_EQ(prog.budget().sync, 3);
}

TEST_F(ProgramTest, EqualIfOperandBoundary48Bits) {
  // Operands are 48-bit (§3.5); the top bits share the word with the opcode.
  const std::uint64_t max_operand = (1ULL << 48) - 1;
  EXPECT_EQ(RunEqualIf(bed, max_operand, max_operand), 1u);
  EXPECT_EQ(RunEqualIf(bed, max_operand, max_operand - 1), 0u);
}

TEST_F(ProgramTest, EqualIfZeroOperand) {
  EXPECT_EQ(RunEqualIf(bed, 0, 0), 1u);
}

TEST_F(ProgramTest, ChainedCasExtendsOperandWidth) {
  // §3.5: operands wider than 48 bits are handled by chaining CAS verbs.
  // 96-bit equality via two 48-bit comparisons with AND semantics: the
  // first CAS promotes the *second CAS itself* from NOOP to CAS, so a
  // low-word mismatch leaves stage 2 inert and the WRITE never fires.
  auto run = [&](std::uint64_t x_lo, std::uint64_t x_hi, std::uint64_t y_lo,
                 std::uint64_t y_hi) {
    Program prog(bed.server);
    rnic::QueuePair* chain = prog.NewChainQueue();
    Buffer one = bed.Alloc(bed.server, 8);
    Buffer reply = bed.Alloc(bed.server, 8);
    one.SetU64(0, 1);

    // Final stage: NOOP(id = x_hi) that CAS2 may flip into the reply WRITE.
    // Posted second (chain slot 1) but constructed first conceptually.
    // Stage 2's CAS (chain slot 0) starts life as a NOOP(id = x_lo) carrying
    // full CAS operands; CAS1 promotes its opcode when x_lo == y_lo.
    const WrRef t2_future{chain, chain->sq.posted + 1};
    verbs::SendWr cas2 = verbs::MakeCas(
        t2_future.FieldAddr(rnic::WqeField::kCtrl), chain->sq_mr.rkey,
        rnic::PackCtrl(Opcode::kNoop, y_hi), rnic::PackCtrl(Opcode::kWrite, y_hi));
    cas2.opcode = Opcode::kNoop;  // inert until promoted by CAS1
    cas2.wr_id = x_lo;
    WrRef t1 = prog.Post(chain, cas2);

    verbs::SendWr r2 =
        MakeWrite(one.addr(), 8, one.lkey(), reply.addr(), reply.rkey());
    r2.opcode = Opcode::kNoop;
    r2.wr_id = x_hi;
    WrRef t2 = prog.Post(chain, r2);
    EXPECT_EQ(t2.idx, t2_future.idx);

    rnic::QueuePair* trig = prog.NewPlainQueue();
    verbs::PostSend(trig, MakeNoop());

    prog.Wait(trig->send_cq, 1);
    prog.OpcodeCas(t1, y_lo, Opcode::kNoop, Opcode::kCompSwap);
    prog.Wait(prog.control_cq(), prog.SignalsPosted(prog.control_cq()));
    prog.Enable(chain, 1);               // run stage-2 CAS (or inert NOOP)
    prog.Wait(chain->send_cq, 1);        // it completes either way
    prog.Enable(chain, 2);               // run the final WRITE (or NOOP)
    prog.Launch();
    verbs::RingDoorbell(trig);
    bed.sim.Run();
    return reply.U64(0);
  };
  EXPECT_EQ(run(1, 2, 1, 2), 1u);  // full 96-bit match fires
  EXPECT_EQ(run(1, 2, 1, 3), 0u);  // high-word mismatch blocked by CAS2
  EXPECT_EQ(run(9, 2, 1, 2), 0u);  // low-word mismatch blocks CAS2 itself
}

TEST_F(ProgramTest, WrBudgetCountsAllClasses) {
  Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  Buffer buf = bed.Alloc(bed.server, 64);
  prog.ResetBudget();
  prog.Post(chain, MakeWrite(buf.addr(), 8, buf.lkey(), buf.addr() + 8,
                             buf.rkey()));
  prog.Post(chain, verbs::MakeRead(buf.addr(), 8, buf.lkey(), buf.addr() + 8,
                                   buf.rkey()));
  prog.FetchAdd(buf.addr(), buf.rkey(), 1);
  prog.Wait(prog.control_cq(), 1);
  prog.Enable(chain, 1);
  EXPECT_EQ(prog.budget().copy, 2);
  EXPECT_EQ(prog.budget().atomics, 1);
  EXPECT_EQ(prog.budget().sync, 2);
  EXPECT_EQ(prog.budget().total(), 5);
}

TEST_F(ProgramTest, SignalsPostedTracksPerCq) {
  Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  EXPECT_EQ(prog.SignalsPosted(prog.control_cq()), 0u);
  prog.Post(prog.control(), MakeNoop());
  prog.Post(prog.control(), MakeNoop());
  prog.Post(chain, MakeNoop());
  EXPECT_EQ(prog.SignalsPosted(prog.control_cq()), 2u);
  EXPECT_EQ(prog.SignalsPosted(chain->send_cq), 1u);
}

TEST_F(ProgramTest, WaitAndEnableAreUnsignaledByDefault) {
  Program prog(bed.server);
  rnic::QueuePair* chain = prog.NewChainQueue();
  prog.Wait(prog.control_cq(), 0);
  prog.Enable(chain, 0);
  EXPECT_EQ(prog.SignalsPosted(prog.control_cq()), 0u);
}

}  // namespace
}  // namespace redn::test
