// LatencyRecorder regression tests: percentile queries must stay correct
// when interleaved with Record calls (the sort-validity flag is invalidated
// by Add/Clear, not reset inside the query), and repeated queries must not
// re-sort an already-sorted sample set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "sim/stats.h"

namespace redn::test {
namespace {

using sim::LatencyRecorder;
using sim::Nanos;

// Nearest-rank reference implementation, independent of the recorder.
Nanos NearestRank(std::vector<Nanos> v, double p) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0;
  if (p <= 0) return v.front();
  if (p >= 100) return v.back();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

TEST(LatencyRecorder, InterleavedRecordAndPercentileStaysCorrect) {
  sim::Rng rng(7);
  LatencyRecorder rec;
  std::vector<Nanos> all;
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 37; ++i) {
      const Nanos v = static_cast<Nanos>(rng.NextBelow(1'000'000));
      rec.Add(v);
      all.push_back(v);
    }
    for (double p : {0.0, 13.0, 50.0, 90.0, 99.0, 100.0}) {
      EXPECT_EQ(rec.PercentileNs(p), NearestRank(all, p))
          << "round " << round << " p" << p;
    }
  }
}

TEST(LatencyRecorder, SampleAddedAfterSortedQueryIsVisible) {
  // The regression this PR fixes the other half of: if the sorted flag were
  // left stale-true after a query, a later Add would be invisible to the
  // next percentile. Descending inserts make the stale answer detectable.
  LatencyRecorder rec;
  rec.Add(100);
  rec.Add(50);
  EXPECT_EQ(rec.PercentileNs(0), 50);    // sorts {50, 100}
  rec.Add(1);                            // must invalidate the sort
  EXPECT_EQ(rec.PercentileNs(0), 1);
  EXPECT_EQ(rec.PercentileNs(100), 100);
}

TEST(LatencyRecorder, ClearInvalidatesAndResets) {
  LatencyRecorder rec;
  rec.Add(10);
  rec.Add(20);
  EXPECT_EQ(rec.PercentileNs(50), 10);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.PercentileNs(50), 0);
  rec.Add(5);
  EXPECT_EQ(rec.PercentileNs(50), 5);
  EXPECT_EQ(rec.MinNs(), 5);
  EXPECT_EQ(rec.MaxNs(), 5);
}

TEST(LatencyRecorder, RepeatQueriesMatchAndMeanUnaffected) {
  LatencyRecorder rec;
  for (Nanos v : {9, 3, 7, 1, 5}) rec.Add(v);
  const Nanos p50 = rec.PercentileNs(50);
  EXPECT_EQ(p50, 5);
  EXPECT_EQ(rec.PercentileNs(50), p50);  // idempotent on a sorted set
  EXPECT_DOUBLE_EQ(rec.MeanNs(), 5.0);
  EXPECT_EQ(rec.MinNs(), 1);
  EXPECT_EQ(rec.MaxNs(), 9);
}

}  // namespace
}  // namespace redn::test
