// Completion-path invariants after the one-event-per-CQE overhaul:
//  - the waiter min-heap wakes equal-threshold WAITs in FIFO registration
//    order (both at the CompletionQueue level and through the full device
//    wake/resume path);
//  - host visibility still "flows" to pollers although CQE delivery no
//    longer schedules an unconditional visibility event;
//  - the payload pool and event slab stay allocation-free in steady state.
#include <gtest/gtest.h>

#include <vector>

#include "testbed.h"

namespace redn::test {
namespace {

using rnic::CompletionQueue;
using rnic::Cqe;
using rnic::WorkQueue;

TEST(CqWaiterHeap, EqualThresholdsWakeInRegistrationOrder) {
  CompletionQueue cq(0);
  WorkQueue wqs[5];
  // Register out of address order so FIFO cannot be confused with pointer
  // order: 3, 1, 4, 0, 2 all wait for the same count.
  const int reg_order[] = {3, 1, 4, 0, 2};
  for (int i : reg_order) cq.AddWaiter(&wqs[i], 2);

  EXPECT_TRUE(cq.BumpHwCount().empty());  // count 1 < threshold 2
  const std::vector<WorkQueue*>& ready = cq.BumpHwCount();
  ASSERT_EQ(ready.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ready[i], &wqs[reg_order[i]]) << i;
}

TEST(CqWaiterHeap, MixedThresholdsWakeByThresholdThenFifo) {
  CompletionQueue cq(0);
  WorkQueue a, b, c, d;
  cq.AddWaiter(&a, 3);
  cq.AddWaiter(&b, 1);
  cq.AddWaiter(&c, 3);
  cq.AddWaiter(&d, 2);

  const std::vector<WorkQueue*>* ready = &cq.BumpHwCount();  // count = 1
  ASSERT_EQ(ready->size(), 1u);
  EXPECT_EQ((*ready)[0], &b);
  ready = &cq.BumpHwCount();  // count = 2
  ASSERT_EQ(ready->size(), 1u);
  EXPECT_EQ((*ready)[0], &d);
  ready = &cq.BumpHwCount();  // count = 3: a then c (registration order)
  ASSERT_EQ(ready->size(), 2u);
  EXPECT_EQ((*ready)[0], &a);
  EXPECT_EQ((*ready)[1], &c);
  EXPECT_TRUE(cq.BumpHwCount().empty());
}

// Full-path FIFO: three queues park equal-threshold WAITs on one CQ, then
// each runs a FETCH_ADD on the same counter. The adds funnel through the
// serial atomic unit in resume order, so the old values they fetch back
// expose the wake order.
TEST(CqWaiterDevice, EqualThresholdWaitersResumeFifoAfterFanOutWake) {
  TestBed bed;
  auto counter = bed.Alloc(bed.server, 64);
  auto results = bed.Alloc(bed.server, 64);

  QueuePair* trigger = bed.Loopback(bed.server);
  constexpr int kWaiters = 3;
  QueuePair* qps[kWaiters];
  for (int i = 0; i < kWaiters; ++i) {
    qps[i] = bed.Loopback(bed.server);
    verbs::PostSend(qps[i], verbs::MakeWait(trigger->send_cq, 1));
    verbs::PostSend(qps[i],
                    verbs::MakeFetchAdd(counter.addr(), counter.rkey(), 1,
                                        results.addr() + 8 * i, results.lkey()));
    verbs::RingDoorbell(qps[i]);
  }
  bed.sim.Run();  // all three park on the trigger CQ

  verbs::PostSendNow(trigger, verbs::MakeNoop());
  bed.sim.Run();

  EXPECT_EQ(counter.U64(0), 3u);
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(results.U64(i), static_cast<std::uint64_t>(i))
        << "waiter " << i << " fetched out of registration order";
  }
}

// A drained Run() must leave the clock at (or past) the last CQE's host
// visibility instant even though delivery schedules no visibility event.
TEST(CqVisibility, PollSucceedsAfterDrainedRun) {
  TestBed bed;
  auto src = bed.Alloc(bed.client, 256);
  auto dst = bed.Alloc(bed.server, 256);
  auto [cqp, sqp] = bed.ConnectedPair();

  verbs::PostSendNow(cqp, verbs::MakeWrite(src.addr(), 64, src.lkey(),
                                           dst.addr(), dst.rkey()));
  bed.sim.Run();

  Cqe cqe;
  ASSERT_EQ(bed.client.PollCq(cqp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_GE(bed.sim.now(), cqe.completed_at);
}

// Steady-state allocation freedom: after warm-up, every payload acquire is
// a reuse and no event callback falls back to the heap.
TEST(CqSteadyState, PayloadPoolAndEventSlabStayAllocationFree) {
  TestBed bed;
  auto src = bed.Alloc(bed.client, 256);
  auto dst = bed.Alloc(bed.server, 256);
  auto [cqp, sqp] = bed.ConnectedPair();

  auto run_batch = [&] {
    for (int i = 0; i < 64; ++i) {
      verbs::PostSend(cqp, verbs::MakeWrite(src.addr(), 64, src.lkey(),
                                            dst.addr(), dst.rkey(),
                                            /*signaled=*/i % 8 == 7));
    }
    verbs::RingDoorbell(cqp);
    bed.sim.Run();
  };

  run_batch();  // warm-up: pools grow to peak depth

  const auto& pool = bed.client.payload_pool();
  const std::uint64_t acquires0 = pool.acquires();
  const std::uint64_t reuses0 = pool.reuses();
  const std::uint64_t fallbacks0 = bed.sim.heap_fallbacks();
  const std::size_t allocated0 = pool.allocated();

  for (int r = 0; r < 10; ++r) run_batch();

  EXPECT_GT(pool.acquires(), acquires0);
  EXPECT_EQ(pool.acquires() - acquires0, pool.reuses() - reuses0)
      << "payload pool fell back to allocation on the steady-state path";
  EXPECT_EQ(pool.allocated(), allocated0);
  EXPECT_EQ(bed.sim.heap_fallbacks(), fallbacks0)
      << "an engine closure outgrew the event node's inline storage";
}

}  // namespace
}  // namespace redn::test
