// Decoded-WQE translation cache (see docs/PERF.md): self-modification
// invalidation and write-through refresh. The cache must never change WHAT
// executes — a managed ring slot rewritten between laps executes its
// modified form no matter which write path rewrote it (RDMA WRITE delivery,
// atomic RMW, RECV scatter, or an untracked host-side raw DMA patch) — and
// unmodified recycled slots must be served as verified cache hits. The
// PD-epoch tag must also flush cached SGE plans on re-registration, so a
// shrunk region faults instead of answering from a stale extent.
#include <gtest/gtest.h>

#include <cstring>

#include "testbed.h"

namespace redn {
namespace {

using test::Buffer;
using test::TestBed;
using rnic::Cqe;
using rnic::Opcode;
using rnic::WqeField;
using verbs::AwaitCqe;
using verbs::AwaitCqes;
using verbs::MakeNoop;
using verbs::MakeWait;
using verbs::MakeWrite;
using verbs::PostSend;
using verbs::PostSendNow;

class WqeCacheTest : public ::testing::Test {
 protected:
  TestBed bed;

  std::uint64_t Hits() const { return bed.client.counters().wqe_cache_hits; }
  std::uint64_t Misses() const {
    return bed.client.counters().wqe_cache_misses;
  }
  std::uint64_t Invalidations() const {
    return bed.client.counters().wqe_cache_invalidations;
  }
};

TEST_F(WqeCacheTest, UnmodifiedRecycledSlotsAreVerifiedHits) {
  // A managed ring recycled for a second lap with no self-modification:
  // every fetch must be served by the cache (the driver write-through plus
  // the 64-byte verify), with zero decodes and zero invalidations.
  rnic::QueuePair* qp = bed.Loopback(bed.client, /*managed=*/true,
                                     /*depth=*/4);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                         /*signaled=*/true));
  for (int i = 0; i < 3; ++i) PostSend(qp, MakeNoop(/*signaled=*/false));

  bed.client.HostEnable(qp, 8);  // two full laps of the 4-deep ring
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 2, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  bed.sim.Run();  // drain the trailing unsignaled NOOP fetches
  EXPECT_EQ(bed.client.counters().managed_fetches, 8u)
      << "the cache must not elide the simulated fetches themselves";
  EXPECT_EQ(Hits(), 8u);
  EXPECT_EQ(Misses(), 0u);
  EXPECT_EQ(Invalidations(), 0u);
  EXPECT_EQ(bed.client.RingDirtyGen(qp), 0u);
}

TEST_F(WqeCacheTest, RdmaWriteIntoRingSlotExecutesModifiedFormNextLap) {
  // Lap-N verb rewrites slot 0's remote address via an RDMA WRITE landing
  // in the ring MR (the AcceptWrite/dma::Write delivery path): lap N+1 must
  // execute the modified form, and the tracked write must show up as an
  // invalidation that still leaves the next fetch a (refreshed) hit.
  rnic::QueuePair* qp = bed.Loopback(bed.client, /*managed=*/true,
                                     /*depth=*/4);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  Buffer patch = bed.Alloc(bed.client, 8);
  src.SetU64(0, 0xAB);
  patch.SetU64(0, dst.addr() + 8);  // the new kRemoteAddr payload

  PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                         /*signaled=*/true));
  // Slot 1 rewrites slot 0's kRemoteAddr field through the ring's rkey.
  PostSend(qp, MakeWrite(patch.addr(), 8, patch.lkey(),
                         qp->sq.SlotAddr(0, WqeField::kRemoteAddr),
                         qp->sq_mr.rkey, /*signaled=*/true));
  PostSend(qp, MakeWait(qp->send_cq, 2));  // barrier: both writes landed
  PostSend(qp, MakeNoop(/*signaled=*/false));

  bed.client.HostEnable(qp, 5);  // index 4 wraps onto slot 0: second lap
  Cqe cqe;
  ASSERT_TRUE(AwaitCqes(bed.sim, bed.client, qp->send_cq, 3, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_EQ(dst.U64(0), 0xABu) << "first lap targeted dst+0";
  EXPECT_EQ(dst.U64(1), 0xABu)
      << "second lap executed the stale decode, not the rewritten WQE";
  EXPECT_GE(Invalidations(), 1u);
  EXPECT_EQ(Misses(), 0u)
      << "the tracked write should refresh the decode, not force a reload";
  EXPECT_GE(bed.client.RingDirtyGen(qp), 1u)
      << "the ring's per-MR dirty generation must count the tracked write";
}

TEST_F(WqeCacheTest, AtomicCtrlRewriteFlipsNoopIntoWrite) {
  // The paper's conditional: a CAS on the ctrl word compares {NOOP, id} and
  // swaps in {WRITE, id}, enabling a pre-staged WRITE. The atomic lands in
  // the ring MR through the RMW path, so the next lap's fetch must execute
  // the WRITE — via the write-through refresh, still as a cache hit.
  rnic::QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true,
                                        /*depth=*/2);
  rnic::QueuePair* ctrl = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  src.SetU64(0, 0x77);

  // Slot 0: a WRITE's fields carried under a NOOP opcode (disabled).
  verbs::SendWr staged = MakeWrite(src.addr(), 8, src.lkey(), dst.addr(),
                                   dst.rkey(), /*signaled=*/true);
  staged.opcode = Opcode::kNoop;
  staged.wr_id = 7;
  PostSend(chain, staged);
  PostSend(chain, MakeNoop(/*signaled=*/false));

  bed.client.HostEnable(chain, 2);  // lap 1: the NOOP executes, dst untouched
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, chain->send_cq, &cqe));
  EXPECT_EQ(cqe.opcode, Opcode::kNoop);
  EXPECT_EQ(dst.U64(0), 0u);

  PostSendNow(ctrl, verbs::MakeCas(chain->sq.SlotAddr(0, WqeField::kCtrl),
                                   chain->sq_mr.rkey,
                                   rnic::PackCtrl(Opcode::kNoop, 7),
                                   rnic::PackCtrl(Opcode::kWrite, 7)));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, ctrl->send_cq, &cqe));
  ASSERT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  const std::uint64_t invalidations_after_cas = Invalidations();
  EXPECT_GE(invalidations_after_cas, 1u);

  bed.client.HostEnable(chain, 4);  // lap 2: slot 0 now decodes as a WRITE
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, chain->send_cq, &cqe));
  EXPECT_EQ(cqe.opcode, Opcode::kWrite);
  EXPECT_EQ(cqe.wr_id, 7u);
  EXPECT_EQ(dst.U64(0), 0x77u) << "the enabled WRITE did not execute";
  EXPECT_EQ(Misses(), 0u)
      << "the refreshed decode should hit, not re-load, on lap 2";
}

TEST_F(WqeCacheTest, RecvScatterIntoRingSlotIsTrackedToo) {
  // RDMA-delivered rewrite via the scatter path: a RECV whose SGE points at
  // ring slot 0 lands a whole new WQE there (ScatterList -> dma::Write).
  // The next lap must execute the delivered program.
  rnic::QueuePair* chain = bed.Loopback(bed.client, /*managed=*/true,
                                        /*depth=*/2);
  rnic::QueuePair* rpc = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  Buffer staged = bed.Alloc(bed.client, 64);
  src.SetU64(0, 0x99);

  PostSend(chain, MakeNoop(/*signaled=*/true));
  PostSend(chain, MakeNoop(/*signaled=*/false));
  bed.client.HostEnable(chain, 2);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, chain->send_cq, &cqe));

  // Build the replacement WQE image in a staging buffer and SEND it into a
  // RECV that scatters onto slot 0 of the chain ring.
  rnic::WqeImage img;
  img.ctrl = rnic::PackCtrl(Opcode::kWrite, 9);
  img.flags = rnic::kFlagSignaled;
  img.local_addr = src.addr();
  img.length = 8;
  img.lkey = src.lkey();
  img.remote_addr = dst.addr();
  img.rkey = dst.rkey();
  rnic::WqeView(staged.bytes()).Store(img);

  verbs::RecvWr recv;
  recv.local_addr = chain->sq.SlotAddr(0, WqeField::kCtrl);
  recv.length = rnic::kWqeSize;
  recv.lkey = chain->sq_mr.lkey;
  verbs::PostRecv(rpc, recv);
  PostSendNow(rpc, verbs::MakeSend(staged.addr(), rnic::kWqeSize,
                                   staged.lkey()));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, rpc->recv_cq, &cqe));
  ASSERT_EQ(cqe.status, rnic::WcStatus::kSuccess);
  EXPECT_GE(Invalidations(), 1u);

  bed.client.HostEnable(chain, 4);  // lap 2 executes the delivered WRITE
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, chain->send_cq, &cqe));
  EXPECT_EQ(cqe.opcode, Opcode::kWrite);
  EXPECT_EQ(cqe.wr_id, 9u);
  EXPECT_EQ(dst.U64(0), 0x99u);
}

TEST_F(WqeCacheTest, UntrackedHostDmaPatchIsCaughtByTheVerify) {
  // The §4 "expose WQ buffer" trick: host code patches a posted WQE with a
  // raw DMA write, bypassing every tracked write path. The 64-byte verify
  // must catch the divergence and re-decode — counted as an invalidation.
  rnic::QueuePair* qp = bed.Loopback(bed.client, /*managed=*/true,
                                     /*depth=*/2);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                         /*signaled=*/true));
  PostSend(qp, MakeNoop(/*signaled=*/false));
  bed.client.HostEnable(qp, 2);
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_EQ(cqe.byte_len, 8u);

  rnic::dma::WriteU32(qp->sq.SlotAddr(0, WqeField::kLength), 16);
  const std::uint64_t misses_before = Misses();
  bed.client.HostEnable(qp, 4);  // lap 2 re-executes the patched slot 0
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_EQ(cqe.byte_len, 16u)
      << "lap 2 executed the cached decode, not the host-patched WQE";
  EXPECT_GE(Invalidations(), 1u);
  EXPECT_EQ(Misses(), misses_before + 1)
      << "the verify failure must force exactly one re-decode";
}

TEST_F(WqeCacheTest, PostIntoEnableAheadSnapshotStaysStaleOnPlainQueue) {
  // A non-managed queue enabled past its posted count snapshots unposted
  // slots (enable-ahead). Doorbell ordering says that committed snapshot
  // executes as-is: a PostSend landing in the already-snapshotted slot
  // updates ring bytes only, so the driver write-through must NOT refresh
  // the stale snapshot — same staleness a raw host patch would get.
  rnic::QueuePair* qp = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  src.SetU64(0, 0x5A);

  PostSend(qp, MakeNoop(/*signaled=*/true));  // slot 0
  bed.client.HostEnable(qp, 2);  // snapshots slot 1 before it is posted
  // After the enable's snapshot (doorbell MMIO delay) but before slot 1
  // issues: post a signaled WRITE into the pre-snapshotted slot.
  bed.sim.After(rnic::Calibration{}.doorbell_mmio + 50, [&] {
    PostSend(qp, MakeWrite(src.addr(), 8, src.lkey(), dst.addr(), dst.rkey(),
                           /*signaled=*/true));
    verbs::RingDoorbell(qp);  // no-op: posted <= exec_limit
  });
  bed.sim.Run();

  Cqe cqe;
  ASSERT_EQ(bed.client.PollCq(qp->send_cq, 1, &cqe), 1);
  EXPECT_EQ(cqe.opcode, Opcode::kNoop);
  EXPECT_EQ(bed.client.PollCq(qp->send_cq, 1, &cqe), 0)
      << "the enable-ahead slot must execute its stale (empty) snapshot";
  EXPECT_EQ(dst.U64(0), 0u)
      << "post-time write-through leaked into a committed snapshot";
}

TEST_F(WqeCacheTest, ReregisterFlushesCachedSgePlans) {
  // ibv_rereg_mr keeps the lkey while shrinking the extent. The slot's
  // cached gather plan validated the old bounds; the PD-epoch bump must
  // flush it so the re-posted WQE faults instead of gathering out of the
  // shrunk region.
  rnic::QueuePair* qp = bed.Loopback(bed.client);
  Buffer src = bed.Alloc(bed.client, 64);
  Buffer dst = bed.Alloc(bed.client, 64);
  PostSendNow(qp, MakeWrite(src.addr(), 32, src.lkey(), dst.addr(),
                            dst.rkey(), /*signaled=*/true));
  Cqe cqe;
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  ASSERT_EQ(cqe.status, rnic::WcStatus::kSuccess);  // plan now cached

  ASSERT_TRUE(bed.client.pd().Reregister(src.lkey(), src.bytes(), 8,
                                         rnic::kAccessAll));
  PostSendNow(qp, MakeWrite(src.addr(), 32, src.lkey(), dst.addr(),
                            dst.rkey(), /*signaled=*/true));
  ASSERT_TRUE(AwaitCqe(bed.sim, bed.client, qp->send_cq, &cqe));
  EXPECT_EQ(cqe.status, rnic::WcStatus::kLocalAccessError)
      << "a stale cached plan validated a gather past the shrunk extent";
}

}  // namespace
}  // namespace redn
