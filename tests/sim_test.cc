// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace redn::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(5, [&, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  Nanos seen = -1;
  s.At(100, [&] { s.After(50, [&] { seen = s.now(); }); });
  s.Run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator s;
  Nanos seen = -1;
  s.At(100, [&] { s.At(10, [&] { seen = s.now(); }); });
  s.Run();
  EXPECT_EQ(seen, 100);
}

// The documented FIFO guarantee for clamped events: an event scheduled into
// the past runs at `now()`, but *behind* every event already queued for the
// current instant — its seq is newer, and same-instant dispatch is seq order.
TEST(Simulator, ClampedPastEventRunsAfterQueuedSameTimeEvents) {
  Simulator s;
  std::vector<int> order;
  s.At(100, [&] {
    s.At(10, [&] { order.push_back(99); });  // clamped to t=100
  });
  s.At(100, [&] { order.push_back(1); });
  s.At(100, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(Simulator, ClampAfterRunUntilUsesAdvancedClock) {
  Simulator s;
  s.RunUntil(1000);  // advances the clock with an empty queue
  Nanos seen = -1;
  s.At(50, [&] { seen = s.now(); });
  s.Run();
  EXPECT_EQ(seen, 1000);
}

TEST(Simulator, SlabCountersSeparateInlineFromHeapCallbacks) {
  Simulator s;
  std::array<std::byte, 2 * kEventInlineBytes> big{};
  int runs = 0;
  s.At(1, [&runs] { ++runs; });           // pointer capture: fits inline
  s.At(2, [big, &runs] { (void)big; ++runs; });  // oversized: heap fallback
  s.Run();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(s.slab_hits(), 1u);
  EXPECT_EQ(s.heap_fallbacks(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] { ++fired; });
  s.At(20, [&] { ++fired; });
  s.At(30, [&] { ++fired; });
  s.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  s.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, NestedSchedulingDuringRun) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.After(1, recurse);
  };
  s.At(0, recurse);
  s.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4);
}

TEST(Simulator, ResetClearsQueueAndClock) {
  Simulator s;
  s.At(10, [] {});
  s.Reset();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.now(), 0);
}

TEST(FifoResource, BackToBackReservations) {
  FifoResource r;
  EXPECT_EQ(r.Reserve(0, 100), 100);
  EXPECT_EQ(r.Reserve(0, 100), 200);   // queues behind the first
  EXPECT_EQ(r.Reserve(500, 100), 600); // idle gap, starts at request time
  EXPECT_EQ(r.busy_time(), 300);
  EXPECT_EQ(r.jobs(), 3u);
}

TEST(FifoResource, NextFreeReflectsBacklog) {
  FifoResource r;
  r.Reserve(0, 1000);
  EXPECT_EQ(r.NextFree(0), 1000);
  EXPECT_EQ(r.NextFree(2000), 2000);
}

TEST(BandwidthResource, SerializationDelayMatchesRate) {
  BandwidthResource link(/*gbits_per_sec=*/100.0);
  // 100 Gb/s = 12.5 bytes/ns; 1250 bytes -> 100 ns.
  EXPECT_EQ(link.SerializationDelay(1250), 100);
  EXPECT_EQ(link.Reserve(0, 1250), 100);
  EXPECT_EQ(link.Reserve(0, 1250), 200);
}

TEST(BandwidthResource, SixtyFourKbAtLinkRate) {
  BandwidthResource link(92.0);
  const Nanos d = link.SerializationDelay(64 * 1024);
  // 64 KiB at 92 Gb/s is ~5.7 us (the paper's IB-bandwidth regime).
  EXPECT_NEAR(static_cast<double>(d), 5700.0, 120.0);
}

TEST(LatencyRecorder, PercentilesAndMean) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.Add(i * 10);
  EXPECT_DOUBLE_EQ(r.MeanNs(), 505.0);
  EXPECT_EQ(r.PercentileNs(50), 500);
  EXPECT_EQ(r.PercentileNs(99), 990);
  EXPECT_EQ(r.PercentileNs(100), 1000);
  EXPECT_EQ(r.MinNs(), 10);
  EXPECT_EQ(r.MaxNs(), 1000);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_EQ(r.PercentileNs(99), 0);
  EXPECT_DOUBLE_EQ(r.MeanNs(), 0.0);
}

TEST(ThroughputTimeline, BucketsCounts) {
  ThroughputTimeline t(Seconds(0.25), Seconds(2));
  t.Record(Seconds(0.1));
  t.Record(Seconds(0.2));
  t.Record(Seconds(1.9));
  EXPECT_EQ(t.buckets(), 8u);
  EXPECT_EQ(t.count(0), 2u);
  EXPECT_EQ(t.count(7), 1u);
  EXPECT_DOUBLE_EQ(t.Rate(0), 8.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.NextExponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

}  // namespace
}  // namespace redn::sim
