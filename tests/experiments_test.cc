// Integration tests for the macro-experiment drivers (Figs 15 and 16).
// These assert the *shape* the paper reports, with small op counts so the
// suite stays fast; the benches run the full-size versions.
#include <gtest/gtest.h>

#include "workload/experiments.h"

namespace redn::workload {
namespace {

TEST(Contention, RedNLatencyFlatUnderWriters) {
  const auto quiet = RunRedNContention(/*writers=*/0, /*n_gets=*/60);
  const auto loaded = RunRedNContention(/*writers=*/16, /*n_gets=*/60);
  ASSERT_GT(quiet.gets, 0u);
  ASSERT_GT(loaded.gets, 0u);
  // Fig 15: RedN average and 99th stay below ~7 us regardless of writers.
  EXPECT_LT(loaded.avg_us, 7.0);
  EXPECT_LT(loaded.p99_us, 8.0);
  EXPECT_LT(loaded.p99_us, quiet.p99_us * 1.5);
}

TEST(Contention, TwoSidedTailExplodesWithWriters) {
  const auto one = RunTwoSidedContention(/*writers=*/1, /*n_gets=*/150);
  const auto sixteen = RunTwoSidedContention(/*writers=*/16, /*n_gets=*/150);
  ASSERT_GT(one.gets, 0u);
  ASSERT_GT(sixteen.gets, 0u);
  EXPECT_GT(sixteen.avg_us, one.avg_us);
  EXPECT_GT(sixteen.p99_us, 4 * one.p99_us);
  // Fig 15's headline: two-sided p99 at 16 writers is tens of times RedN's.
  const auto redn = RunRedNContention(16, 60);
  EXPECT_GT(sixteen.p99_us, 15 * redn.p99_us);
}

TEST(Failover, VanillaMemcachedHasOutage) {
  FailoverConfig cfg;
  cfg.redn = false;
  cfg.rate_per_sec = 400;
  cfg.horizon = sim::Seconds(10);
  cfg.crash_at = sim::Seconds(4);
  cfg.keys = 2000;
  const auto r = RunFailover(cfg);
  ASSERT_GT(r.served, 0u);
  // Restart (1 s) + rebuild (2000 * 125 us = 0.25 s) -> >1 s outage.
  EXPECT_GT(r.outage_seconds, 0.9);
  // Service resumes by the end.
  EXPECT_GT(r.normalized.back(), 0.5);
}

TEST(Failover, RedNWithHullSurvivesCrash) {
  FailoverConfig cfg;
  cfg.redn = true;
  cfg.hull_parent = true;
  cfg.rate_per_sec = 400;
  cfg.horizon = sim::Seconds(10);
  cfg.crash_at = sim::Seconds(4);
  cfg.keys = 2000;
  const auto r = RunFailover(cfg);
  EXPECT_EQ(r.outage_seconds, 0.0);
  // Every request after warmup is served.
  EXPECT_GE(r.served + 5, r.sent);
}

TEST(Failover, RedNWithoutHullDiesWithProcess) {
  // The §5.6 counterpoint: if the crashed process owned the RDMA
  // resources, the OS reclaim terminates the chains and service stops.
  FailoverConfig cfg;
  cfg.redn = true;
  cfg.hull_parent = false;
  cfg.rate_per_sec = 400;
  cfg.horizon = sim::Seconds(8);
  cfg.crash_at = sim::Seconds(3);
  cfg.keys = 1000;
  const auto r = RunFailover(cfg);
  EXPECT_GT(r.outage_seconds, 3.0);
  EXPECT_LT(r.normalized.back(), 0.1);
}

}  // namespace
}  // namespace redn::workload
