// Unit tests for the WQE binary layout — the foundation of self-modifying
// chains. Field offsets are load-bearing: RedN programs compute raw
// addresses of opcode/id/src fields.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "rnic/wqe.h"

namespace redn::rnic {
namespace {

TEST(WqeLayout, SizeAndOffsetsAreStable) {
  EXPECT_EQ(kWqeSize, 64u);
  EXPECT_EQ(FieldOffset(WqeField::kCtrl), 0u);
  EXPECT_EQ(FieldOffset(WqeField::kRemoteAddr), 8u);
  EXPECT_EQ(FieldOffset(WqeField::kRkey), 16u);
  EXPECT_EQ(FieldOffset(WqeField::kFlags), 20u);
  EXPECT_EQ(FieldOffset(WqeField::kLocalAddr), 24u);
  EXPECT_EQ(FieldOffset(WqeField::kLength), 32u);
  EXPECT_EQ(FieldOffset(WqeField::kLkey), 36u);
  EXPECT_EQ(FieldOffset(WqeField::kCompareAdd), 40u);
  EXPECT_EQ(FieldOffset(WqeField::kSwap), 48u);
  EXPECT_EQ(FieldOffset(WqeField::kTargetId), 56u);
  EXPECT_EQ(FieldOffset(WqeField::kImm), 60u);
}

TEST(WqeCtrl, PacksOpcodeAndId) {
  const std::uint64_t ctrl = PackCtrl(Opcode::kWrite, 0x123456789abcULL);
  EXPECT_EQ(CtrlOpcode(ctrl), Opcode::kWrite);
  EXPECT_EQ(CtrlWrId(ctrl), 0x123456789abcULL);
}

TEST(WqeCtrl, IdIsMaskedTo48Bits) {
  // The 48-bit operand limit of RedN constructs (§3.5) comes from here.
  const std::uint64_t big = 0xffffffffffffffffULL;
  const std::uint64_t ctrl = PackCtrl(Opcode::kNoop, big);
  EXPECT_EQ(CtrlWrId(ctrl), kWrIdMask);
  EXPECT_EQ(CtrlOpcode(ctrl), Opcode::kNoop);
}

TEST(WqeCtrl, NoopWithIdEqualsBareId) {
  // Opcode::kNoop must be 0 so that a CAS comparing {NOOP, x} against the
  // ctrl word can use the bare 48-bit key as its compare operand.
  const std::uint64_t x = 0x0000ab12cd34ef56ULL & kWrIdMask;
  EXPECT_EQ(PackCtrl(Opcode::kNoop, x), x);
}

TEST(WqeView, StoreLoadRoundTrip) {
  alignas(8) std::array<std::byte, kWqeSize> slot{};
  WqeView view(slot.data());
  WqeImage img;
  img.ctrl = PackCtrl(Opcode::kCompSwap, 42);
  img.remote_addr = 0x1111222233334444ULL;
  img.rkey = 0xaaaa;
  img.flags = kFlagSignaled;
  img.local_addr = 0x5555666677778888ULL;
  img.length = 4096;
  img.lkey = 0xbbbb;
  img.compare_add = 0x1234;
  img.swap = 0x5678;
  img.target_id = 7;
  img.imm = 99;
  view.Store(img);
  const WqeImage back = view.Load();
  EXPECT_EQ(back.ctrl, img.ctrl);
  EXPECT_EQ(back.remote_addr, img.remote_addr);
  EXPECT_EQ(back.rkey, img.rkey);
  EXPECT_EQ(back.flags, img.flags);
  EXPECT_EQ(back.local_addr, img.local_addr);
  EXPECT_EQ(back.length, img.length);
  EXPECT_EQ(back.lkey, img.lkey);
  EXPECT_EQ(back.compare_add, img.compare_add);
  EXPECT_EQ(back.swap, img.swap);
  EXPECT_EQ(back.target_id, img.target_id);
  EXPECT_EQ(back.imm, img.imm);
}

TEST(WqeView, OpcodeRewriteViaCasLikeWrite) {
  // The self-modification primitive: overwriting the ctrl word flips the
  // opcode while preserving the id.
  alignas(8) std::array<std::byte, kWqeSize> slot{};
  WqeView view(slot.data());
  view.set_ctrl(PackCtrl(Opcode::kNoop, 777));
  EXPECT_EQ(view.opcode(), Opcode::kNoop);
  // Simulate the CAS swap: write {WRITE, 777} at the ctrl address.
  dma::WriteU64(view.FieldAddr(WqeField::kCtrl), PackCtrl(Opcode::kWrite, 777));
  EXPECT_EQ(view.opcode(), Opcode::kWrite);
  EXPECT_EQ(view.wr_id(), 777u);
}

TEST(WqeView, FieldAddrPointsIntoSlot) {
  alignas(8) std::array<std::byte, kWqeSize> slot{};
  WqeView view(slot.data());
  EXPECT_EQ(view.FieldAddr(WqeField::kCtrl), dma::AddrOf(slot.data()));
  EXPECT_EQ(view.FieldAddr(WqeField::kSwap), dma::AddrOf(slot.data()) + 48);
}

TEST(WqeView, ClearZeroesSlot) {
  alignas(8) std::array<std::byte, kWqeSize> slot;
  std::memset(slot.data(), 0xff, kWqeSize);
  WqeView view(slot.data());
  view.Clear();
  EXPECT_EQ(view.ctrl(), 0u);
  EXPECT_EQ(view.opcode(), Opcode::kNoop);
}

TEST(WqeImage, FlagHelpers) {
  WqeImage img;
  img.flags = kFlagSignaled | kFlagSgeTable;
  EXPECT_TRUE(img.signaled());
  EXPECT_TRUE(img.uses_sge_table());
  img.flags = 0;
  EXPECT_FALSE(img.signaled());
  EXPECT_FALSE(img.uses_sge_table());
}

TEST(Opcode, NamesAreUnique) {
  for (int a = 0; a < static_cast<int>(Opcode::kOpcodeCount); ++a) {
    for (int b = a + 1; b < static_cast<int>(Opcode::kOpcodeCount); ++b) {
      EXPECT_STRNE(OpcodeName(static_cast<Opcode>(a)),
                   OpcodeName(static_cast<Opcode>(b)));
    }
  }
}

}  // namespace
}  // namespace redn::rnic
